(* loadgen — latency-SLO load bench for the hypartition serve daemon.

   A thin flag-parsing wrapper over Server.Loadgen: connect N clients to
   a running daemon, drive a closed- or open-loop request mix, and print
   the hypartition-loadgen/1 SLO report (p50/p99/p999, throughput,
   error and backpressure rates, cache-source breakdown) as JSON.
   `hypartition trace` validates the report; CI gates on jq extracts of
   it.

   Mixes come from --mix-file presets (bench/mixes/*.json) with any
   explicit flag overriding the preset:
     distinct >= requests       cold sweep (every solve unique)
     small distinct             duplicate-heavy (cache + single-flight
                                collapse should absorb most of it)
     re-run, same --cache-dir   warm (served from the result cache)

   Closed loop (default) keeps one request outstanding per client — a
   saturation probe.  --mode open --rate R fires submits on a fixed
   schedule whatever the server does, which is what actually exposes
   queueing and Busy backpressure. *)

open Cmdliner

type mix = {
  m_clients : int option;
  m_requests : int option;
  m_mode : [ `Closed | `Open ] option;
  m_rate : float option;
  m_distinct : int option;
  m_n : int option;
  m_k : int option;
  m_seed : int option;
  m_threads : int option;
}

let empty_mix =
  {
    m_clients = None;
    m_requests = None;
    m_mode = None;
    m_rate = None;
    m_distinct = None;
    m_n = None;
    m_k = None;
    m_seed = None;
    m_threads = None;
  }

let load_mix path =
  let content =
    try Ok (In_channel.with_open_text path In_channel.input_all)
    with Sys_error msg -> Error msg
  in
  match content with
  | Error msg -> Error msg
  | Ok content -> (
      match Obs.Json.parse (String.trim content) with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok doc ->
          let int name = Option.bind (Obs.Json.member name doc) Obs.Json.get_int in
          let num name =
            Option.bind (Obs.Json.member name doc) Obs.Json.get_float
          in
          let mode =
            match Option.bind (Obs.Json.member "mode" doc) Obs.Json.get_str with
            | Some "closed" -> Some `Closed
            | Some "open" -> Some `Open
            | _ -> None
          in
          Ok
            {
              m_clients = int "clients";
              m_requests = int "requests";
              m_mode = mode;
              m_rate = num "rate";
              m_distinct = int "distinct";
              m_n = int "n";
              m_k = int "k";
              m_seed = int "seed";
              m_threads = int "threads";
            })

let run socket tcp mix_file clients requests mode rate distinct n k seed
    threads shutdown out =
  let endpoint =
    match tcp with
    | None -> Ok (Server.Daemon.Unix_socket socket)
    | Some spec -> (
        let host, port_str =
          match String.rindex_opt spec ':' with
          | Some i ->
              ( String.sub spec 0 i,
                String.sub spec (i + 1) (String.length spec - i - 1) )
          | None -> ("", spec)
        in
        match int_of_string_opt port_str with
        | Some port when port > 0 && port < 65536 ->
            Ok (Server.Daemon.Tcp (host, port))
        | _ ->
            Error
              (Printf.sprintf "bad --tcp endpoint %S (want PORT or HOST:PORT)"
                 spec))
  in
  let mix =
    match mix_file with None -> Ok empty_mix | Some path -> load_mix path
  in
  match (endpoint, mix) with
  | Error msg, _ | _, Error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
  | Ok endpoint, Ok mix -> (
      (* Explicit flag > mix-file preset > built-in default. *)
      let pick flag preset default =
        match flag with
        | Some v -> v
        | None -> Option.value preset ~default
      in
      let d = Server.Loadgen.default_config in
      let config =
        {
          Server.Loadgen.endpoint;
          clients = pick clients mix.m_clients d.Server.Loadgen.clients;
          requests = pick requests mix.m_requests d.Server.Loadgen.requests;
          mode =
            (match pick mode mix.m_mode `Closed with
            | `Closed -> Server.Loadgen.Closed
            | `Open ->
                Server.Loadgen.Open_rate (pick rate mix.m_rate 50.0));
          distinct = pick distinct mix.m_distinct d.Server.Loadgen.distinct;
          n = pick n mix.m_n d.Server.Loadgen.n;
          k = pick k mix.m_k d.Server.Loadgen.k;
          seed = pick seed mix.m_seed d.Server.Loadgen.seed;
          threads = pick threads mix.m_threads d.Server.Loadgen.threads;
          shutdown_at_end = shutdown;
        }
      in
      match Server.Loadgen.create config with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok gen -> (
          let report = Server.Loadgen.run gen in
          let text = Obs.Json.to_string report in
          match out with
          | None ->
              print_endline text;
              0
          | Some path -> (
              match
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc (text ^ "\n"))
              with
              | () -> 0
              | exception Sys_error msg ->
                  Printf.eprintf "error: %s\n" msg;
                  1)))

let main =
  let socket_arg =
    let doc = "Daemon's Unix-domain socket path." in
    Arg.(
      value & opt string "hypartition.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc = "Connect over TCP instead: $(docv) is PORT (loopback) or \
               HOST:PORT." in
    Arg.(
      value & opt (some string) None & info [ "tcp" ] ~docv:"ENDPOINT" ~doc)
  in
  let mix_arg =
    let doc =
      "Mix preset (JSON: clients/requests/mode/rate/distinct/n/k/seed/threads — \
       see bench/mixes/); explicit flags override preset values."
    in
    Arg.(
      value & opt (some file) None & info [ "mix-file" ] ~docv:"MIX" ~doc)
  in
  let clients_arg =
    let doc = "Concurrent client connections." in
    Arg.(value & opt (some int) None & info [ "clients" ] ~docv:"N" ~doc)
  in
  let requests_arg =
    let doc = "Total requests across all clients." in
    Arg.(value & opt (some int) None & info [ "requests" ] ~docv:"N" ~doc)
  in
  let mode_arg =
    let doc =
      "Arrival model: closed (one outstanding request per client) or open \
       (fixed-rate arrivals; see --rate)."
    in
    Arg.(
      value
      & opt (some (enum [ ("closed", `Closed); ("open", `Open) ])) None
      & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let rate_arg =
    let doc = "Open-loop arrival rate in requests per second." in
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"RPS" ~doc)
  in
  let distinct_arg =
    let doc =
      "Distinct jobs the requests cycle through: >= --requests is a cold \
       sweep, small values are duplicate-heavy."
    in
    Arg.(value & opt (some int) None & info [ "distinct" ] ~docv:"N" ~doc)
  in
  let n_arg =
    let doc = "Generated-instance size (vertices)." in
    Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc)
  in
  let k_arg =
    let doc = "Number of parts per job." in
    Arg.(value & opt (some int) None & info [ "k" ] ~docv:"K" ~doc)
  in
  let seed_arg =
    let doc = "Base random seed (job i uses seed + i mod distinct)." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let threads_arg =
    let doc =
      "Mark the generated jobs parallel (domain-based solver); > 0 only \
       asks the daemon to use its configured solver domains — results are \
       thread-count-independent."
    in
    Arg.(value & opt (some int) None & info [ "threads" ] ~docv:"N" ~doc)
  in
  let shutdown_arg =
    let doc =
      "Send a shutdown frame once every request settles — CI smoke uses \
       this to test graceful drain."
    in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  let out_arg =
    let doc = "Write the SLO report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"OUT" ~doc)
  in
  let info =
    Cmd.info "loadgen" ~version:"1.0.0"
      ~doc:
        "Load-test a running hypartition serve daemon and print a \
         latency-SLO report (hypartition-loadgen/1): p50/p99/p999 \
         latencies, throughput, error and backpressure rates, and the \
         cache-source breakdown."
  in
  Cmd.v info
    Term.(
      const run $ socket_arg $ tcp_arg $ mix_arg $ clients_arg
      $ requests_arg $ mode_arg $ rate_arg $ distinct_arg $ n_arg $ k_arg
      $ seed_arg $ threads_arg $ shutdown_arg $ out_arg)

let () = exit (Cmd.eval' main)
