(* hypartition — command-line hypergraph partitioner.

   Subcommands:
     partition FILE   partition an hMETIS hypergraph and report metrics
     stats FILE       structural statistics of an hMETIS hypergraph
     recognize FILE   decide whether the hypergraph is a hyperDAG
     hierarchical FILE  hierarchical (NUMA) partitioning, Definition 7.1
     check FILE [PARTS]  audit an instance (and a partition) against the
                      paper invariants; exits non-zero on violations *)

open Cmdliner

let load_hypergraph path =
  try Ok (Hypergraph.Hmetis.load path) with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg

let hypergraph_arg =
  let doc = "Input hypergraph in hMETIS format." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let k_arg =
  let doc = "Number of parts." in
  Arg.(value & opt int 2 & info [ "k"; "parts" ] ~docv:"K" ~doc)

let eps_arg =
  let doc = "Balance parameter epsilon: parts hold at most (1+eps)*W/k." in
  Arg.(value & opt float 0.03 & info [ "e"; "eps" ] ~docv:"EPS" ~doc)

let seed_arg =
  let doc = "Random seed (the solvers are deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

(* Observability: --trace/--stats mirror the HYPARTITION_TRACE and
   HYPARTITION_OBS environment variables (lib/obs reads those lazily; the
   flags just enable the sinks explicitly and take precedence). *)

let trace_arg =
  let doc =
    Printf.sprintf
      "Write a JSONL span trace (schema %s) of the run to $(docv), \
       truncating any existing file."
      Obs.trace_schema_version
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"TRACE" ~doc)

let stats_flag =
  let doc =
    "Print the aggregated span tree and metric summary to stderr on exit."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let setup_obs trace stats =
  (match trace with
  | Some path ->
      Obs.enable_trace path;
      (* Stamp the header before any spans: the trace should identify its
         machine and revision even for subcommands that never reach the
         batch engine (which stamps its own richer record). *)
      Obs.emit_provenance (Engine.Provenance.collect ())
  | None -> ());
  if stats then Obs.enable_summary ()

let algorithm_arg =
  let algs =
    [
      ("multilevel", `Multilevel);
      ("recursive", `Recursive);
      ("fm", `Fm);
      ("bfs", `Bfs);
      ("random", `Random);
      ("exact", `Exact);
    ]
  in
  let doc =
    Printf.sprintf "Partitioning algorithm: %s."
      (String.concat ", " (List.map fst algs))
  in
  Arg.(value & opt (enum algs) `Multilevel & info [ "a"; "algorithm" ] ~doc)

let threads_arg =
  let doc =
    "Solver domains for the multilevel parallel path (0 = the sequential \
     path).  The parallel path's result is identical for every N >= 1 in \
     deterministic mode; it is a different algorithm from the sequential \
     path and does not reproduce its partitions."
  in
  Arg.(value & opt int 0 & info [ "threads" ] ~docv:"N" ~doc)

let no_deterministic_arg =
  let doc =
    "Relax the parallel initial-portfolio reduction to completion order \
     (run-to-run-varying tie-breaks).  Only meaningful with --threads >= 2."
  in
  Arg.(value & flag & info [ "no-deterministic" ] ~doc)

let metric_arg =
  let doc = "Cost metric: connectivity (sum of lambda-1) or cutnet." in
  Arg.(
    value
    & opt (enum [ ("connectivity", Partition.Connectivity);
                  ("cutnet", Partition.Cut_net) ])
        Partition.Connectivity
    & info [ "metric" ] ~doc)

let output_arg =
  let doc = "Write the partition vector (one part id per line) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)

let dot_arg =
  let doc = "Write a Graphviz rendering of the partitioned hypergraph." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"DOT" ~doc)

let report hg part metric =
  Printf.printf "k            : %d\n" (Partition.k part);
  Printf.printf "connectivity : %d\n" (Partition.connectivity_cost hg part);
  Printf.printf "cut-net      : %d\n" (Partition.cutnet_cost hg part);
  Printf.printf "imbalance    : %.4f\n" (Partition.imbalance hg part);
  Printf.printf "part weights : %s\n"
    (String.concat " "
       (Array.to_list (Array.map string_of_int (Partition.part_weights hg part))));
  ignore metric

let run_partition trace stats path k eps seed algorithm metric threads
    no_deterministic output dot =
  setup_obs trace stats;
  if threads > 0 && algorithm <> `Multilevel then begin
    Printf.eprintf "error: --threads applies to the multilevel algorithm only\n";
    exit 1
  end;
  match load_hypergraph path with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok hg ->
      let rng = Support.Rng.create seed in
      let part =
        match algorithm with
        | `Multilevel ->
            Solvers.Multilevel.partition
              ~config:
                {
                  Solvers.Multilevel.default_config with
                  eps;
                  metric;
                  threads;
                  deterministic = not no_deterministic;
                }
              rng hg ~k
        | `Recursive ->
            Solvers.Recursive_bisection.partition ~eps
              ~bisector:(Solvers.Recursive_bisection.multilevel_bisector rng)
              hg ~k
        | `Fm ->
            let p = Solvers.Initial.random_balanced ~eps rng hg ~k in
            ignore
              (Solvers.Refine.refine
                 ~config:{ Solvers.Refine.default_config with eps; metric }
                 hg p);
            p
        | `Bfs -> Solvers.Initial.bfs_growth ~eps rng hg ~k
        | `Random -> Solvers.Initial.random_balanced ~eps rng hg ~k
        | `Exact -> (
            if Hypergraph.num_nodes hg > 24 then begin
              Printf.eprintf
                "error: exact solver limited to 24 nodes (got %d)\n"
                (Hypergraph.num_nodes hg);
              exit 1
            end;
            match Solvers.Exact.solve ~metric ~eps hg ~k with
            | Some { Solvers.Exact.part; _ } -> part
            | None ->
                Printf.eprintf "error: no eps-balanced partition exists\n";
                exit 1)
      in
      report hg part metric;
      (match output with
      | Some out ->
          Out_channel.with_open_text out (fun oc ->
              Array.iter
                (fun c -> output_string oc (string_of_int c ^ "\n"))
                (Partition.assignment part))
      | None -> ());
      (match dot with
      | Some out -> Hypergraph.Dot.save ~parts:(Partition.assignment part) out hg
      | None -> ());
      0

let run_stats path =
  match load_hypergraph path with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok hg ->
      Printf.printf "nodes (n)    : %d\n" (Hypergraph.num_nodes hg);
      Printf.printf "edges (m)    : %d\n" (Hypergraph.num_edges hg);
      Printf.printf "pins (rho)   : %d\n" (Hypergraph.num_pins hg);
      Printf.printf "max degree   : %d\n" (Hypergraph.max_degree hg);
      Printf.printf "node weight  : %d\n" (Hypergraph.total_node_weight hg);
      Printf.printf "edge weight  : %d\n" (Hypergraph.total_edge_weight hg);
      let _, components = Hypergraph.connected_components hg in
      Printf.printf "components   : %d\n" components;
      0

let run_recognize path =
  match load_hypergraph path with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok hg -> (
      match Hyperdag.recognize hg with
      | Some generators ->
          Printf.printf "hyperDAG: yes\n";
          Printf.printf "generators (edge: node):\n";
          Array.iteri (fun e g -> Printf.printf "  %d: %d\n" e g) generators;
          0
      | None ->
          Printf.printf "hyperDAG: no\n";
          (match Hyperdag.violating_subset hg with
          | Some nodes ->
              Printf.printf "violating subset (all degrees >= 2): %s\n"
                (String.concat " "
                   (Array.to_list (Array.map string_of_int nodes)))
          | None -> ());
          0)

let branching_arg =
  let doc = "Branching factors b1,b2,... of the hierarchy (product = k)." in
  Arg.(value & opt (list int) [ 2; 2 ] & info [ "branching" ] ~docv:"B1,B2" ~doc)

let costs_arg =
  let doc = "Per-level transfer costs g1,g2,... (non-increasing, g_d = 1)." in
  Arg.(value & opt (list float) [ 4.0; 1.0 ] & info [ "costs" ] ~docv:"G1,G2" ~doc)

let run_hierarchical trace stats path eps seed branching costs =
  setup_obs trace stats;
  match load_hypergraph path with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok hg -> (
      match
        Hierarchy.Topology.create
          ~branching:(Array.of_list branching)
          ~costs:(Array.of_list costs)
      with
      | exception Invalid_argument msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | topo ->
          let rng = Support.Rng.create seed in
          let k = Hierarchy.Topology.num_leaves topo in
          (* Two-step method with a multilevel step (i). *)
          let two =
            Hierarchy.Two_step.run
              ~partitioner:(fun hg ~k ->
                Solvers.Multilevel.partition
                  ~config:{ Solvers.Multilevel.default_config with eps }
                  rng hg ~k)
              topo hg
          in
          (* Recursive hierarchical partitioning. *)
          let recursive =
            Hierarchy.Recursive_hier.partition ~eps
              ~splitter:(Hierarchy.Recursive_hier.multilevel_splitter rng)
              topo hg
          in
          Printf.printf "topology      : %s\n"
            (Fmt.str "%a" Hierarchy.Topology.pp topo);
          Printf.printf "k (leaves)    : %d\n" k;
          Printf.printf "two-step      : flat %d, hierarchical %.2f\n"
            two.Hierarchy.Two_step.flat_cost two.Hierarchy.Two_step.hier_cost;
          Printf.printf "recursive     : flat %d, hierarchical %.2f\n"
            (Partition.connectivity_cost hg recursive)
            (Hierarchy.Hier_cost.cost topo hg recursive);
          0)

let partition_file_arg =
  let doc = "Partition vector file: one part id per line." in
  Arg.(required & pos 1 (some file) None & info [] ~docv:"PARTS" ~doc)

let run_evaluate path parts_path branching costs =
  match load_hypergraph path with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok hg -> (
      match Partition.Io.load ~n:(Hypergraph.num_nodes hg) parts_path with
      | exception Failure msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | part ->
          let k = Partition.k part in
          report hg part Partition.Connectivity;
          (* Hierarchical cost when the topology matches k. *)
          (match
             Hierarchy.Topology.create
               ~branching:(Array.of_list branching)
               ~costs:(Array.of_list costs)
           with
          | exception Invalid_argument _ -> ()
          | topo ->
              if Hierarchy.Topology.num_leaves topo = k then
                Printf.printf "hierarchical : %.2f  (%s)\n"
                  (Hierarchy.Hier_cost.cost topo hg part)
                  (Fmt.str "%a" Hierarchy.Topology.pp topo));
          0)

let dag_arg =
  let doc = "Input DAG ('n m' header, then 'u v' edge lines)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DAG" ~doc)

let run_schedule trace stats path k =
  setup_obs trace stats;
  match (try Ok (Hyperdag.Dag_io.load path) with Failure m -> Error m) with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok dag ->
      Printf.printf "nodes          : %d\n" (Hyperdag.Dag.num_nodes dag);
      Printf.printf "edges          : %d\n" (Hyperdag.Dag.num_edges dag);
      Printf.printf "critical path  : %d\n"
        (Hyperdag.Dag.critical_path_length dag);
      Printf.printf "lower bound    : %d\n" (Scheduling.Mu.lower_bound dag ~k);
      (match Scheduling.Mu.makespan_general dag ~k with
      | Scheduling.Mu.Exact m -> Printf.printf "optimal mu     : %d\n" m
      | Scheduling.Mu.Bounds (lo, hi) ->
          Printf.printf "mu bounds      : [%d, %d]\n" lo hi);
      let sched = Scheduling.List_sched.schedule dag ~k in
      Printf.printf "list schedule  : makespan %d (valid %b)\n"
        (Scheduling.Schedule.makespan sched)
        (Scheduling.Schedule.is_valid ~k dag sched);
      0

let run_convert path output =
  match (try Ok (Hyperdag.Dag_io.load path) with Failure m -> Error m) with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok dag ->
      let hg, generators = Hyperdag.of_dag dag in
      Printf.printf "hyperDAG: %d nodes, %d hyperedges (Definition 3.2)\n"
        (Hypergraph.num_nodes hg) (Hypergraph.num_edges hg);
      Printf.printf "generators: %s\n"
        (String.concat " "
           (Array.to_list (Array.map string_of_int generators)));
      (match output with
      | Some out ->
          Hypergraph.Hmetis.save out hg;
          Printf.printf "wrote %s\n" out
      | None -> ());
      0

let schedule_cmd =
  let info =
    Cmd.info "schedule"
      ~doc:"Makespan bounds and a list schedule for a computational DAG."
  in
  Cmd.v info Term.(const run_schedule $ trace_arg $ stats_flag $ dag_arg $ k_arg)

let convert_cmd =
  let info =
    Cmd.info "convert"
      ~doc:"Convert a computational DAG to its hyperDAG (hMETIS output)."
  in
  Cmd.v info Term.(const run_convert $ dag_arg $ output_arg)

let out_required_arg =
  let doc = "Output file." in
  Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"OUT" ~doc)

let run_generate kind n k out seed =
  let rng = Support.Rng.create seed in
  match kind with
  | `Random ->
      Hypergraph.Hmetis.save out
        (Workloads.Rand_hg.uniform rng ~n ~m:(3 * n / 2) ~min_size:2
           ~max_size:6);
      0
  | `Two_regular ->
      Hypergraph.Hmetis.save out
        (Workloads.Rand_hg.two_regular rng ~n ~m:(max 2 (n / 2)));
      0
  | `Planted ->
      Hypergraph.Hmetis.save out
        (Workloads.Rand_hg.planted rng ~n ~m:(2 * n) ~k ~locality:0.9
           ~edge_size:4);
      0
  | `Spmv ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Hypergraph.Hmetis.save out
        (Workloads.Spmv.fine_grain (Workloads.Spmv.banded ~size:side ~bandwidth:2));
      0
  | `Fft ->
      let stages = max 1 (int_of_float (Float.log2 (float_of_int (max 2 n)))) in
      Hyperdag.Dag_io.save out (Workloads.Dag_gen.fft ~stages);
      0
  | `Stencil ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Hyperdag.Dag_io.save out
        (Workloads.Dag_gen.stencil_1d ~width:side ~steps:side);
      0

let generate_cmd =
  let kind_arg =
    let kinds =
      [
        ("random", `Random); ("two-regular", `Two_regular);
        ("planted", `Planted); ("spmv", `Spmv); ("fft", `Fft);
        ("stencil", `Stencil);
      ]
    in
    let doc =
      Printf.sprintf "Workload family: %s."
        (String.concat ", " (List.map fst kinds))
    in
    Arg.(required & pos 0 (some (enum kinds)) None & info [] ~docv:"KIND" ~doc)
  in
  let n_arg =
    let doc = "Approximate size parameter." in
    Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc)
  in
  let info =
    Cmd.info "generate"
      ~doc:
        "Generate a workload (hMETIS hypergraph, or DAG for fft/stencil)."
  in
  Cmd.v info
    Term.(
      const run_generate $ kind_arg $ n_arg $ k_arg $ out_required_arg
      $ seed_arg)

let evaluate_cmd =
  let info =
    Cmd.info "evaluate"
      ~doc:"Evaluate an existing partition vector against a hypergraph."
  in
  Cmd.v info
    Term.(
      const run_evaluate $ hypergraph_arg $ partition_file_arg $ branching_arg
      $ costs_arg)

let partition_cmd =
  let info = Cmd.info "partition" ~doc:"Partition an hMETIS hypergraph." in
  Cmd.v info
    Term.(
      const run_partition $ trace_arg $ stats_flag $ hypergraph_arg $ k_arg
      $ eps_arg $ seed_arg $ algorithm_arg $ metric_arg $ threads_arg
      $ no_deterministic_arg $ output_arg $ dot_arg)

let stats_cmd =
  let info = Cmd.info "stats" ~doc:"Print hypergraph statistics." in
  Cmd.v info Term.(const run_stats $ hypergraph_arg)

let recognize_cmd =
  let info =
    Cmd.info "recognize"
      ~doc:"Decide whether the hypergraph is a hyperDAG (Lemma B.2)."
  in
  Cmd.v info Term.(const run_recognize $ hypergraph_arg)

let hierarchical_cmd =
  let info =
    Cmd.info "hierarchical"
      ~doc:"Hierarchical (NUMA) partitioning with the Definition 7.1 cost."
  in
  Cmd.v info
    Term.(
      const run_hierarchical $ trace_arg $ stats_flag $ hypergraph_arg
      $ eps_arg $ seed_arg $ branching_arg $ costs_arg)

(* check: run the invariant auditors of lib/analysis over an instance file
   and (optionally) a partition vector.  All costs and capacities are
   recomputed from first principles, so a corrupted partition or a buggy
   writer cannot audit clean. *)

let check_file_arg =
  let doc = "Input hypergraph in hMETIS format." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let check_parts_arg =
  let doc = "Optional partition vector file: one part id per line." in
  Arg.(value & pos 1 (some file) None & info [] ~docv:"PARTS" ~doc)

let variant_arg =
  let doc = "Balance variant of Definition 3.1: strict (floor) or relaxed \
             (ceil)." in
  Arg.(
    value
    & opt (enum [ ("strict", Partition.Strict); ("relaxed", Partition.Relaxed) ])
        Partition.Strict
    & info [ "variant" ] ~docv:"VARIANT" ~doc)

let rules_flag =
  let doc = "Print the rule catalogue (rule id, enforced paper invariant) \
             and exit." in
  Arg.(value & flag & info [ "rules" ] ~doc)

let run_check trace stats path parts_path eps variant branching costs rules =
  setup_obs trace stats;
  if rules then begin
    List.iter
      (fun (id, what) -> Printf.printf "%-24s %s\n" id what)
      Analysis.catalogue;
    0
  end
  else
    match path with
    | None ->
        Printf.eprintf "error: FILE required (or --rules)\n";
        2
    | Some path -> (
        match load_hypergraph path with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok hg -> (
            let structural =
              [ Analysis.Audit_hg.audit hg; Analysis.Audit_hyperdag.audit hg ]
            in
            let with_partition reports =
              List.iter (fun r -> print_endline (Analysis.Check.to_string r)) reports;
              let merged = Analysis.Check.merge ~subject:path reports in
              if stats then
                Printf.printf "%s\n"
                  (Fmt.str "%a" Analysis.Check.pp_timings merged);
              Analysis.Check.exit_code merged
            in
            match parts_path with
            | None -> with_partition structural
            | Some parts_path -> (
                match Partition.Io.load ~n:(Hypergraph.num_nodes hg) parts_path with
                | exception Failure msg ->
                    Printf.eprintf "error: %s\n" msg;
                    1
                | part ->
                    let k = Partition.k part in
                    Printf.printf "recomputed connectivity : %d\n"
                      (Analysis.Audit_partition.recompute_cost
                         Partition.Connectivity hg part);
                    Printf.printf "recomputed cut-net      : %d\n"
                      (Analysis.Audit_partition.recompute_cost Partition.Cut_net
                         hg part);
                    let part_report =
                      Analysis.Audit_partition.audit ~eps ~variant hg part
                    in
                    (* Hierarchical audit when the topology matches k. *)
                    let hier_reports =
                      match
                        Hierarchy.Topology.create
                          ~branching:(Array.of_list branching)
                          ~costs:(Array.of_list costs)
                      with
                      | exception Invalid_argument _ -> []
                      | topo ->
                          if Hierarchy.Topology.num_leaves topo = k then begin
                            Printf.printf "recomputed hierarchical : %.2f\n"
                              (Analysis.Audit_hierarchy.recompute_cost topo hg
                                 part);
                            [ Analysis.Audit_hierarchy.audit topo hg part ]
                          end
                          else []
                    in
                    with_partition (structural @ (part_report :: hier_reports)))))

let check_cmd =
  let info =
    Cmd.info "check"
      ~doc:
        "Audit a hypergraph (and optionally a partition) against the paper \
         invariants; non-zero exit on any violation."
  in
  Cmd.v info
    Term.(
      const run_check $ trace_arg $ stats_flag $ check_file_arg
      $ check_parts_arg $ eps_arg $ variant_arg $ branching_arg $ costs_arg
      $ rules_flag)

(* trace: validate an emitted observability artifact — either a JSONL span
   trace (HYPARTITION_TRACE / --trace) or a BENCH_<gitrev>.json bench
   report — against its schema.  CI runs this over the artifacts it
   uploads. *)

let run_trace_validate path =
  let ( let* ) r f = match r with Error msg -> Error msg | Ok v -> f v in
  let read () =
    try Ok (In_channel.with_open_text path In_channel.input_all)
    with Sys_error msg -> Error msg
  in
  let str_field name json =
    match Option.bind (Obs.Json.member name json) Obs.Json.get_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %S" name)
  in
  let num_field name json =
    match Option.bind (Obs.Json.member name json) Obs.Json.get_float with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "missing numeric field %S" name)
  in
  let validate_bench doc =
    let* rev = str_field "git_rev" doc in
    let* experiments =
      match Obs.Json.member "experiments" doc with
      | Some (Obs.Json.Arr l) -> Ok l
      | _ -> Error "missing array field \"experiments\""
    in
    let* () =
      List.fold_left
        (fun acc e ->
          let* () = acc in
          let* id = str_field "id" e in
          let* wall = num_field "wall_s" e in
          if wall < 0.0 then
            Error (Printf.sprintf "experiment %s: negative wall_s" id)
          else Ok ())
        (Ok ()) experiments
    in
    (* hypartition-bench/2: experiments run through the batch engine, so
       the report also carries the engine section (worker count, cache
       statistics). *)
    let* () =
      match Obs.Json.member "engine" doc with
      | Some (Obs.Json.Obj _ as engine) -> (
          match Obs.Json.member "jobs" engine with
          | Some (Obs.Json.Int j) when j >= 1 -> Ok ()
          | _ -> Error "engine section lacks a positive integer \"jobs\"")
      | _ -> Error "missing object field \"engine\""
    in
    Printf.printf "valid bench report (schema %s, git %s): %d experiments\n"
      Obs.bench_schema_version rev (List.length experiments);
    Ok ()
  in
  let validate_batch doc =
    (* hypartition-batch/1: the `batch` subcommand's JSON report — engine
       stats plus one result record per plan, each echoing its cache
       provenance. *)
    let int_field name json =
      match Option.bind (Obs.Json.member name json) Obs.Json.get_int with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "missing integer field %S" name)
    in
    let* stats =
      match Obs.Json.member "stats" doc with
      | Some (Obs.Json.Obj _ as s) -> Ok s
      | _ -> Error "missing object field \"stats\""
    in
    let* total = int_field "total" stats in
    let* from_cache = int_field "from_cache" stats in
    let* results =
      match Obs.Json.member "results" doc with
      | Some (Obs.Json.Arr l) -> Ok l
      | _ -> Error "missing array field \"results\""
    in
    let* () =
      if List.length results <> total then
        Error
          (Printf.sprintf "stats.total = %d but %d results" total
             (List.length results))
      else Ok ()
    in
    let known_status s =
      List.mem s [ "ok"; "failed"; "timeout"; "crashed"; "skipped" ]
    in
    let* cached_count =
      List.fold_left
        (fun acc (lineno, r) ->
          let* n = acc in
          let* fp = str_field "fingerprint" r in
          let* status = str_field "status" r in
          let* () =
            if known_status status then Ok ()
            else
              Error
                (Printf.sprintf "result %d (%s): unknown status %S" lineno fp
                   status)
          in
          match Obs.Json.member "cached" r with
          | Some (Obs.Json.Bool b) -> Ok (if b then n + 1 else n)
          | _ ->
              Error
                (Printf.sprintf "result %d (%s): missing boolean \"cached\""
                   lineno fp))
        (Ok 0)
        (List.mapi (fun i r -> (i, r)) results)
    in
    let* () =
      if cached_count <> from_cache then
        Error
          (Printf.sprintf "stats.from_cache = %d but %d results marked cached"
             from_cache cached_count)
      else Ok ()
    in
    Printf.printf
      "valid batch report (schema %s): %d results, %d from cache\n"
      Engine.Batch.schema_version total from_cache;
    Ok ()
  in
  let validate_serve_log frames =
    (* hypartition-serve/1: a captured daemon frame stream.  Raw captures
       keep their length-prefix lines (bare integers) — those are
       stripped by the dispatcher below; every remaining line must decode
       as a well-formed protocol frame.  Frames that only parse one way
       classify unambiguously; a handful (e.g. a bare stats request) are
       also syntactically valid in the other direction, so the
       request/response split is informational, not a schema property. *)
    let* nreq, nresp =
      List.fold_left
        (fun acc (lineno, line) ->
          let* nreq, nresp = acc in
          let* doc =
            Result.map_error
              (fun e -> Printf.sprintf "frame %d: %s" lineno e)
              (Obs.Json.parse line)
          in
          match Server.Protocol.response_of_json doc with
          | Ok _ -> Ok (nreq, nresp + 1)
          | Error resp_err -> (
              match Server.Protocol.request_of_json doc with
              | Ok _ -> Ok (nreq + 1, nresp)
              | Error req_err ->
                  Error
                    (Printf.sprintf
                       "frame %d: neither a request (%s) nor a response (%s)"
                       lineno req_err resp_err)))
        (Ok (0, 0))
        (List.mapi (fun i l -> (i + 1, l)) frames)
    in
    Printf.printf
      "valid serve frame log (schema %s): %d frames (%d requests, %d \
       responses)\n"
      Server.Protocol.schema_version (nreq + nresp) nreq nresp;
    Ok ()
  in
  let validate_slo doc =
    (* hypartition-loadgen/1: the load generator's latency-SLO report.
       Beyond field presence this checks internal consistency — totals
       add up, quantiles are monotone, rates and the cache-hit ratio are
       probabilities — which is what lets CI gate on jq extracts of the
       same document without re-deriving them. *)
    let int_field name json =
      match Option.bind (Obs.Json.member name json) Obs.Json.get_int with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "missing integer field %S" name)
    in
    let obj_field name json =
      match Obs.Json.member name json with
      | Some (Obs.Json.Obj _ as o) -> Ok o
      | _ -> Error (Printf.sprintf "missing object field %S" name)
    in
    let unit_interval name v =
      if v < 0.0 || v > 1.0 then
        Error (Printf.sprintf "%s = %g outside [0, 1]" name v)
      else Ok ()
    in
    let* totals = obj_field "totals" doc in
    let* requests = int_field "requests" totals in
    let* ok = int_field "ok" totals in
    let* busy = int_field "busy" totals in
    let* errors = int_field "errors" totals in
    let* () =
      if requests <> ok + busy + errors then
        Error
          (Printf.sprintf "totals.requests = %d but ok+busy+errors = %d"
             requests (ok + busy + errors))
      else Ok ()
    in
    let* lat = obj_field "latency_s" doc in
    let* p50 = num_field "p50" lat in
    let* p99 = num_field "p99" lat in
    let* p999 = num_field "p999" lat in
    let* () =
      if p50 < 0.0 then Error "latency_s.p50 is negative"
      else if p50 > p99 || p99 > p999 then
        Error
          (Printf.sprintf
             "latency quantiles not monotone: p50 %g, p99 %g, p999 %g" p50
             p99 p999)
      else Ok ()
    in
    let* thr = num_field "throughput_rps" doc in
    let* () =
      if thr < 0.0 then Error "negative throughput_rps" else Ok ()
    in
    let* rates = obj_field "rates" doc in
    let* err_rate = num_field "error" rates in
    let* bp_rate = num_field "backpressure" rates in
    let* () = unit_interval "rates.error" err_rate in
    let* () = unit_interval "rates.backpressure" bp_rate in
    let* cache = obj_field "cache" doc in
    let* n_cache = int_field "cache" cache in
    let* n_solve = int_field "solve" cache in
    let* n_collapsed = int_field "collapsed" cache in
    let* hit_ratio = num_field "hit_ratio" cache in
    let* () = unit_interval "cache.hit_ratio" hit_ratio in
    let* () =
      if n_cache + n_solve + n_collapsed <> ok then
        Error
          (Printf.sprintf "cache sources sum to %d but totals.ok = %d"
             (n_cache + n_solve + n_collapsed)
             ok)
      else Ok ()
    in
    let* wall = num_field "wall_s" doc in
    let* () = if wall < 0.0 then Error "negative wall_s" else Ok () in
    Printf.printf
      "valid loadgen report (schema %s): %d requests (%d ok), p99 %.6fs, \
       hit ratio %.2f\n"
      Server.Slo.schema_version requests ok p99 hit_ratio;
    Ok ()
  in
  let validate_trace lines =
    (* First line is the meta record; span records follow, each child
       emitted before its parent (spans are written as they end).  Both
       trace schema generations validate: /1 traces predate the merged
       multi-process timeline, /2 adds provenance records and per-span
       trace ids. *)
    let* schema =
      match lines with
      | meta :: _ -> (
          let* doc =
            Result.map_error (fun e -> "meta line: " ^ e) (Obs.Json.parse meta)
          in
          let* ty = str_field "type" doc in
          let* schema = str_field "schema" doc in
          if ty <> "meta" then Error "first line is not a meta record"
          else if
            schema <> Obs.trace_schema_version
            && schema <> Obs.trace_schema_v1
          then
            Error
              (Printf.sprintf "unsupported trace schema %S (expected %S or %S)"
                 schema Obs.trace_schema_v1 Obs.trace_schema_version)
          else Ok schema)
      | [] -> Error "empty trace"
    in
    let spans = Hashtbl.create 64 in
    (* span id -> (parent id option, depth, path, name, trace id option) *)
    let counts = Hashtbl.create 8 in
    let count ty =
      Hashtbl.replace counts ty (1 + Option.value ~default:0 (Hashtbl.find_opt counts ty))
    in
    let* () =
      List.fold_left
        (fun acc (lineno, line) ->
          let* () = acc in
          let* doc =
            Result.map_error
              (fun e -> Printf.sprintf "line %d: %s" lineno e)
              (Obs.Json.parse line)
          in
          let* ty = str_field "type" doc in
          count ty;
          match ty with
          | "span" ->
              let* id =
                match Option.bind (Obs.Json.member "id" doc) Obs.Json.get_int with
                | Some i -> Ok i
                | None -> Error (Printf.sprintf "line %d: span without id" lineno)
              in
              let parent =
                Option.bind (Obs.Json.member "parent" doc) Obs.Json.get_int
              in
              let* depth = num_field "depth" doc in
              let* path = str_field "path" doc in
              let* name = str_field "name" doc in
              let trace =
                Option.bind (Obs.Json.member "trace" doc) Obs.Json.get_str
              in
              let* dur = num_field "dur_ns" doc in
              if dur < 0.0 then
                Error (Printf.sprintf "line %d: negative dur_ns" lineno)
              else begin
                Hashtbl.replace spans id
                  (parent, int_of_float depth, path, name, trace);
                Ok ()
              end
          | "meta" | "counter" | "gauge" | "histogram" | "provenance" -> Ok ()
          | other -> Error (Printf.sprintf "line %d: unknown record type %S" lineno other))
        (Ok ())
        (List.mapi (fun i l -> (i + 2, l)) (List.tl lines))
    in
    (* Structural check: every parent exists, and a child sits one level
       below its parent with the parent's path as a proper prefix. *)
    let* () =
      Hashtbl.fold
        (fun id (parent, depth, path, _, _) acc ->
          let* () = acc in
          match parent with
          | None -> Ok ()
          | Some p -> (
              match Hashtbl.find_opt spans p with
              | None ->
                  Error (Printf.sprintf "span %d references missing parent %d" id p)
              | Some (_, pdepth, ppath, _, _) ->
                  if depth <> pdepth + 1 then
                    Error (Printf.sprintf "span %d: depth %d under parent depth %d" id depth pdepth)
                  else if not (String.starts_with ~prefix:(ppath ^ "/") path) then
                    Error (Printf.sprintf "span %d: path %S not under parent %S" id path ppath)
                  else Ok ()))
        spans (Ok ())
    in
    (* Server-side request trees (the serve daemon): every server.request
       span must carry a trace id (the job fingerprint — it is how a
       request's spans and absorbed worker shards correlate), and a
       queue_wait span only means something directly under its
       server.request root. *)
    let* () =
      Hashtbl.fold
        (fun id (parent, _, _, name, trace) acc ->
          let* () = acc in
          match name with
          | "server.request" ->
              if trace = None then
                Error
                  (Printf.sprintf "span %d (server.request) has no trace id"
                     id)
              else Ok ()
          | "queue_wait" -> (
              match
                Option.bind parent (fun p -> Hashtbl.find_opt spans p)
              with
              | Some (_, _, _, "server.request", _) -> Ok ()
              | Some (_, _, _, pname, _) ->
                  Error
                    (Printf.sprintf
                       "span %d (queue_wait) parented under %S, expected \
                        server.request"
                       id pname)
              | None ->
                  Error
                    (Printf.sprintf
                       "span %d (queue_wait) has no server.request parent" id))
          | _ -> Ok ())
        spans (Ok ())
    in
    let n ty = Option.value ~default:0 (Hashtbl.find_opt counts ty) in
    let roots =
      Hashtbl.fold
        (fun _ (parent, _, _, _, _) a -> if parent = None then a + 1 else a)
        spans 0
    in
    Printf.printf
      "valid trace (schema %s): %d spans (%d roots), %d counters, %d gauges, %d histograms\n"
      schema (n "span") roots (n "counter") (n "gauge")
      (n "histogram");
    Ok ()
  in
  let result =
    let* content = read () in
    let lines =
      List.filter
        (fun l -> String.trim l <> "")
        (String.split_on_char '\n' content)
    in
    (* Dispatch on the first line's schema tag: a bench report is a single
       JSON object, a trace or serve frame log is JSONL.  A raw serve
       capture is length-prefixed — bare-integer lines interleave the
       frames — so when the first line is such a prefix, dispatch peeks
       past it and the prefixes are stripped before validation. *)
    let is_len_line l =
      let s = String.trim l in
      s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s
    in
    let schema_of l =
      Option.bind
        (Result.to_option (Obs.Json.parse l))
        (fun d -> Option.bind (Obs.Json.member "schema" d) Obs.Json.get_str)
    in
    match lines with
    | [] -> Error "empty file"
    | first :: _ -> (
        let first, lines =
          if is_len_line first then
            let frames = List.filter (fun l -> not (is_len_line l)) lines in
            match frames with f :: _ -> (f, frames) | [] -> (first, lines)
          else (first, lines)
        in
        match schema_of first with
        | Some s when s = Obs.bench_schema_version ->
            let* doc = Obs.Json.parse (String.trim content) in
            validate_bench doc
        | Some s when s = Engine.Batch.schema_version ->
            let* doc = Obs.Json.parse (String.trim content) in
            validate_batch doc
        | Some s when s = Server.Protocol.schema_version ->
            validate_serve_log lines
        | Some s when s = Server.Slo.schema_version ->
            let* doc = Obs.Json.parse (String.trim content) in
            validate_slo doc
        | Some s
          when s = Obs.trace_schema_version || s = Obs.trace_schema_v1 ->
            validate_trace lines
        | Some other -> Error (Printf.sprintf "unknown schema %S" other)
        | None -> Error "first line has no schema tag")
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      1

(* lint: run hyplint, the AST-level source linter of lib/lint, over the
   repository tree.  Zero unsuppressed findings is a hard gate (CI runs
   this); suppressions carry written reasons, either inline comment
   markers of the form `hyplint: allow SRC03 — reason` or lint.config
   entries. *)

let run_lint root config_path rules format =
  if rules then begin
    print_string (Lint.Rules.render_catalogue Lint.catalogue);
    0
  end
  else
    match Lint.Engine.run ?config_path ~root () with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        2
    | Ok result -> (
        let report = Lint.Engine.report result in
        (match format with
        | `Text ->
            print_endline (Analysis.Check.to_string report);
            Printf.printf "suppressed findings : %d (all with written reasons)\n"
              (List.length result.Lint.Engine.suppressed)
        | `Json ->
            print_endline (Obs.Json.to_string (Lint.Engine.to_json result)));
        Analysis.Check.exit_code report)

let lint_cmd =
  let root_arg =
    let doc = "Repository root to lint (walks lib/, bin/, bench/, test/)." in
    Arg.(value & pos 0 dir "." & info [] ~docv:"ROOT" ~doc)
  in
  let config_arg =
    let doc = "Allowlist file (default: ROOT/lint.config when present)." in
    Arg.(value & opt (some file) None & info [ "config" ] ~docv:"CONF" ~doc)
  in
  let rules_flag =
    let doc = "Print the rule catalogue (SRC00..SRC12) and exit." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let format_arg =
    let doc = "Output format: text (Check-report rendering) or json \
               (schema hypartition-lint/1)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let info =
    Cmd.info "lint"
      ~doc:
        "Run the AST-level source linter (rules SRC01..SRC12) over the \
         repository; non-zero exit on any unsuppressed finding."
  in
  Cmd.v info
    Term.(const run_lint $ root_arg $ config_arg $ rules_flag $ format_arg)

(* analyze: the typed-AST domain-safety analyzer of lib/analysis_dom —
   mutable-state inventory, hot-path reachability from the solver entry
   points, Workspace/Rng ownership checks, and the interprocedural
   effect analysis behind the parallel-safety certificate, as rules
   DOM01..DOM11.  Shares hyplint's suppression machinery (inline
   `hyplint: allow DOM01 — reason` markers and lint.config), and gates
   identically: zero unsuppressed findings or non-zero exit. *)

let run_analyze root config_path build_dir rules format inventory_out effects
    effects_out =
  if rules then begin
    print_string (Lint.Rules.render_catalogue Analysis_dom.Dom_rules.catalogue);
    0
  end
  else
    match Analysis_dom.Driver.run ?config_path ?build_dir ~root () with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        2
    | Ok result ->
        let report = Analysis_dom.Driver.report result in
        (match format with
        | `Text ->
            print_endline (Analysis.Check.to_string report);
            Printf.printf "suppressed findings : %d (all with written reasons)\n"
              (List.length result.Analysis_dom.Driver.suppressed)
        | `Json ->
            print_endline
              (Obs.Json.to_string (Analysis_dom.Driver.to_json result)));
        if effects then
          print_string
            (Analysis_dom.Effects.render_witnesses
               result.Analysis_dom.Driver.effects);
        (match inventory_out with
        | None -> ()
        | Some path ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc
                  (Analysis_dom.Inventory.render
                     result.Analysis_dom.Driver.inventory)));
        (match effects_out with
        | None -> ()
        | Some path ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc
                  (Analysis_dom.Inventory.render
                     (Analysis_dom.Effects.to_json
                        result.Analysis_dom.Driver.effects))));
        Analysis.Check.exit_code report

let analyze_cmd =
  let root_arg =
    let doc = "Repository root to analyze (walks lib/, bin/, bench/)." in
    Arg.(value & pos 0 dir "." & info [] ~docv:"ROOT" ~doc)
  in
  let config_arg =
    let doc = "Allowlist file (default: ROOT/lint.config when present)." in
    Arg.(value & opt (some file) None & info [ "config" ] ~docv:"CONF" ~doc)
  in
  let build_arg =
    let doc =
      "Build directory holding the .cmt files (default: \
       ROOT/_build/default).  Sources without .cmt coverage are analyzed \
       via a Parsetree fallback at reduced precision."
    in
    Arg.(value & opt (some dir) None & info [ "build" ] ~docv:"DIR" ~doc)
  in
  let rules_flag =
    let doc = "Print the rule catalogue (DOM00..DOM11) and exit." in
    Arg.(value & flag & info [ "rules" ] ~doc)
  in
  let format_arg =
    let doc =
      "Output format: text (Check-report rendering) or json (schema \
       hypartition-analysis/1)."
    in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let inventory_arg =
    let doc =
      "Also write the mutable-state inventory (pretty JSON) to $(docv) — \
       the committed analysis/inventory.json artifact."
    in
    Arg.(value & opt (some string) None & info [ "inventory" ] ~docv:"PATH" ~doc)
  in
  let effects_flag =
    let doc =
      "Print per-entry-point effect witnesses: for each solver entry point, \
       the minimal call chain to every shared-mutating leaf it can reach — \
       the worklist for making the hot path domain-safe."
    in
    Arg.(value & flag & info [ "effects" ] ~doc)
  in
  let effects_out_arg =
    let doc =
      "Also write the parallel-safety certificate (pretty JSON, schema \
       hypartition-effects/1) to $(docv) — the committed \
       analysis/effects.json artifact, byte-deterministic and gated fresh \
       by CI."
    in
    Arg.(
      value & opt (some string) None & info [ "effects-out" ] ~docv:"PATH" ~doc)
  in
  let info =
    Cmd.info "analyze"
      ~doc:
        "Run the typed-AST domain-safety analyzer (rules DOM01..DOM11: \
         mutable-state inventory, hot-path reachability, Workspace/Rng \
         ownership, interprocedural effects) over the repository; non-zero \
         exit on any unsuppressed finding."
  in
  Cmd.v info
    Term.(
      const run_analyze $ root_arg $ config_arg $ build_arg $ rules_flag
      $ format_arg $ inventory_arg $ effects_flag $ effects_out_arg)

(* bench: compare a fresh bench report against a committed baseline and
   gate on experiment wall-time regressions (the CI perf-smoke check).
   Producing the reports is bench/main.exe's job; this subcommand only
   reads them, so it stays cheap enough to run anywhere. *)

let run_bench_compare current baseline threshold format =
  match
    Engine.Bench_compare.compare_files ~threshold_pct:threshold ~baseline
      ~current ()
  with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
  | Ok cmp ->
      (match format with
      | `Text -> print_string (Engine.Bench_compare.render cmp)
      | `Json ->
          print_endline
            (Obs.Json.to_string (Engine.Bench_compare.to_json cmp)));
      if Engine.Bench_compare.ok cmp then 0 else 1

let bench_cmd =
  let current_arg =
    let doc = "Current bench report (BENCH_<gitrev>.json, written by \
               bench/main.exe)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CURRENT" ~doc)
  in
  let compare_arg =
    let doc = "Baseline bench report to compare against (e.g. the committed \
               bench/baseline/BENCH_*.json)." in
    Arg.(
      required
      & opt (some file) None
      & info [ "compare" ] ~docv:"BASELINE" ~doc)
  in
  let threshold_arg =
    let doc = "Regression threshold in percent: fail when some experiment's \
               wall time exceeds baseline by more than this." in
    Arg.(value & opt float 25.0 & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let format_arg =
    let doc = "Output format: text or json (hypartition-bench-compare/1)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let info =
    Cmd.info "bench"
      ~doc:
        "Compare a bench report against a baseline: per-row speedups, with \
         a non-zero exit if any experiment's wall time regressed beyond \
         the threshold (micro rows are informational)."
  in
  Cmd.v info
    Term.(
      const run_bench_compare $ current_arg $ compare_arg $ threshold_arg
      $ format_arg)

let trace_cmd =
  let file_arg =
    let doc =
      "File to validate: span trace (JSONL), bench/batch/loadgen report \
       (JSON) or serve frame log (JSONL, raw length-prefixed captures \
       accepted)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let info =
    Cmd.info "trace"
      ~doc:
        "Validate an observability artifact against its schema — JSONL \
         span trace, bench JSON, batch-report JSON, serve frame log \
         (hypartition-serve/1) or loadgen SLO report \
         (hypartition-loadgen/1); non-zero exit if malformed."
  in
  Cmd.v info Term.(const run_trace_validate $ file_arg)

(* report: the analytics layer over the same artifacts `trace` validates.
   Where `trace` answers "is this file well-formed", `report` answers
   "where did the time go": per-phase wall/self-time tables, the critical
   path under each engine.job span, top spans, GC gauge summaries — or,
   with --folded, flamegraph-ready folded stacks on stdout. *)

let run_report path folded top =
  match Obs.Report.load path with
  | Error msg ->
      Printf.eprintf "error: %s: %s\n" path msg;
      1
  | Ok data ->
      if folded then print_string (Obs.Report.folded data)
      else Obs.Report.render ~top Format.std_formatter data;
      0

let report_cmd =
  let file_arg =
    let doc =
      Printf.sprintf
        "Span trace (JSONL, schema %s or %s) or bench report (JSON, schema \
         %s) to analyze."
        Obs.trace_schema_v1 Obs.trace_schema_version Obs.bench_schema_version
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let folded_flag =
    let doc =
      "Emit folded stacks (`a;b;c self-ns`) instead of the tables — pipe \
       into standard flamegraph tooling."
    in
    Arg.(value & flag & info [ "folded" ] ~doc)
  in
  let top_arg =
    let doc = "Number of slowest spans to list in the top-spans table." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)
  in
  let info =
    Cmd.info "report"
      ~doc:
        "Analyze an observability artifact: per-phase wall/self time, \
         per-job critical paths, top spans and GC summaries from a span \
         trace or bench report; --folded writes flamegraph input."
  in
  Cmd.v info Term.(const run_report $ file_arg $ folded_flag $ top_arg)

(* ---- serve: the partitioning-as-a-service daemon ------------------------- *)

(* serve: lib/server's daemon behind a CLI.  One single-threaded loop
   multiplexes the listening socket, every client connection and the
   worker pool's status pipes; requests pass admission control, collapse
   onto identical in-flight work, hit the shared result cache, and
   otherwise fork workers.  SIGINT (and the Shutdown frame) drain
   gracefully: queued jobs turn into skipped records, running workers
   finish, every connection flushes. *)

let run_serve trace stats socket tcp jobs solver_threads timeout cache_dir
    no_cache queue_limit client_limit lru =
  setup_obs trace stats;
  let endpoint =
    match tcp with
    | None -> Ok (Server.Daemon.Unix_socket socket)
    | Some spec -> (
        let host, port_str =
          match String.rindex_opt spec ':' with
          | Some i ->
              ( String.sub spec 0 i,
                String.sub spec (i + 1) (String.length spec - i - 1) )
          | None -> ("", spec)
        in
        match int_of_string_opt port_str with
        | Some port when port > 0 && port < 65536 ->
            Ok (Server.Daemon.Tcp (host, port))
        | _ ->
            Error
              (Printf.sprintf "bad --tcp endpoint %S (want PORT or HOST:PORT)"
                 spec))
  in
  match endpoint with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
  | Ok endpoint -> (
      let config =
        {
          Server.Daemon.endpoint;
          pool =
            {
              Engine.Pool.default_config with
              Engine.Pool.jobs;
              default_timeout_s = timeout;
              silence_worker_stdout = true;
              solver_threads;
            };
          cache_dir = (if no_cache then None else Some cache_dir);
          admission =
            { Server.Admission.queue_limit; per_client_limit = client_limit };
          lru_capacity = lru;
        }
      in
      match Server.Daemon.create config with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok daemon ->
          Printf.eprintf "hypartition serve: listening on %s (%d workers)\n%!"
            (Server.Daemon.endpoint_name endpoint)
            (max 1 jobs);
          Server.Daemon.run daemon;
          Printf.eprintf "hypartition serve: drained, bye\n%!";
          0)

let serve_cmd =
  let socket_arg =
    let doc = "Unix-domain socket path to listen on." in
    Arg.(
      value & opt string "hypartition.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let tcp_arg =
    let doc =
      "Listen on TCP instead: $(docv) is PORT (loopback) or HOST:PORT."
    in
    Arg.(
      value & opt (some string) None & info [ "tcp" ] ~docv:"ENDPOINT" ~doc)
  in
  let jobs_arg =
    let doc = "Worker processes." in
    Arg.(value & opt int 2 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let solver_threads_arg =
    let doc =
      "Solver domains per worker for submitted jobs marked parallel \
       (0 = run even those sequentially).  Changes only wall-clock, never \
       results: parallel jobs are thread-count-independent."
    in
    Arg.(value & opt int 0 & info [ "threads" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Default wall-clock budget per job in seconds (SIGKILL on expiry); \
       submitted jobs may carry their own."
    in
    Arg.(
      value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let cache_dir_arg =
    let doc = "Shared result cache directory." in
    Arg.(
      value
      & opt string Engine.Batch.default_cache_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the result cache (neither read nor write it)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let queue_limit_arg =
    let doc =
      "Admission control: total queued+running requests before new submits \
       get a busy (queue_full) frame."
    in
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N" ~doc)
  in
  let client_limit_arg =
    let doc =
      "Admission control: in-flight requests per connection before new \
       submits get a busy (client_limit) frame."
    in
    Arg.(value & opt int 8 & info [ "client-limit" ] ~docv:"N" ~doc)
  in
  let lru_arg =
    let doc = "Hot-instance LRU capacity (parsed file-backed hypergraphs)." in
    Arg.(value & opt int 16 & info [ "lru" ] ~docv:"N" ~doc)
  in
  let info =
    Cmd.info "serve"
      ~doc:
        "Run the partitioning daemon: a long-lived service over a \
         Unix-domain or TCP socket speaking length-prefixed JSONL \
         (hypartition-serve/1), with admission control, request \
         collapsing, a shared result cache and per-request tracing.  \
         SIGINT drains gracefully."
  in
  Cmd.v info
    Term.(
      const run_serve $ trace_arg $ stats_flag $ socket_arg $ tcp_arg
      $ jobs_arg $ solver_threads_arg $ timeout_arg $ cache_dir_arg
      $ no_cache_arg $ queue_limit_arg $ client_limit_arg $ lru_arg)

(* ---- batch: the parallel execution engine -------------------------------- *)

let batch_progress_line (ev : Engine.Batch.event) =
  match ev with
  | Engine.Batch.Cache_hit { record; _ } ->
      Printf.eprintf "[cache]   %s\n%!" (Engine.Spec.describe record.Engine.Record.job)
  | Engine.Batch.Unrunnable { record; _ } ->
      Printf.eprintf "[error]   %s: %s\n%!"
        (Engine.Spec.describe record.Engine.Record.job)
        (Option.value ~default:""
           (Engine.Record.status_detail record.Engine.Record.status))
  | Engine.Batch.Pool (Engine.Pool.Started { job; worker; attempt; _ }) ->
      Printf.eprintf "[w%d]      %s%s\n%!" worker (Engine.Spec.describe job)
        (if attempt > 1 then Printf.sprintf " (attempt %d)" attempt else "")
  | Engine.Batch.Pool (Engine.Pool.Finished { record; _ }) ->
      Printf.eprintf "[%s] %6.2fs %s%s\n%!"
        (Engine.Record.status_name record.Engine.Record.status)
        record.Engine.Record.timing.Engine.Record.wall_s
        (Engine.Spec.describe record.Engine.Record.job)
        (match Engine.Record.status_detail record.Engine.Record.status with
        | Some d -> ": " ^ d
        | None -> "")
  | Engine.Batch.Pool (Engine.Pool.Retrying { job; attempt; delay_s; _ }) ->
      Printf.eprintf "[retry]   %s: attempt %d in %.1fs\n%!"
        (Engine.Spec.describe job) attempt delay_s
  | Engine.Batch.Pool (Engine.Pool.Interrupted { pending }) ->
      Printf.eprintf "[sigint]  draining; skipping %d queued jobs\n%!" pending

let run_batch trace stats manifest files experiments k eps seed algorithm
    metric threads jobs timeout cache_dir no_cache retries format =
  setup_obs trace stats;
  let config =
    { Engine.Spec.k; eps; algorithm; metric; parallel = threads > 0 }
  in
  let manifest_jobs =
    match manifest with
    | None -> Ok []
    | Some path ->
        Engine.Manifest.load ~known_experiments:Experiments.ids path
  in
  match manifest_jobs with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
  | Ok manifest_jobs -> (
      let ad_hoc =
        List.map
          (fun path ->
            { Engine.Spec.instance = Engine.Spec.Hmetis_file path; config;
              seed; timeout_s = timeout })
          files
        @ List.map
            (fun id ->
              { Engine.Spec.instance = Engine.Spec.Experiment id;
                config = Engine.Spec.default_config; seed = 0;
                timeout_s = timeout })
            experiments
      in
      let plans = manifest_jobs @ ad_hoc in
      match
        List.find_opt
          (fun id -> not (List.mem id Experiments.ids))
          experiments
      with
      | Some id ->
          Printf.eprintf "error: unknown experiment %s; valid: %s\n" id
            (String.concat " " Experiments.ids);
          2
      | None when plans = [] ->
          Printf.eprintf
            "error: nothing to run (give a --manifest, hypergraph FILEs or \
             --experiment ids)\n";
          2
      | None -> (
          let pool =
            {
              Engine.Pool.default_config with
              jobs;
              retries;
              default_timeout_s = timeout;
              silence_worker_stdout = true;
              handle_sigint = true;
              solver_threads = threads;
            }
          in
          let batch_config =
            { Engine.Batch.pool;
              cache_dir = (if no_cache then None else Some cache_dir) }
          in
          let on_event ev =
            match format with `Text -> batch_progress_line ev | `Json -> ()
          in
          match Engine.Batch.run ~on_event batch_config plans with
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              2
          | Ok report ->
              (match format with
              | `Json ->
                  print_endline
                    (Obs.Json.to_string
                       (Engine.Batch.report_to_json ~jobs report))
              | `Text ->
                  let s = report.Engine.Batch.stats in
                  Printf.printf
                    "jobs  : %d total, %d from cache, %d ok, %d failed, %d \
                     timeouts, %d crashes, %d skipped (%d retries)\n"
                    s.Engine.Batch.total s.Engine.Batch.from_cache
                    s.Engine.Batch.ok s.Engine.Batch.failed
                    s.Engine.Batch.timeouts s.Engine.Batch.crashes
                    s.Engine.Batch.skipped s.Engine.Batch.retries;
                  (match s.Engine.Batch.cache with
                  | Some c ->
                      Printf.printf
                        "cache : %d hits, %d misses, %d stores, %d corrupt\n"
                        c.Engine.Cache.hits c.Engine.Cache.misses
                        c.Engine.Cache.stores c.Engine.Cache.corrupt
                  | None -> ());
                  Printf.printf "wall  : %.2fs with %d worker%s\n"
                    report.Engine.Batch.wall_s jobs
                    (if jobs = 1 then "" else "s"));
              if Engine.Batch.all_ok report then 0 else 1))

let batch_cmd =
  let manifest_arg =
    let doc =
      Printf.sprintf "Job manifest (JSON, schema %s) to expand and run."
        Engine.Manifest.schema_version
    in
    Arg.(
      value & opt (some file) None & info [ "manifest" ] ~docv:"MANIFEST" ~doc)
  in
  let files_arg =
    let doc = "hMETIS hypergraph files to partition as ad-hoc jobs." in
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let experiments_arg =
    let doc = "Paper experiment ids (E1..) to run as ad-hoc jobs." in
    Arg.(
      value & opt_all string [] & info [ "experiment" ] ~docv:"ID" ~doc)
  in
  let spec_algorithm_arg =
    let doc =
      Printf.sprintf "Algorithm for ad-hoc FILE jobs: %s."
        (String.concat ", " (List.map fst Engine.Spec.algorithms))
    in
    Arg.(
      value
      & opt (enum Engine.Spec.algorithms) Engine.Spec.Multilevel
      & info [ "a"; "algorithm" ] ~doc)
  in
  let spec_metric_arg =
    let doc = "Cost metric for ad-hoc FILE jobs: connectivity or cutnet." in
    Arg.(
      value
      & opt (enum Engine.Spec.metrics) Partition.Connectivity
      & info [ "metric" ] ~doc)
  in
  let jobs_arg =
    let doc = "Worker processes to run in parallel." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let solver_threads_arg =
    let doc =
      "Solver domains per worker for ad-hoc FILE jobs (0 = sequential \
       path).  Marks those jobs parallel — a different algorithm, hence a \
       different cache fingerprint — while the result stays independent \
       of N (the engine always runs the parallel solver deterministically)."
    in
    Arg.(value & opt int 0 & info [ "threads" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Default wall-clock budget per job in seconds (SIGKILL on expiry); \
       manifest entries may override it."
    in
    Arg.(
      value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)
  in
  let cache_dir_arg =
    let doc = "Result cache directory." in
    Arg.(
      value
      & opt string Engine.Batch.default_cache_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the result cache (neither read nor write it)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let retries_arg =
    let doc = "Extra attempts for crashed workers (timeouts never retry)." in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let format_arg =
    let doc = "Output format: text or json (hypartition-batch/1)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let info =
    Cmd.info "batch"
      ~doc:
        "Run a job plan (manifest and/or ad-hoc instances) through the \
         parallel, fault-isolated execution engine with a content-addressed \
         result cache.  Exits non-zero if any job ultimately fails."
  in
  Cmd.v info
    Term.(
      const run_batch $ trace_arg $ stats_flag $ manifest_arg $ files_arg
      $ experiments_arg $ k_arg $ eps_arg $ seed_arg $ spec_algorithm_arg
      $ spec_metric_arg $ solver_threads_arg $ jobs_arg $ timeout_arg
      $ cache_dir_arg $ no_cache_arg $ retries_arg $ format_arg)

let main =
  let info =
    Cmd.info "hypartition" ~version:"1.0.0"
      ~doc:"Balanced k-way hypergraph partitioning toolkit."
  in
  Cmd.group info
    [
      partition_cmd; stats_cmd; recognize_cmd; hierarchical_cmd;
      schedule_cmd; convert_cmd; evaluate_cmd; generate_cmd; check_cmd;
      lint_cmd; analyze_cmd; bench_cmd; trace_cmd; report_cmd; batch_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval' main)
