(* DOM10: under the Parsetree fallback an unanalyzed external widens the
   hot function to unknown — a warning, unlike the typed front's DOM09. *)

let solve name = Unix.getenv name
