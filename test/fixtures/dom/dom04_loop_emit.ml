(* DOM04 fixture: per-event counter emission inside a hot-path loop.
   The compliant variant accumulates locally and flushes once with
   Counter.add (see test_analyze.ml). *)
module Counter = struct
  let incr _ = ()

  let add _ _ = ()
end

let c_steps = 0

let walk n =
  for _ = 1 to n do
    Counter.incr c_steps
  done
