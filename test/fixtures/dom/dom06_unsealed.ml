(* DOM06 fixture: an unsafe mutable global in a lib module without a
   sealing .mli — nothing states the mutation contract. *)
let total = ref 0
