(* DOM01 fixture: a module-global ref referenced from a hot-path
   function.  The compliant variant (Atomic.make) lives in
   test_analyze.ml as the mutation pair. *)
let hits = ref 0

let solve x =
  hits := !hits + 1;
  x + !hits
