(* DOM08: the marks array projected out of a Workspace.t is stored into
   module state — interior scratch escaping its owning workspace. *)

module Workspace = struct
  type t = { mutable marks : int array }

  let create n = { marks = Array.make n 0 }
end

let stash = ref [||]

let solve (ws : Workspace.t) n =
  stash := ws.Workspace.marks;
  n
