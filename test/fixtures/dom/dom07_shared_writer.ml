(* DOM07: [note] writes a module-global mutable and is reachable from
   the solver entry points — the effect analysis blames the leaf. *)

let total = ref 0

let note n = total := !total + n

let solve x =
  note x;
  x + 1
