(* DOM05 fixture: a toplevel Hashtbl in a hot-path module (the test
   feeds this file in under lib/solvers/).  SRC09 catches the
   expression-level uses; DOM05 is its module-scope promotion. *)
let cache : (int, int) Hashtbl.t = Hashtbl.create 64

let lookup k = Hashtbl.find_opt cache k
