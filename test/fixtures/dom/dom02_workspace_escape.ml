(* DOM02 fixture: a Workspace value stored into module state — the
   escape the ownership check exists to catch. *)
module Workspace = struct
  type t = { mutable marks : int array }

  let create n = { marks = Array.make n 0 }
end

let stash = ref None

let leak n =
  stash := Some (Workspace.create n);
  n
