(* DOM03 fixture: the stdlib's implicit global PRNG in library code
   breaks the jobs-1-vs-N determinism guarantee. *)
let jitter n = n + Random.int 3
