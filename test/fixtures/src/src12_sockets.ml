(* SRC12: socket plumbing outside a designated networking module.
   Committed so the lint.config allowlist entry for test/fixtures is
   exercised by the repo's own lint run; [Unix.connect]/[Unix.read] stay
   unflagged (consuming an endpoint is fine anywhere — only owning a
   listening socket is fenced). *)

let listen path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fst (Unix.accept fd)

let dial path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd
