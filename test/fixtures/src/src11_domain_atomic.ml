(* SRC11: multicore primitives outside a designated concurrency module.
   Committed so the lint.config allowlist entry for test/fixtures is
   exercised by the repo's own lint run; [Domain.join] stays unflagged
   (only spawn/create and Atomic.* are fenced). *)

let flag = Atomic.make false

let run f =
  let d = Domain.spawn f in
  Atomic.set flag true;
  Domain.join d
