(* The domain-safety analyzer (lib/analysis_dom): every DOM rule must
   fire on its fixture at the exact line, fall silent on the compliant
   mutation, and obey the shared suppression machinery.  The syntactic
   rules run through the filesystem-free [Driver.analyze_sources]
   (Parsetree front) against the committed fixtures in
   test/fixtures/dom/; the typed-front tests compile a fixture with
   `ocamlc -bin-annot` into a temp tree and drive the full [Driver.run]
   pipeline — harvest, classification, call graph — over the .cmt. *)

module AD = Analysis_dom
module L = Lint
module C = Analysis_core.Check

(* Built by concatenation so the repo linter's line-based marker scan
   never sees a complete marker inside this test's own source. *)
let marker rest = "(* hyp" ^ "lint: " ^ rest ^ " *)"

let em_dash = "\xe2\x80\x94"

let read_file path = In_channel.with_open_bin path In_channel.input_all
let fixture name = read_file (Filename.concat "fixtures/dom" name)

let analyze ?config ?entries ?certificate files =
  AD.Driver.analyze_sources ?config ?entries ?certificate ~root:"." files

let find_all ~rule (r : AD.Driver.result) =
  List.filter (fun (f : L.Rules.finding) -> String.equal f.rule rule) r.findings

let fires ~rule ~file ~line (r : AD.Driver.result) =
  List.exists
    (fun (f : L.Rules.finding) ->
      String.equal f.rule rule && String.equal f.file file && f.line = line)
    r.findings

let check_fires name ~rule ~file ~line r =
  if not (fires ~rule ~file ~line r) then
    Alcotest.failf "%s: expected %s at %s:%d, report was\n%s" name rule file
      line
      (C.to_string (AD.Driver.report r))

let check_silent name ~rule r =
  match find_all ~rule r with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%s: unexpected %s at %s:%d" name rule f.L.Rules.file
        f.L.Rules.line

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  nn > 0 && go 0

(* ---- catalogue and the shared --rules renderer -------------------------- *)

let test_catalogue () =
  Alcotest.(check (list string))
    "stable rule ids"
    [
      "DOM00"; "DOM01"; "DOM02"; "DOM03"; "DOM04"; "DOM05"; "DOM06"; "DOM07";
      "DOM08"; "DOM09"; "DOM10"; "DOM11";
    ]
    (List.map fst AD.Dom_rules.catalogue);
  (* one renderer for both tools: every id of either catalogue appears
     in its rendering, formatted identically *)
  let dom = L.Rules.render_catalogue AD.Dom_rules.catalogue in
  let src = L.Rules.render_catalogue L.catalogue in
  List.iter
    (fun (id, _) ->
      Alcotest.(check bool) (id ^ " rendered") true (contains dom (id ^ " ")))
    AD.Dom_rules.catalogue;
  List.iter
    (fun (id, _) ->
      Alcotest.(check bool) (id ^ " rendered") true (contains src (id ^ " ")))
    L.catalogue;
  (* every rendered line carries the introducing PR (the since column) *)
  List.iter
    (fun (id, _) ->
      Alcotest.(check bool)
        (id ^ " has since") true
        (contains dom (Printf.sprintf "%-8s %-6s" id (L.Rules.since id))))
    AD.Dom_rules.catalogue;
  Alcotest.(check string) "DOM01 since" "PR6" (L.Rules.since "DOM01");
  Alcotest.(check string) "DOM11 since" "PR8" (L.Rules.since "DOM11")

(* ---- DOM01: hot module-global mutable ----------------------------------- *)

let entries_for m = [ (m, "*") ]

let test_dom01 () =
  let path = "lib/x/dom01_hot_ref.ml" in
  let files = [ (path, fixture "dom01_hot_ref.ml"); (path ^ "i", "") ] in
  let r = analyze ~entries:(entries_for "Dom01_hot_ref") files in
  check_fires "hot ref" ~rule:"DOM01" ~file:path ~line:4 r;
  (* compliant mutation: the same state behind Atomic *)
  let ok =
    "let hits = Atomic.make 0\n\
     let solve x =\n\
    \  Atomic.incr hits;\n\
    \  x + Atomic.get hits\n"
  in
  let r =
    analyze
      ~entries:(entries_for "Dom01_hot_ref")
      [ (path, ok); (path ^ "i", "") ]
  in
  check_silent "atomic is safe" ~rule:"DOM01" r;
  (* cold mutation: the global exists but no hot function touches it *)
  let cold = "let hits = ref 0\n" in
  let r =
    analyze
      ~entries:(entries_for "Dom01_hot_ref")
      [ (path, cold); (path ^ "i", "") ]
  in
  check_silent "cold global is inventory-only" ~rule:"DOM01" r

(* ---- DOM02: Workspace ownership/escape ---------------------------------- *)

let test_dom02 () =
  let path = "lib/x/dom02_workspace_escape.ml" in
  let files = [ (path, fixture "dom02_workspace_escape.ml"); (path ^ "i", "") ] in
  let r = analyze ~entries:(entries_for "Dom02_workspace_escape") files in
  check_fires "escape via :=" ~rule:"DOM02" ~file:path ~line:12 r;
  (* a module-global Workspace binding is an escape in itself *)
  let global =
    "module Workspace = struct\n\
    \  type t = { mutable marks : int array }\n\n\
    \  let create n = { marks = Array.make n 0 }\n\
     end\n\n\
     let shared = Workspace.create 8\n"
  in
  let r =
    analyze
      ~entries:(entries_for "Dom02_workspace_escape")
      [ (path, global); (path ^ "i", "") ]
  in
  check_fires "module-global workspace" ~rule:"DOM02" ~file:path ~line:7 r;
  (* compliant: created, used, dropped inside the solve *)
  let ok =
    "module Workspace = struct\n\
    \  type t = { mutable marks : int array }\n\n\
    \  let create n = { marks = Array.make n 0 }\n\
     end\n\n\
     let solve n =\n\
    \  let ws = Workspace.create n in\n\
    \  Array.length ws.Workspace.marks\n"
  in
  let r =
    analyze
      ~entries:(entries_for "Dom02_workspace_escape")
      [ (path, ok); (path ^ "i", "") ]
  in
  check_silent "confined workspace" ~rule:"DOM02" r

(* ---- DOM03: shared PRNG state ------------------------------------------- *)

let test_dom03 () =
  let path = "lib/x/dom03_global_random.ml" in
  let files = [ (path, fixture "dom03_global_random.ml"); (path ^ "i", "") ] in
  let r = analyze files in
  check_fires "global Random" ~rule:"DOM03" ~file:path ~line:3 r;
  (* a module-global Rng is shared state even without Random.* calls *)
  let global_rng =
    "module Rng = struct\n\
    \  type t = int ref\n\n\
    \  let create s = ref s\n\
     end\n\n\
     let default = Rng.create 1\n"
  in
  let r = analyze [ (path, global_rng); (path ^ "i", "") ] in
  check_fires "module-global rng" ~rule:"DOM03" ~file:path ~line:7 r;
  (* compliant: explicit state threading *)
  let ok = "let jitter state n = n + (state mod 3)\n" in
  let r = analyze [ (path, ok); (path ^ "i", "") ] in
  check_silent "explicit state" ~rule:"DOM03" r;
  (* bench/ may seed however it likes — the rule covers lib/ only *)
  let r = analyze [ ("bench/x.ml", fixture "dom03_global_random.ml") ] in
  check_silent "bench exempt" ~rule:"DOM03" r

(* ---- DOM04: per-event obs emission in a hot loop ------------------------ *)

let test_dom04 () =
  let path = "lib/x/dom04_loop_emit.ml" in
  let files = [ (path, fixture "dom04_loop_emit.ml"); (path ^ "i", "") ] in
  let r = analyze ~entries:(entries_for "Dom04_loop_emit") files in
  check_fires "incr in loop" ~rule:"DOM04" ~file:path ~line:14 r;
  (* compliant: local accumulator, one flush after the loop *)
  let ok =
    "module Counter = struct\n\
    \  let incr _ = ()\n\n\
    \  let add _ _ = ()\n\
     end\n\n\
     let c_steps = 0\n\n\
     let walk n =\n\
    \  let steps = ref 0 in\n\
    \  for _ = 1 to n do\n\
    \    incr steps\n\
    \  done;\n\
    \  Counter.add c_steps !steps\n"
  in
  let r =
    analyze ~entries:(entries_for "Dom04_loop_emit")
      [ (path, ok); (path ^ "i", "") ]
  in
  check_silent "batched flush" ~rule:"DOM04" r;
  (* a cold function may emit per-event (the engine pool does) *)
  let r = analyze ~entries:[ ("Elsewhere", "*") ] files in
  check_silent "cold emitter" ~rule:"DOM04" r

(* ---- DOM05: toplevel Hashtbl in a hot-path module ----------------------- *)

let test_dom05 () =
  let hot_path = "lib/solvers/dom05_toplevel_hashtbl.ml" in
  let src = fixture "dom05_toplevel_hashtbl.ml" in
  let r =
    analyze
      ~entries:(entries_for "Dom05_toplevel_hashtbl")
      [ (hot_path, src); (hot_path ^ "i", "") ]
  in
  check_fires "hashtbl in solvers" ~rule:"DOM05" ~file:hot_path ~line:4 r;
  check_silent "DOM05 subsumes DOM01 here" ~rule:"DOM01" r;
  (* the same module outside the hot directories is DOM01 territory *)
  let cold_path = "lib/x/dom05_toplevel_hashtbl.ml" in
  let r =
    analyze
      ~entries:(entries_for "Dom05_toplevel_hashtbl")
      [ (cold_path, src); (cold_path ^ "i", "") ]
  in
  check_silent "not a hot dir" ~rule:"DOM05" r;
  check_fires "plain DOM01 instead" ~rule:"DOM01" ~file:cold_path ~line:4 r

(* ---- DOM06: mutable globals without a sealing .mli ---------------------- *)

let test_dom06 () =
  let path = "lib/x/dom06_unsealed.ml" in
  let src = fixture "dom06_unsealed.ml" in
  let r = analyze [ (path, src) ] in
  check_fires "unsealed" ~rule:"DOM06" ~file:path ~line:3 r;
  let r = analyze [ (path, src); (path ^ "i", "val total : int ref\n") ] in
  check_silent "sealed" ~rule:"DOM06" r

(* ---- DOM07: shared-mutating function on the hot path -------------------- *)

let test_dom07 () =
  let path = "lib/x/dom07_shared_writer.ml" in
  let files = [ (path, fixture "dom07_shared_writer.ml"); (path ^ "i", "") ] in
  let r = analyze ~entries:(entries_for "Dom07_shared_writer") files in
  (* the finding lands on the leaf writer, not on every caller *)
  check_fires "leaf writer" ~rule:"DOM07" ~file:path ~line:6 r;
  Alcotest.(check int) "exactly one DOM07" 1 (List.length (find_all ~rule:"DOM07" r));
  (* the effect analysis classified both functions and built the chain *)
  (match AD.Effects.find r.AD.Driver.effects "Dom07_shared_writer.solve" with
  | None -> Alcotest.fail "solve not in the effect table"
  | Some i ->
      Alcotest.(check string)
        "caller classified" "shared_mutating"
        (AD.Effects.classification_to_string i.AD.Effects.e_class);
      Alcotest.(check bool)
        "caller is not a direct writer" true
        (i.AD.Effects.e_direct_writes = []));
  (* the --effects witness names the minimal chain to the leaf *)
  let w = AD.Effects.render_witnesses r.AD.Driver.effects in
  Alcotest.(check bool)
    "witness chain" true
    (contains w
       "writes Dom07_shared_writer.total via Dom07_shared_writer.solve -> \
        Dom07_shared_writer.note");
  (* compliant: the accumulator threads through, nothing global *)
  let ok = "let note acc n = acc + n\n\nlet solve x = note 0 x\n" in
  let r =
    analyze
      ~entries:(entries_for "Dom07_shared_writer")
      [ (path, ok); (path ^ "i", "") ]
  in
  check_silent "threaded accumulator" ~rule:"DOM07" r;
  (* cold writer: same body, no entry point reaches it *)
  let r = analyze ~entries:[ ("Elsewhere", "*") ] files in
  check_silent "cold writer" ~rule:"DOM07" r

(* ---- DOM08: Workspace interior escaping --------------------------------- *)

let test_dom08 () =
  let path = "lib/x/dom08_ws_interior.ml" in
  let files = [ (path, fixture "dom08_ws_interior.ml"); (path ^ "i", "") ] in
  let r = analyze ~entries:(entries_for "Dom08_ws_interior") files in
  check_fires "interior store" ~rule:"DOM08" ~file:path ~line:13 r;
  (* compliant: the projection is used and dropped inside the solve *)
  let ok =
    "module Workspace = struct\n\
    \  type t = { mutable marks : int array }\n\n\
    \  let create n = { marks = Array.make n 0 }\n\
     end\n\n\
     let solve (ws : Workspace.t) n =\n\
    \  Array.length ws.Workspace.marks + n\n"
  in
  let r =
    analyze
      ~entries:(entries_for "Dom08_ws_interior")
      [ (path, ok); (path ^ "i", "") ]
  in
  check_silent "confined projection" ~rule:"DOM08" r

(* ---- DOM10: Parsetree-front unknown (warning) --------------------------- *)

let test_dom10 () =
  let path = "lib/x/dom10_parse_unknown.ml" in
  let files = [ (path, fixture "dom10_parse_unknown.ml"); (path ^ "i", "") ] in
  let r = analyze ~entries:(entries_for "Dom10_parse_unknown") files in
  check_fires "external widens" ~rule:"DOM10" ~file:path ~line:4 r;
  (match find_all ~rule:"DOM10" r with
  | [ f ] ->
      Alcotest.(check bool)
        "warning, not error" true
        (f.L.Rules.severity = C.Warning)
  | l -> Alcotest.failf "expected one DOM10, got %d" (List.length l));
  (* a benign external does not widen *)
  let ok = "let solve xs = List.length xs\n" in
  let r =
    analyze
      ~entries:(entries_for "Dom10_parse_unknown")
      [ (path, ok); (path ^ "i", "") ]
  in
  check_silent "benign external" ~rule:"DOM10" r

(* ---- DOM11: certificate staleness --------------------------------------- *)

let cert_of (r : AD.Driver.result) =
  AD.Inventory.render (AD.Effects.to_json r.AD.Driver.effects)

let test_dom11 () =
  let path = "lib/x/dom07_shared_writer.ml" in
  let files = [ (path, fixture "dom07_shared_writer.ml"); (path ^ "i", "") ] in
  let entries = entries_for "Dom07_shared_writer" in
  let fresh = cert_of (analyze ~entries files) in
  (* a fresh certificate passes *)
  let r = analyze ~entries ~certificate:("analysis/effects.json", fresh) files in
  check_silent "fresh certificate" ~rule:"DOM11" r;
  (* flipping a certified classification is one stale entry *)
  let replace ~needle ~by hay =
    let nh = String.length hay and nn = String.length needle in
    let buf = Buffer.create nh in
    let i = ref 0 in
    while !i < nh do
      if !i + nn <= nh && String.sub hay !i nn = needle then begin
        Buffer.add_string buf by;
        i := !i + nn
      end
      else begin
        Buffer.add_char buf hay.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let stale =
    replace
      ~needle:"\"classification\": \"shared_mutating\""
      ~by:"\"classification\": \"pure\"" fresh
  in
  let r = analyze ~entries ~certificate:("analysis/effects.json", stale) files in
  check_fires "stale entry" ~rule:"DOM11" ~file:"analysis/effects.json" ~line:1 r;
  (* an unparseable document is a single finding, not a crash *)
  let r =
    analyze ~entries ~certificate:("analysis/effects.json", "{ nope") files
  in
  Alcotest.(check int) "one parse finding" 1
    (List.length (find_all ~rule:"DOM11" r));
  (* DOM11 obeys the shared suppression machinery *)
  let config, errs =
    L.Suppress.parse_config
      ("allow DOM11 analysis/effects.json " ^ em_dash
     ^ " regenerating in this same PR\n")
  in
  Alcotest.(check int) "config parses" 0 (List.length errs);
  let r =
    analyze ~config ~entries
      ~certificate:("analysis/effects.json", stale)
      files
  in
  check_silent "suppressed staleness" ~rule:"DOM11" r;
  Alcotest.(check bool)
    "reason recorded" true
    (List.exists
       (fun ((f : L.Rules.finding), reason) ->
         f.rule = "DOM11" && reason = "regenerating in this same PR")
       r.AD.Driver.suppressed)

(* ---- DOM00 and suppression ---------------------------------------------- *)

let test_dom00_parse_error () =
  let path = "lib/x/broken.ml" in
  let r = analyze [ (path, "let = = =\n") ] in
  check_fires "unparseable" ~rule:"DOM00" ~file:path ~line:1 r

let test_suppression () =
  let path = "lib/x/dom01_hot_ref.ml" in
  let body = fixture "dom01_hot_ref.ml" in
  (* inline marker directly above the flagged line *)
  let with_marker =
    let lines = String.split_on_char '\n' body in
    let rec inject = function
      | [] -> []
      | l :: rest ->
          if String.length l >= 7 && String.sub l 0 7 = "let hit" then
            (marker ("allow DOM01 " ^ em_dash ^ " single-domain test gate"))
            :: l :: rest
          else l :: inject rest
    in
    String.concat "\n" (inject lines)
  in
  let r =
    analyze
      ~entries:(entries_for "Dom01_hot_ref")
      [ (path, with_marker); (path ^ "i", "") ]
  in
  check_silent "marker suppresses" ~rule:"DOM01" r;
  (match r.AD.Driver.suppressed with
  | [ (f, reason) ] ->
      Alcotest.(check string) "rule" "DOM01" f.L.Rules.rule;
      Alcotest.(check string) "reason" "single-domain test gate" reason
  | l -> Alcotest.failf "expected one suppressed finding, got %d" (List.length l));
  (* lint.config entry with a reason *)
  let config, errs =
    L.Suppress.parse_config
      ("allow DOM01 lib/x " ^ em_dash ^ " confined by the test harness\n")
  in
  Alcotest.(check int) "config parses" 0 (List.length errs);
  let r =
    analyze ~config
      ~entries:(entries_for "Dom01_hot_ref")
      [ (path, body); (path ^ "i", "") ]
  in
  check_silent "config suppresses" ~rule:"DOM01" r;
  Alcotest.(check int) "suppressed recorded" 1 (List.length r.AD.Driver.suppressed)

let test_stale_dom_marker () =
  let path = "lib/x/clean.ml" in
  let src =
    marker ("allow DOM01 " ^ em_dash ^ " nothing here anymore") ^ "\nlet x = 1\n"
  in
  let r = analyze [ (path, src); (path ^ "i", "") ] in
  check_fires "stale DOM marker" ~rule:"DOM00" ~file:path ~line:1 r;
  (* an unused SRC-only marker is hyplint's to police, not ours *)
  let src =
    marker ("allow SRC03 " ^ em_dash ^ " printing moved away") ^ "\nlet x = 1\n"
  in
  let r = analyze [ (path, src); (path ^ "i", "") ] in
  check_silent "SRC markers not ours" ~rule:"DOM00" r

(* The mirror image: hyplint must not flag unused DOM-only markers as
   stale SRC00 — those belong to the analyzer. *)
let test_lint_ignores_dom_markers () =
  let path = "lib/x/clean.ml" in
  let src =
    marker ("allow DOM01 " ^ em_dash ^ " analyzer-owned suppression")
    ^ "\nlet x = 1\n"
  in
  let r =
    L.Engine.lint_sources ~root:"." [ (path, src); (path ^ "i", "") ]
  in
  let src00 =
    List.filter
      (fun (f : L.Rules.finding) -> String.equal f.rule "SRC00")
      r.L.Engine.findings
  in
  Alcotest.(check int) "no SRC00 for DOM markers" 0 (List.length src00)

(* ---- determinism -------------------------------------------------------- *)

let test_determinism () =
  let files =
    [
      ("lib/x/dom01_hot_ref.ml", fixture "dom01_hot_ref.ml");
      ("lib/x/dom02_workspace_escape.ml", fixture "dom02_workspace_escape.ml");
      ("lib/x/dom03_global_random.ml", fixture "dom03_global_random.ml");
      ("lib/solvers/dom05_toplevel_hashtbl.ml", fixture "dom05_toplevel_hashtbl.ml");
    ]
  in
  let run () =
    let r = analyze ~entries:(entries_for "Dom01_hot_ref") files in
    ( Obs.Json.to_string (AD.Driver.to_json r),
      AD.Inventory.render r.inventory,
      cert_of r )
  in
  let j1, i1, c1 = run () in
  let j2, i2, c2 = run () in
  Alcotest.(check string) "analyze --json byte-match" j1 j2;
  Alcotest.(check string) "inventory byte-match" i1 i2;
  Alcotest.(check string) "effects certificate byte-match" c1 c2;
  (* the pretty renderings parse back *)
  (match Obs.Json.parse i1 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "inventory does not re-parse: %s" e);
  match Obs.Json.parse c1 with
  | Ok j ->
      let schema =
        Option.bind (Obs.Json.member "schema" j) Obs.Json.get_str
      in
      Alcotest.(check (option string))
        "certificate schema"
        (Some "hypartition-effects/1") schema
  | Error e -> Alcotest.failf "certificate does not re-parse: %s" e

(* ---- the typed front, end to end over real .cmt files ------------------- *)

let typed_fixture_main =
  "type counter = { mutable n : int }\n\n\
   type t = counter\n\n\
   let c : t = { n = 0 }\n\n\
   let bump () = c.n <- c.n + 1\n"

let typed_fixture_ws =
  "module Workspace = struct\n\
  \  type t = { mutable marks : int array }\n\n\
  \  let create n = { marks = Array.make n 0 }\n\
   end\n\n\
   let acquire n = Workspace.create n\n"

(* [fetch]'s only effect is an unanalyzed external (Sys.getenv): under
   the typed front that is DOM09, an error; [pick] stays pure through
   the benign allowlist (String.length). *)
let typed_fixture_ext =
  "let fetch name = Sys.getenv name\n\nlet pick s = String.length s\n"

let with_temp_tree f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hypartition_dom_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc content)

let test_typed_front () =
  with_temp_tree (fun root ->
      let libdir = Filename.concat root "lib" in
      Sys.mkdir libdir 0o755;
      Sys.mkdir (Filename.concat libdir "fix") 0o755;
      write_file (Filename.concat libdir "fix/dom_typed.ml") typed_fixture_main;
      write_file (Filename.concat libdir "fix/dom_typed_ws.ml") typed_fixture_ws;
      write_file (Filename.concat libdir "fix/dom_typed_ext.ml") typed_fixture_ext;
      let compile file =
        let cmd =
          Printf.sprintf "cd %s && ocamlc -bin-annot -w -a -c %s 2>/dev/null"
            (Filename.quote root) (Filename.quote file)
        in
        Alcotest.(check int) ("compile " ^ file) 0 (Sys.command cmd)
      in
      compile "lib/fix/dom_typed.ml";
      compile "lib/fix/dom_typed_ws.ml";
      compile "lib/fix/dom_typed_ext.ml";
      match
        AD.Driver.run ~root ~build_dir:root
          ~entries:
            [ ("Dom_typed", "*"); ("Dom_typed_ws", "*"); ("Dom_typed_ext", "*") ]
          ()
      with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check int) "all units typed" 3 r.AD.Driver.n_typed;
          Alcotest.(check int) "no parse fallback" 0 r.AD.Driver.n_parse;
          (* the harvest saw through the `t = counter` alias to the
             mutable record — classification no syntax pass can make *)
          check_fires "DOM01 via harvest" ~rule:"DOM01"
            ~file:"lib/fix/dom_typed.ml" ~line:5 r;
          (* the principal type of [acquire] mentions Workspace.t even
             though the source never writes the type *)
          check_fires "DOM02 via inferred return type" ~rule:"DOM02"
            ~file:"lib/fix/dom_typed_ws.ml" ~line:7 r;
          (* unsealed units with unsafe globals: DOM06 from the cmt *)
          check_fires "DOM06 from typed unit" ~rule:"DOM06"
            ~file:"lib/fix/dom_typed.ml" ~line:5 r;
          (* the typed front's external widening is DOM09, an error *)
          check_fires "DOM09 from typed unit" ~rule:"DOM09"
            ~file:"lib/fix/dom_typed_ext.ml" ~line:1 r;
          (match find_all ~rule:"DOM09" r with
          | [ f ] ->
              Alcotest.(check bool)
                "DOM09 is an error" true
                (f.L.Rules.severity = C.Error);
              Alcotest.(check bool)
                "DOM09 names the external" true
                (contains f.L.Rules.message "Sys.getenv")
          | l -> Alcotest.failf "expected one DOM09, got %d" (List.length l));
          (* the benign allowlist keeps the sibling pure *)
          match AD.Effects.find r.AD.Driver.effects "Dom_typed_ext.pick" with
          | Some i ->
              Alcotest.(check string)
                "pick stays pure" "pure"
                (AD.Effects.classification_to_string i.AD.Effects.e_class)
          | None -> Alcotest.fail "pick not in the effect table")

(* ---- docs stay in sync with both catalogues ----------------------------- *)

let test_docs_in_sync () =
  let readme = read_file "../README.md" in
  let design = read_file "../DESIGN.md" in
  List.iter
    (fun (id, _) ->
      Alcotest.(check bool) ("README mentions " ^ id) true (contains readme id);
      Alcotest.(check bool) ("DESIGN mentions " ^ id) true (contains design id))
    (L.catalogue @ AD.Dom_rules.catalogue)

let suite =
  [
    Alcotest.test_case "catalogue + shared renderer" `Quick test_catalogue;
    Alcotest.test_case "DOM01 hot mutable global" `Quick test_dom01;
    Alcotest.test_case "DOM02 workspace escape" `Quick test_dom02;
    Alcotest.test_case "DOM03 shared PRNG" `Quick test_dom03;
    Alcotest.test_case "DOM04 loop emission" `Quick test_dom04;
    Alcotest.test_case "DOM05 hot-dir hashtbl" `Quick test_dom05;
    Alcotest.test_case "DOM06 unsealed mutable" `Quick test_dom06;
    Alcotest.test_case "DOM07 hot shared writer" `Quick test_dom07;
    Alcotest.test_case "DOM08 workspace interior escape" `Quick test_dom08;
    Alcotest.test_case "DOM10 parse-front unknown" `Quick test_dom10;
    Alcotest.test_case "DOM11 certificate staleness" `Quick test_dom11;
    Alcotest.test_case "DOM00 parse error" `Quick test_dom00_parse_error;
    Alcotest.test_case "suppression with reasons" `Quick test_suppression;
    Alcotest.test_case "stale DOM markers" `Quick test_stale_dom_marker;
    Alcotest.test_case "lint ignores DOM markers" `Quick
      test_lint_ignores_dom_markers;
    Alcotest.test_case "JSON determinism" `Quick test_determinism;
    Alcotest.test_case "typed front end-to-end" `Quick test_typed_front;
    Alcotest.test_case "docs in sync" `Quick test_docs_in_sync;
  ]
