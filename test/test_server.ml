(* lib/server: the serving subsystem.  Protocol codec and incremental
   decoder, admission control, the hot-instance LRU, single-flight job
   registry, SLO accounting — and end-to-end daemon/client runs over a
   real Unix-domain socket.  Daemon, clients and load generator are all
   steppable state machines, so a whole serving session interleaves in
   this one thread (tests can neither fork nor spawn threads; forking
   belongs to the engine pool the daemon drives). *)

module S = Server
module E = Engine

let temp_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Sys.mkdir base 0o700;
  base

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> output_string oc content)

let gen_job ?(k = 2) ?(seed = 1) ?(n = 40) ?timeout_s () =
  {
    E.Spec.instance = E.Spec.Generated { kind = E.Spec.Uniform; n };
    config = { E.Spec.default_config with E.Spec.k };
    seed;
    timeout_s;
  }

let json_str j = Obs.Json.to_string j

(* ---- protocol codec ------------------------------------------------------ *)

let test_protocol_roundtrip () =
  let requests =
    [
      S.Protocol.Submit { id = 3; job = gen_job ~seed:9 () };
      S.Protocol.Status { id = 1 };
      S.Protocol.Result { id = 2 };
      S.Protocol.Cancel { id = 4 };
      S.Protocol.Stats;
      S.Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      let j = S.Protocol.request_to_json req in
      match S.Protocol.request_of_json j with
      | Ok req' ->
          Alcotest.(check string)
            "request roundtrips" (json_str j)
            (json_str (S.Protocol.request_to_json req'))
      | Error e -> Alcotest.failf "request failed to roundtrip: %s" e)
    requests;
  let responses =
    [
      S.Protocol.Ack { id = 1; fingerprint = "ab12"; position = 2 };
      S.Protocol.Busy
        { id = 2; reason = S.Protocol.Queue_full; queue_depth = 64 };
      S.Protocol.Busy
        { id = 3; reason = S.Protocol.Client_limit; queue_depth = 1 };
      S.Protocol.Busy { id = 4; reason = S.Protocol.Draining; queue_depth = 0 };
      S.Protocol.Info
        { id = 5; state = S.Protocol.Queued; position = Some 3 };
      S.Protocol.Info { id = 6; state = S.Protocol.Running; position = None };
      S.Protocol.Result_frame
        {
          id = 7;
          source = S.Protocol.Collapsed;
          record = Obs.Json.Obj [ ("status", Obs.Json.Str "ok") ];
        };
      S.Protocol.Cancelled { id = 8 };
      S.Protocol.Stats_frame (Obs.Json.Obj [ ("uptime_s", Obs.Json.Float 1.0) ]);
      S.Protocol.Error_frame { id = Some 9; message = "nope" };
      S.Protocol.Error_frame { id = None; message = "bad frame" };
      S.Protocol.Bye;
    ]
  in
  List.iter
    (fun resp ->
      let j = S.Protocol.response_to_json resp in
      match S.Protocol.response_of_json j with
      | Ok resp' ->
          Alcotest.(check string)
            "response roundtrips" (json_str j)
            (json_str (S.Protocol.response_to_json resp'))
      | Error e -> Alcotest.failf "response failed to roundtrip: %s" e)
    responses;
  (* Every frame self-describes. *)
  List.iter
    (fun req ->
      match
        Obs.Json.member "schema" (S.Protocol.request_to_json req)
      with
      | Some (Obs.Json.Str s) ->
          Alcotest.(check string) "schema tag" S.Protocol.schema_version s
      | _ -> Alcotest.fail "request frame lacks a schema tag")
    requests

let test_protocol_decoder () =
  let frames =
    [
      S.Protocol.request_to_json (S.Protocol.Status { id = 1 });
      S.Protocol.response_to_json S.Protocol.Bye;
      S.Protocol.request_to_json (S.Protocol.Submit { id = 2; job = gen_job () });
    ]
  in
  let wire = String.concat "" (List.map S.Protocol.encode frames) in
  (* Byte-at-a-time feeding must produce exactly the encoded frames. *)
  let d = S.Protocol.decoder () in
  let got = ref [] in
  String.iter
    (fun c ->
      S.Protocol.feed d (String.make 1 c);
      let rec drain () =
        match S.Protocol.next d with
        | Some j ->
            got := j :: !got;
            drain ()
        | None -> ()
      in
      drain ())
    wire;
  Alcotest.(check (list string))
    "byte-wise decode reproduces the frames"
    (List.map json_str frames)
    (List.map json_str (List.rev !got));
  Alcotest.(check bool) "no decoder error" true (S.Protocol.decoder_error d = None);
  (* A malformed length line poisons the decoder permanently: byte
     boundaries are lost, the connection must drop. *)
  let d = S.Protocol.decoder () in
  S.Protocol.feed d "banana\n";
  Alcotest.(check bool) "garbage length line poisons" true
    (S.Protocol.decoder_error d <> None);
  S.Protocol.feed d (S.Protocol.encode (List.hd frames));
  Alcotest.(check bool) "poisoned decoder yields nothing" true
    (S.Protocol.next d = None);
  (* An oversized announcement is rejected without buffering the body. *)
  let d = S.Protocol.decoder () in
  S.Protocol.feed d (string_of_int (S.Protocol.max_frame_bytes + 1) ^ "\n");
  Alcotest.(check bool) "oversized frame poisons" true
    (S.Protocol.decoder_error d <> None);
  (* An unparsable body is a framing error too. *)
  let d = S.Protocol.decoder () in
  S.Protocol.feed d "9\n{broken}\n";
  ignore (S.Protocol.next d : Obs.Json.t option);
  Alcotest.(check bool) "unparsable body poisons" true
    (S.Protocol.decoder_error d <> None)

(* ---- admission control --------------------------------------------------- *)

let test_admission () =
  let a =
    S.Admission.create { S.Admission.queue_limit = 3; per_client_limit = 2 }
  in
  let admit client = S.Admission.try_admit a ~client in
  Alcotest.(check bool) "first" true (admit 1 = S.Admission.Admit);
  Alcotest.(check bool) "second" true (admit 1 = S.Admission.Admit);
  (* The per-client cap trips before the global one: one client cannot
     occupy the whole queue. *)
  Alcotest.(check bool) "client cap" true (admit 1 = S.Admission.Client_limit);
  Alcotest.(check bool) "other client fits" true (admit 2 = S.Admission.Admit);
  Alcotest.(check bool) "queue full" true (admit 3 = S.Admission.Queue_full);
  Alcotest.(check int) "outstanding counts tickets" 3
    (S.Admission.outstanding a);
  S.Admission.release a ~client:1;
  Alcotest.(check bool) "release reopens the client" true
    (admit 1 = S.Admission.Admit);
  Alcotest.(check int) "client view" 2
    (S.Admission.client_outstanding a ~client:1);
  Alcotest.(check int) "forget drops all tickets" 2
    (S.Admission.forget_client a ~client:1);
  Alcotest.(check int) "only client 2 remains" 1 (S.Admission.outstanding a)

(* ---- hot-instance LRU ---------------------------------------------------- *)

let test_instances_lru () =
  let dir = temp_dir "hyp_lru" in
  let file i =
    let path = Filename.concat dir (Printf.sprintf "h%d.hgr" i) in
    (* i+2 distinct edges over 4 nodes so each file parses differently *)
    let edges =
      List.init (i + 2) (fun e -> Printf.sprintf "%d %d" ((e mod 3) + 1) 4)
    in
    write_file path
      (Printf.sprintf "%d 4\n%s\n" (i + 2) (String.concat "\n" edges));
    path
  in
  let l = S.Instances.create ~capacity:2 in
  let p0 = file 0 and p1 = file 1 and p2 = file 2 in
  (match S.Instances.load l p0 with
  | Some hg -> Alcotest.(check int) "parsed" 4 (Hypergraph.num_nodes hg)
  | None -> Alcotest.fail "load failed");
  Alcotest.(check bool) "hit after load" true (S.Instances.lookup l p0 <> None);
  ignore (S.Instances.load l p1);
  Alcotest.(check int) "two entries" 2 (S.Instances.length l);
  (* Touch p0 so p1 is the LRU victim. *)
  ignore (S.Instances.lookup l p0);
  ignore (S.Instances.load l p2);
  Alcotest.(check int) "capacity holds" 2 (S.Instances.length l);
  Alcotest.(check bool) "LRU evicted" true (S.Instances.lookup l p1 = None);
  Alcotest.(check bool) "recent survives" true (S.Instances.lookup l p0 <> None);
  (* Entries key on content, not just path: editing the file invalidates
     the cached parse instead of serving it stale. *)
  write_file p0 "1 4\n1 2 3 4\n";
  Alcotest.(check bool) "edited file misses" true
    (S.Instances.lookup l p0 = None);
  (match S.Instances.load l p0 with
  | Some hg -> Alcotest.(check int) "reparsed edges" 1 (Hypergraph.num_edges hg)
  | None -> Alcotest.fail "reload failed");
  (* Unreadable and malformed files are a miss, not an exception. *)
  Alcotest.(check bool) "missing file" true
    (S.Instances.load l (Filename.concat dir "absent.hgr") = None);
  let bad = Filename.concat dir "bad.hgr" in
  write_file bad "not a hypergraph\n";
  Alcotest.(check bool) "malformed file" true (S.Instances.load l bad = None)

(* ---- SLO accounting ------------------------------------------------------ *)

let member_exn name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "report lacks %S" name

let num_exn name j =
  match Obs.Json.get_float (member_exn name j) with
  | Some f -> f
  | None -> Alcotest.failf "%S is not numeric" name

let int_exn name j =
  match Obs.Json.get_int (member_exn name j) with
  | Some i -> i
  | None -> Alcotest.failf "%S is not an integer" name

let test_slo () =
  (* Nearest-rank: exact for small sample sets. *)
  let sorted = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 0.0)) "p25 is the 1st sample" 1.0
    (S.Slo.percentile sorted 0.25);
  Alcotest.(check (float 0.0)) "p50 is the 2nd sample" 2.0
    (S.Slo.percentile sorted 0.50);
  Alcotest.(check (float 0.0)) "p99 is the max" 4.0
    (S.Slo.percentile sorted 0.99);
  Alcotest.(check (float 0.0)) "empty set yields 0" 0.0
    (S.Slo.percentile [||] 0.5);
  let t = S.Slo.create () in
  S.Slo.record t S.Slo.Ok_solve ~latency_s:0.4;
  S.Slo.record t S.Slo.Ok_cache ~latency_s:0.1;
  S.Slo.record t S.Slo.Ok_collapsed ~latency_s:0.2;
  S.Slo.record t S.Slo.Busy ~latency_s:0.0;
  S.Slo.record t S.Slo.Error ~latency_s:0.0;
  Alcotest.(check int) "completed" 3 (S.Slo.completed t);
  Alcotest.(check int) "total" 5 (S.Slo.total t);
  let r = S.Slo.report t ~wall_s:2.0 in
  (match member_exn "schema" r with
  | Obs.Json.Str s ->
      Alcotest.(check string) "schema" S.Slo.schema_version s
  | _ -> Alcotest.fail "schema is not a string");
  let totals = member_exn "totals" r in
  Alcotest.(check int) "requests" 5 (int_exn "requests" totals);
  Alcotest.(check int) "ok" 3 (int_exn "ok" totals);
  let lat = member_exn "latency_s" r in
  Alcotest.(check (float 1e-9)) "p50" 0.2 (num_exn "p50" lat);
  Alcotest.(check (float 1e-9)) "p99 = max" 0.4 (num_exn "p99" lat);
  Alcotest.(check (float 1e-9)) "throughput = ok / wall" 1.5
    (num_exn "throughput_rps" r);
  let rates = member_exn "rates" r in
  Alcotest.(check (float 1e-9)) "error rate" 0.2 (num_exn "error" rates);
  Alcotest.(check (float 1e-9)) "backpressure rate" 0.2
    (num_exn "backpressure" rates);
  let cache = member_exn "cache" r in
  Alcotest.(check (float 1e-9)) "hit ratio = (cache+collapsed)/ok"
    (2.0 /. 3.0) (num_exn "hit_ratio" cache)

(* ---- single-flight registry ---------------------------------------------- *)

let fingerprint_exn job =
  match E.Spec.fingerprint ~schema:E.Record.schema_version job with
  | Ok fp -> fp
  | Error e -> Alcotest.failf "fingerprint failed: %s" e

let test_jobs_registry () =
  let t = S.Jobs.create () in
  let job = gen_job ~seed:5 () in
  let fp = fingerprint_exn job in
  let e1 =
    match S.Jobs.submit t ~fingerprint:fp ~job ~client:1 ~id:10 ~now:0L with
    | `New e -> e
    | `Attached _ -> Alcotest.fail "first submit must be new"
  in
  (match S.Jobs.submit t ~fingerprint:fp ~job ~client:2 ~id:20 ~now:1L with
  | `Attached e ->
      Alcotest.(check int) "same entry" e1.S.Jobs.j_key e.S.Jobs.j_key;
      Alcotest.(check int) "two waiters in submission order" 2
        (List.length e.S.Jobs.j_waiters)
  | `New _ -> Alcotest.fail "identical in-flight submit must attach");
  (* Cancelling one waiter of a queued entry detaches; the last waiter's
     cancel aborts the queued job. *)
  (match S.Jobs.cancel t ~client:2 ~id:20 with
  | `Detached -> ()
  | _ -> Alcotest.fail "expected detach while another waiter remains");
  (match S.Jobs.cancel t ~client:1 ~id:10 with
  | `Abort key -> Alcotest.(check int) "aborts the pool key" e1.S.Jobs.j_key key
  | _ -> Alcotest.fail "last waiter off a queued entry must abort");
  Alcotest.(check int) "registry is empty" 0 (S.Jobs.live t);
  (* A running entry is never aborted: the orphaned solve feeds the cache. *)
  (match S.Jobs.submit t ~fingerprint:fp ~job ~client:1 ~id:11 ~now:2L with
  | `New e -> S.Jobs.start t ~key:e.S.Jobs.j_key ~now:3L
  | `Attached _ -> Alcotest.fail "registry was empty");
  (match S.Jobs.cancel t ~client:1 ~id:11 with
  | `Orphaned -> ()
  | _ -> Alcotest.fail "cancelling a running job's last waiter orphans it");
  Alcotest.(check int) "orphan still live" 1 (S.Jobs.live t);
  (* Delivered results are recallable per (client, id). *)
  let rec_json = Obs.Json.Obj [ ("status", Obs.Json.Str "ok") ] in
  S.Jobs.remember t ~client:7 ~id:1 ~source:S.Protocol.Solve ~record:rec_json;
  (match S.Jobs.recall t ~client:7 ~id:1 with
  | Some (S.Protocol.Solve, r) ->
      Alcotest.(check string) "recalled record" (json_str rec_json) (json_str r)
  | _ -> Alcotest.fail "recall failed");
  Alcotest.(check bool) "recall is per-client" true
    (S.Jobs.recall t ~client:8 ~id:1 = None)

(* ---- end-to-end: daemon + clients in one thread -------------------------- *)

let quiet_pool jobs =
  {
    E.Pool.default_config with
    E.Pool.jobs;
    silence_worker_stdout = true;
    retries = 0;
  }

let daemon_config ?(jobs = 2) ?cache_dir ?(queue_limit = 64)
    ?(per_client_limit = 8) ~socket () =
  {
    S.Daemon.endpoint = S.Daemon.Unix_socket socket;
    pool = quiet_pool jobs;
    cache_dir;
    admission = { S.Admission.queue_limit; per_client_limit };
    lru_capacity = 4;
  }

let create_daemon config =
  match S.Daemon.create config with
  | Ok d -> d
  | Error e -> Alcotest.failf "daemon create failed: %s" e

let connect socket =
  match S.Client.connect (S.Daemon.Unix_socket socket) with
  | Ok c -> c
  | Error e -> Alcotest.failf "client connect failed: %s" e

(* Interleave daemon and clients until [pred] holds; the iteration bound
   turns a livelock into a test failure instead of a hang. *)
let pump ?(max_steps = 5000) ~daemon ~clients what pred =
  let steps = ref 0 in
  while not (pred ()) && !steps < max_steps do
    incr steps;
    S.Daemon.step ~timeout:0.002 daemon;
    List.iter (fun c -> S.Client.step ~timeout:0.0 c) clients
  done;
  if not (pred ()) then Alcotest.failf "gave up pumping: %s" what

let recv_all c =
  let rec go acc =
    match S.Client.recv c with None -> List.rev acc | Some r -> go (r :: acc)
  in
  go []

(* Pump until the next response for [c] arrives, then return it. *)
let await_response ~daemon ~clients c what =
  let slot = ref None in
  pump ~daemon ~clients what (fun () ->
      match !slot with
      | Some _ -> true
      | None -> (
          match S.Client.recv c with
          | Some r ->
              slot := Some r;
              true
          | None -> false));
  Option.get !slot

let record_status record =
  match Obs.Json.member "status" record with
  | Some (Obs.Json.Str s) -> s
  | _ -> Alcotest.fail "result record lacks a status"

let test_serve_end_to_end () =
  let dir = temp_dir "hyp_serve" in
  let socket = Filename.concat dir "d.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let daemon = create_daemon (daemon_config ~socket ~cache_dir ()) in
  let c = connect socket in
  let clients = [ c ] in
  S.Client.request c (S.Protocol.Submit { id = 1; job = gen_job ~seed:11 () });
  (match await_response ~daemon ~clients c "ack" with
  | S.Protocol.Ack { id; position; _ } ->
      Alcotest.(check int) "ack echoes the id" 1 id;
      Alcotest.(check int) "empty daemon forks immediately" 0 position
  | other ->
      Alcotest.failf "expected ack, got %s"
        (json_str (S.Protocol.response_to_json other)));
  (match await_response ~daemon ~clients c "first result" with
  | S.Protocol.Result_frame { id; source; record } ->
      Alcotest.(check int) "result id" 1 id;
      Alcotest.(check string) "cold request is a solve" "solve"
        (S.Protocol.source_name source);
      Alcotest.(check string) "solve succeeded" "ok" (record_status record)
  | other ->
      Alcotest.failf "expected result, got %s"
        (json_str (S.Protocol.response_to_json other)));
  (* The identical job again: served from the shared result cache,
     acknowledged at position 0 and answered without forking. *)
  S.Client.request c (S.Protocol.Submit { id = 2; job = gen_job ~seed:11 () });
  let got_cache = ref false and got_ack = ref false in
  pump ~daemon ~clients "cached replay" (fun () ->
      (match S.Client.recv c with
      | Some (S.Protocol.Ack { id = 2; _ }) -> got_ack := true
      | Some (S.Protocol.Result_frame { id = 2; source; record }) ->
          Alcotest.(check string) "replay hits the cache" "cache"
            (S.Protocol.source_name source);
          Alcotest.(check string) "cached record is ok" "ok"
            (record_status record);
          got_cache := true
      | Some other ->
          Alcotest.failf "unexpected frame %s"
            (json_str (S.Protocol.response_to_json other))
      | None -> ());
      !got_cache && !got_ack);
  (* Delivered results stay recallable; unknown ids are an error frame. *)
  S.Client.request c (S.Protocol.Result { id = 1 });
  (match await_response ~daemon ~clients c "recall" with
  | S.Protocol.Result_frame { id = 1; record; _ } ->
      Alcotest.(check string) "recalled record" "ok" (record_status record)
  | other ->
      Alcotest.failf "expected recalled result, got %s"
        (json_str (S.Protocol.response_to_json other)));
  S.Client.request c (S.Protocol.Result { id = 99 });
  (match await_response ~daemon ~clients c "unknown id" with
  | S.Protocol.Error_frame { id = Some 99; _ } -> ()
  | other ->
      Alcotest.failf "expected error frame, got %s"
        (json_str (S.Protocol.response_to_json other)));
  (* Stats reflect the session: 2 submits, 1 cache hit. *)
  S.Client.request c S.Protocol.Stats;
  (match await_response ~daemon ~clients c "stats" with
  | S.Protocol.Stats_frame body ->
      let requests = member_exn "requests" body in
      Alcotest.(check int) "submitted" 2 (int_exn "submitted" requests);
      Alcotest.(check int) "cache hits" 1 (int_exn "cache_hits" requests);
      let cache = member_exn "cache" body in
      Alcotest.(check bool) "cache stats present" true
        (cache <> Obs.Json.Null)
  | other ->
      Alcotest.failf "expected stats, got %s"
        (json_str (S.Protocol.response_to_json other)));
  S.Client.close c;
  S.Daemon.initiate_drain daemon;
  pump ~daemon ~clients:[] "drain" (fun () -> S.Daemon.finished daemon);
  S.Daemon.close daemon;
  Alcotest.(check bool) "no orphan workers" true (E.Pool.no_live_children ())

let test_serve_collapse () =
  let dir = temp_dir "hyp_collapse" in
  let socket = Filename.concat dir "d.sock" in
  (* No cache: only single-flight collapsing can dedup the pair. *)
  let daemon = create_daemon (daemon_config ~socket ()) in
  let c1 = connect socket and c2 = connect socket in
  let clients = [ c1; c2 ] in
  let job = gen_job ~seed:21 () in
  S.Client.request c1 (S.Protocol.Submit { id = 1; job });
  S.Client.request c2 (S.Protocol.Submit { id = 1; job });
  let r1 = ref None and r2 = ref None in
  pump ~daemon ~clients "collapsed pair" (fun () ->
      List.iter
        (fun (c, slot) ->
          List.iter
            (function
              | S.Protocol.Result_frame { source; record; _ } ->
                  Alcotest.(check string) "both results ok" "ok"
                    (record_status record);
                  slot := Some source
              | _ -> ())
            (recv_all c))
        [ (c1, r1); (c2, r2) ];
      !r1 <> None && !r2 <> None);
  (* Exactly one worker ran; the other rode along. *)
  let names =
    List.sort String.compare
      (List.map
         (fun s -> S.Protocol.source_name (Option.get !s))
         [ r1; r2 ])
  in
  Alcotest.(check (list string)) "one solve, one collapsed"
    [ "collapsed"; "solve" ] names;
  List.iter S.Client.close clients;
  S.Daemon.initiate_drain daemon;
  pump ~daemon ~clients:[] "drain" (fun () -> S.Daemon.finished daemon);
  S.Daemon.close daemon

let test_serve_backpressure () =
  let dir = temp_dir "hyp_busy" in
  let socket = Filename.concat dir "d.sock" in
  (* One worker, queue of two: the third distinct submit in one batch
     must bounce with queue_full before anything completes (admission
     decides per frame, within one read). *)
  let daemon =
    create_daemon (daemon_config ~jobs:1 ~queue_limit:2 ~socket ())
  in
  let c = connect socket in
  let clients = [ c ] in
  List.iter
    (fun id ->
      S.Client.request c
        (S.Protocol.Submit { id; job = gen_job ~seed:(30 + id) () }))
    [ 1; 2; 3 ];
  let busy = ref None and results = ref 0 in
  pump ~daemon ~clients "queue_full backpressure" (fun () ->
      List.iter
        (function
          | S.Protocol.Busy { id; reason; queue_depth } ->
              Alcotest.(check int) "the overflow submit bounced" 3 id;
              Alcotest.(check string) "reason" "queue_full"
                (S.Protocol.busy_reason_name reason);
              Alcotest.(check int) "reported depth is the limit" 2 queue_depth;
              busy := Some id
          | S.Protocol.Result_frame { record; _ } ->
              Alcotest.(check string) "admitted jobs complete" "ok"
                (record_status record);
              incr results
          | _ -> ())
        (recv_all c);
      !busy <> None && !results = 2);
  (* The per-client cap trips first when it is the tighter limit. *)
  let socket2 = Filename.concat dir "d2.sock" in
  let daemon2 =
    create_daemon
      (daemon_config ~jobs:1 ~queue_limit:64 ~per_client_limit:1
         ~socket:socket2 ())
  in
  let c2 = connect socket2 in
  S.Client.request c2 (S.Protocol.Submit { id = 1; job = gen_job ~seed:41 () });
  S.Client.request c2 (S.Protocol.Submit { id = 2; job = gen_job ~seed:42 () });
  let hit = ref false in
  pump ~daemon:daemon2 ~clients:[ c2 ] "client_limit backpressure" (fun () ->
      List.iter
        (function
          | S.Protocol.Busy { id; reason; _ } ->
              Alcotest.(check int) "second submit bounced" 2 id;
              Alcotest.(check string) "reason" "client_limit"
                (S.Protocol.busy_reason_name reason);
              hit := true
          | _ -> ())
        (recv_all c2);
      !hit);
  S.Client.close c;
  S.Client.close c2;
  List.iter
    (fun d ->
      S.Daemon.initiate_drain d;
      pump ~daemon:d ~clients:[] "drain" (fun () -> S.Daemon.finished d);
      S.Daemon.close d)
    [ daemon; daemon2 ];
  Alcotest.(check bool) "no orphan workers" true (E.Pool.no_live_children ())

let test_serve_cancel () =
  let dir = temp_dir "hyp_cancel" in
  let socket = Filename.concat dir "d.sock" in
  let daemon = create_daemon (daemon_config ~jobs:1 ~socket ()) in
  let c = connect socket in
  let clients = [ c ] in
  (* Both submits land in one read: job 1 is still unforked when the
     cancel for job 2 arrives in the same batch, so the abort is
     deterministic — job 2 never reaches a worker. *)
  S.Client.request c (S.Protocol.Submit { id = 1; job = gen_job ~seed:51 () });
  S.Client.request c (S.Protocol.Submit { id = 2; job = gen_job ~seed:52 () });
  S.Client.request c (S.Protocol.Cancel { id = 2 });
  let cancelled = ref false and result1 = ref false in
  pump ~daemon ~clients "cancel queued job" (fun () ->
      List.iter
        (function
          | S.Protocol.Cancelled { id } ->
              Alcotest.(check int) "cancelled the queued job" 2 id;
              cancelled := true
          | S.Protocol.Result_frame { id; record; _ } ->
              Alcotest.(check int) "only job 1 completes" 1 id;
              Alcotest.(check string) "job 1 is ok" "ok"
                (record_status record);
              result1 := true
          | _ -> ())
        (recv_all c);
      !cancelled && !result1);
  (* Cancelling an unknown id is an error frame, not a crash. *)
  S.Client.request c (S.Protocol.Cancel { id = 77 });
  (match await_response ~daemon ~clients c "unknown cancel" with
  | S.Protocol.Error_frame { id = Some 77; _ } -> ()
  | other ->
      Alcotest.failf "expected error frame, got %s"
        (json_str (S.Protocol.response_to_json other)));
  S.Client.close c;
  S.Daemon.initiate_drain daemon;
  pump ~daemon ~clients:[] "drain" (fun () -> S.Daemon.finished daemon);
  S.Daemon.close daemon

let test_serve_drain () =
  let dir = temp_dir "hyp_drain" in
  let socket = Filename.concat dir "d.sock" in
  let trace = Filename.concat dir "trace.jsonl" in
  Obs.enable_trace trace;
  let daemon = create_daemon (daemon_config ~jobs:1 ~socket ()) in
  let c = connect socket in
  let clients = [ c ] in
  (* Get job 1 running (forked), keep job 2 queued, then shut down:
     drain must finish the running worker, skip the queued one, and
     still answer both waiters. *)
  S.Client.request c (S.Protocol.Submit { id = 1; job = gen_job ~seed:61 () });
  pump ~daemon ~clients "job 1 running" (fun () ->
      S.Client.request c (S.Protocol.Status { id = 1 });
      S.Daemon.step ~timeout:0.002 daemon;
      S.Client.step c;
      List.exists
        (function
          | S.Protocol.Info { id = 1; state = S.Protocol.Running; _ } -> true
          | _ -> false)
        (recv_all c));
  S.Client.request c (S.Protocol.Submit { id = 2; job = gen_job ~seed:62 () });
  S.Client.request c S.Protocol.Shutdown;
  let statuses = ref [] and bye = ref false in
  pump ~daemon ~clients "drain delivers everything" (fun () ->
      List.iter
        (function
          | S.Protocol.Result_frame { id; record; _ } ->
              statuses := (id, record_status record) :: !statuses
          | S.Protocol.Bye -> bye := true
          | _ -> ())
        (recv_all c);
      !bye && List.length !statuses = 2 && S.Daemon.finished daemon);
  Alcotest.(check bool) "daemon reports draining" true (S.Daemon.draining daemon);
  let find id = List.assoc_opt id !statuses in
  Alcotest.(check (option string)) "running job finished" (Some "ok") (find 1);
  Alcotest.(check (option string)) "queued job skipped" (Some "skipped")
    (find 2);
  S.Daemon.close daemon;
  S.Client.close c;
  Alcotest.(check bool) "zero orphan workers after drain" true
    (E.Pool.no_live_children ());
  (* The trace survives analysis: per-request span trees with the
     queue-wait/solve split, worker shards absorbed underneath. *)
  Obs.close ();
  match Obs.Report.load trace with
  | Error e -> Alcotest.failf "drain trace failed to load: %s" e
  | Ok data ->
      let folded = Obs.Report.folded data in
      Alcotest.(check bool) "server.request spans present" true
        (let re = "server.request" in
         let rec contains i =
           i + String.length re <= String.length folded
           && (String.sub folded i (String.length re) = re
              || contains (i + 1))
         in
         contains 0);
      Alcotest.(check bool) "queue_wait child present" true
        (let re = "server.request;queue_wait" in
         let rec contains i =
           i + String.length re <= String.length folded
           && (String.sub folded i (String.length re) = re
              || contains (i + 1))
         in
         contains 0)

let test_serve_loadgen () =
  let dir = temp_dir "hyp_loadbench" in
  let socket = Filename.concat dir "d.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let daemon = create_daemon (daemon_config ~jobs:2 ~cache_dir ~socket ()) in
  let config =
    {
      S.Loadgen.default_config with
      S.Loadgen.endpoint = S.Daemon.Unix_socket socket;
      clients = 2;
      requests = 10;
      distinct = 2;
      n = 30;
      shutdown_at_end = true;
    }
  in
  let gen =
    match S.Loadgen.create config with
    | Ok g -> g
    | Error e -> Alcotest.failf "loadgen create failed: %s" e
  in
  let steps = ref 0 in
  while not (S.Loadgen.finished gen) && !steps < 5000 do
    incr steps;
    S.Loadgen.step gen;
    S.Daemon.step ~timeout:0.002 daemon
  done;
  Alcotest.(check bool) "load run completes" true (S.Loadgen.finished gen);
  (* The loadgen's shutdown frame drains the daemon. *)
  let steps = ref 0 in
  while not (S.Daemon.finished daemon) && !steps < 5000 do
    incr steps;
    S.Daemon.step ~timeout:0.002 daemon
  done;
  Alcotest.(check bool) "daemon drains after shutdown" true
    (S.Daemon.finished daemon);
  S.Daemon.close daemon;
  let report = S.Loadgen.report gen in
  S.Loadgen.close gen;
  let totals = member_exn "totals" report in
  Alcotest.(check int) "all requests settle" 10 (int_exn "requests" totals);
  Alcotest.(check int) "every request succeeded" 10 (int_exn "ok" totals);
  Alcotest.(check int) "no errors" 0 (int_exn "errors" totals);
  let cache = member_exn "cache" report in
  let solves = int_exn "solve" cache in
  Alcotest.(check bool) "2 distinct jobs need at most a few solves" true
    (solves >= 1 && solves <= 4);
  Alcotest.(check bool) "duplicates were absorbed" true
    (num_exn "hit_ratio" cache > 0.0);
  Alcotest.(check bool) "no orphan workers" true (E.Pool.no_live_children ())

(* A client that vanishes without reading its answers must cost exactly
   its connection.  The write to the closed peer raises EPIPE (the test
   ignores SIGPIPE, as [Daemon.run] does in production — the default
   disposition would kill the process before the EPIPE handling runs);
   the daemon drops the connection and keeps serving. *)
let test_serve_client_vanish () =
  let previous = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe previous)
  @@ fun () ->
  let dir = temp_dir "hyp_vanish" in
  let socket = Filename.concat dir "d.sock" in
  let daemon = create_daemon (daemon_config ~jobs:1 ~socket ()) in
  let c1 = connect socket in
  S.Client.request c1 (S.Protocol.Submit { id = 1; job = gen_job ~seed:21 () });
  (match await_response ~daemon ~clients:[ c1 ] c1 "ack before vanish" with
  | S.Protocol.Ack _ -> ()
  | other ->
      Alcotest.failf "expected ack, got %s"
        (json_str (S.Protocol.response_to_json other)));
  (* Leave a request on the wire, then hang up: the daemon reads it,
     buffers the answer and hits the closed peer on flush. *)
  S.Client.request c1 (S.Protocol.Status { id = 1 });
  S.Client.step ~timeout:0.0 c1;
  S.Client.close c1;
  (* The daemon survives: a fresh client completes a full cycle. *)
  let c2 = connect socket in
  let clients = [ c2 ] in
  S.Client.request c2 (S.Protocol.Submit { id = 1; job = gen_job ~seed:22 () });
  (match await_response ~daemon ~clients c2 "ack after vanish" with
  | S.Protocol.Ack _ -> ()
  | other ->
      Alcotest.failf "expected ack, got %s"
        (json_str (S.Protocol.response_to_json other)));
  (match await_response ~daemon ~clients c2 "result after vanish" with
  | S.Protocol.Result_frame { record; _ } ->
      Alcotest.(check string) "daemon kept serving" "ok" (record_status record)
  | other ->
      Alcotest.failf "expected result, got %s"
        (json_str (S.Protocol.response_to_json other)));
  S.Client.request c2 S.Protocol.Shutdown;
  pump ~daemon ~clients "drain after vanish" (fun () ->
      S.Daemon.finished daemon);
  S.Daemon.close daemon;
  S.Client.close c2;
  Alcotest.(check bool) "no orphan workers" true (E.Pool.no_live_children ())

let suite =
  [
    Alcotest.test_case "protocol frames roundtrip" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "protocol decoder framing" `Quick test_protocol_decoder;
    Alcotest.test_case "admission control limits" `Quick test_admission;
    Alcotest.test_case "hot-instance LRU" `Quick test_instances_lru;
    Alcotest.test_case "SLO accounting" `Quick test_slo;
    Alcotest.test_case "single-flight registry" `Quick test_jobs_registry;
    Alcotest.test_case "serve end-to-end (solve, cache, recall, stats)" `Quick
      test_serve_end_to_end;
    Alcotest.test_case "identical in-flight requests collapse" `Quick
      test_serve_collapse;
    Alcotest.test_case "admission backpressure over the wire" `Quick
      test_serve_backpressure;
    Alcotest.test_case "cancel a queued job" `Quick test_serve_cancel;
    Alcotest.test_case "graceful drain, zero orphans, valid trace" `Quick
      test_serve_drain;
    Alcotest.test_case "loadgen SLO bench in-process" `Quick
      test_serve_loadgen;
    Alcotest.test_case "vanishing client costs only its connection" `Quick
      test_serve_client_vanish;
  ]
