(* Quality corpus for the multilevel solver: hardness-gallery and
   generator instances at fixed seeds, with recorded best-of-3
   connectivity costs.  The boundary-driven gain-cache FM must stay
   feasible, deterministic per seed, and never exceed the recorded cost —
   a quality ratchet protecting the hot path against silent regressions
   (the perf side is the bench --compare gate).

   The recorded bounds are the measured costs of the current
   implementation.  Versus the pre-rewrite solver the corpus total
   improved from 1298 to 1293 (uniform_n120 167 -> 165, uniform_n400
   981 -> 980, spmv_banded60 19 -> 16); the one per-instance concession
   is two_regular_n200 at 23 (was 22), attributable to the coarsening
   kernel rewrite, not the FM rewrite — the pre-change refiner also
   yields 23 on top of the new coarsening.  [total_bound] pins the
   aggregate to the pre-change level so that trade stays visible. *)

module P = Partition

(* (name, instance, k, recorded best-of-3 connectivity cost) *)
let corpus () =
  [
    ( "nine_blocks_u3",
      (Reductions.Counterexamples.nine_blocks ~unit_size:3)
        .Reductions.Counterexamples.hypergraph,
      4, 6 );
    ( "nine_blocks_u12",
      (Reductions.Counterexamples.nine_blocks ~unit_size:12)
        .Reductions.Counterexamples.hypergraph,
      4, 5 );
    ( "star_k4_m30",
      (Reductions.Counterexamples.star ~k:4 ~m:30 ~unit_size:2)
        .Reductions.Counterexamples.hypergraph,
      4, 9 );
    ( "uniform_n120",
      Workloads.Rand_hg.uniform (Support.Rng.create 42) ~n:120 ~m:180
        ~min_size:2 ~max_size:5,
      4, 165 );
    ( "uniform_n400",
      Workloads.Rand_hg.uniform (Support.Rng.create 43) ~n:400 ~m:600
        ~min_size:2 ~max_size:6,
      8, 980 );
    ( "planted_n160",
      Workloads.Rand_hg.planted (Support.Rng.create 44) ~n:160 ~m:240 ~k:4
        ~locality:0.9 ~edge_size:4,
      4, 35 );
    ( "two_regular_n200",
      Workloads.Rand_hg.two_regular (Support.Rng.create 45) ~n:200 ~m:90,
      2, 23 );
    ( "spmv_banded60",
      Workloads.Spmv.fine_grain (Workloads.Spmv.banded ~size:60 ~bandwidth:2),
      4, 16 );
    ( "spmv_rownet",
      Workloads.Spmv.row_net
        (Workloads.Spmv.random (Support.Rng.create 46) ~rows:80 ~cols:80
           ~density:0.04),
      4, 54 );
  ]

(* The pre-rewrite corpus total: per-instance bounds may be retuned as the
   solver evolves, but their sum must never regress past this. *)
let total_bound = 1298

let seeds = [ 1; 2; 3 ]

let solve hg ~k ~seed =
  let rng = Support.Rng.create seed in
  let part = Solvers.Multilevel.partition rng hg ~k in
  (part, P.connectivity_cost hg part)

let test_corpus_quality () =
  let total = ref 0 in
  List.iter
    (fun (name, hg, k, bound) ->
      let best = ref max_int in
      List.iter
        (fun seed ->
          let part, cost = solve hg ~k ~seed in
          if not (P.is_balanced ~eps:0.03 hg part) then
            Alcotest.failf "%s: seed %d produced an infeasible partition"
              name seed;
          if cost < !best then best := cost)
        seeds;
      if !best > bound then
        Alcotest.failf "%s: best-of-%d cost %d exceeds the recorded %d" name
          (List.length seeds) !best bound;
      total := !total + !best)
    (corpus ());
  if !total > total_bound then
    Alcotest.failf "corpus total %d exceeds the pre-change total %d" !total
      total_bound

let test_corpus_deterministic () =
  List.iter
    (fun (name, hg, k, _) ->
      let part1, cost1 = solve hg ~k ~seed:1 in
      let part2, cost2 = solve hg ~k ~seed:1 in
      Alcotest.(check int) (name ^ ": cost repeats") cost1 cost2;
      Alcotest.(check (array int))
        (name ^ ": assignment repeats")
        (P.assignment part1) (P.assignment part2))
    (corpus ())

let suite =
  [
    Alcotest.test_case "corpus quality ratchet" `Slow test_corpus_quality;
    Alcotest.test_case "corpus per-seed determinism" `Slow
      test_corpus_deterministic;
  ]
