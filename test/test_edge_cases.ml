(* Edge-case and error-path tests across the libraries: degenerate inputs,
   alternative metrics, format corners, bound conditions. *)

module H = Hypergraph
module P = Partition

(* Hypergraph corners --------------------------------------------------------- *)

let test_empty_hypergraph () =
  let h = H.empty 5 in
  Alcotest.(check int) "no edges" 0 (H.num_edges h);
  Alcotest.(check int) "max degree 0" 0 (H.max_degree h);
  let p = P.trivial ~k:2 ~n:5 in
  Alcotest.(check int) "zero cost" 0 (P.connectivity_cost h p);
  (* Partitioning an edgeless hypergraph: any balanced split costs 0. *)
  match Solvers.Exact.solve ~variant:P.Relaxed ~eps:0.0 h ~k:2 with
  | Some { Solvers.Exact.cost; _ } -> Alcotest.(check int) "optimum 0" 0 cost
  | None -> Alcotest.fail "feasible"

let test_zero_node_hypergraph () =
  let h = H.empty 0 in
  Alcotest.(check int) "n = 0" 0 (H.num_nodes h);
  let p = Solvers.Multilevel.partition (Support.Rng.create 1) h ~k:3 in
  Alcotest.(check int) "empty partition" 0 (Array.length (P.assignment p))

let test_singleton_edges () =
  (* Size-1 hyperedges are never cut under either metric. *)
  let h = H.of_edges ~n:3 [| [| 0 |]; [| 1; 2 |] |] in
  let p = P.create ~k:2 [| 0; 0; 1 |] in
  Alcotest.(check int) "cutnet counts only the real cut" 1 (P.cutnet_cost h p);
  Alcotest.(check int) "connectivity too" 1 (P.connectivity_cost h p)

let test_grid_column_outsiders () =
  (* Outsiders beyond [side] extend column hyperedges (the Appendix C.2
     padding device). *)
  let b = H.Builder.create () in
  let g = H.Gadgets.grid ~outsiders:5 b ~side:3 in
  let h = H.Builder.build b in
  Alcotest.(check int) "total outsiders" 5
    (Array.length g.H.Gadgets.outsiders);
  (* Rows 0-2 extended, columns 0-1 extended. *)
  Alcotest.(check int) "row 0 size" 4 (H.edge_size h g.H.Gadgets.row_edges.(0));
  Alcotest.(check int) "col 0 size" 4 (H.edge_size h g.H.Gadgets.col_edges.(0));
  Alcotest.(check int) "col 2 size" 3 (H.edge_size h g.H.Gadgets.col_edges.(2));
  Alcotest.check_raises "too many outsiders"
    (Invalid_argument "Gadgets.grid: more outsiders than rows and columns")
    (fun () ->
      let b = H.Builder.create () in
      ignore (H.Gadgets.grid ~outsiders:7 b ~side:3))

(* hMETIS format corners -------------------------------------------------------- *)

let test_hmetis_fmt_variants () =
  (* fmt = 1: edge weights only. *)
  let h1 = H.Hmetis.of_string "2 3 1\n5 1 2\n7 2 3\n" in
  Alcotest.(check int) "edge weight parsed" 5 (H.edge_weight h1 0);
  Alcotest.(check int) "node weight default" 1 (H.node_weight h1 0);
  (* fmt = 10: node weights only. *)
  let h10 = H.Hmetis.of_string "1 2 10\n1 2\n3\n4\n" in
  Alcotest.(check int) "node weight parsed" 4 (H.node_weight h10 1);
  Alcotest.(check int) "edge weight default" 1 (H.edge_weight h10 0);
  (* Unsupported fmt rejected. *)
  (try
     ignore (H.Hmetis.of_string "1 2 7\n1 2\n");
     Alcotest.fail "expected unsupported fmt"
   with Failure _ -> ())

(* Topology corners -------------------------------------------------------------- *)

let test_topology_ancestors () =
  let t = Hierarchy.Topology.create ~branching:[| 2; 3 |] ~costs:[| 4.0; 1.0 |] in
  Alcotest.(check int) "k = 6" 6 (Hierarchy.Topology.num_leaves t);
  (* Leaves 0-2 under child 0; 3-5 under child 1. *)
  Alcotest.(check int) "ancestor level 1" 0
    (Hierarchy.Topology.ancestor t 2 ~level:1);
  Alcotest.(check int) "ancestor level 1 (right)" 1
    (Hierarchy.Topology.ancestor t 3 ~level:1);
  Alcotest.(check int) "lca within" 2 (Hierarchy.Topology.lca_level t 3 5);
  Alcotest.(check int) "lca across" 1 (Hierarchy.Topology.lca_level t 2 3);
  Alcotest.check_raises "equal leaves"
    (Invalid_argument "Topology.lca_level: equal leaves") (fun () ->
      ignore (Hierarchy.Topology.lca_level t 1 1))

let test_steiner_validation () =
  Alcotest.check_raises "non-square"
    (Invalid_argument "Steiner.validate: non-square matrix") (fun () ->
      ignore (Hierarchy.Steiner.exact [| [| 0.0; 1.0 |] |] [| 0 |]));
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Steiner.validate: asymmetric matrix") (fun () ->
      ignore
        (Hierarchy.Steiner.exact
           [| [| 0.0; 1.0 |]; [| 2.0; 0.0 |] |]
           [| 0; 1 |]))

(* Cut-net metric through the solvers --------------------------------------------- *)

let test_fm_cutnet_metric () =
  let rng = Support.Rng.create 17 in
  for _ = 1 to 10 do
    let hg = Workloads.Rand_hg.uniform rng ~n:16 ~m:20 ~min_size:2 ~max_size:5 in
    let part = Solvers.Initial.random_balanced ~eps:0.2 rng hg ~k:3 in
    let before = P.cutnet_cost hg part in
    let after =
      Solvers.Refine.refine
        ~config:
          { Solvers.Refine.default_config with eps = 0.2; metric = P.Cut_net }
        hg part
    in
    Alcotest.(check int) "returned cutnet cost" (P.cutnet_cost hg part) after;
    Alcotest.(check bool) "cutnet never worse" true (after <= before)
  done

let test_xp_cutnet () =
  let h = H.of_edges ~n:4 [| [| 0; 1; 2 |]; [| 1; 2; 3 |] |] in
  (* eps 0, k 2: any bisection cuts both size-3 edges: cutnet optimum 2. *)
  (match Solvers.Xp.optimum ~metric:P.Cut_net ~eps:0.0 h ~k:2 ~limit:3 with
  | Some (l, part) ->
      Alcotest.(check int) "cutnet optimum" 2 l;
      Alcotest.(check int) "witness cutnet cost" 2 (P.cutnet_cost h part)
  | None -> Alcotest.fail "solution exists");
  match Solvers.Exact.optimum ~metric:P.Cut_net ~eps:0.0 h ~k:2 with
  | Some v -> Alcotest.(check int) "exact agrees" 2 v
  | None -> Alcotest.fail "exact feasible"

(* Schedule corners ----------------------------------------------------------------- *)

let test_schedule_single_node () =
  let dag = Hyperdag.Dag.of_edges ~n:1 [] in
  Alcotest.(check int) "mu of single node" 1
    (Scheduling.Mu.exact_makespan dag ~k:4);
  Alcotest.(check int) "CG of single node" 1
    (Scheduling.Coffman_graham.two_processor_makespan dag)

let test_mu_too_large () =
  let dag = Workloads.Dag_gen.independent 30 in
  (try
     ignore (Scheduling.Mu.exact_makespan dag ~k:2);
     Alcotest.fail "expected Too_large"
   with Scheduling.Mu.Too_large -> ());
  match Scheduling.Mu.makespan_general dag ~k:3 with
  | Scheduling.Mu.Exact m ->
      (* Independent tasks are an in-forest: Hu applies at any size. *)
      Alcotest.(check int) "forest route" 10 m
  | Scheduling.Mu.Bounds _ -> Alcotest.fail "forest should be exact"

(* Eps boundary ----------------------------------------------------------------------- *)

let test_eps_boundaries () =
  (* Lemma A.4 boundary: eps just below 1/(k-1) forces all parts. *)
  let h = H.empty 12 in
  (match Solvers.Exact.solve ~eps:0.3 h ~k:4 with
  | Some { Solvers.Exact.part; _ } ->
      Alcotest.(check bool) "A.4: <= cap per part" true
        (P.is_balanced ~eps:0.3 h part)
  | None -> Alcotest.fail "feasible");
  (* Negative eps rejected. *)
  Alcotest.check_raises "negative eps"
    (Invalid_argument "Part.capacity: negative eps") (fun () ->
      ignore (P.capacity ~eps:(-0.1) ~total_weight:10 ~k:2 ()))

let suite =
  [
    Alcotest.test_case "empty hypergraph" `Quick test_empty_hypergraph;
    Alcotest.test_case "zero-node hypergraph" `Quick test_zero_node_hypergraph;
    Alcotest.test_case "singleton edges" `Quick test_singleton_edges;
    Alcotest.test_case "grid column outsiders" `Quick
      test_grid_column_outsiders;
    Alcotest.test_case "hMETIS fmt variants" `Quick test_hmetis_fmt_variants;
    Alcotest.test_case "topology ancestors" `Quick test_topology_ancestors;
    Alcotest.test_case "steiner validation" `Quick test_steiner_validation;
    Alcotest.test_case "FM with cut-net metric" `Quick test_fm_cutnet_metric;
    Alcotest.test_case "XP with cut-net metric" `Quick test_xp_cutnet;
    Alcotest.test_case "single-node schedule" `Quick test_schedule_single_node;
    Alcotest.test_case "mu size guard" `Quick test_mu_too_large;
    Alcotest.test_case "eps boundaries" `Quick test_eps_boundaries;
  ]
