(* Tests for partitions, metrics, balance and multi-constraint
   feasibility. *)

module H = Hypergraph
module P = Partition

let path4 () =
  (* 0-1-2-3 as hyperedges of size 2 plus one big edge. *)
  H.of_edges ~n:4 [| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 0; 1; 2; 3 |] |]

let test_create_validation () =
  Alcotest.check_raises "color out of range"
    (Invalid_argument "Part.create: color out of range") (fun () ->
      ignore (P.create ~k:2 [| 0; 2 |]))

let test_lambda_and_costs () =
  let h = path4 () in
  let p = P.create ~k:2 [| 0; 0; 1; 1 |] in
  Alcotest.(check int) "lambda uncut" 1 (P.lambda h p 0);
  Alcotest.(check int) "lambda cut" 2 (P.lambda h p 1);
  Alcotest.(check int) "lambda big edge" 2 (P.lambda h p 3);
  Alcotest.(check bool) "is_cut" true (P.is_cut h p 1);
  Alcotest.(check bool) "not cut" false (P.is_cut h p 0);
  Alcotest.(check int) "cutnet" 2 (P.cutnet_cost h p);
  Alcotest.(check int) "connectivity" 2 (P.connectivity_cost h p);
  Alcotest.(check (list int)) "cut edges" [ 1; 3 ] (P.cut_edges h p);
  let p3 = P.create ~k:3 [| 0; 1; 2; 2 |] in
  Alcotest.(check int) "lambda 3" 3 (P.lambda h p3 3);
  (* cut-net counts each cut edge once; connectivity counts lambda-1. *)
  Alcotest.(check int) "cutnet k=3" 3 (P.cutnet_cost h p3);
  Alcotest.(check int) "connectivity k=3" 4 (P.connectivity_cost h p3)

let test_metrics_coincide_for_k2 () =
  (* For k = 2 the two metrics are identical (Section 3.1). *)
  let rng = Support.Rng.create 5 in
  for _ = 1 to 50 do
    let n = 2 + Support.Rng.int rng 8 in
    let m = Support.Rng.int rng 8 in
    let edges =
      Array.init m (fun _ ->
          let size = 1 + Support.Rng.int rng (min n 4) in
          Support.Rng.sample_distinct rng ~n ~k:size)
    in
    let h = H.of_edges ~n edges in
    let p = P.random rng ~k:2 ~n in
    Alcotest.(check int) "cutnet = connectivity at k=2" (P.cutnet_cost h p)
      (P.connectivity_cost h p)
  done

let test_weighted_cost () =
  let h =
    H.of_edges ~n:3 ~edge_weights:[| 5; 2 |] [| [| 0; 1 |]; [| 1; 2 |] |]
  in
  let p = P.create ~k:2 [| 0; 1; 0 |] in
  Alcotest.(check int) "weighted cutnet" 7 (P.cutnet_cost h p);
  Alcotest.(check int) "weighted connectivity" 7 (P.connectivity_cost h p)

let test_part_weights_and_sizes () =
  let h =
    H.of_edges ~n:4 ~node_weights:[| 1; 2; 3; 4 |] [| [| 0; 1; 2; 3 |] |]
  in
  let p = P.create ~k:2 [| 0; 0; 1; 1 |] in
  Alcotest.(check (array int)) "weights" [| 3; 7 |] (P.part_weights h p);
  Alcotest.(check (array int)) "sizes" [| 2; 2 |] (P.part_sizes h p);
  Alcotest.(check int) "nonempty" 2 (P.nonempty_parts h p)

let test_capacity () =
  (* n = 10, k = 2: strict capacity for eps = 0 is 5, relaxed same. *)
  Alcotest.(check int) "eps 0 strict" 5
    (P.capacity ~eps:0.0 ~total_weight:10 ~k:2 ());
  Alcotest.(check int) "eps 0.2 strict" 6
    (P.capacity ~eps:0.2 ~total_weight:10 ~k:2 ());
  (* 11 nodes, k = 2, eps 0: strict floor 5 (infeasible), relaxed ceil 6. *)
  Alcotest.(check int) "strict floor" 5
    (P.capacity ~variant:P.Strict ~eps:0.0 ~total_weight:11 ~k:2 ());
  Alcotest.(check int) "relaxed ceil" 6
    (P.capacity ~variant:P.Relaxed ~eps:0.0 ~total_weight:11 ~k:2 ())

let test_is_balanced () =
  let h = path4 () in
  let even = P.create ~k:2 [| 0; 0; 1; 1 |] in
  let skewed = P.create ~k:2 [| 0; 0; 0; 1 |] in
  Alcotest.(check bool) "even balanced" true (P.is_balanced ~eps:0.0 h even);
  Alcotest.(check bool) "skewed unbalanced at eps 0" false
    (P.is_balanced ~eps:0.0 h skewed);
  Alcotest.(check bool) "skewed balanced at eps 0.5" true
    (P.is_balanced ~eps:0.5 h skewed);
  Alcotest.(check (float 1e-9)) "imbalance" 0.5 (P.imbalance h skewed)

let test_all_lambdas () =
  let h = path4 () in
  let p = P.create ~k:2 [| 0; 1; 0; 1 |] in
  Alcotest.(check (array int)) "lambdas" [| 2; 2; 2; 2 |] (P.all_lambdas h p)

let test_trivial_and_random () =
  let h = path4 () in
  let t = P.trivial ~k:3 ~n:4 in
  Alcotest.(check int) "trivial cost" 0 (P.connectivity_cost h t);
  let rng = Support.Rng.create 1 in
  let r = P.random rng ~k:3 ~n:4 in
  Array.iter
    (fun c -> Alcotest.(check bool) "color range" true (c >= 0 && c < 3))
    (P.assignment r)

let test_copy_independent () =
  let p = P.create ~k:2 [| 0; 1 |] in
  let q = P.copy p in
  (P.assignment q).(0) <- 1;
  Alcotest.(check int) "original untouched" 0 (P.color p 0);
  Alcotest.(check bool) "equal detects" false (P.equal p q)

(* Multi-constraint --------------------------------------------------------- *)

let test_multi_constraint_disjointness () =
  Alcotest.check_raises "overlapping subsets"
    (Invalid_argument "Multi_constraint.create: subsets not disjoint")
    (fun () -> ignore (P.Multi_constraint.create [| [| 0; 1 |]; [| 1; 2 |] |]))

let test_multi_constraint_feasibility () =
  let mc = P.Multi_constraint.create [| [| 0; 1 |]; [| 2; 3 |] |] in
  (* Both subsets balanced. *)
  let good = P.create ~k:2 [| 0; 1; 0; 1 |] in
  (* First subset monochromatic: violates eps = 0. *)
  let bad = P.create ~k:2 [| 0; 0; 1; 1 |] in
  Alcotest.(check bool) "feasible" true
    (P.Multi_constraint.feasible ~eps:0.0 mc good);
  Alcotest.(check bool) "infeasible" false
    (P.Multi_constraint.feasible ~eps:0.0 mc bad);
  (* With eps = 1 (k=2 capacity = |Vj|), anything goes. *)
  Alcotest.(check bool) "loose eps" true
    (P.Multi_constraint.feasible ~eps:1.0 mc bad)

let test_multi_constraint_lower_bounds () =
  let mc =
    P.Multi_constraint.create
      ~lower_bounds:[| [| 1; 0 |] |]
      [| [| 0; 1; 2 |] |]
  in
  let has_red = P.create ~k:2 [| 0; 1; 1 |] in
  let no_red = P.create ~k:2 [| 1; 1; 1 |] in
  Alcotest.(check bool) "lower bound met" true
    (P.Multi_constraint.feasible ~eps:1.0 mc has_red);
  Alcotest.(check bool) "lower bound violated" false
    (P.Multi_constraint.feasible ~eps:1.0 mc no_red)

let test_single_constraint_is_standard () =
  let h = path4 () in
  let mc = P.Multi_constraint.single ~n:4 in
  let rng = Support.Rng.create 2 in
  for _ = 1 to 20 do
    let p = P.random rng ~k:2 ~n:4 in
    Alcotest.(check bool) "agrees with is_balanced"
      (P.is_balanced ~eps:0.25 h p)
      (P.Multi_constraint.feasible ~eps:0.25 mc p)
  done

(* Partition vector I/O ------------------------------------------------------ *)

let test_part_io_roundtrip () =
  let rng = Support.Rng.create 6 in
  for _ = 1 to 20 do
    let n = 1 + Support.Rng.int rng 30 in
    let p = P.random rng ~k:4 ~n in
    let p' = P.Io.of_string ~n (P.Io.to_string p) in
    Alcotest.(check (array int)) "roundtrip" (P.assignment p) (P.assignment p')
  done

let test_part_io_parse () =
  let p = P.Io.of_string ~n:3 "% comment\n1\n0\n2\n" in
  Alcotest.(check int) "k inferred" 3 (P.k p);
  Alcotest.(check (array int)) "vector" [| 1; 0; 2 |] (P.assignment p);
  (try
     ignore (P.Io.of_string ~n:2 "0\n1\n0\n");
     Alcotest.fail "expected count mismatch"
   with Failure _ -> ());
  (try
     ignore (P.Io.of_string ~n:1 "-3\n");
     Alcotest.fail "expected bad entry"
   with Failure _ -> ())

(* Malformed input must always surface as a [Failure] whose message names
   the parser ("Part_io. ..."), never as an escaping [Invalid_argument]. *)
let test_part_io_malformed () =
  let expect name ~n text =
    match P.Io.of_string ~n text with
    | _ -> Alcotest.failf "%s: parse unexpectedly succeeded" name
    | exception Failure msg ->
        Alcotest.(check bool)
          (name ^ ": error names the parser")
          true
          (String.length msg >= 8 && String.sub msg 0 8 = "Part_io.")
    | exception e ->
        Alcotest.failf "%s: expected Failure, got %s" name
          (Printexc.to_string e)
  in
  expect "trailing garbage" ~n:2 "0\n1\n0\n";
  expect "truncated" ~n:3 "0\n1\n";
  expect "non-numeric entry" ~n:1 "zero\n";
  expect "negative entry" ~n:1 "-1\n";
  expect "entries for n=0" ~n:0 "0\n";
  (* The degenerate empty vector parses (k = 1, no nodes). *)
  let p = P.Io.of_string ~n:0 "% nothing\n" in
  Alcotest.(check int) "empty vector k" 1 (P.k p);
  Alcotest.(check (array int)) "empty vector" [||] (P.assignment p)

(* Layer-wise --------------------------------------------------------------- *)

let test_layerwise_feasibility () =
  let layers = [| [| 0; 1 |]; [| 2; 3 |] |] in
  let good = P.create ~k:2 [| 0; 1; 1; 0 |] in
  let bad = P.create ~k:2 [| 0; 0; 1; 1 |] in
  Alcotest.(check bool) "layerwise good" true
    (P.Layerwise.feasible ~eps:0.0 layers good);
  Alcotest.(check bool) "layerwise bad" false
    (P.Layerwise.feasible ~eps:0.0 layers bad)

let test_layerwise_ignore_small () =
  let layers = [| [| 0 |]; [| 1; 2; 3; 4 |] |] in
  let p = P.create ~k:2 [| 0; 0; 0; 1; 1 |] in
  (* Layer of size 1 cannot be eps=0 balanced with k=2 under Strict. *)
  Alcotest.(check bool) "degenerate layer fails" false
    (P.Layerwise.feasible ~eps:0.0 layers p);
  Alcotest.(check bool) "ignored below min size" true
    (P.Layerwise.feasible_ignoring_small ~eps:0.0 ~min_size:2 layers p);
  (* Relaxed variant also admits the degenerate layer. *)
  Alcotest.(check bool) "relaxed admits" true
    (P.Layerwise.feasible ~variant:P.Relaxed ~eps:0.0 layers p)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "lambda and costs" `Quick test_lambda_and_costs;
    Alcotest.test_case "metrics coincide for k=2" `Quick
      test_metrics_coincide_for_k2;
    Alcotest.test_case "weighted cost" `Quick test_weighted_cost;
    Alcotest.test_case "part weights and sizes" `Quick
      test_part_weights_and_sizes;
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "is_balanced" `Quick test_is_balanced;
    Alcotest.test_case "all lambdas" `Quick test_all_lambdas;
    Alcotest.test_case "trivial and random" `Quick test_trivial_and_random;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "multi-constraint disjointness" `Quick
      test_multi_constraint_disjointness;
    Alcotest.test_case "multi-constraint feasibility" `Quick
      test_multi_constraint_feasibility;
    Alcotest.test_case "multi-constraint lower bounds" `Quick
      test_multi_constraint_lower_bounds;
    Alcotest.test_case "single constraint = standard" `Quick
      test_single_constraint_is_standard;
    Alcotest.test_case "partition IO roundtrip" `Quick test_part_io_roundtrip;
    Alcotest.test_case "partition IO parse" `Quick test_part_io_parse;
    Alcotest.test_case "partition IO malformed input" `Quick
      test_part_io_malformed;
    Alcotest.test_case "layerwise feasibility" `Quick
      test_layerwise_feasibility;
    Alcotest.test_case "layerwise small layers" `Quick
      test_layerwise_ignore_small;
  ]
