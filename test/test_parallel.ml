(* lib/parallel and the multicore multilevel path: pool fork-join
   semantics (index-slot gather, deterministic fold order, exception
   selection), the threads-1-vs-N determinism contract of
   Multilevel.partition with [threads >= 1] — identical assignments,
   costs, byte-identical engine records — and threads-independence of
   the fm.* / lp.* observability totals (per-domain accumulators must
   neither lose nor double-count). *)

module E = Engine
module H = Hypergraph
module P = Partition

(* Worker counts exercised against the threads=1 baseline.  The host may
   have a single core; correctness and determinism must not care. *)
let multi_threads = [ 2; 4 ]

(* ---- pool ---------------------------------------------------------------- *)

let test_map_basic () =
  Parallel.run ~threads:3 (fun pool ->
      Alcotest.(check int) "threads" 3 (Parallel.threads pool);
      let r = Parallel.map pool ~n:100 (fun ~worker:_ i -> i * i) in
      Alcotest.(check int) "length" 100 (Array.length r);
      Array.iteri
        (fun i v -> Alcotest.(check int) "slot i holds f i" (i * i) v)
        r;
      Alcotest.(check int) "empty map" 0
        (Array.length (Parallel.map pool ~n:0 (fun ~worker:_ i -> i))))

let test_map_worker_ids () =
  Parallel.run ~threads:4 (fun pool ->
      (* Which worker runs which task is schedule-dependent — only the
         id range is a contract. *)
      let workers = Parallel.map pool ~n:64 (fun ~worker _ -> worker) in
      Array.iter
        (fun w ->
          Alcotest.(check bool) "worker id in range" true (w >= 0 && w < 4))
        workers)

let test_fold_deterministic_order () =
  Parallel.run ~threads:4 (fun pool ->
      (* Order-sensitive combine: deterministic fold must reduce in task
         index order regardless of which worker finished first. *)
      let r =
        Parallel.fold pool ~deterministic:true ~n:50
          ~f:(fun ~worker:_ i -> i)
          ~combine:(fun acc i -> i :: acc)
          ~init:[]
      in
      Alcotest.(check (list int))
        "index order" (List.init 50 Fun.id) (List.rev r);
      (* The relaxed fold loses the order guarantee but not the
         multiset of results. *)
      let relaxed =
        Parallel.fold pool ~deterministic:false ~n:50
          ~f:(fun ~worker:_ i -> i)
          ~combine:(fun acc i -> i :: acc)
          ~init:[]
      in
      Alcotest.(check (list int))
        "relaxed fold is a permutation" (List.init 50 Fun.id)
        (List.sort Int.compare relaxed))

exception Task_failed of int

let test_map_exception_selection () =
  Parallel.run ~threads:3 (fun pool ->
      (match
         Parallel.map pool ~n:40 (fun ~worker:_ i ->
             if i mod 7 = 3 then raise (Task_failed i) else i)
       with
      | _ -> Alcotest.fail "expected an exception"
      | exception Task_failed i ->
          Alcotest.(check int) "smallest failing index wins" 3 i);
      (* The pool survives a failed scatter. *)
      let r = Parallel.map pool ~n:10 (fun ~worker:_ i -> i + 1) in
      Alcotest.(check int) "pool reusable after failure" 10 r.(9))

let test_run_bracket () =
  (* [run] shuts the pool down even when the body raises. *)
  (match Parallel.run ~threads:2 (fun _ -> raise Exit) with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  Alcotest.(check int) "run returns the body's value" 42
    (Parallel.run ~threads:2 (fun _ -> 42))

(* ---- threads-1-vs-N determinism ------------------------------------------ *)

let par_config ~threads =
  { Solvers.Multilevel.default_config with threads; deterministic = true }

let solve_par ~threads hg ~k ~seed =
  let rng = Support.Rng.create seed in
  let part =
    Solvers.Multilevel.partition ~config:(par_config ~threads) rng hg ~k
  in
  (P.assignment part, P.connectivity_cost hg part)

let test_corpus_threads_independent () =
  List.iter
    (fun (name, hg, k, _) ->
      let base_assign, base_cost = solve_par ~threads:1 hg ~k ~seed:1 in
      List.iter
        (fun threads ->
          let assign, cost = solve_par ~threads hg ~k ~seed:1 in
          Alcotest.(check int)
            (Printf.sprintf "%s: cost at threads=%d" name threads)
            base_cost cost;
          Alcotest.(check (array int))
            (Printf.sprintf "%s: assignment at threads=%d" name threads)
            base_assign assign)
        multi_threads)
    (Test_corpus.corpus ())

let test_corpus_parallel_feasible () =
  List.iter
    (fun (name, hg, k, _) ->
      let rng = Support.Rng.create 1 in
      let part =
        Solvers.Multilevel.partition ~config:(par_config ~threads:2) rng hg ~k
      in
      if not (P.is_balanced ~eps:0.03 hg part) then
        Alcotest.failf "%s: parallel path produced an infeasible partition"
          name)
    (Test_corpus.corpus ())

let prop_threads_independent =
  QCheck.Test.make ~name:"parallel partition independent of thread count"
    ~count:25
    QCheck.(
      make
        Gen.(
          let* n = int_range 8 60 in
          let* m = int_range 4 80 in
          let* seed = int_bound 1_000_000 in
          return (n, m, seed)))
    (fun (n, m, seed) ->
      let hg =
        Workloads.Rand_hg.uniform (Support.Rng.create seed) ~n ~m ~min_size:2
          ~max_size:4
      in
      let k = 2 + (seed mod 3) in
      let base = solve_par ~threads:1 hg ~k ~seed in
      List.for_all (fun threads -> solve_par ~threads hg ~k ~seed = base)
        [ 3; 5 ])

(* ---- engine records ------------------------------------------------------ *)

let par_job ~n ~seed =
  {
    E.Spec.instance = E.Spec.Generated { kind = E.Spec.Uniform; n };
    config = { E.Spec.default_config with E.Spec.k = 4; parallel = true };
    seed;
    timeout_s = None;
  }

let record_of ~threads job =
  let p = E.Runner.execute ~threads job in
  let fingerprint =
    match E.Spec.fingerprint ~schema:E.Record.schema_version job with
    | Ok fp -> fp
    | Error e -> Alcotest.failf "fingerprint: %s" e
  in
  let status =
    match p.E.Record.p_status with
    | `Done -> E.Record.Done
    | `Failed e -> E.Record.Failed e
  in
  {
    E.Record.fingerprint;
    job;
    status;
    metrics = p.E.Record.p_metrics;
    observed = p.E.Record.p_observed;
    timing = E.Record.no_timing;
  }

let test_record_threads_independent () =
  List.iter
    (fun seed ->
      let job = par_job ~n:60 ~seed in
      let base = E.Record.deterministic_string (record_of ~threads:1 job) in
      List.iter
        (fun threads ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d: record at threads=%d" seed threads)
            base
            (E.Record.deterministic_string (record_of ~threads job)))
        multi_threads)
    [ 1; 2; 3 ]

let test_parallel_marks_identity () =
  (* parallel=true is a different algorithm, so it must change the job
     fingerprint; the thread count must not exist in the plan at all. *)
  let seq = { (par_job ~n:40 ~seed:1) with E.Spec.config = E.Spec.default_config } in
  let seq = { seq with E.Spec.config = { seq.E.Spec.config with E.Spec.k = 4 } } in
  let par = par_job ~n:40 ~seed:1 in
  let fp job =
    match E.Spec.fingerprint ~schema:E.Record.schema_version job with
    | Ok fp -> fp
    | Error e -> Alcotest.failf "fingerprint: %s" e
  in
  Alcotest.(check bool) "parallel flag changes the fingerprint" true
    (fp seq <> fp par);
  match E.Spec.of_json (E.Spec.to_json par) with
  | Ok job' ->
      Alcotest.(check bool) "parallel survives the codec" true
        job'.E.Spec.config.E.Spec.parallel
  | Error e -> Alcotest.failf "roundtrip: %s" e

(* ---- observability totals ------------------------------------------------ *)

let obs_totals ~threads hg ~k =
  Obs.reset_stats ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset_stats ())
    (fun () ->
      let rng = Support.Rng.create 7 in
      ignore
        (Solvers.Multilevel.partition ~config:(par_config ~threads) rng hg ~k);
      let snap = Obs.snapshot () in
      List.filter
        (fun (name, _) ->
          String.length name >= 3
          && (String.sub name 0 3 = "fm." || String.sub name 0 3 = "lp."))
        snap.Obs.counters)

let test_counter_totals_threads_independent () =
  (* Per-domain Fm_stats accumulators committed at the join barrier must
     neither lose nor double-count: totals are a function of the plan,
     not the schedule. *)
  let hg =
    Workloads.Rand_hg.uniform (Support.Rng.create 11) ~n:300 ~m:450
      ~min_size:2 ~max_size:5
  in
  let base = obs_totals ~threads:1 hg ~k:4 in
  Alcotest.(check bool) "threads=1 run emitted fm./lp. counters" true
    (base <> []);
  List.iter
    (fun threads ->
      let got = obs_totals ~threads hg ~k:4 in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "counter totals at threads=%d" threads)
        base got)
    multi_threads

let suite =
  [
    Alcotest.test_case "pool: map gathers by index" `Quick test_map_basic;
    Alcotest.test_case "pool: worker ids" `Quick test_map_worker_ids;
    Alcotest.test_case "pool: fold order" `Quick
      test_fold_deterministic_order;
    Alcotest.test_case "pool: smallest-index exception" `Quick
      test_map_exception_selection;
    Alcotest.test_case "pool: run bracket" `Quick test_run_bracket;
    Alcotest.test_case "corpus: threads-1-vs-N identical" `Slow
      test_corpus_threads_independent;
    Alcotest.test_case "corpus: parallel path feasible" `Slow
      test_corpus_parallel_feasible;
    QCheck_alcotest.to_alcotest prop_threads_independent;
    Alcotest.test_case "records: byte-identical across threads" `Slow
      test_record_threads_independent;
    Alcotest.test_case "records: parallel flag is identity" `Quick
      test_parallel_marks_identity;
    Alcotest.test_case "obs: counter totals threads-independent" `Slow
      test_counter_totals_threads_independent;
  ]
