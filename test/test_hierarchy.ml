(* Tests for the hierarchical setting (Section 7): topologies, the
   Definition 7.1 cost function, hierarchy assignment, the two-step method,
   recursive partitioning and Steiner costs on arbitrary topologies. *)

module H = Hypergraph
module P = Partition
module T = Hierarchy.Topology
module HC = Hierarchy.Hier_cost

let topo22 g1 = T.two_level ~b1:2 ~b2:2 ~g1

let test_topology_basics () =
  let t = topo22 4.0 in
  Alcotest.(check int) "depth" 2 (T.depth t);
  Alcotest.(check int) "leaves" 4 (T.num_leaves t);
  Alcotest.(check (float 1e-9)) "g1" 4.0 (T.cost_of_level t 1);
  Alcotest.(check (float 1e-9)) "g2" 1.0 (T.cost_of_level t 2);
  (* Leaves 0,1 under one level-1 node; 2,3 under the other. *)
  Alcotest.(check int) "lca siblings" 2 (T.lca_level t 0 1);
  Alcotest.(check int) "lca across top" 1 (T.lca_level t 1 2);
  Alcotest.(check (float 1e-9)) "transfer cheap" 1.0 (T.transfer_cost t 2 3);
  Alcotest.(check (float 1e-9)) "transfer expensive" 4.0 (T.transfer_cost t 0 3)

let test_topology_validation () =
  Alcotest.check_raises "increasing costs"
    (Invalid_argument "Topology.create: costs must be non-increasing")
    (fun () -> ignore (T.create ~branching:[| 2; 2 |] ~costs:[| 1.0; 2.0 |]));
  Alcotest.check_raises "g_d must be 1"
    (Invalid_argument "Topology.create: g_d must be 1") (fun () ->
      ignore (T.create ~branching:[| 2 |] ~costs:[| 3.0 |]));
  Alcotest.check_raises "branching >= 2"
    (Invalid_argument "Topology.create: branching >= 2") (fun () ->
      ignore (T.create ~branching:[| 1; 4 |] ~costs:[| 2.0; 1.0 |]))

let test_uniform_binary () =
  let t = T.uniform_binary ~depth:3 ~g:3.0 in
  Alcotest.(check int) "k = 8" 8 (T.num_leaves t);
  Alcotest.(check (float 1e-9)) "g1 = 9" 9.0 (T.cost_of_level t 1);
  Alcotest.(check (float 1e-9)) "g3 = 1" 1.0 (T.cost_of_level t 3)

let test_edge_cost_paper_example () =
  (* Section 7: an edge meeting all 4 parts of a (2,2)-hierarchy costs
     g1 + 2 * g2. *)
  let t = topo22 5.0 in
  Alcotest.(check (float 1e-9)) "g1 + 2*g2" 7.0
    (HC.edge_cost t [ 0; 1; 2; 3 ]);
  Alcotest.(check (float 1e-9)) "siblings" 1.0 (HC.edge_cost t [ 0; 1 ]);
  Alcotest.(check (float 1e-9)) "across top" 5.0 (HC.edge_cost t [ 0; 2 ]);
  Alcotest.(check (float 1e-9)) "three parts" 6.0 (HC.edge_cost t [ 0; 1; 2 ]);
  Alcotest.(check (float 1e-9)) "uncut" 0.0 (HC.edge_cost t [ 1 ])

let test_flat_topology_is_connectivity () =
  (* Depth 1: the hierarchical cost is the connectivity metric. *)
  let rng = Support.Rng.create 3 in
  let h =
    H.of_edges ~n:8
      (Array.init 6 (fun _ -> Support.Rng.sample_distinct rng ~n:8 ~k:3))
  in
  let t = T.flat 4 in
  for _ = 1 to 10 do
    let p = P.random rng ~k:4 ~n:8 in
    Alcotest.(check (float 1e-9)) "flat = connectivity"
      (float_of_int (P.connectivity_cost h p))
      (HC.cost t h p)
  done

let test_hier_cost_within_bounds () =
  (* connectivity <= hierarchical <= g1 * connectivity (Lemma 7.3). *)
  let rng = Support.Rng.create 5 in
  let h =
    H.of_edges ~n:12
      (Array.init 10 (fun _ -> Support.Rng.sample_distinct rng ~n:12 ~k:4))
  in
  let t = topo22 6.0 in
  for _ = 1 to 20 do
    let p = P.random rng ~k:4 ~n:12 in
    let lo, hi = HC.connectivity_bounds t h p in
    let c = HC.cost t h p in
    Alcotest.(check bool) "lower bound" true (c >= lo -. 1e-9);
    Alcotest.(check bool) "upper bound" true (c <= hi +. 1e-9)
  done

(* Assignment ----------------------------------------------------------------- *)

let star_hypergraph () =
  (* Parts 0-3 pre-colored: heavy traffic between parts 0 and 1, light
     between 2 and 3.  8 nodes, 2 per part. *)
  let b = H.Builder.create () in
  let nodes = H.Builder.add_nodes b 8 in
  (* 5 edges between part 0 (nodes 0,1) and part 1 (nodes 2,3). *)
  for _ = 1 to 5 do
    ignore (H.Builder.add_edge b [| nodes.(0); nodes.(2) |])
  done;
  ignore (H.Builder.add_edge b [| nodes.(4); nodes.(6) |]);
  let h = H.Builder.build b in
  let part = P.create ~k:4 [| 0; 0; 1; 1; 2; 2; 3; 3 |] in
  (h, part)

let test_assignment_exact () =
  let h, part = star_hypergraph () in
  let t = topo22 10.0 in
  let r = Hierarchy.Assignment.exact t h part in
  (* Optimal: parts 0,1 siblings and 2,3 siblings: cost 5 + 1 = 6. *)
  Alcotest.(check (float 1e-9)) "optimal assignment" 6.0 r.Hierarchy.Assignment.cost;
  let leaf = r.Hierarchy.Assignment.leaf_of_part in
  Alcotest.(check int) "0 and 1 are siblings" (leaf.(0) / 2) (leaf.(1) / 2)

let test_assignment_methods_agree () =
  let rng = Support.Rng.create 11 in
  for _ = 1 to 10 do
    let h =
      H.of_edges ~n:12
        (Array.init 10 (fun _ ->
             Support.Rng.sample_distinct rng ~n:12 ~k:(2 + Support.Rng.int rng 3)))
    in
    let part = P.create ~k:4 (Array.init 12 (fun v -> v mod 4)) in
    let t = topo22 4.0 in
    let ex = Hierarchy.Assignment.exact t h part in
    let dp = Hierarchy.Assignment.exact_two_level t h part in
    let mt = Hierarchy.Assignment.matching_b2_2 t h part in
    Alcotest.(check (float 1e-9)) "DP = exact" ex.Hierarchy.Assignment.cost
      dp.Hierarchy.Assignment.cost;
    Alcotest.(check (float 1e-9)) "matching = exact (Lemma H.1)"
      ex.Hierarchy.Assignment.cost mt.Hierarchy.Assignment.cost;
    let ls = Hierarchy.Assignment.local_search t h part in
    Alcotest.(check bool) "local search >= exact" true
      (ls.Hierarchy.Assignment.cost >= ex.Hierarchy.Assignment.cost -. 1e-9)
  done

let test_assignment_b2_3 () =
  (* d=2, b2=3, k=6: DP vs exhaustive exact. *)
  let rng = Support.Rng.create 13 in
  for _ = 1 to 5 do
    let h =
      H.of_edges ~n:12
        (Array.init 8 (fun _ ->
             Support.Rng.sample_distinct rng ~n:12 ~k:(2 + Support.Rng.int rng 3)))
    in
    let part = P.create ~k:6 (Array.init 12 (fun v -> v mod 6)) in
    let t = T.two_level ~b1:2 ~b2:3 ~g1:3.0 in
    let ex = Hierarchy.Assignment.exact t h part in
    let dp = Hierarchy.Assignment.exact_two_level t h part in
    Alcotest.(check (float 1e-9)) "b2=3 DP = exact" ex.Hierarchy.Assignment.cost
      dp.Hierarchy.Assignment.cost
  done

let test_recursive_matching () =
  (* Depth-3 binary topology: the bottom-up matching heuristic returns a
     valid assignment no better than the exhaustive optimum (k = 8). *)
  let rng = Support.Rng.create 29 in
  for _ = 1 to 5 do
    let h =
      H.of_edges ~n:16
        (Array.init 14 (fun _ ->
             Support.Rng.sample_distinct rng ~n:16
               ~k:(2 + Support.Rng.int rng 3)))
    in
    let part = P.create ~k:8 (Array.init 16 (fun v -> v mod 8)) in
    let t = T.uniform_binary ~depth:3 ~g:3.0 in
    let rm = Hierarchy.Assignment.recursive_matching t h part in
    let ex = Hierarchy.Assignment.exact t h part in
    let leaf = rm.Hierarchy.Assignment.leaf_of_part in
    let sorted = Array.copy leaf in
    Array.sort Int.compare sorted;
    Alcotest.(check (array int)) "bijective onto leaves"
      (Array.init 8 Fun.id) sorted;
    Alcotest.(check bool) "matching >= exact" true
      (rm.Hierarchy.Assignment.cost >= ex.Hierarchy.Assignment.cost -. 1e-9);
    Alcotest.(check bool) "cost consistent" true
      (abs_float
         (rm.Hierarchy.Assignment.cost
         -. HC.cost_with_assignment t h part leaf)
      < 1e-6)
  done;
  (* Non-binary topologies are rejected. *)
  let part = P.create ~k:6 (Array.init 6 Fun.id) in
  let h = H.of_edges ~n:6 [| [| 0; 1 |] |] in
  Alcotest.check_raises "binary only"
    (Invalid_argument "Assignment.recursive_matching: binary topologies only")
    (fun () ->
      ignore
        (Hierarchy.Assignment.recursive_matching
           (T.two_level ~b1:2 ~b2:3 ~g1:2.0)
           h part))

let test_count_assignments () =
  (* f(4) with b = (2,2): 4! / (2! * 2! * 2!) = 3. *)
  Alcotest.(check (float 1e-9)) "f(4) = 3" 3.0
    (Hierarchy.Assignment.count_assignments (topo22 2.0));
  (* f(8) with b = (2,2,2): 8! / (2! * (2!)^2 * (2!)^4) = 40320/128 = 315. *)
  Alcotest.(check (float 1e-9)) "f(8) = 315" 315.0
    (Hierarchy.Assignment.count_assignments (T.uniform_binary ~depth:3 ~g:2.0))

let test_contract_parts () =
  let h, part = star_hypergraph () in
  let c = Hierarchy.Assignment.contract_parts h part in
  Alcotest.(check int) "one node per part" 4 (H.num_nodes c);
  (* The five parallel 0-1 edges merge into one of weight 5. *)
  Alcotest.(check int) "merged edges" 2 (H.num_edges c);
  Alcotest.(check int) "total edge weight" 6 (H.total_edge_weight c)

(* Two-step method ------------------------------------------------------------- *)

let test_two_step_on_star () =
  let h, part = star_hypergraph () in
  let t = topo22 10.0 in
  let r = Hierarchy.Two_step.of_flat t h part in
  Alcotest.(check int) "flat cost" 6 r.Hierarchy.Two_step.flat_cost;
  Alcotest.(check (float 1e-9)) "assigned optimally" 6.0
    r.Hierarchy.Two_step.hier_cost;
  (* The hierarchical partition is the flat one relabeled. *)
  Alcotest.(check (float 1e-9)) "relabel consistent"
    r.Hierarchy.Two_step.hier_cost
    (HC.cost t h r.Hierarchy.Two_step.hierarchical)

let test_two_step_g1_approximation () =
  (* Lemma 7.3: two-step cost <= g1 * OPT_hier; check against brute
     force. *)
  let rng = Support.Rng.create 17 in
  for _ = 1 to 5 do
    let h =
      H.of_edges ~n:8
        (Array.init 6 (fun _ ->
             Support.Rng.sample_distinct rng ~n:8 ~k:(2 + Support.Rng.int rng 2)))
    in
    let t = topo22 3.0 in
    match Hierarchy.Hier_exact.brute_force ~eps:0.0 t h with
    | None -> Alcotest.fail "feasible"
    | Some { Hierarchy.Hier_exact.cost = opt; _ } ->
        (* Use the exact flat partitioner for step (i). *)
        let flat =
          match Solvers.Exact.solve ~eps:0.0 h ~k:4 with
          | Some { Solvers.Exact.part; _ } -> part
          | None -> Alcotest.fail "flat feasible"
        in
        let r = Hierarchy.Two_step.of_flat t h flat in
        Alcotest.(check bool) "two-step >= opt" true
          (r.Hierarchy.Two_step.hier_cost >= opt -. 1e-9);
        Alcotest.(check bool) "two-step <= g1 * opt (Lemma 7.3)" true
          (r.Hierarchy.Two_step.hier_cost <= (3.0 *. opt) +. 1e-9)
  done

(* Recursive hierarchical partitioning ------------------------------------------ *)

let test_recursive_hier_produces_valid_partition () =
  let rng = Support.Rng.create 19 in
  let h =
    H.of_edges ~n:32
      (Array.init 40 (fun _ ->
           Support.Rng.sample_distinct rng ~n:32 ~k:(2 + Support.Rng.int rng 3)))
  in
  let t = topo22 4.0 in
  let splitter = Hierarchy.Recursive_hier.multilevel_splitter rng in
  let p = Hierarchy.Recursive_hier.partition ~eps:0.1 ~splitter t h in
  Alcotest.(check int) "arity = leaves" 4 (P.k p);
  Alcotest.(check bool) "roughly balanced" true (P.is_balanced ~eps:0.35 h p);
  Alcotest.(check bool) "cost finite" true (HC.cost t h p >= 0.0)

let test_restrict () =
  let h = H.of_edges ~n:4 [| [| 0; 1; 2 |]; [| 2; 3 |] |] in
  let sub = Hierarchy.Recursive_hier.restrict h [| 0; 1; 2 |] in
  Alcotest.(check int) "restricted nodes" 3 (H.num_nodes sub);
  (* Edge {2,3} drops to a singleton and disappears. *)
  Alcotest.(check int) "restricted edges" 1 (H.num_edges sub)

(* Brute-force hierarchical optimum --------------------------------------------- *)

let test_hier_brute_force_sanity () =
  (* Two heavy pairs: optimal hierarchical bisection-of-bisections puts
     each pair in sibling leaves. *)
  let h =
    H.of_edges ~n:4
      ~edge_weights:[| 10; 10; 1 |]
      [| [| 0; 1 |]; [| 2; 3 |]; [| 1; 2 |] |]
  in
  let t = topo22 7.0 in
  match Hierarchy.Hier_exact.brute_force ~eps:0.0 t h with
  | None -> Alcotest.fail "feasible"
  | Some { Hierarchy.Hier_exact.cost; part } ->
      (* Each node alone in a leaf (capacity 1): pairs {0,1} and {2,3} as
         siblings cost 10 + 10 cheap + 1 crossing = 10+10+7. *)
      Alcotest.(check (float 1e-9)) "optimal cost" 27.0 cost;
      Alcotest.(check bool) "0,1 siblings" true
        (T.lca_level t (P.color part 0) (P.color part 1) = 2)

let test_hier_branch_and_bound_matches_brute_force () =
  let rng = Support.Rng.create 41 in
  for _ = 1 to 6 do
    let h =
      H.of_edges ~n:8
        (Array.init 6 (fun _ ->
             Support.Rng.sample_distinct rng ~n:8
               ~k:(2 + Support.Rng.int rng 2)))
    in
    let t = topo22 (2.0 +. float_of_int (Support.Rng.int rng 4)) in
    let bf = Hierarchy.Hier_exact.brute_force ~eps:0.0 t h in
    let bb = Hierarchy.Hier_exact.branch_and_bound ~eps:0.0 t h in
    match (bf, bb) with
    | Some a, Some b ->
        Alcotest.(check (float 1e-6)) "B&B = brute force"
          a.Hierarchy.Hier_exact.cost b.Hierarchy.Hier_exact.cost
    | None, None -> ()
    | _ -> Alcotest.fail "feasibility disagreement"
  done

let test_hier_refine_monotone_and_balanced () =
  let rng = Support.Rng.create 47 in
  for _ = 1 to 8 do
    let h =
      H.of_edges ~n:24
        (Array.init 20 (fun _ ->
             Support.Rng.sample_distinct rng ~n:24
               ~k:(2 + Support.Rng.int rng 3)))
    in
    let t = topo22 6.0 in
    let part = Solvers.Initial.random_balanced ~eps:0.1 rng h ~k:4 in
    let before = HC.cost t h part in
    let after =
      Hierarchy.Hier_refine.refine
        ~config:{ Hierarchy.Hier_refine.default_config with eps = 0.1 }
        t h part
    in
    Alcotest.(check bool) "hier refine never worse" true
      (after <= before +. 1e-9);
    Alcotest.(check (float 1e-6)) "returned cost correct" (HC.cost t h part)
      after;
    Alcotest.(check bool) "still balanced" true (P.is_balanced ~eps:0.1 h part)
  done

let test_hier_refine_fixes_bad_placement () =
  (* Heavy sibling traffic placed across the top: with some balance slack
     (single moves need room, exactly the eps = 0 plateau that motivates
     KL swaps in the flat setting) the refinement must reach at least the
     matching-optimal placement cost. *)
  let h, part = star_hypergraph () in
  let t = topo22 10.0 in
  let opt = Hierarchy.Assignment.exact t h part in
  (* Relabel the flat parts by a deliberately bad assignment. *)
  let bad =
    P.create ~k:4
      (Array.map (fun c -> [| 0; 2; 1; 3 |].(c)) (P.assignment part))
  in
  let before = HC.cost t h bad in
  let after =
    Hierarchy.Hier_refine.refine
      ~config:{ Hierarchy.Hier_refine.default_config with eps = 1.0 }
      t h bad
  in
  Alcotest.(check bool) "bad placement was worse" true
    (before > opt.Hierarchy.Assignment.cost +. 1e-9);
  Alcotest.(check bool) "refinement reaches the assignment optimum" true
    (after <= opt.Hierarchy.Assignment.cost +. 1e-9);
  Alcotest.(check bool) "still balanced at the slack used" true
    (P.is_balanced ~eps:1.0 h bad)

(* Steiner / arbitrary topologies ------------------------------------------------ *)

let test_steiner_matches_tree_topology () =
  (* On a tree metric, the Steiner tree cost of a leaf set equals the
     Definition 7.1 edge cost. *)
  let t = topo22 4.0 in
  let m = Hierarchy.Steiner.of_topology t in
  List.iter
    (fun leaves ->
      Alcotest.(check (float 1e-9))
        (Fmt.str "steiner = hier for %d leaves" (List.length leaves))
        (HC.edge_cost t leaves)
        (Hierarchy.Steiner.exact m (Array.of_list leaves)))
    [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 1; 2 ]; [ 0; 1; 2; 3 ]; [ 1; 3 ] ]

let test_steiner_mst_upper_bound () =
  let rng = Support.Rng.create 23 in
  for _ = 1 to 10 do
    (* Random metric via random points on a line. *)
    let k = 6 in
    let pos = Array.init k (fun _ -> Support.Rng.float rng 10.0) in
    let m =
      Array.init k (fun a ->
          Array.init k (fun b -> abs_float (pos.(a) -. pos.(b))))
    in
    let terminals = Support.Rng.sample_distinct rng ~n:k ~k:4 in
    let ex = Hierarchy.Steiner.exact m terminals in
    let mst = Hierarchy.Steiner.mst_approx m terminals in
    Alcotest.(check bool) "mst >= exact" true (mst >= ex -. 1e-9);
    Alcotest.(check bool) "mst <= 2 * exact" true (mst <= (2.0 *. ex) +. 1e-9)
  done

let test_steiner_cost_of_partition () =
  let h = H.of_edges ~n:4 [| [| 0; 1 |]; [| 2; 3 |] |] in
  let t = topo22 4.0 in
  let m = Hierarchy.Steiner.of_topology t in
  let p = P.create ~k:4 [| 0; 2; 1; 3 |] in
  Alcotest.(check (float 1e-9)) "steiner total = hier total"
    (HC.cost t h p)
    (Hierarchy.Steiner.cost m h p)

let suite =
  [
    Alcotest.test_case "topology basics" `Quick test_topology_basics;
    Alcotest.test_case "topology validation" `Quick test_topology_validation;
    Alcotest.test_case "uniform binary" `Quick test_uniform_binary;
    Alcotest.test_case "edge cost (paper example)" `Quick
      test_edge_cost_paper_example;
    Alcotest.test_case "flat topology = connectivity" `Quick
      test_flat_topology_is_connectivity;
    Alcotest.test_case "cost within Lemma 7.3 bounds" `Quick
      test_hier_cost_within_bounds;
    Alcotest.test_case "assignment exact" `Quick test_assignment_exact;
    Alcotest.test_case "assignment methods agree" `Quick
      test_assignment_methods_agree;
    Alcotest.test_case "assignment b2=3" `Quick test_assignment_b2_3;
    Alcotest.test_case "recursive matching heuristic" `Quick
      test_recursive_matching;
    Alcotest.test_case "count assignments f(k)" `Quick test_count_assignments;
    Alcotest.test_case "contract parts" `Quick test_contract_parts;
    Alcotest.test_case "two-step on star" `Quick test_two_step_on_star;
    Alcotest.test_case "two-step g1-approximation" `Slow
      test_two_step_g1_approximation;
    Alcotest.test_case "recursive hier partition" `Quick
      test_recursive_hier_produces_valid_partition;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "hier brute force" `Quick test_hier_brute_force_sanity;
    Alcotest.test_case "hier refine monotone" `Quick
      test_hier_refine_monotone_and_balanced;
    Alcotest.test_case "hier refine fixes bad placement" `Quick
      test_hier_refine_fixes_bad_placement;
    Alcotest.test_case "hier B&B = brute force" `Slow
      test_hier_branch_and_bound_matches_brute_force;
    Alcotest.test_case "steiner = tree cost" `Quick
      test_steiner_matches_tree_topology;
    Alcotest.test_case "steiner MST bounds" `Quick test_steiner_mst_upper_bound;
    Alcotest.test_case "steiner partition cost" `Quick
      test_steiner_cost_of_partition;
  ]
