(* Tests for the hypergraph substrate: CSR construction, derived graphs,
   gadgets, and the hMETIS format. *)

module H = Hypergraph

let triangle () =
  (* The Figure 2 hypergraph: 3 nodes, 3 edges of size 2. *)
  H.of_edges ~n:3 [| [| 0; 1 |]; [| 1; 2 |]; [| 0; 2 |] |]

let test_basic_accessors () =
  let h = triangle () in
  Alcotest.(check int) "n" 3 (H.num_nodes h);
  Alcotest.(check int) "m" 3 (H.num_edges h);
  Alcotest.(check int) "rho" 6 (H.num_pins h);
  Alcotest.(check int) "delta" 2 (H.max_degree h);
  Alcotest.(check int) "edge size" 2 (H.edge_size h 0);
  Alcotest.(check int) "degree" 2 (H.node_degree h 1);
  Alcotest.(check (array int)) "pins sorted" [| 0; 2 |] (H.edge_pins h 2);
  Alcotest.(check bool) "edge_mem yes" true (H.edge_mem h 1 2);
  Alcotest.(check bool) "edge_mem no" false (H.edge_mem h 1 0);
  Alcotest.(check (array int)) "incident edges" [| 0; 1 |] (H.incident_edges h 1)

let test_weights () =
  let h =
    H.of_edges ~n:3 ~node_weights:[| 2; 3; 4 |] ~edge_weights:[| 5; 7 |]
      [| [| 0; 1 |]; [| 1; 2 |] |]
  in
  Alcotest.(check int) "node weight" 3 (H.node_weight h 1);
  Alcotest.(check int) "edge weight" 7 (H.edge_weight h 1);
  Alcotest.(check int) "total node weight" 9 (H.total_node_weight h);
  Alcotest.(check int) "total edge weight" 12 (H.total_edge_weight h)

let test_validation () =
  Alcotest.check_raises "pin out of range"
    (Invalid_argument "Hg.of_edges: pin out of range") (fun () ->
      ignore (H.of_edges ~n:2 [| [| 0; 2 |] |]));
  Alcotest.check_raises "duplicate pin"
    (Invalid_argument "Hg.of_edges: duplicate pin within an edge") (fun () ->
      ignore (H.of_edges ~n:3 [| [| 1; 1 |] |]))

let test_builder () =
  let b = H.Builder.create () in
  let v0 = H.Builder.add_node b in
  let vs = H.Builder.add_nodes ~weight:2 b 3 in
  let e0 = H.Builder.add_edge b [| v0; vs.(0) |] in
  let _e1 = H.Builder.add_edge ~weight:4 b vs in
  let h = H.Builder.build b in
  Alcotest.(check int) "builder n" 4 (H.num_nodes h);
  Alcotest.(check int) "builder m" 2 (H.num_edges h);
  Alcotest.(check int) "edge ids stable" 0 e0;
  Alcotest.(check int) "node weight default" 1 (H.node_weight h v0);
  Alcotest.(check int) "node weight custom" 2 (H.node_weight h vs.(1));
  Alcotest.(check int) "edge weight" 4 (H.edge_weight h 1);
  Alcotest.(check (array int)) "pins of e1" vs (H.edge_pins h 1)

let test_induced_subgraph () =
  let h = triangle () in
  let sub, old_nodes, old_edges = H.induced_subgraph h [| 0; 1 |] in
  Alcotest.(check int) "sub n" 2 (H.num_nodes sub);
  Alcotest.(check int) "sub m" 1 (H.num_edges sub);
  Alcotest.(check (array int)) "old nodes" [| 0; 1 |] old_nodes;
  Alcotest.(check (array int)) "old edges" [| 0 |] old_edges;
  (* Full set: identity. *)
  let full, _, _ = H.induced_subgraph h [| 0; 1; 2 |] in
  Alcotest.(check int) "full keeps all edges" 3 (H.num_edges full)

let test_contract () =
  let h =
    H.of_edges ~n:4 [| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 0; 3 |] |]
  in
  (* Merge {0,1} and {2,3}. *)
  let c = H.contract h [| 0; 0; 1; 1 |] 2 in
  Alcotest.(check int) "contracted n" 2 (H.num_nodes c);
  (* Edge {0,1} and {2,3} become singletons (dropped); {1,2} and {0,3}
     both become {0,1} and merge with weight 2. *)
  Alcotest.(check int) "contracted m" 1 (H.num_edges c);
  Alcotest.(check int) "merged weight" 2 (H.edge_weight c 0);
  Alcotest.(check int) "node weight sums" 2 (H.node_weight c 0);
  let c' = H.contract ~drop_singletons:false ~merge_identical:false h
      [| 0; 0; 1; 1 |] 2
  in
  Alcotest.(check int) "no drop, no merge" 4 (H.num_edges c')

let test_connected_components () =
  let h = H.of_edges ~n:6 [| [| 0; 1; 2 |]; [| 3; 4 |] |] in
  let label, count = H.connected_components h in
  Alcotest.(check int) "three components" 3 count;
  Alcotest.(check int) "0 and 2 together" label.(0) label.(2);
  Alcotest.(check bool) "isolated node alone" true (label.(5) <> label.(0));
  Alcotest.(check bool) "two groups differ" true (label.(3) <> label.(0))

let test_disjoint_union () =
  let h = H.disjoint_union (triangle ()) (H.of_edges ~n:2 [| [| 0; 1 |] |]) in
  Alcotest.(check int) "union n" 5 (H.num_nodes h);
  Alcotest.(check int) "union m" 4 (H.num_edges h);
  Alcotest.(check (array int)) "shifted pins" [| 3; 4 |] (H.edge_pins h 3)

let test_add_isolated () =
  let h = H.add_isolated_nodes (triangle ()) 4 in
  Alcotest.(check int) "n grows" 7 (H.num_nodes h);
  Alcotest.(check int) "m unchanged" 3 (H.num_edges h);
  Alcotest.(check int) "isolated degree" 0 (H.node_degree h 6)

let test_degree_sequence () =
  let h = H.of_edges ~n:3 [| [| 0; 1 |]; [| 0; 2 |]; [| 0; 1; 2 |] |] in
  Alcotest.(check (array int)) "sorted degrees" [| 2; 2; 3 |]
    (H.degree_sequence h)

(* Gadgets ------------------------------------------------------------------ *)

let test_block_structure () =
  let h = H.Gadgets.block_hypergraph ~size:5 in
  Alcotest.(check int) "block n" 5 (H.num_nodes h);
  Alcotest.(check int) "block m" 5 (H.num_edges h);
  for e = 0 to 4 do
    Alcotest.(check int) "edge size b-1" 4 (H.edge_size h e)
  done;
  for v = 0 to 4 do
    Alcotest.(check int) "degree b-1" 4 (H.node_degree h v)
  done

let test_grid_structure () =
  let h, g = H.Gadgets.grid_hypergraph ~side:4 ~outsiders:2 () in
  Alcotest.(check int) "grid n" (16 + 2) (H.num_nodes h);
  Alcotest.(check int) "grid m" 8 (H.num_edges h);
  (* Cells have degree exactly 2; outsiders degree 1. *)
  Array.iter
    (fun row ->
      Array.iter
        (fun v -> Alcotest.(check int) "cell degree" 2 (H.node_degree h v))
        row)
    g.H.Gadgets.cells;
  Array.iter
    (fun v -> Alcotest.(check int) "outsider degree" 1 (H.node_degree h v))
    g.H.Gadgets.outsiders;
  Alcotest.(check int) "row 0 extended" 5 (H.edge_size h g.H.Gadgets.row_edges.(0));
  Alcotest.(check int) "row 3 plain" 4 (H.edge_size h g.H.Gadgets.row_edges.(3));
  Alcotest.(check int) "delta is 2" 2 (H.max_degree h);
  Alcotest.(check int) "grid_nodes count" 18
    (Array.length (H.Gadgets.grid_nodes g))

let test_dense_hyperdag_block () =
  let h = H.Gadgets.dense_hyperdag_hypergraph ~size:6 in
  Alcotest.(check int) "dense n" 6 (H.num_nodes h);
  Alcotest.(check int) "dense m" 5 (H.num_edges h);
  Alcotest.(check (array int)) "degree sequence (1,2,...,m-1,m-1)"
    [| 1; 2; 3; 4; 5; 5 |]
    (H.degree_sequence h)

let test_robust_block () =
  let h = Hypergraph.Builder.create () in
  let _ = H.Gadgets.robust_block h ~size:6 ~slack:1 in
  let h = Hypergraph.Builder.build h in
  Alcotest.(check int) "robust n" 6 (H.num_nodes h);
  (* All subsets of size 6-1-2 = 3. *)
  Alcotest.(check int) "robust m = C(6,3)" 20 (H.num_edges h)

(* hMETIS ------------------------------------------------------------------- *)

let test_hmetis_roundtrip_plain () =
  let h = triangle () in
  let h' = H.Hmetis.of_string (H.Hmetis.to_string h) in
  Alcotest.(check int) "n" (H.num_nodes h) (H.num_nodes h');
  Alcotest.(check int) "m" (H.num_edges h) (H.num_edges h');
  for e = 0 to 2 do
    Alcotest.(check (array int)) "pins" (H.edge_pins h e) (H.edge_pins h' e)
  done

let test_hmetis_roundtrip_weighted () =
  let h =
    H.of_edges ~n:4 ~node_weights:[| 1; 2; 3; 4 |] ~edge_weights:[| 9; 1 |]
      [| [| 0; 1; 2 |]; [| 2; 3 |] |]
  in
  let h' = H.Hmetis.of_string (H.Hmetis.to_string h) in
  for v = 0 to 3 do
    Alcotest.(check int) "node weights" (H.node_weight h v) (H.node_weight h' v)
  done;
  for e = 0 to 1 do
    Alcotest.(check int) "edge weights" (H.edge_weight h e) (H.edge_weight h' e);
    Alcotest.(check (array int)) "pins" (H.edge_pins h e) (H.edge_pins h' e)
  done

let test_hmetis_parse_reference () =
  (* Example from the hMETIS manual: 4 hyperedges, 7 nodes. *)
  let text = "% comment\n4 7\n1 2\n1 7 5 6\n5 6 4\n2 3 4\n" in
  let h = H.Hmetis.of_string text in
  Alcotest.(check int) "n" 7 (H.num_nodes h);
  Alcotest.(check int) "m" 4 (H.num_edges h);
  Alcotest.(check (array int)) "0-indexed pins" [| 0; 4; 5; 6 |]
    (H.edge_pins h 1)

let test_hmetis_errors () =
  Alcotest.check_raises "empty" (Failure "Hmetis.of_lines: empty input") (fun () ->
      ignore (H.Hmetis.of_string ""));
  (try
     ignore (H.Hmetis.of_string "2 3\n1 2\n");
     Alcotest.fail "expected failure on truncated file"
   with Failure _ -> ())

(* Malformed input must always surface as a [Failure] whose message names
   the parser ("Hmetis. ..."), never as an escaping [Invalid_argument]
   from a constructor deeper down. *)
let expect_hmetis_failure name text =
  match H.Hmetis.of_string text with
  | _ -> Alcotest.failf "%s: parse unexpectedly succeeded" name
  | exception Failure msg ->
      Alcotest.(check bool)
        (name ^ ": error names the parser")
        true
        (String.length msg >= 7 && String.sub msg 0 7 = "Hmetis.")
  | exception e ->
      Alcotest.failf "%s: expected Failure, got %s" name (Printexc.to_string e)

let test_hmetis_malformed () =
  expect_hmetis_failure "negative header" "-1 3\n";
  expect_hmetis_failure "non-numeric header" "two 3\n";
  expect_hmetis_failure "unsupported fmt" "1 3 7\n1 2\n";
  expect_hmetis_failure "truncated header" "2\n1 2\n";
  expect_hmetis_failure "pin above range" "1 3\n1 4\n";
  expect_hmetis_failure "pin zero (1-indexed format)" "1 3\n0 1\n";
  expect_hmetis_failure "duplicate pin in an edge" "1 3\n2 2\n";
  expect_hmetis_failure "trailing garbage" "1 3\n1 2\n1 3\n";
  expect_hmetis_failure "missing node weights" "1 2 10\n1 2\n";
  expect_hmetis_failure "malformed node weight line" "1 2 10\n1 2\n1 1\n1\n"

let string_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_dot_export () =
  let h = triangle () in
  let dot = H.Dot.to_string ~parts:[| 0; 1; 0 |] h in
  Alcotest.(check bool) "mentions node" true (string_contains dot "v0");
  Alcotest.(check bool) "mentions edge" true (string_contains dot "e2");
  Alcotest.(check bool) "incidence arc" true (string_contains dot "v1 -- e0")

(* Property tests ----------------------------------------------------------- *)

let random_hypergraph_gen =
  QCheck.Gen.(
    let* n = int_range 1 20 in
    let* m = int_range 0 15 in
    let* edges =
      list_repeat m
        (let* size = int_range 1 (min n 5) in
         let* seed = int_bound 1_000_000 in
         let rng = Support.Rng.create seed in
         return (Support.Rng.sample_distinct rng ~n ~k:size))
    in
    return (H.of_edges ~n (Array.of_list edges)))

let arbitrary_hypergraph =
  QCheck.make ~print:(fun h -> Fmt.str "%a" H.pp h) random_hypergraph_gen

let qcheck_pin_count =
  QCheck.Test.make ~name:"rho equals sum of edge sizes and sum of degrees"
    ~count:100 arbitrary_hypergraph (fun h ->
      let by_edges =
        List.init (H.num_edges h) (H.edge_size h) |> List.fold_left ( + ) 0
      in
      let by_nodes =
        List.init (H.num_nodes h) (H.node_degree h) |> List.fold_left ( + ) 0
      in
      by_edges = H.num_pins h && by_nodes = H.num_pins h)

let qcheck_incidence_consistent =
  QCheck.Test.make ~name:"v in pins(e) iff e in incident(v)" ~count:100
    arbitrary_hypergraph (fun h ->
      let ok = ref true in
      for e = 0 to H.num_edges h - 1 do
        H.iter_pins h e (fun v ->
            if not (Array.mem e (H.incident_edges h v)) then ok := false)
      done;
      for v = 0 to H.num_nodes h - 1 do
        H.iter_incident h v (fun e -> if not (H.edge_mem h e v) then ok := false)
      done;
      !ok)

let qcheck_hmetis_roundtrip =
  QCheck.Test.make ~name:"hMETIS roundtrip preserves structure" ~count:100
    arbitrary_hypergraph (fun h ->
      let h' = H.Hmetis.of_string (H.Hmetis.to_string h) in
      H.num_nodes h = H.num_nodes h'
      && H.num_edges h = H.num_edges h'
      && List.for_all
           (fun e -> H.edge_pins h e = H.edge_pins h' e)
           (List.init (H.num_edges h) Fun.id))

let suite =
  [
    Alcotest.test_case "basic accessors" `Quick test_basic_accessors;
    Alcotest.test_case "weights" `Quick test_weights;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
    Alcotest.test_case "contract" `Quick test_contract;
    Alcotest.test_case "connected components" `Quick test_connected_components;
    Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
    Alcotest.test_case "add isolated nodes" `Quick test_add_isolated;
    Alcotest.test_case "degree sequence" `Quick test_degree_sequence;
    Alcotest.test_case "block gadget" `Quick test_block_structure;
    Alcotest.test_case "grid gadget" `Quick test_grid_structure;
    Alcotest.test_case "dense hyperDAG block" `Quick test_dense_hyperdag_block;
    Alcotest.test_case "robust block" `Quick test_robust_block;
    Alcotest.test_case "hMETIS roundtrip" `Quick test_hmetis_roundtrip_plain;
    Alcotest.test_case "hMETIS weighted roundtrip" `Quick
      test_hmetis_roundtrip_weighted;
    Alcotest.test_case "hMETIS reference parse" `Quick
      test_hmetis_parse_reference;
    Alcotest.test_case "hMETIS errors" `Quick test_hmetis_errors;
    Alcotest.test_case "hMETIS malformed input" `Quick test_hmetis_malformed;
    Alcotest.test_case "DOT export" `Quick test_dot_export;
    QCheck_alcotest.to_alcotest qcheck_pin_count;
    QCheck_alcotest.to_alcotest qcheck_incidence_consistent;
    QCheck_alcotest.to_alcotest qcheck_hmetis_roundtrip;
  ]
