(* Cross-module property tests (QCheck): invariants that tie the metrics,
   solvers, reductions and models together. *)

module H = Hypergraph
module P = Partition

(* Shared generators ---------------------------------------------------------- *)

let gen_hypergraph ~max_n ~max_m =
  QCheck.Gen.(
    let* n = int_range 2 max_n in
    let* m = int_range 1 max_m in
    let* seed = int_bound 1_000_000 in
    let rng = Support.Rng.create seed in
    let edges =
      Array.init m (fun _ ->
          let size = 2 + Support.Rng.int rng (min 4 (n - 1)) in
          Support.Rng.sample_distinct rng ~n ~k:size)
    in
    return (H.of_edges ~n edges))

let arb_hypergraph ~max_n ~max_m =
  QCheck.make
    ~print:(fun h -> Fmt.str "%a" H.pp h)
    (gen_hypergraph ~max_n ~max_m)

let gen_dag ~max_n =
  QCheck.Gen.(
    let* n = int_range 2 max_n in
    let* seed = int_bound 1_000_000 in
    let rng = Support.Rng.create seed in
    return (Workloads.Dag_gen.random rng ~n ~edge_probability:0.3))

let arb_dag ~max_n =
  QCheck.make ~print:(fun d -> Fmt.str "%a" Hyperdag.Dag.pp d) (gen_dag ~max_n)

(* Metric invariants ------------------------------------------------------------ *)

let prop_metric_sandwich =
  QCheck.Test.make ~name:"cutnet <= connectivity <= (k-1) * cutnet" ~count:100
    QCheck.(pair (arb_hypergraph ~max_n:12 ~max_m:10) small_int)
    (fun (h, seed) ->
      let rng = Support.Rng.create seed in
      let k = 2 + Support.Rng.int rng 3 in
      let p = P.random rng ~k ~n:(H.num_nodes h) in
      let cut = P.cutnet_cost h p and conn = P.connectivity_cost h p in
      cut <= conn && conn <= (k - 1) * cut || (cut = 0 && conn = 0))

let prop_lambda_range =
  QCheck.Test.make ~name:"1 <= lambda_e <= min(|e|, k)" ~count:100
    QCheck.(pair (arb_hypergraph ~max_n:12 ~max_m:10) small_int)
    (fun (h, seed) ->
      let rng = Support.Rng.create seed in
      let k = 2 + Support.Rng.int rng 3 in
      let p = P.random rng ~k ~n:(H.num_nodes h) in
      let ok = ref true in
      for e = 0 to H.num_edges h - 1 do
        let l = P.lambda h p e in
        if l < 1 || l > min (H.edge_size h e) k then ok := false
      done;
      !ok)

let prop_contraction_preserves_cost =
  QCheck.Test.make
    ~name:"cost(contract(h, label), p) = cost(h, p . label)" ~count:100
    QCheck.(pair (arb_hypergraph ~max_n:12 ~max_m:10) small_int)
    (fun (h, seed) ->
      let rng = Support.Rng.create seed in
      let n = H.num_nodes h in
      let groups = 1 + Support.Rng.int rng n in
      (* Surjective labeling. *)
      let label =
        Array.init n (fun v -> if v < groups then v else Support.Rng.int rng groups)
      in
      let coarse = H.contract h label groups in
      let cp = P.random rng ~k:3 ~n:groups in
      let fp =
        P.create ~k:3 (Array.map (fun l -> P.color cp l) label)
      in
      P.connectivity_cost coarse cp = P.connectivity_cost h fp
      && P.cutnet_cost coarse cp <= P.cutnet_cost h fp)

(* Solver invariants ------------------------------------------------------------ *)

let prop_exact_below_heuristics =
  QCheck.Test.make ~name:"exact optimum <= multilevel cost" ~count:25
    QCheck.(pair (arb_hypergraph ~max_n:10 ~max_m:8) small_int)
    (fun (h, seed) ->
      let rng = Support.Rng.create seed in
      let eps = 0.5 in
      match Solvers.Exact.optimum ~eps h ~k:2 with
      | None -> true
      | Some opt ->
          let ml =
            Solvers.Multilevel.partition
              ~config:{ Solvers.Multilevel.default_config with eps }
              rng h ~k:2
          in
          (not (P.is_balanced ~eps h ml))
          || opt <= P.connectivity_cost h ml)

let prop_optimum_monotone_in_eps =
  QCheck.Test.make ~name:"optimum non-increasing in eps" ~count:25
    (arb_hypergraph ~max_n:9 ~max_m:7)
    (fun h ->
      let opt eps = Solvers.Exact.optimum ~eps h ~k:2 in
      match (opt 0.0, opt 0.5, opt 1.0 (* eps < k-1 boundary excluded *)) with
      | Some a, Some b, Some c -> a >= b && b >= c
      | None, _, _ -> true (* strict eps=0 may be infeasible (odd n) *)
      | _, None, _ | _, _, None -> false)

let prop_refinement_never_worse =
  QCheck.Test.make ~name:"FM and KL never increase the cost" ~count:50
    QCheck.(pair (arb_hypergraph ~max_n:14 ~max_m:12) small_int)
    (fun (h, seed) ->
      let rng = Support.Rng.create seed in
      let p1 = Solvers.Initial.random_balanced ~eps:0.2 rng h ~k:2 in
      let p2 = P.copy p1 in
      let before = P.connectivity_cost h p1 in
      let fm =
        Solvers.Refine.refine
          ~config:{ Solvers.Refine.default_config with eps = 0.2 }
          h p1
      in
      let kl = Solvers.Kl_swap.refine h p2 in
      fm <= before && kl <= before)

(* HyperDAG invariants ------------------------------------------------------------ *)

let prop_hyperdag_edge_bound =
  QCheck.Test.make ~name:"hyperDAGs have |E| <= n - 1" ~count:100
    (arb_dag ~max_n:12) (fun dag ->
      let hg = Hyperdag.hypergraph_of_dag dag in
      H.num_edges hg <= H.num_nodes hg - 1 && Hyperdag.is_hyperdag hg)

let prop_layering_envelope =
  QCheck.Test.make ~name:"earliest <= latest, both valid layerings" ~count:100
    (arb_dag ~max_n:12) (fun dag ->
      let e = Hyperdag.Layering.earliest dag in
      let l = Hyperdag.Layering.latest dag in
      Hyperdag.Layering.is_valid dag e
      && Hyperdag.Layering.is_valid dag l
      && Array.for_all Fun.id (Array.mapi (fun v le -> le <= l.(v)) e))

let prop_mu_p_dominates_mu =
  QCheck.Test.make ~name:"mu <= mu_p for every fixed partition" ~count:50
    QCheck.(pair (arb_dag ~max_n:9) small_int)
    (fun (dag, seed) ->
      let rng = Support.Rng.create seed in
      let n = Hyperdag.Dag.num_nodes dag in
      let assignment = Array.init n (fun _ -> Support.Rng.int rng 2) in
      Scheduling.Mu.exact_makespan dag ~k:2
      <= Scheduling.Mu.exact_makespan_fixed dag assignment ~k:2)

(* Reduction invariants ------------------------------------------------------------ *)

let prop_eps_reduction_preserves_optimum =
  QCheck.Test.make ~name:"Lemma A.1 padding preserves the optimum" ~count:15
    (arb_hypergraph ~max_n:8 ~max_m:7)
    (fun h ->
      let red = Reductions.Eps_reduction.build ~eps:0.5 ~k:2 h in
      Solvers.Exact.optimum ~eps:0.5 h ~k:2
      = Solvers.Exact.optimum ~eps:0.0 (Reductions.Eps_reduction.padded red) ~k:2)

let prop_hierarchical_cost_bounds =
  QCheck.Test.make
    ~name:"connectivity <= hierarchical <= g1 * connectivity (Lemma 7.3)"
    ~count:50
    QCheck.(pair (arb_hypergraph ~max_n:12 ~max_m:10) small_int)
    (fun (h, seed) ->
      let rng = Support.Rng.create seed in
      let topo = Hierarchy.Topology.two_level ~b1:2 ~b2:2 ~g1:5.0 in
      let p = P.random rng ~k:4 ~n:(H.num_nodes h) in
      let lo, hi = Hierarchy.Hier_cost.connectivity_bounds topo h p in
      let c = Hierarchy.Hier_cost.cost topo h p in
      c >= lo -. 1e-9 && c <= hi +. 1e-9)

(* Gain-cache soundness: the cached-gain machinery in Refine is built on
   Pin_counts.move_delta being the exact cost difference, so pin it down
   under both metrics along random move sequences (each move also shifts
   the counts the next delta is computed from). *)
let prop_move_delta_exact =
  QCheck.Test.make
    ~name:"move_delta = recomputed cost difference (both metrics)" ~count:100
    QCheck.(pair (arb_hypergraph ~max_n:14 ~max_m:12) small_int)
    (fun (h, seed) ->
      let rng = Support.Rng.create seed in
      let n = H.num_nodes h in
      let k = 2 + Support.Rng.int rng 3 in
      let p = P.random rng ~k ~n in
      let pc = Solvers.Pin_counts.create h p in
      let ok = ref true in
      for _ = 1 to 30 do
        let v = Support.Rng.int rng n in
        let src = P.color p v in
        let dst = Support.Rng.int rng k in
        if src <> dst then begin
          let conn0 = P.connectivity_cost h p in
          let cut0 = P.cutnet_cost h p in
          let dconn = Solvers.Pin_counts.move_delta pc v ~src ~dst in
          let dcut =
            Solvers.Pin_counts.move_delta ~metric:P.Cut_net pc v ~src ~dst
          in
          (P.assignment p).(v) <- dst;
          Solvers.Pin_counts.move pc v ~src ~dst;
          if P.connectivity_cost h p - conn0 <> dconn then ok := false;
          if P.cutnet_cost h p - cut0 <> dcut then ok := false
        end
      done;
      !ok)

(* Workspace reuse is pure recycling: refining through a workspace dirtied
   by an unrelated solve must produce the same partition and cost as a
   fresh workspace (and as the internally allocated one). *)
let prop_workspace_reuse_deterministic =
  QCheck.Test.make ~name:"refine: dirty shared workspace = fresh workspace"
    ~count:50
    QCheck.(pair (arb_hypergraph ~max_n:16 ~max_m:14) small_int)
    (fun (h, seed) ->
      let rng = Support.Rng.create seed in
      let k = 2 + Support.Rng.int rng 2 in
      let base = P.random rng ~k ~n:(H.num_nodes h) in
      let config = { Solvers.Refine.default_config with eps = 0.2 } in
      let ws = Solvers.Workspace.create () in
      (* Dirty the workspace on an unrelated instance first. *)
      let other =
        let r2 = Support.Rng.create (seed + 17) in
        H.of_edges ~n:10
          (Array.init 8 (fun _ ->
               Support.Rng.sample_distinct r2 ~n:10
                 ~k:(2 + Support.Rng.int r2 3)))
      in
      ignore
        (Solvers.Refine.refine ~config ~workspace:ws other
           (P.random rng ~k ~n:(H.num_nodes other)));
      let p1 = P.copy base and p2 = P.copy base and p3 = P.copy base in
      let c1 = Solvers.Refine.refine ~config ~workspace:ws h p1 in
      let c2 =
        Solvers.Refine.refine ~config
          ~workspace:(Solvers.Workspace.create ())
          h p2
      in
      let c3 = Solvers.Refine.refine ~config h p3 in
      c1 = c2 && c2 = c3
      && P.assignment p1 = P.assignment p2
      && P.assignment p2 = P.assignment p3)

let suite =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_metric_sandwich;
      prop_lambda_range;
      prop_move_delta_exact;
      prop_workspace_reuse_deterministic;
      prop_contraction_preserves_cost;
      prop_exact_below_heuristics;
      prop_optimum_monotone_in_eps;
      prop_refinement_never_worse;
      prop_hyperdag_edge_bound;
      prop_layering_envelope;
      prop_mu_p_dominates_mu;
      prop_eps_reduction_preserves_optimum;
      prop_hierarchical_cost_bounds;
    ]
