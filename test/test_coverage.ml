(* Additional coverage: multi-way FM, full coarsening hierarchies, boundary
   cases of the Lemma D.2 machinery, eps > 0 reduction variants, and the
   two-step driver. *)

module H = Hypergraph
module P = Partition
module R = Reductions

let test_fm_k3_balanced () =
  let rng = Support.Rng.create 51 in
  for _ = 1 to 10 do
    let hg = Workloads.Rand_hg.uniform rng ~n:30 ~m:40 ~min_size:2 ~max_size:4 in
    let part = Solvers.Initial.random_balanced ~eps:0.1 rng hg ~k:3 in
    let before = P.connectivity_cost hg part in
    let after =
      Solvers.Refine.refine
        ~config:{ Solvers.Refine.default_config with eps = 0.1 }
        hg part
    in
    Alcotest.(check bool) "k=3 FM never worse" true (after <= before);
    Alcotest.(check bool) "k=3 FM keeps balance" true
      (P.is_balanced ~eps:0.1 hg part)
  done

let test_full_hierarchy_projection () =
  (* Projecting any coarse partition through the whole hierarchy preserves
     connectivity cost level by level. *)
  let rng = Support.Rng.create 53 in
  let hg = Workloads.Rand_hg.uniform rng ~n:200 ~m:300 ~min_size:2 ~max_size:5 in
  let coarsest, levels = Solvers.Coarsen.hierarchy rng hg ~k:4 ~stop_nodes:30 in
  Alcotest.(check bool) "hierarchy shrinks" true
    (Hypergraph.num_nodes coarsest < 200);
  let levels = Array.of_list levels in
  let part = ref (P.random rng ~k:4 ~n:(Hypergraph.num_nodes coarsest)) in
  let cost = P.connectivity_cost coarsest !part in
  for d = Array.length levels - 1 downto 0 do
    part := Solvers.Coarsen.project levels.(d) !part;
    let fine = if d = 0 then hg else levels.(d - 1).Solvers.Coarsen.coarse in
    Alcotest.(check int) "projection preserves cost at every level" cost
      (P.connectivity_cost fine !part)
  done

let test_mc_builder_boundaries () =
  (* At_most_red 0: the subset must be entirely blue. *)
  let b = H.Builder.create () in
  let s = H.Builder.add_nodes b 2 in
  let mc =
    R.Mc_builder.finalize b
      [ { R.Mc_builder.subset = s; bound = R.Mc_builder.At_most_red 0 } ]
  in
  let h = mc.R.Mc_builder.hypergraph in
  let check pattern expected =
    let colors = Array.make (H.num_nodes h) 0 in
    R.Mc_builder.paint_anchors mc colors;
    Array.iteri (fun i c -> colors.(s.(i)) <- c) pattern;
    Alcotest.(check bool)
      (Fmt.str "pattern %d%d" pattern.(0) pattern.(1))
      expected
      (R.Mc_builder.feasible mc (P.create ~k:2 (Array.copy colors)))
  in
  check [| 0; 0 |] true;
  check [| 1; 0 |] false;
  check [| 1; 1 |] false;
  (* At_least_red |S|: entirely red. *)
  let b2 = H.Builder.create () in
  let s2 = H.Builder.add_nodes b2 2 in
  let mc2 =
    R.Mc_builder.finalize b2
      [ { R.Mc_builder.subset = s2; bound = R.Mc_builder.At_least_red 2 } ]
  in
  let h2 = mc2.R.Mc_builder.hypergraph in
  let check2 pattern expected =
    let colors = Array.make (H.num_nodes h2) 0 in
    R.Mc_builder.paint_anchors mc2 colors;
    Array.iteri (fun i c -> colors.(s2.(i)) <- c) pattern;
    Alcotest.(check bool)
      (Fmt.str "at-least pattern %d%d" pattern.(0) pattern.(1))
      expected
      (R.Mc_builder.feasible mc2 (P.create ~k:2 (Array.copy colors)))
  in
  check2 [| 1; 1 |] true;
  check2 [| 1; 0 |] false

let test_delta2_with_positive_eps () =
  let g = Npc.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let red = R.Spes_delta2.build ~eps:0.5 g ~p:1 in
  let h = R.Spes_delta2.hypergraph red in
  let part = R.Spes_delta2.embed red [| 1 |] in
  Alcotest.(check bool) "eps=0.5 embed balanced" true
    (P.is_balanced ~eps:0.5 h part);
  Alcotest.(check int) "cost = covered" 2 (P.connectivity_cost h part);
  Alcotest.(check int) "still degree 2" 2 (H.max_degree h)

let test_spes_with_positive_eps () =
  let g = Npc.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let red = R.Spes_to_partition.build ~eps:0.25 g ~p:2 in
  let h = R.Spes_to_partition.hypergraph red in
  let part = R.Spes_to_partition.embed red [| 0; 2 |] in
  Alcotest.(check bool) "eps=0.25 embed balanced" true
    (P.is_balanced ~eps:0.25 h part);
  Alcotest.(check int) "cost = covered (disjoint edges)" 4
    (P.connectivity_cost h part)

let test_two_step_run_driver () =
  let rng = Support.Rng.create 55 in
  let hg = Workloads.Rand_hg.planted rng ~n:64 ~m:96 ~k:4 ~locality:0.9
      ~edge_size:3
  in
  let topo = Hierarchy.Topology.two_level ~b1:2 ~b2:2 ~g1:4.0 in
  let r = Hierarchy.Two_step.run topo hg in
  Alcotest.(check int) "flat arity" 4 (P.k r.Hierarchy.Two_step.flat);
  Alcotest.(check bool) "hier cost within Lemma 7.3 sandwich" true
    (let lo, hi =
       Hierarchy.Hier_cost.connectivity_bounds topo hg r.Hierarchy.Two_step.flat
     in
     r.Hierarchy.Two_step.hier_cost >= lo -. 1e-9
     && r.Hierarchy.Two_step.hier_cost <= hi +. 1e-9);
  (* The leaf assignment is a bijection. *)
  let sorted = Array.copy r.Hierarchy.Two_step.leaf_of_part in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "bijection" (Array.init 4 Fun.id) sorted

let test_matching_guard () =
  Alcotest.check_raises "k > 24 rejected"
    (Invalid_argument "Pairing.exact_max_weight: k > 24") (fun () ->
      ignore (Pairing.exact_max_weight ~k:26 (fun _ _ -> 0)))

let test_xp_multi_infeasible () =
  (* Constraint that can never be satisfied at eps = 0 with k = 2: a class
     of odd size has no exactly-balanced coloring under Strict capacity. *)
  let hg = H.of_edges ~n:3 [| [| 0; 1 |] |] in
  let mc = P.Multi_constraint.create [| [| 0; 1; 2 |] |] in
  Alcotest.(check bool) "infeasible detected" true
    (Solvers.Xp.decision_multi ~eps:0.0 hg ~k:2 ~constraints:mc ~cost_limit:2
    = None)

let test_sched_reduction_rooted_classes () =
  (* The rooted variant stays an out-forest and bounded fan-out from the
     root; the unrooted one is also level-order. *)
  let inst = Npc.Three_partition.create [| 3; 3; 4 |] in
  let red = R.Sched_from_three_partition.build inst in
  Alcotest.(check bool) "unrooted is level-order" true
    (Hyperdag.Dag.is_level_order (R.Sched_from_three_partition.dag red))

let suite =
  [
    Alcotest.test_case "FM at k=3" `Quick test_fm_k3_balanced;
    Alcotest.test_case "full hierarchy projection" `Quick
      test_full_hierarchy_projection;
    Alcotest.test_case "Lemma D.2 boundaries" `Quick test_mc_builder_boundaries;
    Alcotest.test_case "Delta=2 with eps > 0" `Quick
      test_delta2_with_positive_eps;
    Alcotest.test_case "SpES reduction with eps > 0" `Quick
      test_spes_with_positive_eps;
    Alcotest.test_case "two-step driver" `Quick test_two_step_run_driver;
    Alcotest.test_case "matching size guard" `Quick test_matching_guard;
    Alcotest.test_case "XP multi infeasible" `Quick test_xp_multi_infeasible;
    Alcotest.test_case "Thm 5.5 DAG is level-order" `Quick
      test_sched_reduction_rooted_classes;
  ]
