(* Tests for DAGs, hyperDAG conversion, recognition (Lemma B.2) and
   layerings (Section 5.1). *)

module H = Hypergraph
module HD = Hyperdag
module D = Hyperdag.Dag

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  D.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_dag_basics () =
  let d = diamond () in
  Alcotest.(check int) "n" 4 (D.num_nodes d);
  Alcotest.(check int) "m" 4 (D.num_edges d);
  Alcotest.(check int) "out degree" 2 (D.out_degree d 0);
  Alcotest.(check int) "in degree" 2 (D.in_degree d 3);
  Alcotest.(check (array int)) "succs" [| 1; 2 |] (D.succs d 0);
  Alcotest.(check (array int)) "preds" [| 1; 2 |] (D.preds d 3);
  Alcotest.(check bool) "has edge" true (D.has_edge d 1 3);
  Alcotest.(check bool) "no edge" false (D.has_edge d 1 2);
  Alcotest.(check (array int)) "sources" [| 0 |] (D.sources d);
  Alcotest.(check (array int)) "sinks" [| 3 |] (D.sinks d);
  Alcotest.(check int) "critical path" 3 (D.critical_path_length d)

let test_dag_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Dag.of_edges: self-loop")
    (fun () -> ignore (D.of_edges ~n:2 [ (0, 0) ]));
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Dag.of_edges: duplicate edge") (fun () ->
      ignore (D.of_edges ~n:2 [ (0, 1); (0, 1) ]));
  (try
     ignore (D.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ]);
     Alcotest.fail "expected Cycle"
   with D.Cycle -> ())

let test_topological_order () =
  let d = diamond () in
  let topo = D.topological_order d in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) topo;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "topo order respects edges" true (pos.(u) < pos.(v)))
    (D.edges d)

let test_concat_serial () =
  let chain2 = D.of_edges ~n:2 [ (0, 1) ] in
  let c = D.concat_serial chain2 chain2 in
  Alcotest.(check int) "n" 4 (D.num_nodes c);
  Alcotest.(check bool) "bridge edge" true (D.has_edge c 1 2);
  Alcotest.(check int) "path length" 4 (D.critical_path_length c)

let test_reverse () =
  let d = diamond () in
  let r = D.reverse d in
  Alcotest.(check bool) "reversed edge" true (D.has_edge r 3 1);
  Alcotest.(check (array int)) "reversed sources" [| 3 |] (D.sources r)

(* Conversion (Definition 3.2) ---------------------------------------------- *)

let test_of_dag_diamond () =
  let hg, gens = HD.of_dag (diamond ()) in
  (* Nodes 0, 1, 2 have successors; node 3 is a sink. *)
  Alcotest.(check int) "hyperedges = non-sinks" 3 (H.num_edges hg);
  Alcotest.(check (array int)) "generators" [| 0; 1; 2 |] gens;
  Alcotest.(check (array int)) "edge of 0 = {0,1,2}" [| 0; 1; 2 |]
    (H.edge_pins hg 0);
  Alcotest.(check (array int)) "edge of 1 = {1,3}" [| 1; 3 |] (H.edge_pins hg 1);
  Alcotest.(check bool) "conversion yields a hyperDAG" true
    (HD.is_hyperdag hg)

let test_of_dag_indegree_bound () =
  (* In-degree <= 2 in the DAG gives Delta <= 3 in the hyperDAG
     (Section 3.2). *)
  let rng = Support.Rng.create 17 in
  for _ = 1 to 20 do
    let n = 8 in
    let edges = ref [] in
    for v = 1 to n - 1 do
      let d = Support.Rng.int rng (min 3 v) in
      let preds = Support.Rng.sample_distinct rng ~n:v ~k:d in
      Array.iter (fun u -> edges := (u, v) :: !edges) preds
    done;
    let dag = D.of_edges ~n !edges in
    let indeg_max =
      Support.Util.max_array (Array.init n (fun v -> D.in_degree dag v))
    in
    let hg, _ = HD.of_dag dag in
    Alcotest.(check bool) "Delta <= indeg_max + 1" true
      (H.max_degree hg <= indeg_max + 1)
  done

(* Recognition (Lemma B.2) --------------------------------------------------- *)

let test_triangle_not_hyperdag () =
  (* Figure 2: the triangle is not a hyperDAG. *)
  let tri = H.of_edges ~n:3 [| [| 0; 1 |]; [| 1; 2 |]; [| 0; 2 |] |] in
  Alcotest.(check bool) "not a hyperDAG" false (HD.is_hyperdag tri);
  match HD.violating_subset tri with
  | None -> Alcotest.fail "expected a violating subset"
  | Some nodes ->
      Alcotest.(check (array int)) "whole triangle violates" [| 0; 1; 2 |] nodes

let test_too_many_edges_not_hyperdag () =
  (* |E| > n - 1 cannot be a hyperDAG (Appendix B). *)
  let hg =
    H.of_edges ~n:3
      [| [| 0; 1 |]; [| 1; 2 |]; [| 0; 2 |]; [| 0; 1; 2 |] |]
  in
  Alcotest.(check bool) "too dense" false (HD.is_hyperdag hg)

let test_recognize_two_edges () =
  (* Appendix B: 3 nodes with two size-2 hyperedges is a hyperDAG with two
     non-isomorphic witnesses; we accept either. *)
  let hg = H.of_edges ~n:3 [| [| 0; 1 |]; [| 1; 2 |] |] in
  match HD.recognize hg with
  | None -> Alcotest.fail "should be a hyperDAG"
  | Some gens ->
      Alcotest.(check bool) "assignment valid" true
        (HD.valid_generator_assignment hg gens)

let test_densest_hyperdag_recognized () =
  for size = 2 to 8 do
    let hg = H.Gadgets.dense_hyperdag_hypergraph ~size in
    Alcotest.(check bool) "dense block is hyperDAG" true (HD.is_hyperdag hg)
  done

let test_roundtrip_dag_hyperdag () =
  (* DAG -> hyperDAG -> witness DAG -> hyperDAG gives the same hypergraph
     up to hyperedge order (hyperedges are sets {u} + succs u). *)
  let rng = Support.Rng.create 23 in
  for _ = 1 to 30 do
    let n = 2 + Support.Rng.int rng 8 in
    let edges = ref [] in
    for v = 1 to n - 1 do
      let d = Support.Rng.int rng (min 3 v) in
      Array.iter
        (fun u -> edges := (u, v) :: !edges)
        (Support.Rng.sample_distinct rng ~n:v ~k:d)
    done;
    let dag = D.of_edges ~n !edges in
    let hg, _ = HD.of_dag dag in
    match HD.to_dag hg with
    | None -> Alcotest.fail "hyperDAG should reconstruct"
    | Some dag' ->
        let hg', _ = HD.of_dag dag' in
        let norm h =
          List.sort Support.Order.int_array
            (List.init (H.num_edges h) (fun e -> H.edge_pins h e))
        in
        Alcotest.(check bool) "same hyperedge multiset" true
          (norm hg = norm hg')
  done

(* Malformed input must always surface as a [Failure] whose message names
   the parser ("Dag_io. ..."), never as an escaping [Invalid_argument] or
   [Dag.Cycle] from the constructor. *)
let expect_dag_io_failure name text =
  match Hyperdag.Dag_io.of_string text with
  | _ -> Alcotest.failf "%s: parse unexpectedly succeeded" name
  | exception Failure msg ->
      Alcotest.(check bool)
        (name ^ ": error names the parser")
        true
        (String.length msg >= 7 && String.sub msg 0 7 = "Dag_io.")
  | exception e ->
      Alcotest.failf "%s: expected Failure, got %s" name (Printexc.to_string e)

let test_dag_io_malformed () =
  expect_dag_io_failure "empty" "";
  expect_dag_io_failure "truncated header" "3\n";
  expect_dag_io_failure "negative header" "-2 1\n0 1\n";
  expect_dag_io_failure "non-numeric edge" "2 1\n0 x\n";
  expect_dag_io_failure "truncated edge list" "3 2\n0 1\n";
  expect_dag_io_failure "trailing garbage" "2 1\n0 1\n1 0 extra\n";
  expect_dag_io_failure "endpoint out of range" "2 1\n0 5\n";
  expect_dag_io_failure "negative endpoint" "2 1\n-1 0\n";
  expect_dag_io_failure "self-loop" "2 1\n1 1\n";
  expect_dag_io_failure "cycle" "2 2\n0 1\n1 0\n"

let test_dag_io_roundtrip () =
  let rng = Support.Rng.create 17 in
  for _ = 1 to 20 do
    let n = 2 + Support.Rng.int rng 10 in
    let edges = ref [] in
    for v = 1 to n - 1 do
      let d = Support.Rng.int rng (min 3 v) in
      Array.iter
        (fun u -> edges := (u, v) :: !edges)
        (Support.Rng.sample_distinct rng ~n:v ~k:d)
    done;
    let dag = D.of_edges ~n !edges in
    let dag' = Hyperdag.Dag_io.of_string (Hyperdag.Dag_io.to_string dag) in
    Alcotest.(check int) "n" (D.num_nodes dag) (D.num_nodes dag');
    let norm d = List.sort Support.Order.int_pair (D.edges d) in
    Alcotest.(check bool) "same edges" true (norm dag = norm dag')
  done

let test_generator_assignment_validation () =
  let hg = H.of_edges ~n:3 [| [| 0; 1 |]; [| 1; 2 |] |] in
  Alcotest.(check bool) "valid witness" true
    (HD.valid_generator_assignment hg [| 0; 1 |]);
  Alcotest.(check bool) "non-member generator" false
    (HD.valid_generator_assignment hg [| 2; 1 |]);
  Alcotest.(check bool) "duplicate generator" false
    (HD.valid_generator_assignment hg [| 1; 1 |]);
  (* Cyclic: 0 generates {0,1} (edge 0->1), 1... choose gens so that the
     digraph has a cycle: gens (1, 2) gives edges 1->0 and 2->1: acyclic.
     gens (1, 0)? 0 is not in edge 1.  Use a 4-node example instead. *)
  let hg2 = H.of_edges ~n:2 [| [| 0; 1 |] |] in
  Alcotest.(check bool) "wrong length" false
    (HD.valid_generator_assignment hg2 [||])

(* i-th smallest degree in a hyperDAG is at most i (Appendix B). *)
let qcheck_hyperdag_degree_sequence =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 12 in
      let* edges =
        list_repeat (n - 1)
          (let* src = int_range 0 (n - 2) in
           let* tgt = int_range (src + 1) (n - 1) in
           return (src, tgt))
      in
      return (D.of_edges ~n (List.sort_uniq Support.Order.int_pair edges)))
  in
  QCheck.Test.make ~name:"hyperDAG degree sequence is dominated by 1..n"
    ~count:100
    (QCheck.make gen)
    (fun dag ->
      let hg, _ = HD.of_dag dag in
      let ds = H.degree_sequence hg in
      Array.for_all Fun.id (Array.mapi (fun i d -> d <= i + 1) ds))

(* Layerings ----------------------------------------------------------------- *)

let test_earliest_latest () =
  (* Figure 5-style: diamond plus a floating node reachable from 0 only. *)
  let d = D.of_edges ~n:5 [ (0, 1); (0, 2); (1, 3); (2, 3); (0, 4) ] in
  let e = HD.Layering.earliest d and l = HD.Layering.latest d in
  Alcotest.(check int) "layers" 3 (HD.Layering.num_layers d);
  Alcotest.(check (array int)) "earliest" [| 0; 1; 1; 2; 1 |] e;
  Alcotest.(check (array int)) "latest" [| 0; 1; 1; 2; 2 |] l;
  Alcotest.(check bool) "earliest valid" true (HD.Layering.is_valid d e);
  Alcotest.(check bool) "latest valid" true (HD.Layering.is_valid d l);
  Alcotest.(check bool) "not rigid" false (HD.Layering.is_rigid d);
  (* Node 4 is flexible between layers 1 and 2: two layerings. *)
  Alcotest.(check int) "count layerings" 2 (HD.Layering.count_layerings d)

let test_groups () =
  let d = diamond () in
  let g = HD.Layering.earliest_groups d in
  Alcotest.(check int) "three layers" 3 (Array.length g);
  Alcotest.(check (array int)) "layer 0" [| 0 |] g.(0);
  Alcotest.(check (array int)) "layer 1" [| 1; 2 |] g.(1);
  Alcotest.(check (array int)) "layer 2" [| 3 |] g.(2)

let test_invalid_layering () =
  let d = diamond () in
  Alcotest.(check bool) "edge within a layer" false
    (HD.Layering.is_valid d [| 0; 1; 1; 1 |]);
  Alcotest.(check bool) "layer out of range" false
    (HD.Layering.is_valid d [| 0; 1; 1; 5 |])

let test_iter_layerings_all_valid () =
  (* Path 0-1-2 fixes three layers; the chain 3-4 floats. *)
  let d = D.of_edges ~n:5 [ (0, 1); (1, 2); (0, 3); (3, 4) ] in
  let count = ref 0 in
  HD.Layering.iter_layerings d (fun layer ->
      incr count;
      Alcotest.(check bool) "enumerated layering valid" true
        (HD.Layering.is_valid d layer));
  Alcotest.(check bool) "several layerings" true (!count >= 1)

let suite =
  [
    Alcotest.test_case "dag basics" `Quick test_dag_basics;
    Alcotest.test_case "dag validation" `Quick test_dag_validation;
    Alcotest.test_case "topological order" `Quick test_topological_order;
    Alcotest.test_case "serial concatenation" `Quick test_concat_serial;
    Alcotest.test_case "reverse" `Quick test_reverse;
    Alcotest.test_case "of_dag diamond" `Quick test_of_dag_diamond;
    Alcotest.test_case "of_dag degree bound" `Quick test_of_dag_indegree_bound;
    Alcotest.test_case "triangle is not a hyperDAG" `Quick
      test_triangle_not_hyperdag;
    Alcotest.test_case "too many edges" `Quick test_too_many_edges_not_hyperdag;
    Alcotest.test_case "recognize two edges" `Quick test_recognize_two_edges;
    Alcotest.test_case "densest hyperDAG recognized" `Quick
      test_densest_hyperdag_recognized;
    Alcotest.test_case "roundtrip dag <-> hyperDAG" `Quick
      test_roundtrip_dag_hyperdag;
    Alcotest.test_case "DAG IO malformed input" `Quick test_dag_io_malformed;
    Alcotest.test_case "DAG IO roundtrip" `Quick test_dag_io_roundtrip;
    Alcotest.test_case "generator assignment validation" `Quick
      test_generator_assignment_validation;
    QCheck_alcotest.to_alcotest qcheck_hyperdag_degree_sequence;
    Alcotest.test_case "earliest/latest layering" `Quick test_earliest_latest;
    Alcotest.test_case "layer groups" `Quick test_groups;
    Alcotest.test_case "invalid layerings" `Quick test_invalid_layering;
    Alcotest.test_case "iter_layerings valid" `Quick
      test_iter_layerings_all_valid;
  ]
