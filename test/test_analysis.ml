(* The invariant auditors (lib/analysis): clean solver and reduction
   outputs must audit clean, injected corruptions must be flagged under
   exactly the rule class that was violated, and the ANALYSIS_DEBUG gate
   must raise at the offending solver entry point. *)

module A = Analysis
module H = Hypergraph
module P = Partition

let check_ok name r =
  if not (A.Check.ok r) then
    Alcotest.failf "%s: unexpected violations\n%s" name (A.Check.to_string r)

let check_flags name r rule =
  if not (A.Check.has_violation r rule) then
    Alcotest.failf "%s: expected a %s violation, got\n%s" name rule
      (A.Check.to_string r)

let check_flags_only name r rule =
  check_flags name r rule;
  match A.Check.violated_rules r with
  | [ only ] when only = rule -> ()
  | rules ->
      Alcotest.failf "%s: expected only %s, violated %s" name rule
        (String.concat ", " rules)

let with_gate f =
  A.Debug.force true;
  Fun.protect ~finally:(fun () -> A.Debug.force false) f

let random_hg rng =
  let n = 8 + Support.Rng.int rng 24 in
  Workloads.Rand_hg.uniform rng ~n ~m:(3 * n / 2) ~min_size:2 ~max_size:5

(* Every heuristic solver entry point, run under the forced gate: a buggy
   result raises Audit_failure at its source. *)
let test_solver_gates () =
  with_gate (fun () ->
      for seed = 1 to 8 do
        let rng = Support.Rng.create seed in
        let hg = random_hg rng in
        let k = 2 + Support.Rng.int rng 3 in
        let part = Solvers.Multilevel.partition rng hg ~k in
        ignore (Solvers.Multilevel.partition_with_cost rng hg ~k);
        ignore (Solvers.Multilevel.vcycle rng hg part);
        ignore (Solvers.Multilevel.partition_best ~restarts:2 rng hg ~k);
        ignore
          (Solvers.Recursive_bisection.partition
             ~bisector:(Solvers.Recursive_bisection.multilevel_bisector rng)
             hg ~k);
        let p = Solvers.Initial.random_balanced ~eps:0.1 rng hg ~k in
        ignore (Solvers.Refine.refine hg p);
        ignore (Solvers.Kl_swap.refine hg p);
        ignore (Solvers.Initial.bfs_growth ~eps:0.1 rng hg ~k);
        ignore (Solvers.Initial.round_robin hg ~k);
        let inst =
          Solvers.Constrained.of_layers ~eps:0.5 ~k
            [| Array.init (H.num_nodes hg / 2) Fun.id |]
            ~n:(H.num_nodes hg)
        in
        ignore (Solvers.Constrained.solve rng inst hg ~k)
      done)

(* The exact solvers under the forced gate, plus a direct full-option
   audit of their claimed optima. *)
let test_exact_gates () =
  with_gate (fun () ->
      for seed = 1 to 6 do
        let rng = Support.Rng.create (100 + seed) in
        let hg =
          Workloads.Rand_hg.uniform rng ~n:7 ~m:6 ~min_size:2 ~max_size:4
        in
        let eps = 0.4 in
        (match Solvers.Exact.solve ~eps hg ~k:2 with
        | Some { Solvers.Exact.cost; part } ->
            check_ok "exact"
              (A.Audit_partition.audit ~eps
                 ~claimed:{ A.Audit_partition.metric = P.Connectivity; cost }
                 hg part)
        | None -> ());
        (match Solvers.Exact.brute_force ~eps hg ~k:2 with
        | Some { Solvers.Exact.cost; part } ->
            check_ok "brute-force"
              (A.Audit_partition.audit ~eps
                 ~claimed:{ A.Audit_partition.metric = P.Connectivity; cost }
                 hg part)
        | None -> ());
        match Solvers.Exact.optimum ~eps hg ~k:2 with
        | Some opt -> (
            match Solvers.Xp.decision ~eps hg ~k:2 ~cost_limit:opt with
            | Some witness ->
                check_ok "xp witness"
                  (A.Audit_partition.audit ~eps
                     ~bound:
                       { A.Audit_partition.metric = P.Connectivity; cost = opt }
                     hg witness)
            | None -> Alcotest.fail "XP missed the exact optimum")
        | None -> ()
      done)

let test_xp_multi_gate () =
  with_gate (fun () ->
      let rng = Support.Rng.create 11 in
      let hg = Workloads.Rand_hg.uniform rng ~n:6 ~m:4 ~min_size:2 ~max_size:3 in
      let constraints = P.Multi_constraint.single ~n:(H.num_nodes hg) in
      let eps = 0.4 in
      match
        Solvers.Xp.decision_multi ~eps hg ~k:2 ~constraints
          ~cost_limit:(H.total_edge_weight hg)
      with
      | Some witness ->
          check_ok "xp multi"
            (A.Audit_partition.audit ~variant:P.Strict ~constraints
               ~constraints_eps:eps hg witness)
      | None -> Alcotest.fail "XP multi found nothing at the trivial limit")

(* Every reduction builder's output audits clean on embedded solutions. *)
let test_reduction_audits () =
  let rng = Support.Rng.create 7 in
  let g = Npc.Graph.random rng ~n:5 ~p:0.6 in
  let p = min 2 (Npc.Graph.num_edges g) in
  if p >= 1 then begin
    let sel = Array.init p Fun.id in
    check_ok "spes"
      (A.Audit_reduction.audit_spes ~graph:g ~selection:sel
         (Reductions.Spes_to_partition.build ~eps:0.1 g ~p));
    check_ok "spes-delta2"
      (A.Audit_reduction.audit_spes_delta2 ~graph:g ~hyperdag:false
         ~selection:sel
         (Reductions.Spes_delta2.build ~eps:0.1 g ~p));
    check_ok "spes-delta2-hd"
      (A.Audit_reduction.audit_spes_delta2 ~graph:g ~hyperdag:true
         ~selection:sel
         (Reductions.Spes_delta2.build ~eps:0.1 ~hyperdag:true g ~p))
  end;
  let hg = Workloads.Rand_hg.uniform rng ~n:10 ~m:8 ~min_size:2 ~max_size:4 in
  let part = Solvers.Multilevel.partition rng hg ~k:2 in
  check_ok "eps-reduction"
    (A.Audit_reduction.audit_eps_reduction hg part
       (Reductions.Eps_reduction.build ~eps:0.3 ~k:2 hg));
  check_ok "mpu"
    (A.Audit_reduction.audit_mpu ~selection:[| 0; 1 |]
       (Reductions.Mpu_to_partition.build ~eps:0.1 hg ~p:2));
  let inst = Npc.Three_dm.random_yes rng ~q:2 ~extra:1 in
  check_ok "3dm"
    (A.Audit_reduction.audit_three_dm
       ~matching:(Npc.Three_dm.perfect_matching inst)
       (Reductions.Assignment_from_three_dm.build inst));
  let tp = Npc.Three_partition.random_yes rng ~t:2 ~b:12 in
  (match Npc.Three_partition.solve tp with
  | Some sol ->
      check_ok "sched-3partition"
        (A.Audit_reduction.audit_sched_three_partition ~solution:sol
           (Reductions.Sched_from_three_partition.build tp))
  | None -> Alcotest.fail "yes-instance of 3-partition has no solution");
  check_ok "hyperdag-np-hard"
    (A.Audit_reduction.audit_hyperdag_np_hard ~original:hg ~part
       (Reductions.Hyperdag_np_hard.build ~eps:0.3 hg ~k:2))

let test_structural_audits () =
  for seed = 1 to 6 do
    let rng = Support.Rng.create (200 + seed) in
    let hg = random_hg rng in
    check_ok "hypergraph" (A.Audit_hg.audit hg);
    let dag = Workloads.Dag_gen.random rng ~n:10 ~edge_probability:0.3 in
    let dhg, gen = Hyperdag.of_dag dag in
    check_ok "hyperdag yes" (A.Audit_hyperdag.audit ~generator:gen dhg);
    let sched = Scheduling.List_sched.schedule dag ~k:3 in
    check_ok "schedule"
      (A.Audit_schedule.audit ~k:3
         ~claimed_makespan:(Scheduling.Schedule.makespan sched)
         dag sched);
    let topo = Hierarchy.Topology.two_level ~b1:2 ~b2:2 ~g1:4.0 in
    let p4 = Solvers.Multilevel.partition rng hg ~k:4 in
    check_ok "hierarchy"
      (A.Audit_hierarchy.audit
         ~claimed_cost:(Hierarchy.Hier_cost.cost topo hg p4)
         topo hg p4)
  done;
  check_ok "hyperdag no"
    (A.Audit_hyperdag.audit (Reductions.Counterexamples.triangle ()))

(* Mutation tests: corrupt one aspect of a valid object and demand that
   the auditor flags exactly the injected violation class. *)

let unit_hg_with_cut () =
  (* 8 unit-weight nodes, one edge crossing the natural bisection. *)
  H.of_edges ~n:8 [| [| 0; 4 |]; [| 1; 2 |]; [| 5; 6 |] |]

let bisection () = P.of_predicate ~k:2 ~n:8 (fun v -> v / 4)

let test_mutation_balance () =
  let hg = unit_hg_with_cut () in
  let part = P.create ~k:2 [| 0; 0; 0; 0; 0; 0; 0; 1 |] in
  check_flags_only "balance" (A.Audit_partition.audit ~eps:0.0 hg part)
    "PART-BALANCE"

let test_mutation_cost () =
  let hg = unit_hg_with_cut () in
  let part = bisection () in
  let actual = P.connectivity_cost hg part in
  let r =
    A.Audit_partition.audit ~eps:0.0
      ~claimed:{ A.Audit_partition.metric = P.Connectivity; cost = actual + 1 }
      hg part
  in
  check_flags_only "cost" r "PART-COST"

let test_mutation_bound () =
  let hg = unit_hg_with_cut () in
  let part = bisection () in
  let actual = P.cutnet_cost hg part in
  Alcotest.(check bool) "the bisection cuts an edge" true (actual >= 1);
  let r =
    A.Audit_partition.audit
      ~bound:{ A.Audit_partition.metric = P.Cut_net; cost = actual - 1 }
      hg part
  in
  check_flags_only "bound" r "PART-COST-BOUND"

let test_mutation_shape () =
  let hg = unit_hg_with_cut () in
  let part = bisection () in
  (P.assignment part).(0) <- 2;
  (* Out of range for k = 2: the shape guard must stop everything else. *)
  let r = A.Audit_partition.audit ~eps:0.0 hg part in
  check_flags_only "shape" r "PART-SHAPE"

let test_mutation_layer () =
  let hg = unit_hg_with_cut () in
  let part = bisection () in
  (* Globally balanced, but layer {0..3} sits entirely in part 0. *)
  let r =
    A.Audit_partition.audit ~eps:0.0 ~layers:[| [| 0; 1; 2; 3 |] |] hg part
  in
  check_flags_only "layer" r "PART-LAYER"

let test_mutation_multi_constraint () =
  let hg = unit_hg_with_cut () in
  let part = bisection () in
  let mc = P.Multi_constraint.create [| [| 0; 1; 2; 3 |]; [| 4; 5 |] |] in
  let r =
    A.Audit_partition.audit ~constraints:mc ~constraints_eps:0.0 hg part
  in
  check_flags_only "multi-constraint" r "PART-MC-BALANCE"

let test_mutation_preserved_weights () =
  let hg = unit_hg_with_cut () in
  let part = bisection () in
  let before = P.part_weights hg part in
  before.(0) <- before.(0) + 1;
  before.(1) <- before.(1) - 1;
  let r = A.Audit_partition.audit ~preserved_weights:before hg part in
  check_flags_only "preserved-weights" r "PART-WEIGHTS-PRESERVED"

let test_mutation_generator () =
  let rng = Support.Rng.create 5 in
  let dag = Workloads.Dag_gen.random rng ~n:8 ~edge_probability:0.4 in
  let dhg, gen = Hyperdag.of_dag dag in
  Alcotest.(check bool) "at least two hyperedges" true (Array.length gen >= 2);
  gen.(0) <- gen.(1);
  (* Duplicate generator: no longer injective. *)
  let r = A.Audit_hyperdag.audit ~generator:gen dhg in
  check_flags "generator" r "HD-GEN-SHAPE"

let test_mutation_schedule () =
  let dag = Workloads.Dag_gen.chain 3 in
  let good =
    Scheduling.Schedule.create ~proc:[| 0; 0; 0 |] ~time:[| 1; 2; 3 |]
  in
  check_ok "chain schedule" (A.Audit_schedule.audit ~k:1 dag good);
  let bad =
    Scheduling.Schedule.create ~proc:[| 0; 0; 0 |] ~time:[| 2; 1; 3 |]
  in
  check_flags "precedence"
    (A.Audit_schedule.audit ~k:1 dag bad)
    "SCHED-PREC"

let test_mutation_hierarchy () =
  let rng = Support.Rng.create 9 in
  let hg = random_hg rng in
  let topo = Hierarchy.Topology.two_level ~b1:2 ~b2:2 ~g1:4.0 in
  let p4 = Solvers.Multilevel.partition rng hg ~k:4 in
  let claimed = A.Audit_hierarchy.recompute_cost topo hg p4 +. 5.0 in
  check_flags "hierarchical cost"
    (A.Audit_hierarchy.audit ~claimed_cost:claimed topo hg p4)
    "HIER-COST"

(* The gate itself: a corrupted result raises Audit_failure inside the
   solver wrapper, and is silent when the gate is off. *)
let test_gate_raises () =
  let hg = unit_hg_with_cut () in
  let bad = P.create ~k:2 [| 0; 0; 0; 0; 0; 0; 0; 0 |] in
  with_gate (fun () ->
      match Solvers.Audit_gate.checked ~eps:0.0 hg bad with
      | exception A.Debug.Audit_failure msg ->
          Alcotest.(check bool)
            "failure names the rule" true
            (let rec contains i =
               i + 12 <= String.length msg
               && (String.sub msg i 12 = "PART-BALANCE" || contains (i + 1))
             in
             contains 0)
      | _ -> Alcotest.fail "gate did not raise on an imbalanced partition");
  A.Debug.force false;
  (* Gate off: the same call is a no-op. *)
  ignore (Solvers.Audit_gate.checked ~eps:0.0 hg bad)

let test_catalogue () =
  let ids = List.map fst A.catalogue in
  Alcotest.(check bool)
    "catalogue covers every audit family" true
    (List.for_all
       (fun prefix ->
         List.exists
           (fun id ->
             String.length id >= String.length prefix
             && String.sub id 0 (String.length prefix) = prefix)
           ids)
       [ "HG-"; "PART-"; "HD-"; "SCHED-"; "RED-"; "HIER-" ]);
  Alcotest.(check bool)
    "rule ids are unique" true
    (List.length ids = List.length (List.sort_uniq String.compare ids))

let suite =
  [
    Alcotest.test_case "solver gates on random instances" `Quick
      test_solver_gates;
    Alcotest.test_case "exact and XP gates" `Quick test_exact_gates;
    Alcotest.test_case "XP multi-constraint gate" `Quick test_xp_multi_gate;
    Alcotest.test_case "reduction audits" `Quick test_reduction_audits;
    Alcotest.test_case "structural audits" `Quick test_structural_audits;
    Alcotest.test_case "mutation: balance" `Quick test_mutation_balance;
    Alcotest.test_case "mutation: cost claim" `Quick test_mutation_cost;
    Alcotest.test_case "mutation: cost bound" `Quick test_mutation_bound;
    Alcotest.test_case "mutation: shape" `Quick test_mutation_shape;
    Alcotest.test_case "mutation: layer" `Quick test_mutation_layer;
    Alcotest.test_case "mutation: multi-constraint" `Quick
      test_mutation_multi_constraint;
    Alcotest.test_case "mutation: preserved weights" `Quick
      test_mutation_preserved_weights;
    Alcotest.test_case "mutation: generator" `Quick test_mutation_generator;
    Alcotest.test_case "mutation: schedule precedence" `Quick
      test_mutation_schedule;
    Alcotest.test_case "mutation: hierarchical cost" `Quick
      test_mutation_hierarchy;
    Alcotest.test_case "debug gate raises" `Quick test_gate_raises;
    Alcotest.test_case "rule catalogue" `Quick test_catalogue;
  ]
