(* Aggregated alcotest runner for every library in the repository. *)

let () =
  Alcotest.run "hypartition"
    [
      ("support", Test_support.suite);
      ("obs", Test_obs.suite);
      ("hypergraph", Test_hypergraph.suite);
      ("partition", Test_partition.suite);
      ("hyperdag", Test_hyperdag.suite);
      ("solvers", Test_solvers.suite);
      ("scheduling", Test_scheduling.suite);
      ("matching", Test_matching.suite);
      ("npc", Test_npc.suite);
      ("hierarchy", Test_hierarchy.suite);
      ("reductions", Test_reductions.suite);
      ("workloads", Test_workloads.suite);
      ("extensions", Test_extensions.suite);
      ("properties", Test_properties.suite);
      ("corpus", Test_corpus.suite);
      ("experiments", Test_experiments.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("coverage", Test_coverage.suite);
      ("analysis", Test_analysis.suite);
      ("lint", Test_lint.suite);
      ("analyze", Test_analyze.suite);
      ("engine", Test_engine.suite);
      ("server", Test_server.suite);
      (* Last on purpose: the parallel suite spawns domains, and the
         runtime refuses Unix.fork in a process that ever created one —
         so every fork-based suite (engine, server) must run first. *)
      ("parallel", Test_parallel.suite);
    ]
