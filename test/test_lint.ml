(* hyplint (lib/lint): every rule must fire on a fixture source at the
   exact line, stay quiet on the compliant variant, and fall silent under
   an inline marker or a lint.config allowlist entry — with the
   suppression hygiene (reasons required, stale markers flagged) itself
   under test.  Fixtures are in-memory (path, source) pairs driven
   through the filesystem-free [Lint.Engine.lint_sources]. *)

module L = Lint
module C = Analysis_core.Check

(* Built by concatenation so the repo linter's line-based marker scan
   never sees a complete marker inside this test's own source. *)
let marker rest = "(* hyp" ^ "lint: " ^ rest ^ " *)"

let em_dash = "\xe2\x80\x94"

(* A lib/ fixture needs a sibling .mli or SRC07 joins the findings. *)
let sealed path source = [ (path, source); (path ^ "i", "") ]

let lint ?config ?config_errors files =
  L.Engine.lint_sources ?config ?config_errors ~root:"." files

let find_all ~rule r =
  List.filter
    (fun (f : L.Rules.finding) -> String.equal f.rule rule)
    r.L.Engine.findings

let fires ~rule ~file ~line r =
  List.exists
    (fun (f : L.Rules.finding) ->
      String.equal f.rule rule && String.equal f.file file && f.line = line)
    r.L.Engine.findings

let check_fires name ~rule ~file ~line r =
  if not (fires ~rule ~file ~line r) then
    Alcotest.failf "%s: expected %s at %s:%d, report was\n%s" name rule file
      line
      (C.to_string (L.Engine.report r))

let check_silent name ~rule r =
  match find_all ~rule r with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%s: unexpected %s at %s:%d" name rule f.L.Rules.file
        f.L.Rules.line

(* ---- catalogue ---------------------------------------------------------- *)

let test_catalogue () =
  let ids = List.map fst L.catalogue in
  Alcotest.(check (list string))
    "stable rule ids"
    [
      "SRC00"; "SRC01"; "SRC02"; "SRC03"; "SRC04"; "SRC05"; "SRC06"; "SRC07";
      "SRC08"; "SRC09"; "SRC10"; "SRC11"; "SRC12";
    ]
    ids;
  List.iter
    (fun (_, what) -> Alcotest.(check bool) "documented" true (what <> ""))
    L.catalogue;
  (* the rendered catalogue carries the introducing PR per rule *)
  let rendered = L.Rules.render_catalogue L.catalogue in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  Alcotest.(check string) "SRC01 since" "PR3" (L.Rules.since "SRC01");
  Alcotest.(check string) "SRC08 since" "PR4" (L.Rules.since "SRC08");
  Alcotest.(check string) "SRC09 since" "PR5" (L.Rules.since "SRC09");
  Alcotest.(check string) "SRC10 since" "PR7" (L.Rules.since "SRC10");
  Alcotest.(check string) "SRC11 since" "PR8" (L.Rules.since "SRC11");
  List.iter
    (fun (id, _) ->
      Alcotest.(check bool)
        (id ^ " rendered with since") true
        (contains rendered (Printf.sprintf "%-8s %-6s" id (L.Rules.since id))))
    L.catalogue

(* ---- SRC01: polymorphic compare ----------------------------------------- *)

let test_src01 () =
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let xs = [ 3; 1 ]\nlet sorted = List.sort compare xs\n")
  in
  check_fires "compare" ~rule:"SRC01" ~file:"lib/a/fix.ml" ~line:2 r;
  let r = lint (sealed "lib/a/fix.ml" "let h x = Hashtbl.hash x\n") in
  check_fires "hash" ~rule:"SRC01" ~file:"lib/a/fix.ml" ~line:1 r;
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let xs = [ 3; 1 ]\nlet sorted = List.sort Int.compare xs\n")
  in
  check_silent "Int.compare is fine" ~rule:"SRC01" r

(* ---- SRC02: append/nth inside iteration --------------------------------- *)

let test_src02 () =
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let cat a b = a @ b\nlet f xs = List.map (fun x -> [ x ] @ xs) xs\n")
  in
  check_fires "append in callback" ~rule:"SRC02" ~file:"lib/a/fix.ml" ~line:2 r;
  Alcotest.(check int) "top-level append is fine" 1
    (List.length (find_all ~rule:"SRC02" r));
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let f xs =\n\
          \  for i = 0 to 3 do ignore (List.nth xs i) done;\n\
          \  List.nth xs 0\n")
  in
  check_fires "nth in for loop" ~rule:"SRC02" ~file:"lib/a/fix.ml" ~line:2 r;
  Alcotest.(check int) "nth outside the loop is fine" 1
    (List.length (find_all ~rule:"SRC02" r))

(* ---- SRC03: printing from library code ---------------------------------- *)

let test_src03 () =
  let source = "let shout () = print_endline \"loud\"\n" in
  let r = lint (sealed "lib/a/fix.ml" source) in
  check_fires "print in lib/" ~rule:"SRC03" ~file:"lib/a/fix.ml" ~line:1 r;
  let r = lint [ ("test/fix.ml", source) ] in
  check_silent "printing from tests is fine" ~rule:"SRC03" r

(* ---- SRC04: the removed time_it ----------------------------------------- *)

let test_src04 () =
  let r =
    lint (sealed "lib/a/fix.ml" "let time g = Support.Util.time_it g\n")
  in
  check_fires "time_it" ~rule:"SRC04" ~file:"lib/a/fix.ml" ~line:1 r

(* ---- SRC05: raise-message prefixes -------------------------------------- *)

let test_src05 () =
  let r = lint (sealed "lib/a/fix.ml" "let f () = failwith \"boom\"\n") in
  check_fires "bare failwith" ~rule:"SRC05" ~file:"lib/a/fix.ml" ~line:1 r;
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let f x = invalid_arg (Printf.sprintf \"bad %d\" x)\n")
  in
  check_fires "sprintf literal" ~rule:"SRC05" ~file:"lib/a/fix.ml" ~line:1 r;
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let f () = raise (Invalid_argument \"nope\")\n")
  in
  check_fires "raise Invalid_argument" ~rule:"SRC05" ~file:"lib/a/fix.ml"
    ~line:1 r;
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let f () = failwith \"Fix.f: boom\"\n\
          let g x = invalid_arg (Printf.sprintf \"Fix.g: bad %d\" x)\n")
  in
  check_silent "prefixed messages are fine" ~rule:"SRC05" r

(* ---- SRC06: Obj.magic --------------------------------------------------- *)

let test_src06 () =
  let r = lint (sealed "lib/a/fix.ml" "let coerce x = Obj.magic x\n") in
  check_fires "Obj.magic" ~rule:"SRC06" ~file:"lib/a/fix.ml" ~line:1 r

(* ---- SRC07: missing interfaces ------------------------------------------ *)

let test_src07 () =
  let source = "let answer = 42\n" in
  let r = lint [ ("lib/a/fix.ml", source) ] in
  check_fires "unsealed library module" ~rule:"SRC07" ~file:"lib/a/fix.ml"
    ~line:1 r;
  let r = lint (sealed "lib/a/fix.ml" source) in
  check_silent "sealed module is fine" ~rule:"SRC07" r;
  let r = lint [ ("lib/a/root.ml", "module Fix = A.Fix\ninclude A.Fix\n") ] in
  check_silent "pure re-export root is exempt" ~rule:"SRC07" r;
  let r = lint [ ("bench/fix.ml", source) ] in
  check_silent "non-library code is exempt" ~rule:"SRC07" r

(* ---- SRC08: process management outside lib/engine ----------------------- *)

let test_src08 () =
  let source =
    "let f () =\n\
     \  match Unix.fork () with\n\
     \  | 0 -> exit 0\n\
     \  | pid ->\n\
     \      Unix.kill pid Sys.sigkill;\n\
     \      ignore (Unix.waitpid [] pid)\n"
  in
  let r = lint (sealed "lib/a/fix.ml" source) in
  check_fires "fork in a library" ~rule:"SRC08" ~file:"lib/a/fix.ml" ~line:2 r;
  check_fires "kill in a library" ~rule:"SRC08" ~file:"lib/a/fix.ml" ~line:5 r;
  check_fires "waitpid in a library" ~rule:"SRC08" ~file:"lib/a/fix.ml" ~line:6
    r;
  let r = lint [ ("bin/fix.ml", source) ] in
  check_fires "executables are covered too" ~rule:"SRC08" ~file:"bin/fix.ml"
    ~line:2 r;
  let r = lint (sealed "lib/engine/fix.ml" source) in
  check_silent "lib/engine owns process management" ~rule:"SRC08" r;
  let r =
    lint (sealed "lib/a/fix.ml" "let pid () = Unix.getpid ()\n")
  in
  check_silent "other Unix calls are fine" ~rule:"SRC08" r

(* ---- SRC09: polymorphic Hashtbl in hot-path modules --------------------- *)

let test_src09 () =
  let source =
    "let dedup keys =\n\
     \  let seen = Hashtbl.create 16 in\n\
     \  List.filter\n\
     \    (fun k ->\n\
     \      if Hashtbl.mem seen k then false\n\
     \      else begin\n\
     \        Hashtbl.add seen k ();\n\
     \        true\n\
     \      end)\n\
     \    keys\n"
  in
  let r = lint (sealed "lib/solvers/fix.ml" source) in
  check_fires "create in lib/solvers" ~rule:"SRC09" ~file:"lib/solvers/fix.ml"
    ~line:2 r;
  check_fires "mem in lib/solvers" ~rule:"SRC09" ~file:"lib/solvers/fix.ml"
    ~line:5 r;
  check_fires "add in lib/solvers" ~rule:"SRC09" ~file:"lib/solvers/fix.ml"
    ~line:7 r;
  let r = lint (sealed "lib/hypergraph/fix.ml" source) in
  check_fires "lib/hypergraph is hot path too" ~rule:"SRC09"
    ~file:"lib/hypergraph/fix.ml" ~line:2 r;
  (* Cold-path code may keep its polymorphic tables. *)
  let r = lint (sealed "lib/workloads/fix.ml" source) in
  check_silent "other libraries are exempt" ~rule:"SRC09" r;
  let r = lint [ ("bench/fix.ml", source) ] in
  check_silent "bench code is exempt" ~rule:"SRC09" r;
  (* Hashtbl.hash is SRC01's finding, not a duplicate SRC09. *)
  let r =
    lint (sealed "lib/solvers/fix.ml" "let h x = Hashtbl.hash x\n")
  in
  check_silent "Hashtbl.hash stays SRC01-only" ~rule:"SRC09" r;
  check_fires "Hashtbl.hash still fires SRC01" ~rule:"SRC01"
    ~file:"lib/solvers/fix.ml" ~line:1 r;
  (* A suppression with a written reason still works in the hot path. *)
  let src =
    marker ("allow SRC09 " ^ em_dash ^ " cold init path, not per-move")
    ^ "\nlet tbl () = Hashtbl.create 16\n"
  in
  let r = lint (sealed "lib/solvers/fix.ml" src) in
  check_silent "suppression with reason" ~rule:"SRC09" r

(* ---- SRC10: Gc use outside lib/obs -------------------------------------- *)

let test_src10 () =
  let source =
    "let words () = Gc.minor_words ()\n\
     let stat () = Gc.quick_stat ()\n"
  in
  let r = lint (sealed "lib/a/fix.ml" source) in
  check_fires "Gc in a library" ~rule:"SRC10" ~file:"lib/a/fix.ml" ~line:1 r;
  check_fires "Gc.quick_stat too" ~rule:"SRC10" ~file:"lib/a/fix.ml" ~line:2 r;
  let r = lint [ ("bin/fix.ml", source) ] in
  check_fires "executables are covered too" ~rule:"SRC10" ~file:"bin/fix.ml"
    ~line:1 r;
  let r = lint [ ("test/fix.ml", source) ] in
  check_fires "tests are covered too" ~rule:"SRC10" ~file:"test/fix.ml"
    ~line:1 r;
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let full () = Stdlib.Gc.full_major ()\n")
  in
  check_fires "Stdlib.Gc alias is covered" ~rule:"SRC10" ~file:"lib/a/fix.ml"
    ~line:1 r;
  let r = lint (sealed "lib/obs/fix.ml" source) in
  check_silent "lib/obs owns heap telemetry" ~rule:"SRC10" r;
  (* A suppression with a written reason still works elsewhere. *)
  let src =
    marker ("allow SRC10 " ^ em_dash ^ " one-shot heap probe in a fixture")
    ^ "\nlet words () = Gc.minor_words ()\n"
  in
  let r = lint (sealed "lib/a/fix.ml" src) in
  check_silent "suppression with reason" ~rule:"SRC10" r

(* ---- SRC11: multicore primitives outside designated modules ------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all
let src_fixture name = read_file (Filename.concat "fixtures/src" name)

let test_src11 () =
  let source = src_fixture "src11_domain_atomic.ml" in
  let r = lint (sealed "lib/a/fix.ml" source) in
  check_fires "Atomic.make" ~rule:"SRC11" ~file:"lib/a/fix.ml" ~line:6 r;
  check_fires "Domain.spawn" ~rule:"SRC11" ~file:"lib/a/fix.ml" ~line:9 r;
  check_fires "Atomic.set" ~rule:"SRC11" ~file:"lib/a/fix.ml" ~line:10 r;
  (* Domain.join on line 11 is not fenced — exactly the three above *)
  Alcotest.(check int) "three findings" 3 (List.length (find_all ~rule:"SRC11" r));
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let go f r = Stdlib.Domain.create f (Stdlib.Atomic.get r)\n")
  in
  check_fires "Stdlib-qualified forms" ~rule:"SRC11" ~file:"lib/a/fix.ml"
    ~line:1 r;
  Alcotest.(check int) "both qualified calls" 2
    (List.length (find_all ~rule:"SRC11" r));
  (* reading the current domain is not creating parallelism *)
  let r = lint (sealed "lib/a/fix.ml" "let me () = Domain.self ()\n") in
  check_silent "Domain.self is fine" ~rule:"SRC11" r;
  (* the designated module comes from lint.config, like the repo's own
     entry for the atomic debug counters *)
  let config, errs =
    L.Suppress.parse_config
      ("allow SRC11 lib/conc " ^ em_dash ^ " the designated concurrency module\n")
  in
  Alcotest.(check int) "config parses" 0 (List.length errs);
  let r = lint ~config (sealed "lib/conc/pool.ml" source) in
  check_silent "designated module" ~rule:"SRC11" r;
  Alcotest.(check int) "suppressions recorded" 3
    (List.length r.L.Engine.suppressed)

(* ---- SRC12: socket plumbing outside designated networking modules ------- *)

let test_src12 () =
  let source = src_fixture "src12_sockets.ml" in
  let r = lint (sealed "lib/a/fix.ml" source) in
  check_fires "Unix.socket" ~rule:"SRC12" ~file:"lib/a/fix.ml" ~line:8 r;
  check_fires "Unix.bind" ~rule:"SRC12" ~file:"lib/a/fix.ml" ~line:9 r;
  check_fires "Unix.listen" ~rule:"SRC12" ~file:"lib/a/fix.ml" ~line:10 r;
  check_fires "Unix.accept" ~rule:"SRC12" ~file:"lib/a/fix.ml" ~line:11 r;
  (* [dial]'s Unix.socket on line 14 also fires; its Unix.connect does
     not — consuming an endpoint is not fenced, owning one is. *)
  Alcotest.(check int) "five findings" 5
    (List.length (find_all ~rule:"SRC12" r));
  let r =
    lint
      (sealed "lib/a/fix.ml"
         "let go fd = Stdlib.Unix.listen fd 4\nlet l = UnixLabels.accept\n")
  in
  check_fires "Stdlib/Labels-qualified forms" ~rule:"SRC12"
    ~file:"lib/a/fix.ml" ~line:1 r;
  Alcotest.(check int) "both qualified calls" 2
    (List.length (find_all ~rule:"SRC12" r));
  (* the designated module comes from lint.config, like the repo's own
     entry for lib/server *)
  let config, errs =
    L.Suppress.parse_config
      ("allow SRC12 lib/server " ^ em_dash ^ " the designated networking module\n")
  in
  Alcotest.(check int) "config parses" 0 (List.length errs);
  let r = lint ~config (sealed "lib/server/fix.ml" source) in
  check_silent "designated module" ~rule:"SRC12" r;
  Alcotest.(check int) "suppressions recorded" 5
    (List.length r.L.Engine.suppressed)

(* ---- SRC00: parse errors ------------------------------------------------ *)

let test_parse_error () =
  let r = lint [ ("lib/a/fix.ml", "let f = (\n") ] in
  (match find_all ~rule:"SRC00" r with
  | [ f ] -> Alcotest.(check string) "pinned to the file" "lib/a/fix.ml" f.file
  | fs -> Alcotest.failf "expected one SRC00, got %d" (List.length fs));
  check_silent "no SRC07 piggybacks on a parse error" ~rule:"SRC07" r

(* ---- inline suppression ------------------------------------------------- *)

let test_inline_suppression () =
  let src =
    "let xs = [ 3; 1 ]\n"
    ^ marker ("allow SRC01 " ^ em_dash ^ " fixture keeps the slow sort")
    ^ "\nlet sorted = List.sort compare xs\n"
  in
  let r = lint (sealed "lib/a/fix.ml" src) in
  check_silent "marker silences the next line" ~rule:"SRC01" r;
  check_silent "a used marker is not stale" ~rule:"SRC00" r;
  (match r.L.Engine.suppressed with
  | [ (f, reason) ] ->
      Alcotest.(check string) "suppressed rule" "SRC01" f.L.Rules.rule;
      Alcotest.(check string)
        "reason recorded" "fixture keeps the slow sort" reason
  | l -> Alcotest.failf "expected one suppressed finding, got %d"
           (List.length l));
  (* The marker reaches exactly one line: a finding two lines below
     stays live. *)
  let src =
    "let xs = [ 3; 1 ]\n"
    ^ marker ("allow SRC01 " ^ em_dash ^ " too far away")
    ^ "\nlet ok = 0\nlet sorted = List.sort compare xs\n"
  in
  let r = lint (sealed "lib/a/fix.ml" src) in
  check_fires "marker does not reach line + 2" ~rule:"SRC01"
    ~file:"lib/a/fix.ml" ~line:4 r

let test_marker_hygiene () =
  (* No reason: the marker suppresses nothing and is itself an error. *)
  let src =
    marker "allow SRC01" ^ "\nlet sorted = List.sort compare [ 3; 1 ]\n"
  in
  let r = lint (sealed "lib/a/fix.ml" src) in
  check_fires "reason-less marker does not suppress" ~rule:"SRC01"
    ~file:"lib/a/fix.ml" ~line:2 r;
  check_fires "reason-less marker is an error" ~rule:"SRC00"
    ~file:"lib/a/fix.ml" ~line:1 r;
  (* A marker that matches nothing is a warning. *)
  let src =
    marker ("allow SRC06 " ^ em_dash ^ " nothing here uses it")
    ^ "\nlet answer = 42\n"
  in
  let r = lint (sealed "lib/a/fix.ml" src) in
  (match find_all ~rule:"SRC00" r with
  | [ f ] ->
      Alcotest.(check int) "at the marker line" 1 f.L.Rules.line;
      Alcotest.(check bool) "stale marker is a warning" true
        (f.L.Rules.severity = C.Warning)
  | fs -> Alcotest.failf "expected one SRC00, got %d" (List.length fs))

(* ---- lint.config allowlist ---------------------------------------------- *)

let test_config_allowlist () =
  let config, errors =
    L.Suppress.parse_config
      ("allow SRC03 lib/tables " ^ em_dash ^ " designated table printers\n")
  in
  Alcotest.(check int) "config parses" 0 (List.length errors);
  let source = "let shout () = print_endline \"loud\"\n" in
  let r =
    lint ~config
      (sealed "lib/tables/fix.ml" source @ sealed "lib/other/fix.ml" source)
  in
  Alcotest.(check bool) "allowlisted directory is silent" false
    (fires ~rule:"SRC03" ~file:"lib/tables/fix.ml" ~line:1 r);
  check_fires "other directories still fire" ~rule:"SRC03"
    ~file:"lib/other/fix.ml" ~line:1 r;
  Alcotest.(check int) "exactly one suppression" 1
    (List.length r.L.Engine.suppressed)

let test_config_errors () =
  let config, errors = L.Suppress.parse_config "allow SRC03 lib/x\n" in
  Alcotest.(check int) "entry without reason rejected" 0 (List.length config);
  Alcotest.(check int) "error surfaced" 1 (List.length errors);
  let r =
    lint ~config ~config_errors:errors (sealed "lib/a/fix.ml" "let x = 1\n")
  in
  check_fires "config errors become SRC00" ~rule:"SRC00" ~file:"lint.config"
    ~line:1 r

(* ---- the gate ----------------------------------------------------------- *)

let test_gate () =
  let dirty = lint [ ("lib/a/fix.ml", "let f () = failwith \"boom\"\n") ] in
  Alcotest.(check bool) "findings gate the exit code" true
    (C.exit_code (L.Engine.report dirty) <> 0);
  let clean = lint (sealed "lib/a/fix.ml" "let answer = 42\n") in
  Alcotest.(check int) "clean tree exits 0" 0
    (C.exit_code (L.Engine.report clean));
  (* The JSON report is parseable and carries the versioned schema. *)
  match Obs.Json.parse (Obs.Json.to_string (L.Engine.to_json dirty)) with
  | Error e -> Alcotest.failf "lint JSON does not reparse: %s" e
  | Ok (Obs.Json.Obj fields) ->
      (match List.assoc_opt "schema" fields with
      | Some (Obs.Json.Str s) ->
          Alcotest.(check string) "schema tag" L.Engine.schema_version s
      | _ -> Alcotest.fail "missing schema tag")
  | Ok _ -> Alcotest.fail "lint JSON is not an object"

let suite =
  [
    Alcotest.test_case "rule catalogue" `Quick test_catalogue;
    Alcotest.test_case "SRC01 polymorphic compare" `Quick test_src01;
    Alcotest.test_case "SRC02 append/nth in iteration" `Quick test_src02;
    Alcotest.test_case "SRC03 library printing" `Quick test_src03;
    Alcotest.test_case "SRC04 removed time_it" `Quick test_src04;
    Alcotest.test_case "SRC05 raise-message prefix" `Quick test_src05;
    Alcotest.test_case "SRC06 Obj.magic" `Quick test_src06;
    Alcotest.test_case "SRC07 missing interface" `Quick test_src07;
    Alcotest.test_case "SRC08 process management" `Quick test_src08;
    Alcotest.test_case "SRC09 hot-path Hashtbl" `Quick test_src09;
    Alcotest.test_case "SRC10 Gc outside lib/obs" `Quick test_src10;
    Alcotest.test_case "SRC11 multicore primitives fenced" `Quick test_src11;
    Alcotest.test_case "SRC12 socket plumbing fenced" `Quick test_src12;
    Alcotest.test_case "SRC00 parse error" `Quick test_parse_error;
    Alcotest.test_case "inline suppression" `Quick test_inline_suppression;
    Alcotest.test_case "marker hygiene" `Quick test_marker_hygiene;
    Alcotest.test_case "config allowlist" `Quick test_config_allowlist;
    Alcotest.test_case "config errors" `Quick test_config_errors;
    Alcotest.test_case "gate and JSON schema" `Quick test_gate;
  ]
