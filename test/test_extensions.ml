(* Tests for the extension modules: KL swap refinement, the multi-constraint
   XP algorithm (Lemma 6.2), the Lemma D.1 and Appendix C.5 reductions, and
   DAG I/O. *)

module H = Hypergraph
module P = Partition
module R = Reductions

(* KL swap refinement -------------------------------------------------------- *)

let test_kl_preserves_balance_exactly () =
  let rng = Support.Rng.create 8 in
  for _ = 1 to 10 do
    let hg = Workloads.Rand_hg.uniform rng ~n:20 ~m:25 ~min_size:2 ~max_size:4 in
    let part = Solvers.Initial.random_balanced ~eps:0.0 rng hg ~k:2 in
    let before_weights = P.part_weights hg part in
    let before_cost = P.connectivity_cost hg part in
    let after = Solvers.Kl_swap.refine hg part in
    Alcotest.(check (array int)) "weights unchanged" before_weights
      (P.part_weights hg part);
    Alcotest.(check bool) "never worse" true (after <= before_cost);
    Alcotest.(check int) "returned cost correct" (P.connectivity_cost hg part)
      after
  done

let test_kl_improves_obvious_instance () =
  (* Two blocks with an interleaved start: swaps must help where single
     moves cannot (eps = 0). *)
  let b = H.Builder.create () in
  let b1 = Hypergraph.Gadgets.block b ~size:6 in
  let b2 = Hypergraph.Gadgets.block b ~size:6 in
  ignore (H.Builder.add_edge b [| b1.(0); b2.(0) |]);
  let hg = H.Builder.build b in
  let colors = Array.init 12 (fun v -> v mod 2) in
  let part = P.create ~k:2 colors in
  let before = P.connectivity_cost hg part in
  let after = Solvers.Kl_swap.refine hg part in
  Alcotest.(check bool) "strictly improves" true (after < before);
  Alcotest.(check bool) "still perfectly balanced" true
    (P.is_balanced ~eps:0.0 hg part)

(* Multi-constraint XP (Lemma 6.2) ------------------------------------------- *)

let brute_force_mc_optimum hg ~k ~eps mc =
  let n = H.num_nodes hg in
  let best = ref None in
  Support.Util.iter_tuples ~base:k ~len:n (fun colors ->
      let part = P.create ~k (Array.copy colors) in
      if P.Multi_constraint.feasible ~eps mc part then begin
        let c = P.connectivity_cost hg part in
        match !best with Some b when b <= c -> () | _ -> best := Some c
      end);
  !best

let test_xp_multi_matches_brute_force () =
  let rng = Support.Rng.create 13 in
  for _ = 1 to 6 do
    let n = 6 in
    let hg = Workloads.Rand_hg.uniform rng ~n ~m:4 ~min_size:2 ~max_size:3 in
    let mc = P.Multi_constraint.create [| [| 0; 1 |]; [| 2; 3; 4; 5 |] |] in
    let reference = brute_force_mc_optimum hg ~k:2 ~eps:0.0 mc in
    let via_xp limit =
      Solvers.Xp.decision_multi ~eps:0.0 hg ~k:2 ~constraints:mc
        ~cost_limit:limit
    in
    match reference with
    | None ->
        Alcotest.(check bool) "XP agrees: infeasible" true (via_xp 3 = None)
    | Some opt when opt <= 3 -> (
        match via_xp opt with
        | None -> Alcotest.fail "XP missed the optimum"
        | Some part ->
            Alcotest.(check bool) "witness feasible" true
              (P.Multi_constraint.feasible ~eps:0.0 mc part);
            Alcotest.(check bool) "witness cost" true
              (P.connectivity_cost hg part <= opt);
            if opt > 0 then
              Alcotest.(check bool) "XP fails below optimum" true
                (via_xp (opt - 1) = None))
    | Some _ -> ()
  done

(* Lemma D.1: multi-constraint -> standard k-section --------------------------- *)

let test_mc_to_standard_roundtrip () =
  (* 4 nodes, two classes of 2 (block sizes stay exact-solver friendly:
     m1 = 5, m2 = 20, n' = 50). *)
  let hg = H.of_edges ~n:4 [| [| 0; 2 |]; [| 1; 3 |]; [| 0; 1 |] |] in
  let mc = P.Multi_constraint.create [| [| 0; 1 |]; [| 2; 3 |] |] in
  let red = R.Mc_to_standard.build hg mc ~k:2 in
  let transformed = R.Mc_to_standard.transformed red in
  let reference =
    match brute_force_mc_optimum hg ~k:2 ~eps:0.0 mc with
    | Some v -> v
    | None -> Alcotest.fail "MC instance feasible"
  in
  (* Solve the transformed k-section (bounded by the reference) and map
     back. *)
  (match
     Solvers.Exact.solve ~eps:0.0 ~upper_bound:reference transformed ~k:2
   with
  | None -> Alcotest.fail "transformed reaches the MC optimum (Lemma D.1)"
  | Some { Solvers.Exact.part = section; cost } ->
      Alcotest.(check int) "OPT agrees (Lemma D.1)" reference cost;
      let back = R.Mc_to_standard.restrict red section in
      Alcotest.(check bool) "restriction satisfies the constraints" true
        (P.Multi_constraint.feasible ~eps:0.0 mc back);
      Alcotest.(check int) "restriction preserves cost" cost
        (P.connectivity_cost hg back));
  (* ... and no transformed section beats the MC optimum. *)
  Alcotest.(check bool) "no cheaper section" false
    (Solvers.Exact.decision ~eps:0.0 transformed ~k:2
       ~cost_limit:(reference - 1));
  (* Forward mapping. *)
  let forward_src =
    let found = ref None in
    Support.Util.iter_tuples ~base:2 ~len:4 (fun colors ->
        if !found = None then begin
          let part = P.create ~k:2 (Array.copy colors) in
          if
            P.Multi_constraint.feasible ~eps:0.0 mc part
            && P.is_balanced ~eps:0.0 hg part
          then found := Some part
        end);
    match !found with Some p -> p | None -> Alcotest.fail "feasible exists"
  in
  let extended = R.Mc_to_standard.extend red forward_src in
  Alcotest.(check bool) "extension is a k-section" true
    (P.is_balanced ~eps:0.0 transformed extended);
  Alcotest.(check int) "extension preserves cost"
    (P.connectivity_cost hg forward_src)
    (P.connectivity_cost transformed extended)

let test_mc_to_standard_validation () =
  let hg = H.of_edges ~n:3 [| [| 0; 1 |] |] in
  let mc = P.Multi_constraint.create [| [| 0; 1; 2 |] |] in
  Alcotest.check_raises "class size must divide k"
    (Invalid_argument "Mc_to_standard.build: |V_i| must be divisible by k")
    (fun () -> ignore (R.Mc_to_standard.build hg mc ~k:2))

(* Appendix C.5: MpU reduction -------------------------------------------------- *)

let test_mpu_reduction () =
  (* MpU instance: 4 hyperedges over 5 nodes, p = 2. *)
  let inst =
    H.of_edges ~n:5 [| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3; 4 |]; [| 0; 4 |] |]
  in
  let red = R.Mpu_to_partition.build ~eps:0.0 inst ~p:2 in
  let h = R.Mpu_to_partition.hypergraph red in
  let opt =
    match Npc.Mpu.exact inst ~p:2 with Some s -> s | None -> assert false
  in
  (* Embed the optimal selection: cost = union size. *)
  let part = R.Mpu_to_partition.embed red opt.Npc.Mpu.edges in
  Alcotest.(check bool) "embedded balanced" true (P.is_balanced ~eps:0.0 h part);
  Alcotest.(check int) "embedded cost = union size" opt.Npc.Mpu.union_size
    (P.connectivity_cost h part);
  (* Extraction returns p edges whose union is at least the optimum. *)
  let chosen = R.Mpu_to_partition.extract red part in
  Alcotest.(check int) "p edges" 2 (Array.length chosen);
  Alcotest.(check bool) "union at least optimal" true
    (R.Mpu_to_partition.union_size red chosen >= opt.Npc.Mpu.union_size)

(* Appendix C.4: k >= 3 generalization --------------------------------------- *)

let test_spes_k3 () =
  let g = Npc.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let red = R.Spes_k3.build ~eps:0.0 g ~k:3 ~p:1 in
  let h = R.Spes_k3.hypergraph red in
  let part = R.Spes_k3.embed red [| 1 |] in
  Alcotest.(check bool) "embedded 3-way balanced" true
    (P.is_balanced ~eps:0.0 h part);
  Alcotest.(check int) "cost = covered vertices" 2
    (P.connectivity_cost h part);
  Alcotest.(check int) "three colors used" 3 (P.nonempty_parts h part);
  let chosen = R.Spes_k3.extract red part in
  Alcotest.(check int) "extracts p = 1 edge" 1 (Array.length chosen);
  Alcotest.(check int) "objective preserved" 2
    (R.Spes_k3.covered_vertices red chosen)

let test_spes_k3_optimum () =
  (* The 3-way optimum of the reduction instance matches OPT_SpES. *)
  let g = Npc.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let red = R.Spes_k3.build ~eps:0.0 g ~k:3 ~p:1 in
  let h = R.Spes_k3.hypergraph red in
  Alcotest.(check bool) "decision at OPT = 2" true
    (Solvers.Exact.decision ~eps:0.0 h ~k:3 ~cost_limit:2);
  Alcotest.(check bool) "no solution below OPT" false
    (Solvers.Exact.decision ~eps:0.0 h ~k:3 ~cost_limit:1)

(* V-cycle --------------------------------------------------------------------- *)

let test_vcycle_improves_or_keeps () =
  let rng = Support.Rng.create 33 in
  for _ = 1 to 5 do
    let hg =
      Workloads.Rand_hg.planted rng ~n:120 ~m:180 ~k:4 ~locality:0.85
        ~edge_size:3
    in
    let part = Solvers.Initial.random_balanced ~eps:0.03 rng hg ~k:4 in
    ignore
      (Solvers.Refine.refine
         ~config:{ Solvers.Refine.default_config with eps = 0.03 }
         hg part);
    let before = P.connectivity_cost hg part in
    let after = Solvers.Multilevel.vcycle ~cycles:2 rng hg part in
    Alcotest.(check bool) "vcycle never worse" true (after <= before);
    Alcotest.(check bool) "still balanced" true
      (P.is_balanced ~eps:0.03 hg part);
    Alcotest.(check int) "returned cost correct" (P.connectivity_cost hg part)
      after
  done

let test_partition_best () =
  let rng = Support.Rng.create 35 in
  let hg = Workloads.Rand_hg.uniform rng ~n:60 ~m:90 ~min_size:2 ~max_size:4 in
  let single =
    P.connectivity_cost hg (Solvers.Multilevel.partition rng hg ~k:4)
  in
  let best =
    P.connectivity_cost hg
      (Solvers.Multilevel.partition_best ~restarts:4 rng hg ~k:4)
  in
  Alcotest.(check bool) "restart portfolio never hurts much" true
    (best <= single + 5)

(* Constrained solver ----------------------------------------------------------- *)

let test_constrained_layerwise_two_branch () =
  (* Figure 6: the layer-wise solver must find a feasible solution of
     Theta(b) cost (the forced optimum magnitude). *)
  let t = R.Counterexamples.two_branch ~b:8 in
  let dag = t.R.Counterexamples.dag in
  let hg = Hyperdag.hypergraph_of_dag dag in
  let layers = Hyperdag.Layering.earliest_groups dag in
  let inst =
    Solvers.Constrained.of_layers ~variant:P.Relaxed ~eps:0.0 ~k:2 layers
      ~n:(H.num_nodes hg)
  in
  let part = Solvers.Constrained.solve (Support.Rng.create 3) inst hg ~k:2 in
  Alcotest.(check bool) "layer-wise feasible" true
    (Solvers.Constrained.respects inst ~k:2 part);
  Alcotest.(check bool) "matches Layerwise.feasible" true
    (P.Layerwise.feasible ~variant:P.Relaxed ~eps:0.0 layers part);
  let cost = P.connectivity_cost hg part in
  Alcotest.(check bool) "cost within Theta(b)" true (cost >= 2 && cost <= 14)

let test_constrained_multi_constraint () =
  let rng = Support.Rng.create 7 in
  for _ = 1 to 10 do
    let hg = Workloads.Rand_hg.uniform rng ~n:16 ~m:20 ~min_size:2 ~max_size:4 in
    let mc =
      P.Multi_constraint.create [| [| 0; 1; 2; 3 |]; [| 4; 5; 6; 7 |] |]
    in
    let inst =
      Solvers.Constrained.of_multi_constraint ~eps:0.0 ~k:2 mc ~n:16
    in
    let part = Solvers.Constrained.solve rng inst hg ~k:2 in
    Alcotest.(check bool) "constraints satisfied" true
      (P.Multi_constraint.feasible ~eps:0.0 mc part)
  done

let test_constrained_local_search_monotone () =
  let rng = Support.Rng.create 9 in
  let hg = Workloads.Rand_hg.uniform rng ~n:20 ~m:24 ~min_size:2 ~max_size:4 in
  let layers = [| Array.init 10 Fun.id; Array.init 10 (fun i -> 10 + i) |] in
  let inst = Solvers.Constrained.of_layers ~eps:0.0 ~k:2 layers ~n:20 in
  let part = Solvers.Constrained.greedy rng inst hg ~k:2 in
  let before = P.connectivity_cost hg part in
  let after = Solvers.Constrained.local_search inst hg part in
  Alcotest.(check bool) "local search never worse" true (after <= before);
  Alcotest.(check bool) "still respects caps" true
    (Solvers.Constrained.respects inst ~k:2 part)

(* Exact solver with class capacities ------------------------------------------- *)

let test_exact_constrained_matches_brute_force () =
  let rng = Support.Rng.create 11 in
  for _ = 1 to 8 do
    let n = 8 in
    let hg = Workloads.Rand_hg.uniform rng ~n ~m:8 ~min_size:2 ~max_size:3 in
    let mc = P.Multi_constraint.create [| [| 0; 1; 2; 3 |]; [| 4; 5 |] |] in
    let inst = Solvers.Constrained.of_multi_constraint ~eps:0.0 ~k:2 mc ~n in
    let reference = brute_force_mc_optimum hg ~k:2 ~eps:0.0 mc in
    let via =
      match Solvers.Exact.solve ~eps:0.5 ~constrained:inst hg ~k:2 with
      | Some { Solvers.Exact.part; cost } ->
          Alcotest.(check bool) "witness satisfies constraints" true
            (P.Multi_constraint.feasible ~eps:0.0 mc part);
          Some cost
      | None -> None
    in
    (* The overall balance differs (eps 0.5 vs 0.0 on all of V); compare
       only when the brute-force reference also used the loose overall
       balance: recompute it accordingly. *)
    let reference_loose =
      let best = ref None in
      Support.Util.iter_tuples ~base:2 ~len:n (fun colors ->
          let part = P.create ~k:2 (Array.copy colors) in
          if
            P.is_balanced ~eps:0.5 hg part
            && P.Multi_constraint.feasible ~eps:0.0 mc part
          then begin
            let c = P.connectivity_cost hg part in
            match !best with Some b when b <= c -> () | _ -> best := Some c
          end);
      !best
    in
    ignore reference;
    Alcotest.(check (option int)) "exact+constrained = brute force"
      reference_loose via
  done

(* DAG I/O ----------------------------------------------------------------------- *)

let test_dag_io_roundtrip () =
  let rng = Support.Rng.create 5 in
  for _ = 1 to 10 do
    let dag = Workloads.Dag_gen.random rng ~n:10 ~edge_probability:0.3 in
    let dag' = Hyperdag.Dag_io.of_string (Hyperdag.Dag_io.to_string dag) in
    Alcotest.(check int) "n" (Hyperdag.Dag.num_nodes dag)
      (Hyperdag.Dag.num_nodes dag');
    Alcotest.(check bool) "same edge set" true
      (List.sort Support.Order.int_pair (Hyperdag.Dag.edges dag)
      = List.sort Support.Order.int_pair (Hyperdag.Dag.edges dag'))
  done

let test_dag_io_parse () =
  let dag = Hyperdag.Dag_io.of_string "% comment\n3 2\n0 1\n1 2\n" in
  Alcotest.(check int) "nodes" 3 (Hyperdag.Dag.num_nodes dag);
  Alcotest.(check bool) "edge" true (Hyperdag.Dag.has_edge dag 1 2);
  (try
     ignore (Hyperdag.Dag_io.of_string "2 5\n0 1\n");
     Alcotest.fail "expected truncation failure"
   with Failure _ -> ())

let test_dag_dot () =
  let dag = Workloads.Dag_gen.chain 3 in
  let dot = Hyperdag.Dag_io.to_dot ~parts:[| 0; 1; 0 |] dag in
  Alcotest.(check bool) "digraph" true (String.length dot > 0);
  Alcotest.(check bool) "has arrow" true
    (let rec contains i =
       i + 2 <= String.length dot && (String.sub dot i 2 = "->" || contains (i + 1))
     in
     contains 0)

let suite =
  [
    Alcotest.test_case "KL preserves balance" `Quick
      test_kl_preserves_balance_exactly;
    Alcotest.test_case "KL improves at eps=0" `Quick
      test_kl_improves_obvious_instance;
    Alcotest.test_case "XP multi = brute force (Lemma 6.2)" `Slow
      test_xp_multi_matches_brute_force;
    Alcotest.test_case "Lemma D.1 roundtrip" `Slow test_mc_to_standard_roundtrip;
    Alcotest.test_case "Lemma D.1 validation" `Quick
      test_mc_to_standard_validation;
    Alcotest.test_case "App C.5 MpU reduction" `Quick test_mpu_reduction;
    Alcotest.test_case "App C.4 k=3 embed" `Quick test_spes_k3;
    Alcotest.test_case "App C.4 k=3 optimum" `Slow test_spes_k3_optimum;
    Alcotest.test_case "v-cycle" `Quick test_vcycle_improves_or_keeps;
    Alcotest.test_case "restart portfolio" `Quick test_partition_best;
    Alcotest.test_case "exact with class caps = brute force" `Slow
      test_exact_constrained_matches_brute_force;
    Alcotest.test_case "constrained: two-branch layers" `Quick
      test_constrained_layerwise_two_branch;
    Alcotest.test_case "constrained: multi-constraint" `Quick
      test_constrained_multi_constraint;
    Alcotest.test_case "constrained: monotone search" `Quick
      test_constrained_local_search_monotone;
    Alcotest.test_case "DAG IO roundtrip" `Quick test_dag_io_roundtrip;
    Alcotest.test_case "DAG IO parse" `Quick test_dag_io_parse;
    Alcotest.test_case "DAG DOT export" `Quick test_dag_dot;
  ]
