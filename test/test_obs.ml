(* Tests for lib/obs: the JSON codec, the JSONL trace sink (span tree
   round-trip through a file), metric aggregation, the zero-allocation
   guarantee of disabled instrumentation, and the per-rule audit timings
   that Check derives from the monotonic clock. *)

let json = Alcotest.testable (fun ppf j -> Fmt.string ppf (Obs.Json.to_string j)) ( = )

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_json_roundtrip () =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("null", Null);
        ("bool", Bool true);
        ("int", Int (-42));
        ("float", Float 0.125);
        ("str", Str "a \"quoted\"\nline\twith\\backslash");
        ("arr", Arr [ Int 1; Str "two"; Obj [ ("three", Int 3) ] ]);
        ("empty_obj", Obj []);
        ("empty_arr", Arr []);
      ]
  in
  match parse (to_string doc) with
  | Error msg -> Alcotest.failf "parse error: %s" msg
  | Ok parsed -> Alcotest.check json "round-trips" doc parsed

let test_json_unicode_escape () =
  match Obs.Json.parse {|{"s":"café A"}|} with
  | Error msg -> Alcotest.failf "parse error: %s" msg
  | Ok doc ->
      Alcotest.(check (option string))
        "utf-8 decoded"
        (Some "caf\xc3\xa9 A")
        (Option.bind (Obs.Json.member "s" doc) Obs.Json.get_str)

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

(* Run nested instrumented work with a JSONL sink attached, then parse
   the trace back and reconstruct the span tree. *)
let test_trace_roundtrip () =
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.reset_for_tests ();
  Obs.enable_trace path;
  let c = Obs.Counter.make "test.events" in
  Obs.Span.with_ "outer" ~attrs:[ ("n", Obs.Int 7) ] (fun () ->
      Obs.Span.with_ "inner"
        ~attrs:[ ("label", Obs.Str "x"); ("ok", Obs.Bool true) ]
        (fun () -> Obs.Counter.add c 3);
      Obs.Span.with_ "inner" (fun () ->
          Obs.Span.attr "ratio" (Obs.Float 0.5)));
  Obs.close ();
  Obs.reset_for_tests ();
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  let parsed =
    List.map
      (fun l ->
        match Obs.Json.parse l with
        | Ok doc -> doc
        | Error msg -> Alcotest.failf "bad trace line %S: %s" l msg)
      lines
  in
  let field name doc = Option.get (Obs.Json.member name doc) in
  let ty doc = Option.get (Obs.Json.get_str (field "type" doc)) in
  (* Meta line comes first and carries the schema version. *)
  let meta = List.hd parsed in
  Alcotest.(check string) "meta first" "meta" (ty meta);
  Alcotest.(check (option string))
    "schema" (Some Obs.trace_schema_version)
    (Obs.Json.get_str (field "schema" meta));
  let spans = List.filter (fun d -> ty d = "span") parsed in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  (* Children are emitted before their parent (spans are written as they
     end), so "outer" is the last span line. *)
  let outer = List.nth spans 2 in
  let inner1 = List.nth spans 0 and inner2 = List.nth spans 1 in
  let get_i name doc = Option.get (Obs.Json.get_int (field name doc)) in
  let get_s name doc = Option.get (Obs.Json.get_str (field name doc)) in
  Alcotest.(check string) "outer name" "outer" (get_s "name" outer);
  Alcotest.check json "outer parent is null" Obs.Json.Null
    (field "parent" outer);
  Alcotest.(check int) "outer depth" 0 (get_i "depth" outer);
  List.iter
    (fun inner ->
      Alcotest.(check string) "inner name" "inner" (get_s "name" inner);
      Alcotest.(check int)
        "inner parent is outer" (get_i "id" outer) (get_i "parent" inner);
      Alcotest.(check int) "inner depth" 1 (get_i "depth" inner);
      Alcotest.(check string) "inner path" "outer/inner" (get_s "path" inner);
      Alcotest.(check bool)
        "duration sandwich" true
        (get_i "dur_ns" inner <= get_i "dur_ns" outer))
    [ inner1; inner2 ];
  (* Attributes survive the round-trip with their types. *)
  let attrs doc = field "attrs" doc in
  Alcotest.(check (option int))
    "outer attr n" (Some 7)
    (Option.bind (Obs.Json.member "n" (attrs outer)) Obs.Json.get_int);
  Alcotest.(check (option string))
    "inner attr label" (Some "x")
    (Option.bind (Obs.Json.member "label" (attrs inner1)) Obs.Json.get_str);
  Alcotest.check json "inner attr ok" (Obs.Json.Bool true)
    (Option.get (Obs.Json.member "ok" (attrs inner1)));
  Alcotest.(check (option (float 1e-12)))
    "mid-span attr ratio" (Some 0.5)
    (Option.bind (Obs.Json.member "ratio" (attrs inner2)) Obs.Json.get_float);
  (* The counter is flushed at close, after all span lines. *)
  let counters = List.filter (fun d -> ty d = "counter") parsed in
  Alcotest.(check int) "one counter line" 1 (List.length counters);
  let cline = List.hd counters in
  Alcotest.(check string) "counter name" "test.events" (get_s "name" cline);
  Alcotest.(check int) "counter value" 3 (get_i "value" cline)

let test_metric_aggregation () =
  Obs.reset_for_tests ();
  Obs.set_enabled true;
  let c = Obs.Counter.make "agg.counter" in
  Obs.Counter.incr c;
  Obs.Counter.add c 9;
  Alcotest.(check int) "counter value" 10 (Obs.Counter.value c);
  let c' = Obs.Counter.make "agg.counter" in
  Obs.Counter.incr c';
  Alcotest.(check int) "handles interned by name" 11 (Obs.Counter.value c);
  let g = Obs.Gauge.make "agg.gauge" in
  Obs.Gauge.set g 2.5;
  let h = Obs.Histogram.make "agg.hist" in
  List.iter (Obs.Histogram.observe h) [ 4.0; 1.0; 3.0 ];
  Obs.Histogram.observe_int h 2;
  Obs.Span.with_ "agg.span" (fun () -> ());
  Obs.Span.with_ "agg.span" (fun () -> ());
  let snap = Obs.snapshot () in
  Alcotest.(check (list (pair string int)))
    "counters" [ ("agg.counter", 11) ] snap.Obs.counters;
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauges" [ ("agg.gauge", 2.5) ] snap.Obs.gauges;
  (match snap.Obs.histograms with
  | [ ("agg.hist", h) ] ->
      Alcotest.(check int) "hist count" 4 h.Obs.h_count;
      Alcotest.(check (float 1e-9)) "hist sum" 10.0 h.Obs.h_sum;
      Alcotest.(check (float 1e-9)) "hist min" 1.0 h.Obs.h_min;
      Alcotest.(check (float 1e-9)) "hist max" 4.0 h.Obs.h_max;
      Alcotest.(check (float 1e-9)) "hist last" 2.0 h.Obs.h_last
  | other -> Alcotest.failf "unexpected histograms (%d)" (List.length other));
  (match snap.Obs.spans with
  | [ s ] ->
      Alcotest.(check string) "span path" "agg.span" s.Obs.s_path;
      Alcotest.(check int) "span count" 2 s.Obs.s_count
  | other -> Alcotest.failf "unexpected span rollup (%d)" (List.length other));
  (* reset_stats zeroes values but keeps handles usable. *)
  Obs.reset_stats ();
  let snap = Obs.snapshot () in
  Alcotest.(check int) "counters cleared" 0 (List.length snap.Obs.counters);
  Alcotest.(check int) "gauges cleared" 0 (List.length snap.Obs.gauges);
  Alcotest.(check int) "histograms cleared" 0 (List.length snap.Obs.histograms);
  Alcotest.(check int) "rollup cleared" 0 (List.length snap.Obs.spans);
  Obs.Counter.incr c;
  Alcotest.(check int) "handle survives reset_stats" 1 (Obs.Counter.value c);
  Obs.reset_for_tests ()

(* The FM inner loop runs counter increments and span entries with obs
   off; those must not allocate, or the hot path pays a GC tax for
   instrumentation nobody asked for. *)
let test_disabled_no_alloc () =
  Obs.reset_for_tests ();
  let c = Obs.Counter.make "noalloc.counter" in
  let body = fun () -> Obs.Counter.incr c in
  (* Warm up so any one-time lazy initialization is done. *)
  Obs.Span.with_ "noalloc.span" body;
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Obs.Counter.incr c;
    Obs.Counter.add c 2;
    Obs.Span.with_ "noalloc.span" body
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "minor words (%.0f) within noise" delta)
    true (delta < 1024.0);
  Alcotest.(check int) "counter untouched while disabled" 0 (Obs.Counter.value c);
  Obs.reset_for_tests ()

let test_span_timed_when_disabled () =
  Obs.reset_for_tests ();
  let result, dt = Obs.Span.timed "timed.span" (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 result;
  Alcotest.(check bool) "elapsed measured" true (dt >= 0.0);
  Alcotest.(check int)
    "no rollup while disabled" 0
    (List.length (Obs.snapshot ()).Obs.spans);
  Obs.reset_for_tests ()

(* Check attributes inter-rule clock deltas to rule ids. *)
let test_check_timings () =
  let ctx = Analysis_core.Check.create ~subject:"timings" in
  Analysis_core.Check.rule ctx ~id:"T-ONE" true (fun () -> "");
  Analysis_core.Check.rule ctx ~id:"T-TWO" false (fun () -> "boom");
  Analysis_core.Check.rule ctx ~id:"T-ONE" true (fun () -> "");
  let r = Analysis_core.Check.report ctx in
  Alcotest.(check (list string))
    "one entry per rule id, first-evaluation order" [ "T-ONE"; "T-TWO" ]
    (List.map fst r.Analysis_core.Check.timings);
  List.iter
    (fun (id, s) ->
      Alcotest.(check bool) (id ^ " non-negative") true (s >= 0.0))
    r.Analysis_core.Check.timings;
  let merged = Analysis_core.Check.merge ~subject:"m" [ r; r ] in
  Alcotest.(check (list string))
    "merge sums by id" [ "T-ONE"; "T-TWO" ]
    (List.map fst merged.Analysis_core.Check.timings);
  let t id rep = List.assoc id rep.Analysis_core.Check.timings in
  Alcotest.(check (float 1e-12))
    "merged T-ONE is the sum" (2.0 *. t "T-ONE" r) (t "T-ONE" merged);
  (* The --stats rendering mentions every rule id. *)
  let rendered = Fmt.str "%a" Analysis_core.Check.pp_timings merged in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " rendered") true
        (contains_substring rendered id))
    [ "T-ONE"; "T-TWO" ]

let test_monotonic_clock () =
  let a = Support.Util.monotonic_ns () in
  let b = Support.Util.monotonic_ns () in
  Alcotest.(check bool) "positive" true (Int64.compare a 0L > 0);
  Alcotest.(check bool) "monotone" true (Int64.compare a b <= 0);
  Alcotest.(check (float 1e-9)) "seconds_of_ns" 1.5
    (Support.Util.seconds_of_ns 1_500_000_000L)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escape;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "trace round-trip through JSONL sink" `Quick
      test_trace_roundtrip;
    Alcotest.test_case "metric aggregation and reset" `Quick
      test_metric_aggregation;
    Alcotest.test_case "disabled instrumentation does not allocate" `Quick
      test_disabled_no_alloc;
    Alcotest.test_case "Span.timed measures when disabled" `Quick
      test_span_timed_when_disabled;
    Alcotest.test_case "per-rule audit timings" `Quick test_check_timings;
    Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
  ]
