(* Tests for lib/obs: the JSON codec, the JSONL trace sink (span tree
   round-trip through a file), metric aggregation, the zero-allocation
   guarantee of disabled instrumentation, and the per-rule audit timings
   that Check derives from the monotonic clock. *)

let json = Alcotest.testable (fun ppf j -> Fmt.string ppf (Obs.Json.to_string j)) ( = )

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_json_roundtrip () =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("null", Null);
        ("bool", Bool true);
        ("int", Int (-42));
        ("float", Float 0.125);
        ("str", Str "a \"quoted\"\nline\twith\\backslash");
        ("arr", Arr [ Int 1; Str "two"; Obj [ ("three", Int 3) ] ]);
        ("empty_obj", Obj []);
        ("empty_arr", Arr []);
      ]
  in
  match parse (to_string doc) with
  | Error msg -> Alcotest.failf "parse error: %s" msg
  | Ok parsed -> Alcotest.check json "round-trips" doc parsed

let test_json_unicode_escape () =
  match Obs.Json.parse {|{"s":"café A"}|} with
  | Error msg -> Alcotest.failf "parse error: %s" msg
  | Ok doc ->
      Alcotest.(check (option string))
        "utf-8 decoded"
        (Some "caf\xc3\xa9 A")
        (Option.bind (Obs.Json.member "s" doc) Obs.Json.get_str)

let test_json_rejects_garbage () =
  let bad = [ "{"; "[1,"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

(* Run nested instrumented work with a JSONL sink attached, then parse
   the trace back and reconstruct the span tree. *)
let test_trace_roundtrip () =
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.reset_for_tests ();
  Obs.enable_trace path;
  let c = Obs.Counter.make "test.events" in
  Obs.Span.with_ "outer" ~attrs:[ ("n", Obs.Int 7) ] (fun () ->
      Obs.Span.with_ "inner"
        ~attrs:[ ("label", Obs.Str "x"); ("ok", Obs.Bool true) ]
        (fun () -> Obs.Counter.add c 3);
      Obs.Span.with_ "inner" (fun () ->
          Obs.Span.attr "ratio" (Obs.Float 0.5)));
  Obs.close ();
  Obs.reset_for_tests ();
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  let parsed =
    List.map
      (fun l ->
        match Obs.Json.parse l with
        | Ok doc -> doc
        | Error msg -> Alcotest.failf "bad trace line %S: %s" l msg)
      lines
  in
  let field name doc = Option.get (Obs.Json.member name doc) in
  let ty doc = Option.get (Obs.Json.get_str (field "type" doc)) in
  (* Meta line comes first and carries the schema version. *)
  let meta = List.hd parsed in
  Alcotest.(check string) "meta first" "meta" (ty meta);
  Alcotest.(check (option string))
    "schema" (Some Obs.trace_schema_version)
    (Obs.Json.get_str (field "schema" meta));
  let spans = List.filter (fun d -> ty d = "span") parsed in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  (* Children are emitted before their parent (spans are written as they
     end), so "outer" is the last span line. *)
  let outer = List.nth spans 2 in
  let inner1 = List.nth spans 0 and inner2 = List.nth spans 1 in
  let get_i name doc = Option.get (Obs.Json.get_int (field name doc)) in
  let get_s name doc = Option.get (Obs.Json.get_str (field name doc)) in
  Alcotest.(check string) "outer name" "outer" (get_s "name" outer);
  Alcotest.check json "outer parent is null" Obs.Json.Null
    (field "parent" outer);
  Alcotest.(check int) "outer depth" 0 (get_i "depth" outer);
  List.iter
    (fun inner ->
      Alcotest.(check string) "inner name" "inner" (get_s "name" inner);
      Alcotest.(check int)
        "inner parent is outer" (get_i "id" outer) (get_i "parent" inner);
      Alcotest.(check int) "inner depth" 1 (get_i "depth" inner);
      Alcotest.(check string) "inner path" "outer/inner" (get_s "path" inner);
      Alcotest.(check bool)
        "duration sandwich" true
        (get_i "dur_ns" inner <= get_i "dur_ns" outer))
    [ inner1; inner2 ];
  (* Attributes survive the round-trip with their types. *)
  let attrs doc = field "attrs" doc in
  Alcotest.(check (option int))
    "outer attr n" (Some 7)
    (Option.bind (Obs.Json.member "n" (attrs outer)) Obs.Json.get_int);
  Alcotest.(check (option string))
    "inner attr label" (Some "x")
    (Option.bind (Obs.Json.member "label" (attrs inner1)) Obs.Json.get_str);
  Alcotest.check json "inner attr ok" (Obs.Json.Bool true)
    (Option.get (Obs.Json.member "ok" (attrs inner1)));
  Alcotest.(check (option (float 1e-12)))
    "mid-span attr ratio" (Some 0.5)
    (Option.bind (Obs.Json.member "ratio" (attrs inner2)) Obs.Json.get_float);
  (* The counter is flushed at close, after all span lines. *)
  let counters = List.filter (fun d -> ty d = "counter") parsed in
  Alcotest.(check int) "one counter line" 1 (List.length counters);
  let cline = List.hd counters in
  Alcotest.(check string) "counter name" "test.events" (get_s "name" cline);
  Alcotest.(check int) "counter value" 3 (get_i "value" cline)

let test_metric_aggregation () =
  Obs.reset_for_tests ();
  Obs.set_enabled true;
  let c = Obs.Counter.make "agg.counter" in
  Obs.Counter.incr c;
  Obs.Counter.add c 9;
  Alcotest.(check int) "counter value" 10 (Obs.Counter.value c);
  let c' = Obs.Counter.make "agg.counter" in
  Obs.Counter.incr c';
  Alcotest.(check int) "handles interned by name" 11 (Obs.Counter.value c);
  let g = Obs.Gauge.make "agg.gauge" in
  Obs.Gauge.set g 2.5;
  let h = Obs.Histogram.make "agg.hist" in
  List.iter (Obs.Histogram.observe h) [ 4.0; 1.0; 3.0 ];
  Obs.Histogram.observe_int h 2;
  Obs.Span.with_ "agg.span" (fun () -> ());
  Obs.Span.with_ "agg.span" (fun () -> ());
  let snap = Obs.snapshot () in
  Alcotest.(check (list (pair string int)))
    "counters" [ ("agg.counter", 11) ] snap.Obs.counters;
  Alcotest.(check (list (pair string (float 1e-9))))
    "gauges" [ ("agg.gauge", 2.5) ] snap.Obs.gauges;
  (match snap.Obs.histograms with
  | [ ("agg.hist", h) ] ->
      Alcotest.(check int) "hist count" 4 h.Obs.h_count;
      Alcotest.(check (float 1e-9)) "hist sum" 10.0 h.Obs.h_sum;
      Alcotest.(check (float 1e-9)) "hist min" 1.0 h.Obs.h_min;
      Alcotest.(check (float 1e-9)) "hist max" 4.0 h.Obs.h_max;
      Alcotest.(check (float 1e-9)) "hist last" 2.0 h.Obs.h_last
  | other -> Alcotest.failf "unexpected histograms (%d)" (List.length other));
  (match snap.Obs.spans with
  | [ s ] ->
      Alcotest.(check string) "span path" "agg.span" s.Obs.s_path;
      Alcotest.(check int) "span count" 2 s.Obs.s_count
  | other -> Alcotest.failf "unexpected span rollup (%d)" (List.length other));
  (* reset_stats zeroes values but keeps handles usable. *)
  Obs.reset_stats ();
  let snap = Obs.snapshot () in
  Alcotest.(check int) "counters cleared" 0 (List.length snap.Obs.counters);
  Alcotest.(check int) "gauges cleared" 0 (List.length snap.Obs.gauges);
  Alcotest.(check int) "histograms cleared" 0 (List.length snap.Obs.histograms);
  Alcotest.(check int) "rollup cleared" 0 (List.length snap.Obs.spans);
  Obs.Counter.incr c;
  Alcotest.(check int) "handle survives reset_stats" 1 (Obs.Counter.value c);
  Obs.reset_for_tests ()

(* The FM inner loop runs counter increments and span entries with obs
   off; those must not allocate, or the hot path pays a GC tax for
   instrumentation nobody asked for. *)
let test_disabled_no_alloc () =
  Obs.reset_for_tests ();
  let c = Obs.Counter.make "noalloc.counter" in
  let body = fun () -> Obs.Counter.incr c in
  (* Warm up so any one-time lazy initialization is done. *)
  Obs.Span.with_ "noalloc.span" body;
  let before = Obs.Prof.allocated_words () in
  for _ = 1 to 100_000 do
    Obs.Counter.incr c;
    Obs.Counter.add c 2;
    Obs.Span.with_ "noalloc.span" body
  done;
  let delta = Obs.Prof.allocated_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "minor words (%.0f) within noise" delta)
    true (delta < 1024.0);
  Alcotest.(check int) "counter untouched while disabled" 0 (Obs.Counter.value c);
  Obs.reset_for_tests ()

let test_span_timed_when_disabled () =
  Obs.reset_for_tests ();
  let result, dt = Obs.Span.timed "timed.span" (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 result;
  Alcotest.(check bool) "elapsed measured" true (dt >= 0.0);
  Alcotest.(check int)
    "no rollup while disabled" 0
    (List.length (Obs.snapshot ()).Obs.spans);
  Obs.reset_for_tests ()

(* Check attributes inter-rule clock deltas to rule ids. *)
let test_check_timings () =
  let ctx = Analysis_core.Check.create ~subject:"timings" in
  Analysis_core.Check.rule ctx ~id:"T-ONE" true (fun () -> "");
  Analysis_core.Check.rule ctx ~id:"T-TWO" false (fun () -> "boom");
  Analysis_core.Check.rule ctx ~id:"T-ONE" true (fun () -> "");
  let r = Analysis_core.Check.report ctx in
  Alcotest.(check (list string))
    "one entry per rule id, first-evaluation order" [ "T-ONE"; "T-TWO" ]
    (List.map fst r.Analysis_core.Check.timings);
  List.iter
    (fun (id, s) ->
      Alcotest.(check bool) (id ^ " non-negative") true (s >= 0.0))
    r.Analysis_core.Check.timings;
  let merged = Analysis_core.Check.merge ~subject:"m" [ r; r ] in
  Alcotest.(check (list string))
    "merge sums by id" [ "T-ONE"; "T-TWO" ]
    (List.map fst merged.Analysis_core.Check.timings);
  let t id rep = List.assoc id rep.Analysis_core.Check.timings in
  Alcotest.(check (float 1e-12))
    "merged T-ONE is the sum" (2.0 *. t "T-ONE" r) (t "T-ONE" merged);
  (* The --stats rendering mentions every rule id. *)
  let rendered = Fmt.str "%a" Analysis_core.Check.pp_timings merged in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " rendered") true
        (contains_substring rendered id))
    [ "T-ONE"; "T-TWO" ]

let test_monotonic_clock () =
  let a = Support.Util.monotonic_ns () in
  let b = Support.Util.monotonic_ns () in
  Alcotest.(check bool) "positive" true (Int64.compare a 0L > 0);
  Alcotest.(check bool) "monotone" true (Int64.compare a b <= 0);
  Alcotest.(check (float 1e-9)) "seconds_of_ns" 1.5
    (Support.Util.seconds_of_ns 1_500_000_000L)

(* ---- trace/2: shards, absorption, profiling, analytics ------------------ *)

let read_parsed path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match Obs.Json.parse l with
         | Ok doc -> doc
         | Error msg -> Alcotest.failf "bad trace line %S: %s" l msg)

let field name doc = Option.get (Obs.Json.member name doc)
let ty doc = Option.get (Obs.Json.get_str (field "type" doc))
let get_i name doc = Option.get (Obs.Json.get_int (field name doc))
let get_s name doc = Option.get (Obs.Json.get_str (field name doc))

(* A worker writes a shard under a trace id; the coordinator absorbs it
   under its open span: renumbered ids, re-rooted parents, trace-stamped
   span lines, metrics folded into the coordinator's registries. *)
let test_shard_absorb () =
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  let shard = path ^ ".worker.424242.jsonl" in
  let finally () =
    Sys.remove path;
    if Sys.file_exists shard then Sys.remove shard
  in
  Fun.protect ~finally @@ fun () ->
  (* "Worker": its own process would fork first; a plain sink swap is
     enough to exercise the shard format in-process. *)
  Obs.reset_for_tests ();
  Obs.enable_trace_shard ~trace_id:"fp-123" ~parent_span:7 ~pid:424242 shard;
  let c = Obs.Counter.make "shard.events" in
  Obs.Span.with_ "multilevel" (fun () ->
      Obs.Span.with_ "coarsen" (fun () -> Obs.Counter.add c 5));
  Obs.close ();
  let shard_lines = read_parsed shard in
  let smeta = List.hd shard_lines in
  Alcotest.(check string) "shard meta first" "meta" (ty smeta);
  Alcotest.(check string) "shard trace id" "fp-123" (get_s "trace" smeta);
  Alcotest.(check int) "shard parent span" 7 (get_i "parent_span" smeta);
  Alcotest.(check int) "shard pid" 424242 (get_i "pid" smeta);
  (* Probe the id the coordinator's first span will get after a reset
     (deterministic), then re-write the shard against it: the shard
     roots must re-parent under a matching open span id. *)
  Obs.reset_for_tests ();
  Obs.set_enabled true;
  let probe = ref None in
  Obs.Span.with_ "probe" (fun () -> probe := Obs.current_span_id ());
  let parent = Option.get !probe in
  Obs.reset_for_tests ();
  Obs.enable_trace_shard ~trace_id:"fp-123" ~parent_span:parent ~pid:424242
    shard;
  let c = Obs.Counter.make "shard.events" in
  Obs.Span.with_ "multilevel" (fun () ->
      Obs.Span.with_ "coarsen" (fun () -> Obs.Counter.add c 5));
  Obs.close ();
  (* "Coordinator": absorb while the parent span is open. *)
  Obs.reset_for_tests ();
  Obs.enable_trace path;
  let absorbed = ref (-1) in
  Obs.Span.with_ "engine.batch" (fun () -> absorbed := Obs.absorb_shard shard);
  Obs.close ();
  Obs.reset_for_tests ();
  Alcotest.(check int) "two spans absorbed" 2 !absorbed;
  let parsed = read_parsed path in
  let spans = List.filter (fun d -> ty d = "span") parsed in
  (* coarsen and multilevel from the shard, then the enclosing
     engine.batch — children flush before parents. *)
  Alcotest.(check (list string))
    "merged span names"
    [ "coarsen"; "multilevel"; "engine.batch" ]
    (List.map (get_s "name") spans);
  let by_name n = List.find (fun d -> get_s "name" d = n) spans in
  let batch = by_name "engine.batch" in
  let ml = by_name "multilevel" in
  let co = by_name "coarsen" in
  Alcotest.(check int)
    "shard root re-parented under engine.batch" (get_i "id" batch)
    (get_i "parent" ml);
  Alcotest.(check int)
    "shard child follows its root" (get_i "id" ml)
    (get_i "parent" co);
  Alcotest.(check string)
    "paths rebased" "engine.batch/multilevel/coarsen" (get_s "path" co);
  Alcotest.(check int) "depths rebased" 2 (get_i "depth" co);
  List.iter
    (fun d ->
      Alcotest.(check string) "trace id stamped" "fp-123" (get_s "trace" d))
    [ ml; co ];
  (* The worker's counter line folded into the coordinator registry. *)
  let counters = List.filter (fun d -> ty d = "counter") parsed in
  Alcotest.(check bool)
    "worker counter folded" true
    (List.exists
       (fun d -> get_s "name" d = "shard.events" && get_i "value" d = 5)
       counters)

(* Spans whose parent chain never closed (killed worker) are dropped, as
   are torn trailing lines; the rest of the shard still absorbs. *)
let test_shard_orphans_dropped () =
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  let shard = path ^ ".worker.7.jsonl" in
  let finally () =
    Sys.remove path;
    if Sys.file_exists shard then Sys.remove shard
  in
  Fun.protect ~finally @@ fun () ->
  Obs.reset_for_tests ();
  Obs.set_enabled true;
  let probe = ref None in
  Obs.Span.with_ "probe" (fun () -> probe := Obs.current_span_id ());
  let parent = Option.get !probe in
  Out_channel.with_open_text shard (fun oc ->
      output_string oc
        (String.concat "\n"
           [
             Printf.sprintf
               {|{"type":"meta","schema":"hypartition-trace/2","clock":"monotonic_ns","trace":"fp-9","parent_span":%d,"pid":7}|}
               parent;
             (* Closed root with a closed child: absorbable. *)
             {|{"type":"span","id":1,"parent":0,"name":"ok","path":"job/ok","depth":1,"start_ns":1,"dur_ns":5,"attrs":{}}|};
             {|{"type":"span","id":0,"parent":null,"name":"job","path":"job","depth":0,"start_ns":0,"dur_ns":9,"attrs":{}}|};
             (* Child of a span that never closed: orphan, dropped. *)
             {|{"type":"span","id":3,"parent":2,"name":"lost","path":"dead/lost","depth":1,"start_ns":2,"dur_ns":1,"attrs":{}}|};
             {|{"type":"span","id":4,"parent":3,"na|};
             (* torn trailing line above *)
           ]));
  Obs.reset_for_tests ();
  Obs.enable_trace path;
  let absorbed = ref (-1) in
  Obs.Span.with_ "engine.batch" (fun () -> absorbed := Obs.absorb_shard shard);
  Obs.close ();
  Obs.reset_for_tests ();
  Alcotest.(check int) "only the closed chain absorbs" 2 !absorbed;
  let spans =
    List.filter (fun d -> ty d = "span") (read_parsed path)
  in
  Alcotest.(check (list string))
    "orphans dropped from the merge"
    [ "ok"; "job"; "engine.batch" ]
    (List.map (get_s "name") spans);
  let batch = List.find (fun d -> get_s "name" d = "engine.batch") spans in
  let job = List.find (fun d -> get_s "name" d = "job") spans in
  Alcotest.(check int)
    "surviving root re-parented" (get_i "id" batch)
    (get_i "parent" job);
  (* A missing shard absorbs nothing and does not raise. *)
  Obs.reset_for_tests ();
  Obs.set_enabled true;
  Alcotest.(check int) "missing shard absorbs 0" 0
    (Obs.absorb_shard "/nonexistent/shard.jsonl");
  Obs.reset_for_tests ()

(* Prof.sample records the quick_stat gauges; allocated_words moves. *)
let test_prof_gauges () =
  Obs.reset_for_tests ();
  Obs.set_enabled true;
  Obs.Prof.set_enabled true;
  Alcotest.(check bool) "prof armed" true (Obs.Prof.enabled ());
  Obs.Prof.sample ();
  let snap = Obs.snapshot () in
  List.iter
    (fun g ->
      Alcotest.(check bool) (g ^ " recorded") true
        (List.mem_assoc g snap.Obs.gauges))
    [
      "gc.minor_collections"; "gc.major_collections"; "gc.compactions";
      "gc.heap_words"; "gc.top_heap_words"; "gc.minor_words";
      "gc.promoted_words"; "gc.major_words";
    ];
  let a = Obs.Prof.allocated_words () in
  let xs = Array.init 10_000 (fun i -> [ i ]) in
  let b = Obs.Prof.allocated_words () in
  Alcotest.(check bool) "allocation metered" true
    (b -. a >= float_of_int (Array.length xs));
  Obs.Prof.set_enabled false;
  Alcotest.(check bool) "prof disarmed" false (Obs.Prof.enabled ());
  Obs.reset_for_tests ()

(* The analytics layer over a synthetic merged trace: phase table, folded
   stacks, canonical structure. *)
let synthetic_trace =
  String.concat "\n"
    [
      {|{"type":"meta","schema":"hypartition-trace/2","clock":"monotonic_ns"}|};
      {|{"type":"provenance","hostname":"h","git_rev":"abc"}|};
      {|{"type":"span","id":2,"parent":1,"name":"coarsen","path":"engine.batch/engine.job/coarsen","depth":2,"start_ns":10,"dur_ns":600,"attrs":{},"trace":"fp-1"}|};
      {|{"type":"span","id":3,"parent":1,"name":"refine","path":"engine.batch/engine.job/refine","depth":2,"start_ns":700,"dur_ns":200,"attrs":{},"trace":"fp-1"}|};
      {|{"type":"span","id":1,"parent":0,"name":"engine.job","path":"engine.batch/engine.job","depth":1,"start_ns":5,"dur_ns":1000,"attrs":{},"trace":"fp-1"}|};
      {|{"type":"span","id":0,"parent":null,"name":"engine.batch","path":"engine.batch","depth":0,"start_ns":0,"dur_ns":1200,"attrs":{}}|};
      {|{"type":"gauge","name":"gc.heap_words","value":4096}|};
      {|{"type":"counter","name":"fm.moves","value":17}|};
    ]

let test_report_analytics () =
  let data =
    match Obs.Report.load_string synthetic_trace with
    | Ok d -> d
    | Error msg -> Alcotest.failf "load_string: %s" msg
  in
  Alcotest.(check string) "schema detected" Obs.trace_schema_version
    (Obs.Report.schema data);
  let rows = Obs.Report.phase_rows data in
  let row path =
    match
      List.find_opt (fun r -> r.Obs.Report.ph_path = path) rows
    with
    | Some r -> r
    | None -> Alcotest.failf "no phase row for %s" path
  in
  let job = row "engine.batch/engine.job" in
  Alcotest.(check int64) "job total" 1000L job.Obs.Report.ph_total_ns;
  (* self = 1000 - (600 + 200) *)
  Alcotest.(check int64) "job self excludes children" 200L
    job.Obs.Report.ph_self_ns;
  Alcotest.(check int64) "leaf self = total" 600L
    (row "engine.batch/engine.job/coarsen").Obs.Report.ph_self_ns;
  (* Folded stacks: flamegraph lines with positive self only. *)
  let folded = Obs.Report.folded data in
  Alcotest.(check bool) "folded non-empty" true (String.length folded > 0);
  Alcotest.(check bool) "folded stack syntax" true
    (contains_substring folded "engine.batch;engine.job;coarsen 600");
  Alcotest.(check bool) "folded self for inner nodes" true
    (contains_substring folded "engine.batch;engine.job 200");
  (* Structure is canonical: names + trace ids, no ids or timestamps. *)
  let structure = Obs.Report.structure data in
  Alcotest.(check bool) "structure has trace ids" true
    (contains_substring structure "engine.job[fp-1]");
  Alcotest.(check bool) "structure hides span ids" false
    (contains_substring structure "start_ns");
  (* Rendering mentions provenance, phases, GC and counters. *)
  let rendered = Fmt.str "%a" (Obs.Report.render ~top:5) data in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true
        (contains_substring rendered needle))
    [ "git_rev"; "engine.job"; "critical path"; "gc.heap_words"; "fm.moves" ]

let test_report_rejects_garbage () =
  (match Obs.Report.load_string "{\"schema\":\"nope/1\"}" with
  | Ok _ -> Alcotest.fail "accepted an unknown schema"
  | Error _ -> ());
  match Obs.Report.load_string "" with
  | Ok _ -> Alcotest.fail "accepted empty input"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escape;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "trace round-trip through JSONL sink" `Quick
      test_trace_roundtrip;
    Alcotest.test_case "metric aggregation and reset" `Quick
      test_metric_aggregation;
    Alcotest.test_case "disabled instrumentation does not allocate" `Quick
      test_disabled_no_alloc;
    Alcotest.test_case "Span.timed measures when disabled" `Quick
      test_span_timed_when_disabled;
    Alcotest.test_case "per-rule audit timings" `Quick test_check_timings;
    Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
    Alcotest.test_case "shard write and absorb" `Quick test_shard_absorb;
    Alcotest.test_case "shard orphans and torn lines dropped" `Quick
      test_shard_orphans_dropped;
    Alcotest.test_case "GC profiling gauges" `Quick test_prof_gauges;
    Alcotest.test_case "report analytics over a merged trace" `Quick
      test_report_analytics;
    Alcotest.test_case "report rejects malformed input" `Quick
      test_report_rejects_garbage;
  ]
