(* Tests for the support library: RNG, bitsets, DSU, bucket queues,
   growable vectors, and the combinatorial iterators. *)

open Support

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in inclusive range" true (v >= -5 && v <= 5)
  done

let test_rng_permutation () =
  let rng = Rng.create 3 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 11 in
  for _ = 1 to 50 do
    let s = Rng.sample_distinct rng ~n:20 ~k:7 in
    Alcotest.(check int) "size" 7 (Array.length s);
    for i = 1 to 6 do
      Alcotest.(check bool) "strictly increasing" true (s.(i) > s.(i - 1))
    done;
    Array.iter
      (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 20))
      s
  done

let test_int_vec () =
  let v = Int_vec.create () in
  for i = 0 to 999 do
    Int_vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 1000 (Int_vec.length v);
  Alcotest.(check int) "get" (25 * 25) (Int_vec.get v 25);
  Int_vec.set v 25 7;
  Alcotest.(check int) "set" 7 (Int_vec.get v 25);
  Alcotest.(check int) "pop" (999 * 999) (Int_vec.pop v);
  Alcotest.(check int) "length after pop" 999 (Int_vec.length v);
  Int_vec.clear v;
  Alcotest.(check int) "cleared" 0 (Int_vec.length v);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Int_vec.get: index out of bounds") (fun () ->
      ignore (Int_vec.get v 0))

let test_dsu () =
  let d = Dsu.create 10 in
  Alcotest.(check int) "initial components" 10 (Dsu.components d);
  Alcotest.(check bool) "union new" true (Dsu.union d 0 1);
  Alcotest.(check bool) "union redundant" false (Dsu.union d 1 0);
  ignore (Dsu.union d 2 3);
  ignore (Dsu.union d 0 3);
  Alcotest.(check bool) "same" true (Dsu.same d 1 2);
  Alcotest.(check bool) "not same" false (Dsu.same d 1 5);
  Alcotest.(check int) "component size" 4 (Dsu.component_size d 1);
  Alcotest.(check int) "components" 7 (Dsu.components d);
  let label, count = Dsu.labeling d in
  Alcotest.(check int) "label count" 7 count;
  Alcotest.(check int) "same label" label.(0) label.(3);
  Alcotest.(check bool) "different label" true (label.(0) <> label.(5))

let test_bucket_queue_basic () =
  let q = Bucket_queue.create ~min_priority:(-5) ~max_priority:5 10 in
  Alcotest.(check bool) "empty" true (Bucket_queue.is_empty q);
  Bucket_queue.insert q 0 3;
  Bucket_queue.insert q 1 (-2);
  Bucket_queue.insert q 2 5;
  Bucket_queue.insert q 3 5;
  Alcotest.(check int) "size" 4 (Bucket_queue.size q);
  (match Bucket_queue.pop_max q with
  | Some (item, p) ->
      Alcotest.(check int) "max priority" 5 p;
      Alcotest.(check bool) "max item" true (item = 2 || item = 3);
      Bucket_queue.remove q (if item = 2 then 3 else 2)
  | None -> Alcotest.fail "expected an item");
  (match Bucket_queue.pop_max q with
  | Some (0, 3) -> ()
  | _ -> Alcotest.fail "expected (0, 3)");
  Bucket_queue.update q 1 4;
  Alcotest.(check int) "updated priority" 4 (Bucket_queue.priority q 1)

(* clear + the capacity/priority_range accessors back the workspace's
   queue-reuse decision (Workspace.queue recycles iff both suffice). *)
let test_bucket_queue_clear () =
  let q = Bucket_queue.create ~min_priority:(-5) ~max_priority:5 10 in
  Alcotest.(check int) "capacity" 10 (Bucket_queue.capacity q);
  Alcotest.(check (pair int int)) "priority range" (-5, 5)
    (Bucket_queue.priority_range q);
  Bucket_queue.insert q 0 3;
  Bucket_queue.insert q 7 (-5);
  Bucket_queue.clear q;
  Alcotest.(check bool) "cleared" true (Bucket_queue.is_empty q);
  Alcotest.(check int) "size 0" 0 (Bucket_queue.size q);
  Alcotest.(check bool) "cleared items are absent" false
    (Bucket_queue.mem q 0);
  (* The cleared queue is fully reusable, including for old items. *)
  Bucket_queue.insert q 0 (-1);
  Bucket_queue.insert q 9 4;
  (match Bucket_queue.pop_max q with
  | Some (9, 4) -> ()
  | _ -> Alcotest.fail "expected (9, 4)");
  match Bucket_queue.pop_max q with
  | Some (0, -1) -> ()
  | _ -> Alcotest.fail "expected (0, -1)"

let test_bucket_queue_random_vs_reference () =
  (* Compare against a naive reference implementation. *)
  let rng = Rng.create 99 in
  let n = 40 in
  let q = Bucket_queue.create ~min_priority:(-20) ~max_priority:20 n in
  let reference = Hashtbl.create 64 in
  for _ = 1 to 3000 do
    let item = Rng.int rng n in
    match Rng.int rng 3 with
    | 0 ->
        let p = Rng.int_in_range rng ~lo:(-20) ~hi:20 in
        Bucket_queue.update q item p;
        Hashtbl.replace reference item p
    | 1 ->
        if Hashtbl.mem reference item then begin
          Bucket_queue.remove q item;
          Hashtbl.remove reference item
        end
    | _ -> (
        let expected =
          Hashtbl.fold (fun _ p acc -> max p acc) reference min_int
        in
        match Bucket_queue.max_item q with
        | None -> Alcotest.(check int) "both empty" 0 (Hashtbl.length reference)
        | Some it ->
            Alcotest.(check int) "max priority agrees" expected
              (Bucket_queue.priority q it))
  done;
  Alcotest.(check int) "sizes agree" (Hashtbl.length reference)
    (Bucket_queue.size q)

let test_bitset () =
  let s = Bitset.create 100 in
  Alcotest.(check int) "empty cardinal" 0 (Bitset.cardinal s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 99;
  Alcotest.(check bool) "mem" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem" false (Bitset.mem s 64);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 0; 63; 99 ] (Bitset.to_list s);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  let t = Bitset.create 100 in
  Bitset.add t 50;
  Alcotest.(check bool) "disjoint" false (Bitset.intersects s t);
  Bitset.add t 99;
  Alcotest.(check bool) "intersects" true (Bitset.intersects s t);
  Bitset.clear s;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal s)

let test_util_basics () =
  Alcotest.(check int) "ceil_div exact" 4 (Util.ceil_div 12 3);
  Alcotest.(check int) "ceil_div up" 5 (Util.ceil_div 13 3);
  Alcotest.(check int) "pow" 243 (Util.pow 3 5);
  Alcotest.(check int) "pow zero" 1 (Util.pow 7 0);
  Alcotest.(check int) "choose" 10 (Util.choose 5 2);
  Alcotest.(check int) "choose edge" 1 (Util.choose 5 0);
  Alcotest.(check int) "choose out of range" 0 (Util.choose 3 5);
  Alcotest.(check int) "sum" 6 (Util.sum_array [| 1; 2; 3 |]);
  Alcotest.(check int) "max" 9 (Util.max_array [| 3; 9; 1 |]);
  Alcotest.(check int) "min" 1 (Util.min_array [| 3; 9; 1 |])

let test_iter_subsets () =
  let count = ref 0 in
  Util.iter_subsets ~n:6 ~k:3 (fun s ->
      incr count;
      Alcotest.(check int) "subset size" 3 (Array.length s);
      for i = 1 to 2 do
        Alcotest.(check bool) "sorted" true (s.(i) > s.(i - 1))
      done);
  Alcotest.(check int) "C(6,3)" 20 !count;
  let count0 = ref 0 in
  Util.iter_subsets ~n:4 ~k:0 (fun s ->
      incr count0;
      Alcotest.(check int) "empty subset" 0 (Array.length s));
  Alcotest.(check int) "C(4,0)" 1 !count0

let test_iter_tuples () =
  let count = ref 0 in
  Util.iter_tuples ~base:3 ~len:4 (fun _ -> incr count);
  Alcotest.(check int) "3^4 tuples" 81 !count

let qcheck_subsets_count =
  QCheck.Test.make ~name:"iter_subsets visits C(n,k) distinct subsets"
    ~count:50
    QCheck.(pair (int_range 0 8) (int_range 0 8))
    (fun (n, k) ->
      let seen = Hashtbl.create 16 in
      Util.iter_subsets ~n ~k (fun s -> Hashtbl.replace seen (Array.to_list s) ());
      Hashtbl.length seen = Util.choose n k)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng permutation" `Quick test_rng_permutation;
    Alcotest.test_case "rng sample_distinct" `Quick test_rng_sample_distinct;
    Alcotest.test_case "int_vec" `Quick test_int_vec;
    Alcotest.test_case "dsu" `Quick test_dsu;
    Alcotest.test_case "bucket queue basics" `Quick test_bucket_queue_basic;
    Alcotest.test_case "bucket queue clear and reuse" `Quick
      test_bucket_queue_clear;
    Alcotest.test_case "bucket queue vs reference" `Quick
      test_bucket_queue_random_vs_reference;
    Alcotest.test_case "bitset" `Quick test_bitset;
    Alcotest.test_case "util basics" `Quick test_util_basics;
    Alcotest.test_case "iter_subsets" `Quick test_iter_subsets;
    Alcotest.test_case "iter_tuples" `Quick test_iter_tuples;
    QCheck_alcotest.to_alcotest qcheck_subsets_count;
  ]
