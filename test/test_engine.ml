(* lib/engine: fingerprinting, job plans, result records, the
   content-addressed cache, manifest expansion, the fork pool's fault
   isolation, and the batch determinism guarantee (same manifest at
   --jobs 1 and --jobs 8 gives byte-identical deterministic records). *)

module E = Engine

let temp_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Sys.mkdir base 0o700;
  base

let write_file path content =
  Out_channel.with_open_bin path (fun oc -> output_string oc content)

let gen_job ?(k = 2) ?(seed = 1) ?(n = 40) ?timeout_s () =
  {
    E.Spec.instance = E.Spec.Generated { kind = E.Spec.Uniform; n };
    config = { E.Spec.default_config with E.Spec.k };
    seed;
    timeout_s;
  }

let fingerprint_exn job =
  match E.Spec.fingerprint ~schema:E.Record.schema_version job with
  | Ok fp -> fp
  | Error e -> Alcotest.failf "fingerprint failed: %s" e

(* ---- fingerprint --------------------------------------------------------- *)

let test_fnv1a_golden () =
  (* Published FNV-1a 64-bit test vectors. *)
  Alcotest.(check string) "empty" "cbf29ce484222325" (E.Fingerprint.digest "");
  Alcotest.(check string) "a" "af63dc4c8601ec8c" (E.Fingerprint.digest "a");
  Alcotest.(check bool) "order sensitive" true
    (E.Fingerprint.digest "ab" <> E.Fingerprint.digest "ba");
  Alcotest.(check bool) "is_digest accepts" true
    (E.Fingerprint.is_digest (E.Fingerprint.digest "x"));
  Alcotest.(check bool) "is_digest rejects short" false
    (E.Fingerprint.is_digest "abc");
  Alcotest.(check bool) "is_digest rejects uppercase" false
    (E.Fingerprint.is_digest "CBF29CE484222325")

let test_fingerprint_identity () =
  let fp = fingerprint_exn (gen_job ()) in
  Alcotest.(check bool) "well-formed" true (E.Fingerprint.is_digest fp);
  Alcotest.(check string) "deterministic" fp (fingerprint_exn (gen_job ()));
  Alcotest.(check bool) "seed changes it" true
    (fp <> fingerprint_exn (gen_job ~seed:2 ()));
  Alcotest.(check bool) "config changes it" true
    (fp <> fingerprint_exn (gen_job ~k:4 ()));
  (* The timeout bounds a run; it does not change what the job computes,
     so it is excluded from the identity by design. *)
  Alcotest.(check string) "timeout excluded" fp
    (fingerprint_exn (gen_job ~timeout_s:5.0 ()));
  (* The result-schema version is mixed in: bumping it invalidates all
     cached fingerprints. *)
  match E.Spec.fingerprint ~schema:"hypartition-result/999" (gen_job ()) with
  | Ok fp' -> Alcotest.(check bool) "schema mixed in" true (fp <> fp')
  | Error e -> Alcotest.failf "fingerprint failed: %s" e

let test_fingerprint_file_content () =
  let dir = temp_dir "hyp_fp" in
  let path = Filename.concat dir "inst.hgr" in
  write_file path "1 3\n1 2\n";
  let job timeout_s =
    { (gen_job ~timeout_s ()) with E.Spec.instance = E.Spec.Hmetis_file path }
  in
  let fp1 = fingerprint_exn (job 1.0) in
  write_file path "1 3\n2 3\n";
  let fp2 = fingerprint_exn (job 1.0) in
  Alcotest.(check bool) "content hashed, not the path" true (fp1 <> fp2);
  (* An unreadable instance cannot be fingerprinted — an Error, not an
     exception. *)
  let missing =
    { (gen_job ()) with
      E.Spec.instance = E.Spec.Hmetis_file (Filename.concat dir "absent.hgr")
    }
  in
  match E.Spec.fingerprint ~schema:E.Record.schema_version missing with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing instance file"

(* ---- spec and record codecs ---------------------------------------------- *)

let test_spec_roundtrip () =
  let jobs =
    [
      gen_job ~k:4 ~seed:7 ~timeout_s:2.5 ();
      { (gen_job ()) with E.Spec.instance = E.Spec.Hmetis_file "x.hgr" };
      { (gen_job ()) with E.Spec.instance = E.Spec.Dag_file "y.dag" };
      { (gen_job ()) with E.Spec.instance = E.Spec.Experiment "E3" };
      { (gen_job ()) with E.Spec.instance = E.Spec.Spin 1.5 };
      { (gen_job ()) with E.Spec.instance = E.Spec.Crash 66 };
    ]
  in
  List.iter
    (fun job ->
      match E.Spec.of_json (E.Spec.to_json job) with
      | Ok job' ->
          Alcotest.(check string) "roundtrip" (E.Spec.describe job)
            (E.Spec.describe job');
          Alcotest.(check bool) "identical" true (job = job')
      | Error e -> Alcotest.failf "spec roundtrip failed: %s" e)
    jobs;
  match E.Spec.of_json (Obs.Json.Str "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed spec JSON must not decode"

let test_record_roundtrip () =
  let record =
    {
      E.Record.fingerprint = E.Fingerprint.digest "probe";
      job = gen_job ();
      status = E.Record.Failed "Runner.execute: boom";
      metrics = [ ("n", Obs.Json.Int 40) ];
      observed = Some (Obs.Json.Obj [ ("counters", Obs.Json.Obj []) ]);
      timing = { E.Record.wall_s = 0.25; attempts = 2; worker = 3; threads = 2 };
    }
  in
  (match E.Record.of_json (E.Record.to_json record) with
  | Ok r ->
      Alcotest.(check string) "deterministic part survives"
        (E.Record.deterministic_string record)
        (E.Record.deterministic_string r);
      Alcotest.(check int) "attempts survive" 2 r.E.Record.timing.E.Record.attempts
  | Error e -> Alcotest.failf "record roundtrip failed: %s" e);
  (* The deterministic rendering quantifies over everything except timing
     and the observability snapshot. *)
  let shifted =
    { record with
      E.Record.timing = { E.Record.wall_s = 99.0; attempts = 1; worker = 0; threads = 0 };
      observed = None }
  in
  Alcotest.(check string) "timing/observed excluded"
    (E.Record.deterministic_string record)
    (E.Record.deterministic_string shifted);
  Alcotest.(check bool) "only Done is cacheable" false
    (E.Record.cacheable record)

(* ---- cache --------------------------------------------------------------- *)

let done_record job =
  {
    E.Record.fingerprint = fingerprint_exn job;
    job;
    status = E.Record.Done;
    metrics = [ ("connectivity", Obs.Json.Int 12) ];
    observed = None;
    timing = { E.Record.wall_s = 0.01; attempts = 1; worker = 0; threads = 0 };
  }

let open_cache dir =
  match E.Cache.open_ dir with
  | Ok c -> c
  | Error e -> Alcotest.failf "cache open failed: %s" e

let test_cache_roundtrip () =
  let dir = temp_dir "hyp_cache" in
  let cache = open_cache dir in
  let record = done_record (gen_job ()) in
  Alcotest.(check bool) "cold lookup misses" true
    (E.Cache.find cache record.E.Record.fingerprint = None);
  (match E.Cache.store cache record with
  | Ok () -> ()
  | Error e -> Alcotest.failf "store failed: %s" e);
  (match E.Cache.find cache record.E.Record.fingerprint with
  | Some r ->
      Alcotest.(check string) "identical deterministic record"
        (E.Record.deterministic_string record)
        (E.Record.deterministic_string r)
  | None -> Alcotest.fail "stored record must be found");
  let stats = E.Cache.stats cache in
  Alcotest.(check int) "one hit" 1 stats.E.Cache.hits;
  Alcotest.(check int) "one miss" 1 stats.E.Cache.misses;
  Alcotest.(check int) "one store" 1 stats.E.Cache.stores;
  (* Atomic stores leave no temp files behind. *)
  let rec files dir =
    Array.to_list (Sys.readdir dir)
    |> List.concat_map (fun f ->
           let p = Filename.concat dir f in
           if Sys.is_directory p then files p else [ p ])
  in
  Alcotest.(check bool) "no temp litter" true
    (List.for_all
       (fun p -> Filename.check_suffix p ".json")
       (files dir))

let test_cache_rejects_defects () =
  let dir = temp_dir "hyp_cache" in
  let cache = open_cache dir in
  let record = done_record (gen_job ()) in
  (* Only Done records are cacheable. *)
  (match
     E.Cache.store cache
       { record with E.Record.status = E.Record.Failed "Runner.execute: x" }
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-Done record must not store");
  (* A corrupted entry degrades to a miss plus a corrupt tick. *)
  let path = E.Cache.path_of cache record.E.Record.fingerprint in
  (match Sys.mkdir (Filename.dirname path) 0o700 with
  | () -> ()
  | exception Sys_error _ -> ());
  write_file path "{ not json";
  Alcotest.(check bool) "corrupt entry is a miss" true
    (E.Cache.find cache record.E.Record.fingerprint = None);
  (* A record whose fingerprint echo disagrees with its filename is
     foreign: also a miss. *)
  write_file path
    (Obs.Json.to_string (E.Record.to_json (done_record (gen_job ~seed:9 ()))));
  Alcotest.(check bool) "wrong echo is a miss" true
    (E.Cache.find cache record.E.Record.fingerprint = None);
  let stats = E.Cache.stats cache in
  Alcotest.(check int) "corrupt ticks" 2 stats.E.Cache.corrupt;
  Alcotest.check_raises "malformed fingerprint"
    (Invalid_argument "Cache.path_of: malformed fingerprint") (fun () ->
      ignore (E.Cache.path_of cache "nope"))

(* ---- manifest ------------------------------------------------------------ *)

let manifest_text =
  {|{
  "schema": "hypartition-manifest/1",
  "defaults": { "k": 2, "eps": 0.03, "seed": 5, "timeout_s": 30.0 },
  "instances": [
    { "generate": "uniform", "n": 30 },
    { "experiment": "E1" },
    { "spin": 9.0, "timeout_s": 1.0 }
  ],
  "configs": [ { "k": 2 }, { "k": 4, "algorithm": "bfs" } ],
  "seeds": [ 1, 2, 3 ]
}|}

let test_manifest_expansion () =
  match E.Manifest.of_string ~known_experiments:[ "E1" ] manifest_text with
  | Error e -> Alcotest.failf "manifest failed: %s" e
  | Ok jobs ->
      (* 1 sweepable instance x 2 configs x 3 seeds + experiment + drill. *)
      Alcotest.(check int) "expansion count" 8 (List.length jobs);
      let seeds =
        List.filter_map
          (fun (j : E.Spec.job) ->
            match j.E.Spec.instance with
            | E.Spec.Generated _ -> Some (j.E.Spec.config.E.Spec.k, j.E.Spec.seed)
            | _ -> None)
          jobs
      in
      Alcotest.(check (list (pair int int)))
        "deterministic order: configs outer, seeds inner"
        [ (2, 1); (2, 2); (2, 3); (4, 1); (4, 2); (4, 3) ]
        seeds;
      let drill =
        List.find
          (fun (j : E.Spec.job) ->
            match j.E.Spec.instance with E.Spec.Spin _ -> true | _ -> false)
          jobs
      in
      Alcotest.(check (option (float 1e-9))) "per-entry timeout override"
        (Some 1.0) drill.E.Spec.timeout_s;
      Alcotest.(check bool) "drills pin config and seed" true
        (drill.E.Spec.config = E.Spec.default_config && drill.E.Spec.seed = 0);
      let experiment =
        List.find
          (fun (j : E.Spec.job) ->
            match j.E.Spec.instance with
            | E.Spec.Experiment _ -> true
            | _ -> false)
          jobs
      in
      Alcotest.(check (option (float 1e-9))) "defaults timeout applies"
        (Some 30.0) experiment.E.Spec.timeout_s

let test_manifest_errors () =
  let expect name text =
    match E.Manifest.of_string ~known_experiments:[ "E1" ] text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: manifest unexpectedly parsed" name
  in
  expect "not JSON" "nonsense";
  expect "wrong schema" {|{ "schema": "hypartition-manifest/9" }|};
  expect "no instances"
    {|{ "schema": "hypartition-manifest/1", "instances": [] }|};
  expect "unknown generator"
    {|{ "schema": "hypartition-manifest/1",
        "instances": [ { "generate": "warp", "n": 4 } ] }|};
  expect "unknown experiment"
    {|{ "schema": "hypartition-manifest/1",
        "instances": [ { "experiment": "E99" } ] }|};
  expect "unknown algorithm"
    {|{ "schema": "hypartition-manifest/1",
        "instances": [ { "generate": "uniform", "n": 4 } ],
        "configs": [ { "algorithm": "quantum" } ] }|};
  expect "invalid job shape"
    {|{ "schema": "hypartition-manifest/1",
        "defaults": { "k": 0 },
        "instances": [ { "generate": "uniform", "n": 4 } ] }|}

(* ---- runner (in-process) ------------------------------------------------- *)

let test_runner_execute () =
  let payload = E.Runner.execute (gen_job ~n:30 ()) in
  (match payload.E.Record.p_status with
  | `Done -> ()
  | `Failed msg -> Alcotest.failf "expected Done, got Failed %s" msg);
  (match List.assoc_opt "connectivity" payload.E.Record.p_metrics with
  | Some (Obs.Json.Int _) -> ()
  | _ -> Alcotest.fail "audited partition metrics expected");
  Alcotest.(check bool) "observability snapshot captured" true
    (payload.E.Record.p_observed <> None);
  (* Deterministic failures are Failed payloads with parser-prefixed
     messages, never exceptions. *)
  let bad =
    { (gen_job ()) with E.Spec.instance = E.Spec.Hmetis_file "/absent.hgr" }
  in
  match (E.Runner.execute bad).E.Record.p_status with
  | `Failed _ -> ()
  | `Done -> Alcotest.fail "missing instance must fail"

let test_runner_determinism () =
  let p1 = E.Runner.execute (gen_job ~n:30 ()) in
  let p2 = E.Runner.execute (gen_job ~n:30 ()) in
  Alcotest.(check bool) "same plan, same metrics" true
    (p1.E.Record.p_metrics = p2.E.Record.p_metrics)

(* ---- pool: fault isolation ----------------------------------------------- *)

let quiet_pool jobs =
  {
    E.Pool.default_config with
    E.Pool.jobs;
    retries = 1;
    backoff_s = 0.01;
    silence_worker_stdout = true;
  }

let run_pool ?on_event config plans =
  (* Pool-level tests include plans whose instance file is unreadable and
     therefore unfingerprintable (Batch classifies those before the pool
     ever sees them); key them by description instead. *)
  let key job =
    match E.Spec.fingerprint ~schema:E.Record.schema_version job with
    | Ok fp -> fp
    | Error _ -> E.Fingerprint.digest (E.Spec.describe job)
  in
  let plans = List.mapi (fun i job -> (i, key job, job)) plans in
  E.Pool.run ?on_event config ~worker:(fun job -> E.Runner.execute job) plans

let test_pool_crash_isolation () =
  let plans =
    [
      gen_job ~seed:1 ~n:30 ();
      { (gen_job ()) with E.Spec.instance = E.Spec.Crash 66 };
      gen_job ~seed:2 ~n:30 ();
    ]
  in
  let retries = ref 0 in
  let on_event = function E.Pool.Retrying _ -> incr retries | _ -> () in
  let records = run_pool ~on_event (quiet_pool 4) plans in
  Alcotest.(check int) "one record per plan" 3 (List.length records);
  let statuses =
    List.map (fun r -> E.Record.status_name r.E.Record.status) records
  in
  Alcotest.(check (list string)) "crash costs one result, never the sweep"
    [ "ok"; "crashed"; "ok" ] statuses;
  Alcotest.(check int) "crash retried before giving up" 1 !retries;
  let crashed = List.nth records 1 in
  Alcotest.(check int) "attempts counted" 2
    crashed.E.Record.timing.E.Record.attempts

let test_pool_timeout_kill () =
  let t0 = Support.Util.monotonic_ns () in
  let plans =
    [
      { (gen_job ()) with
        E.Spec.instance = E.Spec.Spin 30.0; timeout_s = Some 0.3 };
      gen_job ~n:30 ();
    ]
  in
  let records = run_pool (quiet_pool 2) plans in
  let wall =
    Support.Util.seconds_of_ns (Int64.sub (Support.Util.monotonic_ns ()) t0)
  in
  (match (List.hd records).E.Record.status with
  | E.Record.Timed_out budget ->
      Alcotest.(check (float 1e-9)) "records its budget" 0.3 budget
  | s -> Alcotest.failf "expected Timed_out, got %s" (E.Record.status_name s));
  Alcotest.(check string) "sibling unaffected" "ok"
    (E.Record.status_name (List.nth records 1).E.Record.status);
  (* The spinner was SIGKILLed at its budget, not run to completion. *)
  Alcotest.(check bool) "killed promptly" true (wall < 10.0)

let test_pool_failed_not_retried () =
  let plans =
    [ { (gen_job ()) with E.Spec.instance = E.Spec.Hmetis_file "/absent.hgr" } ]
  in
  let retries = ref 0 in
  let on_event = function E.Pool.Retrying _ -> incr retries | _ -> () in
  let records = run_pool ~on_event (quiet_pool 2) plans in
  Alcotest.(check string) "deterministic failure" "failed"
    (E.Record.status_name (List.hd records).E.Record.status);
  Alcotest.(check int) "deterministic failures never retry" 0 !retries

(* ---- cache under concurrent multi-process access ------------------------- *)

let test_cache_concurrent_stores () =
  (* Two forked workers hammer the SAME fingerprint with distinct 64 KiB
     records while the coordinator reads it between pool steps.  The
     contract (see cache.ml): both stores succeed, every read observes
     one record in full — all-'a' or all-'b', never a splice — and the
     validating reader never ticks its corrupt counter.  Tests can't
     fork (SRC08), so concurrency is driven through the incremental
     pool API, which this also exercises. *)
  let dir = temp_dir "hyp_cache_race" in
  let job = gen_job ~n:30 () in
  let fp = fingerprint_exn job in
  let blob_record c =
    {
      E.Record.fingerprint = fp;
      job;
      status = E.Record.Done;
      metrics = [ ("blob", Obs.Json.Str (String.make 65536 c)) ];
      observed = None;
      timing = { E.Record.wall_s = 0.0; attempts = 1; worker = 0; threads = 0 };
    }
  in
  let worker (j : E.Spec.job) =
    (* Runs in the forked child: its own cache handle, its own pid. *)
    let c = if j.E.Spec.seed = 1 then 'a' else 'b' in
    match E.Cache.open_ dir with
    | Error e -> { E.Record.p_status = `Failed e; p_metrics = []; p_observed = None }
    | Ok cache ->
        let failed = ref None in
        for _ = 1 to 200 do
          match E.Cache.store cache (blob_record c) with
          | Ok () -> ()
          | Error e -> failed := Some e
        done;
        (match !failed with
        | Some e -> { E.Record.p_status = `Failed e; p_metrics = []; p_observed = None }
        | None -> { E.Record.p_status = `Done; p_metrics = []; p_observed = None })
  in
  let pool = E.Pool.create (quiet_pool 2) ~worker in
  E.Pool.submit pool ~index:0 ~fingerprint:fp { job with E.Spec.seed = 1 };
  E.Pool.submit pool ~index:1 ~fingerprint:fp { job with E.Spec.seed = 2 };
  let reader = open_cache dir in
  let reads = ref 0 in
  let completed = ref [] in
  while not (E.Pool.idle pool) do
    let records, _ = E.Pool.step ~timeout:0.002 pool in
    List.iter (fun (_, r) -> completed := r :: !completed) records;
    for _ = 1 to 10 do
      match E.Cache.find reader fp with
      | None -> ()
      | Some r -> (
          incr reads;
          match List.assoc_opt "blob" r.E.Record.metrics with
          | Some (Obs.Json.Str s) ->
              Alcotest.(check int) "read is complete" 65536 (String.length s);
              Alcotest.(check bool) "read is one writer's record, not a splice"
                true
                (String.for_all (fun ch -> ch = s.[0]) s)
          | _ -> Alcotest.fail "blob metric missing from raced read")
    done
  done;
  List.iter
    (fun r ->
      Alcotest.(check string) "both writers stored without error" "ok"
        (E.Record.status_name r.E.Record.status))
    !completed;
  Alcotest.(check int) "one record per writer" 2 (List.length !completed);
  Alcotest.(check bool) "reads raced the writers" true (!reads > 0);
  let s = E.Cache.stats reader in
  Alcotest.(check int) "atomic publication: reader never saw a torn record" 0
    s.E.Cache.corrupt;
  (* The final entry is intact and belongs to one of the two writers. *)
  (match E.Cache.find reader fp with
  | Some r -> (
      match List.assoc_opt "blob" r.E.Record.metrics with
      | Some (Obs.Json.Str s) ->
          Alcotest.(check bool) "last rename won cleanly" true
            (String.for_all (fun ch -> ch = s.[0]) s)
      | _ -> Alcotest.fail "blob metric missing from final record")
  | None -> Alcotest.fail "entry must exist after both writers finished");
  (* Renames publish or clean up: no orphaned temp files under the shard
     directory once the writers are done. *)
  let shard = Filename.concat dir (String.sub fp 0 2) in
  let leftovers =
    Array.to_list (Sys.readdir shard)
    |> List.filter (fun f -> not (Filename.check_suffix f ".json"))
  in
  Alcotest.(check (list string)) "no temp files survive" [] leftovers

let test_cache_reader_racing_writer () =
  (* A reader racing a single writer through the entry's whole life:
     before the first store it misses cleanly; from the first successful
     store on it hits; a re-store of the same fingerprint never makes it
     disappear or tear.  The writer is a forked pool worker, the reader
     is the coordinator between steps. *)
  let dir = temp_dir "hyp_cache_rw" in
  let job = gen_job ~n:30 ~seed:5 () in
  let fp = fingerprint_exn job in
  let record =
    {
      E.Record.fingerprint = fp;
      job;
      status = E.Record.Done;
      metrics = [ ("blob", Obs.Json.Str (String.make 65536 'x')) ];
      observed = None;
      timing = { E.Record.wall_s = 0.0; attempts = 1; worker = 0; threads = 0 };
    }
  in
  let worker (_ : E.Spec.job) =
    match E.Cache.open_ dir with
    | Error e -> { E.Record.p_status = `Failed e; p_metrics = []; p_observed = None }
    | Ok cache ->
        for _ = 1 to 100 do
          ignore (E.Cache.store cache record : (unit, string) result)
        done;
        { E.Record.p_status = `Done; p_metrics = []; p_observed = None }
  in
  let pool = E.Pool.create (quiet_pool 1) ~worker in
  E.Pool.submit pool ~index:0 ~fingerprint:fp job;
  let reader = open_cache dir in
  let seen_hit = ref false in
  let ok = ref true in
  while not (E.Pool.idle pool) do
    ignore (E.Pool.step ~timeout:0.002 pool : (int * E.Record.t) list * Unix.file_descr list);
    for _ = 1 to 10 do
      match E.Cache.find reader fp with
      | None ->
          (* Legal only before the first store has been published. *)
          if !seen_hit then ok := false
      | Some _ -> seen_hit := true
    done
  done;
  Alcotest.(check bool) "once published, never absent" true !ok;
  Alcotest.(check bool) "the entry was published" true !seen_hit;
  let s = E.Cache.stats reader in
  Alcotest.(check int) "no torn reads" 0 s.E.Cache.corrupt

(* ---- batch: cache interplay and determinism ------------------------------ *)

let batch_config ~jobs ~cache_dir =
  {
    E.Batch.pool = (quiet_pool jobs : E.Pool.config);
    cache_dir;
  }

let run_batch ~jobs ~cache_dir plans =
  match E.Batch.run (batch_config ~jobs ~cache_dir) plans with
  | Ok report -> report
  | Error e -> Alcotest.failf "batch failed: %s" e

let test_batch_cache_second_pass () =
  let dir = Some (temp_dir "hyp_batch") in
  let plans =
    [ gen_job ~seed:1 ~n:30 (); gen_job ~seed:2 ~n:30 ();
      { (gen_job ()) with E.Spec.instance = E.Spec.Crash 3 } ]
  in
  let first = run_batch ~jobs:2 ~cache_dir:dir plans in
  Alcotest.(check int) "first pass computes" 0 first.E.Batch.stats.E.Batch.from_cache;
  Alcotest.(check int) "two ok" 2 first.E.Batch.stats.E.Batch.ok;
  Alcotest.(check int) "one crash" 1 first.E.Batch.stats.E.Batch.crashes;
  Alcotest.(check bool) "a failing sibling fails the batch" false
    (E.Batch.all_ok first);
  let second = run_batch ~jobs:2 ~cache_dir:dir plans in
  Alcotest.(check int) "second pass hits for completed jobs" 2
    second.E.Batch.stats.E.Batch.from_cache;
  Alcotest.(check int) "crash is never cached" 1
    second.E.Batch.stats.E.Batch.crashes;
  (* Cached outcomes carry the original deterministic record. *)
  List.iter2
    (fun (a : E.Batch.outcome) (b : E.Batch.outcome) ->
      if b.E.Batch.cached then
        Alcotest.(check string) "cache returns the same record"
          (E.Record.deterministic_string a.E.Batch.record)
          (E.Record.deterministic_string b.E.Batch.record))
    first.E.Batch.outcomes second.E.Batch.outcomes

let test_batch_determinism_across_parallelism () =
  (* The headline guarantee: the same manifest at --jobs 1 and --jobs 8
     yields byte-identical records modulo the timing/observed sections. *)
  let manifest =
    {|{
  "schema": "hypartition-manifest/1",
  "defaults": { "eps": 0.2 },
  "instances": [ { "generate": "uniform", "n": 32 } ],
  "configs": [ { "k": 2 }, { "k": 4 } ],
  "seeds": [ 1, 2, 3 ]
}|}
  in
  let plans =
    match E.Manifest.of_string ~known_experiments:[] manifest with
    | Ok jobs -> jobs
    | Error e -> Alcotest.failf "manifest failed: %s" e
  in
  let serial = run_batch ~jobs:1 ~cache_dir:None plans in
  let parallel = run_batch ~jobs:8 ~cache_dir:None plans in
  Alcotest.(check int) "six jobs" 6 (List.length serial.E.Batch.outcomes);
  List.iter2
    (fun (a : E.Batch.outcome) (b : E.Batch.outcome) ->
      Alcotest.(check string) "byte-identical deterministic records"
        (E.Record.deterministic_string a.E.Batch.record)
        (E.Record.deterministic_string b.E.Batch.record))
    serial.E.Batch.outcomes parallel.E.Batch.outcomes;
  Alcotest.(check bool) "all ok serial" true (E.Batch.all_ok serial);
  Alcotest.(check bool) "all ok parallel" true (E.Batch.all_ok parallel)

(* The trace-side determinism guarantee: tracing the same manifest at
   --jobs 1 and --jobs 8 yields the same merged span forest — same
   names, same parent edges, same per-span trace ids — modulo
   timestamps.  Shards absorb in job-index order, so even the merged
   span ids are a function of the plan alone. *)
let test_trace_structure_across_parallelism () =
  let manifest =
    {|{
  "schema": "hypartition-manifest/1",
  "defaults": { "eps": 0.2 },
  "instances": [ { "generate": "uniform", "n": 32 } ],
  "configs": [ { "k": 2 }, { "k": 4 } ],
  "seeds": [ 1, 2 ]
}|}
  in
  let plans =
    match E.Manifest.of_string ~known_experiments:[] manifest with
    | Ok jobs -> jobs
    | Error e -> Alcotest.failf "manifest failed: %s" e
  in
  let traced jobs =
    let path = Filename.temp_file "hyp_trace" ".jsonl" in
    Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
    Obs.reset_for_tests ();
    Obs.enable_trace path;
    ignore (run_batch ~jobs ~cache_dir:None plans : E.Batch.report);
    Obs.close ();
    Obs.reset_for_tests ();
    match Obs.Report.load path with
    | Ok data -> Obs.Report.structure data
    | Error msg -> Alcotest.failf "report load (--jobs %d): %s" jobs msg
  in
  let serial = traced 1 in
  let parallel = traced 8 in
  (* engine.job spans carry the job fingerprint as their trace id, and
     the workers' solver spans (multilevel etc.) sit underneath them. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "job spans carry trace ids" true
    (contains serial "engine.job[");
  Alcotest.(check bool) "solver spans merged under the jobs" true
    (contains serial "multilevel");
  Alcotest.(check string)
    "span forest identical across worker counts" serial parallel

(* Bench comparison: the report diffing behind `hypartition bench
   --compare` and the CI perf-smoke gate. *)

let bench_doc ?(rev = "abc1234") ~experiments ~micro () =
  let open Obs.Json in
  Obj
    [
      ("schema", Str Obs.bench_schema_version);
      ("git_rev", Str rev);
      ( "experiments",
        Arr
          (List.map
             (fun (id, wall) ->
               Obj [ ("id", Str id); ("wall_s", Float wall) ])
             experiments) );
      ( "micro",
        Arr
          (List.map
             (fun (name, ns) ->
               Obj [ ("name", Str name); ("ns_per_run", Float ns) ])
             micro) );
    ]

let compare_docs ?threshold_pct ~baseline ~current () =
  match E.Bench_compare.compare_json ?threshold_pct ~baseline ~current () with
  | Ok cmp -> cmp
  | Error msg -> Alcotest.failf "compare_json failed: %s" msg

let test_bench_compare_gate () =
  let baseline =
    bench_doc ~rev:"old0000"
      ~experiments:[ ("E7", 1.0); ("E13", 2.0) ]
      ~micro:[ ("fm", 5.0e6) ] ()
  in
  (* Within threshold: 20% slower on E7 passes at the default 25%. *)
  let current =
    bench_doc ~experiments:[ ("E7", 1.2); ("E13", 1.0) ] ~micro:[] ()
  in
  let cmp = compare_docs ~baseline ~current () in
  Alcotest.(check bool) "20% regression passes at 25%" true
    (E.Bench_compare.ok cmp);
  Alcotest.(check (list string)) "retired rows reported" [ "fm" ]
    cmp.E.Bench_compare.only_baseline;
  (* Beyond threshold: the same report fails a 10% gate, blaming E7. *)
  let cmp = compare_docs ~threshold_pct:10.0 ~baseline ~current () in
  Alcotest.(check bool) "20% regression fails at 10%" false
    (E.Bench_compare.ok cmp);
  (match E.Bench_compare.regressions cmp with
  | [ r ] -> Alcotest.(check string) "E7 is the regression" "E7" r.E.Bench_compare.name
  | rs -> Alcotest.failf "expected one regression, got %d" (List.length rs));
  Alcotest.(check bool) "speedup of the E13 row" true
    (match cmp.E.Bench_compare.rows with
    | _ :: r :: _ -> abs_float (E.Bench_compare.speedup r -. 2.0) < 1e-9
    | _ -> false)

let test_bench_compare_micro_informational () =
  (* A 10x micro regression never gates; a missing current row never
     gates (an old baseline must stay usable as benchmarks change). *)
  let baseline =
    bench_doc ~experiments:[ ("E7", 1.0) ] ~micro:[ ("fm", 1.0e6) ] ()
  in
  let current =
    bench_doc
      ~experiments:[ ("E7", 1.0); ("E9", 5.0) ]
      ~micro:[ ("fm", 1.0e7) ] ()
  in
  let cmp = compare_docs ~threshold_pct:5.0 ~baseline ~current () in
  Alcotest.(check bool) "micro rows never gate" true (E.Bench_compare.ok cmp);
  Alcotest.(check (list string)) "new rows reported" [ "E9" ]
    cmp.E.Bench_compare.only_current

let test_bench_compare_json_roundtrip () =
  let baseline = bench_doc ~experiments:[ ("E7", 1.0) ] ~micro:[] () in
  let current = bench_doc ~experiments:[ ("E7", 2.0) ] ~micro:[] () in
  let cmp = compare_docs ~baseline ~current () in
  (match Obs.Json.parse (Obs.Json.to_string (E.Bench_compare.to_json cmp)) with
  | Error e -> Alcotest.failf "compare JSON does not reparse: %s" e
  | Ok doc ->
      (match Option.bind (Obs.Json.member "schema" doc) Obs.Json.get_str with
      | Some s ->
          Alcotest.(check string) "schema tag" E.Bench_compare.schema_version s
      | None -> Alcotest.fail "missing schema tag");
      (match Obs.Json.member "ok" doc with
      | Some (Obs.Json.Bool false) -> ()
      | _ -> Alcotest.fail "ok must be false for a 2x regression"));
  (* Malformed inputs surface as errors, not exceptions. *)
  (match
     E.Bench_compare.compare_json ~baseline:(Obs.Json.Obj [])
       ~current:(Obs.Json.Obj [ ("experiments", Obs.Json.Arr [ Obs.Json.Obj [] ]) ])
       ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "row without id/wall_s must be rejected");
  match E.Bench_compare.compare_json ~threshold_pct:0.0 ~baseline ~current () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-positive threshold must be rejected"

let suite =
  [
    Alcotest.test_case "FNV-1a golden vectors" `Quick test_fnv1a_golden;
    Alcotest.test_case "fingerprint identity" `Quick test_fingerprint_identity;
    Alcotest.test_case "fingerprint hashes file content" `Quick
      test_fingerprint_file_content;
    Alcotest.test_case "spec JSON roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "record JSON roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "cache roundtrip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache rejects defects" `Quick test_cache_rejects_defects;
    Alcotest.test_case "manifest expansion" `Quick test_manifest_expansion;
    Alcotest.test_case "manifest errors" `Quick test_manifest_errors;
    Alcotest.test_case "runner execute" `Quick test_runner_execute;
    Alcotest.test_case "runner determinism" `Quick test_runner_determinism;
    Alcotest.test_case "pool crash isolation" `Quick test_pool_crash_isolation;
    Alcotest.test_case "pool timeout kill" `Quick test_pool_timeout_kill;
    Alcotest.test_case "pool never retries deterministic failures" `Quick
      test_pool_failed_not_retried;
    Alcotest.test_case "cache concurrent same-fingerprint stores" `Quick
      test_cache_concurrent_stores;
    Alcotest.test_case "cache reader racing writer" `Quick
      test_cache_reader_racing_writer;
    Alcotest.test_case "batch cache second pass" `Quick
      test_batch_cache_second_pass;
    Alcotest.test_case "trace structure across parallelism" `Quick
      test_trace_structure_across_parallelism;
    Alcotest.test_case "batch determinism across parallelism" `Quick
      test_batch_determinism_across_parallelism;
    Alcotest.test_case "bench compare gate" `Quick test_bench_compare_gate;
    Alcotest.test_case "bench compare micro informational" `Quick
      test_bench_compare_micro_informational;
    Alcotest.test_case "bench compare JSON + errors" `Quick
      test_bench_compare_json_roundtrip;
  ]
