(* Tests for maximum-weight perfect matching (the b2 = 2 hierarchy
   assignment engine). *)

module M = Pairing

let weight_fn_of_matrix m = fun a b -> m.(a).(b)

let random_matrix rng k =
  let m = Array.make_matrix k k 0 in
  for a = 0 to k - 1 do
    for b = a + 1 to k - 1 do
      let w = Support.Rng.int rng 100 in
      m.(a).(b) <- w;
      m.(b).(a) <- w
    done
  done;
  m

(* Reference: brute force over all pairings by recursion. *)
let brute_force_best ~k w =
  let best = ref min_int in
  let used = Array.make k false in
  let rec go acc =
    let rec first i = if i >= k then None else if used.(i) then first (i + 1) else Some i in
    match first 0 with
    | None -> if acc > !best then best := acc
    | Some a ->
        used.(a) <- true;
        for b = a + 1 to k - 1 do
          if not used.(b) then begin
            used.(b) <- true;
            go (acc + w a b);
            used.(b) <- false
          end
        done;
        used.(a) <- false
  in
  go 0;
  !best

let test_exact_small () =
  let m = [| [| 0; 5; 1; 1 |]; [| 5; 0; 1; 1 |]; [| 1; 1; 0; 7 |]; [| 1; 1; 7; 0 |] |] in
  let w = weight_fn_of_matrix m in
  let pairs = M.exact_max_weight ~k:4 w in
  Alcotest.(check bool) "perfect" true (M.is_perfect_pairing ~k:4 pairs);
  Alcotest.(check int) "weight 12" 12 (M.pairing_weight w pairs)

let test_exact_vs_brute_force () =
  let rng = Support.Rng.create 31 in
  List.iter
    (fun k ->
      for _ = 1 to 10 do
        let m = random_matrix rng k in
        let w = weight_fn_of_matrix m in
        let pairs = M.exact_max_weight ~k w in
        Alcotest.(check bool) "perfect pairing" true
          (M.is_perfect_pairing ~k pairs);
        Alcotest.(check int) "matches brute force" (brute_force_best ~k w)
          (M.pairing_weight w pairs)
      done)
    [ 2; 4; 6; 8 ]

let test_heuristic_quality () =
  let rng = Support.Rng.create 37 in
  for _ = 1 to 10 do
    let k = 10 in
    let m = random_matrix rng k in
    let w = weight_fn_of_matrix m in
    let exact = M.pairing_weight w (M.exact_max_weight ~k w) in
    let heur = M.pairing_weight w (M.heuristic_max_weight ~k w) in
    Alcotest.(check bool) "heuristic is a valid pairing" true
      (M.is_perfect_pairing ~k (M.heuristic_max_weight ~k w));
    Alcotest.(check bool) "heuristic <= exact" true (heur <= exact);
    Alcotest.(check bool) "heuristic within 25%" true
      (float_of_int heur >= 0.75 *. float_of_int exact)
  done

let test_two_opt_improves () =
  let rng = Support.Rng.create 41 in
  for _ = 1 to 10 do
    let k = 8 in
    let m = random_matrix rng k in
    let w = weight_fn_of_matrix m in
    let greedy = M.greedy_max_weight ~k w in
    let improved = M.two_opt ~k w greedy in
    Alcotest.(check bool) "two_opt never worse" true
      (M.pairing_weight w improved >= M.pairing_weight w greedy)
  done

let test_edge_cases () =
  Alcotest.(check int) "k=0" 0 (Array.length (M.exact_max_weight ~k:0 (fun _ _ -> 0)));
  Alcotest.check_raises "odd k"
    (Invalid_argument "Pairing.max_weight: node count must be even and non-negative")
    (fun () -> ignore (M.exact_max_weight ~k:3 (fun _ _ -> 0)));
  (* Negative weights are fine. *)
  let pairs = M.exact_max_weight ~k:2 (fun _ _ -> -5) in
  Alcotest.(check int) "negative weight pair" (-5)
    (M.pairing_weight (fun _ _ -> -5) pairs)

let qcheck_exact_dominates_heuristic =
  QCheck.Test.make ~name:"exact matching >= greedy+2opt" ~count:50
    QCheck.(pair (int_range 1 5) small_int)
    (fun (half, seed) ->
      let k = 2 * half in
      let rng = Support.Rng.create seed in
      let m = random_matrix rng k in
      let w = fun a b -> m.(a).(b) in
      M.pairing_weight w (M.exact_max_weight ~k w)
      >= M.pairing_weight w (M.heuristic_max_weight ~k w))

let suite =
  [
    Alcotest.test_case "exact small" `Quick test_exact_small;
    Alcotest.test_case "exact vs brute force" `Quick test_exact_vs_brute_force;
    Alcotest.test_case "heuristic quality" `Quick test_heuristic_quality;
    Alcotest.test_case "two-opt improves" `Quick test_two_opt_improves;
    Alcotest.test_case "edge cases" `Quick test_edge_cases;
    QCheck_alcotest.to_alcotest qcheck_exact_dominates_heuristic;
  ]
