(* Benchmark harness.

   Default: run the full experiment suite (E1 .. E16) — one section per
   table/figure/claim of the paper (see DESIGN.md and EXPERIMENTS.md) —
   through the lib/engine batch engine, followed by the Bechamel
   micro-benchmarks of the core kernels, and write a machine-readable
   report (schema Obs.bench_schema_version) to BENCH_<gitrev>.json.

   usage: main.exe [--micro] [--experiments] [E<k> ...] [--out FILE]
                   [--jobs N] [--threads N] [--timeout SECS] [--cache-dir DIR]
                   [--no-cache]

     --micro          micro-benchmarks only (plus any E<k> given)
     --threads N      solver domains per worker, stamped into provenance
                      (the scaling-curve micro rows always sweep 1/2/4/8)
     --experiments    experiment suite only
     E<k> ...         run just the named experiments
     --out FILE       write the JSON report to FILE instead of
                      BENCH_<gitrev>.json
     --jobs N         engine worker processes for the experiment suite
     --timeout SECS   per-experiment wall-clock budget (SIGKILL on expiry)
     --cache-dir DIR  engine result cache (default .hypartition-cache)
     --no-cache       recompute everything, touch no cache

   Experiments run as engine jobs: each in a forked worker with
   observability collection on, so its section of the report carries the
   engine timing (wall time, attempts, worker slot, cached flag) plus the
   counters, gauges, histograms and span rollup the instrumented solvers
   produced (cost.* histograms give the cut quality of every cost
   evaluation without extra plumbing). *)

open Bechamel

let connectivity_bench () =
  let rng = Support.Rng.create 1 in
  let hg = Workloads.Rand_hg.uniform rng ~n:2000 ~m:3000 ~min_size:2 ~max_size:8 in
  let part = Partition.random rng ~k:8 ~n:2000 in
  Test.make ~name:"connectivity cost (n=2000, m=3000, k=8)"
    (Staged.stage (fun () -> ignore (Partition.connectivity_cost hg part)))

let cutnet_bench () =
  let rng = Support.Rng.create 2 in
  let hg = Workloads.Rand_hg.uniform rng ~n:2000 ~m:3000 ~min_size:2 ~max_size:8 in
  let part = Partition.random rng ~k:8 ~n:2000 in
  Test.make ~name:"cut-net cost (n=2000, m=3000, k=8)"
    (Staged.stage (fun () -> ignore (Partition.cutnet_cost hg part)))

let fm_pass_bench () =
  let rng = Support.Rng.create 3 in
  let hg = Workloads.Rand_hg.uniform rng ~n:1000 ~m:1500 ~min_size:2 ~max_size:6 in
  Test.make ~name:"FM refinement (n=1000, m=1500, k=2)"
    (Staged.stage (fun () ->
         let part = Solvers.Initial.random_balanced ~eps:0.03 rng hg ~k:2 in
         ignore
           (Solvers.Refine.refine
              ~config:{ Solvers.Refine.default_config with eps = 0.03 }
              hg part)))

(* Same kernel at k = 8: the gain cache pays for itself when recomputing a
   move delta costs O(deg * k) but reading the cached row costs O(k). *)
let fm_kway_bench () =
  let rng = Support.Rng.create 3 in
  let hg = Workloads.Rand_hg.uniform rng ~n:1000 ~m:1500 ~min_size:2 ~max_size:6 in
  Test.make ~name:"FM refinement (n=1000, m=1500, k=8)"
    (Staged.stage (fun () ->
         let part = Solvers.Initial.random_balanced ~eps:0.03 rng hg ~k:8 in
         ignore
           (Solvers.Refine.refine
              ~config:{ Solvers.Refine.default_config with eps = 0.03 }
              hg part)))

let coarsen_bench () =
  let rng = Support.Rng.create 4 in
  let hg = Workloads.Rand_hg.uniform rng ~n:2000 ~m:3000 ~min_size:2 ~max_size:6 in
  Test.make ~name:"coarsening level (n=2000, m=3000)"
    (Staged.stage (fun () ->
         ignore (Solvers.Coarsen.one_level rng hg ~max_cluster_weight:8)))

let multilevel_bench () =
  let rng = Support.Rng.create 5 in
  let hg = Workloads.Rand_hg.uniform rng ~n:1000 ~m:1500 ~min_size:2 ~max_size:6 in
  Test.make ~name:"multilevel end-to-end (n=1000, m=1500, k=4)"
    (Staged.stage (fun () ->
         ignore (Solvers.Multilevel.partition rng hg ~k:4)))

(* Scaling curve for the domain-based multilevel path: the same solve at
   threads = 1, 2, 4, 8.  The threads=1 row is the parallel algorithm run
   entirely on the caller — its gap to "multilevel end-to-end" prices the
   propose/commit structure itself; the higher rows are the scaling.  All
   four rows compute the identical partition (deterministic mode), so the
   curve isolates wall-clock.  New row names: a baseline without them
   reports, never gates (micro rows are informational). *)
let par_multilevel_bench ~threads () =
  let rng = Support.Rng.create 5 in
  let hg = Workloads.Rand_hg.uniform rng ~n:2000 ~m:3000 ~min_size:2 ~max_size:6 in
  Test.make
    ~name:
      (Printf.sprintf "parallel multilevel (n=2000, m=3000, k=4, threads=%d)"
         threads)
    (Staged.stage (fun () ->
         ignore
           (Solvers.Multilevel.partition
              ~config:{ Solvers.Multilevel.default_config with threads }
              rng hg ~k:4)))

let recognition_bench () =
  let rng = Support.Rng.create 6 in
  let dag = Workloads.Dag_gen.layered rng ~layers:40 ~width:50 ~max_indegree:3 in
  let hg = Hyperdag.hypergraph_of_dag dag in
  Test.make ~name:"hyperDAG recognition (n=2000)"
    (Staged.stage (fun () -> ignore (Hyperdag.recognize hg)))

let matching_bench () =
  let rng = Support.Rng.create 7 in
  let k = 16 in
  let m = Array.init k (fun _ -> Array.init k (fun _ -> Support.Rng.int rng 100)) in
  let w a b = m.(a).(b) in
  Test.make ~name:"matching DP (k=16)"
    (Staged.stage (fun () -> ignore (Pairing.exact_max_weight ~k w)))

let kl_bench () =
  let rng = Support.Rng.create 9 in
  let hg = Workloads.Rand_hg.uniform rng ~n:300 ~m:450 ~min_size:2 ~max_size:5 in
  Test.make ~name:"KL swap refinement (n=300, m=450, k=2)"
    (Staged.stage (fun () ->
         let part = Solvers.Initial.random_balanced ~eps:0.0 rng hg ~k:2 in
         ignore (Solvers.Kl_swap.refine hg part)))

let vcycle_bench () =
  let rng = Support.Rng.create 10 in
  let hg = Workloads.Rand_hg.uniform rng ~n:1000 ~m:1500 ~min_size:2 ~max_size:6 in
  let part = Solvers.Multilevel.partition rng hg ~k:4 in
  Test.make ~name:"v-cycle (n=1000, m=1500, k=4)"
    (Staged.stage (fun () ->
         ignore (Solvers.Multilevel.vcycle rng hg (Partition.copy part))))

let hier_cost_bench () =
  let rng = Support.Rng.create 8 in
  let hg = Workloads.Rand_hg.uniform rng ~n:1000 ~m:1500 ~min_size:2 ~max_size:6 in
  let topo = Hierarchy.Topology.uniform_binary ~depth:3 ~g:4.0 in
  let part = Partition.random rng ~k:8 ~n:1000 in
  Test.make ~name:"hierarchical cost (n=1000, d=3)"
    (Staged.stage (fun () -> ignore (Hierarchy.Hier_cost.cost topo hg part)))

(* Returns (name, estimated ns/run) rows for the JSON report. *)
let micro_benchmarks () =
  print_endline "\n== Bechamel micro-benchmarks (time per run) ==";
  let tests =
    [
      connectivity_bench (); cutnet_bench (); fm_pass_bench ();
      fm_kway_bench (); coarsen_bench (); multilevel_bench ();
      recognition_bench ();
      matching_bench (); kl_bench (); vcycle_bench (); hier_cost_bench ();
    ]
    @ List.map (fun threads -> par_multilevel_bench ~threads ()) [ 1; 2; 4; 8 ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              let pretty =
                if est >= 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
                else if est >= 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
                else if est >= 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
                else Printf.sprintf "%8.0f ns" est
              in
              rows := (name, est) :: !rows;
              Printf.printf "  %-48s %s/run\n%!" name pretty
          | _ -> Printf.printf "  %-48s (no estimate)\n%!" name)
        analyzed)
    tests;
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* JSON report (schema Obs.bench_schema_version) *)

(* One report section per experiment outcome: id, engine timing and the
   worker's observability snapshot (counters, gauges, histograms, span
   rollup), lifted to the top level of the section as in bench/1. *)
let experiment_row (o : Engine.Batch.outcome) =
  let record = o.Engine.Batch.record in
  let open Obs.Json in
  let metric name =
    List.assoc_opt name record.Engine.Record.metrics
  in
  let observed_fields =
    match record.Engine.Record.observed with
    | Some (Obj fields) -> fields
    | _ -> []
  in
  Obj
    ([
       ( "id",
         match metric "id" with
         | Some v -> v
         | None -> Str (Engine.Spec.describe record.Engine.Record.job) );
     ]
    @ (match metric "what" with Some v -> [ ("what", v) ] | None -> [])
    @ [
        ( "status",
          Str (Engine.Record.status_name record.Engine.Record.status) );
        ( "wall_s",
          Float record.Engine.Record.timing.Engine.Record.wall_s );
        ("attempts", Int record.Engine.Record.timing.Engine.Record.attempts);
        ("worker", Int record.Engine.Record.timing.Engine.Record.worker);
        ("cached", Bool o.Engine.Batch.cached);
      ]
    @ observed_fields)

let write_report ~out ~rev ~jobs ~threads ~report ~micro =
  let open Obs.Json in
  let engine_section =
    match (report : Engine.Batch.report option) with
    | None ->
        (* Micro-only run: no experiments went through the engine. *)
        Obj [ ("jobs", Int jobs) ]
    | Some r ->
        Obj
          [
            ("jobs", Int jobs);
            ("wall_s", Float r.Engine.Batch.wall_s);
            ("stats", Engine.Batch.stats_to_json r.Engine.Batch.stats);
          ]
  in
  let experiments =
    match report with
    | None -> []
    | Some r -> List.map experiment_row r.Engine.Batch.outcomes
  in
  let doc =
    Obj
      [
        ("schema", Str Obs.bench_schema_version);
        ("git_rev", Str rev);
        ("ocaml_version", Str Sys.ocaml_version);
        (* Full provenance object (hostname, word size, ...) — git_rev and
           ocaml_version stay at the top level too so bench/2 consumers
           keep working unchanged. *)
        ( "provenance",
          Obj
            (Engine.Provenance.collect ~jobs
               ?threads:(if threads > 0 then Some threads else None)
               ()) );
        ("unix_time", Float (Unix.time ()));
        ("engine", engine_section);
        ("experiments", Arr experiments);
        ( "micro",
          Arr
            (List.map
               (fun (name, ns) ->
                 Obj [ ("name", Str name); ("ns_per_run", Float ns) ])
               micro) );
      ]
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (to_string doc);
      output_char oc '\n');
  Printf.printf "\nwrote %s\n" out

let usage () =
  prerr_endline
    "usage: main.exe [--micro] [--experiments] [E<k> ...] [--out FILE]\n\
    \                [--jobs N] [--threads N] [--timeout SECS] [--cache-dir DIR]\n\
    \                [--no-cache]\n\
    \                [--compare BASELINE.json] [--threshold PCT]"

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline msg;
      usage ();
      exit 2)
    fmt

let () =
  let micro_only = ref false in
  let experiments_only = ref false in
  let picked = ref [] in
  let out = ref None in
  let jobs = ref 1 in
  let threads = ref 0 in
  let timeout = ref None in
  let cache_dir = ref Engine.Batch.default_cache_dir in
  let no_cache = ref false in
  let compare_with = ref None in
  let threshold = ref 25.0 in
  let int_value flag v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> n
    | _ -> die "%s needs a positive integer, got %S" flag v
  in
  let float_value flag v =
    match float_of_string_opt v with
    | Some f when f > 0.0 -> f
    | _ -> die "%s needs a positive number, got %S" flag v
  in
  let rec parse = function
    | [] -> ()
    | "--micro" :: rest ->
        micro_only := true;
        parse rest
    | "--experiments" :: rest ->
        experiments_only := true;
        parse rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := int_value "--jobs" v;
        parse rest
    | "--threads" :: v :: rest ->
        threads := int_value "--threads" v;
        parse rest
    | "--timeout" :: v :: rest ->
        timeout := Some (float_value "--timeout" v);
        parse rest
    | "--cache-dir" :: dir :: rest ->
        cache_dir := dir;
        parse rest
    | "--no-cache" :: rest ->
        no_cache := true;
        parse rest
    | "--compare" :: file :: rest ->
        compare_with := Some file;
        parse rest
    | "--threshold" :: v :: rest ->
        threshold := float_value "--threshold" v;
        parse rest
    | [ ("--out" | "--jobs" | "--threads" | "--timeout" | "--cache-dir"
        | "--compare" | "--threshold") as flag ] ->
        die "%s needs a value" flag
    | id :: rest when String.length id >= 2 && id.[0] = 'E' ->
        if List.mem id Experiments.ids then begin
          picked := !picked @ [ id ];
          parse rest
        end
        else
          die "unknown experiment %s; valid experiments: %s" id
            (String.concat " " Experiments.ids)
    | arg :: _ -> die "unknown argument %s" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let experiment_ids =
    if !picked <> [] then !picked
    else if !micro_only && not !experiments_only then []
    else Experiments.ids
  in
  let run_micro = !micro_only || ((not !experiments_only) && !picked = []) in
  let report =
    if experiment_ids = [] then None
    else begin
      let plans =
        List.map
          (fun id ->
            {
              Engine.Spec.instance = Engine.Spec.Experiment id;
              config = Engine.Spec.default_config;
              seed = 0;
              timeout_s = !timeout;
            })
          experiment_ids
      in
      let config =
        {
          Engine.Batch.pool =
            {
              Engine.Pool.default_config with
              jobs = !jobs;
              default_timeout_s = !timeout;
              handle_sigint = true;
              solver_threads = !threads;
            };
          cache_dir = (if !no_cache then None else Some !cache_dir);
        }
      in
      let on_event = function
        | Engine.Batch.Cache_hit { record; _ } ->
            Printf.printf "[cache]   %s\n%!"
              (Engine.Spec.describe record.Engine.Record.job)
        | Engine.Batch.Unrunnable { record; _ } ->
            Printf.printf "[error]   %s\n%!"
              (Engine.Spec.describe record.Engine.Record.job)
        | Engine.Batch.Pool (Engine.Pool.Started { job; worker; _ }) ->
            Printf.printf "[w%d]      %s\n%!" worker
              (Engine.Spec.describe job)
        | Engine.Batch.Pool (Engine.Pool.Finished { record; _ }) ->
            Printf.printf "[%s] %6.2fs %s\n%!"
              (Engine.Record.status_name record.Engine.Record.status)
              record.Engine.Record.timing.Engine.Record.wall_s
              (Engine.Spec.describe record.Engine.Record.job)
        | Engine.Batch.Pool (Engine.Pool.Retrying { job; attempt; _ }) ->
            Printf.printf "[retry]   %s (attempt %d)\n%!"
              (Engine.Spec.describe job) attempt
        | Engine.Batch.Pool (Engine.Pool.Interrupted { pending }) ->
            Printf.printf "[sigint]  skipping %d queued experiments\n%!"
              pending
      in
      match Engine.Batch.run ~on_event config plans with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          exit 2
      | Ok report -> Some report
    end
  in
  (* Micro rows must stay AFTER the experiment pool: the parallel
     multilevel rows spawn domains, and the runtime refuses Unix.fork
     in a process that ever created one (fork first, domains second —
     the lib/parallel lifecycle contract). *)
  let micro_rows = if run_micro then micro_benchmarks () else [] in
  let rev = Engine.Provenance.git_rev () in
  let out =
    match !out with
    | Some file -> file
    | None -> Printf.sprintf "BENCH_%s.json" rev
  in
  write_report ~out ~rev ~jobs:!jobs ~threads:!threads ~report
    ~micro:micro_rows;
  (* Regression gate: compare the report just written against a committed
     baseline.  Experiments gate on wall time at the given threshold; micro
     rows are informational (see Engine.Bench_compare). *)
  (match !compare_with with
  | None -> ()
  | Some baseline -> (
      match
        Engine.Bench_compare.compare_files ~threshold_pct:!threshold ~baseline
          ~current:out ()
      with
      | Error msg ->
          Printf.eprintf "compare error: %s\n" msg;
          exit 2
      | Ok cmp ->
          print_newline ();
          print_string (Engine.Bench_compare.render cmp);
          if not (Engine.Bench_compare.ok cmp) then exit 1));
  match report with
  | Some r when not (Engine.Batch.all_ok r) -> exit 1
  | _ -> ()
