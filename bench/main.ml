(* Benchmark harness.

   Default: run the full experiment suite (E1 .. E16) — one section per
   table/figure/claim of the paper (see DESIGN.md and EXPERIMENTS.md) —
   followed by the Bechamel micro-benchmarks of the core kernels, and
   write a machine-readable report (schema Obs.bench_schema_version) to
   BENCH_<gitrev>.json.

   usage: main.exe [--micro] [--experiments] [E<k> ...] [--out FILE]

     --micro          micro-benchmarks only (plus any E<k> given)
     --experiments    experiment suite only
     E<k> ...         run just the named experiments
     --out FILE       write the JSON report to FILE instead of
                      BENCH_<gitrev>.json

   Each experiment runs with observability collection on: its section of
   the report carries wall time plus the counters, gauges, histograms and
   the span rollup the instrumented solvers produced (cost.* histograms
   give the cut quality of every cost evaluation without extra plumbing). *)

open Bechamel

let connectivity_bench () =
  let rng = Support.Rng.create 1 in
  let hg = Workloads.Rand_hg.uniform rng ~n:2000 ~m:3000 ~min_size:2 ~max_size:8 in
  let part = Partition.random rng ~k:8 ~n:2000 in
  Test.make ~name:"connectivity cost (n=2000, m=3000, k=8)"
    (Staged.stage (fun () -> ignore (Partition.connectivity_cost hg part)))

let cutnet_bench () =
  let rng = Support.Rng.create 2 in
  let hg = Workloads.Rand_hg.uniform rng ~n:2000 ~m:3000 ~min_size:2 ~max_size:8 in
  let part = Partition.random rng ~k:8 ~n:2000 in
  Test.make ~name:"cut-net cost (n=2000, m=3000, k=8)"
    (Staged.stage (fun () -> ignore (Partition.cutnet_cost hg part)))

let fm_pass_bench () =
  let rng = Support.Rng.create 3 in
  let hg = Workloads.Rand_hg.uniform rng ~n:1000 ~m:1500 ~min_size:2 ~max_size:6 in
  Test.make ~name:"FM refinement (n=1000, m=1500, k=2)"
    (Staged.stage (fun () ->
         let part = Solvers.Initial.random_balanced ~eps:0.03 rng hg ~k:2 in
         ignore
           (Solvers.Refine.refine
              ~config:{ Solvers.Refine.default_config with eps = 0.03 }
              hg part)))

let coarsen_bench () =
  let rng = Support.Rng.create 4 in
  let hg = Workloads.Rand_hg.uniform rng ~n:2000 ~m:3000 ~min_size:2 ~max_size:6 in
  Test.make ~name:"coarsening level (n=2000, m=3000)"
    (Staged.stage (fun () ->
         ignore (Solvers.Coarsen.one_level rng hg ~max_cluster_weight:8)))

let multilevel_bench () =
  let rng = Support.Rng.create 5 in
  let hg = Workloads.Rand_hg.uniform rng ~n:1000 ~m:1500 ~min_size:2 ~max_size:6 in
  Test.make ~name:"multilevel end-to-end (n=1000, m=1500, k=4)"
    (Staged.stage (fun () ->
         ignore (Solvers.Multilevel.partition rng hg ~k:4)))

let recognition_bench () =
  let rng = Support.Rng.create 6 in
  let dag = Workloads.Dag_gen.layered rng ~layers:40 ~width:50 ~max_indegree:3 in
  let hg = Hyperdag.hypergraph_of_dag dag in
  Test.make ~name:"hyperDAG recognition (n=2000)"
    (Staged.stage (fun () -> ignore (Hyperdag.recognize hg)))

let matching_bench () =
  let rng = Support.Rng.create 7 in
  let k = 16 in
  let m = Array.init k (fun _ -> Array.init k (fun _ -> Support.Rng.int rng 100)) in
  let w a b = m.(a).(b) in
  Test.make ~name:"matching DP (k=16)"
    (Staged.stage (fun () -> ignore (Pairing.exact_max_weight ~k w)))

let kl_bench () =
  let rng = Support.Rng.create 9 in
  let hg = Workloads.Rand_hg.uniform rng ~n:300 ~m:450 ~min_size:2 ~max_size:5 in
  Test.make ~name:"KL swap refinement (n=300, m=450, k=2)"
    (Staged.stage (fun () ->
         let part = Solvers.Initial.random_balanced ~eps:0.0 rng hg ~k:2 in
         ignore (Solvers.Kl_swap.refine hg part)))

let vcycle_bench () =
  let rng = Support.Rng.create 10 in
  let hg = Workloads.Rand_hg.uniform rng ~n:1000 ~m:1500 ~min_size:2 ~max_size:6 in
  let part = Solvers.Multilevel.partition rng hg ~k:4 in
  Test.make ~name:"v-cycle (n=1000, m=1500, k=4)"
    (Staged.stage (fun () ->
         ignore (Solvers.Multilevel.vcycle rng hg (Partition.copy part))))

let hier_cost_bench () =
  let rng = Support.Rng.create 8 in
  let hg = Workloads.Rand_hg.uniform rng ~n:1000 ~m:1500 ~min_size:2 ~max_size:6 in
  let topo = Hierarchy.Topology.uniform_binary ~depth:3 ~g:4.0 in
  let part = Partition.random rng ~k:8 ~n:1000 in
  Test.make ~name:"hierarchical cost (n=1000, d=3)"
    (Staged.stage (fun () -> ignore (Hierarchy.Hier_cost.cost topo hg part)))

(* Returns (name, estimated ns/run) rows for the JSON report. *)
let micro_benchmarks () =
  print_endline "\n== Bechamel micro-benchmarks (time per run) ==";
  let tests =
    [
      connectivity_bench (); cutnet_bench (); fm_pass_bench ();
      coarsen_bench (); multilevel_bench (); recognition_bench ();
      matching_bench (); kl_bench (); vcycle_bench (); hier_cost_bench ();
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              let pretty =
                if est >= 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
                else if est >= 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
                else if est >= 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
                else Printf.sprintf "%8.0f ns" est
              in
              rows := (name, est) :: !rows;
              Printf.printf "  %-48s %s/run\n%!" name pretty
          | _ -> Printf.printf "  %-48s (no estimate)\n%!" name)
        analyzed)
    tests;
  List.rev !rows

(* ------------------------------------------------------------------ *)
(* JSON report (schema Obs.bench_schema_version) *)

let git_rev () =
  try
    let ic =
      Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let json_of_snapshot (snap : Obs.snapshot) =
  let open Obs.Json in
  [
    ( "counters",
      Obj (List.map (fun (name, v) -> (name, Int v)) snap.Obs.counters) );
    ( "gauges",
      Obj (List.map (fun (name, v) -> (name, Float v)) snap.Obs.gauges) );
    ( "histograms",
      Obj
        (List.map
           (fun (name, h) ->
             ( name,
               Obj
                 [
                   ("count", Int h.Obs.h_count);
                   ("sum", Float h.Obs.h_sum);
                   ("min", Float h.Obs.h_min);
                   ("max", Float h.Obs.h_max);
                   ("last", Float h.Obs.h_last);
                 ] ))
           snap.Obs.histograms) );
    ( "spans",
      Arr
        (List.map
           (fun s ->
             Obj
               [
                 ("path", Str s.Obs.s_path);
                 ("count", Int s.Obs.s_count);
                 ("total_s", Float (Support.Util.seconds_of_ns s.Obs.s_total_ns));
                 ("min_s", Float (Support.Util.seconds_of_ns s.Obs.s_min_ns));
                 ("max_s", Float (Support.Util.seconds_of_ns s.Obs.s_max_ns));
               ])
           snap.Obs.spans) );
  ]

(* Run one experiment with metric collection on; its report section is
   the wall time plus everything the instrumentation recorded. *)
let run_experiment_json (id, what, run) =
  Printf.printf "\n%s\n### %s — %s\n%s\n"
    (String.make 72 '#') id what (String.make 72 '#');
  Obs.reset_stats ();
  let t0 = Support.Util.monotonic_ns () in
  run ();
  let wall =
    Support.Util.seconds_of_ns
      (Int64.sub (Support.Util.monotonic_ns ()) t0)
  in
  let snap = Obs.snapshot () in
  let open Obs.Json in
  Obj
    ([ ("id", Str id); ("what", Str what); ("wall_s", Float wall) ]
    @ json_of_snapshot snap)

let write_report ~out ~rev ~experiments ~micro =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("schema", Str Obs.bench_schema_version);
        ("git_rev", Str rev);
        ("ocaml_version", Str Sys.ocaml_version);
        ("unix_time", Float (Unix.time ()));
        ("experiments", Arr experiments);
        ( "micro",
          Arr
            (List.map
               (fun (name, ns) ->
                 Obj [ ("name", Str name); ("ns_per_run", Float ns) ])
               micro) );
      ]
  in
  Out_channel.with_open_text out (fun oc ->
      output_string oc (to_string doc);
      output_char oc '\n');
  Printf.printf "\nwrote %s\n" out

let usage () =
  prerr_endline
    "usage: main.exe [--micro] [--experiments] [E<k> ...] [--out FILE]"

let () =
  let micro_only = ref false in
  let experiments_only = ref false in
  let picked = ref [] in
  let out = ref None in
  let rec parse = function
    | [] -> ()
    | "--micro" :: rest ->
        micro_only := true;
        parse rest
    | "--experiments" :: rest ->
        experiments_only := true;
        parse rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse rest
    | [ "--out" ] ->
        usage ();
        exit 1
    | id :: rest when String.length id >= 2 && id.[0] = 'E' ->
        if List.mem id Experiments.ids then begin
          picked := !picked @ [ id ];
          parse rest
        end
        else begin
          Printf.eprintf "unknown experiment %s; valid experiments: %s\n" id
            (String.concat " " Experiments.ids);
          exit 1
        end
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        usage ();
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  let run_experiments =
    if !picked <> [] then
      List.filter (fun (id, _, _) -> List.mem id !picked) Experiments.all
    else if !micro_only && not !experiments_only then []
    else Experiments.all
  in
  let run_micro =
    !micro_only || ((not !experiments_only) && !picked = [])
  in
  Obs.set_enabled true;
  let experiment_rows = List.map run_experiment_json run_experiments in
  Obs.set_enabled false;
  let micro_rows = if run_micro then micro_benchmarks () else [] in
  let rev = git_rev () in
  let out =
    match !out with
    | Some file -> file
    | None -> Printf.sprintf "BENCH_%s.json" rev
  in
  write_report ~out ~rev ~experiments:experiment_rows ~micro:micro_rows
