(* Lemma 6.3: 3-coloring reduces to multi-constraint partitioning with cost
   0, giving para-NP-hardness and inapproximability to any finite factor
   once c >= n^delta.

   For every vertex v and color i in [3] there is a gadget of nodes
   { marker1, marker2 } + { slot(v, e, i) : e incident to v }, tied
   together by one hyperedge (so a 0-cost partition colors each gadget
   uniformly; gadget (v, i) being red means "v gets color i").
   Constraints (via the Lemma D.2 filler machinery in Mc_builder):
   - per vertex v: at most one red among the marker1(v, i), and at least
     one red among the marker2(v, i)  (exactly one color per vertex);
   - per edge (u, v) and color i: at most one red among
     slot(u, e, i), slot(v, e, i)  (proper coloring). *)

type t = {
  graph : Npc.Graph.t;
  builder : Mc_builder.t;
  gadget_nodes : int array array array;
      (* gadget_nodes.(v).(i): all node ids of gadget (v, i),
         marker1 first, marker2 second *)
}

let colors_count = 3

let build graph =
  let n = Npc.Graph.num_nodes graph in
  let b = Hypergraph.Builder.create () in
  let gadget_nodes =
    Array.init n (fun v ->
        Array.init colors_count (fun _ ->
            let deg = Npc.Graph.degree graph v in
            let nodes = Hypergraph.Builder.add_nodes b (2 + deg) in
            ignore (Hypergraph.Builder.add_edge b nodes);
            nodes))
  in
  (* slot (v, e, i): position 2 + (index of e in v's incidence list). *)
  let slot v e i =
    let incident = Npc.Graph.incident_edges graph v in
    let rec index j = function
      | [] -> invalid_arg "Mc_from_coloring.slot: edge not incident"
      | e' :: rest -> if e' = e then j else index (j + 1) rest
    in
    gadget_nodes.(v).(i).(2 + index 0 incident)
  in
  let vertex_specs =
    List.concat_map
      (fun v ->
        [
          {
            Mc_builder.subset =
              Array.init colors_count (fun i -> gadget_nodes.(v).(i).(0));
            bound = Mc_builder.At_most_red 1;
          };
          {
            Mc_builder.subset =
              Array.init colors_count (fun i -> gadget_nodes.(v).(i).(1));
            bound = Mc_builder.At_least_red 1;
          };
        ])
      (List.init n Fun.id)
  in
  let edge_specs =
    List.concat_map
      (fun e ->
        let u, v = (Npc.Graph.edges graph).(e) in
        Support.Util.list_init colors_count (fun i ->
            {
              Mc_builder.subset = [| slot u e i; slot v e i |];
              bound = Mc_builder.At_most_red 1;
            }))
      (List.init (Npc.Graph.num_edges graph) Fun.id)
  in
  let builder = Mc_builder.finalize b (vertex_specs @ edge_specs) in
  { graph; builder; gadget_nodes }

let hypergraph t = t.builder.Mc_builder.hypergraph
let constraints t = t.builder.Mc_builder.constraints
let num_constraints t =
  Partition.Multi_constraint.num_constraints (constraints t)

(* Encode a proper 3-coloring as a 0-cost feasible partition. *)
let embed t coloring =
  let colors = Array.make (Hypergraph.num_nodes (hypergraph t)) 0 in
  Mc_builder.paint_anchors t.builder colors;
  Array.iteri
    (fun v gadgets ->
      Array.iteri
        (fun i nodes ->
          if coloring.(v) = i then
            Array.iter (fun x -> colors.(x) <- 1) nodes)
        gadgets)
    t.gadget_nodes;
  Partition.create ~k:2 colors

(* Decode a 0-cost feasible partition into a coloring. *)
let extract t part =
  let red = Mc_builder.red_color t.builder part in
  Array.map
    (fun gadgets ->
      let chosen = ref (-1) in
      Array.iteri
        (fun i nodes -> if Partition.color part nodes.(0) = red then chosen := i)
        gadgets;
      !chosen)
    t.gadget_nodes

let is_zero_cost_feasible t part =
  Mc_builder.cost t.builder part = 0 && Mc_builder.feasible t.builder part

let graph t = t.graph
