(* The paper's counterexample constructions, as executable builders:
   Figure 2 (triangle), Figure 4 (serial concatenation), Figure 6
   (layer-wise limits), Figure 8 / Lemma 7.2 (recursive partitioning),
   Figure 9 / Theorem 7.4 (two-step method), and the Hendrickson-Kolda
   comparison of Appendix B. *)

(* Figure 2: the smallest hypergraph that is not a hyperDAG. *)
let triangle () =
  Hypergraph.of_edges ~n:3 [| [| 0; 1 |]; [| 1; 2 |]; [| 0; 2 |] |]

(* Figure 4: a perfectly balanced but completely unparallelizable split of
   two serially composed halves.  Returns (dag, the bad partition). *)
let serial_concatenation ~half =
  let dag =
    Hyperdag.Dag.concat_serial (Workloads.Dag_gen.independent half)
      (Workloads.Dag_gen.independent half)
  in
  let bad =
    Partition.create ~k:2
      (Array.init (2 * half) (fun v -> if v < half then 0 else 1))
  in
  (dag, bad)

(* Figure 6: two paths of length 3 from a source to a sink, with the first
   node of the upper path and the second node of the lower path split into
   b nodes each.  Layer-wise constraints force a Theta(b) cut; coloring the
   branches red/blue costs only 2. *)
type two_branch = {
  dag : Hyperdag.Dag.t;
  source : int;
  sink : int;
  upper_set : int array; (* the b split nodes, layer 1 *)
  upper_mid : int; (* layer 2 *)
  lower_first : int; (* layer 1 *)
  lower_set : int array; (* layer 2 *)
}

let two_branch ~b =
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let source = fresh () in
  let upper_set = Array.init b (fun _ -> fresh ()) in
  let upper_mid = fresh () in
  let lower_first = fresh () in
  let lower_set = Array.init b (fun _ -> fresh ()) in
  let sink = fresh () in
  let edges = ref [] in
  Array.iter
    (fun u -> edges := (source, u) :: (u, upper_mid) :: !edges)
    upper_set;
  edges := (upper_mid, sink) :: !edges;
  edges := (source, lower_first) :: !edges;
  Array.iter
    (fun u -> edges := (lower_first, u) :: (u, sink) :: !edges)
    lower_set;
  let dag = Hyperdag.Dag.of_edges ~n:!next !edges in
  { dag; source; sink; upper_set; upper_mid; lower_first; lower_set }

(* The branch-coloring solution of Figure 6: upper branch red, lower blue;
   near-perfect parallelization, cut cost 2, but layer-wise infeasible. *)
let two_branch_branch_coloring t =
  let n = Hyperdag.Dag.num_nodes t.dag in
  let colors = Array.make n 0 in
  Array.iter (fun v -> colors.(v) <- 1) t.upper_set;
  colors.(t.upper_mid) <- 1;
  colors.(t.source) <- 1;
  Partition.create ~k:2 colors

(* A layer-wise feasible solution: split both large sets evenly. *)
let two_branch_layerwise t =
  let n = Hyperdag.Dag.num_nodes t.dag in
  let colors = Array.make n 0 in
  let half a =
    Array.iteri (fun i v -> colors.(v) <- (if 2 * i < Array.length a then 1 else 0)) a
  in
  half t.upper_set;
  half t.lower_set;
  colors.(t.source) <- 1;
  colors.(t.lower_first) <- 1;
  colors.(t.upper_mid) <- 0;
  colors.(t.sink) <- 0;
  Partition.create ~k:2 colors

(* Lemma 7.2 / Figure 8: three large blocks (n/6) in one chain and six
   small blocks (n/12) in another; an optimal first bisection separates
   the chains, after which the large side cannot be halved without
   splitting a block, while a direct 4-way partitioning pairs one large
   with one small block per part at O(1) cost. *)
type nine_blocks = {
  hypergraph : Hypergraph.t;
  large : int array array; (* 3 blocks of size 2u *)
  small : int array array; (* 6 blocks of size u *)
  unit_size : int;
}

let nine_blocks ~unit_size =
  if unit_size < 2 then invalid_arg "Counterexamples.nine_blocks: unit >= 2";
  let b = Hypergraph.Builder.create () in
  let large =
    Array.init 3 (fun _ -> Hypergraph.Gadgets.block b ~size:(2 * unit_size))
  in
  let small =
    Array.init 6 (fun _ -> Hypergraph.Gadgets.block b ~size:unit_size)
  in
  (* Chain the large blocks and the small blocks with single edges. *)
  for i = 0 to 1 do
    ignore (Hypergraph.Builder.add_edge b [| large.(i).(0); large.(i + 1).(0) |])
  done;
  for i = 0 to 4 do
    ignore (Hypergraph.Builder.add_edge b [| small.(i).(0); small.(i + 1).(0) |])
  done;
  { hypergraph = Hypergraph.Builder.build b; large; small; unit_size }

(* The O(1)-cost direct 4-way partition: part i < 3 = large i + small i;
   part 3 = small 3, 4, 5. *)
let nine_blocks_direct t =
  let n = Hypergraph.num_nodes t.hypergraph in
  let colors = Array.make n 3 in
  Array.iteri
    (fun i block -> Array.iter (fun v -> colors.(v) <- i) block)
    t.large;
  Array.iteri
    (fun i block -> if i < 3 then Array.iter (fun v -> colors.(v) <- i) block)
    t.small;
  Partition.create ~k:4 colors

(* The first (optimal, cost-0) bisection: large chain vs small chain. *)
let nine_blocks_first_bisection t =
  let n = Hypergraph.num_nodes t.hypergraph in
  let colors = Array.make n 1 in
  Array.iter (Array.iter (fun v -> colors.(v) <- 0)) t.large;
  Partition.create ~k:2 colors

(* Theorem 7.4 / Figure 9: the star construction on which the two-step
   method loses a (b1-1)/b1 * g1 factor.  eps = 0; T = n/k nodes per
   part; all blocks listed in Appendix G.2. *)
type star = {
  hypergraph : Hypergraph.t;
  k : int;
  m : int; (* parallel A <-> B_i edges *)
  t_size : int; (* T = n / k *)
  a : int array;
  b_blocks : int array array; (* k - 1 blocks of size T / (k-1) *)
  c_blocks : int array array; (* k - 2 blocks of size T (k-2)/(k-1) *)
  d : int array;
  e_blocks : int array array; (* k - 3 blocks of size T / (k-1) *)
}

let star ~k ~m ~unit_size =
  if k < 3 then invalid_arg "Counterexamples.star: k >= 3";
  if unit_size < 2 then invalid_arg "Counterexamples.star: unit_size >= 2";
  (* T = (k-1) * unit_size so all block sizes are integers. *)
  let t_size = (k - 1) * unit_size in
  let b = Hypergraph.Builder.create () in
  let a = Hypergraph.Gadgets.block b ~size:t_size in
  let b_blocks =
    Array.init (k - 1) (fun _ -> Hypergraph.Gadgets.block b ~size:unit_size)
  in
  let c_blocks =
    Array.init (k - 2) (fun _ ->
        Hypergraph.Gadgets.block b ~size:((k - 2) * unit_size))
  in
  let d = Hypergraph.Gadgets.block b ~size:unit_size in
  let e_blocks =
    Array.init (max 0 (k - 3)) (fun _ ->
        Hypergraph.Gadgets.block b ~size:unit_size)
  in
  for i = 0 to k - 2 do
    for j = 0 to m - 1 do
      ignore
        (Hypergraph.Builder.add_edge b
           [| a.(j mod t_size); b_blocks.(i).(j mod unit_size) |])
    done
  done;
  for i = 0 to k - 3 do
    ignore (Hypergraph.Builder.add_edge b [| b_blocks.(i).(0); c_blocks.(i).(0) |])
  done;
  ignore (Hypergraph.Builder.add_edge b [| b_blocks.(k - 2).(0); d.(0) |]);
  {
    hypergraph = Hypergraph.Builder.build b;
    k;
    m;
    t_size;
    a;
    b_blocks;
    c_blocks;
    d;
    e_blocks;
  }

(* The regular-metric optimum (Appendix G.2): A alone; B_i with C_i for
   i <= k-2; B_{k-1} with D and all E_i. *)
let star_flat_optimum t =
  let n = Hypergraph.num_nodes t.hypergraph in
  let colors = Array.make n 0 in
  Array.iter (fun v -> colors.(v) <- 0) t.a;
  for i = 0 to t.k - 3 do
    Array.iter (fun v -> colors.(v) <- i + 1) t.b_blocks.(i);
    Array.iter (fun v -> colors.(v) <- i + 1) t.c_blocks.(i)
  done;
  let last = t.k - 1 in
  Array.iter (fun v -> colors.(v) <- last) t.b_blocks.(t.k - 2);
  Array.iter (fun v -> colors.(v) <- last) t.d;
  Array.iter (Array.iter (fun v -> colors.(v) <- last)) t.e_blocks;
  Partition.create ~k:t.k colors

(* The hierarchical optimum: A alone; all B_i (and D... no, D goes with
   C_{k-2}) — parts: A | B_1..B_{k-1} | {C_i, E_i} for i <= k-3 |
   {C_{k-2}, D}. *)
let star_hier_optimum t =
  let n = Hypergraph.num_nodes t.hypergraph in
  let colors = Array.make n 0 in
  Array.iter (fun v -> colors.(v) <- 0) t.a;
  Array.iter (Array.iter (fun v -> colors.(v) <- 1)) t.b_blocks;
  for i = 0 to t.k - 4 do
    Array.iter (fun v -> colors.(v) <- i + 2) t.c_blocks.(i);
    Array.iter (fun v -> colors.(v) <- i + 2) t.e_blocks.(i)
  done;
  let last = t.k - 1 in
  Array.iter (fun v -> colors.(v) <- last) t.c_blocks.(t.k - 3);
  Array.iter (fun v -> colors.(v) <- last) t.d;
  Partition.create ~k:t.k colors

(* Appendix I.1: two-level blocks — the hyperDAG replacement for block
   gadgets.  A first group of b0 generator nodes, a second group of b1
   nodes, and b0 hyperedges each containing one first-group node and the
   whole second group; splitting the second group costs >= b0. *)
type two_level_block = { first : int array; second : int array }

let two_level_block builder ~first_size ~second_size =
  if first_size < 1 || second_size < 1 then
    invalid_arg "Counterexamples.two_level_block: sizes >= 1";
  let first = Hypergraph.Builder.add_nodes builder first_size in
  let second = Hypergraph.Builder.add_nodes builder second_size in
  Array.iter
    (fun f ->
      ignore (Hypergraph.Builder.add_edge builder (Array.append [| f |] second)))
    first;
  { first; second }

(* The nine-block construction as a hyperDAG (Appendix I.1): each block is
   replaced by a two-level block with the sizes of the appendix (first
   group one sixth of the block, second group five sixths), and the chain
   edges run between second groups with the *first* chain member's second
   group providing the generator. *)
type nine_blocks_hyperdag = {
  hypergraph : Hypergraph.t;
  large : two_level_block array;
  small : two_level_block array;
  unit_size : int;
}

let nine_blocks_hyperdag ~unit_size =
  (* unit_size must be divisible by 6 so the appendix's n/36 and n/72
     group sizes are integral at our scale: large = (u/3, 5u/3) doubled;
     we scale to first = unit_size, second = 5 * unit_size for the large
     blocks, and half of that for the small ones. *)
  if unit_size < 2 then
    invalid_arg "Counterexamples.nine_blocks_hyperdag: unit_size >= 2";
  let b = Hypergraph.Builder.create () in
  let large =
    Array.init 3 (fun _ ->
        two_level_block b ~first_size:(2 * unit_size)
          ~second_size:(10 * unit_size))
  in
  let small =
    Array.init 6 (fun _ ->
        two_level_block b ~first_size:unit_size
          ~second_size:(5 * unit_size))
  in
  for i = 0 to 1 do
    ignore
      (Hypergraph.Builder.add_edge b
         [| large.(i).second.(0); large.(i + 1).second.(1) |])
  done;
  for i = 0 to 4 do
    ignore
      (Hypergraph.Builder.add_edge b
         [| small.(i).second.(0); small.(i + 1).second.(1) |])
  done;
  { hypergraph = Hypergraph.Builder.build b; large; small; unit_size }

(* Appendix B: the Hendrickson-Kolda hypergraph of a DAG puts both the
   predecessors and the successors of u into u's hyperedge, which can
   overestimate real traffic by a Theta(m) factor on a (k-1)-source,
   m-sink bipartite DAG (the hyperDAG model counts it exactly). *)
let hk_hypergraph dag =
  let n = Hyperdag.Dag.num_nodes dag in
  let edges = ref [] in
  for u = n - 1 downto 0 do
    let pins =
      Array.concat
        [ [| u |]; Hyperdag.Dag.preds dag u; Hyperdag.Dag.succs dag u ]
    in
    if Array.length pins > 1 then begin
      let sorted = Array.copy pins in
      Array.sort Int.compare sorted;
      edges := sorted :: !edges
    end
  done;
  Hypergraph.of_edges ~n (Array.of_list !edges)

let bipartite_sources_sinks ~sources ~sinks =
  let edges = ref [] in
  for s = 0 to sources - 1 do
    for t = 0 to sinks - 1 do
      edges := (s, sources + t) :: !edges
    done
  done;
  Hyperdag.Dag.of_edges ~n:(sources + sinks) !edges
