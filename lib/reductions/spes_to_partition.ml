(* The main reduction (Theorem 4.1 / Lemma C.1), general-hypergraph form
   with block gadgets, for k = 2.

   Given an SpES instance (G(V, E), p) and a balance parameter eps, the
   construction has:
   - a block B_e of size m = n + 1 for every edge e of G (cost of splitting
     a block exceeds any reasonable cut);
   - a node b_v for every vertex v of G;
   - one *main hyperedge* per vertex v: { b_v } + one node from each B_e
     with e incident to v;
   - m parallel hyperedges { a, b_v } tying every b_v to the blue block A;
   - anchor blocks A (blue) and A' (red), sized so that (1) A and A' cannot
     share a color within the balance capacity, and (2) exactly p of the
     edge blocks must join the red side.

   Then the optimal partition cost equals the SpES optimum: the cut main
   hyperedges are exactly the vertices covered by the p red edge blocks. *)

type t = {
  graph : Npc.Graph.t;
  p : int;
  eps : float;
  hypergraph : Hypergraph.t;
  m : int; (* edge-block size *)
  blocks : int array array; (* per graph edge: node ids of B_e *)
  vertex_nodes : int array; (* b_v *)
  a_nodes : int array;
  a'_nodes : int array;
  main_edges : int array; (* hyperedge id of each vertex's main hyperedge *)
  capacity : int;
}

(* Find the total size n' such that with cap = capacity(n'), the red side
   minimum n' - cap equals |A'| + p * m for a valid |A'| >= 2, and
   n' - cap > s (so A and A' must differ). *)
let rec find_sizes ~eps ~s ~p ~m n' =
  let cap = Partition.capacity ~eps ~total_weight:n' ~k:2 () in
  let red_min = n' - cap in
  let a' = red_min - (p * m) in
  (* a = n' - s - a' = cap - s + p * m *)
  let a = cap - s + (p * m) in
  if 2 * cap >= n' && red_min > s && a' >= 2 && a >= 2 then (n', cap, a, a')
  else find_sizes ~eps ~s ~p ~m (n' + 1)

let build ?(eps = 0.0) graph ~p =
  let n = Npc.Graph.num_nodes graph in
  let num_edges = Npc.Graph.num_edges graph in
  if p < 1 || p > num_edges then invalid_arg "Spes_to_partition.build: bad p";
  let m = n + 1 in
  let s = (num_edges * m) + n in
  let n', cap, a_size, a'_size = find_sizes ~eps ~s ~p ~m (2 * s) in
  ignore n';
  let b = Hypergraph.Builder.create () in
  let blocks =
    Array.init num_edges (fun _ -> Hypergraph.Gadgets.block b ~size:m)
  in
  let vertex_nodes = Hypergraph.Builder.add_nodes b n in
  let a_nodes = Hypergraph.Gadgets.block b ~size:a_size in
  let a'_nodes = Hypergraph.Gadgets.block b ~size:a'_size in
  (* Main hyperedges. *)
  let main_edges =
    Array.init n (fun v ->
        let incident = Npc.Graph.incident_edges graph v in
        let pins =
          Array.of_list
            (vertex_nodes.(v) :: List.map (fun e -> blocks.(e).(0)) incident)
        in
        Hypergraph.Builder.add_edge b pins)
  in
  (* m parallel edges pinning each b_v to A. *)
  for v = 0 to n - 1 do
    for j = 0 to m - 1 do
      ignore
        (Hypergraph.Builder.add_edge b
           [| a_nodes.(j mod a_size); vertex_nodes.(v) |])
    done
  done;
  let hypergraph = Hypergraph.Builder.build b in
  assert (Hypergraph.num_nodes hypergraph = s + a_size + a'_size);
  {
    graph;
    p;
    eps;
    hypergraph;
    m;
    blocks;
    vertex_nodes;
    a_nodes;
    a'_nodes;
    main_edges;
    capacity = cap;
  }

(* Encode an SpES solution (a set of >= p induced edges' endpoints) as a
   balanced partition whose cost is the number of covered vertices. *)
let embed t chosen_edges =
  if Array.length chosen_edges <> t.p then
    invalid_arg "Spes_to_partition.embed: need exactly p edges";
  let n' = Hypergraph.num_nodes t.hypergraph in
  let colors = Array.make n' 0 in
  (* blue = 0, red = 1. *)
  Array.iter (fun v -> colors.(v) <- 1) t.a'_nodes;
  Array.iter
    (fun e -> Array.iter (fun v -> colors.(v) <- 1) t.blocks.(e))
    chosen_edges;
  Partition.create ~k:2 colors

(* Decode a partition into an SpES edge selection, applying the cleanup of
   Lemma C.1: define red as the majority color of A'; pick the p edge
   blocks with the most nodes of that color. *)
let extract t part =
  let majority nodes =
    let red =
      Support.Util.array_count (fun v -> Partition.color part v = 1) nodes
    in
    if 2 * red >= Array.length nodes then 1 else 0
  in
  let red = majority t.a'_nodes in
  let score e =
    Support.Util.array_count
      (fun v -> Partition.color part v = red)
      t.blocks.(e)
  in
  let order = Array.init (Array.length t.blocks) Fun.id in
  Array.sort (fun x y -> Int.compare (score y) (score x)) order;
  Array.sub order 0 t.p

(* The SpES objective of an edge selection: vertices covered. *)
let covered_vertices t chosen_edges =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      let u, v = (Npc.Graph.edges t.graph).(e) in
      Hashtbl.replace seen u ();
      Hashtbl.replace seen v ())
    chosen_edges;
  Hashtbl.length seen

let hypergraph t = t.hypergraph
let capacity t = t.capacity
let p t = t.p
let eps t = t.eps
