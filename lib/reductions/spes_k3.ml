(* Appendix C.4: the main reduction generalized to k >= 3 colors.

   As in Lemma C.1, with blue capacity exactly |A| + (|E| - p) m + n; the
   remaining nodes are split into k0 - 1 equal components of size
   T0 = (n' - cap) / (k0 - 1), where k0 = ceil(k / (1 + eps)) is the
   minimum number of parts that can cover the hypergraph: the component
   holding A' and the p red edge blocks, plus k0 - 2 extra filler blocks,
   one per additional color.  The remaining k - k0 colors stay empty. *)

type t = {
  graph : Npc.Graph.t;
  p : int;
  k : int;
  eps : float;
  hypergraph : Hypergraph.t;
  m : int;
  blocks : int array array;
  vertex_nodes : int array;
  a_nodes : int array;
  a'_nodes : int array;
  extra_blocks : int array array;
  capacity : int;
}

(* Search n' such that all component sizes are integral and large enough. *)
let rec find_sizes ~eps ~k ~k0 ~s ~p ~m n' =
  let cap = Partition.capacity ~eps ~total_weight:n' ~k () in
  let rest = n' - cap in
  if rest mod (k0 - 1) <> 0 then find_sizes ~eps ~k ~k0 ~s ~p ~m (n' + 1)
  else begin
    let t0 = rest / (k0 - 1) in
    let a' = t0 - (p * m) in
    (* Blue holds A, the unchosen blocks and the vertex nodes:
       a + (s - p m) = cap. *)
    let a = cap - s + (p * m) in
    if t0 <= cap && t0 > s && a' >= 2 && a >= 2 then (n', cap, a, a', t0)
    else find_sizes ~eps ~k ~k0 ~s ~p ~m (n' + 1)
  end

let build ?(eps = 0.0) graph ~k ~p =
  if k < 3 then invalid_arg "Spes_k3.build: use Spes_to_partition for k = 2";
  (* k0 = ceil(k / (1 + eps)): the fewest parts that can cover V. *)
  let k0 =
    max 2 (int_of_float (ceil ((float_of_int k /. (1.0 +. eps)) -. 1e-9)))
  in
  let n = Npc.Graph.num_nodes graph in
  let num_edges = Npc.Graph.num_edges graph in
  if p < 1 || p > num_edges then invalid_arg "Spes_k3.build: bad p";
  let m = n + 1 in
  let s = (num_edges * m) + n in
  if k0 = 2 then
    invalid_arg "Spes_k3.build: with 2(1+eps) > k the k = 2 construction applies";
  let n', cap, a_size, a'_size, t0 =
    find_sizes ~eps ~k ~k0 ~s ~p ~m (2 * s)
  in
  ignore n';
  let b = Hypergraph.Builder.create () in
  let blocks =
    Array.init num_edges (fun _ -> Hypergraph.Gadgets.block b ~size:m)
  in
  let vertex_nodes = Hypergraph.Builder.add_nodes b n in
  let a_nodes = Hypergraph.Gadgets.block b ~size:a_size in
  let a'_nodes = Hypergraph.Gadgets.block b ~size:a'_size in
  let extra_blocks =
    Array.init (k0 - 2) (fun _ -> Hypergraph.Gadgets.block b ~size:t0)
  in
  Array.iteri
    (fun v _ ->
      let incident = Npc.Graph.incident_edges graph v in
      let pins =
        Array.of_list
          (vertex_nodes.(v) :: List.map (fun e -> blocks.(e).(0)) incident)
      in
      ignore (Hypergraph.Builder.add_edge b pins);
      for j = 0 to m - 1 do
        ignore
          (Hypergraph.Builder.add_edge b
             [| a_nodes.(j mod a_size); vertex_nodes.(v) |])
      done)
    vertex_nodes;
  {
    graph;
    p;
    k;
    eps;
    hypergraph = Hypergraph.Builder.build b;
    m;
    blocks;
    vertex_nodes;
    a_nodes;
    a'_nodes;
    extra_blocks;
    capacity = cap;
  }

let hypergraph t = t.hypergraph
let capacity t = t.capacity

(* Encode a p-edge selection: blue (0) for A, unchosen blocks and vertex
   nodes; red (1) for A' and the chosen blocks; color 2+i for the i-th
   extra block; colors beyond k0 - 1 stay empty. *)
let embed t chosen_edges =
  if Array.length chosen_edges <> t.p then
    invalid_arg "Spes_k3.embed: need exactly p edges";
  let colors = Array.make (Hypergraph.num_nodes t.hypergraph) 0 in
  Array.iter (fun v -> colors.(v) <- 1) t.a'_nodes;
  Array.iter
    (fun e -> Array.iter (fun v -> colors.(v) <- 1) t.blocks.(e))
    chosen_edges;
  Array.iteri
    (fun i block -> Array.iter (fun v -> colors.(v) <- 2 + i) block)
    t.extra_blocks;
  Partition.create ~k:t.k colors

let extract t part =
  (* Red := the majority color of A'. *)
  let majority nodes =
    let counts = Array.make t.k 0 in
    Array.iter
      (fun v ->
        counts.(Partition.color part v) <- counts.(Partition.color part v) + 1)
      nodes;
    let best = ref 0 in
    for c = 1 to t.k - 1 do
      if counts.(c) > counts.(!best) then best := c
    done;
    !best
  in
  let red = majority t.a'_nodes in
  let score e =
    Support.Util.array_count
      (fun v -> Partition.color part v = red)
      t.blocks.(e)
  in
  let order = Array.init (Array.length t.blocks) Fun.id in
  Array.sort (fun x y -> Int.compare (score y) (score x)) order;
  Array.sub order 0 t.p

let covered_vertices t chosen_edges =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      let u, v = (Npc.Graph.edges t.graph).(e) in
      Hashtbl.replace seen u ();
      Hashtbl.replace seen v ())
    chosen_edges;
  Hashtbl.length seen
