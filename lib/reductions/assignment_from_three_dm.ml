(* Lemma H.2: the hierarchy assignment problem with d = 2 levels and
   b2 = 3 is NP-hard — via 3-Dimensional Matching.

   The (already contracted) instance has k = 3q part-nodes, the elements
   of X + Y + Z.  Hyperedges:
   - for each 3DM triple (x, y, z): the three pairs {x,y}, {x,z}, {y,z}
     as weight-1 edges (turning the triple's (1,2)-gain into (1,3));
   - for each tripartite triple that is NOT a 3DM triple: a weight-1
     size-3 hyperedge (the "(-1,-2)-gain" correction);
   - for each tripartite triple: a size-3 hyperedge of large weight w0
     (forcing any optimal grouping to be tripartite).

   A perfect matching exists iff the maximum achievable gain (the
   worst-case cost minus the realized level-1 connectivity) reaches
     q * (3 * (k - 3) + 3)  +  q * (k - 1) * w0. *)

type t = {
  instance : Npc.Three_dm.instance;
  hypergraph : Hypergraph.t;
  topology : Hierarchy.Topology.t;
  k : int;
  w0 : int;
  target_gain : int;
}

let node_of_x x = x
let node_of_y ~q y = q + y
let node_of_z ~q z = (2 * q) + z

let build instance =
  let q = Npc.Three_dm.size instance in
  let k = 3 * q in
  let w0 = 3 * k * k in
  let b = Hypergraph.Builder.create () in
  let _nodes = Hypergraph.Builder.add_nodes b k in
  let is_triple = Hashtbl.create 64 in
  Array.iter
    (fun tr -> Hashtbl.replace is_triple tr ())
    (Npc.Three_dm.triples instance);
  Array.iter
    (fun (x, y, z) ->
      let nx = node_of_x x and ny = node_of_y ~q y and nz = node_of_z ~q z in
      ignore (Hypergraph.Builder.add_edge b [| nx; ny |]);
      ignore (Hypergraph.Builder.add_edge b [| nx; nz |]);
      ignore (Hypergraph.Builder.add_edge b [| ny; nz |]))
    (Npc.Three_dm.triples instance);
  (* The "(-1,-2)-gain" correction: a weight-1 size-3 edge for EVERY
     3-subset of the k nodes that is not an original triple (the proof
     phrases this as subtracting a guaranteed gain). *)
  let original_as_nodes = Hashtbl.create 64 in
  Array.iter
    (fun (x, y, z) ->
      Hashtbl.replace original_as_nodes
        (List.sort Int.compare [ node_of_x x; node_of_y ~q y; node_of_z ~q z ])
        ())
    (Npc.Three_dm.triples instance);
  Support.Util.iter_subsets ~n:k ~k:3 (fun subset ->
      if not (Hashtbl.mem original_as_nodes (Array.to_list subset)) then
        ignore (Hypergraph.Builder.add_edge b subset));
  (* Large-weight edges on every tripartite triple, forcing tripartite
     groupings. *)
  for x = 0 to q - 1 do
    for y = 0 to q - 1 do
      for z = 0 to q - 1 do
        let pins = [| node_of_x x; node_of_y ~q y; node_of_z ~q z |] in
        ignore (Hypergraph.Builder.add_edge ~weight:w0 b pins)
      done
    done
  done;
  let hypergraph = Hypergraph.Builder.build b in
  let topology = Hierarchy.Topology.two_level ~b1:q ~b2:3 ~g1:2.0 in
  let target_gain = (q * ((3 * (k - 3)) + 3)) + (q * (k - 1) * w0) in
  { instance; hypergraph; topology; k; w0; target_gain }

(* The level-1 gain of a grouping (leaf assignment): sum over edges of
   w_e * (|e| - lambda1_e). *)
let gain t leaf_of_part =
  let q = Npc.Three_dm.size t.instance in
  let group leaf = leaf / 3 in
  ignore q;
  let total = ref 0 in
  for e = 0 to Hypergraph.num_edges t.hypergraph - 1 do
    let groups =
      List.sort_uniq Int.compare
        (Hypergraph.fold_pins t.hypergraph e
           (fun acc v -> group leaf_of_part.(v) :: acc)
           [])
    in
    let size = Hypergraph.edge_size t.hypergraph e in
    total :=
      !total
      + (Hypergraph.edge_weight t.hypergraph e * (size - List.length groups))
  done;
  !total

(* Encode a perfect matching as a leaf assignment grouping each triple. *)
let embed t matching =
  let q = Npc.Three_dm.size t.instance in
  let leaf_of_part = Array.make t.k 0 in
  List.iteri
    (fun g (x, y, z) ->
      leaf_of_part.(node_of_x x) <- 3 * g;
      leaf_of_part.(node_of_y ~q y) <- (3 * g) + 1;
      leaf_of_part.(node_of_z ~q z) <- (3 * g) + 2)
    matching;
  leaf_of_part

(* Best gain over all groupings via the exact d = 2 assignment DP. *)
let best_gain t =
  if t.k > 16 then invalid_arg "Assignment_from_three_dm.best_gain: k > 16";
  let identity = Partition.create ~k:t.k (Array.init t.k Fun.id) in
  let r =
    Hierarchy.Assignment.exact_two_level t.topology t.hypergraph identity
  in
  gain t r.Hierarchy.Assignment.leaf_of_part

let matching_exists_via_assignment t = best_gain t >= t.target_gain

let hypergraph t = t.hypergraph
let topology t = t.topology
let target_gain t = t.target_gain
