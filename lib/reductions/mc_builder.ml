(* Shared machinery for the multi-constraint reductions (Appendix D).

   Lemma D.2: a balance constraint over a set S plus the right number of
   fixed red and blue filler nodes enforces "at most h red in S" (or the
   blue-symmetric "at least h red").  Fixed nodes are supplied by two
   anchor blocks tied together in one balance constraint (Appendix D.3):
   in any 0-cost feasible partition each block is monochromatic and the
   two take different colors; "red" is *defined* as the color of the red
   anchor block.

   The builder works with k = 2 and eps = 1/2 throughout: for a constraint
   set V0 of size m, the capacity is floor(3m/4). *)

let eps = 0.5

type bound = At_most_red of int | At_least_red of int

type spec = { subset : int array; bound : bound }

type t = {
  hypergraph : Hypergraph.t;
  constraints : Partition.Multi_constraint.t;
  red_block : int array;
  blue_block : int array;
}

(* Filler demand of one constraint: (m, fixed_red, fixed_blue). *)
let filler_counts spec =
  let s = Array.length spec.subset in
  let demand h =
    (* m > 4h and m > 4(s - h). *)
    let m = (4 * max h (s - h)) + 4 in
    let cap = (3 * m) / 4 in
    (m, cap)
  in
  match spec.bound with
  | At_most_red h ->
      if h < 0 || h > s then invalid_arg "Mc_builder.filler_counts: bad bound";
      let m, cap = demand h in
      let red = cap - h in
      let blue = m - s - red in
      (red, blue)
  | At_least_red h ->
      if h < 0 || h > s then invalid_arg "Mc_builder.filler_counts: bad bound";
      (* At most (s - h) blue. *)
      let m, cap = demand (s - h) in
      let blue = cap - (s - h) in
      let red = m - s - blue in
      (red, blue)

(* Consume the specs, allocate anchor blocks sized to the total filler
   demand plus two reserved nodes each (Definition 6.1 requires the
   constraint subsets to be disjoint, so the differ-in-color anchor
   constraint lives on its own reserved nodes — which still share the
   block's single hyperedge, hence its color), and emit the hypergraph and
   constraint system. *)
let finalize builder specs =
  let demands = List.map filler_counts specs in
  let reserved = 2 in
  let red_total =
    reserved + List.fold_left (fun acc (r, _) -> acc + r) 0 demands
  in
  let blue_total =
    reserved + List.fold_left (fun acc (_, b) -> acc + b) 0 demands
  in
  let red_block = Hypergraph.Builder.add_nodes builder red_total in
  let blue_block = Hypergraph.Builder.add_nodes builder blue_total in
  ignore (Hypergraph.Builder.add_edge builder red_block);
  ignore (Hypergraph.Builder.add_edge builder blue_block);
  let next_red = ref 0 and next_blue = ref 0 in
  let take pool next count =
    let out = Array.sub pool !next count in
    next := !next + count;
    out
  in
  let subsets =
    List.map
      (fun (spec, (r, b)) ->
        Array.concat
          [
            spec.subset;
            take red_block next_red r;
            take blue_block next_blue b;
          ])
      (List.combine specs demands)
  in
  (* The anchor constraint forcing the two blocks to differ in color:
     2 + 2 reserved nodes, capacity floor(3 * 4 / 4) = 3 < 4, so a
     monochromatic pair of blocks is infeasible. *)
  let anchor =
    Array.append
      (take red_block next_red reserved)
      (take blue_block next_blue reserved)
  in
  let constraints =
    Partition.Multi_constraint.create (Array.of_list (anchor :: subsets))
  in
  {
    hypergraph = Hypergraph.Builder.build builder;
    constraints;
    red_block;
    blue_block;
  }

(* The color playing "red" in a partition: the (majority) color of the red
   anchor block. *)
let red_color t part =
  let red =
    Support.Util.array_count (fun v -> Partition.color part v = 1) t.red_block
  in
  if 2 * red >= Array.length t.red_block then 1 else 0

(* Color the anchor blocks in a partial assignment under construction. *)
let paint_anchors t colors =
  Array.iter (fun v -> colors.(v) <- 1) t.red_block;
  Array.iter (fun v -> colors.(v) <- 0) t.blue_block

let feasible t part =
  Partition.Multi_constraint.feasible ~eps t.constraints part

let cost t part = Partition.connectivity_cost t.hypergraph part
