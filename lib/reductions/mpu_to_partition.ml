(* Appendix C.5: the Lemma C.1 reduction extends verbatim from SpES to
   Minimum p-Union — the source problem of the stronger inapproximability
   factors of Corollary 4.2 (Gap-ETH, one-way functions, Hypergraph Dense
   vs Random).

   Structure is as in Spes_to_partition, with a block B_e per *hyperedge*
   of the MpU instance and a main hyperedge per *node* v containing b_v
   and a node from each incident block; a block may now have up to n
   incident main hyperedges. *)

type t = {
  instance : Hypergraph.t; (* the MpU hypergraph *)
  p : int;
  eps : float;
  hypergraph : Hypergraph.t;
  m : int;
  blocks : int array array;
  vertex_nodes : int array;
  a_nodes : int array;
  a'_nodes : int array;
  capacity : int;
}

let rec find_sizes ~eps ~s ~p ~m n' =
  let cap = Partition.capacity ~eps ~total_weight:n' ~k:2 () in
  let red_min = n' - cap in
  let a' = red_min - (p * m) in
  let a = cap - s + (p * m) in
  if 2 * cap >= n' && red_min > s && a' >= 2 && a >= 2 then (n', cap, a, a')
  else find_sizes ~eps ~s ~p ~m (n' + 1)

let build ?(eps = 0.0) instance ~p =
  let n = Hypergraph.num_nodes instance in
  let num_edges = Hypergraph.num_edges instance in
  if p < 1 || p > num_edges then invalid_arg "Mpu_to_partition.build: bad p";
  let m = n + 1 in
  let s = (num_edges * m) + n in
  let n', cap, a_size, a'_size = find_sizes ~eps ~s ~p ~m (2 * s) in
  ignore n';
  let b = Hypergraph.Builder.create () in
  let blocks =
    Array.init num_edges (fun _ -> Hypergraph.Gadgets.block b ~size:m)
  in
  let vertex_nodes = Hypergraph.Builder.add_nodes b n in
  let a_nodes = Hypergraph.Gadgets.block b ~size:a_size in
  let a'_nodes = Hypergraph.Gadgets.block b ~size:a'_size in
  for v = 0 to n - 1 do
    let incident = Hypergraph.incident_edges instance v in
    let pins =
      Array.append
        [| vertex_nodes.(v) |]
        (Array.map (fun e -> blocks.(e).(0)) incident)
    in
    ignore (Hypergraph.Builder.add_edge b pins);
    for j = 0 to m - 1 do
      ignore
        (Hypergraph.Builder.add_edge b
           [| a_nodes.(j mod a_size); vertex_nodes.(v) |])
    done
  done;
  {
    instance;
    p;
    eps;
    hypergraph = Hypergraph.Builder.build b;
    m;
    blocks;
    vertex_nodes;
    a_nodes;
    a'_nodes;
    capacity = cap;
  }

let hypergraph t = t.hypergraph

(* Encode an MpU edge selection; cost = |union of the selected edges|. *)
let embed t chosen_edges =
  if Array.length chosen_edges <> t.p then
    invalid_arg "Mpu_to_partition.embed: need exactly p edges";
  let colors = Array.make (Hypergraph.num_nodes t.hypergraph) 0 in
  Array.iter (fun v -> colors.(v) <- 1) t.a'_nodes;
  Array.iter
    (fun e -> Array.iter (fun v -> colors.(v) <- 1) t.blocks.(e))
    chosen_edges;
  Partition.create ~k:2 colors

let extract t part =
  let majority nodes =
    let red =
      Support.Util.array_count (fun v -> Partition.color part v = 1) nodes
    in
    if 2 * red >= Array.length nodes then 1 else 0
  in
  let red = majority t.a'_nodes in
  let score e =
    Support.Util.array_count
      (fun v -> Partition.color part v = red)
      t.blocks.(e)
  in
  let order = Array.init (Array.length t.blocks) Fun.id in
  Array.sort (fun x y -> Int.compare (score y) (score x)) order;
  Array.sub order 0 t.p

let union_size t chosen_edges = Npc.Mpu.union_size t.instance chosen_edges
