(* Theorem 5.5 (out-trees / level-order / chain graphs): computing mu_p is
   NP-hard for k = 2 — via 3-Partition.

   The DAG is a disjoint union of paths (optionally rooted to form an
   out-tree): a *main path* of 2*t*b nodes whose processor assignment
   alternates in blocks of b (b on processor 0, b on processor 1, ...),
   and a *small path* of 2*a_i nodes per integer (a_i on processor 1, then
   a_i on processor 0).

   mu_p = n/2 (zero idle time) iff the integers split into triplets of sum
   b: a perfect schedule must advance the main path every step, so the
   small paths must jointly supply the complementary processor sequence. *)

type t = {
  instance : Npc.Three_partition.instance;
  dag : Hyperdag.Dag.t;
  assignment : int array; (* fixed partition p : V -> {0, 1} *)
  main_path : int array;
  small_paths : int array array;
  target : int; (* n / 2: the perfect makespan *)
}

let build ?(rooted = false) instance =
  let numbers = Npc.Three_partition.numbers instance in
  let b = Npc.Three_partition.target instance in
  let t = Array.length numbers / 3 in
  let main_len = 2 * t * b in
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let main_path = Array.init main_len (fun _ -> fresh ()) in
  let small_paths =
    Array.map (fun a -> Array.init (2 * a) (fun _ -> fresh ())) numbers
  in
  let root = if rooted then Some (fresh ()) else None in
  let edges = ref [] in
  let chain nodes =
    for i = 0 to Array.length nodes - 2 do
      edges := (nodes.(i), nodes.(i + 1)) :: !edges
    done
  in
  chain main_path;
  Array.iter chain small_paths;
  (match root with
  | Some r ->
      edges := (r, main_path.(0)) :: !edges;
      Array.iter (fun p -> edges := (r, p.(0)) :: !edges) small_paths
  | None -> ());
  let dag = Hyperdag.Dag.of_edges ~n:!next !edges in
  let assignment = Array.make !next 0 in
  (* Main path: blocks of b alternating 0, 1, 0, 1, ... *)
  Array.iteri
    (fun pos v -> assignment.(v) <- pos / b mod 2)
    main_path;
  (* Small path of a_i: first a_i on processor 1, then a_i on 0. *)
  Array.iteri
    (fun i path ->
      Array.iteri
        (fun pos v -> assignment.(v) <- (if pos < numbers.(i) then 1 else 0))
        path)
    small_paths;
  (match root with Some r -> assignment.(r) <- 0 | None -> ());
  {
    instance;
    dag;
    assignment;
    main_path;
    small_paths;
    target = main_len + (match root with Some _ -> 1 | None -> 0);
  }

(* Decide mu_p = target directly: a perfect schedule runs one main-path
   node and one complementary small-path node every step, so search over
   small-path progress vectors (BFS with memoization; polynomial in
   practice at the instance sizes of the experiments, though worst-case
   exponential — the problem is NP-hard after all). *)
let perfect_schedule_exists t =
  let numbers = Npc.Three_partition.numbers t.instance in
  let b = Npc.Three_partition.target t.instance in
  let paths = Array.length t.small_paths in
  let steps = Array.length t.main_path in
  (* Color of the main-path node at step s (0-based): s / b mod 2; the
     complement is what the small paths must supply. *)
  let needed s = 1 - (s / b mod 2) in
  (* Color of small path i at progress q: 1 while q < a_i, then 0. *)
  let small_color i q = if q < numbers.(i) then 1 else 0 in
  let module Key = struct
    type t = int array

    let equal = Support.Order.int_array_equal
    let hash = Support.Order.int_array_hash
  end in
  let module Tbl = Hashtbl.Make (Key) in
  let visited = Tbl.create 1024 in
  let start = Array.make paths 0 in
  Tbl.replace visited start ();
  let frontier = ref [ start ] in
  let step = ref 0 in
  while !frontier <> [] && !step < steps do
    let want = needed !step in
    let next = Tbl.create 1024 in
    List.iter
      (fun progress ->
        for i = 0 to paths - 1 do
          let q = progress.(i) in
          if q < 2 * numbers.(i) && small_color i q = want then begin
            let progress' = Array.copy progress in
            progress'.(i) <- q + 1;
            if not (Tbl.mem next progress') then Tbl.replace next progress' ()
          end
        done)
      !frontier;
    frontier := Tbl.fold (fun k () acc -> k :: acc) next [];
    incr step
  done;
  !step = steps && !frontier <> []

(* Encode a 3-partition solution as an explicit perfect schedule. *)
let embed t triplets =
  let numbers = Npc.Three_partition.numbers t.instance in
  let b = Npc.Three_partition.target t.instance in
  let n = Hyperdag.Dag.num_nodes t.dag in
  let time = Array.make n 0 in
  Array.iteri (fun pos v -> time.(v) <- pos + 1) t.main_path;
  (* Triplet j's small paths run during steps (2j)b+1 .. (2j+2)b: their
     processor-1 prefixes complement the main path's processor-0 block and
     vice versa. *)
  List.iteri
    (fun j (x, y, z) ->
      let base = 2 * j * b in
      (* First halves (processor 1) occupy steps base+1 .. base+b. *)
      let clock = ref (base + 1) in
      List.iter
        (fun i ->
          for pos = 0 to numbers.(i) - 1 do
            time.(t.small_paths.(i).(pos)) <- !clock;
            incr clock
          done)
        [ x; y; z ];
      (* Second halves (processor 0) occupy steps base+b+1 .. base+2b. *)
      List.iter
        (fun i ->
          for pos = numbers.(i) to (2 * numbers.(i)) - 1 do
            time.(t.small_paths.(i).(pos)) <- !clock;
            incr clock
          done)
        [ x; y; z ])
    triplets;
  Scheduling.Schedule.create ~proc:(Array.copy t.assignment) ~time

let dag t = t.dag
let assignment t = t.assignment
let target t = t.target
