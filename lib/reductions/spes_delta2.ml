(* The Delta = 2 form of the main reduction (Lemma C.6) and its hyperDAG
   conversion (Appendix C.3), for k = 2.

   Block gadgets are replaced by grid gadgets (Definition C.2):
   - each graph edge e gets an extended grid B_e of side l = 2n with two
     outsider nodes, one per endpoint of e;
   - A becomes an extended grid with one outsider b_v per vertex v (the
     outsider doubles as the vertex node, so its degree stays 2: its row
     hyperedge plus the main hyperedge);
   - A' is a grid, padded with extra outsiders to hit the exact size the
     balance computation requires;
   - the main hyperedge of vertex v contains b_v and the outsiders
     representing v in the incident edge grids.

   Every node has degree at most 2.  With [hyperdag = true], one more
   degree-1 outsider is appended to A and A', which makes the whole
   construction a hyperDAG (Appendix C.3) — verified by the linear-time
   recognizer rather than by an explicit generator assignment. *)

type t = {
  graph : Npc.Graph.t;
  p : int;
  eps : float;
  hypergraph : Hypergraph.t;
  ell : int; (* side of the edge grids *)
  edge_grids : Hypergraph.Gadgets.grid array;
  a_grid : Hypergraph.Gadgets.grid;
  a'_grid : Hypergraph.Gadgets.grid;
  vertex_nodes : int array; (* b_v: outsiders of A *)
  main_edges : int array;
  capacity : int;
}

(* Decompose [target] as side^2 + outsiders with outsiders <= 2 * side;
   possible for every target >= 4. *)
let grid_shape target =
  if target < 4 then invalid_arg "Spes_delta2.grid_shape: target < 4";
  let side = int_of_float (sqrt (float_of_int target)) in
  let side = if side * side > target then side - 1 else side in
  let side = max 2 side in
  let outsiders = target - (side * side) in
  assert (outsiders >= 0 && outsiders <= 2 * side);
  (side, outsiders)

(* Pick n' so that the blue capacity exactly fits A plus (|E| - p) edge
   grids plus the n vertex outsiders, with both anchor sizes >= 4.  When
   [need_pad] (the hyperDAG conversion), both anchor grids must also have
   at least one padding outsider, which is the required degree-1 node of
   Appendix C.3. *)
let rec find_sizes ~eps ~s ~p ~m ~need_pad n' =
  let cap = Partition.capacity ~eps ~total_weight:n' ~k:2 () in
  let red_min = n' - cap in
  let a'_size = red_min - (p * m) in
  let a_size = cap - s + (p * m) in
  let pad_ok size =
    (not need_pad) || size - Support.Util.pow (int_of_float (sqrt (float_of_int size))) 2 >= 1
  in
  if
    2 * cap >= n' && red_min > s && a'_size >= 5 && a_size >= 5
    && pad_ok a_size && pad_ok a'_size
  then (n', cap, a_size, a'_size)
  else find_sizes ~eps ~s ~p ~m ~need_pad (n' + 1)

let build ?(eps = 0.0) ?(hyperdag = false) graph ~p =
  let n = Npc.Graph.num_nodes graph in
  let num_edges = Npc.Graph.num_edges graph in
  if p < 1 || p > num_edges then invalid_arg "Spes_delta2.build: bad p";
  let ell = 2 * n in
  (* Size of one edge grid: l^2 cells + 2 outsiders. *)
  let m = (ell * ell) + 2 in
  (* s counts everything except A and A': edge grids + the n vertex
     outsiders (the b_v belong to A's gadget but we account for them
     separately, as the paper does). *)
  let s = (num_edges * m) + n in
  let n', cap, a_size, a'_size =
    find_sizes ~eps ~s ~p ~m ~need_pad:hyperdag (2 * s)
  in
  ignore n';
  (* A's gadget: a_size nodes (cells + padding outsiders) plus the n vertex
     outsiders; when [hyperdag], the padding outsiders double as the
     degree-1 nodes of the Appendix C.3 conversion. *)
  let b = Hypergraph.Builder.create () in
  let edge_grids =
    Array.init num_edges (fun _ ->
        Hypergraph.Gadgets.grid ~outsiders:2 b ~side:ell)
  in
  let a_side, a_pad = grid_shape a_size in
  if a_pad + n > 2 * a_side then
    invalid_arg "Spes_delta2.build: graph too large for the A grid";
  let a_grid =
    Hypergraph.Gadgets.grid ~outsiders:(a_pad + n) b ~side:a_side
  in
  let a'_side, a'_pad = grid_shape a'_size in
  let a'_grid = Hypergraph.Gadgets.grid ~outsiders:a'_pad b ~side:a'_side in
  (* The vertex nodes b_v are the outsiders of A after the padding ones. *)
  let vertex_nodes =
    Array.init n (fun v -> a_grid.Hypergraph.Gadgets.outsiders.(a_pad + v))
  in
  (* Main hyperedges: b_v plus the outsider representing v in each
     incident edge grid. *)
  let endpoint_slot = Hashtbl.create (2 * num_edges) in
  Array.iteri
    (fun e (u, v) ->
      Hashtbl.add endpoint_slot (e, u) 0;
      Hashtbl.add endpoint_slot (e, v) 1)
    (Npc.Graph.edges graph);
  let main_edges =
    Array.init n (fun v ->
        let incident = Npc.Graph.incident_edges graph v in
        let pins =
          vertex_nodes.(v)
          :: List.map
               (fun e ->
                 let slot = Hashtbl.find endpoint_slot (e, v) in
                 edge_grids.(e).Hypergraph.Gadgets.outsiders.(slot))
               incident
        in
        Hypergraph.Builder.add_edge b (Array.of_list pins))
  in
  let hypergraph = Hypergraph.Builder.build b in
  {
    graph;
    p;
    eps;
    hypergraph;
    ell;
    edge_grids;
    a_grid;
    a'_grid;
    vertex_nodes;
    main_edges;
    capacity = cap;
  }

(* Encode an SpES edge selection: chosen edge grids and A' red, the rest
   blue.  The partition is balanced by the size computation and its cost is
   (number of covered vertices). *)
let embed t chosen_edges =
  if Array.length chosen_edges <> t.p then
    invalid_arg "Spes_delta2.embed: need exactly p edges";
  let n' = Hypergraph.num_nodes t.hypergraph in
  let colors = Array.make n' 0 in
  Array.iter
    (fun v -> colors.(v) <- 1)
    (Hypergraph.Gadgets.grid_nodes t.a'_grid);
  Array.iter
    (fun e ->
      Array.iter
        (fun v -> colors.(v) <- 1)
        (Hypergraph.Gadgets.grid_nodes t.edge_grids.(e)))
    chosen_edges;
  Partition.create ~k:2 colors

(* Decode: red = majority color of A' cells; take the p reddest edge
   grids. *)
let extract t part =
  let majority grid =
    let nodes = Hypergraph.Gadgets.grid_nodes grid in
    let red =
      Support.Util.array_count (fun v -> Partition.color part v = 1) nodes
    in
    if 2 * red >= Array.length nodes then 1 else 0
  in
  let red = majority t.a'_grid in
  let score e =
    let nodes = Hypergraph.Gadgets.grid_nodes t.edge_grids.(e) in
    Support.Util.array_count (fun v -> Partition.color part v = red) nodes
  in
  let order = Array.init (Array.length t.edge_grids) Fun.id in
  Array.sort (fun x y -> Int.compare (score y) (score x)) order;
  Array.sub order 0 t.p

let hypergraph t = t.hypergraph
let capacity t = t.capacity
let vertex_nodes t = t.vertex_nodes
let main_edges t = t.main_edges
