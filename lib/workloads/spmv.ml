(* Hypergraph models of sparse matrix-vector multiplication (SpMV), the
   flagship application of hypergraph partitioning (Sections 1 and 3.2 cite
   [30]).  A sparse matrix A is given as a list of (row, col) nonzeros.

   Three standard models:
   - [fine_grain]: one node per nonzero, one hyperedge per row and per
     column touching it — every node has degree exactly 2 (the SpMV class
     of [30], for which the Theorem 4.1 hardness also holds);
   - [row_net]: nodes are columns (vector entries), one hyperedge per row
     containing its nonzero columns (1-D column distribution);
   - [column_net]: the transpose view. *)

type matrix = { rows : int; cols : int; nonzeros : (int * int) array }

let create ~rows ~cols nonzeros =
  let seen = Hashtbl.create (2 * List.length nonzeros) in
  List.iter
    (fun (r, c) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg "Spmv.create: entry out of range";
      if Hashtbl.mem seen (r, c) then
        invalid_arg "Spmv.create: duplicate nonzero";
      Hashtbl.add seen (r, c) ())
    nonzeros;
  { rows; cols; nonzeros = Array.of_list (List.sort Support.Order.int_pair nonzeros) }

let nnz m = Array.length m.nonzeros

let random rng ~rows ~cols ~density =
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if Support.Rng.bernoulli rng density then acc := (r, c) :: !acc
    done
  done;
  (* Guarantee at least one nonzero per row and column so the hypergraphs
     below have no degenerate empty edges. *)
  let have_row = Array.make rows false and have_col = Array.make cols false in
  List.iter
    (fun (r, c) ->
      have_row.(r) <- true;
      have_col.(c) <- true)
    !acc;
  for r = 0 to rows - 1 do
    if not have_row.(r) then begin
      let c = Support.Rng.int rng cols in
      acc := (r, c) :: !acc;
      have_col.(c) <- true
    end
  done;
  for c = 0 to cols - 1 do
    if not have_col.(c) then acc := (Support.Rng.int rng rows, c) :: !acc
  done;
  create ~rows ~cols (List.sort_uniq Support.Order.int_pair !acc)

(* Banded matrix (classic PDE stencil shape). *)
let banded ~size ~bandwidth =
  let acc = ref [] in
  for r = 0 to size - 1 do
    for c = max 0 (r - bandwidth) to min (size - 1) (r + bandwidth) do
      acc := (r, c) :: !acc
    done
  done;
  create ~rows:size ~cols:size !acc

let fine_grain m =
  let n = nnz m in
  let row_pins = Array.make m.rows [] and col_pins = Array.make m.cols [] in
  Array.iteri
    (fun i (r, c) ->
      row_pins.(r) <- i :: row_pins.(r);
      col_pins.(c) <- i :: col_pins.(c))
    m.nonzeros;
  let edges =
    List.filter (fun l -> List.length l >= 2)
      (Array.to_list row_pins @ Array.to_list col_pins)
  in
  Hypergraph.of_edges ~n (Array.of_list (List.map Array.of_list edges))

let row_net m =
  let pins = Array.make m.rows [] in
  Array.iter (fun (r, c) -> pins.(r) <- c :: pins.(r)) m.nonzeros;
  let edges = List.filter (fun l -> List.length l >= 2) (Array.to_list pins) in
  Hypergraph.of_edges ~n:m.cols (Array.of_list (List.map Array.of_list edges))

let column_net m =
  row_net
    {
      rows = m.cols;
      cols = m.rows;
      nonzeros = Array.map (fun (r, c) -> (c, r)) m.nonzeros;
    }
