(* Optimal makespans: mu (over all processor assignments) and mu_p (with a
   fixed partitioning), per Section 5.2.

   mu: polynomially solvable for k = 2 (Coffman-Graham) and for in/out
   forests (Hu's level algorithm); otherwise we fall back to an exact
   bitmask dynamic program, exponential in n (the general problem is a
   long-standing open question for constant k >= 3).

   mu_p: NP-hard even for k = 2 and out-trees / level-order / bounded-height
   DAGs (Theorem 5.5); we provide the exact bitmask DP plus a greedy upper
   bound.  WLOG restriction to busy schedules (never idle a processor whose
   ready set is non-empty) is sound for unit tasks: moving a task earlier
   into an idle slot keeps the schedule feasible. *)

exception Too_large

let max_dp_nodes = 22

(* Ready set of a completion mask. *)
let ready_nodes dag mask =
  let n = Hyperdag.Dag.num_nodes dag in
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if mask land (1 lsl v) = 0 then begin
      let ok = ref true in
      Hyperdag.Dag.iter_preds dag v (fun u ->
          if mask land (1 lsl u) = 0 then ok := false);
      if !ok then acc := v :: !acc
    end
  done;
  !acc

(* Exact mu by BFS over completion masks; each step runs min(|ready|, k)
   tasks (busy schedules are WLOG optimal). *)
let exact_makespan dag ~k =
  let n = Hyperdag.Dag.num_nodes dag in
  if n > max_dp_nodes then raise Too_large;
  if n = 0 then 0
  else begin
    let full = (1 lsl n) - 1 in
    let dist = Hashtbl.create 1024 in
    Hashtbl.add dist 0 0;
    let frontier = Queue.create () in
    Queue.add 0 frontier;
    let answer = ref None in
    while !answer = None && not (Queue.is_empty frontier) do
      let mask = Queue.pop frontier in
      let d = Hashtbl.find dist mask in
      if mask = full then answer := Some d
      else begin
        let ready = ready_nodes dag mask in
        let r = List.length ready in
        let take = min r k in
        let ready = Array.of_list ready in
        Support.Util.iter_subsets ~n:r ~k:take (fun subset ->
            let mask' =
              Array.fold_left
                (fun acc i -> acc lor (1 lsl ready.(i)))
                mask subset
            in
            if not (Hashtbl.mem dist mask') then begin
              Hashtbl.add dist mask' (d + 1);
              Queue.add mask' frontier
            end)
      end
    done;
    match !answer with Some d -> d | None -> assert false
  end

(* Exact mu_p: at each step every processor runs one of its ready tasks (or
   idles only if it has none). *)
let exact_makespan_fixed dag assignment ~k =
  let n = Hyperdag.Dag.num_nodes dag in
  if n > max_dp_nodes then raise Too_large;
  if n = 0 then 0
  else begin
    let full = (1 lsl n) - 1 in
    let dist = Hashtbl.create 1024 in
    Hashtbl.add dist 0 0;
    let frontier = Queue.create () in
    Queue.add 0 frontier;
    let answer = ref None in
    while !answer = None && not (Queue.is_empty frontier) do
      let mask = Queue.pop frontier in
      let d = Hashtbl.find dist mask in
      if mask = full then answer := Some d
      else begin
        let ready = ready_nodes dag mask in
        let by_proc = Array.make k [] in
        List.iter
          (fun v -> by_proc.(assignment.(v)) <- v :: by_proc.(assignment.(v)))
          ready;
        (* Cartesian product over processors with a non-empty ready set. *)
        let active = List.filter (fun l -> l <> []) (Array.to_list by_proc) in
        let rec product chosen = function
          | [] ->
              let mask' =
                List.fold_left (fun acc v -> acc lor (1 lsl v)) mask chosen
              in
              if not (Hashtbl.mem dist mask') then begin
                Hashtbl.add dist mask' (d + 1);
                Queue.add mask' frontier
              end
          | options :: rest ->
              List.iter (fun v -> product (v :: chosen) rest) options
        in
        product [] active
      end
    done;
    match !answer with Some d -> d | None -> assert false
  end

(* Greedy upper bound on mu_p: per-processor level-priority list schedule. *)
let greedy_fixed dag assignment ~k =
  let n = Hyperdag.Dag.num_nodes dag in
  let priority = List_sched.level_priority dag in
  let indeg = Array.init n (fun v -> Hyperdag.Dag.in_degree dag v) in
  let ready = Array.make k [] in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then ready.(assignment.(v)) <- v :: ready.(assignment.(v))
  done;
  let proc = Array.copy assignment and time = Array.make n 0 in
  let scheduled = ref 0 and step = ref 0 in
  while !scheduled < n do
    incr step;
    let executed = ref [] in
    for p = 0 to k - 1 do
      match
        List.sort (fun a b -> Int.compare priority.(b) priority.(a)) ready.(p)
      with
      | [] -> ()
      | v :: rest ->
          ready.(p) <- rest;
          time.(v) <- !step;
          incr scheduled;
          executed := v :: !executed
    done;
    List.iter
      (fun v ->
        Hyperdag.Dag.iter_succs dag v (fun w ->
            indeg.(w) <- indeg.(w) - 1;
            if indeg.(w) = 0 then
              ready.(assignment.(w)) <- w :: ready.(assignment.(w))))
      !executed
  done;
  Schedule.create ~proc ~time

(* Lower bounds on mu. *)
let lower_bound dag ~k =
  max
    (Hyperdag.Dag.critical_path_length dag)
    (Support.Util.ceil_div (Hyperdag.Dag.num_nodes dag) k)

(* Best polynomial route to the exact mu, when one applies. *)
type mu_result = Exact of int | Bounds of int * int

let makespan_general dag ~k =
  if k = 2 then Exact (Coffman_graham.two_processor_makespan dag)
  else if Hyperdag.Dag.is_in_forest dag then Exact (List_sched.makespan dag ~k)
  else if Hyperdag.Dag.is_out_forest dag then
    (* Hu on the reversed (in-forest) DAG; mirroring times preserves
       makespan and validity. *)
    Exact (List_sched.makespan (Hyperdag.Dag.reverse dag) ~k)
  else if Hyperdag.Dag.num_nodes dag <= max_dp_nodes then Exact (exact_makespan dag ~k)
  else Bounds (lower_bound dag ~k, List_sched.makespan dag ~k)

(* Schedule-based balance constraint (Definition 5.4): a partitioning is
   feasible iff mu_p <= (1 + eps) * mu.  Exact only at DP scale — exactly
   the practical obstruction Theorem 5.5 formalizes. *)
let schedule_based_feasible ~eps dag assignment ~k =
  let mu =
    match makespan_general dag ~k with
    | Exact m -> m
    | Bounds _ -> raise Too_large
  in
  let mu_p = exact_makespan_fixed dag assignment ~k in
  float_of_int mu_p <= ((1.0 +. eps) *. float_of_int mu) +. 1e-9
