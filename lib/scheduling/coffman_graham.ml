(* Coffman-Graham algorithm [13]: optimal two-processor scheduling of
   unit-time tasks.

   Phase 1 assigns labels 1..n: repeatedly pick, among nodes whose
   successors are all labeled, one whose decreasing sequence of successor
   labels is lexicographically smallest.  Phase 2 list-schedules by
   decreasing label.  Optimal for k = 2 (and a (2 - 2/k)-approximation in
   general). *)

let labels dag =
  (* The optimality proof is stated on the Hasse diagram; transitive edges
     would distort the lexicographic comparison. *)
  let dag = Hyperdag.Dag.transitive_reduction dag in
  let n = Hyperdag.Dag.num_nodes dag in
  let label = Array.make n 0 in
  let unlabeled_succs = Array.init n (fun v -> Hyperdag.Dag.out_degree dag v) in
  (* Candidates: nodes with all successors labeled. *)
  let succ_labels v =
    let ls =
      Array.to_list (Array.map (fun w -> label.(w)) (Hyperdag.Dag.succs dag v))
    in
    List.sort (fun a b -> Int.compare b a) ls
  in
  for next = 1 to n do
    let best = ref None in
    for v = 0 to n - 1 do
      if label.(v) = 0 && unlabeled_succs.(v) = 0 then begin
        let ls = succ_labels v in
        match !best with
        | Some (_, bls) when Support.Order.int_list bls ls <= 0 -> ()
        | _ -> best := Some (v, ls)
      end
    done;
    match !best with
    | None -> invalid_arg "Coffman_graham.labels: not a DAG"
    | Some (v, _) ->
        label.(v) <- next;
        Hyperdag.Dag.iter_preds dag v (fun u ->
            unlabeled_succs.(u) <- unlabeled_succs.(u) - 1)
  done;
  label

let schedule dag ~k =
  List_sched.schedule ~priority:(labels dag) dag ~k

let makespan dag ~k = Schedule.makespan (schedule dag ~k)

(* Optimal two-processor makespan. *)
let two_processor_makespan dag = makespan dag ~k:2
