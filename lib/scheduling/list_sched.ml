(* List scheduling of unit-time tasks: at each time step, run the (at most
   k) ready nodes of highest priority.  With the "level" priority (longest
   path to a sink) this is Hu's algorithm, optimal on in- and out-forests;
   in general it is a 2 - 1/k approximation (Graham). *)

let level_priority dag = Hyperdag.Dag.longest_path_from dag

let schedule ?priority dag ~k =
  if k < 1 then invalid_arg "List_sched.schedule: k >= 1";
  Obs.Span.with_ "sched.list"
    ~attrs:
      [ ("n", Obs.Int (Hyperdag.Dag.num_nodes dag)); ("k", Obs.Int k) ]
  @@ fun () ->
  let n = Hyperdag.Dag.num_nodes dag in
  let priority = match priority with Some p -> p | None -> level_priority dag in
  let indeg = Array.init n (fun v -> Hyperdag.Dag.in_degree dag v) in
  let proc = Array.make n 0 and time = Array.make n 0 in
  (* Ready pool as a list re-sorted lazily per step; n is small enough in
     every use of this module that O(n^2 log n) is irrelevant. *)
  let ready = ref [] in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then ready := v :: !ready
  done;
  let step = ref 0 and scheduled = ref 0 in
  while !scheduled < n do
    incr step;
    let sorted =
      List.sort (fun a b -> Int.compare priority.(b) priority.(a)) !ready
    in
    let rec take acc cnt = function
      | [] -> (List.rev acc, [])
      | rest when cnt = k -> (List.rev acc, rest)
      | x :: rest -> take (x :: acc) (cnt + 1) rest
    in
    let chosen, rest = take [] 0 sorted in
    ready := rest;
    assert (chosen <> []);
    List.iteri
      (fun i v ->
        proc.(v) <- i;
        time.(v) <- !step;
        incr scheduled)
      chosen;
    (* Release successors that became ready. *)
    List.iter
      (fun v ->
        Hyperdag.Dag.iter_succs dag v (fun w ->
            indeg.(w) <- indeg.(w) - 1;
            if indeg.(w) = 0 then ready := w :: !ready))
      chosen
  done;
  Obs.Span.attr "makespan" (Obs.Int !step);
  Schedule.create ~proc ~time

let makespan ?priority dag ~k = Schedule.makespan (schedule ?priority dag ~k)
