(* Simple undirected graphs, the input format of several source problems
   (SpES, coloring, clique). *)

type t = {
  n : int;
  edges : (int * int) array; (* normalized u < v, no duplicates *)
  adj : int array array;
}

let normalize (u, v) = if u <= v then (u, v) else (v, u)

let of_edges ~n edge_list =
  let seen = Hashtbl.create (2 * List.length edge_list) in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: node out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      let e = normalize (u, v) in
      if Hashtbl.mem seen e then invalid_arg "Graph.of_edges: duplicate edge";
      Hashtbl.add seen e ())
    edge_list;
  let edges = Array.of_list (List.map normalize edge_list) in
  Array.sort Support.Order.int_pair edges;
  let lists = Array.make n [] in
  Array.iter
    (fun (u, v) ->
      lists.(u) <- v :: lists.(u);
      lists.(v) <- u :: lists.(v))
    edges;
  let adj = Array.map (fun l -> Array.of_list (List.sort Int.compare l)) lists in
  { n; edges; adj }

let num_nodes t = t.n
let num_edges t = Array.length t.edges
let edges t = t.edges
let neighbors t v = t.adj.(v)
let degree t v = Array.length t.adj.(v)
let has_edge t u v = Array.mem v t.adj.(u)

let incident_edges t v =
  let acc = ref [] in
  Array.iteri
    (fun i (a, b) -> if a = v || b = v then acc := i :: !acc)
    t.edges;
  List.rev !acc

let max_degree t =
  if t.n = 0 then 0
  else Support.Util.max_array (Array.init t.n (fun v -> degree t v))

let complete n =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      acc := (u, v) :: !acc
    done
  done;
  of_edges ~n !acc

let random rng ~n ~p =
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Support.Rng.bernoulli rng p then acc := (u, v) :: !acc
    done
  done;
  of_edges ~n !acc

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: n >= 3";
  of_edges ~n (Support.Util.list_init n (fun i -> (i, (i + 1) mod n)))

(* Number of edges induced by a node subset. *)
let induced_edge_count t subset =
  let in_set = Array.make t.n false in
  Array.iter (fun v -> in_set.(v) <- true) subset;
  Support.Util.array_count (fun (u, v) -> in_set.(u) && in_set.(v)) t.edges
