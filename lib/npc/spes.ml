(* Smallest p-Edge Subgraph (SpES): given a graph and p, find the smallest
   node subset V0 inducing at least p edges [35].  This is the source
   problem of the main reduction (Theorem 4.1); it is equivalent to
   Minimum p-Union on graphs (choose p edges minimizing their endpoint
   union): any V0 with >= p induced edges yields p edges whose union is
   inside V0, and vice versa.

   W[1]-hard (generalizes clique: a clique of size s is an SpES solution
   with p = C(s,2)); our exact solver enumerates node subsets by increasing
   size, which is fine at reduction-verification scale. *)

type solution = { nodes : int array; induced_edges : int }

(* Smallest subset size that can possibly induce p edges: s with
   C(s,2) >= p. *)
let size_lower_bound p =
  let rec go s = if Support.Util.choose s 2 >= p then s else go (s + 1) in
  if p <= 0 then 0 else go 2

let exact g ~p =
  let n = Graph.num_nodes g in
  if p <= 0 then Some { nodes = [||]; induced_edges = 0 }
  else if Graph.num_edges g < p then None
  else begin
    let found = ref None in
    let s = ref (size_lower_bound p) in
    while !found = None && !s <= n do
      Support.Util.iter_subsets ~n ~k:!s (fun subset ->
          if !found = None then begin
            let induced = Graph.induced_edge_count g subset in
            if induced >= p then
              found := Some { nodes = subset; induced_edges = induced }
          end);
      incr s
    done;
    !found
  end

let optimum g ~p =
  match exact g ~p with
  | Some { nodes; _ } -> Some (Array.length nodes)
  | None -> None

(* Branch-and-bound: for each candidate size s (iterative deepening), DFS
   over vertices in decreasing-degree order with the optimistic bound
   induced + C(r, 2) capped by the edges actually available among the
   remaining vertices.  Handles noticeably larger instances than the
   subset enumeration. *)
let exact_bb g ~p =
  let n = Graph.num_nodes g in
  if p <= 0 then Some { nodes = [||]; induced_edges = 0 }
  else if Graph.num_edges g < p then None
  else begin
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> Int.compare (Graph.degree g b) (Graph.degree g a)) order;
    let chosen = Array.make n false in
    let solution = ref None in
    let rec dfs idx picked slots induced =
      if !solution <> None then ()
      else if induced >= p then begin
        let nodes =
          Array.of_list
            (List.filter (fun v -> chosen.(v)) (List.init n Fun.id))
        in
        solution := Some { nodes; induced_edges = induced }
      end
      else if idx < n && slots > 0 then begin
        (* Optimistic completion: every remaining slot pairs with every
           chosen or remaining vertex. *)
        let optimistic =
          induced
          + Support.Util.choose slots 2
          + (slots * picked)
        in
        if optimistic >= p then begin
          let v = order.(idx) in
          (* Include v. *)
          let gain =
            Support.Util.array_count (fun u -> chosen.(u)) (Graph.neighbors g v)
          in
          chosen.(v) <- true;
          dfs (idx + 1) (picked + 1) (slots - 1) (induced + gain);
          chosen.(v) <- false;
          (* Exclude v. *)
          if !solution = None then dfs (idx + 1) picked slots induced
        end
      end
    in
    let rec deepen s =
      if s > n then None
      else begin
        solution := None;
        dfs 0 0 s 0;
        match !solution with Some sol -> Some sol | None -> deepen (s + 1)
      end
    in
    deepen (size_lower_bound p)
  end

let optimum_bb g ~p =
  match exact_bb g ~p with
  | Some { nodes; _ } -> Some (Array.length nodes)
  | None -> None

(* Greedy heuristic: repeatedly add the node with the largest marginal
   number of newly induced edges. *)
let greedy g ~p =
  let n = Graph.num_nodes g in
  if p <= 0 then Some { nodes = [||]; induced_edges = 0 }
  else if Graph.num_edges g < p then None
  else begin
    let chosen = Array.make n false in
    let induced = ref 0 in
    let size = ref 0 in
    while !induced < p && !size < n do
      let best = ref (-1) and best_gain = ref (-1) in
      for v = 0 to n - 1 do
        if not chosen.(v) then begin
          let gain =
            Support.Util.array_count
              (fun u -> chosen.(u))
              (Graph.neighbors g v)
          in
          if gain > !best_gain then begin
            best_gain := gain;
            best := v
          end
        end
      done;
      chosen.(!best) <- true;
      induced := !induced + !best_gain;
      incr size
    done;
    if !induced >= p then begin
      let nodes =
        Array.of_list
          (List.filter (fun v -> chosen.(v)) (List.init n Fun.id))
      in
      Some { nodes; induced_edges = !induced }
    end
    else None
  end

let is_solution g ~p sol =
  Graph.induced_edge_count g sol.nodes >= p
  && sol.induced_edges = Graph.induced_edge_count g sol.nodes
