(* 3-Dimensional Matching (3DM) [23]: given equal-size classes X, Y, Z (each
   of size q, represented as 0..q-1) and triples in X x Y x Z, decide
   whether q pairwise-disjoint triples exist.  Source problem of the
   NP-hardness of hierarchy assignment with b2 = 3 (Lemma H.2); it stays
   NP-hard for 3-regular instances (every element in exactly 3 triples). *)

type instance = { q : int; triples : (int * int * int) array }

let create ~q triples =
  List.iter
    (fun (x, y, z) ->
      if x < 0 || x >= q || y < 0 || y >= q || z < 0 || z >= q then
        invalid_arg "Three_dm.create: element out of range")
    triples;
  { q; triples = Array.of_list (List.sort_uniq Support.Order.int_triple triples) }

let size t = t.q
let triples t = t.triples

let is_regular t ~degree =
  let count cls select =
    let c = Array.make t.q 0 in
    Array.iter (fun tr -> c.(select tr) <- c.(select tr) + 1) t.triples;
    ignore cls;
    Array.for_all (fun d -> d = degree) c
  in
  count `X (fun (x, _, _) -> x)
  && count `Y (fun (_, y, _) -> y)
  && count `Z (fun (_, _, z) -> z)

(* Perfect matching by backtracking on the smallest uncovered x. *)
let perfect_matching t =
  let by_x = Array.make t.q [] in
  Array.iter (fun ((x, _, _) as tr) -> by_x.(x) <- tr :: by_x.(x)) t.triples;
  let used_y = Array.make t.q false and used_z = Array.make t.q false in
  let chosen = ref [] in
  let rec go x =
    if x = t.q then true
    else begin
      let rec try_triples = function
        | [] -> false
        | (_, y, z) :: rest ->
            if (not used_y.(y)) && not used_z.(z) then begin
              used_y.(y) <- true;
              used_z.(z) <- true;
              chosen := (x, y, z) :: !chosen;
              if go (x + 1) then true
              else begin
                chosen := List.tl !chosen;
                used_y.(y) <- false;
                used_z.(z) <- false;
                try_triples rest
              end
            end
            else try_triples rest
      in
      try_triples by_x.(x)
    end
  in
  if go 0 then Some (List.rev !chosen) else None

let has_perfect_matching t = perfect_matching t <> None

let is_perfect_matching t matching =
  List.length matching = t.q
  && begin
       let ux = Array.make t.q false
       and uy = Array.make t.q false
       and uz = Array.make t.q false in
       List.for_all
         (fun ((x, y, z) as tr) ->
           let fresh = (not ux.(x)) && (not uy.(y)) && not uz.(z) in
           ux.(x) <- true;
           uy.(y) <- true;
           uz.(z) <- true;
           fresh && Array.mem tr t.triples)
         matching
     end

(* Random instance containing a planted perfect matching; extra triples are
   sprinkled uniformly. *)
let random_yes rng ~q ~extra =
  let py = Support.Rng.permutation rng q and pz = Support.Rng.permutation rng q in
  let planted = Support.Util.list_init q (fun x -> (x, py.(x), pz.(x))) in
  let extras =
    Support.Util.list_init extra (fun _ ->
        (Support.Rng.int rng q, Support.Rng.int rng q, Support.Rng.int rng q))
  in
  create ~q (planted @ extras)
