(* Maximum clique, source problem of the bounded-height mu_p hardness
   (Theorem 5.5) and the canonical W[1]-complete problem (Appendix C.6).
   Simple branch-and-bound: extend a partial clique with common-neighbour
   candidates, pruning when |clique| + |candidates| cannot beat the best. *)

let max_clique g =
  let best = ref [] in
  let rec extend clique candidates =
    if List.length clique + List.length candidates > List.length !best then
      match candidates with
      | [] -> if List.length clique > List.length !best then best := clique
      | v :: rest ->
          (* Branch 1: include v. *)
          let with_v =
            List.filter (fun u -> Graph.has_edge g v u) rest
          in
          extend (v :: clique) with_v;
          (* Branch 2: exclude v. *)
          extend clique rest
  in
  extend [] (List.init (Graph.num_nodes g) Fun.id);
  Array.of_list (List.sort Int.compare !best)

let clique_number g = Array.length (max_clique g)

let has_clique g ~size = clique_number g >= size

let is_clique g nodes =
  let ok = ref true in
  Array.iteri
    (fun i u ->
      Array.iteri
        (fun j v -> if i < j && not (Graph.has_edge g u v) then ok := false)
        nodes)
    nodes;
  !ok

(* A clique of exactly [size], if one exists. *)
let find_clique g ~size =
  let c = max_clique g in
  if Array.length c >= size then Some (Array.sub c 0 size) else None
