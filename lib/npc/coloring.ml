(* Graph k-coloring (3-coloring by default): source problem of the
   para-NP-hardness of multi-constraint partitioning (Lemma 6.3) and of the
   layer-wise hardness (Theorem 5.2).  Backtracking with a
   most-constrained-first node order. *)

let solve ?(k = 3) g =
  let n = Graph.num_nodes g in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Int.compare (Graph.degree g b) (Graph.degree g a)) order;
  let color = Array.make n (-1) in
  let rec go i used =
    if i = n then true
    else begin
      let v = order.(i) in
      let rec try_color c =
        if c >= min k (used + 1) then false
        else begin
          let conflict =
            Array.exists (fun u -> color.(u) = c) (Graph.neighbors g v)
          in
          if not conflict then begin
            color.(v) <- c;
            if go (i + 1) (max used (c + 1)) then true
            else begin
              color.(v) <- -1;
              try_color (c + 1)
            end
          end
          else try_color (c + 1)
        end
      in
      try_color 0
    end
  in
  if go 0 0 then Some (Array.copy color) else None

let is_colorable ?k g = solve ?k g <> None

let is_valid_coloring ?(k = 3) g color =
  Array.length color = Graph.num_nodes g
  && Array.for_all (fun c -> c >= 0 && c < k) color
  && Array.for_all (fun (u, v) -> color.(u) <> color.(v)) (Graph.edges g)

(* Small named instances for the reduction tests. *)
let petersen () =
  Graph.of_edges ~n:10
    [
      (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (* outer cycle *)
      (5, 7); (7, 9); (9, 6); (6, 8); (8, 5); (* inner star *)
      (0, 5); (1, 6); (2, 7); (3, 8); (4, 9); (* spokes *)
    ]
(* 3-chromatic. *)

let k4 () = Graph.complete 4 (* not 3-colorable *)
