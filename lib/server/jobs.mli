(** Single-flight job registry: one solve per fingerprint, however many
    clients ask.

    The content-addressed cache collapses identical requests across
    time; this registry collapses them across clients at the same
    instant.  A submit matching an in-flight fingerprint attaches as a
    waiter instead of taking a queue slot; on completion, every waiter
    gets a result frame (first in submission order is the ["solve"] /
    ["cache"] source, the rest ["collapsed"]).

    Cancellation is per-waiter — it removes {e your} interest.  Only
    when the last waiter leaves a still-queued entry does the job die;
    a running job always finishes, and its result feeds the cache. *)

type waiter = { w_client : int; w_id : int; w_submit_ns : int64 }

type entry = {
  j_key : int;  (** the pool index *)
  j_fp : string;
  j_job : Engine.Spec.job;
  mutable j_waiters : waiter list;  (** submission order *)
  mutable j_started_ns : int64 option;  (** [None] while queued *)
}

type t

val create : unit -> t

val submit :
  t ->
  fingerprint:string ->
  job:Engine.Spec.job ->
  client:int ->
  id:int ->
  now:int64 ->
  [ `New of entry | `Attached of entry ]
(** [`New] allocated a fresh key (submit it to the pool); [`Attached]
    joined an in-flight entry (do not). *)

val start : t -> key:int -> now:int64 -> unit
(** The pool forked this entry's worker: record its queue-exit time. *)

val complete : t -> key:int -> entry option
(** Remove a finished entry, returning it (with its waiters) for the
    respond path.  [None] if the key is not live (e.g. aborted). *)

val cancel :
  t ->
  client:int ->
  id:int ->
  [ `Unknown  (** no such waiter *)
  | `Detached  (** waiter removed; others still wait *)
  | `Orphaned  (** waiter removed; the running job finishes for the cache *)
  | `Abort of int  (** entry removed while queued — cancel this pool key *)
  ]

val forget_client : t -> client:int -> int list
(** Drop all of a disconnected client's waiters; returns pool keys of
    queued entries left waiterless, for the daemon to cancel. *)

val find_by_key : t -> int -> entry option
val find_by_waiter : t -> client:int -> id:int -> entry option
val live : t -> int

val remember :
  t -> client:int -> id:int -> source:Protocol.source -> record:Obs.Json.t ->
  unit
(** Keep a delivered result for [Protocol.Result] re-requests (bounded
    FIFO; oldest entries are forgotten first). *)

val recall : t -> client:int -> id:int -> (Protocol.source * Obs.Json.t) option
