(* A steppable serve-protocol client.

   Deliberately not a blocking convenience wrapper: the test suite runs
   daemon and clients interleaved in ONE thread (tests can neither fork
   nor spawn threads — SRC08 and the repo's single-threaded design), so
   every operation here is non-blocking and progress happens in [step].
   The load generator drives many of these concurrently off one select
   loop for the same reason. *)

type t = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  out : Buffer.t;
  mutable inbox : Protocol.response list;  (* newest first *)
  mutable closed : bool;
  mutable error : string option;
}

let connect endpoint =
  let sock () =
    match (endpoint : Daemon.endpoint) with
    | Daemon.Unix_socket path ->
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Daemon.Tcp (host, port) ->
        let addr =
          if String.equal host "" then Unix.inet_addr_loopback
          else Unix.inet_addr_of_string host
        in
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (addr, port));
        fd
  in
  match sock () with
  | fd ->
      (* Blocking connect (the listener's backlog accepts immediately),
         non-blocking everything after. *)
      Unix.set_nonblock fd;
      Ok
        {
          fd;
          dec = Protocol.decoder ();
          out = Buffer.create 1024;
          inbox = [];
          closed = false;
          error = None;
        }
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "connect: %s: %s" fn (Unix.error_message e))

let request t req =
  if not t.closed then
    Buffer.add_string t.out (Protocol.encode (Protocol.request_to_json req))

let pending_output t = Buffer.length t.out > 0
let closed t = t.closed
let error t = t.error

let fail t msg =
  if t.error = None then t.error <- Some msg;
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let flush_out t =
  if (not t.closed) && Buffer.length t.out > 0 then begin
    let data = Buffer.contents t.out in
    match Unix.single_write_substring t.fd data 0 (String.length data) with
    | written ->
        Buffer.clear t.out;
        if written < String.length data then
          Buffer.add_substring t.out data written (String.length data - written)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        fail t "connection reset while writing"
  end

let read_in t =
  if not t.closed then begin
    let chunk = Bytes.create 65536 in
    match Unix.read t.fd chunk 0 (Bytes.length chunk) with
    | 0 -> close t (* orderly EOF from the daemon *)
    | n -> (
        Protocol.feed t.dec (Bytes.sub_string chunk 0 n);
        let rec drain () =
          match Protocol.next t.dec with
          | None -> ()
          | Some json ->
              (match Protocol.response_of_json json with
              | Ok resp -> t.inbox <- resp :: t.inbox
              | Error e -> fail t (Printf.sprintf "bad response frame: %s" e));
              drain ()
        in
        drain ();
        match Protocol.decoder_error t.dec with
        | Some e -> fail t (Printf.sprintf "framing: %s" e)
        | None -> ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        fail t "connection reset while reading"
  end

let step ?(timeout = 0.0) t =
  if not t.closed then begin
    flush_out t;
    (match
       Unix.select [ t.fd ] [] [] timeout
     with
    | readable, _, _ -> if readable <> [] then read_in t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    flush_out t
  end

let recv t =
  match List.rev t.inbox with
  | [] -> None
  | oldest :: rest ->
      t.inbox <- List.rev rest;
      Some oldest
