(* Load-generator engine: concurrent steppable clients, closed- or
   open-loop arrival, and a latency-SLO report.

   Closed loop: each client keeps one request outstanding — throughput
   is set by the server, the classic saturation probe.  Open loop:
   submits fire on a fixed schedule whatever the server is doing, which
   is what exposes queueing and backpressure (closed-loop benchmarks
   famously hide both; the daemon's Busy frames only show up when
   arrivals do not wait for completions).

   The request mix is controlled by [distinct]: requests cycle through
   that many distinct jobs, so distinct >= requests is a cold sweep
   (every solve unique), small distinct is duplicate-heavy (the cache
   and single-flight collapse should absorb most of it), and a repeated
   run against a warm cache dir is the warm mix.

   Everything is steppable ([step] makes one round of progress) so the
   test suite can interleave a daemon and a whole load run in one
   thread; bin/loadgen is a thin flag-parsing wrapper over [run]. *)

type mode = Closed | Open_rate of float

type config = {
  endpoint : Daemon.endpoint;
  clients : int;
  requests : int;  (* total submits across all clients *)
  mode : mode;
  distinct : int;  (* distinct jobs the requests cycle through *)
  n : int;  (* generated-instance size *)
  k : int;
  seed : int;
  threads : int;  (* > 0 marks the jobs parallel (domain-based solver) *)
  shutdown_at_end : bool;  (* finish with a Shutdown frame (CI smoke) *)
}

let default_config =
  {
    endpoint = Daemon.Unix_socket "hypartition.sock";
    clients = 4;
    requests = 32;
    mode = Closed;
    distinct = 4;
    n = 40;
    k = 2;
    seed = 1;
    threads = 0;
    shutdown_at_end = false;
  }

type cstate = {
  c_client : Client.t;
  mutable c_next_id : int;
  mutable c_outstanding : (int * int64) list;  (* id -> submit time *)
  mutable c_accounted : bool;  (* dead client's outstanding written off *)
}

type t = {
  config : config;
  slo : Slo.t;
  started_ns : int64;
  states : cstate list;
  mutable sent : int;
  mutable next_due_ns : int64;  (* open loop: next scheduled submit *)
  mutable rr : int;  (* open loop: round-robin cursor *)
  mutable shutdown_sent : bool;
}

let job_for t i =
  {
    Engine.Spec.instance =
      Engine.Spec.Generated { kind = Engine.Spec.Uniform; n = t.config.n };
    config =
      {
        Engine.Spec.default_config with
        Engine.Spec.k = t.config.k;
        parallel = t.config.threads > 0;
      };
    seed = t.config.seed + (i mod max 1 t.config.distinct);
    timeout_s = Some 60.0;
  }

let create config =
  let rec connect_all acc = function
    | 0 -> Ok (List.rev acc)
    | n -> (
        match Client.connect config.endpoint with
        | Ok c ->
            connect_all
              ({ c_client = c; c_next_id = 1; c_outstanding = [];
                 c_accounted = false }
              :: acc)
              (n - 1)
        | Error e ->
            List.iter (fun s -> Client.close s.c_client) acc;
            Error e)
  in
  match connect_all [] (max 1 config.clients) with
  | Error e -> Error e
  | Ok states ->
      Ok
        {
          config = { config with requests = max 1 config.requests };
          slo = Slo.create ();
          started_ns = Support.Util.monotonic_ns ();
          states;
          sent = 0;
          next_due_ns = Support.Util.monotonic_ns ();
          rr = 0;
          shutdown_sent = false;
        }

let submit_one t s =
  let id = s.c_next_id in
  s.c_next_id <- id + 1;
  let job = job_for t t.sent in
  t.sent <- t.sent + 1;
  Client.request s.c_client (Protocol.Submit { id; job });
  s.c_outstanding <- (id, Support.Util.monotonic_ns ()) :: s.c_outstanding

let outcome_of_source = function
  | Protocol.Cache -> Slo.Ok_cache
  | Protocol.Solve -> Slo.Ok_solve
  | Protocol.Collapsed -> Slo.Ok_collapsed

let settle t s id outcome =
  match List.assoc_opt id s.c_outstanding with
  | None -> () (* duplicate result frame or late busy; already settled *)
  | Some submit_ns ->
      s.c_outstanding <- List.remove_assoc id s.c_outstanding;
      let latency_s =
        Support.Util.seconds_of_ns
          (Int64.sub (Support.Util.monotonic_ns ()) submit_ns)
      in
      Slo.record t.slo outcome ~latency_s

let drain_responses t s =
  let rec go () =
    match Client.recv s.c_client with
    | None -> ()
    | Some resp ->
        (match resp with
        | Protocol.Result_frame { id; source; _ } ->
            settle t s id (outcome_of_source source)
        | Protocol.Busy { id; _ } -> settle t s id Slo.Busy
        | Protocol.Error_frame { id = Some id; _ } -> settle t s id Slo.Error
        | Protocol.Error_frame { id = None; _ } -> ()
        | Protocol.Ack _ | Protocol.Info _ | Protocol.Cancelled _
        | Protocol.Stats_frame _ | Protocol.Bye ->
            ());
        go ()
  in
  go ()

(* A client that died (transport error) can never deliver its
   outstanding results: write them off as errors exactly once. *)
let account_dead t s =
  if Client.closed s.c_client && not s.c_accounted then begin
    s.c_accounted <- true;
    List.iter (fun (_, _) -> Slo.record t.slo Slo.Error ~latency_s:0.0)
      s.c_outstanding;
    s.c_outstanding <- []
  end

let all_settled t =
  t.sent >= t.config.requests
  && List.for_all (fun s -> s.c_outstanding = []) t.states

let step t =
  let now = Support.Util.monotonic_ns () in
  (* Arrivals. *)
  (match t.config.mode with
  | Closed ->
      List.iter
        (fun s ->
          if
            t.sent < t.config.requests
            && s.c_outstanding = []
            && not (Client.closed s.c_client)
          then submit_one t s)
        t.states
  | Open_rate rate ->
      let interval_ns = Int64.of_float (1e9 /. Float.max 0.001 rate) in
      let continue = ref true in
      while
        !continue && t.sent < t.config.requests
        && Int64.compare t.next_due_ns now <= 0
      do
        let live =
          Array.of_list
            (List.filter (fun s -> not (Client.closed s.c_client)) t.states)
        in
        if Array.length live = 0 then
          continue := false (* every connection died; stop arriving *)
        else begin
          let s = live.(t.rr mod Array.length live) in
          t.rr <- t.rr + 1;
          submit_one t s;
          t.next_due_ns <- Int64.add t.next_due_ns interval_ns
        end
      done);
  (* Progress and accounting. *)
  List.iter
    (fun s ->
      Client.step ~timeout:0.002 s.c_client;
      drain_responses t s;
      account_dead t s)
    t.states;
  (* Optional goodbye once the measurement is over. *)
  if all_settled t && t.config.shutdown_at_end && not t.shutdown_sent then begin
    t.shutdown_sent <- true;
    match List.find_opt (fun s -> not (Client.closed s.c_client)) t.states with
    | Some s -> Client.request s.c_client Protocol.Shutdown
    | None -> ()
  end

let finished t =
  all_settled t
  && ((not t.config.shutdown_at_end)
     || t.shutdown_sent
        && List.for_all
             (fun s ->
               Client.closed s.c_client
               || not (Client.pending_output s.c_client))
             t.states)

let report t =
  let wall_s =
    Support.Util.seconds_of_ns
      (Int64.sub (Support.Util.monotonic_ns ()) t.started_ns)
  in
  Slo.report t.slo ~wall_s

let close t = List.iter (fun s -> Client.close s.c_client) t.states

let run t =
  while not (finished t) do
    step t
  done;
  (* Give the daemon a beat to read the shutdown frame we flushed. *)
  if t.shutdown_sent then
    List.iter (fun s -> Client.step ~timeout:0.01 s.c_client) t.states;
  let r = report t in
  close t;
  r
