(** Hot-instance LRU: parsed hypergraphs for repeated file-backed
    requests.

    The daemon parses an Hmetis file once, in the coordinator; forked
    workers reach the parsed structure through copy-on-write (the
    [?lookup] hook of [Engine.Runner.execute]), so repeated requests
    skip both the disk read and the parse.  Entries are keyed by path
    {e and} content fingerprint — an instance file edited between
    requests misses instead of serving a stale parse.  Capacity is an
    entry count; the least recently used entry is evicted. *)

type t

val create : capacity:int -> t
(** Capacity is clamped to ≥ 1. *)

val load : t -> string -> Hypergraph.t option
(** Cached parse of the file at this path: an LRU hit, or parse + insert
    (evicting if full).  [None] when the file is unreadable or malformed
    — the worker then reports the real error through its own load. *)

val lookup : t -> string -> Hypergraph.t option
(** Hit-only variant (no parse, no insert): what workers consult.  Also
    refreshes recency. *)

val length : t -> int
