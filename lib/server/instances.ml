(* Hot-instance LRU: parsed hypergraphs for repeated file-backed
   requests.

   The daemon parses an Hmetis file once, in the coordinator, and the
   forked worker reaches the parsed structure through copy-on-write —
   repeated requests against the same instance skip both the disk read
   and the parse (Runner.execute's ?lookup hook).  Entries are keyed by
   path + content fingerprint, so an instance file edited between
   requests misses instead of serving the stale parse.

   Size is bounded by entry count (instances in one serving set are
   comparably sized; a count bound is predictable where a byte bound
   over an abstract hypergraph would be a guess). *)

type entry = { e_path : string; e_fp : string; e_hg : Hypergraph.t }

type t = {
  capacity : int;
  mutable entries : entry list;  (* most recently used first *)
}

let c_hit = Obs.Counter.make "server.instances.hit"
let c_miss = Obs.Counter.make "server.instances.miss"
let c_evict = Obs.Counter.make "server.instances.evict"

let create ~capacity = { capacity = max 1 capacity; entries = [] }
let length t = List.length t.entries

let content_fp path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Some (Engine.Fingerprint.digest content)
  | exception Sys_error _ -> None

let find t path =
  match content_fp path with
  | None -> None (* unreadable now; let the worker report the real error *)
  | Some fp -> (
      match
        List.partition
          (fun e -> String.equal e.e_path path && String.equal e.e_fp fp)
          t.entries
      with
      | [ e ], rest ->
          Obs.Counter.incr c_hit;
          t.entries <- e :: rest;
          Some e.e_hg
      | _ ->
          Obs.Counter.incr c_miss;
          None)

let load t path =
  match find t path with
  | Some hg -> Some hg
  | None -> (
      match content_fp path with
      | None -> None
      | Some fp -> (
          match Hypergraph.Hmetis.load path with
          | exception (Failure _ | Sys_error _) -> None
          | hg ->
              (* Drop any stale parse of the same path before inserting. *)
              let keep =
                List.filter
                  (fun e -> not (String.equal e.e_path path))
                  t.entries
              in
              let keep =
                if List.length keep >= t.capacity then begin
                  Obs.Counter.incr c_evict;
                  List.filteri (fun i _ -> i < t.capacity - 1) keep
                end
                else keep
              in
              t.entries <- { e_path = path; e_fp = fp; e_hg = hg } :: keep;
              Some hg))

let lookup t path = find t path
