(* Re-export root for the serving subsystem. *)

module Protocol = Protocol
module Admission = Admission
module Instances = Instances
module Jobs = Jobs
module Slo = Slo
module Daemon = Daemon
module Client = Client
module Loadgen = Loadgen
