(** Load-generator engine: concurrent steppable clients, closed- or
    open-loop arrivals, latency-SLO report.

    Closed loop keeps one request outstanding per client (the server
    sets the pace — a saturation probe).  Open loop fires submits on a
    fixed schedule regardless of completions — the mode that actually
    exposes queueing and [Busy] backpressure.  [distinct] shapes the
    mix: [distinct >= requests] is a cold sweep, a small [distinct] is
    duplicate-heavy (cache + single-flight should collapse it), and a
    re-run against a warm cache dir is the warm mix.

    [bin/loadgen] is a thin CLI wrapper over {!create}/{!run}. *)

type mode = Closed | Open_rate of float  (** submits per second *)

type config = {
  endpoint : Daemon.endpoint;
  clients : int;
  requests : int;  (** total submits across all clients *)
  mode : mode;
  distinct : int;  (** distinct jobs the requests cycle through *)
  n : int;  (** generated-instance size *)
  k : int;
  seed : int;
  threads : int;
      (** [> 0] marks the generated jobs parallel, so the daemon's
          workers run the domain-based solver (with however many domains
          the daemon was started with); [0] = sequential jobs *)
  shutdown_at_end : bool;
      (** send [Shutdown] once all requests settle — CI smoke uses this
          to test graceful drain *)
}

val default_config : config
(** 4 clients, 32 closed-loop requests over 4 distinct jobs, n = 40,
    k = 2, sequential jobs, no shutdown. *)

type t

val create : config -> (t, string) result
(** Connect all clients (all-or-nothing). *)

val step : t -> unit
(** One round: fire due arrivals, advance every client, settle
    responses into the SLO accounting. *)

val finished : t -> bool

val run : t -> Obs.Json.t
(** [step] until {!finished}, close the clients, return the
    [hypartition-loadgen/1] report. *)

val report : t -> Obs.Json.t
(** The report so far (also valid mid-run). *)

val close : t -> unit
