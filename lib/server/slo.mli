(** Latency-SLO accounting: per-request samples in, the
    [hypartition-loadgen/1] report out.

    Quantiles are nearest-rank over the completed-request latencies —
    exact for small sample sets, no interpolation — with the tail
    (p999) reported deliberately: a serving layer is judged by its
    tail.  Backpressure rejections are counted separately from errors;
    they are the admission controller doing its job, but a client still
    pays a retry for each one. *)

val schema_version : string
(** ["hypartition-loadgen/1"]. *)

type outcome =
  | Ok_cache  (** result served from the content-addressed cache *)
  | Ok_solve  (** result computed by a worker *)
  | Ok_collapsed  (** rode on an identical in-flight request *)
  | Busy  (** rejected with backpressure; no latency sample *)
  | Error  (** protocol or job error; no latency sample *)

type t

val create : unit -> t
val record : t -> outcome -> latency_s:float -> unit
val completed : t -> int
val total : t -> int

val percentile : float array -> float -> float
(** [percentile sorted q] with [sorted] ascending and [q] in [0, 1]:
    nearest-rank.  Empty input yields [0.0]. *)

val report : t -> wall_s:float -> Obs.Json.t
(** The [hypartition-loadgen/1] document: totals, latency quantiles,
    throughput, error/backpressure rates, cache-hit ratio
    ([(cache + collapsed) / ok]). *)
