(** The [hypartition serve] daemon: the batch engine as a long-lived
    partitioning service.

    One single-threaded loop multiplexes the listening socket, every
    client connection and the worker status pipes through the
    incremental {!Engine.Pool}.  Requests pass the {!Admission}
    controller (explicit [Busy] backpressure, never silent drops),
    collapse onto identical in-flight requests ({!Jobs}), are served
    from the content-addressed {!Engine.Cache} when a prior solve
    matches, and otherwise fork workers.  File-backed instances stay
    hot in an {!Instances} LRU that forked workers reach through
    copy-on-write.

    Every request is traced (request → queue-wait → solve → respond,
    trace id = job fingerprint) via {!Obs.Manual}, with worker shards
    absorbed under the request's solve span — report analytics work on
    server traces unchanged.

    Graceful drain (SIGINT or a [Shutdown] frame): stop accepting,
    reject new submits with [Busy draining], turn queued jobs into
    [Skipped] records (their waiters still get result frames), let
    running workers finish, flush every connection, absorb remaining
    shards. *)

type endpoint = Unix_socket of string | Tcp of string * int
(** [Tcp ("", port)] binds the loopback address. *)

type config = {
  endpoint : endpoint;
  pool : Engine.Pool.config;  (** [handle_sigint] is forced off — the
                                  daemon owns its signal discipline *)
  cache_dir : string option;  (** shared result store; [None] disables *)
  admission : Admission.config;
  lru_capacity : int;  (** hot-instance LRU entries *)
}

val default_config : config
(** Unix socket [hypartition.sock], 2 workers, no cache, default
    admission limits, 16 LRU entries. *)

type t

val create : config -> (t, string) result
(** Bind and listen (replacing a stale Unix socket file), open the
    cache, build the pool.  Errors are messages, not exceptions. *)

val step : ?timeout:float -> t -> unit
(** One loop iteration: fork/reap workers, accept, read and answer
    frames, flush output.  Blocks at most [timeout] (default 0.05 s).
    Exposed so tests can interleave a daemon and its clients in one
    thread. *)

val initiate_drain : t -> unit
(** Begin graceful shutdown (idempotent): see the module preamble. *)

val draining : t -> bool

val finished : t -> bool
(** Drain complete: no queued or running jobs and every connection
    flushed.  Call {!close} next. *)

val close : t -> unit
(** Close every socket, remove the Unix socket file, absorb leftover
    worker shards. *)

val run : t -> unit
(** [step] until {!finished}, then {!close}.  Installs a SIGINT handler
    (restored on exit) that triggers {!initiate_drain} — so Ctrl-C is a
    graceful drain, with zero orphan workers. *)

val stats_json : t -> Obs.Json.t
(** The body of the [Stats_frame]: uptime, queue depth and limits,
    request totals, cache and instance-LRU statistics. *)

val endpoint_name : endpoint -> string
(** ["unix:<path>"] or ["tcp:<host>:<port>"] — for logs. *)
