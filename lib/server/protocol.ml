(* The hypartition-serve/1 wire protocol.

   Length-prefixed JSONL: every frame is `<len>\n<json>\n`, where <len>
   is the byte length of the JSON line including its trailing newline.
   The prefix lets a reader size its buffer before parsing and reject
   oversized frames without reading them; stripping the length lines
   yields plain JSONL, so a captured session (e.g. via socat) can be fed
   to `hypartition trace` for validation.  Every frame carries the
   schema tag so a frame stream is self-describing from its first line.

   One request type per client verb (submit/status/result/cancel/stats/
   shutdown), one response type per server outcome; decoding is total —
   a malformed frame is an [Error], never an exception, and the daemon
   answers it with an [Error_frame] instead of dropping the link. *)

let schema_version = "hypartition-serve/1"

(* Frame size cap: a submit carries a job spec (small) and a result
   carries one record (metrics + an observability snapshot, generously
   under a megabyte); anything larger is a framing bug or an attack. *)
let max_frame_bytes = 4 * 1024 * 1024

type job_state = Queued | Running | Done_state | Unknown

let job_state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done_state -> "done"
  | Unknown -> "unknown"

let job_state_of_name = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done_state
  | "unknown" -> Some Unknown
  | _ -> None

type busy_reason = Queue_full | Client_limit | Draining

let busy_reason_name = function
  | Queue_full -> "queue_full"
  | Client_limit -> "client_limit"
  | Draining -> "draining"

let busy_reason_of_name = function
  | "queue_full" -> Some Queue_full
  | "client_limit" -> Some Client_limit
  | "draining" -> Some Draining
  | _ -> None

type source = Cache | Solve | Collapsed

let source_name = function
  | Cache -> "cache"
  | Solve -> "solve"
  | Collapsed -> "collapsed"

let source_of_name = function
  | "cache" -> Some Cache
  | "solve" -> Some Solve
  | "collapsed" -> Some Collapsed
  | _ -> None

type request =
  | Submit of { id : int; job : Engine.Spec.job }
  | Status of { id : int }
  | Result of { id : int }
  | Cancel of { id : int }
  | Stats
  | Shutdown

type response =
  | Ack of { id : int; fingerprint : string; position : int }
      (** admitted; [position] is the queue depth in front of it (0 =
          forked immediately or served from cache) *)
  | Busy of { id : int; reason : busy_reason; queue_depth : int }
      (** backpressure: NOT admitted, try again later *)
  | Info of { id : int; state : job_state; position : int option }
  | Result_frame of {
      id : int;
      source : source;
      record : Obs.Json.t;  (** a full hypartition-result/1 document *)
    }
  | Cancelled of { id : int }
  | Stats_frame of Obs.Json.t  (** daemon statistics, schema-free body *)
  | Error_frame of { id : int option; message : string }
  | Bye

(* ---- encoding ------------------------------------------------------------ *)

let obj typ fields =
  Obs.Json.Obj
    (("schema", Obs.Json.Str schema_version)
    :: ("type", Obs.Json.Str typ)
    :: fields)

let request_to_json = function
  | Submit { id; job } ->
      obj "submit"
        [ ("id", Obs.Json.Int id); ("job", Engine.Spec.to_json job) ]
  | Status { id } -> obj "status" [ ("id", Obs.Json.Int id) ]
  | Result { id } -> obj "result" [ ("id", Obs.Json.Int id) ]
  | Cancel { id } -> obj "cancel" [ ("id", Obs.Json.Int id) ]
  | Stats -> obj "stats" []
  | Shutdown -> obj "shutdown" []

let response_to_json = function
  | Ack { id; fingerprint; position } ->
      obj "ack"
        [
          ("id", Obs.Json.Int id);
          ("fingerprint", Obs.Json.Str fingerprint);
          ("position", Obs.Json.Int position);
        ]
  | Busy { id; reason; queue_depth } ->
      obj "busy"
        [
          ("id", Obs.Json.Int id);
          ("reason", Obs.Json.Str (busy_reason_name reason));
          ("queue_depth", Obs.Json.Int queue_depth);
        ]
  | Info { id; state; position } ->
      obj "info"
        (List.concat
           [
             [
               ("id", Obs.Json.Int id);
               ("state", Obs.Json.Str (job_state_name state));
             ];
             (match position with
             | Some p -> [ ("position", Obs.Json.Int p) ]
             | None -> []);
           ])
  | Result_frame { id; source; record } ->
      obj "result"
        [
          ("id", Obs.Json.Int id);
          ("source", Obs.Json.Str (source_name source));
          ("record", record);
        ]
  | Cancelled { id } -> obj "cancelled" [ ("id", Obs.Json.Int id) ]
  | Stats_frame body -> obj "stats" [ ("stats", body) ]
  | Error_frame { id; message } ->
      obj "error"
        (List.concat
           [
             (match id with Some i -> [ ("id", Obs.Json.Int i) ] | None -> []);
             [ ("message", Obs.Json.Str message) ];
           ])
  | Bye -> obj "bye" []

(* ---- decoding ------------------------------------------------------------ *)

let field name get j = Option.bind (Obs.Json.member name j) get
let int_field name j = field name Obs.Json.get_int j
let str_field name j = field name Obs.Json.get_str j

let check_schema j =
  match str_field "schema" j with
  | Some s when String.equal s schema_version -> Ok ()
  | Some s -> Error (Printf.sprintf "unsupported frame schema %s" s)
  | None -> Error "frame has no schema tag"

let with_id j k =
  match int_field "id" j with
  | Some id -> k id
  | None -> Error "frame has no id"

let request_of_json j =
  match check_schema j with
  | Error _ as e -> e
  | Ok () -> (
      match str_field "type" j with
      | None -> Error "frame has no type"
      | Some "submit" ->
          with_id j (fun id ->
              match Obs.Json.member "job" j with
              | None -> Error "submit frame has no job"
              | Some job_json -> (
                  match Engine.Spec.of_json job_json with
                  | Ok job -> Ok (Submit { id; job })
                  | Error e -> Error (Printf.sprintf "submit job: %s" e)))
      | Some "status" -> with_id j (fun id -> Ok (Status { id }))
      | Some "result" -> with_id j (fun id -> Ok (Result { id }))
      | Some "cancel" -> with_id j (fun id -> Ok (Cancel { id }))
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some t -> Error (Printf.sprintf "unknown request type %s" t))

let response_of_json j =
  match check_schema j with
  | Error _ as e -> e
  | Ok () -> (
      match str_field "type" j with
      | None -> Error "frame has no type"
      | Some "ack" ->
          with_id j (fun id ->
              match (str_field "fingerprint" j, int_field "position" j) with
              | Some fingerprint, Some position ->
                  Ok (Ack { id; fingerprint; position })
              | _ -> Error "ack frame missing fingerprint/position")
      | Some "busy" ->
          with_id j (fun id ->
              match
                ( Option.bind (str_field "reason" j) busy_reason_of_name,
                  int_field "queue_depth" j )
              with
              | Some reason, Some queue_depth ->
                  Ok (Busy { id; reason; queue_depth })
              | _ -> Error "busy frame missing reason/queue_depth")
      | Some "info" ->
          with_id j (fun id ->
              match Option.bind (str_field "state" j) job_state_of_name with
              | Some state ->
                  Ok (Info { id; state; position = int_field "position" j })
              | None -> Error "info frame has a bad state")
      | Some "result" ->
          with_id j (fun id ->
              match
                ( Option.bind (str_field "source" j) source_of_name,
                  Obs.Json.member "record" j )
              with
              | Some source, Some record ->
                  Ok (Result_frame { id; source; record })
              | _ -> Error "result frame missing source/record")
      | Some "cancelled" -> with_id j (fun id -> Ok (Cancelled { id }))
      | Some "stats" -> (
          match Obs.Json.member "stats" j with
          | Some body -> Ok (Stats_frame body)
          | None -> Error "stats frame has no body")
      | Some "error" ->
          (match str_field "message" j with
          | Some message -> Ok (Error_frame { id = int_field "id" j; message })
          | None -> Error "error frame has no message")
      | Some "bye" -> Ok Bye
      | Some t -> Error (Printf.sprintf "unknown response type %s" t))

(* ---- framing ------------------------------------------------------------- *)

let encode json =
  let line = Obs.Json.to_string json ^ "\n" in
  Printf.sprintf "%d\n%s" (String.length line) line

(* Incremental frame reader: feed it raw socket bytes, pull out parsed
   JSON documents.  A protocol violation (bad length line, oversized
   frame, unparsable JSON) poisons the decoder — the connection is not
   recoverable past a framing error, because byte boundaries are lost. *)
type decoder = {
  d_buf : Buffer.t;
  mutable d_want : int option;  (* the announced body length, once read *)
  mutable d_ready : Obs.Json.t list;  (* decoded, oldest first (reversed) *)
  mutable d_error : string option;
}

let decoder () =
  { d_buf = Buffer.create 4096; d_want = None; d_ready = []; d_error = None }

let decoder_error d = d.d_error

(* Consume [n] bytes off the front of the buffer. *)
let consume d n =
  let all = Buffer.contents d.d_buf in
  Buffer.clear d.d_buf;
  Buffer.add_substring d.d_buf all n (String.length all - n)

let rec pump d =
  if d.d_error = None then
    match d.d_want with
    | None -> (
        let all = Buffer.contents d.d_buf in
        match String.index_opt all '\n' with
        | None ->
            if String.length all > 20 then
              d.d_error <- Some "length line too long"
        | Some nl -> (
            let line = String.sub all 0 nl in
            match int_of_string_opt (String.trim line) with
            | Some n when n > 0 && n <= max_frame_bytes ->
                consume d (nl + 1);
                d.d_want <- Some n;
                pump d
            | Some n ->
                d.d_error <-
                  Some (Printf.sprintf "frame length %d out of bounds" n)
            | None ->
                d.d_error <-
                  Some (Printf.sprintf "bad frame length line %S" line)))
    | Some want ->
        if Buffer.length d.d_buf >= want then begin
          let body = Buffer.sub d.d_buf 0 want in
          consume d want;
          d.d_want <- None;
          (match Obs.Json.parse (String.trim body) with
          | Ok json -> d.d_ready <- json :: d.d_ready
          | Error e -> d.d_error <- Some (Printf.sprintf "frame body: %s" e));
          pump d
        end

let feed d bytes =
  if d.d_error = None then begin
    Buffer.add_string d.d_buf bytes;
    pump d
  end

let next d =
  match List.rev d.d_ready with
  | [] -> None
  | oldest :: rest ->
      d.d_ready <- List.rev rest;
      Some oldest
