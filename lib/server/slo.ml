(* Latency-SLO accounting for the load generator.

   Samples accumulate per finished request; the report is the
   hypartition-loadgen/1 JSON document CI validates and gates on:
   latency quantiles (nearest-rank on the sorted sample set), thin-tail
   p999 included deliberately — a serving layer is judged by its tail —
   plus throughput and the two failure rates that matter to a client
   (errors, and backpressure rejections, which are not errors but do
   consume a retry budget). *)

let schema_version = "hypartition-loadgen/1"

type outcome = Ok_cache | Ok_solve | Ok_collapsed | Busy | Error

type t = {
  mutable latencies : float list;  (* completed requests only, seconds *)
  mutable n_cache : int;
  mutable n_solve : int;
  mutable n_collapsed : int;
  mutable n_busy : int;
  mutable n_error : int;
}

let create () =
  {
    latencies = [];
    n_cache = 0;
    n_solve = 0;
    n_collapsed = 0;
    n_busy = 0;
    n_error = 0;
  }

let record t outcome ~latency_s =
  match outcome with
  | Ok_cache ->
      t.n_cache <- t.n_cache + 1;
      t.latencies <- latency_s :: t.latencies
  | Ok_solve ->
      t.n_solve <- t.n_solve + 1;
      t.latencies <- latency_s :: t.latencies
  | Ok_collapsed ->
      t.n_collapsed <- t.n_collapsed + 1;
      t.latencies <- latency_s :: t.latencies
  | Busy -> t.n_busy <- t.n_busy + 1
  | Error -> t.n_error <- t.n_error + 1

let completed t = t.n_cache + t.n_solve + t.n_collapsed
let total t = completed t + t.n_busy + t.n_error

(* Nearest-rank percentile over a sorted array: the smallest sample such
   that at least q of the distribution is at or below it.  Exact for
   small sample sets, no interpolation to invent latencies nobody saw. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let report t ~wall_s =
  let sorted = Array.of_list t.latencies in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let sum = Array.fold_left ( +. ) 0.0 sorted in
  let tot = total t in
  let ok = completed t in
  let rate count = if tot = 0 then 0.0 else float_of_int count /. float_of_int tot in
  let hit_ratio =
    if ok = 0 then 0.0
    else float_of_int (t.n_cache + t.n_collapsed) /. float_of_int ok
  in
  let open Obs.Json in
  Obj
    [
      ("schema", Str schema_version);
      ( "totals",
        Obj
          [
            ("requests", Int tot);
            ("ok", Int ok);
            ("busy", Int t.n_busy);
            ("errors", Int t.n_error);
          ] );
      ( "latency_s",
        Obj
          [
            ("p50", Float (percentile sorted 0.50));
            ("p99", Float (percentile sorted 0.99));
            ("p999", Float (percentile sorted 0.999));
            ("min", Float (if n = 0 then 0.0 else sorted.(0)));
            ("max", Float (if n = 0 then 0.0 else sorted.(n - 1)));
            ("mean", Float (if n = 0 then 0.0 else sum /. float_of_int n));
          ] );
      ( "throughput_rps",
        Float (if wall_s <= 0.0 then 0.0 else float_of_int ok /. wall_s) );
      ( "rates",
        Obj
          [
            ("error", Float (rate t.n_error));
            ("backpressure", Float (rate t.n_busy));
          ] );
      ( "cache",
        Obj
          [
            ("cache", Int t.n_cache);
            ("solve", Int t.n_solve);
            ("collapsed", Int t.n_collapsed);
            ("hit_ratio", Float hit_ratio);
          ] );
      ("wall_s", Float wall_s);
    ]
