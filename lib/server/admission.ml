(* Admission control: the daemon's only defense against unbounded
   queueing.

   Two limits, checked in order:

   - a per-client in-flight cap, so one chatty client cannot occupy the
     whole queue, and
   - a global outstanding cap (queued + running leaders + followers),
     the bounded queue itself.

   Admission is bookkeeping only — the caller owns the actual queue (the
   pool's pending list) and must [release] every ticket it was granted,
   including follower tickets for collapsed duplicates and tickets whose
   job was cancelled.  Rejections are explicit protocol responses
   (Protocol.Busy), never silent drops: under overload a client learns
   the queue depth and backs off, instead of watching its socket fill
   up. *)

type config = { queue_limit : int; per_client_limit : int }

let default_config = { queue_limit = 64; per_client_limit = 8 }

type decision = Admit | Queue_full | Client_limit

type t = {
  config : config;
  per_client : (int, int) Hashtbl.t;  (* client id -> outstanding tickets *)
  mutable outstanding : int;
}

let c_admitted = Obs.Counter.make "server.admission.admitted"
let c_queue_full = Obs.Counter.make "server.admission.queue_full"
let c_client_limit = Obs.Counter.make "server.admission.client_limit"

let create config =
  {
    config =
      {
        queue_limit = max 1 config.queue_limit;
        per_client_limit = max 1 config.per_client_limit;
      };
    per_client = Hashtbl.create 16;
    outstanding = 0;
  }

let outstanding t = t.outstanding

let client_outstanding t ~client =
  Option.value ~default:0 (Hashtbl.find_opt t.per_client client)

let try_admit t ~client =
  if client_outstanding t ~client >= t.config.per_client_limit then begin
    Obs.Counter.incr c_client_limit;
    Client_limit
  end
  else if t.outstanding >= t.config.queue_limit then begin
    Obs.Counter.incr c_queue_full;
    Queue_full
  end
  else begin
    Hashtbl.replace t.per_client client (client_outstanding t ~client + 1);
    t.outstanding <- t.outstanding + 1;
    Obs.Counter.incr c_admitted;
    Admit
  end

let release t ~client =
  (match Hashtbl.find_opt t.per_client client with
  | Some n when n > 1 -> Hashtbl.replace t.per_client client (n - 1)
  | Some _ -> Hashtbl.remove t.per_client client
  | None -> ());
  if t.outstanding > 0 then t.outstanding <- t.outstanding - 1

let forget_client t ~client =
  (* A disconnect releases every ticket the client still held. *)
  match Hashtbl.find_opt t.per_client client with
  | None -> 0
  | Some n ->
      Hashtbl.remove t.per_client client;
      t.outstanding <- max 0 (t.outstanding - n);
      n
