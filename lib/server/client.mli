(** A steppable serve-protocol client.

    Non-blocking by construction: {!request} only buffers, {!step} makes
    all progress (flush, select, read, decode), {!recv} pops decoded
    responses in arrival order.  This shape lets the test suite
    interleave a daemon and several clients in one thread, and lets the
    load generator drive many connections off one loop. *)

type t

val connect : Daemon.endpoint -> (t, string) result

val request : t -> Protocol.request -> unit
(** Buffer one frame for sending; no I/O happens until {!step}. *)

val step : ?timeout:float -> t -> unit
(** Flush buffered output, wait up to [timeout] (default 0: poll) for
    input, decode arrived frames.  No-op when closed. *)

val recv : t -> Protocol.response option
(** Oldest not-yet-returned response, if any. *)

val pending_output : t -> bool

val closed : t -> bool
(** Closed by {!close}, orderly daemon EOF, or a fatal error. *)

val error : t -> string option
(** The first fatal transport/framing error, if one occurred. *)

val close : t -> unit
