(** Admission control: bounded outstanding work with explicit
    backpressure.

    Pure bookkeeping over two limits — a per-client in-flight cap
    (checked first, so one client cannot occupy the whole queue) and a
    global outstanding cap (the bounded queue).  The caller owns the
    actual queue and must {!release} every admitted ticket, including
    tickets for collapsed duplicates and cancelled jobs; rejections
    surface as [Protocol.Busy] frames, never silent drops. *)

type config = {
  queue_limit : int;  (** max outstanding tickets in total (≥ 1) *)
  per_client_limit : int;  (** max outstanding tickets per client (≥ 1) *)
}

val default_config : config
(** 64 outstanding, 8 per client. *)

type decision = Admit | Queue_full | Client_limit

type t

val create : config -> t

val try_admit : t -> client:int -> decision
(** Grant a ticket to [client] or say why not.  [Admit] increments both
    counts; the other decisions change nothing. *)

val release : t -> client:int -> unit
(** Return one of [client]'s tickets (job finished, collapsed duplicate
    answered, or queued job cancelled). *)

val forget_client : t -> client:int -> int
(** Release everything [client] still holds (disconnect); returns how
    many tickets were dropped. *)

val outstanding : t -> int
(** Total granted tickets — the protocol's reported queue depth. *)

val client_outstanding : t -> client:int -> int
