(* Single-flight job registry: one solve per fingerprint, no matter how
   many clients ask.

   The content-addressed cache collapses requests across time; this
   registry collapses them across clients at the same instant.  A submit
   whose fingerprint matches an entry still in flight attaches as a
   waiter instead of taking a queue slot — on completion every waiter
   gets a result frame (the first in submission order is the "solve" or
   "cache" source, the rest are "collapsed").

   Cancellation is per-waiter: cancelling removes {e your} interest.
   Only when the last waiter leaves a still-queued entry does the job
   itself die (the daemon then cancels it in the pool); a running job is
   never killed by cancellation — its result still feeds the cache. *)

type waiter = { w_client : int; w_id : int; w_submit_ns : int64 }

type entry = {
  j_key : int;  (* the pool index *)
  j_fp : string;
  j_job : Engine.Spec.job;
  mutable j_waiters : waiter list;  (* submission order *)
  mutable j_started_ns : int64 option;  (* None while queued *)
}

type t = {
  mutable next_key : int;
  by_key : (int, entry) Hashtbl.t;
  by_fp : (string, int) Hashtbl.t;  (* fingerprint -> live key *)
  by_waiter : (int * int, int) Hashtbl.t;  (* (client, id) -> live key *)
  (* Completed results kept for Result re-requests, bounded FIFO. *)
  recall : (int * int, Protocol.source * Obs.Json.t) Hashtbl.t;
  recall_order : (int * int) Queue.t;
  recall_limit : int;
}

let c_collapsed = Obs.Counter.make "server.jobs.collapsed"

let create () =
  {
    next_key = 0;
    by_key = Hashtbl.create 64;
    by_fp = Hashtbl.create 64;
    by_waiter = Hashtbl.create 64;
    recall = Hashtbl.create 256;
    recall_order = Queue.create ();
    recall_limit = 1024;
  }

let live t = Hashtbl.length t.by_key
let find_by_key t key = Hashtbl.find_opt t.by_key key

let find_by_waiter t ~client ~id =
  Option.bind (Hashtbl.find_opt t.by_waiter (client, id)) (find_by_key t)

let submit t ~fingerprint ~job ~client ~id ~now =
  let w = { w_client = client; w_id = id; w_submit_ns = now } in
  match Option.bind (Hashtbl.find_opt t.by_fp fingerprint) (find_by_key t) with
  | Some entry ->
      entry.j_waiters <- entry.j_waiters @ [ w ];
      Hashtbl.replace t.by_waiter (client, id) entry.j_key;
      Obs.Counter.incr c_collapsed;
      `Attached entry
  | None ->
      let key = t.next_key in
      t.next_key <- key + 1;
      let entry =
        { j_key = key; j_fp = fingerprint; j_job = job; j_waiters = [ w ];
          j_started_ns = None }
      in
      Hashtbl.replace t.by_key key entry;
      Hashtbl.replace t.by_fp fingerprint key;
      Hashtbl.replace t.by_waiter (client, id) key;
      `New entry

let start t ~key ~now =
  match find_by_key t key with
  | Some entry -> entry.j_started_ns <- Some now
  | None -> ()

let complete t ~key =
  match find_by_key t key with
  | None -> None
  | Some entry ->
      Hashtbl.remove t.by_key key;
      Hashtbl.remove t.by_fp entry.j_fp;
      List.iter
        (fun w -> Hashtbl.remove t.by_waiter (w.w_client, w.w_id))
        entry.j_waiters;
      Some entry

let cancel t ~client ~id =
  match Hashtbl.find_opt t.by_waiter (client, id) with
  | None -> `Unknown
  | Some key -> (
      match find_by_key t key with
      | None -> `Unknown
      | Some entry -> (
          entry.j_waiters <-
            List.filter
              (fun w -> not (w.w_client = client && w.w_id = id))
              entry.j_waiters;
          Hashtbl.remove t.by_waiter (client, id);
          match (entry.j_waiters, entry.j_started_ns) with
          | _ :: _, _ -> `Detached
          | [], Some _ ->
              (* Running with nobody waiting: let it finish, the result
                 still lands in the shared cache. *)
              `Orphaned
          | [], None ->
              Hashtbl.remove t.by_key key;
              Hashtbl.remove t.by_fp entry.j_fp;
              `Abort key))

let forget_client t ~client =
  (* Disconnect: drop the client's waiters everywhere; returns the keys
     of still-queued entries left waiterless (for the daemon to cancel
     in the pool). *)
  let doomed = ref [] in
  Hashtbl.iter
    (fun key entry ->
      let before = List.length entry.j_waiters in
      entry.j_waiters <-
        List.filter (fun w -> w.w_client <> client) entry.j_waiters;
      if List.length entry.j_waiters < before && entry.j_waiters = [] then
        if entry.j_started_ns = None then doomed := (key, entry) :: !doomed)
    t.by_key;
  let doomed_keys =
    List.map
      (fun (key, entry) ->
        Hashtbl.remove t.by_key key;
        Hashtbl.remove t.by_fp entry.j_fp;
        key)
      !doomed
  in
  let stale =
    Hashtbl.fold
      (fun ((c, _) as k) _ acc -> if c = client then k :: acc else acc)
      t.by_waiter []
  in
  List.iter (Hashtbl.remove t.by_waiter) stale;
  doomed_keys

let remember t ~client ~id ~source ~record =
  if Queue.length t.recall_order >= t.recall_limit then begin
    match Queue.take_opt t.recall_order with
    | Some oldest -> Hashtbl.remove t.recall oldest
    | None -> ()
  end;
  Queue.add (client, id) t.recall_order;
  Hashtbl.replace t.recall (client, id) (source, record)

let recall t ~client ~id = Hashtbl.find_opt t.recall (client, id)
