(** The [hypartition-serve/1] wire protocol: length-prefixed JSONL
    frames over a Unix-domain or TCP socket.

    Every frame is [<len>\n<json>\n], where [<len>] is the byte length
    of the JSON line including its newline; stripping the length lines
    yields plain JSONL, which is what [hypartition trace] validates.
    Every frame carries [("schema", "hypartition-serve/1")], so a
    captured stream is self-describing from its first line.

    Decoding is total: malformed frames are [Error]s the daemon answers
    with {!Error_frame}, never exceptions. *)

val schema_version : string
(** ["hypartition-serve/1"]. *)

val max_frame_bytes : int
(** Upper bound on one frame's JSON body; larger announcements poison
    the decoder. *)

type job_state = Queued | Running | Done_state | Unknown

val job_state_name : job_state -> string
(** ["queued"], ["running"], ["done"], ["unknown"]. *)

type busy_reason = Queue_full | Client_limit | Draining

val busy_reason_name : busy_reason -> string
(** ["queue_full"], ["client_limit"], ["draining"]. *)

type source = Cache | Solve | Collapsed

val source_name : source -> string
(** Where a result came from: ["cache"] (content-addressed store),
    ["solve"] (a worker ran it), ["collapsed"] (rode on another
    client's identical in-flight request). *)

(** {1 Frames}

    [id] is the {e client-chosen} request id, echoed verbatim — clients
    correlate responses by it, so it must be unique among that client's
    outstanding requests. *)

type request =
  | Submit of { id : int; job : Engine.Spec.job }
  | Status of { id : int }
  | Result of { id : int }  (** re-request a completed result *)
  | Cancel of { id : int }
  | Stats
  | Shutdown

type response =
  | Ack of { id : int; fingerprint : string; position : int }
      (** admitted; [position] is the queue depth in front of it (0 =
          forked immediately or served from cache) *)
  | Busy of { id : int; reason : busy_reason; queue_depth : int }
      (** backpressure: NOT admitted; retry later *)
  | Info of { id : int; state : job_state; position : int option }
  | Result_frame of {
      id : int;
      source : source;
      record : Obs.Json.t;  (** a full hypartition-result/1 document *)
    }
  | Cancelled of { id : int }
  | Stats_frame of Obs.Json.t
  | Error_frame of { id : int option; message : string }
  | Bye  (** shutdown acknowledged; the daemon is draining *)

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result
val response_to_json : response -> Obs.Json.t
val response_of_json : Obs.Json.t -> (response, string) result

(** {1 Framing} *)

val encode : Obs.Json.t -> string
(** One frame: length line + JSON line. *)

type decoder
(** Incremental frame reader.  Feed it raw socket bytes; pull parsed
    JSON documents.  A framing violation (bad length line, oversized or
    unparsable frame) poisons the decoder permanently — byte boundaries
    are lost, so the connection must be dropped. *)

val decoder : unit -> decoder
val feed : decoder -> string -> unit
val next : decoder -> Obs.Json.t option
(** Oldest complete frame not yet returned, if any. *)

val decoder_error : decoder -> string option
