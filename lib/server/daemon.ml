(* The hypartition serve daemon: the batch engine as a long-lived
   service.

   One single-threaded loop multiplexes everything through the pool's
   select: the listening socket, every client connection, and the worker
   status pipes.  Requests pass the admission controller (bounded queue,
   per-client cap — rejections are explicit Busy frames), collapse onto
   identical in-flight requests (Jobs), are served from the
   content-addressed cache when a prior solve matches, and otherwise
   fork workers through the incremental Engine.Pool.  Parsed file-backed
   instances stay hot in an LRU the forked workers reach through
   copy-on-write.

   Every request gets a trace/2 span tree — request → queue-wait →
   solve → respond — emitted retroactively (Obs.Manual) at respond
   time, stamped with the job fingerprint as its trace id; the worker's
   own shard is absorbed under the request's solve span.  PR 7's report
   analytics therefore work on server traces unchanged.

   Graceful drain (SIGINT or a Shutdown frame): stop accepting, reject
   new submits with Busy{draining}, turn queued jobs into Skipped
   records, let running workers finish, flush every connection, absorb
   all remaining shards, exit.  Zero orphan processes is a tested
   property, not an aspiration. *)

type endpoint = Unix_socket of string | Tcp of string * int

type config = {
  endpoint : endpoint;
  pool : Engine.Pool.config;
  cache_dir : string option;
  admission : Admission.config;
  lru_capacity : int;
}

let default_config =
  {
    endpoint = Unix_socket "hypartition.sock";
    pool = { Engine.Pool.default_config with jobs = 2; silence_worker_stdout = true };
    cache_dir = None;
    admission = Admission.default_config;
    lru_capacity = 16;
  }

type conn = {
  cn_id : int;
  cn_fd : Unix.file_descr;
  cn_dec : Protocol.decoder;
  cn_out : Buffer.t;
  mutable cn_closing : bool;  (* close once the out buffer drains *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  pool : Engine.Pool.t;
  cache : Engine.Cache.t option;
  admission : Admission.t;
  jobs : Jobs.t;
  instances : Instances.t;
  started_ns : int64;
  mutable conns : conn list;
  mutable next_conn_id : int;
  mutable accepting : bool;
  mutable draining : bool;
  mutable drain_requested : bool;  (* set from the SIGINT handler *)
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_busy : int;
  mutable n_cancelled : int;
  mutable n_cache_hits : int;
}

let c_requests = Obs.Counter.make "server.request.submitted"
let c_responses = Obs.Counter.make "server.request.completed"
let c_cache_hit = Obs.Counter.make "server.request.cache_hit"
let c_busy = Obs.Counter.make "server.request.busy"
let g_queue_depth = Obs.Gauge.make "server.queue.depth"
let h_request_wall = Obs.Histogram.make "server.request.wall_s"

let now_ns = Support.Util.monotonic_ns

(* ---- socket plumbing ----------------------------------------------------- *)

let open_listener = function
  | Unix_socket path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd
  | Tcp (host, port) ->
      let addr =
        if String.equal host "" then Unix.inet_addr_loopback
        else Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      Unix.set_nonblock fd;
      fd

let create config =
  match open_listener config.endpoint with
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Printf.sprintf "Daemon.create: %s %s: %s" fn arg (Unix.error_message e))
  | exception Sys_error msg -> Error (Printf.sprintf "Daemon.create: %s" msg)
  | listen_fd -> (
      let cache =
        Option.map
          (fun dir ->
            match Engine.Cache.open_ dir with
            | Ok c -> Ok c
            | Error e -> Error e)
          config.cache_dir
      in
      match cache with
      | Some (Error e) ->
          Unix.close listen_fd;
          Error (Printf.sprintf "Daemon.create: %s" e)
      | None | Some (Ok _) ->
          let cache =
            match cache with Some (Ok c) -> Some c | _ -> None
          in
          let instances = Instances.create ~capacity:config.lru_capacity in
          (* The worker closure runs in the forked child; the LRU's
             parsed instances are visible there through copy-on-write.
             Solver domains (for jobs marked parallel) are spawned and
             joined inside the child's solve — they never exist when the
             pool forks, so the fork/domain hazard cannot arise. *)
          let threads = max 1 config.pool.Engine.Pool.solver_threads in
          let worker job =
            Engine.Runner.execute ~lookup:(Instances.lookup instances) ~threads
              job
          in
          let pool =
            Engine.Pool.create
              { config.pool with Engine.Pool.handle_sigint = false }
              ~worker
          in
          Ok
            {
              config;
              listen_fd;
              pool;
              cache;
              admission = Admission.create config.admission;
              jobs = Jobs.create ();
              instances;
              started_ns = now_ns ();
              conns = [];
              next_conn_id = 1;
              accepting = true;
              draining = false;
              drain_requested = false;
              n_submitted = 0;
              n_completed = 0;
              n_busy = 0;
              n_cancelled = 0;
              n_cache_hits = 0;
            })

let endpoint_name = function
  | Unix_socket path -> Printf.sprintf "unix:%s" path
  | Tcp (host, port) ->
      Printf.sprintf "tcp:%s:%d" (if host = "" then "127.0.0.1" else host) port

(* ---- frame output -------------------------------------------------------- *)

let send conn response =
  Buffer.add_string conn.cn_out
    (Protocol.encode (Protocol.response_to_json response))

let find_conn t id = List.find_opt (fun c -> c.cn_id = id) t.conns

(* ---- request tracing ----------------------------------------------------- *)

(* Emit one request's finished span tree.  Parents go first — manual
   span ids are allocated at emission.  [shard] is the worker's trace
   shard for solve-source requests; it hangs under the solve span. *)
let emit_request_spans ~fp ~client ~id ~source ~status ~submit_ns ~started_ns
    ~done_ns ~respond_start ~respond_end ~shard =
  let attrs =
    [
      ("client", Obs.Int client);
      ("id", Obs.Int id);
      ("source", Obs.Str (Protocol.source_name source));
      ("status", Obs.Str status);
    ]
  in
  let dur a b = Int64.sub b a in
  let root =
    Obs.Manual.span ~trace:fp ~attrs ~name:"server.request"
      ~start_ns:submit_ns ~dur_ns:(dur submit_ns respond_end) ()
  in
  (match root with
  | None -> (
      (* Collection disabled: still delete a consumed shard. *)
      match shard with
      | Some path -> ( try Sys.remove path with Sys_error _ -> ())
      | None -> ())
  | Some root ->
      let queue_end = Option.value started_ns ~default:done_ns in
      ignore
        (Obs.Manual.span ~trace:fp ~parent:root ~name:"queue_wait"
           ~start_ns:submit_ns ~dur_ns:(dur submit_ns queue_end) ()
          : Obs.Manual.handle option);
      (match started_ns with
      | Some started ->
          let solve =
            Obs.Manual.span ~trace:fp ~parent:root ~name:"solve"
              ~start_ns:started ~dur_ns:(dur started done_ns) ()
          in
          (match (shard, solve) with
          | Some path, Some solve ->
              ignore (Obs.absorb_shard ~parent:solve path : int);
              (try Sys.remove path with Sys_error _ -> ())
          | Some path, None -> (
              try Sys.remove path with Sys_error _ -> ())
          | None, _ -> ())
      | None -> (
          match shard with
          | Some path -> ( try Sys.remove path with Sys_error _ -> ())
          | None -> ()));
      ignore
        (Obs.Manual.span ~trace:fp ~parent:root ~name:"respond"
           ~start_ns:respond_start ~dur_ns:(dur respond_start respond_end) ()
          : Obs.Manual.handle option));
  Obs.Histogram.observe h_request_wall
    (Support.Util.seconds_of_ns (dur submit_ns respond_end))

(* ---- responding ---------------------------------------------------------- *)

let respond_result t ~(waiter : Jobs.waiter) ~fp ~source ~status ~record_json
    ~started_ns ~done_ns ~shard =
  let respond_start = now_ns () in
  Obs.Counter.incr c_responses;
  t.n_completed <- t.n_completed + 1;
  (match source with
  | Protocol.Cache ->
      Obs.Counter.incr c_cache_hit;
      t.n_cache_hits <- t.n_cache_hits + 1
  | Protocol.Solve | Protocol.Collapsed -> ());
  (match find_conn t waiter.Jobs.w_client with
  | Some conn ->
      send conn
        (Protocol.Result_frame
           { id = waiter.Jobs.w_id; source; record = record_json });
      Jobs.remember t.jobs ~client:waiter.Jobs.w_client ~id:waiter.Jobs.w_id
        ~source ~record:record_json
  | None -> () (* the requester hung up; the record still reached the cache *));
  Admission.release t.admission ~client:waiter.Jobs.w_client;
  let respond_end = now_ns () in
  emit_request_spans ~fp ~client:waiter.Jobs.w_client ~id:waiter.Jobs.w_id
    ~source ~status ~submit_ns:waiter.Jobs.w_submit_ns ~started_ns ~done_ns
    ~respond_start ~respond_end ~shard

let handle_completion t ~shards (key, (record : Engine.Record.t)) =
  match Jobs.complete t.jobs ~key with
  | None -> () (* aborted before completion; nothing to answer *)
  | Some entry ->
      (match t.cache with
      | Some cache when Engine.Record.cacheable record ->
          (match Engine.Cache.store cache record with
          | Ok () -> ()
          | Error _ -> () (* a full disk must not take the daemon down *))
      | _ -> ());
      let record_json = Engine.Record.to_json record in
      let status = Engine.Record.status_name record.Engine.Record.status in
      let done_ns = now_ns () in
      let shard = List.assoc_opt key shards in
      List.iteri
        (fun i waiter ->
          respond_result t ~waiter ~fp:entry.Jobs.j_fp
            ~source:(if i = 0 then Protocol.Solve else Protocol.Collapsed)
            ~status ~record_json ~started_ns:entry.Jobs.j_started_ns ~done_ns
            ~shard:(if i = 0 then shard else None))
        entry.Jobs.j_waiters;
      (* No waiters (all cancelled or disconnected): the shard has no
         request tree to live under; absorb it at the top level so the
         solve is still on the timeline. *)
      if entry.Jobs.j_waiters = [] then
        match shard with
        | Some path ->
            ignore (Obs.absorb_shard path : int);
            (try Sys.remove path with Sys_error _ -> ())
        | None -> ()

(* ---- request handling ---------------------------------------------------- *)

let stats_json t =
  let open Obs.Json in
  let cache_stats =
    match t.cache with
    | Some c -> Engine.Cache.stats_to_json (Engine.Cache.stats c)
    | None -> Null
  in
  Obj
    [
      ( "uptime_s",
        Float (Support.Util.seconds_of_ns (Int64.sub (now_ns ()) t.started_ns))
      );
      ( "queue",
        Obj
          [
            ("depth", Int (Engine.Pool.queued t.pool));
            ("in_flight", Int (Engine.Pool.in_flight t.pool));
            ("outstanding", Int (Admission.outstanding t.admission));
            ("limit", Int t.config.admission.Admission.queue_limit);
          ] );
      ( "requests",
        Obj
          [
            ("submitted", Int t.n_submitted);
            ("completed", Int t.n_completed);
            ("busy", Int t.n_busy);
            ("cancelled", Int t.n_cancelled);
            ("cache_hits", Int t.n_cache_hits);
          ] );
      ("cache", cache_stats);
      ("instances", Obj [ ("entries", Int (Instances.length t.instances)) ]);
      ("draining", Bool t.draining);
    ]

let busy t conn ~id reason =
  Obs.Counter.incr c_busy;
  t.n_busy <- t.n_busy + 1;
  send conn
    (Protocol.Busy
       { id; reason; queue_depth = Admission.outstanding t.admission })

let handle_submit t conn ~id ~job =
  Obs.Counter.incr c_requests;
  t.n_submitted <- t.n_submitted + 1;
  if t.draining then busy t conn ~id Protocol.Draining
  else if Jobs.find_by_waiter t.jobs ~client:conn.cn_id ~id <> None then
    send conn
      (Protocol.Error_frame
         { id = Some id; message = "request id already in flight" })
  else
    match Engine.Spec.fingerprint ~schema:Engine.Record.schema_version job with
    | Error e -> send conn (Protocol.Error_frame { id = Some id; message = e })
    | Ok fp -> (
        match Admission.try_admit t.admission ~client:conn.cn_id with
        | Admission.Client_limit -> busy t conn ~id Protocol.Client_limit
        | Admission.Queue_full -> busy t conn ~id Protocol.Queue_full
        | Admission.Admit -> (
            let submit_ns = now_ns () in
            (* Warm the instance LRU in the coordinator while we are at
               it — the fork below then shares the parsed structure. *)
            (match job.Engine.Spec.instance with
            | Engine.Spec.Hmetis_file path ->
                ignore (Instances.load t.instances path : Hypergraph.t option)
            | _ -> ());
            match
              Option.bind t.cache (fun cache -> Engine.Cache.find cache fp)
            with
            | Some record ->
                (* Served entirely at admission: ack + result, ticket
                   returned inside respond_result. *)
                send conn (Protocol.Ack { id; fingerprint = fp; position = 0 });
                let done_ns = now_ns () in
                respond_result t
                  ~waiter:
                    {
                      Jobs.w_client = conn.cn_id;
                      w_id = id;
                      w_submit_ns = submit_ns;
                    }
                  ~fp ~source:Protocol.Cache
                  ~status:
                    (Engine.Record.status_name record.Engine.Record.status)
                  ~record_json:(Engine.Record.to_json record)
                  ~started_ns:None ~done_ns ~shard:None
            | None -> (
                match
                  Jobs.submit t.jobs ~fingerprint:fp ~job ~client:conn.cn_id
                    ~id ~now:submit_ns
                with
                | `New entry ->
                    Engine.Pool.submit t.pool ~index:entry.Jobs.j_key
                      ~fingerprint:fp job;
                    send conn
                      (Protocol.Ack
                         {
                           id;
                           fingerprint = fp;
                           position = max 0 (Engine.Pool.queued t.pool - 1);
                         })
                | `Attached entry ->
                    send conn
                      (Protocol.Ack
                         {
                           id;
                           fingerprint = fp;
                           position =
                             (match entry.Jobs.j_started_ns with
                             | Some _ -> 0
                             | None -> max 0 (Engine.Pool.queued t.pool - 1));
                         }))))

let handle_request t conn = function
  | Protocol.Submit { id; job } -> handle_submit t conn ~id ~job
  | Protocol.Status { id } -> (
      match Jobs.find_by_waiter t.jobs ~client:conn.cn_id ~id with
      | Some entry ->
          let state, position =
            match entry.Jobs.j_started_ns with
            | Some _ -> (Protocol.Running, None)
            | None -> (Protocol.Queued, Some (Engine.Pool.queued t.pool))
          in
          send conn (Protocol.Info { id; state; position })
      | None -> (
          match Jobs.recall t.jobs ~client:conn.cn_id ~id with
          | Some _ ->
              send conn
                (Protocol.Info { id; state = Protocol.Done_state; position = None })
          | None ->
              send conn
                (Protocol.Info { id; state = Protocol.Unknown; position = None })))
  | Protocol.Result { id } -> (
      match Jobs.recall t.jobs ~client:conn.cn_id ~id with
      | Some (source, record) ->
          send conn (Protocol.Result_frame { id; source; record })
      | None -> (
          match Jobs.find_by_waiter t.jobs ~client:conn.cn_id ~id with
          | Some entry ->
              let state =
                match entry.Jobs.j_started_ns with
                | Some _ -> Protocol.Running
                | None -> Protocol.Queued
              in
              send conn (Protocol.Info { id; state; position = None })
          | None ->
              send conn
                (Protocol.Error_frame
                   { id = Some id; message = "unknown request id" })))
  | Protocol.Cancel { id } -> (
      match Jobs.cancel t.jobs ~client:conn.cn_id ~id with
      | `Unknown ->
          send conn
            (Protocol.Error_frame
               { id = Some id; message = "unknown request id" })
      | `Detached | `Orphaned ->
          Admission.release t.admission ~client:conn.cn_id;
          t.n_cancelled <- t.n_cancelled + 1;
          send conn (Protocol.Cancelled { id })
      | `Abort key ->
          ignore (Engine.Pool.cancel t.pool ~index:key : bool);
          Admission.release t.admission ~client:conn.cn_id;
          t.n_cancelled <- t.n_cancelled + 1;
          send conn (Protocol.Cancelled { id }))
  | Protocol.Stats -> send conn (Protocol.Stats_frame (stats_json t))
  | Protocol.Shutdown ->
      send conn Protocol.Bye;
      t.drain_requested <- true

(* ---- connection lifecycle ------------------------------------------------ *)

let disconnect t conn =
  (try Unix.close conn.cn_fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c.cn_id <> conn.cn_id) t.conns;
  ignore (Admission.forget_client t.admission ~client:conn.cn_id : int);
  List.iter
    (fun key -> ignore (Engine.Pool.cancel t.pool ~index:key : bool))
    (Jobs.forget_client t.jobs ~client:conn.cn_id)

let accept_pending t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        let conn =
          {
            cn_id = t.next_conn_id;
            cn_fd = fd;
            cn_dec = Protocol.decoder ();
            cn_out = Buffer.create 1024;
            cn_closing = false;
          }
        in
        t.next_conn_id <- t.next_conn_id + 1;
        t.conns <- conn :: t.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> go ()
  in
  if t.accepting then go ()

let read_conn t conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.cn_fd chunk 0 (Bytes.length chunk) with
  | 0 -> disconnect t conn
  | n -> (
      Protocol.feed conn.cn_dec (Bytes.sub_string chunk 0 n);
      let rec drain_frames () =
        match Protocol.next conn.cn_dec with
        | None -> ()
        | Some json ->
            (match Protocol.request_of_json json with
            | Ok req -> handle_request t conn req
            | Error message ->
                send conn (Protocol.Error_frame { id = None; message }));
            drain_frames ()
      in
      drain_frames ();
      match Protocol.decoder_error conn.cn_dec with
      | Some message ->
          (* Byte boundaries are lost; say why, then hang up. *)
          send conn (Protocol.Error_frame { id = None; message });
          conn.cn_closing <- true
      | None -> ())
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      disconnect t conn

let flush_conn t conn =
  if Buffer.length conn.cn_out > 0 then begin
    let data = Buffer.contents conn.cn_out in
    match Unix.single_write_substring conn.cn_fd data 0 (String.length data) with
    | written ->
        Buffer.clear conn.cn_out;
        if written < String.length data then
          Buffer.add_substring conn.cn_out data written
            (String.length data - written)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        disconnect t conn
  end;
  if conn.cn_closing && Buffer.length conn.cn_out = 0 then disconnect t conn

(* ---- drain --------------------------------------------------------------- *)

let initiate_drain t =
  if not t.draining then begin
    t.draining <- true;
    t.accepting <- false;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.config.endpoint with
    | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    Engine.Pool.stop_forking t.pool;
    (* Queued jobs become Skipped records and flow through the normal
       completion path, so every waiter still gets a result frame. *)
    let skipped = Engine.Pool.skip_queued ~reason:"draining" t.pool in
    let shards = Engine.Pool.take_shards t.pool in
    List.iter (handle_completion t ~shards) skipped
  end

let draining t = t.draining

let finished t =
  t.draining && Engine.Pool.idle t.pool
  && List.for_all (fun c -> Buffer.length c.cn_out = 0) t.conns

(* ---- the loop ------------------------------------------------------------ *)

let step ?(timeout = 0.05) t =
  if t.drain_requested then initiate_drain t;
  let conn_fds = List.map (fun c -> c.cn_fd) t.conns in
  let extra_fds =
    if t.accepting then t.listen_fd :: conn_fds else conn_fds
  in
  (* Queue exits are observed through pool events: started_ns feeds the
     queue_wait span and the Running state. *)
  let on_event = function
    | Engine.Pool.Started { index; _ } ->
        Jobs.start t.jobs ~key:index ~now:(now_ns ())
    | Engine.Pool.Finished _ | Engine.Pool.Retrying _
    | Engine.Pool.Interrupted _ ->
        ()
  in
  let completed, readable =
    Engine.Pool.step ~on_event ~extra_fds ~timeout t.pool
  in
  let shards = Engine.Pool.take_shards t.pool in
  List.iter (handle_completion t ~shards) completed;
  if t.accepting && List.memq t.listen_fd readable then accept_pending t;
  List.iter
    (fun conn -> if List.memq conn.cn_fd readable then read_conn t conn)
    (* read_conn can disconnect; iterate over a snapshot *)
    (List.filter (fun c -> List.memq c.cn_fd readable) t.conns);
  List.iter (flush_conn t) t.conns;
  Obs.Gauge.set g_queue_depth (float_of_int (Engine.Pool.queued t.pool))

let close t =
  List.iter (fun c -> try Unix.close c.cn_fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  if t.accepting then begin
    t.accepting <- false;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match t.config.endpoint with
    | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ()
  end;
  (* Anything not absorbed under a request tree (e.g. jobs whose clients
     vanished mid-drain) still joins the timeline. *)
  Engine.Pool.absorb_shards t.pool

let run t =
  let previous =
    Sys.signal Sys.sigint
      (Sys.Signal_handle (fun _ -> t.drain_requested <- true))
  in
  (* A client that vanishes mid-write must cost that connection, not the
     daemon: unless SIGPIPE is ignored its default disposition kills the
     process before [flush_conn]'s EPIPE handling can run. *)
  let previous_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () ->
      Sys.set_signal Sys.sigint previous;
      Sys.set_signal Sys.sigpipe previous_pipe)
  @@ fun () ->
  while not (finished t) do
    step t
  done;
  close t
