(* Job plans for the batch engine.

   A job is the deterministic unit of work the engine schedules: an
   instance source (an hMETIS or DAG file, a generator spec, an
   experiment id, or a fault-injection drill), a solver configuration, a
   seed and an optional wall-clock budget.  Everything a job needs to run
   is in the plan — workers receive the plan, never ambient state — which
   is what makes results cacheable and re-runs byte-reproducible.

   The canonical serialization ([canonical]) is the byte string that gets
   fingerprinted: file instances contribute their *content* digest (so a
   changed input invalidates cached results even at an unchanged path),
   and the result-schema version is mixed in (so a schema bump invalidates
   the whole cache).  Timeouts are deliberately excluded: the budget
   bounds a run, it does not change what the run computes. *)

type gen_kind = Uniform | Two_regular | Planted | Spmv | Fft | Stencil

type instance =
  | Hmetis_file of string
  | Dag_file of string
  | Generated of { kind : gen_kind; n : int }
  | Experiment of string
  | Spin of float
  | Crash of int

type algorithm = Multilevel | Recursive | Fm | Bfs | Random | Exact

type config = {
  k : int;
  eps : float;
  algorithm : algorithm;
  metric : Partition.metric;
  parallel : bool;
}

let default_config =
  {
    k = 2;
    eps = 0.03;
    algorithm = Multilevel;
    metric = Partition.Connectivity;
    parallel = false;
  }

type job = {
  instance : instance;
  config : config;
  seed : int;
  timeout_s : float option;
}

(* ---- names (shared by the manifest parser, the CLI and the codecs) ---- *)

let gen_kinds =
  [
    ("uniform", Uniform); ("two-regular", Two_regular); ("planted", Planted);
    ("spmv", Spmv); ("fft", Fft); ("stencil", Stencil);
  ]

let algorithms =
  [
    ("multilevel", Multilevel); ("recursive", Recursive); ("fm", Fm);
    ("bfs", Bfs); ("random", Random); ("exact", Exact);
  ]

let metrics =
  [ ("connectivity", Partition.Connectivity); ("cutnet", Partition.Cut_net) ]

let name_of assoc v =
  match List.find_opt (fun (_, x) -> x = v) assoc with
  | Some (name, _) -> name
  | None -> failwith "Spec.name_of: unnamed constructor"

let gen_kind_name k = name_of gen_kinds k
let algorithm_name a = name_of algorithms a
let metric_name m = name_of metrics m

(* A compact human label for progress lines and error messages. *)
let describe job =
  match job.instance with
  | Experiment id -> id
  | Spin s -> Printf.sprintf "spin %gs" s
  | Crash c -> Printf.sprintf "crash %d" c
  | instance ->
      let what =
        match instance with
        | Hmetis_file p -> p
        | Dag_file p -> p
        | Generated { kind; n } -> Printf.sprintf "%s n=%d" (gen_kind_name kind) n
        | Experiment _ | Spin _ | Crash _ -> assert false
      in
      Printf.sprintf "%s k=%d %s seed=%d" what job.config.k
        (algorithm_name job.config.algorithm)
        job.seed

(* Whether the solver configuration and seed take part in the job's
   identity.  Experiments are self-contained closures with their own
   internal seeding, and the fault drills compute nothing, so for those
   the expansion pins config/seed and the fingerprint ignores them. *)
let config_sensitive job =
  match job.instance with
  | Hmetis_file _ | Dag_file _ | Generated _ -> true
  | Experiment _ | Spin _ | Crash _ -> false

(* ---- validation -------------------------------------------------------- *)

let validate job =
  let { k; eps; _ } = job.config in
  if k < 1 then Error (Printf.sprintf "k must be >= 1 (got %d)" k)
  else if eps < 0.0 then Error (Printf.sprintf "eps must be >= 0 (got %g)" eps)
  else
    match job.instance with
    | Generated { n; _ } when n < 1 ->
        Error (Printf.sprintf "generated instance needs n >= 1 (got %d)" n)
    | Spin s when s < 0.0 ->
        Error (Printf.sprintf "spin seconds must be >= 0 (got %g)" s)
    | _ -> (
        match job.timeout_s with
        | Some t when t <= 0.0 ->
            Error (Printf.sprintf "timeout_s must be > 0 (got %g)" t)
        | _ -> Ok ())

(* ---- canonical serialization ------------------------------------------- *)

(* Floats are rendered with %.17g so the canonical form round-trips the
   exact IEEE value: two jobs differing in the 17th digit of eps are
   different jobs. *)
let float_canon f = Printf.sprintf "%.17g" f

let instance_canon instance =
  match instance with
  | Hmetis_file path -> (
      match Fingerprint.digest_file path with
      | Ok d -> Ok (Printf.sprintf "hmetis:%s" d)
      | Error e -> Error e)
  | Dag_file path -> (
      match Fingerprint.digest_file path with
      | Ok d -> Ok (Printf.sprintf "dag:%s" d)
      | Error e -> Error e)
  | Generated { kind; n } -> Ok (Printf.sprintf "gen:%s:%d" (gen_kind_name kind) n)
  | Experiment id -> Ok (Printf.sprintf "experiment:%s" id)
  | Spin s -> Ok (Printf.sprintf "spin:%s" (float_canon s))
  | Crash c -> Ok (Printf.sprintf "crash:%d" c)

let canonical ~schema job =
  match instance_canon job.instance with
  | Error e -> Error e
  | Ok inst ->
      if config_sensitive job then
        (* [parallel] switches the multilevel solver to a different
           algorithm, so it must take part in the job's identity — but
           only when set: the marker is appended conditionally so every
           sequential fingerprint (the entire existing cache and every
           recorded baseline) is unchanged.  The thread count is
           deliberately absent: the parallel path's output is
           N-independent, so threads bound a run like a timeout does. *)
        Ok
          (Printf.sprintf "%s|instance=%s|k=%d|eps=%s|alg=%s|metric=%s|seed=%d%s"
             schema inst job.config.k (float_canon job.config.eps)
             (algorithm_name job.config.algorithm)
             (metric_name job.config.metric)
             job.seed
             (if job.config.parallel then "|parallel=1" else ""))
      else Ok (Printf.sprintf "%s|instance=%s" schema inst)

let fingerprint ~schema job =
  match canonical ~schema job with
  | Ok c -> Ok (Fingerprint.digest c)
  | Error e -> Error e

(* ---- JSON codec (embedded in result records and batch reports) --------- *)

let instance_to_json instance =
  let open Obs.Json in
  match instance with
  | Hmetis_file path -> Obj [ ("type", Str "hmetis"); ("path", Str path) ]
  | Dag_file path -> Obj [ ("type", Str "dag"); ("path", Str path) ]
  | Generated { kind; n } ->
      Obj [ ("type", Str "generated"); ("kind", Str (gen_kind_name kind)); ("n", Int n) ]
  | Experiment id -> Obj [ ("type", Str "experiment"); ("id", Str id) ]
  | Spin s -> Obj [ ("type", Str "spin"); ("seconds", Float s) ]
  | Crash c -> Obj [ ("type", Str "crash"); ("code", Int c) ]

let to_json job =
  let open Obs.Json in
  Obj
    ([
       ("instance", instance_to_json job.instance);
       ("k", Int job.config.k);
       ("eps", Float job.config.eps);
       ("algorithm", Str (algorithm_name job.config.algorithm));
       ("metric", Str (metric_name job.config.metric));
       ("seed", Int job.seed);
     ]
    @ (if job.config.parallel then [ ("parallel", Bool true) ] else [])
    @ match job.timeout_s with None -> [] | Some t -> [ ("timeout_s", Float t) ])

(* Decoding is total over well-formed records: any shape defect is an
   [Error], never an exception, so a corrupted cache entry degrades to a
   miss rather than a crash. *)

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let field name json =
  match Obs.Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name json =
  let* v = field name json in
  match Obs.Json.get_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" name)

let int_field name json =
  let* v = field name json in
  match Obs.Json.get_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S is not an integer" name)

let float_field name json =
  let* v = field name json in
  match Obs.Json.get_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S is not a number" name)

let enum_field assoc name json =
  let* s = str_field name json in
  match List.assoc_opt s assoc with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "field %S has unknown value %S" name s)

let instance_of_json json =
  let* ty = str_field "type" json in
  match ty with
  | "hmetis" ->
      let* path = str_field "path" json in
      Ok (Hmetis_file path)
  | "dag" ->
      let* path = str_field "path" json in
      Ok (Dag_file path)
  | "generated" ->
      let* kind = enum_field gen_kinds "kind" json in
      let* n = int_field "n" json in
      Ok (Generated { kind; n })
  | "experiment" ->
      let* id = str_field "id" json in
      Ok (Experiment id)
  | "spin" ->
      let* s = float_field "seconds" json in
      Ok (Spin s)
  | "crash" ->
      let* c = int_field "code" json in
      Ok (Crash c)
  | other -> Error (Printf.sprintf "unknown instance type %S" other)

let of_json json =
  let* instance = field "instance" json in
  let* instance = instance_of_json instance in
  let* k = int_field "k" json in
  let* eps = float_field "eps" json in
  let* algorithm = enum_field algorithms "algorithm" json in
  let* metric = enum_field metrics "metric" json in
  let* seed = int_field "seed" json in
  let parallel =
    match Obs.Json.member "parallel" json with
    | Some (Obs.Json.Bool b) -> b
    | _ -> false
  in
  let timeout_s =
    Option.bind (Obs.Json.member "timeout_s" json) Obs.Json.get_float
  in
  Ok
    {
      instance;
      config = { k; eps; algorithm; metric; parallel };
      seed;
      timeout_s;
    }
