(* Re-export root for the batch-execution engine. *)

module Fingerprint = Fingerprint
module Spec = Spec
module Record = Record
module Cache = Cache
module Manifest = Manifest
module Pool = Pool
module Provenance = Provenance
module Runner = Runner
module Batch = Batch
module Bench_compare = Bench_compare
