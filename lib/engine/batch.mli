(** Cache-aware batch orchestration: the engine's front door.

    [run] fingerprints every job, satisfies what it can from the
    content-addressed cache, pushes the remainder through the fork pool,
    stores fresh [Done] records back, and folds the sweep into one
    report with outcomes in plan order. *)

type config = {
  pool : Pool.config;
  cache_dir : string option;  (** [None] disables the result cache *)
}

val default_cache_dir : string
(** [".hypartition-cache"]. *)

val default_config : config

type event =
  | Cache_hit of { index : int; record : Record.t }
  | Unrunnable of { index : int; record : Record.t }
      (** the job could not even be fingerprinted (unreadable input) *)
  | Pool of Pool.event

type outcome = { record : Record.t; cached : bool }

type stats = {
  total : int;
  from_cache : int;
  ok : int;
  failed : int;
  timeouts : int;
  crashes : int;
  skipped : int;
  retries : int;  (** retry attempts consumed across the sweep *)
  cache : Cache.stats option;
}

type report = { outcomes : outcome list; stats : stats; wall_s : float }

val all_ok : report -> bool
(** Every outcome is [Done] — drives the CLI exit code. *)

val run :
  ?on_event:(event -> unit) ->
  config ->
  Spec.job list ->
  (report, string) result
(** Execute a plan list; [Error] only when the cache directory cannot be
    opened.  Job-level problems never abort the sweep — they come back
    as non-[Done] outcomes. *)

val schema_version : string
(** ["hypartition-batch/1"], the tag on {!report_to_json} documents. *)

val stats_to_json : stats -> Obs.Json.t

val report_to_json : ?deterministic:bool -> jobs:int -> report -> Obs.Json.t
(** The ["hypartition-batch/1"] rendering ([jobs] = worker count).  With
    [~deterministic:true], drop wall-clock and per-record timing/observed
    sections. *)
