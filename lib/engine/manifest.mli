(** Batch manifests — schema ["hypartition-manifest/1"].

    A manifest names instances, solver configs and seeds; expansion is
    the cartesian product instances × configs × seeds in manifest order
    (instances outermost, seeds innermost), so the same document always
    yields the same job list.  Experiments and fault drills expand once
    per entry with config and seed pinned.  Any instance entry may carry
    a ["timeout_s"] override; otherwise the defaults apply. *)

val schema_version : string
(** ["hypartition-manifest/1"]. *)

val of_string :
  known_experiments:string list -> string -> (Spec.job list, string) result
(** Parse and expand a manifest document.  Every expanded job is
    {!Spec.validate}d; experiment ids are checked against
    [known_experiments]. *)

val load :
  known_experiments:string list -> string -> (Spec.job list, string) result
(** {!of_string} on a file's contents; I/O problems are [Error]s. *)
