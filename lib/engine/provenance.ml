(* Run provenance: the facts that make a bench report or trace from one
   machine comparable with one from another.  The PR 5 baseline ambiguity
   ("6.4x here vs 4.2x there" — same code? same machine? different
   OCaml?) is exactly what these five fields disambiguate, so both the
   bench harness and the engine stamp them on everything they write. *)

let hostname () =
  match Unix.gethostname () with
  | name -> name
  | exception Unix.Unix_error _ -> "unknown"

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

let collect ?jobs ?threads () =
  let open Obs.Json in
  [
    ("hostname", Str (hostname ()));
    ("ocaml_version", Str Sys.ocaml_version);
    ("word_size", Int Sys.word_size);
    ("git_rev", Str (git_rev ()));
  ]
  @ (match jobs with Some j -> [ ("jobs", Int j) ] | None -> [])
  @ match threads with Some t -> [ ("threads", Int t) ] | None -> []
