(** Fork-based worker pool: the engine's fault-isolation boundary.

    Each job runs in a forked worker process that reports a
    {!Record.payload} over a dedicated status pipe; the coordinator
    multiplexes pipes with [select], reaps workers without blocking,
    SIGKILLs any worker past its wall-clock budget, and retries crashed
    workers (bounded, exponential backoff).  A crashing, diverging or
    OOM-killed job therefore costs exactly one result, never the sweep.

    The coordinator is an explicit incremental state machine ({!t},
    {!create}, {!submit}, {!step}) so a long-lived caller — the
    [hypartition serve] daemon — can feed jobs as they arrive and keep
    its own accept loop responsive; {!step} multiplexes caller-supplied
    file descriptors (listening and client sockets) into the same
    [select].  The batch entry point {!run} is a loop over that machine.

    This module is the only place in the repository allowed to call
    [Unix.fork] / [Unix.waitpid] / [Unix.kill] (lint rule SRC08). *)

type config = {
  jobs : int;  (** worker slots (clamped to ≥ 1) *)
  retries : int;  (** extra attempts for {e crashed} workers; timeouts and
                      deterministic failures are never retried *)
  backoff_s : float;  (** base retry backoff; doubles per attempt *)
  default_timeout_s : float option;
      (** budget for jobs that carry none; [None] = unbounded *)
  silence_worker_stdout : bool;
      (** redirect worker stdout to /dev/null (batch CLI); workers keep
          stderr either way *)
  handle_sigint : bool;
      (** install a draining SIGINT handler for the duration of {!run}:
          queued jobs become [Skipped], in-flight workers finish, the
          cache stays consistent *)
  solver_threads : int;
      (** solver domains each worker is configured with, stamped on
          record timing as provenance; [0] = sequential.  The pool never
          creates domains itself — a forked worker spawns and joins its
          own strictly inside the solve, so domains never cross the fork
          boundary. *)
}

val default_config : config
(** 1 worker, 1 retry, 0.1 s backoff, no default timeout, inherited
    stdout, no signal handler, sequential solver. *)

type event =
  | Started of { index : int; job : Spec.job; worker : int; attempt : int }
  | Finished of { index : int; record : Record.t }
  | Retrying of { index : int; job : Spec.job; attempt : int; delay_s : float }
  | Interrupted of { pending : int }

(** {1 Incremental coordinator}

    One value of type {!t} owns the queue, the running workers and their
    trace shards.  All functions below are single-threaded and
    non-blocking except {!step}, which blocks for at most [timeout]. *)

type t

val create : config -> worker:(Spec.job -> Record.payload) -> t
(** A coordinator with no queued or running jobs.  [worker] runs {e in
    the forked child}; anything it raises becomes a [Failed] record
    (deterministic), while dying without completing the pipe protocol is
    a [Crashed] record (retried).  [create] installs no signal handler —
    a daemon owns its own signal discipline. *)

val submit : t -> index:int -> fingerprint:string -> Spec.job -> unit
(** Append a job plan to the queue.  [index] is the caller's correlation
    key, echoed in events, {!cancel} and {!step} results; callers must
    keep it unique among jobs not yet finished. *)

val cancel : t -> index:int -> bool
(** Remove a {e queued} job before it forks.  [true] iff a queued entry
    with [index] was removed; a job already running (or finished) is not
    affected and yields [false]. *)

val queued : t -> int
val in_flight : t -> int

val idle : t -> bool
(** No queued and no running jobs. *)

val stop_forking : t -> unit
(** Stop forking new workers; queued jobs stay queued (see
    {!skip_queued}), in-flight workers run to completion via {!step}.
    Crash retries are also disabled.  Used for drains. *)

val skip_queued :
  ?on_event:(event -> unit) ->
  reason:string ->
  t ->
  (int * Record.t) list
(** Turn every queued job into a [Skipped reason] record (returned and
    also delivered through the next {!step}); the queue becomes empty. *)

val step :
  ?on_event:(event -> unit) ->
  ?extra_fds:Unix.file_descr list ->
  timeout:float ->
  t ->
  (int * Record.t) list * Unix.file_descr list
(** One coordinator iteration: fork queued jobs into free slots, wait up
    to [timeout] seconds on worker status pipes {e and} [extra_fds],
    enforce deadlines, reap and classify exited workers.  Returns the
    records completed during this step (in completion order) and the
    subset of [extra_fds] that became readable.  [on_event] fires in the
    coordinator, in completion order. *)

val take_shards : t -> (int * string) list
(** Drain the accumulated [(job index, worker trace shard path)] pairs,
    sorted by index, without absorbing them — for callers that absorb
    each shard under their own span (the serve daemon).  The caller owns
    deletion of the returned paths. *)

val absorb_shards : t -> unit
(** Absorb and delete all accumulated worker trace shards in job-index
    order, so merged span ids depend only on the plan, not scheduling. *)

val no_live_children : unit -> bool
(** [true] iff this process has no live or unreaped forked children — the
    orphan probe for drain tests.  (Here rather than in test code because
    it needs [Unix.waitpid]; see SRC08.) *)

(** {1 Batch entry point} *)

val run :
  ?on_event:(event -> unit) ->
  config ->
  worker:(Spec.job -> Record.payload) ->
  (int * string * Spec.job) list ->
  Record.t list
(** [run config ~worker jobs] executes [(index, fingerprint, job)] plans
    and returns one record per plan, in input (index) order.  Equivalent
    to {!create} + {!submit} + a {!step} loop + {!absorb_shards}, with
    the [handle_sigint] drain discipline documented on {!config}. *)
