(** Fork-based worker pool: the engine's fault-isolation boundary.

    Each job runs in a forked worker process that reports a
    {!Record.payload} over a dedicated status pipe; the coordinator
    multiplexes pipes with [select], reaps workers without blocking,
    SIGKILLs any worker past its wall-clock budget, and retries crashed
    workers (bounded, exponential backoff).  A crashing, diverging or
    OOM-killed job therefore costs exactly one result, never the sweep.

    This module is the only place in the repository allowed to call
    [Unix.fork] / [Unix.waitpid] / [Unix.kill] (lint rule SRC08). *)

type config = {
  jobs : int;  (** worker slots (clamped to ≥ 1) *)
  retries : int;  (** extra attempts for {e crashed} workers; timeouts and
                      deterministic failures are never retried *)
  backoff_s : float;  (** base retry backoff; doubles per attempt *)
  default_timeout_s : float option;
      (** budget for jobs that carry none; [None] = unbounded *)
  silence_worker_stdout : bool;
      (** redirect worker stdout to /dev/null (batch CLI); workers keep
          stderr either way *)
  handle_sigint : bool;
      (** install a draining SIGINT handler for the duration of {!run}:
          queued jobs become [Skipped], in-flight workers finish, the
          cache stays consistent *)
}

val default_config : config
(** 1 worker, 1 retry, 0.1 s backoff, no default timeout, inherited
    stdout, no signal handler. *)

type event =
  | Started of { index : int; job : Spec.job; worker : int; attempt : int }
  | Finished of { index : int; record : Record.t }
  | Retrying of { index : int; job : Spec.job; attempt : int; delay_s : float }
  | Interrupted of { pending : int }

val run :
  ?on_event:(event -> unit) ->
  config ->
  worker:(Spec.job -> Record.payload) ->
  (int * string * Spec.job) list ->
  Record.t list
(** [run config ~worker jobs] executes [(index, fingerprint, job)] plans
    and returns one record per plan, in input (index) order.  [worker]
    runs {e in the forked child}; anything it raises becomes a [Failed]
    record (deterministic), while dying without completing the pipe
    protocol is a [Crashed] record (retried).  [on_event] fires in the
    coordinator, in completion order. *)
