(* Versioned result records (schema hypartition-result/1).

   A record is the engine's unit of truth: what was asked (the job plan
   and its fingerprint), what happened (status + deterministic metrics),
   and how it went (timing, attempts, worker slot, plus the worker's
   observability snapshot).  The deterministic part of a record —
   everything except the "timing" and "observed" sections — depends only
   on the job plan, never on scheduling: running the same plan at
   --jobs 1 and --jobs 8 yields byte-identical deterministic renderings
   (asserted by test/test_engine.ml).

   Only [Done] records enter the cache; failures and timeouts are
   re-attempted on the next sweep. *)

let schema_version = "hypartition-result/1"

type status =
  | Done
  | Failed of string
  | Timed_out of float
  | Crashed of string
  | Skipped of string

type timing = { wall_s : float; attempts : int; worker : int; threads : int }

let no_timing = { wall_s = 0.0; attempts = 0; worker = -1; threads = 0 }

type t = {
  fingerprint : string;
  job : Spec.job;
  status : status;
  metrics : (string * Obs.Json.t) list;
  observed : Obs.Json.t option;
  timing : timing;
}

let ok t = match t.status with Done -> true | _ -> false
let cacheable = ok

let status_name = function
  | Done -> "ok"
  | Failed _ -> "failed"
  | Timed_out _ -> "timeout"
  | Crashed _ -> "crashed"
  | Skipped _ -> "skipped"

let status_detail = function
  | Done -> None
  | Failed msg | Crashed msg | Skipped msg -> Some msg
  | Timed_out budget -> Some (Printf.sprintf "exceeded %gs budget" budget)

(* ---- worker payload -----------------------------------------------------

   What a worker process reports back over its status pipe: the
   deterministic outcome plus the observability snapshot of the run.  The
   coordinator wraps this into a full record (adding fingerprint, job,
   timing); a worker that dies before completing the protocol is
   classified from its exit status instead. *)

type payload = {
  p_status : [ `Done | `Failed of string ];
  p_metrics : (string * Obs.Json.t) list;
  p_observed : Obs.Json.t option;
}

let payload_to_json p =
  let open Obs.Json in
  Obj
    ([
       ( "status",
         Str (match p.p_status with `Done -> "ok" | `Failed _ -> "failed") );
     ]
    @ (match p.p_status with
      | `Failed msg -> [ ("error", Str msg) ]
      | `Done -> [])
    @ [ ("metrics", Obj p.p_metrics) ]
    @ match p.p_observed with None -> [] | Some o -> [ ("observed", o) ])

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let metrics_of_json json =
  match Obs.Json.member "metrics" json with
  | Some (Obs.Json.Obj fields) -> Ok fields
  | Some _ -> Error "field \"metrics\" is not an object"
  | None -> Ok []

let payload_of_json json =
  let* status =
    match Option.bind (Obs.Json.member "status" json) Obs.Json.get_str with
    | Some "ok" -> Ok `Done
    | Some "failed" ->
        let msg =
          match Option.bind (Obs.Json.member "error" json) Obs.Json.get_str with
          | Some m -> m
          | None -> "unspecified failure"
        in
        Ok (`Failed msg)
    | Some other -> Error (Printf.sprintf "unknown payload status %S" other)
    | None -> Error "payload without status"
  in
  let* metrics = metrics_of_json json in
  Ok
    {
      p_status = status;
      p_metrics = metrics;
      p_observed = Obs.Json.member "observed" json;
    }

(* ---- record codec ------------------------------------------------------- *)

let to_json ?(deterministic = false) t =
  let open Obs.Json in
  let status_fields =
    [ ("status", Str (status_name t.status)) ]
    @ (match t.status with
      | Done -> []
      | Failed msg | Crashed msg | Skipped msg -> [ ("error", Str msg) ]
      | Timed_out budget -> [ ("budget_s", Float budget) ])
  in
  Obj
    ([
       ("schema", Str schema_version);
       ("fingerprint", Str t.fingerprint);
       ("job", Spec.to_json t.job);
     ]
    @ status_fields
    @ [ ("metrics", Obj t.metrics) ]
    @ (if deterministic then []
       else
         (match t.observed with
         | None -> []
         | Some o -> [ ("observed", o) ])
         @ [
             ( "timing",
               Obj
                 ([
                    ("wall_s", Float t.timing.wall_s);
                    ("attempts", Int t.timing.attempts);
                    ("worker", Int t.timing.worker);
                  ]
                 @
                 (* Solver domains, when the run was parallel; omitted
                    for sequential runs so existing renderings are
                    byte-stable. *)
                 if t.timing.threads > 0 then
                   [ ("threads", Int t.timing.threads) ]
                 else []) );
           ]))

let deterministic_string t = Obs.Json.to_string (to_json ~deterministic:true t)

let of_json json =
  let* schema =
    match Option.bind (Obs.Json.member "schema" json) Obs.Json.get_str with
    | Some s -> Ok s
    | None -> Error "record without schema tag"
  in
  let* () =
    if String.equal schema schema_version then Ok ()
    else
      Error
        (Printf.sprintf "unsupported record schema %S (expected %S)" schema
           schema_version)
  in
  let* fingerprint =
    match Option.bind (Obs.Json.member "fingerprint" json) Obs.Json.get_str with
    | Some f when Fingerprint.is_digest f -> Ok f
    | Some f -> Error (Printf.sprintf "malformed fingerprint %S" f)
    | None -> Error "record without fingerprint"
  in
  let* job =
    match Obs.Json.member "job" json with
    | Some j -> Spec.of_json j
    | None -> Error "record without job"
  in
  let detail =
    match Option.bind (Obs.Json.member "error" json) Obs.Json.get_str with
    | Some m -> m
    | None -> "unspecified"
  in
  let* status =
    match Option.bind (Obs.Json.member "status" json) Obs.Json.get_str with
    | Some "ok" -> Ok Done
    | Some "failed" -> Ok (Failed detail)
    | Some "crashed" -> Ok (Crashed detail)
    | Some "skipped" -> Ok (Skipped detail)
    | Some "timeout" ->
        let budget =
          match
            Option.bind (Obs.Json.member "budget_s" json) Obs.Json.get_float
          with
          | Some b -> b
          | None -> 0.0
        in
        Ok (Timed_out budget)
    | Some other -> Error (Printf.sprintf "unknown record status %S" other)
    | None -> Error "record without status"
  in
  let* metrics = metrics_of_json json in
  let timing =
    match Obs.Json.member "timing" json with
    | Some timing_json ->
        let num name fallback =
          match
            Option.bind (Obs.Json.member name timing_json) Obs.Json.get_float
          with
          | Some f -> f
          | None -> fallback
        in
        {
          wall_s = num "wall_s" 0.0;
          attempts = int_of_float (num "attempts" 0.0);
          worker = int_of_float (num "worker" (-1.0));
          threads = int_of_float (num "threads" 0.0);
        }
    | None -> no_timing
  in
  Ok
    {
      fingerprint;
      job;
      status;
      metrics;
      observed = Obs.Json.member "observed" json;
      timing;
    }
