(** Worker-side job execution.

    [execute] materializes the instance (load, generate, or experiment
    lookup), runs the work with observability collection on, audits the
    result with the lib/analysis auditors, and packages the outcome as a
    {!Record.payload}.  Deterministic failures (unreadable input,
    infeasible instance, audit violation) come back as [`Failed] — only
    process death is a crash, and only the {!Spec.Crash} drill dies on
    purpose. *)

val execute :
  ?lookup:(string -> Hypergraph.t option) ->
  ?threads:int ->
  Spec.job ->
  Record.payload
(** Run one job in the current process.  Intended to be passed as the
    [worker] of {!Pool.run}; safe to call in-process for tests (except
    on {!Spec.Crash}, which exits).

    [?lookup] resolves an {!Spec.Hmetis_file} path to an already-parsed
    hypergraph before any file I/O — the serve daemon's hot-instance LRU,
    visible to forked workers through copy-on-write.  A [None] falls back
    to loading the file.

    [?threads] (default 1) is the domain count for jobs whose config has
    [parallel = true]; it bounds the run without changing its result —
    the engine always drives the parallel solver in deterministic mode,
    so the payload is a pure function of the plan.  Sequential jobs
    ignore it. *)

val snapshot_to_json : Obs.snapshot -> Obs.Json.t
(** The ["observed"] rendering of an observability snapshot (counters,
    gauges, histograms, span rollup) shared by result records and the
    bench report. *)
