(* Compare two machine-readable bench reports (schema
   Obs.bench_schema_version) and gate on wall-time regressions.

   Rows are matched by name: experiments by their "id" field (compared on
   engine wall seconds), micro-benchmarks by their "name" field (compared
   on ns/run).  Rows present on only one side are reported but never gate
   — benchmarks are added and retired over the repo's life, and an old
   baseline must stay usable as new rows appear.

   Only experiment rows gate: their wall time is dominated by solver work
   and is what the perf-smoke CI job protects.  Micro rows are single-
   kernel timings that swing with machine load, so they are informational
   (still listed with their speedups).  The gate fails when some
   experiment's wall time exceeds baseline * (1 + threshold_pct / 100). *)

type kind = Experiment | Micro

type row = {
  name : string;
  kind : kind;
  baseline : float; (* seconds (experiments) or ns/run (micro) *)
  current : float;
}

(* Where a regression came from: one span phase of the regressed
   experiment, with its wall seconds on each side.  Sorted by absolute
   slowdown, so the first row names the guilty phase. *)
type phase_delta = {
  pd_path : string;
  pd_baseline_s : float;
  pd_current_s : float;
}

type report = {
  rows : row list; (* experiments first, then micro, in baseline order *)
  only_baseline : string list; (* rows the current report no longer has *)
  only_current : string list; (* rows the baseline predates *)
  threshold_pct : float;
  baseline_rev : string;
  current_rev : string;
  attribution : (string * phase_delta list) list;
      (* per regressed experiment: phases ranked by slowdown *)
}

let schema_version = "hypartition-bench-compare/1"

(* speedup > 1: the current run is faster. *)
let speedup r = if r.current > 0.0 then r.baseline /. r.current else infinity

let regressed ~threshold_pct r =
  r.kind = Experiment
  && r.current > r.baseline *. (1.0 +. (threshold_pct /. 100.0))

let regressions t = List.filter (regressed ~threshold_pct:t.threshold_pct) t.rows
let ok t = regressions t = []

(* ---- extraction ---------------------------------------------------------- *)

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let str_field name json =
  match Option.bind (Obs.Json.member name json) Obs.Json.get_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" name)

let num_field name json =
  match Option.bind (Obs.Json.member name json) Obs.Json.get_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

let arr_field name json =
  match Obs.Json.member name json with
  | Some (Obs.Json.Arr l) -> Ok l
  | Some _ -> Error (Printf.sprintf "field %S is not an array" name)
  | None -> Ok [] (* micro-only and experiments-only reports are both fine *)

(* (name, kind, value) rows of one report, in file order. *)
let rows_of_report doc =
  let* experiments = arr_field "experiments" doc in
  let* exp_rows =
    List.fold_left
      (fun acc e ->
        let* rows = acc in
        let* id = str_field "id" e in
        let* wall = num_field "wall_s" e in
        Ok ((id, Experiment, wall) :: rows))
      (Ok []) experiments
  in
  let* micro = arr_field "micro" doc in
  let* all_rows =
    List.fold_left
      (fun acc m ->
        let* rows = acc in
        let* name = str_field "name" m in
        let* ns = num_field "ns_per_run" m in
        Ok ((name, Micro, ns) :: rows))
      (Ok exp_rows) micro
  in
  Ok (List.rev all_rows)

let rev_of_report doc =
  match Obs.Json.member "git_rev" doc with
  | Some (Obs.Json.Str s) -> s
  | _ -> "unknown"

(* The span rollup an experiment row carries (bench/2 lifts the worker's
   observed snapshot into the row): path -> total wall seconds.  Rows
   without one — older reports, failed jobs — yield []. *)
let phases_of_experiment e =
  match Obs.Json.member "spans" e with
  | Some (Obs.Json.Arr spans) ->
      List.filter_map
        (fun s ->
          match
            ( Option.bind (Obs.Json.member "path" s) Obs.Json.get_str,
              Option.bind (Obs.Json.member "total_s" s) Obs.Json.get_float )
          with
          | Some path, Some total -> Some (path, total)
          | _ -> None)
        spans
  | _ -> []

let experiment_phases doc id =
  match Obs.Json.member "experiments" doc with
  | Some (Obs.Json.Arr experiments) -> (
      match
        List.find_opt
          (fun e ->
            Option.bind (Obs.Json.member "id" e) Obs.Json.get_str = Some id)
          experiments
      with
      | Some e -> phases_of_experiment e
      | None -> [])
  | _ -> []

(* Per-phase wall-time deltas for one regressed experiment, worst
   slowdown first.  Phases present on only one side still rank (a brand
   new phase IS the likely culprit), with 0 on the missing side. *)
let attribute ~baseline ~current id =
  let base = experiment_phases baseline id in
  let cur = experiment_phases current id in
  let paths =
    List.sort_uniq String.compare (List.map fst base @ List.map fst cur)
  in
  let total phases path = Option.value ~default:0.0 (List.assoc_opt path phases) in
  let deltas =
    List.map
      (fun path ->
        {
          pd_path = path;
          pd_baseline_s = total base path;
          pd_current_s = total cur path;
        })
      paths
  in
  List.sort
    (fun a b ->
      Float.compare
        (b.pd_current_s -. b.pd_baseline_s)
        (a.pd_current_s -. a.pd_baseline_s))
    deltas

let compare_json ?(threshold_pct = 25.0) ~baseline ~current () =
  let* () =
    if threshold_pct <= 0.0 then Error "threshold must be positive" else Ok ()
  in
  let* base_rows = Result.map_error (fun e -> "baseline: " ^ e) (rows_of_report baseline) in
  let* cur_rows = Result.map_error (fun e -> "current: " ^ e) (rows_of_report current) in
  let find rows name kind =
    List.find_map
      (fun (n, k, v) -> if n = name && k = kind then Some v else None)
      rows
  in
  let matched =
    List.filter_map
      (fun (name, kind, base_v) ->
        match find cur_rows name kind with
        | Some cur_v -> Some { name; kind; baseline = base_v; current = cur_v }
        | None -> None)
      base_rows
  in
  let only_baseline =
    List.filter_map
      (fun (name, kind, _) ->
        if find cur_rows name kind = None then Some name else None)
      base_rows
  in
  let only_current =
    List.filter_map
      (fun (name, kind, _) ->
        if find base_rows name kind = None then Some name else None)
      cur_rows
  in
  let attribution =
    List.filter_map
      (fun r ->
        if regressed ~threshold_pct r then
          match attribute ~baseline ~current r.name with
          | [] -> None
          | deltas -> Some (r.name, deltas)
        else None)
      matched
  in
  Ok
    {
      rows = matched;
      only_baseline;
      only_current;
      threshold_pct;
      baseline_rev = rev_of_report baseline;
      current_rev = rev_of_report current;
      attribution;
    }

let load path =
  let* text =
    try Ok (In_channel.with_open_text path In_channel.input_all)
    with Sys_error msg -> Error msg
  in
  Result.map_error (fun e -> path ^ ": " ^ e) (Obs.Json.parse text)

let compare_files ?threshold_pct ~baseline ~current () =
  let* base = load baseline in
  let* cur = load current in
  compare_json ?threshold_pct ~baseline:base ~current:cur ()

(* ---- rendering ----------------------------------------------------------- *)

let to_json t =
  let open Obs.Json in
  let row r =
    Obj
      [
        ("name", Str r.name);
        ("kind", Str (match r.kind with Experiment -> "experiment" | Micro -> "micro"));
        ("baseline", Float r.baseline);
        ("current", Float r.current);
        ("speedup", Float (speedup r));
        ("regressed", Bool (regressed ~threshold_pct:t.threshold_pct r));
      ]
  in
  Obj
    [
      ("schema", Str schema_version);
      ("baseline_rev", Str t.baseline_rev);
      ("current_rev", Str t.current_rev);
      ("threshold_pct", Float t.threshold_pct);
      ("ok", Bool (ok t));
      ("rows", Arr (List.map row t.rows));
      ("only_baseline", Arr (List.map (fun s -> Str s) t.only_baseline));
      ("only_current", Arr (List.map (fun s -> Str s) t.only_current));
      ( "attribution",
        Obj
          (List.map
             (fun (id, deltas) ->
               ( id,
                 Arr
                   (List.map
                      (fun d ->
                        Obj
                          [
                            ("path", Str d.pd_path);
                            ("baseline_s", Float d.pd_baseline_s);
                            ("current_s", Float d.pd_current_s);
                            ( "delta_s",
                              Float (d.pd_current_s -. d.pd_baseline_s) );
                          ])
                      deltas) ))
             t.attribution) );
    ]

let render t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "bench compare: baseline %s -> current %s (gate: experiments, +%.0f%% wall time)\n"
    t.baseline_rev t.current_rev t.threshold_pct;
  let value r v =
    match r.kind with
    | Experiment -> Printf.sprintf "%10.3f s " v
    | Micro ->
        if v >= 1e9 then Printf.sprintf "%9.2f s  " (v /. 1e9)
        else if v >= 1e6 then Printf.sprintf "%9.2f ms " (v /. 1e6)
        else Printf.sprintf "%9.2f us " (v /. 1e3)
  in
  List.iter
    (fun r ->
      add "  %-52s %s-> %s %6.2fx%s\n" r.name (value r r.baseline)
        (value r r.current) (speedup r)
        (if regressed ~threshold_pct:t.threshold_pct r then "  REGRESSION"
         else if r.kind = Micro then "  (informational)"
         else ""))
    t.rows;
  List.iter (fun n -> add "  %-52s only in baseline\n" n) t.only_baseline;
  List.iter (fun n -> add "  %-52s only in current\n" n) t.only_current;
  (* Regressions carry a phase-level bill: the experiment's span rollup
     from each side, ranked by how many wall seconds the phase gained. *)
  List.iter
    (fun (id, deltas) ->
      add "  phase attribution for %s (top slowdowns first):\n" id;
      let shown = List.filteri (fun i _ -> i < 5) deltas in
      List.iter
        (fun d ->
          add "    %-50s %8.3f s -> %8.3f s  (%+.3f s)\n" d.pd_path
            d.pd_baseline_s d.pd_current_s
            (d.pd_current_s -. d.pd_baseline_s))
        shown;
      let rest = List.length deltas - List.length shown in
      if rest > 0 then add "    ... and %d more phase(s)\n" rest)
    t.attribution;
  (match regressions t with
  | [] -> add "ok: no experiment regressed beyond %.0f%%\n" t.threshold_pct
  | rs ->
      add "FAIL: %d experiment(s) regressed beyond %.0f%%\n" (List.length rs)
        t.threshold_pct);
  Buffer.contents buf
