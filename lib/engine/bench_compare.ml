(* Compare two machine-readable bench reports (schema
   Obs.bench_schema_version) and gate on wall-time regressions.

   Rows are matched by name: experiments by their "id" field (compared on
   engine wall seconds), micro-benchmarks by their "name" field (compared
   on ns/run).  Rows present on only one side are reported but never gate
   — benchmarks are added and retired over the repo's life, and an old
   baseline must stay usable as new rows appear.

   Only experiment rows gate: their wall time is dominated by solver work
   and is what the perf-smoke CI job protects.  Micro rows are single-
   kernel timings that swing with machine load, so they are informational
   (still listed with their speedups).  The gate fails when some
   experiment's wall time exceeds baseline * (1 + threshold_pct / 100). *)

type kind = Experiment | Micro

type row = {
  name : string;
  kind : kind;
  baseline : float; (* seconds (experiments) or ns/run (micro) *)
  current : float;
}

type report = {
  rows : row list; (* experiments first, then micro, in baseline order *)
  only_baseline : string list; (* rows the current report no longer has *)
  only_current : string list; (* rows the baseline predates *)
  threshold_pct : float;
  baseline_rev : string;
  current_rev : string;
}

let schema_version = "hypartition-bench-compare/1"

(* speedup > 1: the current run is faster. *)
let speedup r = if r.current > 0.0 then r.baseline /. r.current else infinity

let regressed ~threshold_pct r =
  r.kind = Experiment
  && r.current > r.baseline *. (1.0 +. (threshold_pct /. 100.0))

let regressions t = List.filter (regressed ~threshold_pct:t.threshold_pct) t.rows
let ok t = regressions t = []

(* ---- extraction ---------------------------------------------------------- *)

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let str_field name json =
  match Option.bind (Obs.Json.member name json) Obs.Json.get_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" name)

let num_field name json =
  match Option.bind (Obs.Json.member name json) Obs.Json.get_float with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

let arr_field name json =
  match Obs.Json.member name json with
  | Some (Obs.Json.Arr l) -> Ok l
  | Some _ -> Error (Printf.sprintf "field %S is not an array" name)
  | None -> Ok [] (* micro-only and experiments-only reports are both fine *)

(* (name, kind, value) rows of one report, in file order. *)
let rows_of_report doc =
  let* experiments = arr_field "experiments" doc in
  let* exp_rows =
    List.fold_left
      (fun acc e ->
        let* rows = acc in
        let* id = str_field "id" e in
        let* wall = num_field "wall_s" e in
        Ok ((id, Experiment, wall) :: rows))
      (Ok []) experiments
  in
  let* micro = arr_field "micro" doc in
  let* all_rows =
    List.fold_left
      (fun acc m ->
        let* rows = acc in
        let* name = str_field "name" m in
        let* ns = num_field "ns_per_run" m in
        Ok ((name, Micro, ns) :: rows))
      (Ok exp_rows) micro
  in
  Ok (List.rev all_rows)

let rev_of_report doc =
  match Obs.Json.member "git_rev" doc with
  | Some (Obs.Json.Str s) -> s
  | _ -> "unknown"

let compare_json ?(threshold_pct = 25.0) ~baseline ~current () =
  let* () =
    if threshold_pct <= 0.0 then Error "threshold must be positive" else Ok ()
  in
  let* base_rows = Result.map_error (fun e -> "baseline: " ^ e) (rows_of_report baseline) in
  let* cur_rows = Result.map_error (fun e -> "current: " ^ e) (rows_of_report current) in
  let find rows name kind =
    List.find_map
      (fun (n, k, v) -> if n = name && k = kind then Some v else None)
      rows
  in
  let matched =
    List.filter_map
      (fun (name, kind, base_v) ->
        match find cur_rows name kind with
        | Some cur_v -> Some { name; kind; baseline = base_v; current = cur_v }
        | None -> None)
      base_rows
  in
  let only_baseline =
    List.filter_map
      (fun (name, kind, _) ->
        if find cur_rows name kind = None then Some name else None)
      base_rows
  in
  let only_current =
    List.filter_map
      (fun (name, kind, _) ->
        if find base_rows name kind = None then Some name else None)
      cur_rows
  in
  Ok
    {
      rows = matched;
      only_baseline;
      only_current;
      threshold_pct;
      baseline_rev = rev_of_report baseline;
      current_rev = rev_of_report current;
    }

let load path =
  let* text =
    try Ok (In_channel.with_open_text path In_channel.input_all)
    with Sys_error msg -> Error msg
  in
  Result.map_error (fun e -> path ^ ": " ^ e) (Obs.Json.parse text)

let compare_files ?threshold_pct ~baseline ~current () =
  let* base = load baseline in
  let* cur = load current in
  compare_json ?threshold_pct ~baseline:base ~current:cur ()

(* ---- rendering ----------------------------------------------------------- *)

let to_json t =
  let open Obs.Json in
  let row r =
    Obj
      [
        ("name", Str r.name);
        ("kind", Str (match r.kind with Experiment -> "experiment" | Micro -> "micro"));
        ("baseline", Float r.baseline);
        ("current", Float r.current);
        ("speedup", Float (speedup r));
        ("regressed", Bool (regressed ~threshold_pct:t.threshold_pct r));
      ]
  in
  Obj
    [
      ("schema", Str schema_version);
      ("baseline_rev", Str t.baseline_rev);
      ("current_rev", Str t.current_rev);
      ("threshold_pct", Float t.threshold_pct);
      ("ok", Bool (ok t));
      ("rows", Arr (List.map row t.rows));
      ("only_baseline", Arr (List.map (fun s -> Str s) t.only_baseline));
      ("only_current", Arr (List.map (fun s -> Str s) t.only_current));
    ]

let render t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "bench compare: baseline %s -> current %s (gate: experiments, +%.0f%% wall time)\n"
    t.baseline_rev t.current_rev t.threshold_pct;
  let value r v =
    match r.kind with
    | Experiment -> Printf.sprintf "%10.3f s " v
    | Micro ->
        if v >= 1e9 then Printf.sprintf "%9.2f s  " (v /. 1e9)
        else if v >= 1e6 then Printf.sprintf "%9.2f ms " (v /. 1e6)
        else Printf.sprintf "%9.2f us " (v /. 1e3)
  in
  List.iter
    (fun r ->
      add "  %-52s %s-> %s %6.2fx%s\n" r.name (value r r.baseline)
        (value r r.current) (speedup r)
        (if regressed ~threshold_pct:t.threshold_pct r then "  REGRESSION"
         else if r.kind = Micro then "  (informational)"
         else ""))
    t.rows;
  List.iter (fun n -> add "  %-52s only in baseline\n" n) t.only_baseline;
  List.iter (fun n -> add "  %-52s only in current\n" n) t.only_current;
  (match regressions t with
  | [] -> add "ok: no experiment regressed beyond %.0f%%\n" t.threshold_pct
  | rs ->
      add "FAIL: %d experiment(s) regressed beyond %.0f%%\n" (List.length rs)
        t.threshold_pct);
  Buffer.contents buf
