(** Content-addressed on-disk result cache.

    One ["hypartition-result/1"] record per file under
    [<dir>/<hh>/<rest>.json], keyed by the job fingerprint.  Stores are
    atomic (temp file + rename in the target directory), so concurrent
    workers and interrupted runs never leave a half-written entry; reads
    are fully validated and any defect — foreign file, truncation, wrong
    fingerprint echo — degrades to a miss plus a [corrupt] tick, never a
    crash. *)

type t

type stats = { hits : int; misses : int; stores : int; corrupt : int }

val open_ : string -> (t, string) result
(** Create (mkdir -p) or reuse a cache rooted at the given directory. *)

val path_of : t -> string -> string
(** The on-disk path an entry with this fingerprint lives at.  Raises
    [Invalid_argument] on a malformed fingerprint. *)

val find : t -> string -> Record.t option
(** Validated lookup; counts a hit, or a miss (plus [corrupt] when a file
    existed but did not validate). *)

val store : t -> Record.t -> (unit, string) result
(** Atomically persist a [Done] record; rejects non-cacheable records. *)

val stats : t -> stats
val stats_to_json : stats -> Obs.Json.t
