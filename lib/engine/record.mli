(** Versioned result records — schema ["hypartition-result/1"].

    A record binds a job plan and its fingerprint to what happened: a
    status, deterministic metrics, the worker's observability snapshot
    and timing.  The deterministic part (everything except the
    ["timing"] and ["observed"] sections) depends only on the plan, never
    on scheduling — the engine's determinism guarantee quantifies over
    {!deterministic_string}. *)

val schema_version : string
(** ["hypartition-result/1"]; mixed into every fingerprint, so bumping it
    invalidates the whole cache. *)

type status =
  | Done  (** completed and audit-clean; the only cacheable status *)
  | Failed of string  (** deterministic job-level failure (bad input,
                          infeasible instance, audit violation) *)
  | Timed_out of float  (** killed after exceeding this wall-clock budget *)
  | Crashed of string  (** worker died without completing the protocol *)
  | Skipped of string  (** never ran (e.g. SIGINT drain) *)

type timing = {
  wall_s : float;  (** coordinator-measured wall clock *)
  attempts : int;  (** 1 + retries consumed *)
  worker : int;  (** worker slot, [-1] for cache hits and skipped jobs *)
  threads : int;
      (** solver domains the run was configured with; [0] = sequential.
          Provenance only (rendered in the ["timing"] section, and only
          when positive): the parallel solver's output is
          thread-count-independent. *)
}

val no_timing : timing

type t = {
  fingerprint : string;
  job : Spec.job;
  status : status;
  metrics : (string * Obs.Json.t) list;  (** deterministic outcome fields *)
  observed : Obs.Json.t option;  (** worker observability snapshot *)
  timing : timing;
}

val ok : t -> bool
val cacheable : t -> bool

val status_name : status -> string
(** ["ok"], ["failed"], ["timeout"], ["crashed"], ["skipped"]. *)

val status_detail : status -> string option
(** The human detail behind a non-[Done] status. *)

(** {1 Worker payload}

    What a worker reports over its status pipe; the coordinator wraps it
    into a full record.  A worker that dies before completing the
    protocol is classified from its exit status instead. *)

type payload = {
  p_status : [ `Done | `Failed of string ];
  p_metrics : (string * Obs.Json.t) list;
  p_observed : Obs.Json.t option;
}

val payload_to_json : payload -> Obs.Json.t
val payload_of_json : Obs.Json.t -> (payload, string) result

(** {1 Record codec} *)

val to_json : ?deterministic:bool -> t -> Obs.Json.t
(** With [~deterministic:true], drop the ["timing"] and ["observed"]
    sections — the rendering the determinism guarantee quantifies over. *)

val deterministic_string : t -> string

val of_json : Obs.Json.t -> (t, string) result
(** Total decoding; malformed documents are [Error]s, so corrupted cache
    entries degrade to misses. *)
