(** Content fingerprints for the result cache: 64-bit FNV-1a over a
    canonical byte string, rendered as 16 lowercase hex digits.

    FNV-1a is not cryptographic; it keys a local result cache, where the
    adversary is an accidental collision, not an attacker.  The digest is
    stable across platforms and OCaml versions. *)

val fnv1a_64 : string -> int64
(** The raw 64-bit FNV-1a hash of a byte string. *)

val digest : string -> string
(** [digest s] is {!fnv1a_64} rendered as 16 lowercase hex digits. *)

val digest_file : string -> (string, string) result
(** Digest of a file's contents; [Error] (with a [Fingerprint.digest_file:]
    prefix) when the file cannot be read. *)

val is_digest : string -> bool
(** Whether a string is a well-formed digest (16 lowercase hex digits). *)
