(* 64-bit FNV-1a over a canonical byte string — the content hash behind
   the result cache.  Hand-rolled (no external hashing dependency) and
   stable across OCaml versions: the algorithm is pure 64-bit integer
   arithmetic on bytes, so the digest of a canonical job serialization is
   reproducible anywhere. *)

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let fnv1a_64 s =
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let hex_of_int64 h =
  (* Unsigned 16-digit lowercase hex. *)
  Printf.sprintf "%016Lx" h

let digest s = hex_of_int64 (fnv1a_64 s)

let digest_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Ok (digest content)
  | exception Sys_error msg -> Error (Printf.sprintf "Fingerprint.digest_file: %s" msg)

let is_digest s =
  String.length s = 16
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s
