(** Job plans: the deterministic unit of work the batch engine schedules.

    A job carries everything needed to run it — instance source, solver
    configuration, seed, optional wall-clock budget — so a worker process
    needs no ambient state and a re-run from the same plan is
    byte-reproducible.  {!canonical} is the byte string behind the cache
    fingerprint: file instances contribute their {e content} digest and
    the result-schema version is mixed in; the timeout is excluded by
    design (a budget bounds a run, it does not change what it computes). *)

type gen_kind = Uniform | Two_regular | Planted | Spmv | Fft | Stencil

type instance =
  | Hmetis_file of string  (** hMETIS hypergraph file; partitioned *)
  | Dag_file of string  (** DAG file; list-scheduled *)
  | Generated of { kind : gen_kind; n : int }
      (** workload generator, seeded from the job seed *)
  | Experiment of string  (** paper experiment id, ["E1"].. *)
  | Spin of float
      (** fault-injection drill: busy-wait this many seconds (a timeout
          victim under a smaller budget) *)
  | Crash of int
      (** fault-injection drill: the worker exits immediately with this
          status, without completing the protocol *)

type algorithm = Multilevel | Recursive | Fm | Bfs | Random | Exact

type config = {
  k : int;
  eps : float;
  algorithm : algorithm;
  metric : Partition.metric;
  parallel : bool;
      (** run the multilevel solver's parallel (domain-based) path.  Part
          of the job's identity — the parallel path is a different
          algorithm — but the canonical string only gains its marker when
          set, so sequential fingerprints are unchanged.  The thread
          count is {e not} part of identity: the parallel path's output
          is thread-count-independent by construction. *)
}

val default_config : config
(** k = 2, ε = 0.03, multilevel, connectivity, sequential. *)

type job = {
  instance : instance;
  config : config;
  seed : int;
  timeout_s : float option;  (** wall-clock budget; [None] = unbounded *)
}

(** {1 Names} *)

val gen_kinds : (string * gen_kind) list
val algorithms : (string * algorithm) list
val metrics : (string * Partition.metric) list

val gen_kind_name : gen_kind -> string
val algorithm_name : algorithm -> string
val metric_name : Partition.metric -> string

val describe : job -> string
(** Compact human label for progress lines ("E3", "uniform n=200 k=4
    multilevel seed=7"). *)

val config_sensitive : job -> bool
(** Whether config and seed take part in the job's identity (false for
    experiments and fault drills, whose expansion pins them). *)

val validate : job -> (unit, string) result
(** Shape checks: positive k, non-negative eps, positive generated size,
    positive timeout. *)

(** {1 Fingerprinting} *)

val canonical : schema:string -> job -> (string, string) result
(** The canonical byte string for fingerprinting; [Error] when a file
    instance cannot be read. *)

val fingerprint : schema:string -> job -> (string, string) result
(** {!Fingerprint.digest} of {!canonical}. *)

(** {1 JSON codec} *)

val to_json : job -> Obs.Json.t
val of_json : Obs.Json.t -> (job, string) result
(** Total decoding: a malformed document is an [Error], never an
    exception, so corrupted cache entries degrade to misses. *)
