(* Fork-based worker pool: the fault-isolation boundary of the engine.

   Each job runs in a forked child ("worker") that reports a
   Record.payload back over a dedicated status pipe and then _exits
   without running the parent's at_exit handlers.  The coordinator
   multiplexes the pipes with select, reaps children with non-blocking
   waitpid, SIGKILLs any worker that exceeds its wall-clock budget, and
   retries crashed workers (bounded, with exponential backoff) — so a
   crashing, diverging or OOM-killed job costs exactly one result, never
   the sweep.

   Status pipes are drained while workers run (not after they exit): a
   worker whose payload exceeds the kernel pipe buffer would otherwise
   deadlock against a coordinator waiting for its exit.

   Since the serve PR the coordinator state is an explicit value [t] with
   an incremental API — create / submit / step / cancel — so a long-lived
   caller (the `hypartition serve` daemon) can feed jobs one at a time
   and keep its own accept loop responsive; [step] can multiplex caller
   fds (listening and client sockets) into the same select.  The batch
   entry point [run] is a thin loop over that machine and behaves exactly
   as before.

   SIGINT (when [handle_sigint]) drains gracefully: no new workers are
   forked, queued jobs become Skipped records, and in-flight workers run
   to completion — so every result that will be cached is a complete,
   validated record.

   This module is the only place in the repository allowed to call
   Unix.fork / Unix.waitpid / Unix.kill (lint rule SRC08): process
   management stays centralized behind this interface. *)

type config = {
  jobs : int;
  retries : int;
  backoff_s : float;
  default_timeout_s : float option;
  silence_worker_stdout : bool;
  handle_sigint : bool;
  solver_threads : int;
      (* domains per worker's solver, stamped on record timing; 0 =
         sequential.  The pool itself never creates domains — a forked
         worker spawns (and joins) its own inside the solve. *)
}

let default_config =
  {
    jobs = 1;
    retries = 1;
    backoff_s = 0.1;
    default_timeout_s = None;
    silence_worker_stdout = false;
    handle_sigint = false;
    solver_threads = 0;
  }

type event =
  | Started of { index : int; job : Spec.job; worker : int; attempt : int }
  | Finished of { index : int; record : Record.t }
  | Retrying of { index : int; job : Spec.job; attempt : int; delay_s : float }
  | Interrupted of { pending : int }

let c_ok = Obs.Counter.make "engine.job.ok"
let c_failed = Obs.Counter.make "engine.job.failed"
let c_timeout = Obs.Counter.make "engine.job.timeout"
let c_crashed = Obs.Counter.make "engine.job.crashed"
let c_retried = Obs.Counter.make "engine.job.retried"
let c_skipped = Obs.Counter.make "engine.job.skipped"
let h_wall = Obs.Histogram.make "engine.job.wall_s"

type pending = {
  p_index : int;
  p_fp : string;
  p_job : Spec.job;
  p_attempt : int;  (* 1-based *)
  p_ready_at : int64;  (* monotonic ns; backoff gate for retries *)
}

type running = {
  r_index : int;
  r_fp : string;
  r_job : Spec.job;
  r_attempt : int;
  r_pid : int;
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;
  mutable r_eof : bool;
  r_started : int64;
  r_deadline : int64 option;
  r_slot : int;
  mutable r_killed : bool;
  r_shard : string option; (* the worker's trace shard, absorbed at drain *)
}

type t = {
  config : config;
  worker : Spec.job -> Record.payload;
  slots : int;
  slot_free : bool array;
  mutable pending : pending list;
  mutable running : running list;
  mutable shards : (int * string) list; (* job index, shard path *)
  mutable completed : (int * Record.t) list; (* newest first, drained by step *)
  mutable stop_forking : bool;
}

let ns_of_s s = Int64.of_float (s *. 1e9)

(* ---- the worker side ---------------------------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* The shard path a worker writes, derived from the coordinator's trace
   path and the worker pid — computed identically on both sides of the
   fork so the coordinator knows what to absorb. *)
let shard_path ~base ~pid = Printf.sprintf "%s.worker.%d.jsonl" base pid

(* Runs in the forked child; never returns.  Anything the worker function
   raises becomes a Failed payload (a deterministic job-level failure);
   only dying without completing the protocol counts as a crash. *)
let child_main ~silence ~trace_ctx ~worker ~job write_fd =
  if silence then begin
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    Unix.dup2 devnull Unix.stdout;
    Unix.close devnull
  end;
  (* Drop sinks inherited from the coordinator: a worker must never
     append to the parent's trace file.  When the coordinator is tracing,
     attach a shard of our own instead — its meta header carries the
     trace id (the job fingerprint) and the coordinator-side parent span,
     so the coordinator can merge it back into one timeline. *)
  Obs.reset_for_tests ();
  (match trace_ctx with
  | None -> ()
  | Some (base, trace_id, parent_span) ->
      let pid = Unix.getpid () in
      Obs.enable_trace_shard ~trace_id ?parent_span ~pid
        (shard_path ~base ~pid));
  let payload =
    try worker job
    with e ->
      {
        Record.p_status = `Failed ("uncaught exception: " ^ Printexc.to_string e);
        p_metrics = [];
        p_observed = None;
      }
  in
  (* Finalize the shard before reporting: a payload on the status pipe
     promises the shard is complete. *)
  Obs.close ();
  (match write_all write_fd (Obs.Json.to_string (Record.payload_to_json payload))
   with
  | () -> ()
  | exception Unix.Unix_error _ -> ());
  (try Unix.close write_fd with Unix.Unix_error _ -> ());
  (* Flush the child's own stdio, then exit WITHOUT at_exit: the
     coordinator's handlers (obs sinks, alcotest reporting) must run
     exactly once, in the coordinator. *)
  (try flush stdout with Sys_error _ -> ());
  (try flush stderr with Sys_error _ -> ());
  Unix._exit 0

(* ---- the coordinator side ----------------------------------------------- *)

let spawn ~config ~worker ~slot (p : pending) =
  (* Flush buffered output so the child does not replay it. *)
  flush stdout;
  flush stderr;
  (* Capture the trace context before forking: the job fingerprint is the
     trace id, the innermost open span (engine.batch) the parent. *)
  let trace_ctx =
    match Obs.trace_file () with
    | None -> None
    | Some base -> Some (base, p.p_fp, Obs.current_span_id ())
  in
  let read_fd, write_fd = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      (try Unix.close read_fd with Unix.Unix_error _ -> ());
      child_main ~silence:config.silence_worker_stdout ~trace_ctx ~worker
        ~job:p.p_job write_fd
  | pid ->
      Unix.close write_fd;
      let now = Support.Util.monotonic_ns () in
      let timeout =
        match p.p_job.Spec.timeout_s with
        | Some t -> Some t
        | None -> config.default_timeout_s
      in
      {
        r_index = p.p_index;
        r_fp = p.p_fp;
        r_job = p.p_job;
        r_attempt = p.p_attempt;
        r_pid = pid;
        r_fd = read_fd;
        r_buf = Buffer.create 1024;
        r_eof = false;
        r_started = now;
        r_deadline = Option.map (fun t -> Int64.add now (ns_of_s t)) timeout;
        r_slot = slot;
        r_killed = false;
        r_shard =
          Option.map
            (fun (base, _, _) -> shard_path ~base ~pid)
            trace_ctx;
      }

let read_chunk r =
  let chunk = Bytes.create 65536 in
  match Unix.read r.r_fd chunk 0 (Bytes.length chunk) with
  | 0 ->
      r.r_eof <- true;
      (try Unix.close r.r_fd with Unix.Unix_error _ -> ())
  | n -> Buffer.add_subbytes r.r_buf chunk 0 n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Classify a reaped worker from its exit status and whatever arrived on
   the status pipe. *)
let classify r status =
  let budget =
    match r.r_deadline with
    | Some d ->
        Support.Util.seconds_of_ns (Int64.sub d r.r_started)
    | None -> 0.0
  in
  match status with
  | Unix.WEXITED 0 -> (
      let raw = String.trim (Buffer.contents r.r_buf) in
      match Obs.Json.parse raw with
      | Error e -> `Crash (Printf.sprintf "worker protocol: bad payload (%s)" e)
      | Ok json -> (
          match Record.payload_of_json json with
          | Error e -> `Crash (Printf.sprintf "worker protocol: %s" e)
          | Ok payload -> `Payload payload))
  | Unix.WEXITED code -> `Crash (Printf.sprintf "worker exited with status %d" code)
  | Unix.WSIGNALED signal ->
      if r.r_killed then `Timeout budget
      else `Crash (Printf.sprintf "worker killed by signal %d" signal)
  | Unix.WSTOPPED signal ->
      `Crash (Printf.sprintf "worker stopped by signal %d" signal)

let make_record ~threads ~r ~status ~metrics ~observed ~wall =
  Obs.Histogram.observe h_wall wall;
  {
    Record.fingerprint = r.r_fp;
    job = r.r_job;
    status;
    metrics;
    observed;
    timing =
      {
        Record.wall_s = wall;
        attempts = r.r_attempt;
        worker = r.r_slot;
        threads;
      };
  }

let skipped_record ~reason (p : pending) =
  {
    Record.fingerprint = p.p_fp;
    job = p.p_job;
    status = Record.Skipped reason;
    metrics = [];
    observed = None;
    timing = Record.no_timing;
  }

(* ---- incremental coordinator API ---------------------------------------- *)

let create config ~worker =
  let slots = max 1 config.jobs in
  {
    config;
    worker;
    slots;
    slot_free = Array.make slots true;
    pending = [];
    running = [];
    shards = [];
    completed = [];
    stop_forking = false;
  }

let submit t ~index ~fingerprint job =
  t.pending <-
    t.pending
    @ [
        {
          p_index = index;
          p_fp = fingerprint;
          p_job = job;
          p_attempt = 1;
          p_ready_at = 0L;
        };
      ]

let queued t = List.length t.pending
let in_flight t = List.length t.running
let idle t = t.pending = [] && t.running = []
let stop_forking t = t.stop_forking <- true

let cancel t ~index =
  let found = ref false in
  t.pending <-
    List.filter
      (fun p ->
        if (not !found) && p.p_index = index then begin
          found := true;
          false
        end
        else true)
      t.pending;
  !found

let skip_queued ?(on_event = fun (_ : event) -> ()) ~reason t =
  let skipped =
    List.map
      (fun p ->
        let record = skipped_record ~reason p in
        Obs.Counter.incr c_skipped;
        on_event (Finished { index = p.p_index; record });
        (p.p_index, record))
      t.pending
  in
  t.pending <- [];
  t.completed <- List.rev_append skipped t.completed;
  skipped

let finish t index record =
  (match record.Record.status with
  | Record.Done -> Obs.Counter.incr c_ok
  | Record.Failed _ -> Obs.Counter.incr c_failed
  | Record.Timed_out _ -> Obs.Counter.incr c_timeout
  | Record.Crashed _ -> Obs.Counter.incr c_crashed
  | Record.Skipped _ -> Obs.Counter.incr c_skipped);
  t.completed <- (index, record) :: t.completed

let take_ready t now =
  (* First pending job whose backoff gate has passed, preserving queue
     order for the rest. *)
  let rec go acc = function
    | [] -> None
    | p :: rest when p.p_ready_at <= now ->
        t.pending <- List.rev_append acc rest;
        Some p
    | p :: rest -> go (p :: acc) rest
  in
  go [] t.pending

let free_slot t =
  let rec go i = if t.slot_free.(i) then i else go (i + 1) in
  go 0

let finalize ~on_event t now r status =
  t.slot_free.(r.r_slot) <- true;
  (* The worker has exited, so the pipe's write end is gone — drain what
     is still buffered before classifying.  Reaping between the worker's
     final write and the next select round must not truncate the payload
     into a spurious protocol crash. *)
  while not r.r_eof do
    read_chunk r
  done;
  let wall = Support.Util.seconds_of_ns (Int64.sub now r.r_started) in
  let make_record = make_record ~threads:t.config.solver_threads in
  (* A final attempt's shard (complete, or partial for a killed worker)
     is merged at drain; a retried attempt's partial shard is stale —
     the retry forks a fresh pid, hence a fresh shard path. *)
  let keep_shard () =
    match r.r_shard with
    | Some path -> t.shards <- (r.r_index, path) :: t.shards
    | None -> ()
  in
  let drop_shard () =
    match r.r_shard with
    | Some path -> ( try Sys.remove path with Sys_error _ -> ())
    | None -> ()
  in
  match classify r status with
  | `Payload { Record.p_status = `Done; p_metrics; p_observed } ->
      keep_shard ();
      let record =
        make_record ~r ~status:Record.Done ~metrics:p_metrics
          ~observed:p_observed ~wall
      in
      on_event (Finished { index = r.r_index; record });
      finish t r.r_index record
  | `Payload { Record.p_status = `Failed msg; p_metrics; p_observed } ->
      keep_shard ();
      let record =
        make_record ~r ~status:(Record.Failed msg) ~metrics:p_metrics
          ~observed:p_observed ~wall
      in
      on_event (Finished { index = r.r_index; record });
      finish t r.r_index record
  | `Timeout budget ->
      keep_shard ();
      let record =
        make_record ~r ~status:(Record.Timed_out budget) ~metrics:[]
          ~observed:None ~wall
      in
      on_event (Finished { index = r.r_index; record });
      finish t r.r_index record
  | `Crash msg ->
      if r.r_attempt <= t.config.retries && not t.stop_forking then begin
        drop_shard ();
        (* Transient-looking death: bounded retry with exponential
           backoff. *)
        let delay =
          t.config.backoff_s *. (2.0 ** float_of_int (r.r_attempt - 1))
        in
        Obs.Counter.incr c_retried;
        on_event
          (Retrying
             { index = r.r_index; job = r.r_job; attempt = r.r_attempt + 1;
               delay_s = delay });
        t.pending <-
          t.pending
          @ [
              {
                p_index = r.r_index;
                p_fp = r.r_fp;
                p_job = r.r_job;
                p_attempt = r.r_attempt + 1;
                p_ready_at = Int64.add now (ns_of_s delay);
              };
            ]
      end
      else begin
        keep_shard ();
        let record =
          make_record ~r ~status:(Record.Crashed msg) ~metrics:[]
            ~observed:None ~wall
        in
        on_event (Finished { index = r.r_index; record });
        finish t r.r_index record
      end

let step ?(on_event = fun (_ : event) -> ()) ?(extra_fds = []) ~timeout t =
  let now = Support.Util.monotonic_ns () in
  (* Fork workers into free slots. *)
  let continue = ref true in
  while
    !continue && List.length t.running < t.slots && not t.stop_forking
  do
    match take_ready t now with
    | None -> continue := false
    | Some p ->
        let slot = free_slot t in
        t.slot_free.(slot) <- false;
        let r = spawn ~config:t.config ~worker:t.worker ~slot p in
        on_event
          (Started
             { index = p.p_index; job = p.p_job; worker = slot;
               attempt = p.p_attempt });
        t.running <- r :: t.running
  done;
  (* Drain status pipes; the select timeout also paces deadline and
     backoff checks, and multiplexes any caller fds (the daemon's
     sockets) into the same wait. *)
  let fds =
    List.filter_map
      (fun r -> if r.r_eof then None else Some r.r_fd)
      t.running
  in
  let readable_extra =
    match Unix.select (fds @ extra_fds) [] [] timeout with
    | readable, _, _ ->
        List.iter
          (fun r -> if List.mem r.r_fd readable then read_chunk r)
          t.running;
        List.filter (fun fd -> List.mem fd readable) extra_fds
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  in
  (* Enforce deadlines and reap exits. *)
  let now = Support.Util.monotonic_ns () in
  let still = ref [] in
  List.iter
    (fun r ->
      (match r.r_deadline with
      | Some d when (not r.r_killed) && now > d -> (
          r.r_killed <- true;
          try Unix.kill r.r_pid Sys.sigkill
          with Unix.Unix_error (Unix.ESRCH, _, _) -> ())
      | _ -> ());
      match Unix.waitpid [ Unix.WNOHANG ] r.r_pid with
      | 0, _ -> still := r :: !still
      | _, status -> finalize ~on_event t now r status
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> still := r :: !still)
    t.running;
  t.running <- !still;
  let completed = List.rev t.completed in
  t.completed <- [];
  (completed, readable_extra)

let take_shards t =
  let shards =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) t.shards
  in
  t.shards <- [];
  shards

let absorb_shards t =
  (* Absorb worker trace shards in job-index order, so merged span ids
     depend only on the plan — identical for --jobs 1 and --jobs 8.  The
     coordinator's own engine.batch span is still open here, so absorbed
     shard roots re-parent under it. *)
  List.iter
    (fun (_, path) ->
      ignore (Obs.absorb_shard path : int);
      try Sys.remove path with Sys_error _ -> ())
    (take_shards t)

(* No live forked children remain: the drain-test probe.  waitpid(-1)
   with WNOHANG either raises ECHILD (nothing left to reap — the good
   case) or reports a child, which a clean drain must not leave behind. *)
let no_live_children () =
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | 0, _ -> false (* a child is still running *)
  | _, _ -> false (* an unreaped zombie *)
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* ---- the batch entry point ---------------------------------------------- *)

let run ?(on_event = fun (_ : event) -> ()) config ~worker jobs =
  let t = create config ~worker in
  List.iteri
    (fun _ (index, fp, job) -> submit t ~index ~fingerprint:fp job)
    jobs;
  let interrupted = ref false in
  let previous_sigint =
    if config.handle_sigint then
      Some
        (Sys.signal Sys.sigint
           (Sys.Signal_handle (fun _ -> interrupted := true)))
    else None
  in
  let restore_sigint () =
    match previous_sigint with
    | Some b -> Sys.set_signal Sys.sigint b
    | None -> ()
  in
  Fun.protect ~finally:restore_sigint @@ fun () ->
  let results = ref [] in
  let interrupt_announced = ref false in
  while not (idle t) do
    if !interrupted then begin
      if not !interrupt_announced then begin
        interrupt_announced := true;
        t.stop_forking <- true;
        on_event (Interrupted { pending = queued t })
      end;
      ignore
        (skip_queued ~on_event ~reason:"interrupted (SIGINT)" t
          : (int * Record.t) list)
    end;
    let completed, _ = step ~on_event ~timeout:0.05 t in
    results := List.rev_append completed !results
  done;
  absorb_shards t;
  (* Results in input (index) order: callers zip against their job list. *)
  List.map snd
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) !results)
