(** Speedup / regression comparison of two bench reports (schema
    {!Obs.bench_schema_version}), the engine behind
    [hypartition bench --compare] and the CI perf-smoke gate.

    Rows are matched by name across the two reports: experiments by [id]
    (compared on engine wall seconds), micro-benchmarks by [name]
    (compared on ns/run).  Rows present on only one side never gate, so an
    old committed baseline stays usable as benchmarks are added or
    retired.  Only experiment rows gate — micro rows are single-kernel
    timings that swing with machine load and are reported as
    informational. *)

type kind = Experiment | Micro

type row = {
  name : string;
  kind : kind;
  baseline : float;  (** wall seconds (experiments) or ns/run (micro) *)
  current : float;
}

type phase_delta = {
  pd_path : string;  (** span rollup path, e.g. ["engine.job/multilevel"] *)
  pd_baseline_s : float;
  pd_current_s : float;
}
(** One phase of a regressed experiment's span rollup, with its wall
    seconds on each side.  A phase present on only one side keeps 0 on
    the missing side — a brand-new phase is the likely culprit. *)

type report = {
  rows : row list;  (** matched rows, experiments first, baseline order *)
  only_baseline : string list;  (** rows the current report no longer has *)
  only_current : string list;  (** rows the baseline predates *)
  threshold_pct : float;
  baseline_rev : string;
  current_rev : string;
  attribution : (string * phase_delta list) list;
      (** per regressed experiment (by id): its phases ranked worst
          slowdown first, from the bench/2 embedded span rollups; absent
          when the rollups are missing (old reports, failed jobs) *)
}

val schema_version : string
(** ["hypartition-bench-compare/1"], the [--format json] output schema. *)

val speedup : row -> float
(** [baseline / current]: above 1 means the current run is faster. *)

val regressed : threshold_pct:float -> row -> bool
(** True on experiment rows whose wall time exceeds
    [baseline * (1 + threshold_pct / 100)]; always false on micro rows. *)

val regressions : report -> row list
val ok : report -> bool
(** No experiment row regressed beyond the threshold. *)

val compare_json :
  ?threshold_pct:float ->
  baseline:Obs.Json.t ->
  current:Obs.Json.t ->
  unit ->
  (report, string) result
(** Compare two parsed bench reports; [threshold_pct] defaults to 25. *)

val compare_files :
  ?threshold_pct:float ->
  baseline:string ->
  current:string ->
  unit ->
  (report, string) result

val to_json : report -> Obs.Json.t
val render : report -> string
(** Human-readable table with per-row speedups and the gate verdict. *)
