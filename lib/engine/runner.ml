(* Worker-side job execution.

   [execute] materializes the instance, runs the work, audits the result
   with the lib/analysis auditors, and packages everything as a
   Record.payload — it runs inside the forked worker, so it never prints
   and never exits on a deterministic failure (it returns [`Failed]
   instead; the coordinator decides what a failure means).

   The payload's deterministic metrics depend only on the job plan: the
   rng is created from the job seed, instances are materialized the same
   way every time, and costs are recomputed from first principles by the
   auditors before the result is allowed to be cached. *)

let snapshot_to_json (snap : Obs.snapshot) =
  let open Obs.Json in
  Obj
    [
      ( "counters",
        Obj (List.map (fun (name, v) -> (name, Int v)) snap.Obs.counters) );
      ( "gauges",
        Obj (List.map (fun (name, v) -> (name, Float v)) snap.Obs.gauges) );
      ( "histograms",
        Obj
          (List.map
             (fun (name, h) ->
               ( name,
                 Obj
                   [
                     ("count", Int h.Obs.h_count);
                     ("sum", Float h.Obs.h_sum);
                     ("min", Float h.Obs.h_min);
                     ("max", Float h.Obs.h_max);
                     ("last", Float h.Obs.h_last);
                   ] ))
             snap.Obs.histograms) );
      ( "spans",
        Arr
          (List.map
             (fun s ->
               Obj
                 [
                   ("path", Str s.Obs.s_path);
                   ("count", Int s.Obs.s_count);
                   ( "total_s",
                     Float (Support.Util.seconds_of_ns s.Obs.s_total_ns) );
                   ("min_s", Float (Support.Util.seconds_of_ns s.Obs.s_min_ns));
                   ("max_s", Float (Support.Util.seconds_of_ns s.Obs.s_max_ns));
                 ])
             snap.Obs.spans) );
    ]

let failed msg = Error msg

(* ---- partition jobs ----------------------------------------------------- *)

let load_hypergraph path =
  match Hypergraph.Hmetis.load path with
  | hg -> Ok hg
  | exception Failure msg -> failed msg
  | exception Sys_error msg -> failed msg

let generate_hypergraph ~seed (kind : Spec.gen_kind) n =
  let rng = Support.Rng.create seed in
  match kind with
  | Spec.Uniform ->
      Some
        (Workloads.Rand_hg.uniform rng ~n ~m:(3 * n / 2) ~min_size:2
           ~max_size:6)
  | Spec.Two_regular ->
      Some (Workloads.Rand_hg.two_regular rng ~n ~m:(max 2 (n / 2)))
  | Spec.Planted ->
      Some
        (Workloads.Rand_hg.planted rng ~n ~m:(2 * n) ~k:4 ~locality:0.9
           ~edge_size:4)
  | Spec.Spmv ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Some
        (Workloads.Spmv.fine_grain (Workloads.Spmv.banded ~size:side ~bandwidth:2))
  | Spec.Fft | Spec.Stencil -> None

let generate_dag ~seed:_ (kind : Spec.gen_kind) n =
  match kind with
  | Spec.Fft ->
      let stages = max 1 (int_of_float (Float.log2 (float_of_int (max 2 n)))) in
      Some (Workloads.Dag_gen.fft ~stages)
  | Spec.Stencil ->
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Some (Workloads.Dag_gen.stencil_1d ~width:side ~steps:side)
  | _ -> None

let solve (config : Spec.config) ~threads ~seed hg =
  let { Spec.k; eps; algorithm; metric; parallel } = config in
  let rng = Support.Rng.create seed in
  match algorithm with
  | Spec.Multilevel ->
      (* A parallel job runs the domain-based path — always in
         deterministic mode here, so the record stays a pure function of
         the plan whatever [threads] the host was given (threads bounds
         the run like a timeout does; it is not part of the job's
         identity). *)
      let mthreads = if parallel then max 1 threads else 0 in
      Ok
        (Solvers.Multilevel.partition
           ~config:
             {
               Solvers.Multilevel.default_config with
               eps;
               metric;
               threads = mthreads;
               deterministic = true;
             }
           rng hg ~k)
  | Spec.Recursive ->
      Ok
        (Solvers.Recursive_bisection.partition ~eps
           ~bisector:(Solvers.Recursive_bisection.multilevel_bisector rng)
           hg ~k)
  | Spec.Fm ->
      let part = Solvers.Initial.random_balanced ~eps rng hg ~k in
      ignore
        (Solvers.Refine.refine
           ~config:{ Solvers.Refine.default_config with eps; metric }
           hg part);
      Ok part
  | Spec.Bfs -> Ok (Solvers.Initial.bfs_growth ~eps rng hg ~k)
  | Spec.Random -> Ok (Solvers.Initial.random_balanced ~eps rng hg ~k)
  | Spec.Exact ->
      if Hypergraph.num_nodes hg > 24 then
        failed
          (Printf.sprintf "exact solver limited to 24 nodes (got %d)"
             (Hypergraph.num_nodes hg))
      else (
        match Solvers.Exact.solve ~metric ~eps hg ~k with
        | Some { Solvers.Exact.part; _ } -> Ok part
        | None -> failed "no eps-balanced partition exists")

(* Validation gate: a partition result is only reportable (hence only
   cacheable) when the first-principles auditors sign off on both the
   instance representation and the partition. *)
let audit_partition ~eps hg part =
  let merged =
    Analysis.Check.merge ~subject:"engine job"
      [ Analysis.Audit_hg.audit hg; Analysis.Audit_partition.audit ~eps hg part ]
  in
  if Analysis.Check.ok merged then Ok ()
  else
    failed
      (Printf.sprintf "audit violations: %s"
         (String.concat ", " (Analysis.Check.violated_rules merged)))

let run_partition (config : Spec.config) ~threads ~seed hg =
  match solve config ~threads ~seed hg with
  | Error msg -> failed msg
  | Ok part -> (
      match audit_partition ~eps:config.Spec.eps hg part with
      | Error msg -> failed msg
      | Ok () ->
          let open Obs.Json in
          Ok
            [
              ("n", Int (Hypergraph.num_nodes hg));
              ("m", Int (Hypergraph.num_edges hg));
              ("pins", Int (Hypergraph.num_pins hg));
              ("k", Int (Partition.k part));
              ("connectivity", Int (Partition.connectivity_cost hg part));
              ("cutnet", Int (Partition.cutnet_cost hg part));
              ("imbalance", Float (Partition.imbalance hg part));
              ( "balanced",
                Bool (Partition.is_balanced ~eps:config.Spec.eps hg part) );
            ])

(* ---- scheduling jobs ---------------------------------------------------- *)

let run_schedule (config : Spec.config) dag =
  let k = config.Spec.k in
  let sched = Scheduling.List_sched.schedule dag ~k in
  let makespan = Scheduling.Schedule.makespan sched in
  let report = Analysis.Audit_schedule.audit ~k ~claimed_makespan:makespan dag sched in
  if not (Analysis.Check.ok report) then
    failed
      (Printf.sprintf "audit violations: %s"
         (String.concat ", " (Analysis.Check.violated_rules report)))
  else
    let open Obs.Json in
    Ok
      [
        ("n", Int (Hyperdag.Dag.num_nodes dag));
        ("m", Int (Hyperdag.Dag.num_edges dag));
        ("k", Int k);
        ("critical_path", Int (Hyperdag.Dag.critical_path_length dag));
        ("lower_bound", Int (Scheduling.Mu.lower_bound dag ~k));
        ("makespan", Int makespan);
      ]

let load_dag path =
  match Hyperdag.Dag_io.load path with
  | dag -> Ok dag
  | exception Failure msg -> failed msg
  | exception Sys_error msg -> failed msg

(* ---- experiments -------------------------------------------------------- *)

let run_experiment id =
  match
    List.find_opt (fun (eid, _, _) -> String.equal eid id) Experiments.all
  with
  | None ->
      failed
        (Printf.sprintf "unknown experiment %s; valid experiments: %s" id
           (String.concat " " Experiments.ids))
  | Some (eid, what, run) ->
      run ();
      Ok [ ("id", Obs.Json.Str eid); ("what", Obs.Json.Str what) ]

(* ---- dispatch ----------------------------------------------------------- *)

let run_job ?(lookup = fun (_ : string) -> None) ~threads (job : Spec.job) =
  match job.Spec.instance with
  | Spec.Hmetis_file path -> (
      (* The serve daemon keeps parsed hypergraphs in a hot-instance LRU
         (lib/server/instances.ml) populated before the worker forks;
         the copy-on-write mapping makes the parsed structure free to
         consult here, skipping the load and parse entirely. *)
      match lookup path with
      | Some hg -> run_partition job.Spec.config ~threads ~seed:job.Spec.seed hg
      | None -> (
          match load_hypergraph path with
          | Error msg -> failed msg
          | Ok hg ->
              run_partition job.Spec.config ~threads ~seed:job.Spec.seed hg))
  | Spec.Generated { kind; n } -> (
      match generate_hypergraph ~seed:job.Spec.seed kind n with
      | Some hg -> run_partition job.Spec.config ~threads ~seed:job.Spec.seed hg
      | None -> (
          match generate_dag ~seed:job.Spec.seed kind n with
          | Some dag -> run_schedule job.Spec.config dag
          | None -> failed "generator produced no instance"))
  | Spec.Dag_file path -> (
      match load_dag path with
      | Error msg -> failed msg
      | Ok dag -> run_schedule job.Spec.config dag)
  | Spec.Experiment id -> run_experiment id
  | Spec.Spin seconds ->
      Unix.sleepf seconds;
      Ok [ ("spun_s", Obs.Json.Float seconds) ]
  | Spec.Crash code ->
      (* Fault-injection drill: die without completing the worker
         protocol, exactly like a real crash would. *)
      Unix._exit code

let execute ?lookup ?(threads = 1) (job : Spec.job) =
  match Spec.validate job with
  | Error msg -> { Record.p_status = `Failed msg; p_metrics = []; p_observed = None }
  | Ok () ->
      Obs.set_enabled true;
      Obs.reset_stats ();
      let result =
        Obs.Span.with_
          ~attrs:[ ("job", Obs.Str (Spec.describe job)) ]
          "engine.job"
          (fun () ->
            let alloc0 =
              if Obs.Prof.enabled () then Obs.Prof.allocated_words () else 0.0
            in
            let r = run_job ?lookup ~threads job in
            if Obs.Prof.enabled () then begin
              (* Solve end: stamp the job's allocation bill on its span
                 and record the heap state the solve left behind. *)
              Obs.Span.attr "gc.alloc_words"
                (Obs.Float (Obs.Prof.allocated_words () -. alloc0));
              Obs.Prof.sample ()
            end;
            r)
      in
      let observed = Some (snapshot_to_json (Obs.snapshot ())) in
      (match result with
      | Ok metrics ->
          { Record.p_status = `Done; p_metrics = metrics; p_observed = observed }
      | Error msg ->
          {
            Record.p_status = `Failed msg;
            p_metrics = [];
            p_observed = observed;
          })
