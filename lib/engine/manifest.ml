(* Batch manifests: a small JSON document that expands deterministically
   into a job plan list.

   {
     "schema": "hypartition-manifest/1",
     "defaults": { "k": 4, "eps": 0.03, "algorithm": "multilevel",
                   "metric": "connectivity", "seed": 1, "timeout_s": 60.0 },
     "instances": [ { "file": "inst.hgr" },
                    { "dag": "graph.dag" },
                    { "generate": "uniform", "n": 400 },
                    { "experiment": "E3" },
                    { "spin": 30.0, "timeout_s": 1.0 },
                    { "crash": 66 } ],
     "configs":   [ { "k": 2 }, { "k": 8, "algorithm": "recursive" } ],
     "seeds":     [ 1, 2, 3 ]
   }

   Expansion is the cartesian product instances × configs × seeds, in
   manifest order (instances outermost, seeds innermost), so the same
   manifest always yields the same plan list in the same order.
   Experiments and the fault drills are self-contained: they expand once
   per instance entry, with config and seed pinned, so their cache
   fingerprints do not depend on sweep defaults.  Any instance entry may
   carry a "timeout_s" override. *)

let schema_version = "hypartition-manifest/1"

let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let opt_member name json = Obs.Json.member name json

let get_float_opt name json = Option.bind (opt_member name json) Obs.Json.get_float
let get_int_opt name json = Option.bind (opt_member name json) Obs.Json.get_int
let get_str_opt name json = Option.bind (opt_member name json) Obs.Json.get_str

let get_bool_opt name json =
  match opt_member name json with Some (Obs.Json.Bool b) -> Some b | _ -> None

let enum_opt assoc ~what name json =
  match get_str_opt name json with
  | None -> Ok None
  | Some s -> (
      match List.assoc_opt s assoc with
      | Some v -> Ok (Some v)
      | None ->
          err "unknown %s %S (valid: %s)" what s
            (String.concat ", " (List.map fst assoc)))

(* A config overlay: defaults overridden by whichever fields an entry
   carries. *)
let config_overlay ~(base : Spec.config) json =
  let* algorithm = enum_opt Spec.algorithms ~what:"algorithm" "algorithm" json in
  let* metric = enum_opt Spec.metrics ~what:"metric" "metric" json in
  Ok
    {
      Spec.k = Option.value ~default:base.Spec.k (get_int_opt "k" json);
      eps = Option.value ~default:base.Spec.eps (get_float_opt "eps" json);
      algorithm = Option.value ~default:base.Spec.algorithm algorithm;
      metric = Option.value ~default:base.Spec.metric metric;
      parallel =
        Option.value ~default:base.Spec.parallel (get_bool_opt "parallel" json);
    }

let instance_of_entry ~known_experiments json =
  match json with
  | Obs.Json.Obj _ -> (
      match get_str_opt "file" json with
      | Some path -> Ok (Spec.Hmetis_file path)
      | None -> (
          match get_str_opt "dag" json with
          | Some path -> Ok (Spec.Dag_file path)
          | None -> (
              match get_str_opt "generate" json with
              | Some kind_name -> (
                  match List.assoc_opt kind_name Spec.gen_kinds with
                  | None ->
                      err "unknown generator %S (valid: %s)" kind_name
                        (String.concat ", " (List.map fst Spec.gen_kinds))
                  | Some kind -> (
                      match get_int_opt "n" json with
                      | Some n -> Ok (Spec.Generated { kind; n })
                      | None -> err "generator entry needs an integer \"n\""))
              | None -> (
                  match get_str_opt "experiment" json with
                  | Some id ->
                      if List.mem id known_experiments then
                        Ok (Spec.Experiment id)
                      else
                        err "unknown experiment %S (valid: %s)" id
                          (String.concat " " known_experiments)
                  | None -> (
                      match get_float_opt "spin" json with
                      | Some s -> Ok (Spec.Spin s)
                      | None -> (
                          match get_int_opt "crash" json with
                          | Some c -> Ok (Spec.Crash c)
                          | None ->
                              err
                                "instance entry needs one of \"file\", \
                                 \"dag\", \"generate\", \"experiment\", \
                                 \"spin\", \"crash\""))))))
  | _ -> err "instance entry is not an object"

let of_json ~known_experiments json =
  let* () =
    match get_str_opt "schema" json with
    | Some s when String.equal s schema_version -> Ok ()
    | Some s -> err "unsupported manifest schema %S (expected %S)" s schema_version
    | None -> err "manifest without schema tag (expected %S)" schema_version
  in
  let defaults_json =
    Option.value ~default:(Obs.Json.Obj []) (opt_member "defaults" json)
  in
  let* default_config =
    config_overlay ~base:Spec.default_config defaults_json
  in
  let default_timeout = get_float_opt "timeout_s" defaults_json in
  let default_seed = Option.value ~default:1 (get_int_opt "seed" defaults_json) in
  let* instance_entries =
    match opt_member "instances" json with
    | Some (Obs.Json.Arr (_ :: _ as l)) -> Ok l
    | Some (Obs.Json.Arr []) -> err "manifest has an empty \"instances\" array"
    | _ -> err "manifest needs a non-empty \"instances\" array"
  in
  let* configs =
    match opt_member "configs" json with
    | None -> Ok [ default_config ]
    | Some (Obs.Json.Arr l) ->
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            let* c = config_overlay ~base:default_config entry in
            Ok (c :: acc))
          (Ok []) l
        |> Result.map List.rev
    | Some _ -> err "manifest field \"configs\" is not an array"
  in
  let* seeds =
    match opt_member "seeds" json with
    | None -> Ok [ default_seed ]
    | Some (Obs.Json.Arr l) ->
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            match Obs.Json.get_int entry with
            | Some s -> Ok (s :: acc)
            | None -> err "manifest field \"seeds\" must hold integers")
          (Ok []) l
        |> Result.map List.rev
    | Some _ -> err "manifest field \"seeds\" is not an array"
  in
  let* jobs =
    List.fold_left
      (fun acc entry ->
        let* acc = acc in
        let* instance = instance_of_entry ~known_experiments entry in
        let timeout_s =
          match get_float_opt "timeout_s" entry with
          | Some t -> Some t
          | None -> default_timeout
        in
        let expanded =
          let probe =
            { Spec.instance; config = default_config; seed = 0; timeout_s }
          in
          if Spec.config_sensitive probe then
            List.concat_map
              (fun config ->
                List.map
                  (fun seed -> { Spec.instance; config; seed; timeout_s })
                  seeds)
              configs
          else [ { probe with Spec.config = Spec.default_config } ]
        in
        Ok (List.rev_append expanded acc))
      (Ok []) instance_entries
    |> Result.map List.rev
  in
  let* () =
    List.fold_left
      (fun acc job ->
        let* () = acc in
        match Spec.validate job with
        | Ok () -> Ok ()
        | Error e -> err "invalid job (%s): %s" (Spec.describe job) e)
      (Ok ()) jobs
  in
  Ok jobs

let of_string ~known_experiments s =
  match Obs.Json.parse (String.trim s) with
  | Error e -> err "manifest does not parse: %s" e
  | Ok json -> of_json ~known_experiments json

let load ~known_experiments path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | content -> (
      match of_string ~known_experiments content with
      | Ok jobs -> Ok jobs
      | Error e -> err "%s: %s" path e)
