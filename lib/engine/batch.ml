(* Cache-aware batch orchestration.

   [run] is the engine's front door: fingerprint every job, satisfy what
   it can from the content-addressed cache, push the remainder through
   the fork pool, store the fresh [Done] records back, and fold the
   whole sweep into one report.  Outcomes come back in plan order
   whatever the completion order was, so callers can zip them against
   their manifest. *)

type config = { pool : Pool.config; cache_dir : string option }

let default_cache_dir = ".hypartition-cache"

let default_config =
  { pool = Pool.default_config; cache_dir = Some default_cache_dir }

type event =
  | Cache_hit of { index : int; record : Record.t }
  | Unrunnable of { index : int; record : Record.t }
  | Pool of Pool.event

type outcome = { record : Record.t; cached : bool }

type stats = {
  total : int;
  from_cache : int;
  ok : int;
  failed : int;
  timeouts : int;
  crashes : int;
  skipped : int;
  retries : int;
  cache : Cache.stats option;
}

type report = { outcomes : outcome list; stats : stats; wall_s : float }

let all_ok report = List.for_all (fun o -> Record.ok o.record) report.outcomes

(* A job whose instance cannot even be fingerprinted (unreadable input
   file) fails before any worker forks; it still gets a stable — if
   never cacheable — fingerprint so the record shape is uniform. *)
let unrunnable_record job msg =
  {
    Record.fingerprint =
      Fingerprint.digest ("unfingerprintable:" ^ Spec.describe job);
    job;
    status = Record.Failed msg;
    metrics = [];
    observed = None;
    timing = Record.no_timing;
  }

let collect_stats ~cache outcomes =
  let count pred = List.length (List.filter pred outcomes) in
  let status_is f o =
    match o.record.Record.status with
    | Record.Done -> f = `Ok
    | Record.Failed _ -> f = `Failed
    | Record.Timed_out _ -> f = `Timeout
    | Record.Crashed _ -> f = `Crashed
    | Record.Skipped _ -> f = `Skipped
  in
  {
    total = List.length outcomes;
    from_cache = count (fun o -> o.cached);
    ok = count (status_is `Ok);
    failed = count (status_is `Failed);
    timeouts = count (status_is `Timeout);
    crashes = count (status_is `Crashed);
    skipped = count (status_is `Skipped);
    retries =
      List.fold_left
        (fun acc o ->
          if o.cached then acc
          else acc + max 0 (o.record.Record.timing.Record.attempts - 1))
        0 outcomes;
    cache = Option.map Cache.stats cache;
  }

let run ?(on_event = fun (_ : event) -> ()) config jobs =
  let opened =
    match config.cache_dir with
    | None -> Ok None
    | Some dir -> Result.map Option.some (Cache.open_ dir)
  in
  match opened with
  | Error e -> Error e
  | Ok cache ->
      Obs.Span.with_
        ~attrs:[ ("jobs", Obs.Int (List.length jobs)) ]
        "engine.batch"
      @@ fun () ->
      (* Stamp the trace with where it came from, while the batch span is
         open — cross-machine comparisons need the header, not a guess. *)
      if Obs.enabled () then begin
        let threads =
          match config.pool.Pool.solver_threads with 0 -> None | t -> Some t
        in
        Obs.emit_provenance
          (Provenance.collect ~jobs:config.pool.Pool.jobs ?threads ())
      end;
      let t0 = Support.Util.monotonic_ns () in
      let n = List.length jobs in
      let results : outcome option array = Array.make (max 1 n) None in
      let to_run = ref [] in
      List.iteri
        (fun index job ->
          match Spec.fingerprint ~schema:Record.schema_version job with
          | Error msg ->
              let record = unrunnable_record job msg in
              on_event (Unrunnable { index; record });
              results.(index) <- Some { record; cached = false }
          | Ok fp -> (
              match Option.bind cache (fun c -> Cache.find c fp) with
              | Some record ->
                  on_event (Cache_hit { index; record });
                  results.(index) <- Some { record; cached = true }
              | None -> to_run := (index, fp, job) :: !to_run))
        jobs;
      let to_run = List.rev !to_run in
      let pool_records =
        if to_run = [] then []
        else
          let threads = max 1 config.pool.Pool.solver_threads in
          Pool.run
            ~on_event:(fun e -> on_event (Pool e))
            config.pool
            ~worker:(fun job -> Runner.execute ~threads job)
            to_run
      in
      (* One record per plan, in plan order — the pool guarantees it even
         under SIGINT draining (queued jobs come back Skipped). *)
      List.iter2
        (fun (index, _, _) record ->
          (match cache with
          | Some c when Record.cacheable record -> (
              match Cache.store c record with Ok () -> () | Error _ -> ())
          | _ -> ());
          results.(index) <- Some { record; cached = false })
        to_run pool_records;
      let outcomes =
        List.init n (fun i ->
            match results.(i) with Some o -> o | None -> assert false)
      in
      let wall_s = Support.Util.seconds_of_ns
          (Int64.sub (Support.Util.monotonic_ns ()) t0)
      in
      Ok { outcomes; stats = collect_stats ~cache outcomes; wall_s }

let stats_to_json s =
  let open Obs.Json in
  Obj
    ([
       ("total", Int s.total);
       ("from_cache", Int s.from_cache);
       ("ok", Int s.ok);
       ("failed", Int s.failed);
       ("timeouts", Int s.timeouts);
       ("crashes", Int s.crashes);
       ("skipped", Int s.skipped);
       ("retries", Int s.retries);
     ]
    @ match s.cache with
      | None -> []
      | Some cs -> [ ("cache", Cache.stats_to_json cs) ])

let schema_version = "hypartition-batch/1"

let report_to_json ?(deterministic = false) ~jobs report =
  let open Obs.Json in
  Obj
    ([ ("schema", Str schema_version) ]
    @ (if deterministic then [] else [ ("wall_s", Float report.wall_s) ])
    @ [
        ("jobs", Int jobs);
        ("stats", stats_to_json report.stats);
        ( "results",
          Arr
            (List.map
               (fun o ->
                 match Record.to_json ~deterministic o.record with
                 | Obj fields -> Obj (("cached", Bool o.cached) :: fields)
                 | other -> other)
               report.outcomes) );
      ])
