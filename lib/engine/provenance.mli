(** Run provenance: hostname, OCaml version, word size, git revision and
    (optionally) worker and solver-thread counts — stamped into bench
    reports and trace headers so cross-machine baseline comparisons are
    self-describing. *)

val git_rev : unit -> string
(** Short git revision of the working tree, or ["unknown"] outside a
    repository. *)

val collect : ?jobs:int -> ?threads:int -> unit -> (string * Obs.Json.t) list
(** The provenance fields, ready for {!Obs.emit_provenance} or embedding
    in a JSON report.  [jobs] = fork-pool worker count, [threads] =
    solver domains per worker. *)
