(* Content-addressed on-disk result cache.

   Layout: <dir>/<first 2 hex digits>/<remaining 14>.json, one
   hypartition-result/1 record per file, keyed by the job fingerprint
   (Spec.fingerprint).  Writes go through a temp file in the target
   directory followed by a rename, so a reader (or a sibling worker
   sweeping the same manifest) never observes a half-written record and
   a SIGKILL mid-store leaves at worst a stale .tmp file, never a corrupt
   entry.  Reads are fully validated — schema tag, fingerprint echo,
   record shape — and any defect degrades to a miss, so a corrupted or
   foreign file in the cache directory costs a recomputation, not a
   crash.

   The directory is shared by concurrent, unrelated processes: pool
   workers sweeping one manifest, and since the serve PR the daemon plus
   whatever batch runs point at the same --cache-dir.  The concurrency
   contract, exercised by the cache-race tests in test_engine.ml:

   - Two simultaneous stores of the same fingerprint both succeed; the
     entry afterwards is one of the two records, intact (last rename
     wins — both are valid records for the fingerprint, so which one
     survives is immaterial).
   - A reader racing a writer sees the old record, the new record, or a
     miss (entry not yet published) — never a torn read, because
     rename(2) within a filesystem is atomic and temp names are
     per-process-unique (pid + a per-process counter, so a store that
     raced a crash-retry in the same process cannot collide either). *)

type stats = { hits : int; misses : int; stores : int; corrupt : int }

type t = {
  dir : string;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_stores : int;
  mutable s_corrupt : int;
  mutable s_tmp_seq : int;
      (* per-handle store sequence number, part of the temp-file name *)
}

let c_hit = Obs.Counter.make "engine.cache.hit"
let c_miss = Obs.Counter.make "engine.cache.miss"
let c_store = Obs.Counter.make "engine.cache.store"
let c_corrupt = Obs.Counter.make "engine.cache.corrupt"

let stats t =
  { hits = t.s_hits; misses = t.s_misses; stores = t.s_stores; corrupt = t.s_corrupt }

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir ->
      (* A sibling worker created it first; that is fine. *)
      ()
  end

let open_ dir =
  match mkdir_p dir with
  | () ->
      if Sys.is_directory dir then
        Ok
          {
            dir;
            s_hits = 0;
            s_misses = 0;
            s_stores = 0;
            s_corrupt = 0;
            s_tmp_seq = 0;
          }
      else Error (Printf.sprintf "Cache.open_: %s is not a directory" dir)
  | exception Sys_error msg -> Error (Printf.sprintf "Cache.open_: %s" msg)

let path_of t fingerprint =
  if not (Fingerprint.is_digest fingerprint) then
    invalid_arg "Cache.path_of: malformed fingerprint";
  Filename.concat
    (Filename.concat t.dir (String.sub fingerprint 0 2))
    (String.sub fingerprint 2 14 ^ ".json")

let miss t =
  t.s_misses <- t.s_misses + 1;
  Obs.Counter.incr c_miss;
  None

let find t fingerprint =
  let path = path_of t fingerprint in
  if not (Sys.file_exists path) then miss t
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> miss t
    | content -> (
        let parsed =
          match Obs.Json.parse (String.trim content) with
          | Error e -> Error e
          | Ok json -> Record.of_json json
        in
        match parsed with
        | Ok record
          when String.equal record.Record.fingerprint fingerprint
               && Record.cacheable record ->
            t.s_hits <- t.s_hits + 1;
            Obs.Counter.incr c_hit;
            Some record
        | Ok _ | Error _ ->
            (* Wrong fingerprint echo, non-cacheable status or parse
               defect: treat as corruption and recompute. *)
            t.s_corrupt <- t.s_corrupt + 1;
            Obs.Counter.incr c_corrupt;
            miss t)

let store t record =
  if not (Record.cacheable record) then
    Error "Cache.store: only Done records are cacheable"
  else begin
    let path = path_of t record.Record.fingerprint in
    let dir = Filename.dirname path in
    match mkdir_p dir with
    | exception Sys_error msg -> Error (Printf.sprintf "Cache.store: %s" msg)
    | () -> (
        let tmp =
          t.s_tmp_seq <- t.s_tmp_seq + 1;
          Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) t.s_tmp_seq
        in
        let write () =
          Out_channel.with_open_bin tmp (fun oc ->
              output_string oc (Obs.Json.to_string (Record.to_json record));
              output_char oc '\n');
          try Sys.rename tmp path
          with Sys_error _ ->
            (* A racer may have swept the shard directory away between
               our mkdir_p and the rename; recreate it and publish
               again.  A second failure is a real error. *)
            mkdir_p dir;
            Sys.rename tmp path
        in
        match write () with
        | () ->
            t.s_stores <- t.s_stores + 1;
            Obs.Counter.incr c_store;
            Ok ()
        | exception Sys_error msg ->
            (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
            Error (Printf.sprintf "Cache.store: %s" msg))
  end

let stats_to_json s =
  let open Obs.Json in
  Obj
    [
      ("hits", Int s.hits);
      ("misses", Int s.misses);
      ("stores", Int s.stores);
      ("corrupt", Int s.corrupt);
    ]
