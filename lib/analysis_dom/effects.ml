(* Interprocedural effect analysis over the lowered units: per-function
   effect signatures (reads/writes of unsafe module globals from the
   inventory, parameter-local mutation, calls into unanalyzed
   externals), propagated to a fixpoint over the call graph, then
   classified.  The result is the parallel-safety certificate committed
   as [analysis/effects.json] and the witness chains `analyze --effects`
   prints — the literal worklist for the multicore PR (ROADMAP item 1).

   Everything is name-keyed the way {!Callgraph} already resolves
   references, so the analysis inherits its deliberate
   over-approximation: a name that could denote a mutating function is
   treated as if it did.  Determinism is load-bearing — every set is
   sorted, chains break ties by (depth, key) — because the certificate
   must be byte-identical across runs for the CI freshness gate. *)

module I = Ir
module J = Obs.Json

let schema_version = "hypartition-effects/1"

type classification =
  | Pure
  | Workspace_local
  | Shared_read
  | Shared_mutating
  | Unknown

let classification_to_string = function
  | Pure -> "pure"
  | Workspace_local -> "workspace_local"
  | Shared_read -> "shared_read"
  | Shared_mutating -> "shared_mutating"
  | Unknown -> "unknown"

let classification_of_string = function
  | "pure" -> Some Pure
  | "workspace_local" -> Some Workspace_local
  | "shared_read" -> Some Shared_read
  | "shared_mutating" -> Some Shared_mutating
  | "unknown" -> Some Unknown
  | _ -> None

type signature_ = {
  s_reads : string list;  (* unsafe module globals read, qualified *)
  s_writes : string list;  (* unsafe module globals written *)
  s_externals : string list;  (* unresolved non-benign callees *)
  s_local_mut : bool;  (* parameter/local mutation somewhere below *)
}

type info = {
  e_key : string;  (* "Module.func" *)
  e_module : string;
  e_file : string;
  e_line : int;
  e_front : I.front;
  e_sig : signature_;  (* after fixpoint *)
  e_direct_writes : string list;  (* this body's own writes — the leaf facts *)
  e_class : classification;
  e_blame : (string * string list) list;
      (* written global -> minimal call chain from this function down to
         a direct writer of it (inclusive) *)
}

type t = {
  infos : info list;  (* reachable functions, sorted by key *)
  by_key : (string, info) Hashtbl.t;
  entry_points : string list;  (* entry function keys, sorted *)
}

(* ---- the external-call allowlist ---------------------------------------- *)

(* A reference that resolves to no analyzed function and no inventoried
   global is an external.  Externals from these stdlib modules are
   benign — pure, or mutating only values handed to them (the
   Workspace-discipline shape); anything else (Unix, Sys, Gc, Printf's
   channel printers, Domain, ...) widens the caller to [unknown], which
   is DOM09's business on the hot path.  [Fmt] is combinators over a
   caller-supplied formatter; [In_channel] operates on the channel it is
   handed (or opens itself), each carrying a per-channel runtime lock.
   [Condition] is benign by the same argument as [Mutex]: it blocks and
   signals on exactly the condition/mutex values handed to it, mutating
   nothing else — the Workspace-discipline shape.  [Domain] is NOT
   benign: spawn runs an arbitrary closure on another domain, which is
   precisely the effect this analysis cannot see past (the designated
   concurrency module carries a DOM09 allowlist entry instead). *)
let benign_modules =
  [
    "Array"; "ArrayLabels"; "Atomic"; "Bool"; "Buffer"; "Bytes";
    "BytesLabels"; "Char"; "Complex"; "Condition"; "Digest"; "Either";
    "Filename"; "Float"; "Fmt"; "Fun"; "Hashtbl"; "In_channel"; "Int";
    "Int32"; "Int64"; "Lazy"; "List"; "ListLabels"; "Map"; "Mutex";
    "Nativeint"; "Option"; "Queue"; "Result"; "Seq"; "Set"; "Sort";
    "Stack"; "String"; "StringLabels"; "Uchar";
  ]

(* Exact dotted names that are benign although their module is not:
   string formatting without a channel, backtrace rendering, clock and
   GC-statistics reads, and the explicit-state PRNG API (the implicit
   one is DOM03's business). *)
let benign_exact =
  [
    "Printf.sprintf"; "Printf.ksprintf"; "Format.sprintf";
    "Format.asprintf"; "Format.kasprintf"; "Printexc.to_string";
    "Random.State.bits"; "Random.State.bool"; "Random.State.char";
    "Random.State.copy"; "Random.State.float"; "Random.State.full_int";
    "Random.State.int"; "Random.State.int32"; "Random.State.int64";
    "Random.State.make"; "Random.State.nativeint";
    "Sys.time"; "Gc.counters"; "Monotonic_clock.now";
  ]

(* Bare (undotted) externals are stdlib pervasives — arithmetic,
   comparisons, [ref]/[!]/[ignore], exception raising.  All benign
   except the channel/process primitives, which touch shared state the
   runtime owns. *)
let bare_nonbenign =
  [
    "at_exit"; "close_in"; "close_in_noerr"; "close_out";
    "close_out_noerr"; "exit"; "flush"; "flush_all"; "input_byte";
    "input_char"; "input_line"; "input_value"; "open_in"; "open_in_bin";
    "open_out"; "open_out_bin"; "output_byte"; "output_bytes";
    "output_char"; "output_string"; "output_value"; "prerr_bytes";
    "prerr_char"; "prerr_endline"; "prerr_float"; "prerr_int";
    "prerr_newline"; "prerr_string"; "print_bytes"; "print_char";
    "print_endline"; "print_float"; "print_int"; "print_newline";
    "print_string"; "read_float"; "read_int"; "read_line"; "stderr";
    "stdin"; "stdout";
  ]

(* A dotted module prefix, as opposed to the '.' inside operator names
   like [+.] — a capitalized identifier before the first dot. *)
let module_prefix name =
  match String.index_opt name '.' with
  | None -> None
  | Some i ->
      let head = String.sub name 0 i in
      if
        head <> ""
        && head.[0] >= 'A'
        && head.[0] <= 'Z'
        && String.for_all
             (fun c ->
               (c >= 'A' && c <= 'Z')
               || (c >= 'a' && c <= 'z')
               || (c >= '0' && c <= '9')
               || c = '_' || c = '\'')
             head
      then Some head
      else None

let benign_external name =
  List.mem name benign_exact
  ||
  match module_prefix name with
  | None -> not (List.mem name bare_nonbenign)
  | Some head -> List.mem head benign_modules

(* ---- base facts ---------------------------------------------------------- *)

let union_sorted a b = List.sort_uniq String.compare (List.rev_append a b)

let compare_pair (a1, a2) (b1, b2) =
  let c = String.compare a1 b1 in
  if c <> 0 then c else String.compare a2 b2

(* Unsafe inventory globals, by qualified key.  [Obs_handle] values are
   excluded on purpose: handles are mutated parameter-locally inside Obs
   and counting them as shared state would classify every instrumented
   solver function shared-mutating; the obs *registries* (plain
   refs/containers in lib/obs) stay in and surface at their leaf
   writers. *)
let unsafe_global_keys units =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter
        (fun (g : I.global) ->
          if (not g.I.g_safe) && g.I.g_kind <> I.Obs_handle then
            Hashtbl.replace tbl (g.I.g_module ^ "." ^ g.I.g_name) ())
        u.I.u_globals)
    units;
  tbl

(* Every inventoried global (safe or not): a reference resolving here is
   state access, not an external call. *)
let all_global_keys units =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter
        (fun (g : I.global) ->
          Hashtbl.replace tbl (g.I.g_module ^ "." ^ g.I.g_name) ())
        u.I.u_globals)
    units;
  tbl

(* Resolve one function's references against the function table and the
   globals inventory: (resolved callee keys, unsafe globals read, unsafe
   globals written, non-benign externals).  A reference into an analyzed
   unit that resolves to neither a function nor an inventoried global is
   a plain immutable-value read — were it mutable, the inventory would
   hold it — so only references leaving the analyzed set can widen a
   signature to unknown. *)
let base_facts ~cg ~unsafe ~known (f : I.func) =
  let candidates r = Callgraph.candidates cg ~caller_module:f.I.f_module r in
  (* Judged on the name as written (no caller qualification), else every
     reference would gain a [Caller.]-prefixed candidate and look
     internal. *)
  let internal r =
    List.exists
      (fun c ->
        match module_prefix c with
        | Some head -> Callgraph.is_unit_module cg head
        | None -> false)
      (Callgraph.expand_name cg r)
  in
  let callees = ref [] and reads = ref [] and externals = ref [] in
  List.iter
    (fun r ->
      let cands = candidates r in
      let resolved = List.filter (fun c -> Callgraph.find_func cg c <> None) cands in
      if resolved <> [] then callees := List.rev_append resolved !callees;
      let globals = List.filter (Hashtbl.mem unsafe) cands in
      if globals <> [] then reads := List.rev_append globals !reads;
      if
        resolved = [] && globals = []
        && not (List.exists (Hashtbl.mem known) cands)
        && not (internal r)
        && not (benign_external r)
      then externals := r :: !externals)
    f.I.f_refs;
  let writes =
    List.concat_map (fun w -> List.filter (Hashtbl.mem unsafe) (candidates w))
      f.I.f_writes
  in
  ( List.sort_uniq String.compare !callees,
    List.sort_uniq String.compare !reads,
    List.sort_uniq String.compare writes,
    List.sort_uniq String.compare !externals )

let classify (s : signature_) =
  if s.s_writes <> [] then Shared_mutating
  else if s.s_reads <> [] then Shared_read
  else if s.s_externals <> [] then Unknown
  else if s.s_local_mut then Workspace_local
  else Pure

(* ---- blame chains -------------------------------------------------------- *)

(* For each written global: a shortest-path tree from the direct writers
   up the reverse call graph, so every function whose fixpoint writes
   contain the global knows its next hop toward a leaf writer.
   Deterministic: relaxation processes keys in sorted order and ties
   keep the smaller next-hop key. *)
let blame_chains ~keys ~callees ~direct_writes =
  let rev = Hashtbl.create 256 in
  List.iter
    (fun key ->
      List.iter
        (fun callee ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt rev callee) in
          Hashtbl.replace rev callee (key :: prev))
        (callees key))
    keys;
  let chains : (string * string, int * string option) Hashtbl.t =
    Hashtbl.create 256
  in
  (* (function, global) -> (depth to a direct writer, next hop) *)
  let better (d, n) (d', n') = d' < d || (d' = d && n' < n) in
  List.iter
    (fun key ->
      List.iter
        (fun g -> Hashtbl.replace chains (key, g) (0, None))
        (direct_writes key))
    keys;
  let frontier = ref (List.concat_map (fun k ->
      List.map (fun g -> (k, g)) (direct_writes k)) keys)
  in
  while !frontier <> [] do
    let next = ref [] in
    List.iter
      (fun (key, g) ->
        match Hashtbl.find_opt chains (key, g) with
        | None -> ()
        | Some (d, _) ->
            List.iter
              (fun caller ->
                let cand = (d + 1, Some key) in
                let improve =
                  match Hashtbl.find_opt chains (caller, g) with
                  | None -> true
                  | Some (d0, Some n0) -> better (d0, n0) (d + 1, key)
                  | Some (_, None) -> false  (* caller writes g itself *)
                in
                if improve then begin
                  Hashtbl.replace chains (caller, g) cand;
                  next := (caller, g) :: !next
                end)
              (List.sort String.compare
                 (Option.value ~default:[] (Hashtbl.find_opt rev key))))
      (List.sort compare_pair !frontier);
    frontier := List.sort_uniq compare_pair !next
  done;
  fun key g ->
    let rec follow key acc =
      match Hashtbl.find_opt chains (key, g) with
      | None -> List.rev acc  (* shouldn't happen for fixpoint writes *)
      | Some (_, None) -> List.rev (key :: acc)
      | Some (_, Some next) -> follow next (key :: acc)
    in
    follow key []

(* ---- the fixpoint -------------------------------------------------------- *)

let compute ~cg (units : I.unit_ir list) : t =
  let units = List.sort I.compare_units units in
  let unsafe = unsafe_global_keys units in
  let known = all_global_keys units in
  (* Collect every function with its unit context, in deterministic
     order; first definition of a key wins, same as the call graph. *)
  let order = ref [] in
  let ctx : (string, I.func * string * I.front) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun u ->
      List.iter
        (fun (f : I.func) ->
          let key = f.I.f_module ^ "." ^ f.I.f_name in
          if not (Hashtbl.mem ctx key) then begin
            Hashtbl.replace ctx key (f, u.I.u_file, u.I.u_front);
            order := key :: !order
          end)
        u.I.u_funcs)
    units;
  let keys = List.rev !order in
  let base : (string, string list * string list * string list * string list)
      Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun key ->
      let f, _, _ = Hashtbl.find ctx key in
      Hashtbl.replace base key (base_facts ~cg ~unsafe ~known f))
    keys;
  let callees key =
    match Hashtbl.find_opt base key with
    | Some (c, _, _, _) -> c
    | None -> []
  in
  (* Fixpoint: union reads/writes/externals and OR local_mut over
     callees until nothing changes.  Monotone over finite sorted sets,
     so termination is by size. *)
  let sigs : (string, signature_) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun key ->
      let f, _, _ = Hashtbl.find ctx key in
      let _, reads, writes, externals = Hashtbl.find base key in
      Hashtbl.replace sigs key
        {
          s_reads = reads;
          s_writes = writes;
          s_externals = externals;
          s_local_mut = f.I.f_local_mut;
        })
    keys;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun key ->
        let s = Hashtbl.find sigs key in
        let s' =
          List.fold_left
            (fun acc callee ->
              if callee = key then acc
              else
                let cs = Hashtbl.find sigs callee in
                {
                  s_reads = union_sorted acc.s_reads cs.s_reads;
                  s_writes = union_sorted acc.s_writes cs.s_writes;
                  s_externals = union_sorted acc.s_externals cs.s_externals;
                  s_local_mut = acc.s_local_mut || cs.s_local_mut;
                })
            s (callees key)
        in
        if s' <> s then begin
          Hashtbl.replace sigs key s';
          changed := true
        end)
      keys
  done;
  let direct_writes key =
    match Hashtbl.find_opt base key with
    | Some (_, _, w, _) -> w
    | None -> []
  in
  let chain = blame_chains ~keys ~callees ~direct_writes in
  (* reads minus writes for presentation: a written global is not
     re-listed as a read *)
  let reachable = List.filter (Callgraph.is_reachable_key cg) keys in
  let infos =
    List.map
      (fun key ->
        let f, file, front = Hashtbl.find ctx key in
        let s = Hashtbl.find sigs key in
        let s =
          { s with s_reads = List.filter (fun r -> not (List.mem r s.s_writes)) s.s_reads }
        in
        {
          e_key = key;
          e_module = f.I.f_module;
          e_file = file;
          e_line = f.I.f_line;
          e_front = front;
          e_sig = s;
          e_direct_writes = direct_writes key;
          e_class = classify s;
          e_blame = List.map (fun g -> (g, chain key g)) s.s_writes;
        })
      (List.sort String.compare reachable)
  in
  let by_key = Hashtbl.create 256 in
  List.iter (fun i -> Hashtbl.replace by_key i.e_key i) infos;
  { infos; by_key; entry_points = Callgraph.entry_keys cg }

let infos t = t.infos
let entry_points t = t.entry_points
let find t key = Hashtbl.find_opt t.by_key key

let count t cls =
  List.length (List.filter (fun i -> i.e_class = cls) t.infos)

(* ---- certificate JSON ---------------------------------------------------- *)

let str_arr xs = J.Arr (List.map (fun s -> J.Str s) xs)

let info_to_json (i : info) =
  J.Obj
    [
      ("function", J.Str i.e_key);
      ("file", J.Str i.e_file);
      ("line", J.Int i.e_line);
      ("front", J.Str (I.front_to_string i.e_front));
      ("classification", J.Str (classification_to_string i.e_class));
      ("reads", str_arr i.e_sig.s_reads);
      ("writes", str_arr i.e_sig.s_writes);
      ("externals", str_arr i.e_sig.s_externals);
      ("local_mutation", J.Bool i.e_sig.s_local_mut);
      ( "blame",
        J.Arr
          (List.map
             (fun (g, chain) ->
               J.Obj [ ("global", J.Str g); ("chain", str_arr chain) ])
             i.e_blame) );
    ]

let to_json t =
  let all = [ Pure; Workspace_local; Shared_read; Shared_mutating; Unknown ] in
  J.Obj
    [
      ("schema", J.Str schema_version);
      ("entry_points", str_arr t.entry_points);
      ("functions", J.Arr (List.map info_to_json t.infos));
      ( "summary",
        J.Obj
          (("total", J.Int (List.length t.infos))
          :: List.map
               (fun c -> (classification_to_string c, J.Int (count t c)))
               all) );
    ]

(* ---- stale-certificate comparison (DOM11) -------------------------------- *)

(* The committed certificate's (function -> classification) map; [None]
   when the document does not look like a certificate at all. *)
let certificate_classes doc =
  match J.member "functions" doc with
  | Some (J.Arr fns) ->
      Some
        (List.filter_map
           (fun f ->
             match
               ( Option.bind (J.member "function" f) J.get_str,
                 Option.bind (J.member "classification" f) J.get_str )
             with
             | Some key, Some cls -> Some (key, cls)
             | _ -> None)
           fns)
  | _ -> None

(* One finding per stale entry: functions that changed classification,
   left the reachable set, or entered it since the certificate was
   written.  A parse failure or schema mismatch is a single finding. *)
let stale_findings ~certificate_path ~certificate t =
  let finding message =
    {
      Lint.Rules.rule = "DOM11";
      severity = Analysis_core.Check.Error;
      file = certificate_path;
      line = 1;
      col = 0;
      message;
    }
  in
  match J.parse certificate with
  | Error e -> [ finding ("committed certificate does not parse: " ^ e) ]
  | Ok doc -> (
      let schema = Option.bind (J.member "schema" doc) J.get_str in
      if schema <> Some schema_version then
        [
          finding
            (Printf.sprintf "certificate schema is %s, expected %s"
               (Option.value ~default:"absent" schema)
               schema_version);
        ]
      else
        match certificate_classes doc with
        | None -> [ finding "certificate has no functions array" ]
        | Some committed ->
            let stale = ref [] in
            List.iter
              (fun (key, cls) ->
                match find t key with
                | None ->
                    stale :=
                      finding
                        (Printf.sprintf
                           "stale entry: %s (%s) is no longer reachable from \
                            the solver entry points; regenerate with analyze \
                            --effects-out"
                           key cls)
                      :: !stale
                | Some i ->
                    let now = classification_to_string i.e_class in
                    if now <> cls then
                      stale :=
                        finding
                          (Printf.sprintf
                             "stale entry: %s is certified %s but analyzes as \
                              %s; regenerate with analyze --effects-out"
                             key cls now)
                        :: !stale)
              committed;
            List.iter
              (fun i ->
                if not (List.mem_assoc i.e_key committed) then
                  stale :=
                    finding
                      (Printf.sprintf
                         "missing entry: reachable function %s (%s) is not in \
                          the certificate; regenerate with analyze \
                          --effects-out"
                         i.e_key
                         (classification_to_string i.e_class))
                    :: !stale)
              t.infos;
            List.rev !stale)

(* ---- witness rendering (`analyze --effects`) ----------------------------- *)

(* Per entry point: classification, effect summary, and the minimal call
   chain to every shared-mutating leaf its fixpoint writes reach. *)
let render_witnesses t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if t.entry_points = [] then add "no solver entry points found\n"
  else
    List.iter
      (fun key ->
        match find t key with
        | None -> ()
        | Some i ->
            add "%s [%s]\n" key (classification_to_string i.e_class);
            if i.e_sig.s_reads <> [] then
              add "  reads: %s\n" (String.concat ", " i.e_sig.s_reads);
            if i.e_sig.s_externals <> [] then
              add "  externals: %s\n"
                (String.concat ", " i.e_sig.s_externals);
            List.iter
              (fun (g, chain) ->
                add "  writes %s via %s\n" g (String.concat " -> " chain))
              i.e_blame;
            if i.e_blame = [] && i.e_sig.s_reads = []
               && i.e_sig.s_externals = []
            then add "  no shared state reached\n")
      t.entry_points;
  Buffer.contents buf
