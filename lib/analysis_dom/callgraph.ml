(* Reachability over the lowered units: a breadth-first walk of the
   function-reference graph from the solver entry points, then the set
   of module globals referenced by any reachable function.

   Resolution is name-based on purpose.  The typed front emits
   compiler-resolved references normalized to ["Module.func"], so the
   only ambiguity left is within-unit bare calls, which it already
   qualifies; the Parsetree front emits best-effort names and the same
   candidate scheme keeps it usable.  Over-approximation (a cold helper
   sharing a dotted name with a hot one) errs toward flagging, which is
   the right direction for a safety gate. *)

module I = Ir

type t = {
  reachable : (string, unit) Hashtbl.t;  (* "Module.func" *)
  hot_globals : (string, unit) Hashtbl.t;  (* "Module.binding" *)
}

(* Solver entry points, as (module, function) pairs; ["*"] means every
   toplevel function of the module.  The defaults mirror the hot path
   named by the domain-safety contract: the multilevel driver, both
   refinement passes, coarsening, and the batch-engine runner. *)
let default_entries =
  [
    ("Multilevel", "*");
    ("Refine", "*");
    ("Coarsen", "*");
    ("Kl_swap", "*");
    ("Runner", "*");
  ]

let func_key f = f.I.f_module ^ "." ^ f.I.f_name

let compute ?(entries = default_entries) (units : I.unit_ir list) : t =
  let funcs : (string, I.func) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun u ->
      List.iter (fun f -> Hashtbl.replace funcs (func_key f) f) u.I.u_funcs)
    units;
  let reachable = Hashtbl.create 256 in
  let queue = Queue.create () in
  let enqueue key =
    if Hashtbl.mem funcs key && not (Hashtbl.mem reachable key) then begin
      Hashtbl.replace reachable key ();
      Queue.add key queue
    end
  in
  List.iter
    (fun (m, fn) ->
      if fn = "*" then
        List.iter
          (fun u ->
            if u.I.u_module = m then
              List.iter (fun f -> enqueue (func_key f)) u.I.u_funcs)
          units
      else enqueue (m ^ "." ^ fn))
    entries;
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    match Hashtbl.find_opt funcs key with
    | None -> ()
    | Some f ->
        List.iter
          (fun r ->
            (* a reference is either already qualified or bare within
               the calling module *)
            enqueue r;
            enqueue (f.I.f_module ^ "." ^ r))
          f.I.f_refs
  done;
  (* A global is hot when any reachable function references it. *)
  let hot_globals = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter
        (fun f ->
          if Hashtbl.mem reachable (func_key f) then
            List.iter
              (fun r -> Hashtbl.replace hot_globals r ())
              f.I.f_refs)
        u.I.u_funcs)
    units;
  { reachable; hot_globals }

let is_reachable t ~module_ ~func = Hashtbl.mem t.reachable (module_ ^ "." ^ func)

let global_is_hot t (g : I.global) =
  Hashtbl.mem t.hot_globals (g.I.g_module ^ "." ^ g.I.g_name)

let n_reachable t = Hashtbl.length t.reachable
