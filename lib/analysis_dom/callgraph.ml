(* Reachability over the lowered units: a breadth-first walk of the
   function-reference graph from the solver entry points, then the set
   of module globals referenced by any reachable function.

   Resolution is name-based on purpose.  The typed front emits
   compiler-resolved references normalized to ["Module.func"], so the
   only ambiguity left is within-unit bare calls, which it already
   qualifies; the Parsetree front emits best-effort names and the same
   candidate scheme keeps it usable.  Over-approximation (a cold helper
   sharing a dotted name with a hot one) errs toward flagging, which is
   the right direction for a safety gate. *)

module I = Ir

type t = {
  reachable : (string, unit) Hashtbl.t;  (* "Module.func" *)
  hot_globals : (string, unit) Hashtbl.t;  (* "Module.binding" *)
  funcs : (string, I.func) Hashtbl.t;  (* every lowered function by key *)
  entry_keys : string list;  (* resolved entry functions, sorted *)
  modules : (string, unit) Hashtbl.t;  (* analyzed unit module names *)
  aliases : (string, string list) Hashtbl.t;
      (* re-export owner path -> included/aliased target paths *)
}

(* All the names a reference may denote, expanded through the units'
   re-export aliases: the name as written, qualified within the calling
   module, rewritten through [include]/[module X = Y] re-exports
   (Hypergraph.fold_pins -> Hg.fold_pins, Partition.Io.save ->
   Part_io.save), and with an unanalyzed library-wrapper head dropped
   when the next component names an analyzed unit (Support.Rng.create ->
   Rng.create).  Bounded depth caps alias cycles. *)
let expand_into t ~out ~seen names =
  let rec expand depth c =
    if depth <= 4 && not (Hashtbl.mem seen c) then begin
      Hashtbl.replace seen c ();
      out := c :: !out;
      let comps = String.split_on_char '.' c in
      let n = List.length comps in
      let rec take k = function
        | x :: rest when k > 0 -> x :: take (k - 1) rest
        | _ -> []
      in
      let rec drop k l =
        if k = 0 then l else match l with [] -> [] | _ :: rest -> drop (k - 1) rest
      in
      for k = 1 to min 2 (n - 1) do
        let owner = String.concat "." (take k comps) in
        let rest = String.concat "." (drop k comps) in
        List.iter
          (fun target -> expand (depth + 1) (target ^ "." ^ rest))
          (Option.value ~default:[] (Hashtbl.find_opt t.aliases owner))
      done;
      match comps with
      | head :: (m :: _ as rest)
        when n >= 3
             && (not (Hashtbl.mem t.modules head))
             && Hashtbl.mem t.modules m ->
          expand (depth + 1) (String.concat "." rest)
      | _ -> ()
    end
  in
  List.iter (expand 0) names

let candidates t ~caller_module r =
  let out = ref [] in
  let seen = Hashtbl.create 8 in
  expand_into t ~out ~seen [ r; caller_module ^ "." ^ r ];
  List.rev !out

(* The expansion of the name as written only — no caller qualification.
   Used to judge whether an unresolved reference still lands inside an
   analyzed unit (a plain value read) versus escaping to an external
   library: qualifying by the caller first would make every reference
   look internal. *)
let expand_name t r =
  let out = ref [] in
  let seen = Hashtbl.create 8 in
  expand_into t ~out ~seen [ r ];
  List.rev !out

(* Solver entry points, as (module, function) pairs; ["*"] means every
   toplevel function of the module.  The defaults mirror the hot path
   named by the domain-safety contract: the multilevel driver, both
   refinement passes, coarsening, and the batch-engine runner. *)
let default_entries =
  [
    ("Multilevel", "*");
    ("Refine", "*");
    ("Coarsen", "*");
    ("Kl_swap", "*");
    ("Runner", "*");
  ]

let func_key f = f.I.f_module ^ "." ^ f.I.f_name

let compute ?(entries = default_entries) (units : I.unit_ir list) : t =
  let funcs : (string, I.func) Hashtbl.t = Hashtbl.create 256 in
  let modules = Hashtbl.create 64 in
  let aliases = Hashtbl.create 64 in
  List.iter
    (fun u ->
      List.iter (fun f -> Hashtbl.replace funcs (func_key f) f) u.I.u_funcs;
      Hashtbl.replace modules u.I.u_module ();
      List.iter
        (fun (owner, target) ->
          let key =
            if owner = "" then u.I.u_module else u.I.u_module ^ "." ^ owner
          in
          let prev = Option.value ~default:[] (Hashtbl.find_opt aliases key) in
          if not (List.mem target prev) then
            Hashtbl.replace aliases key (target :: prev))
        u.I.u_aliases)
    units;
  (* Buckets were built reversed; restore declaration order once. *)
  Hashtbl.filter_map_inplace (fun _ ts -> Some (List.rev ts)) aliases;
  let t =
    {
      reachable = Hashtbl.create 256;
      hot_globals = Hashtbl.create 64;
      funcs;
      entry_keys = [];
      modules;
      aliases;
    }
  in
  let queue = Queue.create () in
  let enqueue key =
    if Hashtbl.mem funcs key && not (Hashtbl.mem t.reachable key) then begin
      Hashtbl.replace t.reachable key ();
      Queue.add key queue
    end
  in
  let entry_keys = ref [] in
  let enqueue_entry key =
    if Hashtbl.mem funcs key then entry_keys := key :: !entry_keys;
    enqueue key
  in
  List.iter
    (fun (m, fn) ->
      if fn = "*" then
        List.iter
          (fun u ->
            if u.I.u_module = m then
              List.iter (fun f -> enqueue_entry (func_key f)) u.I.u_funcs)
          units
      else enqueue_entry (m ^ "." ^ fn))
    entries;
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    match Hashtbl.find_opt funcs key with
    | None -> ()
    | Some f ->
        List.iter
          (fun r ->
            List.iter enqueue (candidates t ~caller_module:f.I.f_module r))
          f.I.f_refs
  done;
  (* A global is hot when any reachable function references it, under
     any of the names the reference may denote. *)
  List.iter
    (fun u ->
      List.iter
        (fun f ->
          if Hashtbl.mem t.reachable (func_key f) then
            List.iter
              (fun r ->
                List.iter
                  (fun c -> Hashtbl.replace t.hot_globals c ())
                  (candidates t ~caller_module:f.I.f_module r))
              f.I.f_refs)
        u.I.u_funcs)
    units;
  { t with entry_keys = List.sort_uniq String.compare !entry_keys }

let is_reachable t ~module_ ~func = Hashtbl.mem t.reachable (module_ ^ "." ^ func)
let is_reachable_key t key = Hashtbl.mem t.reachable key

let global_is_hot t (g : I.global) =
  Hashtbl.mem t.hot_globals (g.I.g_module ^ "." ^ g.I.g_name)

let n_reachable t = Hashtbl.length t.reachable
let entry_keys t = t.entry_keys
let find_func t key = Hashtbl.find_opt t.funcs key

(* The func keys a reference may resolve to, from the same candidate
   expansion the reachability walk uses. *)
let resolve_ref t ~caller_module r =
  List.sort_uniq String.compare
    (List.filter (Hashtbl.mem t.funcs) (candidates t ~caller_module r))

let is_unit_module t name = Hashtbl.mem t.modules name
