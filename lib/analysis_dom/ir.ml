(* The front-end-neutral intermediate representation of the domain-safety
   analyzer.  Both fronts — the typed one reading [.cmt] files and the
   Parsetree fallback — lower a compilation unit to a [unit_ir]: its
   module-level mutable bindings, its toplevel functions with the global
   identifiers each references, and the Workspace/Rng escape sites.  The
   DOM rules and the call-graph reachability pass operate on this IR
   only, so every rule is provable from either front. *)

(* Which front produced a unit: [Typed] units carry compiler-resolved
   paths and types; [Parsetree_only] units are a syntactic approximation
   used when no (readable) [.cmt] exists for the source. *)
type front = Typed | Parsetree_only

(* Why a module-level binding is (or is not) shared mutable state.  The
   [Atomic] and [Mutex] kinds are mutable but domain-safe by
   construction; [Obs_handle] is a pre-interned metrics handle whose
   mutation is confined to the obs runtime (its emission discipline is
   DOM04's, not DOM01's). *)
type kind =
  | Ref
  | Array
  | Bytes
  | Hashtbl_poly
  | Lazy
  | Container  (* Queue/Stack/Buffer, or an immutable shell over mutables *)
  | Mutable_record
  | Atomic
  | Mutex
  | Workspace
  | Rng
  | Obs_handle

type global = {
  g_module : string;  (* normalized unit name, e.g. "Refine" *)
  g_name : string;  (* binding path within the unit, e.g. "Counter.next" *)
  g_file : string;  (* root-relative source path *)
  g_line : int;
  g_col : int;
  g_type : string;  (* printed type (typed front) or a syntactic hint *)
  g_kind : kind;
  g_safe : bool;  (* Atomic/Mutex: racing writers cannot corrupt it *)
}

(* A per-event obs emission ([Obs.Counter.incr] & friends) lexically
   inside a loop of function [oe_fun] — DOM04 material when the function
   is hot-path-reachable. *)
type obs_emit = { oe_fun : string; oe_name : string; oe_line : int; oe_col : int }

(* A use of the stdlib's global PRNG ([Random.int], [Random.self_init],
   ...) — shared state that breaks solve determinism (DOM03). *)
type random_use = { ru_fun : string; ru_name : string; ru_line : int; ru_col : int }

(* A Workspace/Rng value stored into module state: the target of a [:=],
   a [<-] field write, or a [Hashtbl.add]-style call whose subject is a
   module-level binding, with an ownership-scoped value somewhere in the
   stored expression. *)
type escape = {
  esc_fun : string;
  esc_what : string;  (* "Workspace.t" or "Rng.t" *)
  esc_line : int;
  esc_col : int;
  esc_desc : string;
}

type func = {
  f_module : string;
  f_name : string;  (* path within the unit, e.g. "Counter.add" *)
  f_line : int;
  f_refs : string list;  (* normalized global identifiers, sorted, deduped *)
  f_ret_mentions : string list;  (* "Workspace.t"/"Rng.t" in the result type *)
}

type unit_ir = {
  u_module : string;  (* normalized: "Refine", not "Solvers__Refine" *)
  u_file : string;  (* root-relative source path *)
  u_front : front;
  u_has_mli : bool;
  u_globals : global list;
  u_funcs : func list;
  u_escapes : escape list;
  u_obs_emits : obs_emit list;
  u_random_uses : random_use list;
}

(* ---- name normalization ------------------------------------------------- *)

(* Compiler paths arrive mangled by dune's module-name prefixing:
   ["Solvers__Refine.best_move"], ["Solvers__.Pin_counts.t"],
   ["Stdlib.ref"].  Normalization makes them comparable across units and
   fronts: drop alias-root components (trailing "__"), unprefix
   "Lib__Module" to "Module", and strip a leading "Stdlib". *)

let split_on_string ~sep s =
  let seplen = String.length sep and n = String.length s in
  let rec go start i acc =
    if i + seplen > n then List.rev (String.sub s start (n - start) :: acc)
    else if String.sub s i seplen = sep then
      go (i + seplen) (i + seplen) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if seplen = 0 then [ s ] else go 0 0 []

let normalize_component comp =
  if String.length comp >= 2 && String.ends_with ~suffix:"__" comp then None
  else
    match List.rev (split_on_string ~sep:"__" comp) with
    | last :: _ :: _ when last <> "" -> Some last
    | _ -> Some comp

let normalize_path name =
  let comps = String.split_on_char '.' name in
  let comps = List.filter_map normalize_component comps in
  let comps =
    match comps with
    | "Stdlib" :: (_ :: _ as rest) -> rest
    | comps -> comps
  in
  String.concat "." comps

(* "Solvers__Refine" -> "Refine"; "Dune__exe__Main" -> "Main". *)
let module_of_unit name =
  match normalize_component name with Some m -> m | None -> name

(* Suffix match on dotted paths: [ends_with_path "Workspace.t"] accepts
   "Workspace.t" and "Solvers.Workspace.t" but not "Xworkspace.t". *)
let ends_with_path ~suffix name =
  name = suffix
  || String.ends_with ~suffix:("." ^ suffix) name

(* Name-based kind classification shared by both fronts: given a
   normalized type-constructor path, the kinds recognizable without any
   type environment.  Ownership kinds (Workspace/Rng/obs handles) match
   by dotted suffix so that fixture modules defining their own
   [Workspace.t] classify like the real one.  Everything else —
   repo-defined mutable records, aliases — is the typed front's harvest
   pass. *)
let classify_name name : kind option =
  if ends_with_path ~suffix:"Workspace.t" name then Some Workspace
  else if
    ends_with_path ~suffix:"Rng.t" name
    || ends_with_path ~suffix:"Random.State.t" name
  then Some Rng
  else if
    ends_with_path ~suffix:"Counter.t" name
    || ends_with_path ~suffix:"Gauge.t" name
    || ends_with_path ~suffix:"Histogram.t" name
  then Some Obs_handle
  else if ends_with_path ~suffix:"Atomic.t" name then Some Atomic
  else if
    ends_with_path ~suffix:"Mutex.t" name
    || ends_with_path ~suffix:"Semaphore.Counting.t" name
    || ends_with_path ~suffix:"Semaphore.Binary.t" name
  then Some Mutex
  else if name = "ref" then Some Ref
  else if name = "array" || name = "floatarray" || ends_with_path ~suffix:"Floatarray.t" name
  then Some Array
  else if name = "bytes" || ends_with_path ~suffix:"Bytes.t" name then Some Bytes
  else if ends_with_path ~suffix:"Hashtbl.t" name then Some Hashtbl_poly
  else if name = "lazy_t" || ends_with_path ~suffix:"Lazy.t" name then Some Lazy
  else if
    ends_with_path ~suffix:"Queue.t" name
    || ends_with_path ~suffix:"Stack.t" name
    || ends_with_path ~suffix:"Buffer.t" name
  then Some Container
  else None

(* A container (tuple, option, list, ...) of a mutable value is itself
   shared mutable state; ownership kinds and the safe kinds keep their
   identity through the shell so the rules still see them. *)
let container_of = function
  | (Workspace | Rng | Atomic | Mutex | Obs_handle) as k -> k
  | _ -> Container

let kind_is_safe = function Atomic | Mutex -> true | _ -> false

let kind_to_string = function
  | Ref -> "ref"
  | Array -> "array"
  | Bytes -> "bytes"
  | Hashtbl_poly -> "hashtbl"
  | Lazy -> "lazy"
  | Container -> "container"
  | Mutable_record -> "mutable-record"
  | Atomic -> "atomic"
  | Mutex -> "mutex"
  | Workspace -> "workspace"
  | Rng -> "rng"
  | Obs_handle -> "obs-handle"

let front_to_string = function
  | Typed -> "typed"
  | Parsetree_only -> "parsetree"

(* Deterministic unit ordering for reports. *)
let compare_units a b = String.compare a.u_file b.u_file
