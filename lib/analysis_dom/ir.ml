(* The front-end-neutral intermediate representation of the domain-safety
   analyzer.  Both fronts — the typed one reading [.cmt] files and the
   Parsetree fallback — lower a compilation unit to a [unit_ir]: its
   module-level mutable bindings, its toplevel functions with the global
   identifiers each references, and the Workspace/Rng escape sites.  The
   DOM rules and the call-graph reachability pass operate on this IR
   only, so every rule is provable from either front. *)

(* Which front produced a unit: [Typed] units carry compiler-resolved
   paths and types; [Parsetree_only] units are a syntactic approximation
   used when no (readable) [.cmt] exists for the source. *)
type front = Typed | Parsetree_only

(* Why a module-level binding is (or is not) shared mutable state.  The
   [Atomic] and [Mutex] kinds are mutable but domain-safe by
   construction; [Obs_handle] is a pre-interned metrics handle whose
   mutation is confined to the obs runtime (its emission discipline is
   DOM04's, not DOM01's). *)
type kind =
  | Ref
  | Array
  | Bytes
  | Hashtbl_poly
  | Lazy
  | Container  (* Queue/Stack/Buffer, or an immutable shell over mutables *)
  | Mutable_record
  | Atomic
  | Mutex
  | Workspace
  | Rng
  | Obs_handle

type global = {
  g_module : string;  (* normalized unit name, e.g. "Refine" *)
  g_name : string;  (* binding path within the unit, e.g. "Counter.next" *)
  g_file : string;  (* root-relative source path *)
  g_line : int;
  g_col : int;
  g_type : string;  (* printed type (typed front) or a syntactic hint *)
  g_kind : kind;
  g_safe : bool;  (* Atomic/Mutex: racing writers cannot corrupt it *)
}

(* A per-event obs emission ([Obs.Counter.incr] & friends) lexically
   inside a loop of function [oe_fun] — DOM04 material when the function
   is hot-path-reachable. *)
type obs_emit = { oe_fun : string; oe_name : string; oe_line : int; oe_col : int }

(* A use of the stdlib's global PRNG ([Random.int], [Random.self_init],
   ...) — shared state that breaks solve determinism (DOM03). *)
type random_use = { ru_fun : string; ru_name : string; ru_line : int; ru_col : int }

(* A Workspace/Rng value stored into module state: the target of a [:=],
   a [<-] field write, or a [Hashtbl.add]-style call whose subject is a
   module-level binding, with an ownership-scoped value somewhere in the
   stored expression. *)
type escape = {
  esc_fun : string;
  esc_what : string;  (* "Workspace.t" or "Rng.t" *)
  esc_line : int;
  esc_col : int;
  esc_desc : string;
}

type func = {
  f_module : string;
  f_name : string;  (* path within the unit, e.g. "Counter.add" *)
  f_line : int;
  f_refs : string list;  (* normalized global identifiers, sorted, deduped *)
  f_ret_mentions : string list;  (* "Workspace.t"/"Rng.t" in the result type *)
  f_writes : string list;
      (* module-level bindings this body writes: the target of a [:=] or
         [<-], or the subject of a mutating call (Hashtbl.replace,
         Array.fill, incr, ...), normalized and qualified like [f_refs] *)
  f_local_mut : bool;
      (* mutation whose subject is NOT module-level: a parameter or a
         let-bound local — the Workspace-discipline shape *)
  f_takes_ws : bool;  (* some parameter type mentions Workspace.t *)
  f_ret_kind : string option;
      (* [kind_to_string] of the result type when it classifies as a
         mutable kind (typed front; constraint-only on the fallback) *)
}

type unit_ir = {
  u_module : string;  (* normalized: "Refine", not "Solvers__Refine" *)
  u_file : string;  (* root-relative source path *)
  u_front : front;
  u_has_mli : bool;
  u_globals : global list;
  u_funcs : func list;
  u_escapes : escape list;
  u_obs_emits : obs_emit list;
  u_random_uses : random_use list;
  u_aliases : (string * string) list;
      (* module re-exports: ("", "Hg") for a toplevel [include Hg],
         ("Io", "Part_io") for [module Io = Part_io] — the owner path
         relative to the unit, and the normalized target path.  The call
         graph uses these to resolve references made through library
         roots (Hypergraph.fold_pins -> Hg.fold_pins). *)
}

(* ---- name normalization ------------------------------------------------- *)

(* Compiler paths arrive mangled by dune's module-name prefixing:
   ["Solvers__Refine.best_move"], ["Solvers__.Pin_counts.t"],
   ["Stdlib.ref"].  Normalization makes them comparable across units and
   fronts: drop alias-root components (trailing "__"), unprefix
   "Lib__Module" to "Module", and strip a leading "Stdlib". *)

let split_on_string ~sep s =
  let seplen = String.length sep and n = String.length s in
  let rec go start i acc =
    if i + seplen > n then List.rev (String.sub s start (n - start) :: acc)
    else if String.sub s i seplen = sep then
      go (i + seplen) (i + seplen) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if seplen = 0 then [ s ] else go 0 0 []

let normalize_component comp =
  if String.length comp >= 2 && String.ends_with ~suffix:"__" comp then None
  else
    match List.rev (split_on_string ~sep:"__" comp) with
    | last :: _ :: _ when last <> "" -> Some last
    | _ -> Some comp

let normalize_path name =
  let comps = String.split_on_char '.' name in
  let comps = List.filter_map normalize_component comps in
  let comps =
    match comps with
    | "Stdlib" :: (_ :: _ as rest) -> rest
    | comps -> comps
  in
  String.concat "." comps

(* "Solvers__Refine" -> "Refine"; "Dune__exe__Main" -> "Main". *)
let module_of_unit name =
  match normalize_component name with Some m -> m | None -> name

(* Suffix match on dotted paths: [ends_with_path "Workspace.t"] accepts
   "Workspace.t" and "Solvers.Workspace.t" but not "Xworkspace.t". *)
let ends_with_path ~suffix name =
  name = suffix
  || String.ends_with ~suffix:("." ^ suffix) name

(* Name-based kind classification shared by both fronts: given a
   normalized type-constructor path, the kinds recognizable without any
   type environment.  Ownership kinds (Workspace/Rng/obs handles) match
   by dotted suffix so that fixture modules defining their own
   [Workspace.t] classify like the real one.  Everything else —
   repo-defined mutable records, aliases — is the typed front's harvest
   pass. *)
let classify_name name : kind option =
  if ends_with_path ~suffix:"Workspace.t" name then Some Workspace
  else if
    ends_with_path ~suffix:"Rng.t" name
    || ends_with_path ~suffix:"Random.State.t" name
  then Some Rng
  else if
    ends_with_path ~suffix:"Counter.t" name
    || ends_with_path ~suffix:"Gauge.t" name
    || ends_with_path ~suffix:"Histogram.t" name
  then Some Obs_handle
  else if ends_with_path ~suffix:"Atomic.t" name then Some Atomic
  else if
    ends_with_path ~suffix:"Mutex.t" name
    || ends_with_path ~suffix:"Semaphore.Counting.t" name
    || ends_with_path ~suffix:"Semaphore.Binary.t" name
  then Some Mutex
  else if name = "ref" then Some Ref
  else if name = "array" || name = "floatarray" || ends_with_path ~suffix:"Floatarray.t" name
  then Some Array
  else if name = "bytes" || ends_with_path ~suffix:"Bytes.t" name then Some Bytes
  else if ends_with_path ~suffix:"Hashtbl.t" name then Some Hashtbl_poly
  else if name = "lazy_t" || ends_with_path ~suffix:"Lazy.t" name then Some Lazy
  else if
    ends_with_path ~suffix:"Queue.t" name
    || ends_with_path ~suffix:"Stack.t" name
    || ends_with_path ~suffix:"Buffer.t" name
  then Some Container
  else None

(* A container (tuple, option, list, ...) of a mutable value is itself
   shared mutable state; ownership kinds and the safe kinds keep their
   identity through the shell so the rules still see them. *)
let container_of = function
  | (Workspace | Rng | Atomic | Mutex | Obs_handle) as k -> k
  | _ -> Container

let kind_is_safe = function Atomic | Mutex -> true | _ -> false

(* ---- shared name predicates ---------------------------------------------- *)

(* Both fronts consult the same predicate set so a rule can never fire
   on one front and stay silent on the other for naming reasons alone. *)

(* Per-event obs emission entry points (the batched-flush contract says
   hot loops accumulate into plain ints and flush once per pass with
   [Counter.add]). *)
let obs_emit_name name =
  ends_with_path ~suffix:"Counter.incr" name
  || ends_with_path ~suffix:"Histogram.observe" name
  || ends_with_path ~suffix:"Histogram.observe_int" name
  || ends_with_path ~suffix:"Gauge.set" name

(* The stdlib's implicit-state PRNG entry points (excludes the explicit
   [Random.State.*] API, which normalizes to "Random.State.<fn>"). *)
let random_global_name name =
  match name with
  | "Random.bits" | "Random.int" | "Random.int32" | "Random.int64"
  | "Random.nativeint" | "Random.float" | "Random.bool" | "Random.full_int"
  | "Random.self_init" | "Random.init" | "Random.full_init"
  | "Random.set_state" | "Random.get_state" ->
      true
  | _ -> false

(* Callback-taking iteration functions, as in hyplint's SRC02: a function
   literal passed to one of these runs once per element, so it counts as
   a loop body for DOM04. *)
let is_iterish name =
  let last =
    match List.rev (String.split_on_char '.' name) with
    | last :: _ -> last
    | [] -> name
  in
  List.mem last
    [
      "iter"; "iteri"; "iter2"; "map"; "mapi"; "map2"; "rev_map";
      "concat_map"; "filter_map"; "filter"; "find"; "find_opt"; "find_map";
      "exists"; "for_all"; "partition"; "fold_left"; "fold_right"; "fold";
      "init"; "sort"; "sort_uniq"; "stable_sort";
    ]
  || String.starts_with ~prefix:"iter_" last
  || String.starts_with ~prefix:"fold_" last

(* Store operations whose first argument is the stored-into subject and
   which retain the stored value: [Hashtbl.add tbl k v] with [tbl] a
   module global makes [v] module state — escape material. *)
let is_store_fn name =
  ends_with_path ~suffix:"Hashtbl.add" name
  || ends_with_path ~suffix:"Hashtbl.replace" name
  || ends_with_path ~suffix:"Queue.add" name
  || ends_with_path ~suffix:"Queue.push" name
  || ends_with_path ~suffix:"Stack.push" name

(* The wider set for the effect analysis: calls that mutate their first
   argument without necessarily retaining anything.  A call whose subject
   is a module global is a write to it; on a local/parameter it is the
   Workspace-local shape. *)
let mutates_subject_fn name =
  is_store_fn name || name = "incr" || name = "decr"
  || ends_with_path ~suffix:"Hashtbl.remove" name
  || ends_with_path ~suffix:"Hashtbl.clear" name
  || ends_with_path ~suffix:"Hashtbl.reset" name
  || ends_with_path ~suffix:"Hashtbl.filter_map_inplace" name
  || ends_with_path ~suffix:"Array.set" name
  || ends_with_path ~suffix:"Array.fill" name
  || ends_with_path ~suffix:"Array.blit" name
  || ends_with_path ~suffix:"Array.sort" name
  || ends_with_path ~suffix:"Array.fast_sort" name
  || ends_with_path ~suffix:"Array.stable_sort" name
  || ends_with_path ~suffix:"Bytes.set" name
  || ends_with_path ~suffix:"Bytes.fill" name
  || ends_with_path ~suffix:"Bytes.blit" name
  || ends_with_path ~suffix:"Queue.pop" name
  || ends_with_path ~suffix:"Queue.take" name
  || ends_with_path ~suffix:"Queue.clear" name
  || ends_with_path ~suffix:"Stack.pop" name
  || ends_with_path ~suffix:"Stack.clear" name
  || ends_with_path ~suffix:"Buffer.clear" name
  || ends_with_path ~suffix:"Buffer.reset" name
  || String.starts_with ~prefix:"Buffer.add_" name

let kind_to_string = function
  | Ref -> "ref"
  | Array -> "array"
  | Bytes -> "bytes"
  | Hashtbl_poly -> "hashtbl"
  | Lazy -> "lazy"
  | Container -> "container"
  | Mutable_record -> "mutable-record"
  | Atomic -> "atomic"
  | Mutex -> "mutex"
  | Workspace -> "workspace"
  | Rng -> "rng"
  | Obs_handle -> "obs-handle"

let front_to_string = function
  | Typed -> "typed"
  | Parsetree_only -> "parsetree"

(* Deterministic unit ordering for reports. *)
let compare_units a b = String.compare a.u_file b.u_file
