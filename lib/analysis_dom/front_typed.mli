(** The typed front: lower compiler [.cmt] files to {!Ir.unit_ir}.

    Precision the Parsetree fallback cannot match: references are
    compiler-resolved paths (no scope guessing), and bindings are
    classified by their principal type, so repo-defined mutable records
    and aliases ([Obs.Counter.t]) are recognized through abstraction
    boundaries via the {!harvest} pass. *)

type typed_unit = {
  tu_modname : string;  (* raw compilation-unit name, e.g. "Solvers__Refine" *)
  tu_source : string;  (* root-relative source path recorded in the cmt *)
  tu_str : Typedtree.structure;
}
(** One successfully-read implementation [.cmt]. *)

val read_cmt : string -> typed_unit option
(** Read one [.cmt] file.  [None] for interfaces, packs, partial trees,
    dune alias-root units ("Lib__") and unreadable/mismatched files;
    never raises. *)

type known
(** Repo-wide harvest of known-mutable type names. *)

val harvest : typed_unit list -> known
(** Fixpoint over all units' type declarations: a name such as
    ["Obs.counter"] is known-mutable if it is declared as a record with
    [mutable] fields, or is an alias resolving (transitively) to a
    builtin mutable constructor or another known-mutable name. *)

val extract : known:known -> has_mli:bool -> typed_unit -> Ir.unit_ir
(** Lower one unit: classify module-level bindings, record each toplevel
    function's referenced globals, and collect obs-emission sites inside
    loops, global-PRNG uses and Workspace/Rng escape stores. *)
