(* The machine-readable mutable-state inventory: every module-level
   mutable binding the fronts found, with kind, domain-safety and
   hot-path reachability, plus per-unit coverage.  The rendering is
   fully deterministic (sorted, no timestamps) so the committed
   [analysis/inventory.json] diffs cleanly — state growth shows up in
   review, not in a dashboard. *)

module I = Ir
module J = Obs.Json

let compare_globals (a : I.global) (b : I.global) =
  let c = String.compare a.I.g_file b.I.g_file in
  if c <> 0 then c
  else
    let c = Int.compare a.I.g_line b.I.g_line in
    if c <> 0 then c
    else
      let c = Int.compare a.I.g_col b.I.g_col in
      if c <> 0 then c else String.compare a.I.g_name b.I.g_name

let global_to_json ~hot (g : I.global) =
  J.Obj
    [
      ("module", J.Str g.I.g_module);
      ("name", J.Str g.I.g_name);
      ("file", J.Str g.I.g_file);
      ("line", J.Int g.I.g_line);
      ("type", J.Str g.I.g_type);
      ("kind", J.Str (I.kind_to_string g.I.g_kind));
      ("safe", J.Bool g.I.g_safe);
      ("hot", J.Bool hot);
    ]

let unit_to_json (u : I.unit_ir) =
  J.Obj
    [
      ("module", J.Str u.I.u_module);
      ("file", J.Str u.I.u_file);
      ("front", J.Str (I.front_to_string u.I.u_front));
      ("has_mli", J.Bool u.I.u_has_mli);
      ("globals", J.Int (List.length u.I.u_globals));
      ("functions", J.Int (List.length u.I.u_funcs));
    ]

let all_kinds =
  [
    I.Ref; I.Array; I.Bytes; I.Hashtbl_poly; I.Lazy; I.Container;
    I.Mutable_record; I.Atomic; I.Mutex; I.Workspace; I.Rng; I.Obs_handle;
  ]

(* Pretty rendering for the committed artifact: one field per line so
   `git diff analysis/inventory.json` shows exactly which global or
   count moved.  Leaves reuse the compact codec (escaping, float
   round-trip); only the Obj/Arr layout is ours. *)
let render doc =
  let buf = Buffer.create 4096 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent j =
    match j with
    | J.Obj [] -> Buffer.add_string buf "{}"
    | J.Arr [] -> Buffer.add_string buf "[]"
    | J.Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            pad (indent + 2);
            Buffer.add_string buf (J.to_string (J.Str k));
            Buffer.add_string buf ": ";
            go (indent + 2) v;
            if i < List.length fields - 1 then Buffer.add_char buf ',';
            Buffer.add_char buf '\n')
          fields;
        pad indent;
        Buffer.add_char buf '}'
    | J.Arr items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i v ->
            pad (indent + 2);
            go (indent + 2) v;
            if i < List.length items - 1 then Buffer.add_char buf ',';
            Buffer.add_char buf '\n')
          items;
        pad indent;
        Buffer.add_char buf ']'
    | leaf -> Buffer.add_string buf (J.to_string leaf)
  in
  go 0 doc;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_json ~cg (units : I.unit_ir list) =
  let units = List.sort I.compare_units units in
  let globals =
    List.concat_map
      (fun u ->
        List.map (fun g -> (g, Callgraph.global_is_hot cg g)) u.I.u_globals)
      units
    |> List.sort (fun (a, _) (b, _) -> compare_globals a b)
  in
  let count p = List.length (List.filter p globals) in
  let by_kind =
    List.filter_map
      (fun k ->
        let n = count (fun (g, _) -> g.I.g_kind = k) in
        if n = 0 then None else Some (I.kind_to_string k, J.Int n))
      all_kinds
  in
  J.Obj
    [
      ("units", J.Arr (List.map unit_to_json units));
      ("globals", J.Arr (List.map (fun (g, hot) -> global_to_json ~hot g) globals));
      ( "summary",
        J.Obj
          [
            ("total", J.Int (List.length globals));
            ("hot", J.Int (count (fun (_, hot) -> hot)));
            ("safe", J.Int (count (fun (g, _) -> g.I.g_safe)));
            ("reachable_functions", J.Int (Callgraph.n_reachable cg));
            ("by_kind", J.Obj by_kind);
          ] );
    ]
