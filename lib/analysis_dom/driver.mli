(** The analyzer driver behind [hypartition analyze]: pair sources with
    the [.cmt]s a prior [dune build] produced, lower each unit (typed
    front, Parsetree fallback), run the call-graph pass and the DOM
    rules, apply hyplint's suppression machinery, and report through the
    same {!Check} vocabulary as [lint] / [check]. *)

val schema_version : string
(** Schema tag of the [--format json] output, ["hypartition-analysis/1"]. *)

val default_subdirs : string list
(** Directories analyzed under the root: [lib], [bin], [bench].  [test]
    is excluded on purpose — the DOM fixtures there violate the contract
    deliberately. *)

type result = {
  root : string;
  units : Ir.unit_ir list;  (** sorted by file *)
  n_typed : int;  (** units lowered from [.cmt] *)
  n_parse : int;  (** units lowered from source text only *)
  n_reachable : int;  (** hot-path functions found by the call graph *)
  findings : Lint.Rules.finding list;  (** live (unsuppressed), sorted *)
  suppressed : (Lint.Rules.finding * string) list;
      (** finding, written reason *)
  inventory : Obs.Json.t;  (** {!Inventory.to_json} of the same run *)
  effects : Effects.t;  (** the interprocedural effect analysis *)
}

val analyze_sources :
  ?config:Lint.Suppress.config ->
  ?entries:(string * string) list ->
  ?certificate:string * string ->
  root:string ->
  (string * string) list ->
  result
(** The filesystem-free pipeline over (root-relative path, content)
    pairs, all lowered through the Parsetree front — what the fixture
    tests drive.  [entries] defaults to {!Callgraph.default_entries};
    [certificate] is a committed effects.json as (path, content), and
    when present DOM11 compares it against the run. *)

val run :
  ?config_path:string ->
  ?entries:(string * string) list ->
  ?build_dir:string ->
  root:string ->
  unit ->
  (result, string) Stdlib.result
(** Walk [root]'s {!default_subdirs}, read suppressions from
    [lint.config], harvest and lower every unit ([build_dir] defaults to
    [root/_build/default]), and analyze.  Sources without [.cmt]
    coverage fall back to the Parsetree front and carry a DOM00 warning
    noting the reduced precision.  When [root/analysis/effects.json]
    exists it is loaded as the committed certificate and DOM11 checks it
    for staleness. *)

val report : result -> Analysis_core.Check.report
(** One evaluation per catalogue rule plus one violation per live
    finding; [Check.exit_code] of this report is the analyze gate. *)

val to_json : result -> Obs.Json.t
(** The versioned machine-readable report ({!schema_version}),
    inventory included. *)
