(** Interprocedural effect analysis over the lowered units: per-function
    effect signatures propagated to a fixpoint over the call graph, a
    five-point classification of every hot-path function, and the
    byte-deterministic parallel-safety certificate committed as
    [analysis/effects.json]. *)

val schema_version : string
(** Schema tag of the certificate, ["hypartition-effects/1"]. *)

type classification =
  | Pure  (** no effects at all *)
  | Workspace_local
      (** mutates only parameters/locals — the Workspace discipline;
          safe to run per-domain with per-domain workspaces *)
  | Shared_read  (** reads unsafe module-global state, never writes it *)
  | Shared_mutating  (** writes unsafe module-global state *)
  | Unknown
      (** effect widened only by calls into unanalyzed externals *)

val classification_to_string : classification -> string
val classification_of_string : string -> classification option

type signature_ = {
  s_reads : string list;
      (** unsafe inventory globals read (transitively), qualified
          ["Module.binding"]; written globals are not re-listed *)
  s_writes : string list;  (** unsafe inventory globals written *)
  s_externals : string list;
      (** unresolved references that are not allowlisted as benign *)
  s_local_mut : bool;  (** parameter/local mutation somewhere below *)
}

type info = {
  e_key : string;  (** ["Module.func"] *)
  e_module : string;
  e_file : string;
  e_line : int;
  e_front : Ir.front;
  e_sig : signature_;  (** after fixpoint *)
  e_direct_writes : string list;
      (** this body's own global writes — where DOM07 fires *)
  e_class : classification;
  e_blame : (string * string list) list;
      (** written global -> minimal call chain from this function to a
          direct writer of it, both ends inclusive *)
}

type t

val compute : cg:Callgraph.t -> Ir.unit_ir list -> t
(** Run base-fact extraction, the fixpoint and the blame-chain pass.
    The result covers exactly the functions reachable from the solver
    entry points, sorted by key — deterministic for the certificate. *)

val infos : t -> info list
val find : t -> string -> info option
val entry_points : t -> string list
val count : t -> classification -> int

val benign_external : string -> bool
(** The external-call allowlist: pure / parameter-local stdlib modules
    and a few exact names ([Printf.sprintf], [Random.State.*]); every
    other unresolved reference widens its caller to [Unknown]. *)

val to_json : t -> Obs.Json.t
(** The certificate document ({!schema_version}): entry points, one
    record per reachable function (signature, classification, blame
    chains), and a per-classification summary.  Render with
    {!Inventory.render} for the committed artifact. *)

val stale_findings :
  certificate_path:string -> certificate:string -> t -> Lint.Rules.finding list
(** DOM11: compare a committed certificate's text against this run —
    one finding per entry whose classification changed, per entry no
    longer reachable, and per reachable function the certificate lacks.
    An unparseable or wrong-schema document is a single finding. *)

val render_witnesses : t -> string
(** The [analyze --effects] text: per entry point, its classification,
    transitive reads/externals, and the minimal call-chain witness to
    every shared-mutating leaf it reaches. *)
