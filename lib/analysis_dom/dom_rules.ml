(* The domain-safety rule set, DOM00..DOM06: the contract the multicore
   solver work (ROADMAP item 1) starts from.  Rules are evaluated over
   the lowered {!Ir.unit_ir}s plus the hot-path reachability from
   {!Callgraph}; findings reuse hyplint's {!Lint.Rules.finding} record so
   the same suppression machinery (inline markers, [lint.config]) and
   reporting vocabulary apply unchanged. *)

module I = Ir

let catalogue =
  [
    ( "DOM00",
      "analyzer hygiene: stale DOM suppressions, unreadable build \
       artifacts, unparseable fallback sources" );
    ( "DOM01",
      "module-global mutable state reachable from the solver hot path \
       without Atomic/Mutex or documented confinement" );
    ( "DOM02",
      "Workspace.t escaping its solve: stored into module state, or \
       returned by a module other than Workspace" );
    ( "DOM03",
      "shared PRNG state: the stdlib's global Random, a module-global \
       Rng.t, or an Rng stored into module state" );
    ( "DOM04",
      "per-event obs emission (Counter.incr & friends) inside a \
       hot-path loop: accumulate locally, flush once with Counter.add" );
    ( "DOM05",
      "toplevel Hashtbl in lib/solvers or lib/hypergraph (SRC09 \
       promoted to module scope)" );
    ( "DOM06",
      "lib module holding unsafe mutable globals without a sealing .mli" );
    ( "DOM07",
      "shared-mutating function reachable from a solver entry point: its \
       body writes an unsafe inventory global (the effect analysis names \
       the blame chain)" );
    ( "DOM08",
      "Workspace interior escaping its owner: a mutable field projected \
       out of a Workspace.t stored into module state" );
    ( "DOM09",
      "hot-path function whose effects are unknown solely because of \
       calls into unanalyzed externals (typed front)" );
    ( "DOM10",
      "hot-path function whose effects are unknown because the unit was \
       only covered by the Parsetree fallback — run `dune build` for \
       typed precision" );
    ( "DOM11",
      "stale parallel-safety certificate: a committed \
       analysis/effects.json entry disagrees with this run — regenerate \
       with analyze --effects-out" );
  ]

let rule_ids = List.map fst catalogue

(* The hot-path directories of DOM05 — same set SRC09 polices at
   expression level. *)
let in_hot_dir path =
  String.starts_with ~prefix:"lib/solvers/" path
  || String.starts_with ~prefix:"lib/hypergraph/" path

let in_lib path = String.starts_with ~prefix:"lib/" path

let finding ~rule ~file ~line ~col message =
  {
    Lint.Rules.rule;
    severity = Analysis_core.Check.Error;
    file;
    line;
    col;
    message;
  }

(* DOM01/DOM05/DOM02/DOM03 as they apply to one module-level binding. *)
let global_findings ~cg (u : I.unit_ir) (g : I.global) =
  let where = Printf.sprintf "%s.%s" g.I.g_module g.I.g_name in
  let mk ~rule msg = finding ~rule ~file:g.I.g_file ~line:g.I.g_line ~col:g.I.g_col msg in
  match g.I.g_kind with
  | I.Atomic | I.Mutex | I.Obs_handle -> []
  | I.Workspace ->
      if u.I.u_module = "Workspace" then []
      else
        [
          mk ~rule:"DOM02"
            (Printf.sprintf
               "module-global Workspace.t `%s` outlives any single solve; \
                workspaces must be created per solve and passed explicitly"
               where);
        ]
  | I.Rng ->
      [
        mk ~rule:"DOM03"
          (Printf.sprintf
             "module-global Rng state `%s` (%s) is shared across solves; \
              take an explicit Rng.t parameter instead"
             where g.I.g_type);
      ]
  | I.Hashtbl_poly when in_hot_dir g.I.g_file ->
      [
        mk ~rule:"DOM05"
          (Printf.sprintf
             "toplevel Hashtbl `%s` in a hot-path module; use a \
              workspace-owned structure or move it behind an explicit \
              context"
             where);
      ]
  | _ ->
      if Callgraph.global_is_hot cg g then
        [
          mk ~rule:"DOM01"
            (Printf.sprintf
               "module-global %s `%s` (%s) is reachable from the solver \
                hot path without Atomic/Mutex; convert it or suppress \
                with a confinement rationale"
               (I.kind_to_string g.I.g_kind)
               where g.I.g_type);
        ]
      else []

let unit_findings ~cg (u : I.unit_ir) =
  let globals = List.concat_map (global_findings ~cg u) u.I.u_globals in
  let escapes =
    List.filter_map
      (fun (e : I.escape) ->
        let rule =
          match e.I.esc_what with
          | "Workspace.t" -> "DOM02"
          | "Workspace interior" -> "DOM08"
          | _ -> "DOM03"
        in
        (* a store inside the owning module's own implementation is its
           business (Workspace pooling, Rng caches behind the API) *)
        if
          ((e.I.esc_what = "Workspace.t" || e.I.esc_what = "Workspace interior")
          && u.I.u_module = "Workspace")
          || (e.I.esc_what = "Rng.t" && u.I.u_module = "Rng")
        then None
        else
          Some
            (finding ~rule ~file:u.I.u_file ~line:e.I.esc_line
               ~col:e.I.esc_col
               (Printf.sprintf "%s value escapes in %s.%s: %s"
                  e.I.esc_what u.I.u_module e.I.esc_fun e.I.esc_desc)))
      u.I.u_escapes
  in
  let returns =
    if u.I.u_module = "Workspace" then []
    else
      List.filter_map
        (fun (f : I.func) ->
          (* a submodule named Workspace owns its constructors the same
             way the Workspace unit does *)
          if
            List.mem "Workspace.t" f.I.f_ret_mentions
            && not (String.starts_with ~prefix:"Workspace." f.I.f_name)
          then
            Some
              (finding ~rule:"DOM02" ~file:u.I.u_file ~line:f.I.f_line ~col:0
                 (Printf.sprintf
                    "%s.%s returns a value mentioning Workspace.t; interior \
                     workspace state must not outlive the solve that owns it"
                    u.I.u_module f.I.f_name))
          else None)
        u.I.u_funcs
  in
  let randoms =
    if not (in_lib u.I.u_file) then []
    else
      List.map
        (fun (r : I.random_use) ->
          finding ~rule:"DOM03" ~file:u.I.u_file ~line:r.I.ru_line
            ~col:r.I.ru_col
            (Printf.sprintf
               "%s.%s uses the stdlib's global PRNG (%s); thread a \
                Support.Rng.t instead"
               u.I.u_module r.I.ru_fun r.I.ru_name))
        u.I.u_random_uses
  in
  let emits =
    if u.I.u_module = "Obs" then []
    else
      List.filter_map
        (fun (e : I.obs_emit) ->
          if Callgraph.is_reachable cg ~module_:u.I.u_module ~func:e.I.oe_fun
          then
            Some
              (finding ~rule:"DOM04" ~file:u.I.u_file ~line:e.I.oe_line
                 ~col:e.I.oe_col
                 (Printf.sprintf
                    "%s called in a loop of hot-path function %s.%s; \
                     accumulate into a local int and flush once with \
                     Counter.add / a single observe"
                    e.I.oe_name u.I.u_module e.I.oe_fun))
          else None)
        u.I.u_obs_emits
  in
  let sealing =
    let unsafe =
      List.filter
        (fun (g : I.global) ->
          (not g.I.g_safe)
          && g.I.g_kind <> I.Obs_handle
          && g.I.g_kind <> I.Workspace)
        u.I.u_globals
    in
    if in_lib u.I.u_file && (not u.I.u_has_mli) && unsafe <> [] then
      let g = List.hd unsafe in
      [
        finding ~rule:"DOM06" ~file:u.I.u_file ~line:g.I.g_line ~col:g.I.g_col
          (Printf.sprintf
             "module %s holds %d unsafe mutable global(s) (first: %s) but \
              has no sealing .mli; an interface is required to state what \
              the mutation contract is"
             u.I.u_module (List.length unsafe) g.I.g_name);
      ]
    else []
  in
  globals @ escapes @ returns @ randoms @ emits @ sealing

(* DOM07/DOM09/DOM10 over the effect analysis.  Every info is already
   reachable from the solver entry points, so "hot" is implicit.  DOM07
   fires at the direct writer — the leaf of every blame chain — not at
   each transitive caller, so one shared write is one finding to fix or
   suppress, not a finding per path to it. *)
let effects_findings (effects : Effects.t) =
  List.concat_map
    (fun (i : Effects.info) ->
      let mk ~rule ~severity message =
        { Lint.Rules.rule; severity; file = i.Effects.e_file;
          line = i.Effects.e_line; col = 0; message }
      in
      let writers =
        if i.Effects.e_direct_writes = [] then []
        else
          [
            mk ~rule:"DOM07" ~severity:Analysis_core.Check.Error
              (Printf.sprintf
                 "%s writes shared mutable global(s) %s and is reachable \
                  from the solver entry points; make it workspace-local or \
                  suppress with a confinement rationale"
                 i.Effects.e_key
                 (String.concat ", " i.Effects.e_direct_writes));
          ]
      in
      let unknowns =
        if i.Effects.e_class <> Effects.Unknown then []
        else
          match i.Effects.e_front with
          | I.Typed ->
              [
                mk ~rule:"DOM09" ~severity:Analysis_core.Check.Error
                  (Printf.sprintf
                     "effects of hot-path function %s are unknown solely \
                      because of unanalyzed external call(s): %s"
                     i.Effects.e_key
                     (String.concat ", " i.Effects.e_sig.Effects.s_externals));
              ]
          | I.Parsetree_only ->
              [
                mk ~rule:"DOM10" ~severity:Analysis_core.Check.Warning
                  (Printf.sprintf
                     "effects of hot-path function %s are unknown: the unit \
                      was only covered by the Parsetree fallback — run `dune \
                      build` first for typed precision"
                     i.Effects.e_key);
              ]
      in
      List.concat [ writers; unknowns ])
    (Effects.infos effects)

let evaluate ~cg ~effects (units : I.unit_ir list) =
  let all =
    List.concat_map (unit_findings ~cg) units @ effects_findings effects
  in
  List.sort Lint.Rules.compare_findings all
