(** The front-end-neutral IR of the domain-safety analyzer.

    Both the typed ([.cmt]) front and the Parsetree fallback lower a
    compilation unit to a {!unit_ir}; the DOM rules and the call-graph
    pass consume only this representation, so every rule works — with
    stated precision differences — from either front. *)

type front = Typed | Parsetree_only

type kind =
  | Ref
  | Array
  | Bytes
  | Hashtbl_poly
  | Lazy
  | Container
  | Mutable_record
  | Atomic
  | Mutex
  | Workspace
  | Rng
  | Obs_handle

type global = {
  g_module : string;
  g_name : string;
  g_file : string;
  g_line : int;
  g_col : int;
  g_type : string;
  g_kind : kind;
  g_safe : bool;
}

type obs_emit = { oe_fun : string; oe_name : string; oe_line : int; oe_col : int }
type random_use = { ru_fun : string; ru_name : string; ru_line : int; ru_col : int }

type escape = {
  esc_fun : string;
  esc_what : string;
  esc_line : int;
  esc_col : int;
  esc_desc : string;
}

type func = {
  f_module : string;
  f_name : string;
  f_line : int;
  f_refs : string list;
  f_ret_mentions : string list;
}

type unit_ir = {
  u_module : string;
  u_file : string;
  u_front : front;
  u_has_mli : bool;
  u_globals : global list;
  u_funcs : func list;
  u_escapes : escape list;
  u_obs_emits : obs_emit list;
  u_random_uses : random_use list;
}

val normalize_path : string -> string
(** Make compiler paths comparable across units: ["Solvers__.Pin_counts.t"]
    and ["Solvers__Workspace.t"] become ["Pin_counts.t"] /
    ["Workspace.t"]; a leading ["Stdlib."] is stripped. *)

val module_of_unit : string -> string
(** ["Solvers__Refine"] -> ["Refine"]; ["Dune__exe__Main"] -> ["Main"]. *)

val ends_with_path : suffix:string -> string -> bool
(** Dotted-path suffix match: ["Workspace.t"] accepts
    ["Solvers.Workspace.t"] but not ["Xworkspace.t"]. *)

val classify_name : string -> kind option
(** Kind of a normalized type-constructor path, when recognizable without
    a type environment: builtin mutable constructors ([ref], [array],
    [Hashtbl.t], ...), the domain-safe wrappers ([Atomic.t], [Mutex.t]),
    and the ownership types matched by dotted suffix ([Workspace.t],
    [Rng.t]/[Random.State.t], obs [Counter.t]/[Gauge.t]/[Histogram.t]).
    Repo-defined mutable records need the typed front's harvest pass. *)

val container_of : kind -> kind
(** The kind of an immutable shell (tuple/option/list/...) holding a
    value of the given kind: ownership and safe kinds survive, everything
    else becomes [Container]. *)

val kind_is_safe : kind -> bool
(** [Atomic] and [Mutex] — mutable but domain-safe by construction. *)

val kind_to_string : kind -> string
val front_to_string : front -> string
val compare_units : unit_ir -> unit_ir -> int
