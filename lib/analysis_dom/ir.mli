(** The front-end-neutral IR of the domain-safety analyzer.

    Both the typed ([.cmt]) front and the Parsetree fallback lower a
    compilation unit to a {!unit_ir}; the DOM rules and the call-graph
    pass consume only this representation, so every rule works — with
    stated precision differences — from either front. *)

type front = Typed | Parsetree_only

type kind =
  | Ref
  | Array
  | Bytes
  | Hashtbl_poly
  | Lazy
  | Container
  | Mutable_record
  | Atomic
  | Mutex
  | Workspace
  | Rng
  | Obs_handle

type global = {
  g_module : string;
  g_name : string;
  g_file : string;
  g_line : int;
  g_col : int;
  g_type : string;
  g_kind : kind;
  g_safe : bool;
}

type obs_emit = { oe_fun : string; oe_name : string; oe_line : int; oe_col : int }
type random_use = { ru_fun : string; ru_name : string; ru_line : int; ru_col : int }

type escape = {
  esc_fun : string;
  esc_what : string;
  esc_line : int;
  esc_col : int;
  esc_desc : string;
}

type func = {
  f_module : string;
  f_name : string;
  f_line : int;
  f_refs : string list;
  f_ret_mentions : string list;
  f_writes : string list;
      (** module-level bindings this body writes ([:=], [<-], or a
          mutating call on a module-global subject), qualified like
          [f_refs] *)
  f_local_mut : bool;
      (** mutation whose subject is a parameter or local — the
          Workspace-discipline shape *)
  f_takes_ws : bool;  (** a parameter type mentions [Workspace.t] *)
  f_ret_kind : string option;
      (** [kind_to_string] of the result type when it classifies as a
          mutable kind *)
}

type unit_ir = {
  u_module : string;
  u_file : string;
  u_front : front;
  u_has_mli : bool;
  u_globals : global list;
  u_funcs : func list;
  u_escapes : escape list;
  u_obs_emits : obs_emit list;
  u_random_uses : random_use list;
  u_aliases : (string * string) list;
      (** module re-exports: [("", "Hg")] for a toplevel [include Hg],
          [("Io", "Part_io")] for [module Io = Part_io] — owner path
          relative to the unit, normalized target path.  Lets the call
          graph resolve references made through library roots. *)
}

val normalize_path : string -> string
(** Make compiler paths comparable across units: ["Solvers__.Pin_counts.t"]
    and ["Solvers__Workspace.t"] become ["Pin_counts.t"] /
    ["Workspace.t"]; a leading ["Stdlib."] is stripped. *)

val module_of_unit : string -> string
(** ["Solvers__Refine"] -> ["Refine"]; ["Dune__exe__Main"] -> ["Main"]. *)

val ends_with_path : suffix:string -> string -> bool
(** Dotted-path suffix match: ["Workspace.t"] accepts
    ["Solvers.Workspace.t"] but not ["Xworkspace.t"]. *)

val classify_name : string -> kind option
(** Kind of a normalized type-constructor path, when recognizable without
    a type environment: builtin mutable constructors ([ref], [array],
    [Hashtbl.t], ...), the domain-safe wrappers ([Atomic.t], [Mutex.t]),
    and the ownership types matched by dotted suffix ([Workspace.t],
    [Rng.t]/[Random.State.t], obs [Counter.t]/[Gauge.t]/[Histogram.t]).
    Repo-defined mutable records need the typed front's harvest pass. *)

val container_of : kind -> kind
(** The kind of an immutable shell (tuple/option/list/...) holding a
    value of the given kind: ownership and safe kinds survive, everything
    else becomes [Container]. *)

val kind_is_safe : kind -> bool
(** [Atomic] and [Mutex] — mutable but domain-safe by construction. *)

val obs_emit_name : string -> bool
(** Per-event obs emission entry points ([Counter.incr],
    [Histogram.observe], [Gauge.set], ...) — DOM04 material in loops. *)

val random_global_name : string -> bool
(** The stdlib's implicit-state PRNG entry points ([Random.int], ...);
    excludes the explicit [Random.State.*] API. *)

val is_iterish : string -> bool
(** Callback-taking iteration functions whose function-literal arguments
    run once per element (loop bodies for DOM04). *)

val is_store_fn : string -> bool
(** Store operations whose first argument is the stored-into subject and
    which retain the stored value ([Hashtbl.add], [Queue.push], ...). *)

val mutates_subject_fn : string -> bool
(** The wider effect-analysis set: calls that mutate their first
    argument ([Array.fill], [Hashtbl.clear], [incr], ...), retaining or
    not.  Superset of {!is_store_fn}. *)

val kind_to_string : kind -> string
val front_to_string : front -> string
val compare_units : unit_ir -> unit_ir -> int
