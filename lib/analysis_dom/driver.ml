(* The analyzer driver behind `hypartition analyze`: find sources, pair
   them with the .cmt files a prior `dune build` left under _build,
   lower every unit through the typed front (Parsetree fallback where no
   .cmt covers a source), run the call-graph pass and the DOM rules,
   apply hyplint's suppression machinery, and report through the same
   Check vocabulary as `hypartition lint` / `hypartition check`.

   Analyzer-owned hygiene is DOM00: a unit only syntactically covered
   (no .cmt — reduced precision), a fallback source that does not parse
   (the analyzer is blind there), and a DOM suppression that matched
   nothing.  Marker syntax errors and lint.config parse errors stay
   lint-owned — hyplint already reports them as SRC00, and double
   reporting would make one typo two findings. *)

module Check = Analysis_core.Check

let schema_version = "hypartition-analysis/1"

(* Directories analyzed under the root.  [test] is deliberately absent:
   the domain-safety contract covers shipped code, and the DOM fixture
   files under test/ violate it on purpose. *)
let default_subdirs = [ "lib"; "bin"; "bench" ]

type result = {
  root : string;
  units : Ir.unit_ir list;  (* sorted by file *)
  n_typed : int;  (* units lowered from .cmt *)
  n_parse : int;  (* units lowered from source text only *)
  n_reachable : int;  (* hot-path functions found by the call graph *)
  findings : Lint.Rules.finding list;  (* live (unsuppressed), sorted *)
  suppressed : (Lint.Rules.finding * string) list;  (* finding, reason *)
  inventory : Obs.Json.t;
  effects : Effects.t;  (* the interprocedural effect analysis *)
}

(* ---- suppression (shared machinery, DOM-owned ids) ---------------------- *)

let dom_marker (m : Lint.Suppress.inline) =
  List.exists (fun r -> List.mem r Dom_rules.rule_ids) m.Lint.Suppress.i_rules

let apply_suppressions ~config ~scans findings =
  let live = ref [] and suppressed = ref [] in
  List.iter
    (fun (f : Lint.Rules.finding) ->
      let inline =
        match List.assoc_opt f.file scans with
        | None -> None
        | Some scan ->
            Lint.Suppress.inline_match scan ~rule:f.rule ~line:f.line
      in
      match inline with
      | Some m ->
          m.Lint.Suppress.i_used <- true;
          suppressed := (f, m.Lint.Suppress.i_reason) :: !suppressed
      | None -> (
          match
            Lint.Suppress.config_match config ~rule:f.rule ~path:f.file
          with
          | Some e ->
              e.Lint.Suppress.e_used <- true;
              suppressed := (f, e.Lint.Suppress.e_reason) :: !suppressed
          | None -> live := f :: !live))
    findings;
  (List.rev !live, List.rev !suppressed)

(* A DOM suppression that matched nothing hides a future regression;
   markers that never mention a DOM rule belong to hyplint. *)
let stale_marker_findings ~scans =
  List.concat_map
    (fun (path, scan) ->
      List.filter_map
        (fun (m : Lint.Suppress.inline) ->
          if m.i_used || not (dom_marker m) then None
          else
            Some
              {
                Lint.Rules.rule = "DOM00";
                severity = Check.Warning;
                file = path;
                line = m.i_line;
                col = 0;
                message =
                  Printf.sprintf
                    "DOM suppression of %s matched no finding; remove it"
                    (String.concat ", " m.i_rules);
              })
        scan.Lint.Suppress.markers)
    scans

(* ---- the pure pipeline -------------------------------------------------- *)

(* Everything after unit lowering is front-independent; both entry
   points funnel here.  [certificate] is the committed effects.json
   (path, content) when one exists: DOM11 compares it against this run;
   without one the comparison is skipped — fixture trees have no
   certificate and that is not a finding. *)
let finish ~root ~config ~entries ~scans ~certificate
    ~(extra : Lint.Rules.finding list) (units : Ir.unit_ir list) =
  let units = List.sort Ir.compare_units units in
  let cg = Callgraph.compute ~entries units in
  let effects = Effects.compute ~cg units in
  let raw = Dom_rules.evaluate ~cg ~effects units in
  let raw =
    raw
    @ (match certificate with
      | None -> []
      | Some (path, content) ->
          Effects.stale_findings ~certificate_path:path ~certificate:content
            effects)
  in
  let live, suppressed = apply_suppressions ~config ~scans raw in
  let findings =
    List.sort Lint.Rules.compare_findings
      (live @ stale_marker_findings ~scans @ extra)
  in
  let n_typed =
    List.length (List.filter (fun u -> u.Ir.u_front = Ir.Typed) units)
  in
  {
    root;
    units;
    n_typed;
    n_parse = List.length units - n_typed;
    n_reachable = Callgraph.n_reachable cg;
    findings;
    suppressed;
    inventory = Inventory.to_json ~cg units;
    effects;
  }

(* The filesystem-free pipeline over (root-relative path, content)
   pairs, all lowered through the Parsetree front — what the fixture
   tests drive. *)
let analyze_sources ?(config = []) ?(entries = Callgraph.default_entries)
    ?certificate ~root files =
  let mls =
    List.filter (fun (path, _) -> Filename.check_suffix path ".ml") files
  in
  let scans =
    List.map
      (fun (path, source) -> (path, Lint.Suppress.scan_inline source))
      mls
  in
  let units, extra =
    List.fold_left
      (fun (units, extra) (path, source) ->
        match Front_parse.parse_string ~file:path source with
        | Ok str ->
            let has_mli =
              List.exists (fun (p, _) -> p = path ^ "i") files
            in
            (Front_parse.extract ~file:path ~has_mli str :: units, extra)
        | Error what ->
            ( units,
              {
                Lint.Rules.rule = "DOM00";
                severity = Check.Error;
                file = path;
                line = 1;
                col = 0;
                message = "cannot analyze, does not parse: " ^ what;
              }
              :: extra ))
      ([], []) mls
  in
  finish ~root ~config ~entries ~scans ~certificate ~extra units

(* ---- filesystem walk ---------------------------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let rec walk_sources dir rel acc =
  let entries = Sys.readdir dir in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      if String.length name = 0 || name.[0] = '.' || name = "_build" then acc
      else
        let path = Filename.concat dir name in
        let rel_path = if rel = "" then name else rel ^ "/" ^ name in
        if Sys.is_directory path then walk_sources path rel_path acc
        else if
          Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
        then (path, rel_path) :: acc
        else acc)
    acc entries

(* The .cmt walk must descend into dune's dot-directories
   (lib/solvers/.solvers.objs/byte/...). *)
let rec walk_cmts dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          if Sys.is_directory path then walk_cmts path acc
          else if Filename.check_suffix name ".cmt" then path :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

(* Match a cmt's recorded source file against the walked source set:
   dune records paths relative to the build context root, but be
   tolerant of absolute prefixes. *)
let source_of_cmt ~rel_paths src =
  if List.mem src rel_paths then Some src
  else
    List.find_opt
      (fun rel -> String.ends_with ~suffix:("/" ^ rel) src)
      rel_paths

let run ?config_path ?(entries = Callgraph.default_entries) ?build_dir ~root ()
    =
  if not (Sys.file_exists root && Sys.is_directory root) then
    Error (Printf.sprintf "Driver.run: %s is not a directory" root)
  else begin
    let config =
      let path =
        match config_path with
        | Some p -> Some p
        | None ->
            let p = Filename.concat root "lint.config" in
            if Sys.file_exists p then Some p else None
      in
      match path with
      | None -> []
      | Some p ->
          (* parse errors are hyplint's SRC00, not re-reported here *)
          fst (Lint.Suppress.parse_config (read_file p))
    in
    let files =
      List.concat_map
        (fun sub ->
          let dir = Filename.concat root sub in
          if Sys.file_exists dir && Sys.is_directory dir then
            List.rev (walk_sources dir sub [])
          else [])
        default_subdirs
    in
    let files = List.sort (fun (_, a) (_, b) -> String.compare a b) files in
    let rel_paths = List.map snd files in
    let mls =
      List.filter (fun (_, rel) -> Filename.check_suffix rel ".ml") files
    in
    let has_mli rel = List.mem (rel ^ "i") rel_paths in
    let scans =
      List.map
        (fun (abs, rel) -> (rel, Lint.Suppress.scan_inline (read_file abs)))
        mls
    in
    (* Typed units: every readable implementation .cmt whose source is
       one of ours; first cmt claiming a source wins. *)
    let build_dir =
      match build_dir with
      | Some d -> d
      | None -> Filename.concat root (Filename.concat "_build" "default")
    in
    let covered : (string, Front_typed.typed_unit) Hashtbl.t =
      Hashtbl.create 64
    in
    if Sys.file_exists build_dir && Sys.is_directory build_dir then
      List.iter
        (fun cmt ->
          match Front_typed.read_cmt cmt with
          | None -> ()
          | Some tu -> (
              match source_of_cmt ~rel_paths tu.Front_typed.tu_source with
              | Some rel ->
                  if not (Hashtbl.mem covered rel) then
                    Hashtbl.replace covered rel
                      { tu with Front_typed.tu_source = rel }
              | None -> ()))
        (List.sort String.compare (walk_cmts build_dir []));
    let typed_units =
      List.filter_map (fun (_, rel) -> Hashtbl.find_opt covered rel) mls
    in
    let known = Front_typed.harvest typed_units in
    let units_typed =
      List.map
        (fun tu ->
          Front_typed.extract ~known
            ~has_mli:(has_mli tu.Front_typed.tu_source)
            tu)
        typed_units
    in
    (* Parsetree fallback for uncovered sources, each flagged DOM00 so
       reduced precision is visible in the report. *)
    let units_parse, extra =
      List.fold_left
        (fun (units, extra) (abs, rel) ->
          if Hashtbl.mem covered rel then (units, extra)
          else
            let fallback_note severity message =
              {
                Lint.Rules.rule = "DOM00";
                severity;
                file = rel;
                line = 1;
                col = 0;
                message;
              }
            in
            match Front_parse.parse_string ~file:rel (read_file abs) with
            | Ok str ->
                ( Front_parse.extract ~file:rel ~has_mli:(has_mli rel) str
                  :: units,
                  fallback_note Check.Warning
                    "no .cmt under _build covers this file; analyzed via \
                     Parsetree fallback (reduced precision) — run `dune \
                     build` first"
                  :: extra )
            | Error what ->
                ( units,
                  fallback_note Check.Error
                    ("cannot analyze, does not parse: " ^ what)
                  :: extra ))
        ([], []) mls
    in
    let certificate =
      let path = "analysis/effects.json" in
      let abs = Filename.concat root path in
      if Sys.file_exists abs then Some (path, read_file abs) else None
    in
    Ok
      (finish ~root ~config ~entries ~scans ~certificate ~extra
         (units_typed @ units_parse))
  end

(* ---- reporting ---------------------------------------------------------- *)

let report t =
  let ctx =
    Check.create
      ~subject:
        (Printf.sprintf "%s (%d units: %d typed, %d parsetree)" t.root
           (List.length t.units) t.n_typed t.n_parse)
  in
  List.iter
    (fun (f : Lint.Rules.finding) ->
      Check.violation ctx ~severity:f.severity ~id:f.rule
        (Printf.sprintf "%s:%d: %s" f.file f.line f.message))
    t.findings;
  List.iter
    (fun (id, _) ->
      let clean =
        not
          (List.exists (fun (f : Lint.Rules.finding) -> f.rule = id) t.findings)
      in
      if clean then Check.rule ctx ~id true (fun () -> ""))
    Dom_rules.catalogue;
  Check.report ctx

let finding_to_json ?reason (f : Lint.Rules.finding) =
  let fields =
    [
      ("rule", Obs.Json.Str f.rule);
      ( "severity",
        Obs.Json.Str (Format.asprintf "%a" Check.pp_severity f.severity) );
      ("file", Obs.Json.Str f.file);
      ("line", Obs.Json.Int f.line);
      ("col", Obs.Json.Int f.col);
      ("message", Obs.Json.Str f.message);
    ]
  in
  let fields =
    match reason with
    | None -> fields
    | Some r -> fields @ [ ("reason", Obs.Json.Str r) ]
  in
  Obs.Json.Obj fields

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema_version);
      ("root", Obs.Json.Str t.root);
      ("units", Obs.Json.Int (List.length t.units));
      ("typed_units", Obs.Json.Int t.n_typed);
      ("parsetree_units", Obs.Json.Int t.n_parse);
      ("reachable_functions", Obs.Json.Int t.n_reachable);
      ( "findings",
        Obs.Json.Arr (List.map (finding_to_json ?reason:None) t.findings) );
      ( "suppressed",
        Obs.Json.Arr
          (List.map (fun (f, reason) -> finding_to_json ~reason f) t.suppressed)
      );
      ("inventory", t.inventory);
      ("effects", Effects.to_json t.effects);
    ]
