(** The machine-readable mutable-state inventory committed under
    [analysis/]: every module-level mutable binding with kind,
    domain-safety and hot-path reachability, plus per-unit coverage.
    Deterministic — sorted, no timestamps — so diffs show state growth. *)

val to_json : cg:Callgraph.t -> Ir.unit_ir list -> Obs.Json.t

val render : Obs.Json.t -> string
(** Pretty, line-oriented rendering (one field per line, trailing
    newline) for the committed artifact; parses back with
    {!Obs.Json.parse}. *)
