(** Hot-path reachability: a breadth-first walk of the function-reference
    graph from the solver entry points, and the set of module globals any
    reachable function touches.

    Name-based and over-approximate by design — a safety gate should err
    toward flagging. *)

type t

val default_entries : (string * string) list
(** The solver hot path: [("Multilevel", "*")], [("Refine", "*")],
    [("Coarsen", "*")], [("Kl_swap", "*")], [("Runner", "*")] — ["*"]
    meaning every toplevel function of the module. *)

val compute : ?entries:(string * string) list -> Ir.unit_ir list -> t

val is_reachable : t -> module_:string -> func:string -> bool
val global_is_hot : t -> Ir.global -> bool

val n_reachable : t -> int
(** Number of reachable functions, for the report summary. *)
