(** Hot-path reachability: a breadth-first walk of the function-reference
    graph from the solver entry points, and the set of module globals any
    reachable function touches.

    Name-based and over-approximate by design — a safety gate should err
    toward flagging. *)

type t

val default_entries : (string * string) list
(** The solver hot path: [("Multilevel", "*")], [("Refine", "*")],
    [("Coarsen", "*")], [("Kl_swap", "*")], [("Runner", "*")] — ["*"]
    meaning every toplevel function of the module. *)

val compute : ?entries:(string * string) list -> Ir.unit_ir list -> t

val is_reachable : t -> module_:string -> func:string -> bool

val is_reachable_key : t -> string -> bool
(** Same check on an already-qualified ["Module.func"] key. *)

val global_is_hot : t -> Ir.global -> bool

val n_reachable : t -> int
(** Number of reachable functions, for the report summary. *)

val entry_keys : t -> string list
(** The resolved entry-point functions (["Module.func"] keys that
    actually exist among the lowered units), sorted. *)

val find_func : t -> string -> Ir.func option
(** The lowered function behind a key, reachable or not. *)

val candidates : t -> caller_module:string -> string -> string list
(** All names a reference may denote: as written, qualified within the
    calling module, rewritten through the units' [include] / module-alias
    re-exports, and with an unanalyzed library-wrapper head dropped when
    the next component names an analyzed unit.  Over-approximate by
    design, like the rest of the graph. *)

val expand_name : t -> string -> string list
(** Like {!candidates} but without the caller-module qualification: the
    expansion of the name exactly as written.  Used to decide whether an
    unresolved reference denotes a value inside an analyzed unit. *)

val resolve_ref : t -> caller_module:string -> string -> string list
(** The {!candidates} that are existing func keys. *)

val is_unit_module : t -> string -> bool
(** Whether a name is the module name of an analyzed unit. *)
