(** The domain-safety rules, DOM00..DOM06.

    DOM00 (analyzer hygiene) is emitted by the driver; DOM01..DOM06 are
    evaluated here over the lowered units plus hot-path reachability.
    Findings reuse {!Lint.Rules.finding}, so hyplint's suppression
    machinery and report ordering apply unchanged. *)

val catalogue : (string * string) list
(** [rule id, one-line rationale], [DOM00]..[DOM06]. *)

val rule_ids : string list

val evaluate : cg:Callgraph.t -> Ir.unit_ir list -> Lint.Rules.finding list
(** All DOM01..DOM06 findings over the given units, sorted by
    [file, line, col, rule]. *)
