(** The domain-safety rules, DOM00..DOM11.

    DOM00 (analyzer hygiene) and DOM11 (stale certificate) are emitted
    by the driver; DOM01..DOM10 are evaluated here over the lowered
    units, hot-path reachability and the interprocedural effect
    analysis.  Findings reuse {!Lint.Rules.finding}, so hyplint's
    suppression machinery and report ordering apply unchanged. *)

val catalogue : (string * string) list
(** [rule id, one-line rationale], [DOM00]..[DOM11]. *)

val rule_ids : string list

val evaluate :
  cg:Callgraph.t -> effects:Effects.t -> Ir.unit_ir list ->
  Lint.Rules.finding list
(** All DOM01..DOM10 findings over the given units, sorted by
    [file, line, col, rule]. *)
