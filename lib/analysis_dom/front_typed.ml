(* The typed front of the domain-safety analyzer: lower a compiler
   [.cmt] file (compiler-libs [Cmt_format] + [Typedtree]) to the neutral
   {!Ir.unit_ir}.

   Working on the typed tree buys exactly what the Parsetree cannot
   give: resolved paths (a reference to [Workspace.next_stamp] is
   [Solvers__Workspace.next_stamp], not whatever was in scope), and
   principal types for every binding — so a module-level value of type
   [Obs.Counter.t] is recognized as a mutable record through two layers
   of abstraction, without heuristics on the initializer expression.

   Two passes:

   1. {!harvest} walks every loaded unit's type declarations and
      computes the repo-wide set of known-mutable type names: records
      with [mutable] fields, plus aliases resolved to a fixpoint
      ([Obs.Counter.t] = [Obs.counter] = a mutable record;
      [Rng.t] = [Random.State.t]).
   2. {!extract} lowers one unit against that knowledge: module-level
      bindings are classified by their type, toplevel functions get
      their referenced globals recorded (bare [Pident]s are matched
      against the unit's own toplevel idents by stamp, so locals never
      alias a global), and the ownership checks (Workspace/Rng escapes,
      in-loop obs emission) run over each function body. *)

module I = Ir

type typed_unit = {
  tu_modname : string;  (* raw compilation-unit name, e.g. "Solvers__Refine" *)
  tu_source : string;  (* root-relative source path recorded in the cmt *)
  tu_str : Typedtree.structure;
}

type known = (string, unit) Hashtbl.t

(* Read one [.cmt]; [None] for interfaces, packs, partial trees, version
   mismatches or alias-only units (dune's "Lib__" roots). *)
let read_cmt path =
  match Cmt_format.read_cmt path with
  | { Cmt_format.cmt_annots = Cmt_format.Implementation str;
      cmt_modname;
      cmt_sourcefile = Some src;
      _;
    }
    when not (String.ends_with ~suffix:"__" cmt_modname) ->
      Some { tu_modname = cmt_modname; tu_source = src; tu_str = str }
  | _ -> None
  | exception _ -> None

(* ---- type classification ------------------------------------------------ *)

(* Recursion depth cap: type terms can be cyclic (polymorphic variants,
   recursive object types); twelve levels see through any realistic
   nesting of containers. *)
let max_type_depth = 12

let rec classify_type ~known ~ctx ?(depth = 0) (ty : Types.type_expr) :
    I.kind option =
  if depth > max_type_depth then None
  else
    match Types.get_desc ty with
    | Tconstr (p, args, _) -> (
        let name = I.normalize_path (Path.name p) in
        match I.classify_name name with
        | Some k -> Some k
        | None ->
            if known_mutable ~known ~ctx name then Some I.Mutable_record
            else
              (* an immutable shell over a mutable argument *)
              let inner =
                List.filter_map
                  (fun a -> classify_type ~known ~ctx ~depth:(depth + 1) a)
                  args
              in
              (match inner with [] -> None | k :: _ -> Some (I.container_of k)))
    | Ttuple ts ->
        let inner =
          List.filter_map
            (fun t -> classify_type ~known ~ctx ~depth:(depth + 1) t)
            ts
        in
        (match inner with [] -> None | k :: _ -> Some (I.container_of k))
    | Tpoly (t, _) -> classify_type ~known ~ctx ~depth:(depth + 1) t
    | _ -> None

(* Resolve a possibly-unqualified type name against the harvest: a bare
   [counter] inside unit [Obs] means [Obs.counter]; inside its [Counter]
   submodule it may also mean [Obs.Counter.counter].  [ctx] lists the
   candidate prefixes, innermost first. *)
and known_mutable ~known ~ctx name =
  Hashtbl.mem known name
  || List.exists (fun prefix -> Hashtbl.mem known (prefix ^ "." ^ name)) ctx

(* Does a type mention one of the ownership types anywhere (argument or
   constructor position)?  Used for escape scanning and result types. *)
let rec type_mentions ?(depth = 0) (ty : Types.type_expr) : string list =
  if depth > max_type_depth then []
  else
    match Types.get_desc ty with
    | Tconstr (p, args, _) ->
        let name = I.normalize_path (Path.name p) in
        let here =
          if I.ends_with_path ~suffix:"Workspace.t" name then [ "Workspace.t" ]
          else if
            I.ends_with_path ~suffix:"Rng.t" name
            || I.ends_with_path ~suffix:"Random.State.t" name
          then [ "Rng.t" ]
          else []
        in
        here
        @ List.concat_map (fun a -> type_mentions ~depth:(depth + 1) a) args
    | Ttuple ts -> List.concat_map (fun t -> type_mentions ~depth:(depth + 1) t) ts
    | Tarrow (_, a, b, _) ->
        type_mentions ~depth:(depth + 1) a @ type_mentions ~depth:(depth + 1) b
    | Tpoly (t, _) -> type_mentions ~depth:(depth + 1) t
    | _ -> []

let rec result_type (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tarrow (_, _, r, _) -> result_type r
  | _ -> ty

(* Ownership mentions over the parameter positions only. *)
let rec arg_mentions (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Tarrow (_, a, b, _) -> type_mentions a @ arg_mentions b
  | _ -> []

let is_arrow ty =
  match Types.get_desc ty with Tarrow _ -> true | _ -> false

let sort_uniq_strings l = List.sort_uniq String.compare l

(* ---- harvest: repo-wide mutable type names ------------------------------ *)

type decl_fact =
  | Fact_mutable of string  (* key: a record with mutable fields *)
  | Fact_alias of string * string list
      (* key, candidate names of the manifest (qualified variants first) *)

let rec pat_vars (p : Typedtree.pattern) :
    (Ident.t * Types.type_expr * Location.t) list =
  match p.pat_desc with
  | Tpat_var (id, _) -> [ (id, p.pat_type, p.pat_loc) ]
  | Tpat_alias (sub, id, _) -> (id, p.pat_type, p.pat_loc) :: pat_vars sub
  | Tpat_tuple ps -> List.concat_map pat_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, sub) -> pat_vars sub) fields
  | Tpat_array ps -> List.concat_map pat_vars ps
  | Tpat_or (a, b, _) -> pat_vars a @ pat_vars b
  | Tpat_lazy sub -> pat_vars sub
  | _ -> []

(* Collect type-declaration facts from one unit, tracking the submodule
   path.  [prefix] is the normalized dotted context ("Obs", then
   "Obs.Counter" inside [module Counter = struct ... end]). *)
let decl_facts tu =
  let facts = ref [] in
  let rec items prefix list = List.iter (item prefix) list
  and item prefix (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_type (_, decls) ->
        List.iter
          (fun (d : Typedtree.type_declaration) ->
            let key = prefix ^ "." ^ Ident.name d.typ_id in
            let mutable_record =
              match d.typ_kind with
              | Ttype_record lbls ->
                  List.exists
                    (fun (l : Typedtree.label_declaration) ->
                      l.ld_mutable = Asttypes.Mutable)
                    lbls
              | _ -> false
            in
            if mutable_record then facts := Fact_mutable key :: !facts
            else
              match d.typ_manifest with
              | Some ct -> (
                  match Types.get_desc ct.ctyp_type with
                  | Tconstr (p, _, _) ->
                      let name = I.normalize_path (Path.name p) in
                      (* innermost-first qualification candidates *)
                      let rec prefixes acc = function
                        | [] -> List.rev acc
                        | comps ->
                            prefixes
                              ((String.concat "." comps ^ "." ^ name) :: acc)
                              (List.rev (List.tl (List.rev comps)))
                      in
                      let cands =
                        name :: prefixes [] (String.split_on_char '.' prefix)
                      in
                      facts := Fact_alias (key, cands) :: !facts
                  | _ -> ())
              | None -> ())
          decls
    | Tstr_module mb -> module_binding prefix mb
    | Tstr_recmodule mbs -> List.iter (module_binding prefix) mbs
    | _ -> ()
  and module_binding prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | Some id -> module_expr (prefix ^ "." ^ Ident.name id) mb.mb_expr
    | None -> ()
  and module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> items prefix str.str_items
    | Tmod_constraint (inner, _, _, _) -> module_expr prefix inner
    | _ -> ()
  in
  items (I.module_of_unit tu.tu_modname) tu.tu_str.str_items;
  List.rev !facts

(* The fixpoint: a name is known-mutable if declared as a mutable record,
   if its manifest is a builtin mutable constructor, or if its manifest
   resolves to a known-mutable name.  Aliases to the safe wrappers
   ([Atomic.t]) or to ownership types do not propagate here — {!Ir.classify_name}
   already recognizes them structurally wherever they appear. *)
let harvest units =
  let known : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let facts = List.concat_map decl_facts units in
  List.iter
    (fun f -> match f with Fact_mutable key -> Hashtbl.replace known key () | _ -> ())
    facts;
  let builtin name =
    match I.classify_name name with
    | Some k -> (not (I.kind_is_safe k)) && k <> I.Obs_handle
    | None -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        match f with
        | Fact_alias (key, cands) when not (Hashtbl.mem known key) ->
            if
              List.exists
                (fun c -> builtin c || Hashtbl.mem known c)
                cands
            then begin
              Hashtbl.replace known key ();
              changed := true
            end
        | _ -> ())
      facts
  done;
  known

(* ---- per-unit extraction ------------------------------------------------ *)

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let print_type ty = Format.asprintf "%a" Printtyp.type_scheme ty

(* Name predicates live in {!Ir} so both fronts consult the same set. *)
let obs_emit_name = I.obs_emit_name
let random_global_name = I.random_global_name
let is_iterish = I.is_iterish
let is_store_fn = I.is_store_fn

let extract ~known ~has_mli tu : I.unit_ir =
  let unit_mod = I.module_of_unit tu.tu_modname in
  let file = tu.tu_source in
  (* Pass A: toplevel idents (stamp-exact) and their unit-local paths. *)
  let toplevel : (Ident.t * string) list ref = ref [] in
  let rec collect prefix (items : Typedtree.structure_item list) =
    List.iter
      (fun (it : Typedtree.structure_item) ->
        match it.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                List.iter
                  (fun (id, _, _) ->
                    let path =
                      match prefix with
                      | "" -> Ident.name id
                      | p -> p ^ "." ^ Ident.name id
                    in
                    toplevel := (id, path) :: !toplevel)
                  (pat_vars vb.vb_pat))
              vbs
        | Tstr_module mb -> collect_mb prefix mb
        | Tstr_recmodule mbs -> List.iter (collect_mb prefix) mbs
        | _ -> ())
      items
  and collect_mb prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | Some id -> (
        let sub =
          match prefix with
          | "" -> Ident.name id
          | p -> p ^ "." ^ Ident.name id
        in
        let rec descend (me : Typedtree.module_expr) =
          match me.mod_desc with
          | Tmod_structure str -> collect sub str.str_items
          | Tmod_constraint (inner, _, _, _) -> descend inner
          | _ -> ()
        in
        descend mb.mb_expr)
    | None -> ()
  in
  collect "" tu.tu_str.str_items;
  let toplevel = !toplevel in
  let toplevel_path id =
    List.find_map
      (fun (tid, path) -> if Ident.same tid id then Some path else None)
      toplevel
  in
  let ctx_prefixes prefix =
    (* innermost-first candidate prefixes for type-name resolution *)
    let rec go acc comps =
      match comps with
      | [] -> List.rev acc
      | _ ->
          go
            (String.concat "." comps :: acc)
            (List.rev (List.tl (List.rev comps)))
    in
    List.rev (go [] (String.split_on_char '.' prefix))
  in
  let globals = ref []
  and funcs = ref []
  and escapes = ref []
  and emits = ref []
  and randoms = ref [] in
  (* Is an expression a module-global location: one of this unit's
     toplevel idents, or a dotted path into another module?  When it is,
     [global_name_of] yields the qualified name the globals inventory and
     the call graph use for it. *)
  let global_name_of (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        match toplevel_path id with
        | Some path -> Some (unit_mod ^ "." ^ path)
        | None -> None)
    | Texp_ident ((Path.Pdot _ as p), _, _) ->
        Some (I.normalize_path (Path.name p))
    | _ -> None
  in
  let is_module_global e = global_name_of e <> None in
  (* Is the mutation subject a named local or parameter (as opposed to a
     module global or a compound expression)?  The Workspace-discipline
     shape the effect analysis records as parameter-local mutation. *)
  let is_local_ident (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> toplevel_path id = None
    | _ -> false
  in
  let owned_mentions_in (e : Typedtree.expression) =
    let acc = ref [] in
    let expr (self : Tast_iterator.iterator) (ex : Typedtree.expression) =
      (match ex.exp_desc with
      | Texp_ident (_, _, _) -> acc := type_mentions ex.exp_type @ !acc
      | Texp_field (record, _, _)
        when List.mem "Workspace.t" (type_mentions record.exp_type) -> (
          (* a mutable field projected out of a Workspace: interior
             scratch escaping its owner (DOM08 material when stored) *)
          match classify_type ~known ~ctx:[] ex.exp_type with
          | Some k when not (I.kind_is_safe k) ->
              acc := "Workspace interior" :: !acc
          | _ -> ())
      | _ -> ());
      Tast_iterator.default_iterator.expr self ex
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.expr it e;
    sort_uniq_strings !acc
  in
  (* Walk one function body, collecting references, writes to module
     state, parameter/local mutation, loop-context obs emissions,
     global-PRNG uses and escape stores. *)
  let walk_body ~fname (body : Typedtree.expression) =
    let refs = ref [] in
    let writes = ref [] in
    let local_mut = ref false in
    (* Resolve the mutated location to its root binding: a field chain
       [Global.state.count <- 5] writes the global at its root. *)
    let rec mutation_root (e : Typedtree.expression) =
      match e.exp_desc with
      | Texp_field (r, _, _) -> mutation_root r
      | _ -> e
    in
    let note_mutation subject =
      let root = mutation_root subject in
      match global_name_of root with
      | Some name -> writes := name :: !writes
      | None -> if is_local_ident root then local_mut := true
    in
    let loop_depth = ref 0 in
    let in_loop f =
      incr loop_depth;
      Fun.protect ~finally:(fun () -> decr loop_depth) f
    in
    let record_path p loc =
      match p with
      | Path.Pident id -> (
          match toplevel_path id with
          | Some path -> refs := (unit_mod ^ "." ^ path) :: !refs
          | None -> ())
      | _ ->
          let name = I.normalize_path (Path.name p) in
          refs := name :: !refs;
          if random_global_name name then
            randoms :=
              {
                I.ru_fun = fname;
                ru_name = name;
                ru_line = line_of loc;
                ru_col = col_of loc;
              }
              :: !randoms;
          if obs_emit_name name && !loop_depth > 0 then
            emits :=
              {
                I.oe_fun = fname;
                oe_name = name;
                oe_line = line_of loc;
                oe_col = col_of loc;
              }
              :: !emits
    in
    let record_escape ~loc ~desc mentions =
      List.iter
        (fun what ->
          escapes :=
            {
              I.esc_fun = fname;
              esc_what = what;
              esc_line = line_of loc;
              esc_col = col_of loc;
              esc_desc = desc;
            }
            :: !escapes)
        mentions
    in
    let rec expr (self : Tast_iterator.iterator) (e : Typedtree.expression) =
      match e.exp_desc with
      | Texp_ident (p, lid, _) -> record_path p lid.loc
      | Texp_apply ({ exp_desc = Texp_ident (p, lid, _); _ }, args) ->
          let name = I.normalize_path (Path.name p) in
          record_path p lid.loc;
          let plain () =
            List.iter
              (fun (_, a) -> match a with Some a -> expr self a | None -> ())
              args
          in
          (match (name, args) with
          | ":=", [ (_, Some lhs); (_, Some rhs) ] ->
              note_mutation lhs;
              if is_module_global lhs then
                record_escape ~loc:e.exp_loc
                  ~desc:"stored through := into a module-global ref"
                  (owned_mentions_in rhs);
              plain ()
          | _ when I.mutates_subject_fn name ->
              (match args with
              | (_, Some subject) :: rest ->
                  note_mutation subject;
                  if is_store_fn name && is_module_global subject then
                    List.iter
                      (fun (_, a) ->
                        match a with
                        | Some a ->
                            record_escape ~loc:e.exp_loc
                              ~desc:
                                (Printf.sprintf
                                   "stored via %s into module state" name)
                              (owned_mentions_in a)
                        | None -> ())
                      rest
              | _ -> ());
              plain ()
          | _ when is_iterish name ->
              List.iter
                (fun (_, a) ->
                  match a with
                  | Some ({ Typedtree.exp_desc = Texp_function _; _ } as a) ->
                      in_loop (fun () -> expr self a)
                  | Some a -> expr self a
                  | None -> ())
                args
          | _ -> plain ())
      | Texp_setfield (obj, _, _, rhs) ->
          note_mutation obj;
          if is_module_global obj then
            record_escape ~loc:e.exp_loc
              ~desc:"stored via <- into a module-global record"
              (owned_mentions_in rhs);
          Tast_iterator.default_iterator.expr self e
      | Texp_for (_, _, lo, hi, _, body) ->
          expr self lo;
          expr self hi;
          in_loop (fun () -> expr self body)
      | Texp_while (cond, body) ->
          expr self cond;
          in_loop (fun () -> expr self body)
      | _ -> Tast_iterator.default_iterator.expr self e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.expr it body;
    (sort_uniq_strings !refs, sort_uniq_strings !writes, !local_mut)
  in
  (* Pass B: classify bindings and lower functions. *)
  let aliases = ref [] in
  let rec module_path (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_ident (p, _) -> Some (I.normalize_path (Path.name p))
    | Tmod_constraint (inner, _, _, _) -> module_path inner
    | _ -> None
  in
  let rec items prefix list = List.iter (item prefix) list
  and item prefix (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_include incl -> (
        (* [include Hg] re-exports Hg's values under this path *)
        match module_path incl.incl_mod with
        | Some target -> aliases := (prefix, target) :: !aliases
        | None -> ())
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let ctx = ctx_prefixes (match prefix with "" -> unit_mod | p -> unit_mod ^ "." ^ p) in
            List.iter
              (fun (id, ty, loc) ->
                let path =
                  match prefix with
                  | "" -> Ident.name id
                  | p -> p ^ "." ^ Ident.name id
                in
                (match classify_type ~known ~ctx ty with
                | Some kind ->
                    globals :=
                      {
                        I.g_module = unit_mod;
                        g_name = path;
                        g_file = file;
                        g_line = line_of loc;
                        g_col = col_of loc;
                        g_type = print_type ty;
                        g_kind = kind;
                        g_safe = I.kind_is_safe kind;
                      }
                      :: !globals
                | None -> ());
                if is_arrow ty then begin
                  let fname = path in
                  let refs, writes, local_mut =
                    walk_body ~fname vb.Typedtree.vb_expr
                  in
                  let ret_ty = result_type ty in
                  let ret =
                    sort_uniq_strings (type_mentions ret_ty)
                  in
                  let ret_kind =
                    match classify_type ~known ~ctx ret_ty with
                    | Some k when not (I.kind_is_safe k) ->
                        Some (I.kind_to_string k)
                    | _ -> None
                  in
                  funcs :=
                    {
                      I.f_module = unit_mod;
                      f_name = fname;
                      f_line = line_of loc;
                      f_refs = refs;
                      f_ret_mentions = ret;
                      f_writes = writes;
                      f_local_mut = local_mut;
                      f_takes_ws =
                        List.mem "Workspace.t" (arg_mentions ty);
                      f_ret_kind = ret_kind;
                    }
                    :: !funcs
                end)
              (pat_vars vb.Typedtree.vb_pat))
          vbs
    | Tstr_module mb -> item_mb prefix mb
    | Tstr_recmodule mbs -> List.iter (item_mb prefix) mbs
    | _ -> ()
  and item_mb prefix (mb : Typedtree.module_binding) =
    match mb.mb_id with
    | Some id ->
        let sub =
          match prefix with
          | "" -> Ident.name id
          | p -> p ^ "." ^ Ident.name id
        in
        (* [module Io = Part_io]: an alias re-export *)
        (match module_path mb.mb_expr with
        | Some target -> aliases := (sub, target) :: !aliases
        | None -> ());
        let rec descend (me : Typedtree.module_expr) =
          match me.mod_desc with
          | Tmod_structure str -> items sub str.str_items
          | Tmod_constraint (inner, _, _, _) -> descend inner
          | _ -> ()
        in
        descend mb.mb_expr
    | None -> ()
  in
  items "" tu.tu_str.str_items;
  {
    I.u_module = unit_mod;
    u_file = file;
    u_front = I.Typed;
    u_has_mli = has_mli;
    u_globals = List.rev !globals;
    u_funcs = List.rev !funcs;
    u_escapes = List.rev !escapes;
    u_obs_emits = List.rev !emits;
    u_random_uses = List.rev !randoms;
    u_aliases = List.rev !aliases;
  }
