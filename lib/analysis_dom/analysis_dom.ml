(* Root module of the domain-safety analyzer: pure re-exports. *)

module Ir = Ir
module Front_typed = Front_typed
module Front_parse = Front_parse
module Callgraph = Callgraph
module Effects = Effects
module Dom_rules = Dom_rules
module Inventory = Inventory
module Driver = Driver
