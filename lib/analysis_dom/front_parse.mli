(** The Parsetree fallback front: lower raw source to {!Ir.unit_ir}
    without a type environment.

    A syntactic approximation of the typed front, used when the build
    produced no readable [.cmt] for a source file and for self-contained
    fixture tests.  Bindings are classified by initializer shape
    ([ref e], [Hashtbl.create n], [lazy e], explicit type constraints)
    and by same-file [mutable]-record declarations; references resolve
    bare names against the file's own toplevel bindings only. *)

val parse_string :
  file:string -> string -> (Parsetree.structure, string) result
(** Parse source text.  [Error line] carries a one-line rendering of the
    syntax error; never raises. *)

val extract :
  file:string -> has_mli:bool -> Parsetree.structure -> Ir.unit_ir
(** Lower one parsed unit.  [file] is the root-relative path; the unit's
    module name is derived from it the way dune does. *)
