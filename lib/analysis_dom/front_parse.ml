(* The Parsetree fallback front: lower raw source text to {!Ir.unit_ir}
   without a type environment.

   Used for sources the build did not produce a (readable) [.cmt] for —
   a unit excluded from the current dune profile, or a fixture analyzed
   standalone in tests.  Everything here is a syntactic approximation of
   what the typed front proves:

   - a module-level binding is classified by the shape of its
     initializer ([ref e], [Hashtbl.create n], [Array.make ...],
     [lazy e], an explicit [: Workspace.t] constraint, ...) and by
     record types with [mutable] fields declared in the same file;
   - identifier references are longident text, so bare names are
     resolved against the file's own toplevel bindings and dotted names
     are taken at face value;
   - escape checks look for ownership-constructor calls
     ([Workspace.create ...], [Rng.create ...]) in the stored
     expression, since no types exist to consult.

   The driver records which front produced each unit so reports can say
   when a unit was only syntactically covered. *)

module I = Ir

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let lid_to_string lid = String.concat "." (Longident.flatten lid)

(* Module name from a source filename, the way dune derives it. *)
let module_of_filename file =
  let base = Filename.remove_extension (Filename.basename file) in
  String.capitalize_ascii base

(* ---- classification by initializer shape -------------------------------- *)

(* Constructor functions that pin down the kind of the bound value. *)
let kind_of_construction name : I.kind option =
  match name with
  | "ref" -> Some I.Ref
  | "Hashtbl.create" -> Some I.Hashtbl_poly
  | "Array.make" | "Array.create" | "Array.init" | "Array.copy"
  | "Array.of_list" | "Array.append" | "Array.make_matrix" ->
      Some I.Array
  | "Bytes.create" | "Bytes.make" | "Bytes.init" | "Bytes.of_string" ->
      Some I.Bytes
  | "Atomic.make" -> Some I.Atomic
  | "Mutex.create" -> Some I.Mutex
  | "Queue.create" | "Stack.create" | "Buffer.create" -> Some I.Container
  | _ ->
      if I.ends_with_path ~suffix:"Workspace.create" name then Some I.Workspace
      else if
        I.ends_with_path ~suffix:"Rng.create" name
        || I.ends_with_path ~suffix:"Rng.split" name
        || name = "Random.State.make" || name = "Random.State.make_self_init"
        || name = "Random.get_state"
      then Some I.Rng
      else if
        I.ends_with_path ~suffix:"Counter.make" name
        || I.ends_with_path ~suffix:"Gauge.make" name
        || I.ends_with_path ~suffix:"Histogram.make" name
      then Some I.Obs_handle
      else None

let rec classify_expr ~local_mutable (e : Parsetree.expression) :
    (I.kind * string) option =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      let name = lid_to_string txt in
      match kind_of_construction name with
      | Some k -> Some (k, name ^ " ...")
      | None ->
          (* a record literal of a locally-declared mutable record *)
          None)
  | Pexp_record (fields, _) ->
      let field_names =
        List.filter_map
          (fun ((lid : Longident.t Asttypes.loc), _) ->
            match Longident.flatten lid.txt with
            | [ f ] -> Some f
            | parts -> (
                match List.rev parts with f :: _ -> Some f | [] -> None))
          (List.map (fun (l, e) -> (l, e)) fields)
      in
      if
        List.exists
          (fun (_, muts) -> List.exists (fun f -> List.mem f muts) field_names)
          local_mutable
      then Some (I.Mutable_record, "{ ... } (mutable record literal)")
      else None
  | Pexp_lazy _ -> Some (I.Lazy, "lazy ...")
  | Pexp_array _ -> Some (I.Array, "[| ... |]")
  | Pexp_constraint (inner, ct) -> (
      match kind_of_core_type ct with
      | Some k -> Some (k, core_type_hint ct)
      | None -> classify_expr ~local_mutable inner)
  | Pexp_tuple es ->
      List.find_map (fun e -> classify_expr ~local_mutable e) es
      |> Option.map (fun (k, hint) -> (I.container_of k, hint))
  | Pexp_fun _ | Pexp_function _ -> None
  | _ -> None

and kind_of_core_type (ct : Parsetree.core_type) : I.kind option =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) -> (
      let name = I.normalize_path (lid_to_string txt) in
      match I.classify_name name with
      | Some k -> Some k
      | None -> (
          match List.filter_map kind_of_core_type args with
          | [] -> None
          | k :: _ -> Some (I.container_of k)))
  | Ptyp_tuple ts -> (
      match List.filter_map kind_of_core_type ts with
      | [] -> None
      | k :: _ -> Some (I.container_of k))
  | _ -> None

and core_type_hint (ct : Parsetree.core_type) =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> lid_to_string txt
  | _ -> "(constraint)"

let is_function_binding (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype _ -> true
  | _ -> false

(* ---- shared name predicates (defined once in {!Ir}) --------------------- *)

let obs_emit_name = I.obs_emit_name
let random_global_name = I.random_global_name
let is_iterish = I.is_iterish
let is_store_fn = I.is_store_fn

(* Ownership-valued expressions, syntactically: a call to a constructor
   of an ownership type somewhere in the stored subtree, or a field
   projected out of a parameter constrained to [Workspace.t]
   ([ws_params]) — interior scratch escaping its owner. *)
let owned_mentions_in ~ws_params (e : Parsetree.expression) =
  let acc = ref [] in
  let expr (self : Ast_iterator.iterator) (ex : Parsetree.expression) =
    (match ex.pexp_desc with
    | Pexp_ident { txt; _ } | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
      -> (
        let name = lid_to_string txt in
        match kind_of_construction name with
        | Some I.Workspace -> acc := "Workspace.t" :: !acc
        | Some I.Rng -> acc := "Rng.t" :: !acc
        | _ -> ())
    | Pexp_field ({ pexp_desc = Pexp_ident { txt = Lident name; _ }; _ }, _)
      when List.mem name ws_params ->
        acc := "Workspace interior" :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.expr self ex
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  List.sort_uniq String.compare !acc

(* ---- extraction --------------------------------------------------------- *)

let rec pat_vars (p : Parsetree.pattern) : (string * Location.t) list =
  match p.ppat_desc with
  | Ppat_var { txt; loc } -> [ (txt, loc) ]
  | Ppat_alias (sub, { txt; loc }) -> (txt, loc) :: pat_vars sub
  | Ppat_tuple ps -> List.concat_map pat_vars ps
  | Ppat_constraint (sub, _) -> pat_vars sub
  | Ppat_construct (_, Some (_, sub)) -> pat_vars sub
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | _ -> []

(* Constraint attached to a binding pattern, if any. *)
let rec pat_constraint (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_constraint (_, ct) -> Some ct
  | Ppat_alias (sub, _) -> pat_constraint sub
  | _ -> None

(* Does a core type mention Workspace.t anywhere? *)
let rec core_mentions_ws (ct : Parsetree.core_type) =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) ->
      I.ends_with_path ~suffix:"Workspace.t"
        (I.normalize_path (lid_to_string txt))
      || List.exists core_mentions_ws args
  | Ptyp_tuple ts -> List.exists core_mentions_ws ts
  | Ptyp_arrow (_, a, b) -> core_mentions_ws a || core_mentions_ws b
  | _ -> false

let rec core_result (ct : Parsetree.core_type) =
  match ct.ptyp_desc with
  | Ptyp_arrow (_, _, r) -> core_result r
  | _ -> ct

(* Walk a function binding's parameter chain: names of parameters
   constrained to a type mentioning Workspace.t, and the final body. *)
let fun_params (e : Parsetree.expression) =
  let ws = ref [] and takes_ws = ref false in
  let rec go (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, pat, body) ->
        (match (pat_constraint pat, pat_vars pat) with
        | Some ct, (name, _) :: _ when core_mentions_ws ct ->
            takes_ws := true;
            ws := name :: !ws
        | _ -> ());
        go body
    | _ -> e
  in
  let body = go e in
  (!ws, !takes_ws, body)

let extract ~file ~has_mli (str : Parsetree.structure) : I.unit_ir =
  let unit_mod = module_of_filename file in
  (* Locally-declared record types with mutable fields:
     (type_name, mutable_field_names). *)
  let local_mutable = ref [] in
  let rec scan_types prefix (items : Parsetree.structure_item list) =
    List.iter
      (fun (it : Parsetree.structure_item) ->
        match it.pstr_desc with
        | Pstr_type (_, decls) ->
            List.iter
              (fun (d : Parsetree.type_declaration) ->
                match d.ptype_kind with
                | Ptype_record lbls ->
                    let muts =
                      List.filter_map
                        (fun (l : Parsetree.label_declaration) ->
                          if l.pld_mutable = Asttypes.Mutable then
                            Some l.pld_name.txt
                          else None)
                        lbls
                    in
                    if muts <> [] then
                      local_mutable :=
                        (prefix ^ d.ptype_name.txt, muts) :: !local_mutable
                | _ -> ())
              decls
        | Pstr_module mb -> scan_mb prefix mb
        | Pstr_recmodule mbs -> List.iter (scan_mb prefix) mbs
        | _ -> ())
      items
  and scan_mb prefix (mb : Parsetree.module_binding) =
    match mb.pmb_name.txt with
    | Some name -> scan_me (prefix ^ name ^ ".") mb.pmb_expr
    | None -> ()
  and scan_me prefix (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure items -> scan_types prefix items
    | Pmod_constraint (inner, _) -> scan_me prefix inner
    | _ -> ()
  in
  scan_types "" str;
  let local_mutable = !local_mutable in
  (* Pass A: the file's own toplevel binding names, for bare-ident
     resolution inside function bodies. *)
  let toplevel = ref [] in
  let rec names prefix (items : Parsetree.structure_item list) =
    List.iter
      (fun (it : Parsetree.structure_item) ->
        match it.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                List.iter
                  (fun (n, _) -> toplevel := (prefix ^ n) :: !toplevel)
                  (pat_vars vb.pvb_pat))
              vbs
        | Pstr_module mb -> names_mb prefix mb
        | Pstr_recmodule mbs -> List.iter (names_mb prefix) mbs
        | _ -> ())
      items
  and names_mb prefix (mb : Parsetree.module_binding) =
    match mb.pmb_name.txt with
    | Some name -> names_me (prefix ^ name ^ ".") mb.pmb_expr
    | None -> ()
  and names_me prefix (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure items -> names prefix items
    | Pmod_constraint (inner, _) -> names_me prefix inner
    | _ -> ()
  in
  names "" str;
  let toplevel = !toplevel in
  let globals = ref []
  and funcs = ref []
  and escapes = ref []
  and emits = ref []
  and randoms = ref [] in
  let is_module_global (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } -> (
        match Longident.flatten txt with
        | [ name ] -> List.mem name toplevel
        | _ :: _ :: _ -> true
        | [] -> false)
    | _ -> false
  in
  let walk_body ~fname ~ws_params (body : Parsetree.expression) =
    let refs = ref [] in
    let writes = ref [] in
    let local_mut = ref false in
    let rec mutation_root (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_field (r, _) -> mutation_root r
      | _ -> e
    in
    let note_mutation subject =
      let root = mutation_root subject in
      match root.Parsetree.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match Longident.flatten txt with
          | [ name ] ->
              if List.mem name toplevel then
                writes := (unit_mod ^ "." ^ name) :: !writes
              else local_mut := true
          | _ :: _ :: _ ->
              writes := I.normalize_path (lid_to_string txt) :: !writes
          | [] -> ())
      | _ -> ()
    in
    let loop_depth = ref 0 in
    let in_loop f =
      incr loop_depth;
      Fun.protect ~finally:(fun () -> decr loop_depth) f
    in
    let record_name name loc =
      (match String.split_on_char '.' name with
      | [ bare ] ->
          if List.mem bare toplevel then refs := (unit_mod ^ "." ^ bare) :: !refs
      | _ -> refs := I.normalize_path name :: !refs);
      let name = I.normalize_path name in
      if random_global_name name then
        randoms :=
          {
            I.ru_fun = fname;
            ru_name = name;
            ru_line = line_of loc;
            ru_col = col_of loc;
          }
          :: !randoms;
      if obs_emit_name name && !loop_depth > 0 then
        emits :=
          {
            I.oe_fun = fname;
            oe_name = name;
            oe_line = line_of loc;
            oe_col = col_of loc;
          }
          :: !emits
    in
    let record_escape ~loc ~desc mentions =
      List.iter
        (fun what ->
          escapes :=
            {
              I.esc_fun = fname;
              esc_what = what;
              esc_line = line_of loc;
              esc_col = col_of loc;
              esc_desc = desc;
            }
            :: !escapes)
        mentions
    in
    let rec expr (self : Ast_iterator.iterator) (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_ident { txt; loc } -> record_name (lid_to_string txt) loc
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
          let name = lid_to_string txt in
          record_name name loc;
          let plain () = List.iter (fun (_, a) -> expr self a) args in
          (match (name, args) with
          | ":=", [ (_, lhs); (_, rhs) ] ->
              note_mutation lhs;
              if is_module_global lhs then
                record_escape ~loc:e.pexp_loc
                  ~desc:"stored through := into a module-global ref"
                  (owned_mentions_in ~ws_params rhs);
              plain ()
          | _ when I.mutates_subject_fn name ->
              (match args with
              | (_, subject) :: rest ->
                  note_mutation subject;
                  if is_store_fn name && is_module_global subject then
                    List.iter
                      (fun (_, a) ->
                        record_escape ~loc:e.pexp_loc
                          ~desc:
                            (Printf.sprintf "stored via %s into module state"
                               name)
                          (owned_mentions_in ~ws_params a))
                      rest
              | _ -> ());
              plain ()
          | _ when is_iterish name ->
              List.iter
                (fun (_, a) ->
                  match a.Parsetree.pexp_desc with
                  | Pexp_fun _ | Pexp_function _ ->
                      in_loop (fun () -> expr self a)
                  | _ -> expr self a)
                args
          | _ -> plain ())
      | Pexp_setfield (obj, _, rhs) ->
          note_mutation obj;
          if is_module_global obj then
            record_escape ~loc:e.pexp_loc
              ~desc:"stored via <- into a module-global record"
              (owned_mentions_in ~ws_params rhs);
          Ast_iterator.default_iterator.expr self e
      | Pexp_for (_, lo, hi, _, body) ->
          expr self lo;
          expr self hi;
          in_loop (fun () -> expr self body)
      | Pexp_while (cond, body) ->
          expr self cond;
          in_loop (fun () -> expr self body)
      | _ -> Ast_iterator.default_iterator.expr self e
    in
    let it = { Ast_iterator.default_iterator with expr } in
    it.expr it body;
    (List.sort_uniq String.compare !refs,
     List.sort_uniq String.compare !writes,
     !local_mut)
  in
  (* Pass B: classify bindings, lower functions. *)
  let aliases = ref [] in
  let rec module_path (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_ident { txt; _ } -> Some (I.normalize_path (lid_to_string txt))
    | Pmod_constraint (inner, _) -> module_path inner
    | _ -> None
  in
  let rec items prefix (list : Parsetree.structure_item list) =
    List.iter (item prefix) list
  and item prefix (it : Parsetree.structure_item) =
    match it.pstr_desc with
    | Pstr_include incl -> (
        (* [include Hg] re-exports Hg's values under this path;
           strip the trailing '.' the walk keeps on prefixes *)
        let owner =
          if prefix = "" then ""
          else String.sub prefix 0 (String.length prefix - 1)
        in
        match module_path incl.pincl_mod with
        | Some target -> aliases := (owner, target) :: !aliases
        | None -> ())
    | Pstr_value (_, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let vars = pat_vars vb.pvb_pat in
            let classified =
              if is_function_binding vb.pvb_expr then None
              else
                match pat_constraint vb.pvb_pat with
                | Some ct -> (
                    match kind_of_core_type ct with
                    | Some k -> Some (k, core_type_hint ct)
                    | None -> classify_expr ~local_mutable vb.pvb_expr)
                | None -> classify_expr ~local_mutable vb.pvb_expr
            in
            (match (classified, vars) with
            | Some (kind, hint), (name, loc) :: _ ->
                globals :=
                  {
                    I.g_module = unit_mod;
                    g_name = prefix ^ name;
                    g_file = file;
                    g_line = line_of loc;
                    g_col = col_of loc;
                    g_type = hint;
                    g_kind = kind;
                    g_safe = I.kind_is_safe kind;
                  }
                  :: !globals
            | _ -> ());
            if is_function_binding vb.pvb_expr then
              List.iter
                (fun (name, loc) ->
                  let fname = prefix ^ name in
                  let ws_params, takes_ws, _body = fun_params vb.pvb_expr in
                  let refs, writes, local_mut =
                    walk_body ~fname ~ws_params vb.pvb_expr
                  in
                  let ret_kind =
                    match pat_constraint vb.pvb_pat with
                    | Some ct -> (
                        match kind_of_core_type (core_result ct) with
                        | Some k when not (I.kind_is_safe k) ->
                            Some (I.kind_to_string k)
                        | _ -> None)
                    | None -> None
                  in
                  funcs :=
                    {
                      I.f_module = unit_mod;
                      f_name = fname;
                      f_line = line_of loc;
                      f_refs = refs;
                      (* no types: result-type ownership mentions are
                         typed-front-only *)
                      f_ret_mentions = [];
                      f_writes = writes;
                      f_local_mut = local_mut;
                      f_takes_ws = takes_ws;
                      f_ret_kind = ret_kind;
                    }
                    :: !funcs)
                vars)
          vbs
    | Pstr_module mb -> item_mb prefix mb
    | Pstr_recmodule mbs -> List.iter (item_mb prefix) mbs
    | _ -> ()
  and item_mb prefix (mb : Parsetree.module_binding) =
    match mb.pmb_name.txt with
    | Some name ->
        (* [module Io = Part_io]: an alias re-export *)
        (match module_path mb.pmb_expr with
        | Some target -> aliases := (prefix ^ name, target) :: !aliases
        | None -> ());
        item_me (prefix ^ name ^ ".") mb.pmb_expr
    | None -> ()
  and item_me prefix (me : Parsetree.module_expr) =
    match me.pmod_desc with
    | Pmod_structure sub -> items prefix sub
    | Pmod_constraint (inner, _) -> item_me prefix inner
    | _ -> ()
  in
  items "" str;
  {
    I.u_module = unit_mod;
    u_file = file;
    u_front = I.Parsetree_only;
    u_has_mli = has_mli;
    u_globals = List.rev !globals;
    u_funcs = List.rev !funcs;
    u_escapes = List.rev !escapes;
    u_obs_emits = List.rev !emits;
    u_random_uses = List.rev !randoms;
    u_aliases = List.rev !aliases;
  }

(* Parse a source string; [Error] is a syntax error rendered as one line
   (the DOM00 fallback-parse diagnostic). *)
let parse_string ~file contents =
  let lexbuf = Lexing.from_string contents in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | str -> Ok str
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok err) ->
          let rendered = Format.asprintf "%a" Location.print_report err in
          let first_line =
            match String.split_on_char '\n' (String.trim rendered) with
            | l :: _ -> l
            | [] -> rendered
          in
          Error first_line
      | _ -> Error (Printexc.to_string exn))
