(** HyperDAG audit (Definition 3.2, Lemmas B.1 and B.2).

    Cross-checks the recognizer, generator assignments and the Lemma B.1
    certificate against each other: a claimed generator must be injective,
    member-of-its-edge and acyclic; a [violating_subset] certificate must
    induce a subgraph of minimum degree ≥ 2; and exactly one of the two
    must exist for any hypergraph. *)

val rules : (string * string) list

val audit : ?generator:int array -> Hypergraph.t -> Check.report
(** Always cross-checks [recognize] against [violating_subset]; with
    [generator], additionally audits that claimed assignment. *)
