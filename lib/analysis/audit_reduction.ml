(* Output-shape audits for the reduction builders (Appendices A, C, D, H
   and Theorem 5.5).  Each audit re-derives the claimed correspondence on
   concrete data: embedded solutions must be balanced, cost exactly what
   the lemma says they cost, and survive the extract cleanup. *)

module Check = Analysis_core.Check
module Audit_hg = Analysis_core.Audit_hg
module Audit_partition = Analysis_core.Audit_partition

let rules =
  [
    ( "RED-SPES-BALANCE",
      "embedded SpES selection stays within the gadget capacity (Lemma C.1 \
       block sizing)" );
    ( "RED-SPES-COST",
      "cost of the embedded selection = covered vertices (Thm 4.1 / Lemma \
       C.1 OPT correspondence)" );
    ( "RED-SPES-ROUNDTRIP",
      "extract recovers the embedded edge selection (Lemma C.1 cleanup)" );
    ( "RED-DELTA2-DEG",
      "grid-gadget construction has max degree <= 2 (Lemma C.6)" );
    ( "RED-DELTA2-HYPERDAG",
      "padded grid construction is a hyperDAG (Appendix C.3)" );
    ("RED-MPU-COST", "embedded MpU selection costs |union| (Appendix C.5)");
    ( "RED-MPU-ROUNDTRIP",
      "extract recovers the embedded MpU selection (Appendix C.5)" );
    ( "RED-EPS-SHAPE",
      "Lemma A.1 padding adds isolated unit-weight nodes only" );
    ( "RED-EPS-COST",
      "extend / restrict preserve cost exactly and round-trip (Lemma A.1)" );
    ( "RED-3DM-TOPO",
      "assignment instance has a depth-2 topology with b2 = 3 over k = 3q \
       part-nodes (Lemma H.2)" );
    ( "RED-3DM-GAIN",
      "a perfect matching embeds to an assignment achieving the target \
       gain (Lemma H.2)" );
    ( "RED-SCHED-TARGET",
      "a 3-partition solution embeds to a valid zero-idle schedule of \
       makespan n/2 on the fixed assignment (Thm 5.5)" );
    ("RED-HDNP-DAG", "Lemma B.3 output is a hyperDAG with eps' > 0");
    ( "RED-HDNP-COST",
      "Lemma B.3 extend preserves connectivity cost exactly" );
  ]

let sorted_copy a =
  let c = Array.copy a in
  Array.sort Int.compare c;
  c

(* SpES objective of a selection, from the source graph directly. *)
let covered_vertices graph selection =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun e ->
      let u, v = (Npc.Graph.edges graph).(e) in
      Hashtbl.replace seen u ();
      Hashtbl.replace seen v ())
    selection;
  Hashtbl.length seen

let heaviest_part hg part =
  Array.fold_left max 0 (Partition.part_weights hg part)

let spes_common ctx ~graph ~selection ~hg ~capacity ~embed ~extract =
  let part = embed selection in
  Check.rule ctx ~id:"RED-SPES-BALANCE"
    (heaviest_part hg part <= capacity)
    (fun () ->
      Printf.sprintf "embedded partition has a part of weight %d > capacity %d"
        (heaviest_part hg part) capacity);
  let cost = Audit_partition.recompute_cost Partition.Cut_net hg part in
  let covered = covered_vertices graph selection in
  Check.rule ctx ~id:"RED-SPES-COST" (cost = covered) (fun () ->
      Printf.sprintf "embedded cost %d but the selection covers %d vertices"
        cost covered);
  Check.rule ctx ~id:"RED-SPES-ROUNDTRIP"
    (sorted_copy (extract part) = sorted_copy selection)
    (fun () -> "extract does not recover the embedded edge selection")

let audit_spes ~graph ~selection red =
  let hg = Reductions.Spes_to_partition.hypergraph red in
  let ctx = Check.create ~subject:"SpES -> partition (Lemma C.1)" in
  spes_common ctx ~graph ~selection ~hg
    ~capacity:(Reductions.Spes_to_partition.capacity red)
    ~embed:(Reductions.Spes_to_partition.embed red)
    ~extract:(Reductions.Spes_to_partition.extract red);
  Check.merge ~subject:"SpES -> partition (Lemma C.1)"
    [ Audit_hg.audit hg; Check.report ctx ]

let audit_spes_delta2 ~graph ~hyperdag ~selection red =
  let hg = Reductions.Spes_delta2.hypergraph red in
  let ctx = Check.create ~subject:"SpES -> partition, Delta=2 (Lemma C.6)" in
  spes_common ctx ~graph ~selection ~hg
    ~capacity:(Reductions.Spes_delta2.capacity red)
    ~embed:(Reductions.Spes_delta2.embed red)
    ~extract:(Reductions.Spes_delta2.extract red);
  Check.rule ctx ~id:"RED-DELTA2-DEG"
    (Hypergraph.max_degree hg <= 2)
    (fun () ->
      Printf.sprintf "max degree %d > 2" (Hypergraph.max_degree hg));
  if hyperdag then
    Check.rule ctx ~id:"RED-DELTA2-HYPERDAG"
      (Hyperdag.is_hyperdag hg)
      (fun () -> "padded construction is not a hyperDAG");
  Check.merge ~subject:"SpES -> partition, Delta=2 (Lemma C.6)"
    [ Audit_hg.audit hg; Check.report ctx ]

let audit_mpu ~selection red =
  let hg = Reductions.Mpu_to_partition.hypergraph red in
  let ctx = Check.create ~subject:"MpU -> partition (Appendix C.5)" in
  let part = Reductions.Mpu_to_partition.embed red selection in
  let cost = Audit_partition.recompute_cost Partition.Cut_net hg part in
  let union = Reductions.Mpu_to_partition.union_size red selection in
  Check.rule ctx ~id:"RED-MPU-COST" (cost = union) (fun () ->
      Printf.sprintf "embedded cost %d but the union has size %d" cost union);
  Check.rule ctx ~id:"RED-MPU-ROUNDTRIP"
    (sorted_copy (Reductions.Mpu_to_partition.extract red part)
    = sorted_copy selection)
    (fun () -> "extract does not recover the embedded selection");
  Check.merge ~subject:"MpU -> partition (Appendix C.5)"
    [ Audit_hg.audit hg; Check.report ctx ]

let audit_eps_reduction original part red =
  let padded = Reductions.Eps_reduction.padded red in
  let ctx = Check.create ~subject:"eps-reduction (Lemma A.1)" in
  let n = Hypergraph.num_nodes original in
  let n' = Hypergraph.num_nodes padded in
  let shape_ok =
    n' >= n
    && Hypergraph.num_edges padded = Hypergraph.num_edges original
    &&
    let ok = ref true in
    for v = n to n' - 1 do
      if Hypergraph.node_degree padded v <> 0 || Hypergraph.node_weight padded v <> 1
      then ok := false
    done;
    !ok
  in
  Check.rule ctx ~id:"RED-EPS-SHAPE" shape_ok (fun () ->
      "padding changed edges or added non-isolated / non-unit nodes");
  let extended = Reductions.Eps_reduction.extend red part in
  let back = Reductions.Eps_reduction.restrict red extended in
  let cost p hg = Audit_partition.recompute_cost Partition.Connectivity hg p in
  Check.rule ctx ~id:"RED-EPS-COST"
    (cost part original = cost extended padded && Partition.equal back part)
    (fun () ->
      Printf.sprintf "cost %d became %d after extension, or restrict lost it"
        (cost part original) (cost extended padded));
  Check.merge ~subject:"eps-reduction (Lemma A.1)"
    [ Audit_hg.audit padded; Check.report ctx ]

let audit_three_dm ~matching red =
  let topo = Reductions.Assignment_from_three_dm.topology red in
  let hg = Reductions.Assignment_from_three_dm.hypergraph red in
  let ctx = Check.create ~subject:"3DM -> assignment (Lemma H.2)" in
  let b = Hierarchy.Topology.branching topo in
  Check.rule ctx ~id:"RED-3DM-TOPO"
    (Array.length b = 2
    && b.(1) = 3
    && Hierarchy.Topology.num_leaves topo = Hypergraph.num_nodes hg
    && Hypergraph.num_nodes hg mod 3 = 0)
    (fun () ->
      Printf.sprintf "topology is not (q, 3) over k = %d part-nodes"
        (Hypergraph.num_nodes hg));
  (match matching with
  | None -> ()
  | Some m ->
      let leaf_assignment = Reductions.Assignment_from_three_dm.embed red m in
      let gain = Reductions.Assignment_from_three_dm.gain red leaf_assignment in
      let target = Reductions.Assignment_from_three_dm.target_gain red in
      Check.rule ctx ~id:"RED-3DM-GAIN" (gain = target) (fun () ->
          Printf.sprintf "matching embeds to gain %d, target %d" gain target));
  Check.merge ~subject:"3DM -> assignment (Lemma H.2)"
    [ Audit_hg.audit hg; Check.report ctx ]

let audit_sched_three_partition ~solution red =
  let dag = Reductions.Sched_from_three_partition.dag red in
  let assignment = Reductions.Sched_from_three_partition.assignment red in
  let sched = Reductions.Sched_from_three_partition.embed red solution in
  let ctx = Check.create ~subject:"3-Partition -> mu_p (Thm 5.5)" in
  Check.rule ctx ~id:"RED-SCHED-TARGET"
    (Scheduling.Schedule.makespan sched
     = Reductions.Sched_from_three_partition.target red)
    (fun () ->
      Printf.sprintf "embedded makespan %d, target %d"
        (Scheduling.Schedule.makespan sched)
        (Reductions.Sched_from_three_partition.target red));
  Check.merge ~subject:"3-Partition -> mu_p (Thm 5.5)"
    [
      Audit_schedule.audit ~k:2 ~assignment dag sched;
      Check.report ctx;
    ]

let audit_hyperdag_np_hard ~original ~part red =
  let hg = Reductions.Hyperdag_np_hard.hypergraph red in
  let ctx = Check.create ~subject:"hyperDAG NP-hardness (Lemma B.3)" in
  Check.rule ctx ~id:"RED-HDNP-DAG"
    (Hyperdag.is_hyperdag hg && Reductions.Hyperdag_np_hard.eps' red > 0.0)
    (fun () -> "derived instance is not a hyperDAG with eps' > 0");
  let extended = Reductions.Hyperdag_np_hard.extend red part in
  let cost p g = Audit_partition.recompute_cost Partition.Connectivity g p in
  Check.rule ctx ~id:"RED-HDNP-COST"
    (cost part original = cost extended hg)
    (fun () ->
      Printf.sprintf "cost %d became %d on the hyperDAG instance"
        (cost part original) (cost extended hg));
  Check.merge ~subject:"hyperDAG NP-hardness (Lemma B.3)"
    [ Audit_hg.audit hg; Check.report ctx ]
