(** Output-shape audit for the reduction builders of [lib/reductions].

    Each function takes a built reduction plus the source-instance data
    needed to evaluate the claimed correspondence (a selection of edges, a
    matching, …) and checks the structural guarantees of the appendix
    that defines the construction: gadget sizes and degrees, balance of
    embedded solutions, and the cost equalities (OPT correspondences) that
    make the reduction a reduction. *)

val rules : (string * string) list

val audit_spes :
  graph:Npc.Graph.t ->
  selection:int array ->
  Reductions.Spes_to_partition.t ->
  Check.report
(** Theorem 4.1 / Lemma C.1 block-gadget reduction: the embedded selection
    must be balanced within the construction's capacity, cost exactly the
    covered vertices, and round-trip through [extract]. *)

val audit_spes_delta2 :
  graph:Npc.Graph.t ->
  hyperdag:bool ->
  selection:int array ->
  Reductions.Spes_delta2.t ->
  Check.report
(** Lemma C.6 grid-gadget form: additionally Δ ≤ 2, and a hyperDAG when
    built with [~hyperdag:true] (Appendix C.3). *)

val audit_mpu :
  selection:int array -> Reductions.Mpu_to_partition.t -> Check.report
(** Appendix C.5 Minimum p-Union form: embedded cost = |union|. *)

val audit_eps_reduction :
  Hypergraph.t -> Partition.t -> Reductions.Eps_reduction.t -> Check.report
(** Lemma A.1: padding is isolated-nodes-only and [extend]/[restrict]
    preserve cost exactly. *)

val audit_three_dm :
  matching:(int * int * int) list option ->
  Reductions.Assignment_from_three_dm.t ->
  Check.report
(** Lemma H.2: depth-2 topology with b₂ = 3, k = 3q part-nodes, and a
    perfect matching embeds to an assignment achieving the target gain. *)

val audit_sched_three_partition :
  solution:(int * int * int) list ->
  Reductions.Sched_from_three_partition.t ->
  Check.report
(** Theorem 5.5: a 3-partition solution embeds to a valid schedule on the
    fixed processor assignment with the zero-idle makespan n/2. *)

val audit_hyperdag_np_hard :
  original:Hypergraph.t ->
  part:Partition.t ->
  Reductions.Hyperdag_np_hard.t ->
  Check.report
(** Lemma B.3: the derived instance is a hyperDAG and [extend] preserves
    connectivity cost exactly. *)
