(* Re-export of the framework from analysis_core, so the auditor
   interfaces in this library can say [Check.report].  [include] of a
   module path preserves type equalities: [Check.report] here and
   [Analysis_core.Check.report] are the same type. *)

include Analysis_core.Check
