(* Schedule audit: Definition 5.3 (unit tasks, k processors, strict
   precedence) and the work / critical-path accounting that lower-bounds
   the optimal makespan mu (Section 5.2). *)

module Check = Analysis_core.Check

let rules =
  [
    ( "SCHED-SHAPE",
      "one (processor, 1-based step) pair per node, processors in [0, k) \
       (Def 5.3)" );
    ("SCHED-SLOT", "no two nodes share a (processor, step) slot (Def 5.3)");
    ( "SCHED-PREC",
      "every DAG edge (u, v) has t(u) < t(v) (Def 5.3)" );
    ( "SCHED-MAKESPAN",
      "claimed makespan equals the recomputed max time step (Sec 5.2)" );
    ( "SCHED-WORK-LB",
      "makespan >= ceil(n / k): the work lower bound on mu (Sec 5.2)" );
    ( "SCHED-CP-LB",
      "makespan >= critical path length: the depth lower bound on mu \
       (Sec 5.2)" );
    ( "SCHED-RESPECTS",
      "schedule uses the fixed node -> processor assignment of the mu_p \
       setting (Sec 5.2)" );
  ]

let audit ?k ?assignment ?claimed_makespan dag sched =
  Obs.Span.with_ "audit.schedule" @@ fun () ->
  let n = Hyperdag.Dag.num_nodes dag in
  let ctx =
    Check.create ~subject:(Printf.sprintf "schedule of dag n=%d" n)
  in
  let shape_ok =
    Scheduling.Schedule.num_nodes sched = n
    &&
    let ok = ref true in
    for v = 0 to n - 1 do
      if Scheduling.Schedule.time sched v < 1 then ok := false;
      match k with
      | Some k ->
          let p = Scheduling.Schedule.proc sched v in
          if p < 0 || p >= k then ok := false
      | None -> ()
    done;
    !ok
  in
  Check.rule ctx ~id:"SCHED-SHAPE" shape_ok (fun () ->
      Printf.sprintf "expected %d (proc, step>=1) pairs%s" n
        (match k with
        | Some k -> Printf.sprintf " with proc < %d" k
        | None -> ""));
  if shape_ok then begin
    let slots = Hashtbl.create (2 * n) in
    let collision = ref false in
    let max_time = ref 0 in
    for v = 0 to n - 1 do
      let slot =
        (Scheduling.Schedule.proc sched v, Scheduling.Schedule.time sched v)
      in
      if Hashtbl.mem slots slot then collision := true;
      Hashtbl.replace slots slot ();
      if snd slot > !max_time then max_time := snd slot
    done;
    Check.rule ctx ~id:"SCHED-SLOT" (not !collision) (fun () ->
        "two nodes share a (processor, step) slot");
    let prec_ok =
      List.for_all
        (fun (u, v) ->
          Scheduling.Schedule.time sched u < Scheduling.Schedule.time sched v)
        (Hyperdag.Dag.edges dag)
    in
    Check.rule ctx ~id:"SCHED-PREC" prec_ok (fun () ->
        "an edge does not strictly increase the time step");
    let makespan = if n = 0 then 0 else !max_time in
    Check.rule ctx ~id:"SCHED-MAKESPAN"
      (Scheduling.Schedule.makespan sched = makespan
      && match claimed_makespan with None -> true | Some c -> c = makespan)
      (fun () ->
        Printf.sprintf "claimed makespan %d, recomputed %d"
          (match claimed_makespan with
          | Some c -> c
          | None -> Scheduling.Schedule.makespan sched)
          makespan);
    (match k with
    | Some k when n > 0 ->
        Check.rule ctx ~id:"SCHED-WORK-LB"
          (makespan >= Support.Util.ceil_div n k)
          (fun () ->
            Printf.sprintf "makespan %d < ceil(%d / %d)" makespan n k)
    | _ -> ());
    if n > 0 then
      Check.rule ctx ~id:"SCHED-CP-LB"
        (makespan >= Hyperdag.Dag.critical_path_length dag)
        (fun () ->
          Printf.sprintf "makespan %d < critical path %d" makespan
            (Hyperdag.Dag.critical_path_length dag));
    match assignment with
    | Some a ->
        Check.rule ctx ~id:"SCHED-RESPECTS"
          (Array.length a = n
          &&
          let ok = ref true in
          Array.iteri
            (fun v p -> if Scheduling.Schedule.proc sched v <> p then ok := false)
            a;
          !ok)
          (fun () -> "schedule deviates from the fixed processor assignment")
    | None -> ()
  end;
  Check.report ctx
