(* HyperDAG audit: Definition 3.2 and the two certificates of Appendix B —
   a generator assignment (Lemma B.2) for yes-instances, an induced
   subgraph of minimum degree >= 2 (Lemma B.1) for no-instances. *)

module Check = Analysis_core.Check

let rules =
  [
    ( "HD-GEN-SHAPE",
      "generator assignment: one in-range generator per hyperedge, \
       injective, member of its edge (Def 3.2)" );
    ( "HD-GEN-VALID",
      "generator assignment is acyclic per Hd.valid_generator_assignment \
       (Lemma B.2)" );
    ( "HD-CERT-MINDEG",
      "violating subset induces a subgraph of min degree >= 2 (Lemma B.1)" );
    ( "HD-CERT-IFF",
      "recognizer and Lemma B.1 certificate are mutually exclusive and \
       exhaustive" );
  ]

let audit_generator ctx hg generator =
  let n = Hypergraph.num_nodes hg and m = Hypergraph.num_edges hg in
  let seen = Array.make n false in
  let shape_ok = ref (Array.length generator = m) in
  if !shape_ok then
    Array.iteri
      (fun e g ->
        if g < 0 || g >= n || seen.(g) then shape_ok := false
        else begin
          seen.(g) <- true;
          (* Membership, by linear scan. *)
          let found = ref false in
          Hypergraph.iter_pins hg e (fun v -> if v = g then found := true);
          if not !found then shape_ok := false
        end)
      generator;
  Check.rule ctx ~id:"HD-GEN-SHAPE" !shape_ok (fun () ->
      "generator assignment is not an injective edge -> member-node map");
  Check.rule ctx ~id:"HD-GEN-VALID"
    (Hyperdag.valid_generator_assignment hg generator)
    (fun () -> "generator assignment fails Hd.valid_generator_assignment")

let audit_certificate ctx hg cert =
  let n = Hypergraph.num_nodes hg in
  let distinct = Array.make n false in
  let well_formed =
    Array.length cert > 0
    && Array.for_all
         (fun v ->
           let ok = v >= 0 && v < n && not distinct.(v) in
           if ok then distinct.(v) <- true;
           ok)
         cert
  in
  let min_degree_ok =
    well_formed
    &&
    (* The paper's induced subgraph (Appendix B): keep exactly the
       hyperedges contained in the subset. *)
    let sub, _, _ = Hypergraph.induced_subgraph hg cert in
    let ok = ref true in
    for v = 0 to Hypergraph.num_nodes sub - 1 do
      if Hypergraph.node_degree sub v < 2 then ok := false
    done;
    !ok
  in
  Check.rule ctx ~id:"HD-CERT-MINDEG" min_degree_ok (fun () ->
      "certificate subset has an induced node of degree < 2")

let audit ?generator hg =
  Obs.Span.with_ "audit.hyperdag" @@ fun () ->
  let ctx =
    Check.create
      ~subject:
        (Printf.sprintf "hyperdag? n=%d m=%d" (Hypergraph.num_nodes hg)
           (Hypergraph.num_edges hg))
  in
  (match generator with
  | Some g -> audit_generator ctx hg g
  | None -> ());
  let recognized = Hyperdag.recognize hg in
  let cert = Hyperdag.violating_subset hg in
  (match recognized with
  | Some g -> audit_generator ctx hg g
  | None -> ());
  (match cert with Some c -> audit_certificate ctx hg c | None -> ());
  Check.rule ctx ~id:"HD-CERT-IFF"
    (match (recognized, cert) with
    | Some _, None | None, Some _ -> true
    | Some _, Some _ | None, None -> false)
    (fun () ->
      match recognized with
      | Some _ -> "recognized as hyperDAG yet a Lemma B.1 certificate exists"
      | None -> "not a hyperDAG but no Lemma B.1 certificate produced");
  Check.report ctx
