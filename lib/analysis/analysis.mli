(** Library root: the paper-grade invariant auditors.

    The framework ({!Check}), the CSR and partition audits and the
    ANALYSIS_DEBUG gate live in the [analysis_core] sub-library so that
    [lib/solvers] can self-audit without a dependency cycle; this root
    re-exports them next to the higher-layer auditors. *)

module Check = Analysis_core.Check
module Debug = Analysis_core.Debug
module Audit_hg = Analysis_core.Audit_hg
module Audit_partition = Analysis_core.Audit_partition
module Audit_hyperdag = Audit_hyperdag
module Audit_schedule = Audit_schedule
module Audit_reduction = Audit_reduction
module Audit_hierarchy = Audit_hierarchy

val catalogue : (string * string) list
(** The full audit-rule catalogue: rule id -> the paper definition /
    lemma the rule enforces (documented in README.md). *)
