(** CSR well-formedness audit for {!Hypergraph.t} (Section 3.1).

    Checks the invariants the immutable CSR representation promises:
    in-range strictly-sorted pin lists, an incidence structure that is the
    exact transpose of the pin lists, ρ agreement between both views, and
    positive weights.  Everything is recomputed through element-level
    accessors, never trusting derived queries. *)

val rules : (string * string) list
(** Rule id → the paper definition / representation invariant it enforces. *)

val audit : Hypergraph.t -> Check.report
