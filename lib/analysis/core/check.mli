(** Uniform checker framework for the invariant auditors.

    An audit evaluates named {e rules} against a subject and accumulates
    {e violations} into a structured {!report}.  Rule ids are stable
    strings (the catalogue in README.md maps each id to the paper
    definition or lemma it enforces), so callers can assert on the exact
    violation class rather than parse messages. *)

type severity = Error | Warning | Info

type violation = {
  rule : string;  (** stable rule id, e.g. ["HG-PIN-SORTED"] *)
  severity : severity;
  message : string;
}

type report = {
  subject : string;  (** what was audited, e.g. ["hypergraph n=5 m=3"] *)
  rules_run : int;  (** rule evaluations performed (passed or failed) *)
  violations : violation list;  (** in evaluation order *)
  timings : (string * float) list;
      (** seconds attributed to each rule id, in first-evaluation order.
          A rule's predicate is computed by the caller between consecutive
          {!rule} calls, so each entry is the wall-clock delta since the
          previous call, summed over re-evaluations of the same id. *)
}

(** {1 Accumulation} *)

type ctx
(** Mutable accumulator threaded through one audit. *)

val create : subject:string -> ctx

val rule :
  ctx -> ?severity:severity -> id:string -> bool -> (unit -> string) -> unit
(** [rule ctx ~id holds msg] records one evaluation of rule [id]; when
    [holds] is false the lazily-built [msg ()] becomes a violation
    ([severity] defaults to [Error]). *)

val violation : ctx -> ?severity:severity -> id:string -> string -> unit
(** Record a violation unconditionally (counts as one evaluation). *)

val report : ctx -> report

(** {1 Inspection} *)

val ok : report -> bool
(** No [Error]-severity violations ([Warning]/[Info] are allowed). *)

val clean : report -> bool
(** No violations of any severity. *)

val errors : report -> violation list
val violated_rules : report -> string list
(** Distinct rule ids with at least one violation, in evaluation order. *)

val has_violation : report -> string -> bool
(** Whether the given rule id was violated. *)

val merge : subject:string -> report list -> report
(** Combine sub-reports: evaluations and violations are summed, and each
    violation message is prefixed with its originating subject. *)

(** {1 Rendering} *)

val pp_severity : Format.formatter -> severity -> unit
val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> report -> unit

(** [pp_timings] renders the per-rule timing table (the [check --stats]
    output). *)
val pp_timings : Format.formatter -> report -> unit
val to_string : report -> string

val exit_code : report -> int
(** 0 iff {!ok}, 1 otherwise — the [hypartition check] convention. *)
