(* Partition audit (Definitions 3.1, 5.1, 6.1 and the Section 3.1 cost
   metrics), recomputed from first principles.  Deliberately avoids
   Partition.lambda / Partition.cost / Partition.capacity: the point is to
   catch bugs in exactly that code. *)

let rules =
  [
    ("PART-SHAPE", "assignment has length n with colors in [0, k) (Sec 3.1)");
    ( "PART-BALANCE",
      "every part weight <= (1+eps) * W / k, floored or ceiled per variant \
       (Def 3.1)" );
    ( "PART-COST",
      "claimed objective equals the independently recomputed cost (Sec 3.1)" );
    ( "PART-COST-BOUND",
      "recomputed cost is within a promised upper bound (decision-procedure \
       witnesses, Lemma 4.3)" );
    ( "PART-WEIGHTS-PRESERVED",
      "refinement preserved the entry part weights exactly (the eps = 0 \
       swap-refinement invariant)" );
    ( "PART-METRIC-SANDWICH",
      "cut-net <= connectivity <= (k-1) * cut-net (Sec 3.1)" );
    ("PART-LAYER", "every layer is eps-balanced separately (Def 5.1)");
    ( "PART-MC-DISJOINT",
      "multi-constraint subsets are pairwise disjoint (Def 6.1)" );
    ( "PART-MC-BALANCE",
      "|P_i inter V_j| <= (1+eps) * |V_j| / k for all i, j (Def 6.1)" );
  ]

(* Definition 3.1 capacity, restated here rather than calling
   Part.capacity. *)
let def31_capacity ~variant ~eps ~total_weight ~k =
  let exact = (1.0 +. eps) *. float_of_int total_weight /. float_of_int k in
  match (variant : Partition.balance) with
  | Strict -> int_of_float (floor (exact +. 1e-9))
  | Relaxed -> int_of_float (ceil (exact -. 1e-9))

(* lambda_e by sorting the pin colors: no scratch marks, no stamps. *)
let edge_lambda hg part e =
  let colors = Hypergraph.fold_pins hg e (fun acc v -> Partition.color part v :: acc) [] in
  List.length (List.sort_uniq Int.compare colors)

let recompute_cost metric hg part =
  let total = ref 0 in
  for e = 0 to Hypergraph.num_edges hg - 1 do
    let l = edge_lambda hg part e in
    let w = Hypergraph.edge_weight hg e in
    (match (metric : Partition.metric) with
    | Cut_net -> if l > 1 then total := !total + w
    | Connectivity -> total := !total + (w * (l - 1)))
  done;
  !total

type claim = { metric : Partition.metric; cost : int }

let metric_name : Partition.metric -> string = function
  | Cut_net -> "cut-net"
  | Connectivity -> "connectivity"

let audit ?eps ?(variant = Partition.Strict) ?claimed ?bound ?preserved_weights
    ?layers ?constraints ?constraints_eps hg part =
  Obs.Span.with_ "audit.partition" @@ fun () ->
  (* The multi-constraint checks run under their own eps when given: a
     Definition 6.1 instance bounds each class separately without implying
     the global Definition 3.1 balance. *)
  let mc_eps = match constraints_eps with Some _ -> constraints_eps | None -> eps in
  let n = Hypergraph.num_nodes hg in
  let k = Partition.k part in
  let assignment = Partition.assignment part in
  let ctx =
    Check.create ~subject:(Printf.sprintf "partition k=%d of n=%d" k n)
  in
  let shape_ok =
    Array.length assignment = n
    && k >= 1
    && Array.for_all (fun c -> c >= 0 && c < k) assignment
  in
  Check.rule ctx ~id:"PART-SHAPE" shape_ok (fun () ->
      Printf.sprintf "expected %d colors in [0, %d), got %d entries" n k
        (Array.length assignment));
  if shape_ok then begin
    (* Balance (Definition 3.1). *)
    (match eps with
    | None -> ()
    | Some eps ->
        let weights = Array.make k 0 in
        let total_weight = ref 0 in
        for v = 0 to n - 1 do
          let w = Hypergraph.node_weight hg v in
          weights.(assignment.(v)) <- weights.(assignment.(v)) + w;
          total_weight := !total_weight + w
        done;
        let cap =
          def31_capacity ~variant ~eps ~total_weight:!total_weight ~k
        in
        let heaviest = Array.fold_left max 0 weights in
        Check.rule ctx ~id:"PART-BALANCE" (heaviest <= cap) (fun () ->
            Printf.sprintf
              "heaviest part weighs %d > capacity %d ((1+%g) * %d / %d)"
              heaviest cap eps !total_weight k));
    (* Cost cross-check and the metric sandwich. *)
    let cut = recompute_cost Cut_net hg part in
    let conn = recompute_cost Connectivity hg part in
    (match claimed with
    | None -> ()
    | Some { metric; cost } ->
        let actual = match metric with Cut_net -> cut | Connectivity -> conn in
        Check.rule ctx ~id:"PART-COST" (cost = actual) (fun () ->
            Printf.sprintf "claimed %s cost %d, recomputed %d"
              (metric_name metric) cost actual));
    (match bound with
    | None -> ()
    | Some { metric; cost } ->
        let actual = match metric with Cut_net -> cut | Connectivity -> conn in
        Check.rule ctx ~id:"PART-COST-BOUND" (actual <= cost) (fun () ->
            Printf.sprintf "recomputed %s cost %d exceeds the promised bound %d"
              (metric_name metric) actual cost));
    (match preserved_weights with
    | None -> ()
    | Some before ->
        let now = Array.make k 0 in
        for v = 0 to n - 1 do
          now.(assignment.(v)) <- now.(assignment.(v)) + Hypergraph.node_weight hg v
        done;
        Check.rule ctx ~id:"PART-WEIGHTS-PRESERVED" (before = now) (fun () ->
            "part weights changed during a weight-preserving refinement"));
    Check.rule ctx ~id:"PART-METRIC-SANDWICH"
      (cut <= conn && conn <= (k - 1) * cut)
      (fun () ->
        Printf.sprintf "cut-net %d, connectivity %d violate the sandwich" cut
          conn);
    (* Layer-wise balance (Definition 5.1). *)
    (match (layers, eps) with
    | Some layers, Some eps ->
        Array.iteri
          (fun j layer ->
            let counts = Array.make k 0 in
            Array.iter
              (fun v -> counts.(assignment.(v)) <- counts.(assignment.(v)) + 1)
              layer;
            let cap =
              def31_capacity ~variant ~eps
                ~total_weight:(Array.length layer) ~k
            in
            let worst = Array.fold_left max 0 counts in
            Check.rule ctx ~id:"PART-LAYER" (worst <= cap) (fun () ->
                Printf.sprintf
                  "layer %d (size %d): a color holds %d > capacity %d" j
                  (Array.length layer) worst cap))
          layers
    | _ -> ());
    (* Multi-constraint balance (Definition 6.1). *)
    match (constraints, mc_eps) with
    | Some mc, Some eps ->
        let subsets = Partition.Multi_constraint.subsets mc in
        let seen = Array.make n false in
        let disjoint = ref true in
        Array.iter
          (Array.iter (fun v ->
               if v >= 0 && v < n then
                 if seen.(v) then disjoint := false else seen.(v) <- true))
          subsets;
        Check.rule ctx ~id:"PART-MC-DISJOINT" !disjoint (fun () ->
            "a node appears in two constraint subsets");
        Array.iteri
          (fun j subset ->
            let counts = Array.make k 0 in
            Array.iter
              (fun v -> counts.(assignment.(v)) <- counts.(assignment.(v)) + 1)
              subset;
            let cap =
              def31_capacity ~variant ~eps
                ~total_weight:(Array.length subset) ~k
            in
            let worst = Array.fold_left max 0 counts in
            Check.rule ctx ~id:"PART-MC-BALANCE" (worst <= cap) (fun () ->
                Printf.sprintf
                  "constraint %d (size %d): a color holds %d > capacity %d" j
                  (Array.length subset) worst cap))
          subsets
    | _ -> ()
  end;
  Check.report ctx
