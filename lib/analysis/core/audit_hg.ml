(* CSR well-formedness (Section 3.1).  The representation invariants of
   Hg.t: pins in range and strictly increasing within each edge, the
   node->edge incidence the exact transpose of the edge->pin lists, pin
   count rho consistent between both views, and positive weights. *)

let rules =
  [
    ("HG-PIN-RANGE", "every pin lies in [0, n) (Sec 3.1, CSR form)");
    ("HG-PIN-SORTED", "pin lists strictly increasing within each edge");
    ( "HG-TRANSPOSE",
      "node->edge incidence is the exact transpose of the pin lists" );
    ("HG-RHO", "rho = sum of |e| = sum of deg(v) (pin-count agreement)");
    ("HG-WEIGHT-POS", "node and edge weights are positive integers");
    ( "HG-EDGE-EMPTY",
      "no empty hyperedges (warning: legal via of_edges, never built)" );
  ]

let audit hg =
  Obs.Span.with_ "audit.hypergraph" @@ fun () ->
  let n = Hypergraph.num_nodes hg and m = Hypergraph.num_edges hg in
  let ctx = Check.create ~subject:(Printf.sprintf "hypergraph n=%d m=%d" n m) in
  (* Pin range and sortedness, counting occurrences per node as we go. *)
  let occurrences = Array.make n 0 in
  let pin_total = ref 0 in
  for e = 0 to m - 1 do
    let prev = ref (-1) in
    let sorted = ref true and in_range = ref true in
    Hypergraph.iter_pins hg e (fun v ->
        incr pin_total;
        if v < 0 || v >= n then in_range := false
        else begin
          occurrences.(v) <- occurrences.(v) + 1;
          if v <= !prev then sorted := false;
          prev := v
        end);
    Check.rule ctx ~id:"HG-PIN-RANGE" !in_range (fun () ->
        Printf.sprintf "edge %d has a pin outside [0, %d)" e n);
    Check.rule ctx ~id:"HG-PIN-SORTED" !sorted (fun () ->
        Printf.sprintf "pins of edge %d are not strictly increasing" e);
    Check.rule ctx ~severity:Warning ~id:"HG-EDGE-EMPTY"
      (Hypergraph.edge_size hg e > 0) (fun () ->
        Printf.sprintf "edge %d is empty" e)
  done;
  (* Transpose consistency: each node's incident-edge list must contain
     exactly the edges whose pin lists mention it, without duplicates. *)
  let transpose_ok = ref true in
  let bad_node = ref (-1) in
  for v = 0 to n - 1 do
    let count = ref 0 and prev_edge = ref (-1) and local_ok = ref true in
    Hypergraph.iter_incident hg v (fun e ->
        incr count;
        if e <= !prev_edge || e >= m then local_ok := false
        else begin
          prev_edge := e;
          (* Linear membership scan: independent of the binary search in
             [edge_mem], which itself assumes sortedness. *)
          let found = ref false in
          Hypergraph.iter_pins hg e (fun u -> if u = v then found := true);
          if not !found then local_ok := false
        end);
    if !count <> occurrences.(v) then local_ok := false;
    if not !local_ok && !transpose_ok then begin
      transpose_ok := false;
      bad_node := v
    end
  done;
  Check.rule ctx ~id:"HG-TRANSPOSE" !transpose_ok (fun () ->
      Printf.sprintf "incidence list of node %d disagrees with the pin lists"
        !bad_node);
  let degree_total = ref 0 in
  for v = 0 to n - 1 do
    degree_total := !degree_total + Hypergraph.node_degree hg v
  done;
  Check.rule ctx ~id:"HG-RHO"
    (Hypergraph.num_pins hg = !pin_total && !pin_total = !degree_total)
    (fun () ->
      Printf.sprintf "rho=%d but sum|e|=%d and sum deg=%d"
        (Hypergraph.num_pins hg) !pin_total !degree_total);
  let weights_ok = ref true in
  for v = 0 to n - 1 do
    if Hypergraph.node_weight hg v < 1 then weights_ok := false
  done;
  for e = 0 to m - 1 do
    if Hypergraph.edge_weight hg e < 1 then weights_ok := false
  done;
  Check.rule ctx ~id:"HG-WEIGHT-POS" !weights_ok (fun () ->
      "a node or edge weight is < 1");
  Check.report ctx
