(** Partition audit: Definition 3.1 (ε-balance), the Section 3.1 cost
    metrics, layer-wise balance (Definition 5.1) and multi-constraint
    balance (Definition 6.1).

    All quantities are recomputed from first principles — λ_e by sorting
    the colors of each edge's pins, capacities from the Definition 3.1
    formula — independently of the [Partition] query functions, so a bug
    in the solver-facing metric code cannot hide from the audit. *)

val rules : (string * string) list

type claim = { metric : Partition.metric; cost : int }
(** A solver's claimed objective value, cross-checked by PART-COST. *)

val recompute_cost : Partition.metric -> Hypergraph.t -> Partition.t -> int
(** First-principles cost used by PART-COST (exposed for the CLI). *)

val audit :
  ?eps:float ->
  ?variant:Partition.balance ->
  ?claimed:claim ->
  ?bound:claim ->
  ?preserved_weights:int array ->
  ?layers:int array array ->
  ?constraints:Partition.Multi_constraint.t ->
  ?constraints_eps:float ->
  Hypergraph.t ->
  Partition.t ->
  Check.report
(** [eps] enables the balance rule; [claimed] the exact cost cross-check;
    [bound] the cost upper-bound check (decision witnesses); given
    [preserved_weights] (the entry part weights of a weight-preserving
    refinement) the exit weights must match; [layers] enables the
    Definition 5.1 rule; [constraints] the Definition 6.1 rules, under
    [constraints_eps] when given (a Definition 6.1 instance bounds each
    class without implying global balance), else [eps].  Shape and
    metric-consistency rules always run. *)
