(* ANALYSIS_DEBUG gate.

   Domain-safety (the analyzer's DOM01, and the worked example in
   DESIGN.md's domain-safety contract): the environment is read eagerly
   at module initialization — before any domain can be spawned — into an
   immutable bool, and the test-harness override lives in an [Atomic.t]
   so concurrent solves read a consistent value without locking.  The
   previous shape (a [lazy] env read plus a plain [ref] override) raced
   under domains: [Lazy.force] from two domains is undefined on an
   unforced suspension, and the ref had no ordering at all. *)

exception Audit_failure of string

let from_env =
  match Sys.getenv_opt "ANALYSIS_DEBUG" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let override : bool option Atomic.t = Atomic.make None

let enabled () =
  match Atomic.get override with Some b -> b | None -> from_env

let force b = Atomic.set override (Some b)

let audit f =
  if enabled () then begin
    let report = f () in
    if not (Check.ok report) then
      raise (Audit_failure (Check.to_string report))
  end
