(* ANALYSIS_DEBUG gate.  The environment is read lazily so that a test
   harness can also flip the switch programmatically via [force]. *)

exception Audit_failure of string

let from_env =
  lazy
    (match Sys.getenv_opt "ANALYSIS_DEBUG" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let override = ref None

let enabled () =
  match !override with Some b -> b | None -> Lazy.force from_env

let force b = override := Some b

let audit f =
  if enabled () then begin
    let report = f () in
    if not (Check.ok report) then
      raise (Audit_failure (Check.to_string report))
  end
