(** The [ANALYSIS_DEBUG] gate for solver self-audits.

    Solver entry points call {!audit} on their results; the closure is
    evaluated only when the environment variable [ANALYSIS_DEBUG] is set
    to a non-empty value other than ["0"], so release-mode performance is
    untouched.  A failed audit raises {!Audit_failure} with the rendered
    report — randomized tests set the variable and let any solver bug
    surface at its source. *)

exception Audit_failure of string

val enabled : unit -> bool
(** Whether [ANALYSIS_DEBUG] is on (the environment is read once, at
    module initialization; {!force} takes precedence). *)

val force : bool -> unit
(** Override the environment (used by the test-suite).  The override is
    an [Atomic.t], safe to read from concurrent solves. *)

val audit : (unit -> Check.report) -> unit
(** Run the audit when enabled; raise {!Audit_failure} unless
    {!Check.ok}. *)
