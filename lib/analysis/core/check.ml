(* Checker framework: named rules, severities, structured reports.  The
   auditors in this library and in lib/analysis evaluate paper invariants
   through this module so that tests and the CLI can assert on stable rule
   ids instead of parsing messages. *)

type severity = Error | Warning | Info

type violation = { rule : string; severity : severity; message : string }

type report = {
  subject : string;
  rules_run : int;
  violations : violation list;
  timings : (string * float) list;
}

type ctx = {
  ctx_subject : string;
  mutable run : int;
  mutable acc : violation list; (* reversed *)
  mutable last_ns : int64;
  mutable laps : (string * float) list; (* reversed *)
}

let create ~subject =
  {
    ctx_subject = subject;
    run = 0;
    acc = [];
    last_ns = Support.Util.monotonic_ns ();
    laps = [];
  }

(* Rules receive an already-evaluated boolean, so the work of rule [id]
   happened between the previous [rule]/[violation] call and this one:
   attribute that clock delta to [id].  Zero changes at call sites. *)
let lap ctx id =
  let now = Support.Util.monotonic_ns () in
  ctx.laps <- (id, Support.Util.seconds_of_ns (Int64.sub now ctx.last_ns)) :: ctx.laps;
  ctx.last_ns <- now

let violation ctx ?(severity = Error) ~id message =
  lap ctx id;
  ctx.run <- ctx.run + 1;
  ctx.acc <- { rule = id; severity; message } :: ctx.acc

let rule ctx ?(severity = Error) ~id holds message =
  if holds then begin
    lap ctx id;
    ctx.run <- ctx.run + 1
  end
  else violation ctx ~severity ~id (message ())

(* Sum seconds per rule id, keeping first-evaluation order. *)
let sum_by_id entries =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (id, dt) ->
      match Hashtbl.find_opt tbl id with
      | Some t -> Hashtbl.replace tbl id (t +. dt)
      | None ->
          Hashtbl.add tbl id dt;
          order := id :: !order)
    entries;
  List.rev_map (fun id -> (id, Hashtbl.find tbl id)) !order

let report ctx =
  {
    subject = ctx.ctx_subject;
    rules_run = ctx.run;
    violations = List.rev ctx.acc;
    timings = sum_by_id (List.rev ctx.laps);
  }

let ok r = List.for_all (fun v -> v.severity <> Error) r.violations
let clean r = r.violations = []
let errors r = List.filter (fun v -> v.severity = Error) r.violations

let violated_rules r =
  List.rev
    (List.fold_left
       (fun seen v -> if List.mem v.rule seen then seen else v.rule :: seen)
       [] r.violations)

let has_violation r id = List.exists (fun v -> v.rule = id) r.violations

let merge ~subject reports =
  {
    subject;
    rules_run = List.fold_left (fun a r -> a + r.rules_run) 0 reports;
    violations =
      List.concat_map
        (fun r ->
          List.map
            (fun v -> { v with message = r.subject ^ ": " ^ v.message })
            r.violations)
        reports;
    timings = sum_by_id (List.concat_map (fun r -> r.timings) reports);
  }

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let pp_violation ppf v =
  Fmt.pf ppf "[%a] %s: %s" pp_severity v.severity v.rule v.message

let pp ppf r =
  let n_err = List.length (errors r) in
  Fmt.pf ppf "@[<v>audit %s: %d rule evaluations, %d violations (%d errors)"
    r.subject r.rules_run
    (List.length r.violations)
    n_err;
  List.iter (fun v -> Fmt.pf ppf "@,  %a" pp_violation v) r.violations;
  Fmt.pf ppf "@]"

let pp_timings ppf r =
  let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 r.timings in
  Fmt.pf ppf "@[<v>audit %s: rule timings (total %.3f ms)" r.subject
    (total *. 1e3);
  List.iter
    (fun (id, s) -> Fmt.pf ppf "@,  %-32s %10.1f us" id (s *. 1e6))
    r.timings;
  Fmt.pf ppf "@]"

let to_string r = Fmt.str "%a" pp r
let exit_code r = if ok r then 0 else 1
