(* Checker framework: named rules, severities, structured reports.  The
   auditors in this library and in lib/analysis evaluate paper invariants
   through this module so that tests and the CLI can assert on stable rule
   ids instead of parsing messages. *)

type severity = Error | Warning | Info

type violation = { rule : string; severity : severity; message : string }

type report = {
  subject : string;
  rules_run : int;
  violations : violation list;
}

type ctx = {
  ctx_subject : string;
  mutable run : int;
  mutable acc : violation list; (* reversed *)
}

let create ~subject = { ctx_subject = subject; run = 0; acc = [] }

let violation ctx ?(severity = Error) ~id message =
  ctx.run <- ctx.run + 1;
  ctx.acc <- { rule = id; severity; message } :: ctx.acc

let rule ctx ?(severity = Error) ~id holds message =
  if holds then ctx.run <- ctx.run + 1
  else violation ctx ~severity ~id (message ())

let report ctx =
  {
    subject = ctx.ctx_subject;
    rules_run = ctx.run;
    violations = List.rev ctx.acc;
  }

let ok r = List.for_all (fun v -> v.severity <> Error) r.violations
let clean r = r.violations = []
let errors r = List.filter (fun v -> v.severity = Error) r.violations

let violated_rules r =
  List.fold_left
    (fun seen v -> if List.mem v.rule seen then seen else seen @ [ v.rule ])
    [] r.violations

let has_violation r id = List.exists (fun v -> v.rule = id) r.violations

let merge ~subject reports =
  {
    subject;
    rules_run = List.fold_left (fun a r -> a + r.rules_run) 0 reports;
    violations =
      List.concat_map
        (fun r ->
          List.map
            (fun v -> { v with message = r.subject ^ ": " ^ v.message })
            r.violations)
        reports;
  }

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let pp_violation ppf v =
  Fmt.pf ppf "[%a] %s: %s" pp_severity v.severity v.rule v.message

let pp ppf r =
  let n_err = List.length (errors r) in
  Fmt.pf ppf "@[<v>audit %s: %d rule evaluations, %d violations (%d errors)"
    r.subject r.rules_run
    (List.length r.violations)
    n_err;
  List.iter (fun v -> Fmt.pf ppf "@,  %a" pp_violation v) r.violations;
  Fmt.pf ppf "@]"

let to_string r = Fmt.str "%a" pp r
let exit_code r = if ok r then 0 else 1
