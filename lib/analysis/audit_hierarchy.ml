(* Hierarchical partitioning audit (Section 7): topology tree shape,
   Definition 7.1 cost recomputed from scratch, Lemma 7.3 sandwich.

   The recomputation deliberately re-derives the ancestor structure from
   the branching digits (suffix products over the leaf index) instead of
   calling Topology.ancestor, and counts distinct ancestors per level with
   sorted lists instead of Hier_cost's machinery. *)

module Check = Analysis_core.Check
module Audit_partition = Analysis_core.Audit_partition

let rules =
  [
    ( "HIER-TOPO-SHAPE",
      "depth >= 1, all branching factors >= 2, k = product of b_i (Sec 7)" );
    ( "HIER-TOPO-COSTS",
      "transfer costs non-increasing with g_d = 1 (Sec 7)" );
    ("HIER-ARITY", "partition colors are leaf indices: k = number of leaves");
    ( "HIER-COST",
      "Definition 7.1 cost recomputed from scratch matches Hier_cost (and \
       any claimed value)" );
    ( "HIER-SANDWICH",
      "connectivity <= hierarchical cost <= g_1 * connectivity (Lemma 7.3)" );
  ]

let float_eq a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a)

let audit_topology topo =
  let ctx =
    Check.create
      ~subject:(Printf.sprintf "topology d=%d" (Hierarchy.Topology.depth topo))
  in
  let b = Hierarchy.Topology.branching topo in
  let d = Array.length b in
  let product = Array.fold_left ( * ) 1 b in
  Check.rule ctx ~id:"HIER-TOPO-SHAPE"
    (d >= 1
    && Array.for_all (fun bi -> bi >= 2) b
    && product = Hierarchy.Topology.num_leaves topo)
    (fun () ->
      Printf.sprintf "branching %s does not multiply to k=%d"
        (String.concat "," (Array.to_list (Array.map string_of_int b)))
        (Hierarchy.Topology.num_leaves topo));
  let costs_ok = ref (d >= 1) in
  for i = 1 to d do
    let g = Hierarchy.Topology.cost_of_level topo i in
    if i > 1 && g > Hierarchy.Topology.cost_of_level topo (i - 1) +. 1e-9 then
      costs_ok := false;
    if i = d && not (float_eq g 1.0) then costs_ok := false
  done;
  Check.rule ctx ~id:"HIER-TOPO-COSTS" !costs_ok (fun () ->
      "costs are not non-increasing with g_d = 1");
  Check.report ctx

(* Definition 7.1, from scratch: for each edge, the distinct level-i
   ancestors of its leaves are leaf / (b_{i+1} * ... * b_d); the edge pays
   g_i per *new* subtree entered at level i. *)
let recompute_cost topo hg part =
  let b = Hierarchy.Topology.branching topo in
  let d = Array.length b in
  let suffix = Array.make (d + 1) 1 in
  for i = d - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) * b.(i)
  done;
  let total = ref 0.0 in
  for e = 0 to Hypergraph.num_edges hg - 1 do
    let leaves =
      List.sort_uniq Int.compare
        (Hypergraph.fold_pins hg e
           (fun acc v -> Partition.color part v :: acc)
           [])
    in
    if List.length leaves > 1 then begin
      let prev = ref 1 in
      for level = 1 to d do
        let distinct =
          List.length
            (List.sort_uniq Int.compare
               (List.map (fun leaf -> leaf / suffix.(level)) leaves))
        in
        total :=
          !total
          +. float_of_int (Hypergraph.edge_weight hg e)
             *. Hierarchy.Topology.cost_of_level topo level
             *. float_of_int (distinct - !prev);
        prev := distinct
      done
    end
  done;
  !total

let audit ?claimed_cost topo hg part =
  Obs.Span.with_ "audit.hierarchy" @@ fun () ->
  let topo_report = audit_topology topo in
  let ctx =
    Check.create
      ~subject:
        (Printf.sprintf "hierarchical partition k=%d"
           (Hierarchy.Topology.num_leaves topo))
  in
  let arity_ok = Partition.k part = Hierarchy.Topology.num_leaves topo in
  Check.rule ctx ~id:"HIER-ARITY" arity_ok (fun () ->
      Printf.sprintf "partition has k=%d but the topology has %d leaves"
        (Partition.k part)
        (Hierarchy.Topology.num_leaves topo));
  if arity_ok then begin
    let recomputed = recompute_cost topo hg part in
    let library = Hierarchy.Hier_cost.cost topo hg part in
    Check.rule ctx ~id:"HIER-COST"
      (float_eq recomputed library
      &&
      match claimed_cost with
      | None -> true
      | Some c -> float_eq recomputed c)
      (fun () ->
        Printf.sprintf "recomputed %.6f, Hier_cost %.6f%s" recomputed library
          (match claimed_cost with
          | Some c -> Printf.sprintf ", claimed %.6f" c
          | None -> ""));
    let conn =
      float_of_int (Audit_partition.recompute_cost Partition.Connectivity hg part)
    in
    let g1 = Hierarchy.Topology.cost_of_level topo 1 in
    Check.rule ctx ~id:"HIER-SANDWICH"
      (recomputed >= conn -. 1e-6 && recomputed <= (g1 *. conn) +. 1e-6)
      (fun () ->
        Printf.sprintf "cost %.6f outside [connectivity %.1f, g1 * conn %.1f]"
          recomputed conn (g1 *. conn))
  end;
  let r = Check.report ctx in
  Check.merge ~subject:r.Check.subject [ topo_report; r ]
