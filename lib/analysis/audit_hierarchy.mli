(** Hierarchical partitioning audit (Section 7).

    Validates the tree shape of a topology, recomputes the hierarchical
    cost of Definition 7.1 from scratch (own mixed-radix ancestor
    arithmetic, not [Topology.ancestor] / [Hier_cost.cost]) and checks the
    Lemma 7.3 sandwich against an independently recomputed connectivity. *)

val rules : (string * string) list

val audit_topology : Hierarchy.Topology.t -> Check.report

val recompute_cost :
  Hierarchy.Topology.t -> Hypergraph.t -> Partition.t -> float
(** First-principles Definition 7.1 cost (exposed for the CLI). *)

val audit :
  ?claimed_cost:float ->
  Hierarchy.Topology.t ->
  Hypergraph.t ->
  Partition.t ->
  Check.report
(** Audits the topology, the leaf-indexed partition arity, the recomputed
    cost against [Hier_cost.cost] (and [claimed_cost] if given) and the
    Lemma 7.3 sandwich. *)
