(** Schedule audit (Definition 5.3 and the μ accounting of Section 5.2).

    Recomputes slot-collision freedom, precedence feasibility and the two
    lower bounds behind μ — work ⌈n/k⌉ and the critical path — directly
    from the DAG, independently of [Schedule.is_valid] and the
    schedulers. *)

val rules : (string * string) list

val audit :
  ?k:int ->
  ?assignment:int array ->
  ?claimed_makespan:int ->
  Hyperdag.Dag.t ->
  Scheduling.Schedule.t ->
  Check.report
(** [k] enables processor-range and work-bound rules; [assignment] the
    μ_p rule that the schedule respects a fixed node → processor map;
    [claimed_makespan] the makespan cross-check. *)
