(* k-way partitions of a hypergraph and the two cost metrics of
   Section 3.1: cut-net |{e : lambda_e > 1}| and connectivity
   sum_e (lambda_e - 1), both weighted by edge weights. *)

type metric = Cut_net | Connectivity

type t = { k : int; assignment : int array }

let create ~k assignment =
  if k < 1 then invalid_arg "Part.create: k must be >= 1";
  Array.iter
    (fun c ->
      if c < 0 || c >= k then invalid_arg "Part.create: color out of range")
    assignment;
  { k; assignment }

let k t = t.k
let assignment t = t.assignment
let color t v = t.assignment.(v)
let copy t = { t with assignment = Array.copy t.assignment }

let equal a b = a.k = b.k && a.assignment = b.assignment

let of_predicate ~k ~n pred =
  create ~k (Array.init n (fun v -> pred v))

let trivial ~k ~n = create ~k (Array.make n 0)

let random rng ~k ~n =
  create ~k (Array.init n (fun _ -> Support.Rng.int rng k))

(* Part weights ------------------------------------------------------------- *)

let part_weights hg t =
  let w = Array.make t.k 0 in
  for v = 0 to Hypergraph.num_nodes hg - 1 do
    let c = t.assignment.(v) in
    w.(c) <- w.(c) + Hypergraph.node_weight hg v
  done;
  w

let part_sizes hg t =
  let s = Array.make t.k 0 in
  for v = 0 to Hypergraph.num_nodes hg - 1 do
    s.(t.assignment.(v)) <- s.(t.assignment.(v)) + 1
  done;
  s

let nonempty_parts hg t =
  Support.Util.array_count (fun s -> s > 0) (part_sizes hg t)

(* Balance ------------------------------------------------------------------ *)

type balance = Strict | Relaxed

(* The threshold (1+eps) * W / k of Definition 3.1.  [Strict] takes the
   floor (the definition as stated); [Relaxed] takes the ceiling (the
   variant mentioned in Section 3.1 that guarantees feasibility). A tiny
   slack absorbs float rounding for rational eps. *)
let capacity ?(variant = Strict) ~eps ~total_weight ~k () =
  if eps < 0.0 then invalid_arg "Part.capacity: negative eps";
  let exact = (1.0 +. eps) *. float_of_int total_weight /. float_of_int k in
  match variant with
  | Strict -> int_of_float (floor (exact +. 1e-9))
  | Relaxed -> int_of_float (ceil (exact -. 1e-9))

let is_balanced ?variant ~eps hg t =
  let cap =
    capacity ?variant ~eps ~total_weight:(Hypergraph.total_node_weight hg)
      ~k:t.k ()
  in
  Array.for_all (fun w -> w <= cap) (part_weights hg t)

let imbalance hg t =
  let w = part_weights hg t in
  let ideal = float_of_int (Hypergraph.total_node_weight hg) /. float_of_int t.k in
  (float_of_int (Support.Util.max_array w) /. ideal) -. 1.0

(* Cost --------------------------------------------------------------------- *)

(* lambda_e: number of distinct parts intersecting edge e.  The [mark]
   scratch array (length k) lets a caller amortize allocation. *)
let lambda_with hg t ~mark ~stamp e =
  let count = ref 0 in
  Hypergraph.iter_pins hg e (fun v ->
      let c = t.assignment.(v) in
      if mark.(c) <> stamp then begin
        mark.(c) <- stamp;
        incr count
      end);
  !count

let lambda hg t e =
  let mark = Array.make t.k (-1) in
  lambda_with hg t ~mark ~stamp:0 e

let is_cut hg t e = lambda hg t e > 1

let all_lambdas hg t =
  let mark = Array.make t.k (-1) in
  Array.init (Hypergraph.num_edges hg) (fun e ->
      lambda_with hg t ~mark ~stamp:e e)

(* Every full cost evaluation feeds an obs histogram, so any workload that
   scores partitions (experiments, CLI, audits) reports cut quality in the
   machine-readable bench output without further plumbing. *)
let h_connectivity = Obs.Histogram.make "cost.connectivity"
let h_cutnet = Obs.Histogram.make "cost.cutnet"

let cost ?(metric = Connectivity) hg t =
  let mark = Array.make t.k (-1) in
  let total = ref 0 in
  for e = 0 to Hypergraph.num_edges hg - 1 do
    let l = lambda_with hg t ~mark ~stamp:e e in
    let w = Hypergraph.edge_weight hg e in
    match metric with
    | Cut_net -> if l > 1 then total := !total + w
    | Connectivity -> total := !total + (w * (l - 1))
  done;
  (match metric with
  | Connectivity -> Obs.Histogram.observe_int h_connectivity !total
  | Cut_net -> Obs.Histogram.observe_int h_cutnet !total);
  !total

let cutnet_cost hg t = cost ~metric:Cut_net hg t
let connectivity_cost hg t = cost ~metric:Connectivity hg t

let cut_edges hg t =
  let mark = Array.make t.k (-1) in
  let acc = ref [] in
  for e = Hypergraph.num_edges hg - 1 downto 0 do
    if lambda_with hg t ~mark ~stamp:e e > 1 then acc := e :: !acc
  done;
  !acc

let pp ppf t =
  Fmt.pf ppf "@[<h>k=%d [%a]@]" t.k Fmt.(array ~sep:sp int) t.assignment
