(* Partition vector files: one part id per line ('%' comments), the format
   written by hMETIS-style partitioners. *)

let of_string ~n s =
  let lines =
    s |> String.split_on_char '\n' |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '%')
  in
  if List.length lines <> n then
    failwith
      (Printf.sprintf "Part_io.of_string: %d entries for %d nodes" (List.length lines) n);
  let vector =
    Array.of_list
      (List.map
         (fun l ->
           match int_of_string_opt l with
           | Some v when v >= 0 -> v
           | _ -> failwith (Printf.sprintf "Part_io.of_string: bad entry %S" l))
         lines)
  in
  let k = if n = 0 then 1 else 1 + Support.Util.max_array vector in
  Part.create ~k vector

let to_string part =
  let buf = Buffer.create 256 in
  Array.iter
    (fun c ->
      Buffer.add_string buf (string_of_int c);
      Buffer.add_char buf '\n')
    (Part.assignment part);
  Buffer.contents buf

let load ~n path =
  In_channel.with_open_text path (fun ic ->
      of_string ~n (In_channel.input_all ic))

let save path part =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (to_string part))
