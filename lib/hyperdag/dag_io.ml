(* Plain-text DAG exchange format and Graphviz export.

   Format: a header line "n m", then m lines "u v" (0-indexed directed
   edges).  '%' starts a comment line. *)

let is_comment line = String.length line = 0 || line.[0] = '%'

let of_string s =
  let lines =
    s |> String.split_on_char '\n' |> List.map String.trim
    |> List.filter (fun l -> not (is_comment l))
  in
  match lines with
  | [] -> failwith "Dag_io.of_string: empty input"
  | header :: rest ->
      let parse_two line =
        match
          line |> String.split_on_char ' '
          |> List.filter (fun x -> x <> "")
          |> List.map int_of_string_opt
        with
        | [ Some a; Some b ] -> (a, b)
        | _ -> failwith (Printf.sprintf "Dag_io.of_string: malformed line %S" line)
      in
      let n, m = parse_two header in
      if n < 0 || m < 0 then
        failwith
          (Printf.sprintf "Dag_io.of_string: negative header counts (%d %d)" n m);
      let rest = Array.of_list rest in
      if Array.length rest < m then failwith "Dag_io.of_string: truncated file";
      if Array.length rest > m then
        failwith
          (Printf.sprintf
             "Dag_io.of_string: trailing garbage (%d lines beyond the %d \
              edges the header promises)"
             (Array.length rest - m) m);
      let edges =
        List.init m (fun i ->
            let u, v = parse_two rest.(i) in
            if u < 0 || u >= n || v < 0 || v >= n then
              failwith
                (Printf.sprintf
                   "Dag_io.of_string: edge (%d, %d) out of range [0, %d)" u v n);
            (u, v))
      in
      (* Dag.of_edges validates what only the full structure can see
         (self-loops, duplicates, acyclicity); re-raise its defects as the
         parse errors they are here. *)
      match Dag.of_edges ~n edges with
      | dag -> dag
      | exception Invalid_argument msg ->
          failwith (Printf.sprintf "Dag_io.of_string: invalid DAG: %s" msg)
      | exception Dag.Cycle ->
          failwith "Dag_io.of_string: the edge list has a cycle"

let to_string dag =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Dag.num_nodes dag) (Dag.num_edges dag));
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v))
    (Dag.edges dag);
  Buffer.contents buf

let load path =
  In_channel.with_open_text path (fun ic -> of_string (In_channel.input_all ic))

let save path dag =
  Out_channel.with_open_text path (fun oc -> output_string oc (to_string dag))

(* Graphviz, optionally colored by a partition and ranked by layer. *)
let to_dot ?parts dag =
  let palette =
    [| "#e6550d"; "#3182bd"; "#31a354"; "#756bb1"; "#636363"; "#fd8d3c" |]
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dag {\n  rankdir=TB;\n";
  for v = 0 to Dag.num_nodes dag - 1 do
    let color =
      match parts with
      | Some p when v < Array.length p ->
          Printf.sprintf " style=filled fillcolor=\"%s\""
            palette.(p.(v) mod Array.length palette)
      | _ -> ""
    in
    Buffer.add_string buf (Printf.sprintf "  v%d [label=\"%d\"%s];\n" v v color)
  done;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  v%d -> v%d;\n" u v))
    (Dag.edges dag);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
