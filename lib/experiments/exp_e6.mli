(** E6 — the Orthogonal Vectors reduction: 0-cost multi-constraint decision coincides with OVP (Theorem 6.4). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
