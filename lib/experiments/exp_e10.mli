(** E10 — the XP algorithm of Lemma 4.3: agreement with branch-and-bound and growth in the cost parameter L. *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
