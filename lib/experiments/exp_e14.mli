(** E14 — fundamental facts about the balance parameter (Appendix A). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
