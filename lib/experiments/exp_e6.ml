(* E6 — The Orthogonal Vectors reduction (Theorem 6.4): the 0-cost
   multi-constraint decision coincides with OVP, with c = D + 2
   constraints; plus the quadratic-scan OVP timings that motivate the
   subquadratic-hardness statement. *)

let run () =
  let rng = Support.Rng.create 77 in
  let rows =
    List.concat_map
      (fun m ->
        List.map
          (fun plant ->
            let inst = Npc.Ovp.random ~plant rng ~m ~d:8 in
            let red = Reductions.Mc_from_ovp.build inst in
            let expected = Npc.Ovp.has_pair inst in
            let via = Reductions.Mc_from_ovp.zero_cost_solution_exists red in
            [
              Table.Int m;
              Table.Bool plant;
              Table.Int (Reductions.Mc_from_ovp.num_constraints red);
              Table.Bool expected;
              Table.Bool (via <> None);
              Table.Bool (expected = (via <> None));
            ])
          [ false; true ])
      [ 4; 5; 6; 7 ]
  in
  Table.print ~title:"E6a: OV pair exists iff 0-cost MC partition exists"
    ~anchor:"Thm 6.4: c = D + 2 constraints decide OVP"
    ~columns:[ "m"; "planted"; "c"; "OV pair"; "0-cost MC"; "agree" ]
    rows;
  (* Quadratic scan timing: the baseline SETH says is essentially optimal
     for d = omega(log m). *)
  let rows_time =
    List.map
      (fun m ->
        let d = 64 in
        let inst = Npc.Ovp.random rng ~m ~d in
        let _, seconds =
          Obs.Span.timed "exp.e6.ov_scan" (fun () -> Npc.Ovp.has_pair inst)
        in
        [
          Table.Int m;
          Table.Int d;
          Table.Float (seconds *. 1000.0);
          Table.Float (seconds *. 1e9 /. (float_of_int m *. float_of_int m));
        ])
      [ 500; 1000; 2000; 4000 ]
  in
  Table.print ~title:"E6b: quadratic OV scan (packed words)"
    ~anchor:"Thm 6.4 context: OVP in ~m^2 time; ns/pair stays flat"
    ~columns:[ "m"; "d"; "total ms"; "ns per pair" ]
    rows_time
