(** E13 — heuristic quality: random vs greedy vs FM-refined connectivity cost (Sections 1-2 motivation). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
