(* Library root: the experiment harness.  Each module regenerates the
   series/rows of one paper anchor (see DESIGN.md's per-experiment index
   and EXPERIMENTS.md for paper-vs-measured notes). *)

module Table = Table
module E1 = Exp_e1
module E2 = Exp_e2
module E3 = Exp_e3
module E4 = Exp_e4
module E5 = Exp_e5
module E6 = Exp_e6
module E7 = Exp_e7
module E8 = Exp_e8
module E9 = Exp_e9
module E10 = Exp_e10
module E11 = Exp_e11
module E12 = Exp_e12
module E13 = Exp_e13
module E14 = Exp_e14
module E15 = Exp_e15
module E16 = Exp_e16

let all =
  [
    ("E1", "hyperDAG cost-model accuracy (Fig 1, Sec 3.2, App B)", E1.run);
    ("E2", "SpES reduction roundtrip (Thm 4.1, Fig 3)", E2.run);
    ("E3", "gadget integrity (Lemma A.5, Lemma C.3)", E3.run);
    ("E4", "balance-constraint limits (Figs 4 & 6)", E4.run);
    ("E5", "mu vs mu_p (Thm 5.5)", E5.run);
    ("E6", "Orthogonal Vectors reduction (Thm 6.4)", E6.run);
    ("E7", "recursive vs direct partitioning (Lemma 7.2, Fig 8)", E7.run);
    ("E8", "two-step method (Lemma 7.3, Thm 7.4, Fig 9)", E8.run);
    ("E9", "hierarchy assignment (Thm 7.5, App H)", E9.run);
    ("E10", "the XP algorithm (Lemma 4.3)", E10.run);
    ("E11", "3-coloring reductions (Lemma 6.3, Thm 5.2)", E11.run);
    ("E12", "flexible layering (Thm E.1)", E12.run);
    ("E13", "heuristic quality (Secs 1-2 motivation)", E13.run);
    ("E14", "balance-parameter facts (App A)", E14.run);
    ("E15", "hyperDAG NP-hardness and App I.1 variants (Lemma B.3)", E15.run);
    ("E16", "multi-constraint algorithms (Lemma 6.2, App D.2)", E16.run);
  ]

let ids = List.map (fun (id, _, _) -> id) all

let run_all () =
  List.iter
    (fun (id, what, run) ->
      Printf.printf "\n%s\n### %s — %s\n%s\n"
        (String.make 72 '#') id what (String.make 72 '#');
      run ())
    all

let run_one id =
  match List.find_opt (fun (i, _, _) -> i = id) all with
  | Some (_, _, run) ->
      run ();
      true
  | None -> false
