(** E8 — the two-step method on the star construction (Lemma 7.3, Theorem 7.4, Figure 9). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
