(** E12 — the flexible-layering hardness construction (Theorem E.1). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
