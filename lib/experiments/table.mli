(** Plain-text table rendering shared by all experiments: fixed-width
    columns, a header rule, and a caption line tying the table back to
    the paper anchor it reproduces.

    This module (with {!Experiments.run_all}'s banners) is the
    experiment harness's designated stdout writer — the lint.config
    SRC03 allowlist names this directory for exactly that reason. *)

type cell = Int of int | Float of float | Str of string | Bool of bool

val cell_to_string : cell -> string
(** [Int] as decimal, [Float] with one decimal if integral else three,
    [Bool] as ["yes"]/["no"]. *)

val print :
  title:string -> anchor:string -> columns:string list -> cell list list -> unit
(** Render one table to stdout: a [== title] heading, the paper
    [anchor] line, then the rows under a header rule. *)

val note : ('a, out_channel, unit) format -> 'a
(** An indented free-form caption line under a table. *)
