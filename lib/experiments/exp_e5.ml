(* E5 — mu vs mu_p (Theorem 5.5, Appendix F): mu is polynomial in the easy
   classes, but deciding mu_p on the 3-Partition reduction instances is a
   search problem whose decision matches 3-Partition exactly. *)

let run () =
  let instances =
    [
      ("yes t=1", Npc.Three_partition.create [| 3; 3; 4 |]);
      ("yes t=2", Npc.Three_partition.create [| 6; 6; 8; 6; 7; 7 |]);
      ("no  t=2", Npc.Three_partition.create [| 6; 6; 6; 6; 7; 9 |]);
      ( "yes t=3",
        Npc.Three_partition.random_yes (Support.Rng.create 5) ~t:3 ~b:13 );
    ]
  in
  let rows =
    List.map
      (fun (name, inst) ->
        let red = Reductions.Sched_from_three_partition.build inst in
        let dag = Reductions.Sched_from_three_partition.dag red in
        let n = Hyperdag.Dag.num_nodes dag in
        let solvable = Npc.Three_partition.solve inst <> None in
        (* mu via the polynomial route (k = 2: Coffman-Graham). *)
        let mu =
          match Scheduling.Mu.makespan_general dag ~k:2 with
          | Scheduling.Mu.Exact m -> m
          | Scheduling.Mu.Bounds (lo, _) -> lo
        in
        let (perfect, seconds) =
          Obs.Span.timed "exp.e5.perfect_schedule" (fun () ->
              Reductions.Sched_from_three_partition.perfect_schedule_exists red)
        in
        [
          Table.Str name;
          Table.Int n;
          Table.Int mu;
          Table.Int (Reductions.Sched_from_three_partition.target red);
          Table.Bool solvable;
          Table.Bool perfect;
          Table.Float (seconds *. 1000.0);
        ])
      instances
  in
  Table.print ~title:"E5: mu is easy, mu_p decides 3-Partition"
    ~anchor:"Thm 5.5: mu_p = n/2 iff the 3-Partition instance is solvable"
    ~columns:
      [ "instance"; "n"; "mu (CG)"; "target n/2"; "3-part?"; "mu_p=n/2?";
        "mu_p ms" ]
    rows;
  (* The clique-based bounded-height variant. *)
  let graphs =
    [
      ( "triangle+tail",
        Npc.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3); (0, 3) ],
        3 );
      ("path-4", Npc.Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ], 3);
    ]
  in
  let rows_clique =
    List.map
      (fun (name, g, l) ->
        let red = Reductions.Sched_from_clique.build g ~l in
        let has = Npc.Clique.has_clique g ~size:l in
        let perfect = Reductions.Sched_from_clique.perfect_schedule_exists red in
        [
          Table.Str name;
          Table.Int (Hyperdag.Dag.num_nodes (Reductions.Sched_from_clique.dag red));
          Table.Int
            (Hyperdag.Dag.critical_path_length
               (Reductions.Sched_from_clique.dag red));
          Table.Bool has;
          Table.Bool perfect;
        ])
      graphs
  in
  Table.print ~title:"E5b: bounded-height mu_p decides clique"
    ~anchor:"Thm 5.5: perfect schedule iff an L-clique exists; height O(1)"
    ~columns:[ "graph"; "n"; "height"; "clique?"; "mu_p perfect?" ]
    rows_clique
