(* E13 — Heuristic quality (the Section 1 motivation: hardness makes
   heuristics essential).  Connectivity cost of random, greedy, FM-refined
   and multilevel partitioners on SpMV and random hypergraphs, plus
   agreement with the exact optimum at small scale. *)

let algorithms rng =
  [
    ( "random",
      fun hg ~k ->
        Solvers.Initial.random_balanced ~eps:0.03 rng hg ~k );
    ("bfs growth", fun hg ~k -> Solvers.Initial.bfs_growth ~eps:0.03 rng hg ~k);
    ( "random+FM",
      fun hg ~k ->
        let p = Solvers.Initial.random_balanced ~eps:0.03 rng hg ~k in
        ignore
          (Solvers.Refine.refine
             ~config:{ Solvers.Refine.default_config with eps = 0.03 }
             hg p);
        p );
    ( "random+KL",
      fun hg ~k ->
        let p = Solvers.Initial.random_balanced ~eps:0.03 rng hg ~k in
        ignore (Solvers.Kl_swap.refine hg p);
        p );
    ( "multilevel",
      fun hg ~k -> Solvers.Multilevel.partition rng hg ~k );
    ( "multilevel+vcycle",
      fun hg ~k ->
        let p = Solvers.Multilevel.partition rng hg ~k in
        ignore (Solvers.Multilevel.vcycle ~cycles:2 rng hg p);
        p );
    ( "recursive bisection",
      fun hg ~k ->
        Solvers.Recursive_bisection.partition ~eps:0.03
          ~bisector:(Solvers.Recursive_bisection.multilevel_bisector rng)
          hg ~k );
  ]

let run () =
  let rng = Support.Rng.create 2024 in
  let k = 4 in
  let instances =
    [
      ( "SpMV fine-grain (banded 60, bw 2)",
        Workloads.Spmv.fine_grain (Workloads.Spmv.banded ~size:60 ~bandwidth:2)
      );
      ( "SpMV row-net (random 80x80, 4%)",
        Workloads.Spmv.row_net
          (Workloads.Spmv.random rng ~rows:80 ~cols:80 ~density:0.04) );
      ("2-regular random", Workloads.Rand_hg.two_regular rng ~n:200 ~m:90);
      ( "planted 4 communities",
        Workloads.Rand_hg.planted rng ~n:160 ~m:240 ~k:4 ~locality:0.9
          ~edge_size:4 );
      ( "uniform random",
        Workloads.Rand_hg.uniform rng ~n:120 ~m:180 ~min_size:2 ~max_size:5 );
    ]
  in
  List.iter
    (fun (name, hg) ->
      let rows =
        List.map
          (fun (alg, f) ->
            let part, seconds =
              Obs.Span.timed "exp.e13.solver"
                ~attrs:[ ("algorithm", Obs.Str alg) ]
                (fun () -> f hg ~k)
            in
            [
              Table.Str alg;
              Table.Int (Partition.connectivity_cost hg part);
              Table.Int (Partition.cutnet_cost hg part);
              Table.Float (Partition.imbalance hg part);
              Table.Float (seconds *. 1000.0);
            ])
          (algorithms rng)
      in
      Table.print
        ~title:(Printf.sprintf "E13: %s (n=%d, m=%d, k=%d)" name
                  (Hypergraph.num_nodes hg) (Hypergraph.num_edges hg) k)
        ~anchor:"Sec 1-2: heuristics on practically relevant inputs"
        ~columns:[ "algorithm"; "connectivity"; "cut-net"; "imbalance"; "ms" ]
        rows)
    instances;
  (* Small-instance comparison against the exact optimum. *)
  let rows_small =
    List.map
      (fun seed ->
        let r = Support.Rng.create seed in
        let hg = Workloads.Rand_hg.uniform r ~n:12 ~m:14 ~min_size:2 ~max_size:4 in
        let opt =
          match Solvers.Exact.optimum ~eps:0.0 hg ~k:2 with
          | Some v -> v
          | None -> -1
        in
        let ml =
          Partition.connectivity_cost hg
            (Solvers.Multilevel.partition
               ~config:{ Solvers.Multilevel.default_config with eps = 0.0 }
               r hg ~k:2)
        in
        [
          Table.Int seed;
          Table.Int opt;
          Table.Int ml;
          Table.Bool (ml = opt);
        ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Table.print ~title:"E13b: multilevel vs exact optimum (n = 12, k = 2)"
    ~anchor:"sanity: the heuristic is near-optimal at verifiable scale"
    ~columns:[ "seed"; "optimum"; "multilevel"; "optimal?" ]
    rows_small
