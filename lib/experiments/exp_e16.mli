(** E16 — multi-constraint algorithms: the Lemma D.1 reduction and the multi-constraint XP decision (Lemma 6.2, Appendix D.2). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
