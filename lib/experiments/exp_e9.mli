(** E9 — the hierarchy assignment problem: exact b2 = 2 matching vs hardness beyond (Theorem 7.5, Appendix H). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
