(** E1 — communication-cost accuracy of the hyperDAG model (Figure 1, Section 3.2, Appendix B). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
