(** E3 — gadget integrity: block split costs (Lemma A.5) and grid minority costs (Lemma C.3). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
