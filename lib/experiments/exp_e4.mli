(** E4 — limits of single and layer-wise balance constraints for hyperDAGs (Figures 4 and 6, Section 5.1). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
