(** Library root: the experiment harness.  Each experiment module
    regenerates the series/rows of one paper anchor (see DESIGN.md's
    per-experiment index and EXPERIMENTS.md for paper-vs-measured
    notes); this root names them and drives them by id. *)

module Table = Table

module E1 = Exp_e1
module E2 = Exp_e2
module E3 = Exp_e3
module E4 = Exp_e4
module E5 = Exp_e5
module E6 = Exp_e6
module E7 = Exp_e7
module E8 = Exp_e8
module E9 = Exp_e9
module E10 = Exp_e10
module E11 = Exp_e11
module E12 = Exp_e12
module E13 = Exp_e13
module E14 = Exp_e14
module E15 = Exp_e15
module E16 = Exp_e16

val all : (string * string * (unit -> unit)) list
(** Every experiment as [(id, what it reproduces, run)], in paper
    order. *)

val ids : string list
(** The experiment ids of {!all}, in order ("E1" .. "E16"). *)

val run_all : unit -> unit
(** Run every experiment in order, with a banner per experiment. *)

val run_one : string -> bool
(** Run the experiment with the given id; [false] if the id is
    unknown. *)
