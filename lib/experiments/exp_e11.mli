(** E11 — the 3-coloring reductions: multi-constraint (Lemma 6.3) and layer-wise hyperDAG (Theorem 5.2). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
