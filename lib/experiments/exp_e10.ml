(* E10 — The XP algorithm of Lemma 4.3: agreement with branch-and-bound
   and running-time growth in the cost parameter L at fixed n. *)

let run () =
  let rng = Support.Rng.create 55 in
  let hg = Workloads.Rand_hg.uniform rng ~n:8 ~m:7 ~min_size:2 ~max_size:3 in
  let exact =
    match Solvers.Exact.optimum ~eps:0.0 hg ~k:2 with
    | Some v -> v
    | None -> -1
  in
  let rows =
    List.map
      (fun limit ->
        let witness, seconds =
          Obs.Span.timed "exp.e10.xp_decision"
            ~attrs:[ ("cost_limit", Obs.Int limit) ]
            (fun () -> Solvers.Xp.decision ~eps:0.0 hg ~k:2 ~cost_limit:limit)
        in
        [
          Table.Int limit;
          Table.Bool (witness <> None);
          Table.Bool (limit >= exact);
          Table.Float (seconds *. 1000.0);
        ])
      [ 0; 1; 2; 3; 4 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E10: XP decision on a random 8-node hypergraph (B&B optimum = %d)"
         exact)
    ~anchor:"Lemma 4.3: n^f(L) time; decisions agree with branch-and-bound"
    ~columns:[ "L"; "XP: cost <= L?"; "B&B: cost <= L?"; "ms" ]
    rows;
  Table.note "running time grows steeply in L (the n^f(L) behaviour)."
