(** E15 — hyperDAG NP-hardness (Lemma B.3) and the Appendix I.1 counterexample variants. *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
