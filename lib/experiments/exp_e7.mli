(** E7 — recursive bisection vs direct k-way partitioning on the Lemma 7.2 construction (Figure 8). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
