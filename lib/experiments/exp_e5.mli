(** E5 — mu vs mu_p: polynomial cases against 3-Partition hardness instances (Theorem 5.5, Appendix F). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
