(* E9 — The hierarchy assignment problem (Theorem 7.5, Appendix H):
   b2 = 2 is solved exactly in polynomial time by maximum-weight matching
   (agreeing with the exact DP), b2 = 3 is NP-hard (3DM reduction), and
   the search-space count f(k) grows steeply. *)

let run () =
  let rng = Support.Rng.create 31 in
  let rows =
    List.map
      (fun k ->
        let n = 3 * k in
        let hg =
          Workloads.Rand_hg.uniform rng ~n ~m:(4 * k) ~min_size:2 ~max_size:4
        in
        let part = Partition.create ~k (Array.init n (fun v -> v mod k)) in
        let topo = Hierarchy.Topology.two_level ~b1:(k / 2) ~b2:2 ~g1:4.0 in
        let dp = Hierarchy.Assignment.exact_two_level topo hg part in
        let mt, mt_secs =
          Obs.Span.timed "exp.e9.matching_b2_2" (fun () ->
              Hierarchy.Assignment.matching_b2_2 topo hg part)
        in
        let ls = Hierarchy.Assignment.local_search topo hg part in
        [
          Table.Int k;
          Table.Float (Hierarchy.Assignment.count_assignments topo);
          Table.Float dp.Hierarchy.Assignment.cost;
          Table.Float mt.Hierarchy.Assignment.cost;
          Table.Bool
            (abs_float (dp.Hierarchy.Assignment.cost -. mt.Hierarchy.Assignment.cost)
            < 1e-6);
          Table.Float ls.Hierarchy.Assignment.cost;
          Table.Float (mt_secs *. 1000.0);
        ])
      [ 4; 6; 8; 10; 12 ]
  in
  Table.print ~title:"E9a: b2 = 2 assignment via matching = exact DP"
    ~anchor:"Lemma H.1: maximum-weight matching solves b2 = 2 exactly"
    ~columns:
      [ "k"; "f(k)"; "DP cost"; "matching cost"; "agree"; "local search";
        "matching ms" ]
    rows;
  (* b2 = 3 via 3DM. *)
  let rows_3dm =
    List.map
      (fun (name, inst) ->
        let red = Reductions.Assignment_from_three_dm.build inst in
        let has = Npc.Three_dm.has_perfect_matching inst in
        let via =
          Reductions.Assignment_from_three_dm.matching_exists_via_assignment red
        in
        [
          Table.Str name;
          Table.Int (Npc.Three_dm.size inst);
          Table.Int
            (Hypergraph.num_edges
               (Reductions.Assignment_from_three_dm.hypergraph red));
          Table.Bool has;
          Table.Bool via;
          Table.Bool (has = via);
        ])
      [
        ( "yes q=2",
          Npc.Three_dm.create ~q:2 [ (0, 0, 0); (1, 1, 1); (0, 1, 1); (1, 0, 0) ]
        );
        ("no  q=2", Npc.Three_dm.create ~q:2 [ (0, 0, 0); (1, 1, 0) ]);
        ("yes q=3", Npc.Three_dm.random_yes (Support.Rng.create 9) ~q:3 ~extra:5);
      ]
  in
  Table.print ~title:"E9b: b2 = 3 assignment decides 3DM"
    ~anchor:"Lemma H.2 / Thm 7.5: NP-hard already at b2 = 3"
    ~columns:[ "instance"; "q"; "edges"; "3DM?"; "via assignment"; "agree" ]
    rows_3dm
