(** E2 — the main reduction roundtrip on small SpES instances (Theorem 4.1 / Lemma C.1, Figure 3). *)

val run : unit -> unit
(** Regenerate this experiment's tables on stdout (via {!Table}). *)
