(* The XP algorithm of Lemma 4.3: decide whether an epsilon-balanced k-way
   partition of cost at most L exists, in time n^f(L).

   Exactly the paper's scheme:
   1. enumerate every "configuration": a set E0 of at most L hyperedges
      assumed cut, plus for each e in E0 a non-empty subset of the k colors
      allowed to appear in e;
   2. charge each configuration its (pessimistic) cost — w_e for cut-net,
      w_e * (|allowed_e| - 1) for connectivity — and discard configurations
      charging more than L (solutions where fewer colors actually appear
      are found in smaller configurations);
   3. delete E0, contract the connected components of the rest (they must
      be monochromatic), intersect the allowed color sets of the incident
      E0 edges per component;
   4. decide by dynamic programming whether the component sizes can be
      packed into k parts of capacity (1+eps)W/k respecting the allowed
      colors (the k-dimensional table of the paper, realized as a hash
      table over load vectors). *)

let component_structure hg e0 =
  let n = Hypergraph.num_nodes hg in
  let dsu = Support.Dsu.create n in
  let in_e0 = Array.make (Hypergraph.num_edges hg) false in
  List.iter (fun e -> in_e0.(e) <- true) e0;
  for e = 0 to Hypergraph.num_edges hg - 1 do
    if not in_e0.(e) then begin
      let first = ref (-1) in
      Hypergraph.iter_pins hg e (fun v ->
          if !first < 0 then first := v
          else ignore (Support.Dsu.union dsu !first v))
    end
  done;
  Support.Dsu.labeling dsu

(* Packing feasibility: components with weights and per-component allowed
   color masks; loads must stay within [cap]. *)
let packable ~k ~cap sizes allowed =
  let h = Array.length sizes in
  let module S = Set.Make (struct
    type t = int array

    let compare = Support.Order.int_array
  end) in
  let start = S.singleton (Array.make k 0) in
  let rec go i states =
    if S.is_empty states then false
    else if i = h then true
    else begin
      let next = ref S.empty in
      S.iter
        (fun loads ->
          for c = 0 to k - 1 do
            if
              allowed.(i) land (1 lsl c) <> 0
              && loads.(c) + sizes.(i) <= cap
            then begin
              let loads' = Array.copy loads in
              loads'.(c) <- loads.(c) + sizes.(i);
              (* Canonicalize symmetric color classes?  Loads are already a
                 minimal state; dedup via the set. *)
              next := S.add loads' !next
            end
          done)
        states;
      go (i + 1) !next
    end
  in
  go 0 start

(* Check one configuration; returns a witness partition if feasible. *)
let check_configuration ?(metric = Partition.Connectivity)
    ?(variant = Partition.Strict) ~eps hg ~k ~cost_limit e0 allowed_of_edge =
  let config_cost =
    List.fold_left
      (fun acc e ->
        let w = Hypergraph.edge_weight hg e in
        let colors =
          match metric with
          | Partition.Cut_net -> 1
          | Partition.Connectivity ->
              let mask = allowed_of_edge e in
              let rec popcount m = if m = 0 then 0 else (m land 1) + popcount (m lsr 1) in
              popcount mask - 1
        in
        acc + (w * colors))
      0 e0
  in
  if config_cost > cost_limit then None
  else begin
    let label, count = component_structure hg e0 in
    let n = Hypergraph.num_nodes hg in
    let sizes = Array.make count 0 in
    for v = 0 to n - 1 do
      sizes.(label.(v)) <- sizes.(label.(v)) + Hypergraph.node_weight hg v
    done;
    let full_mask = (1 lsl k) - 1 in
    let allowed = Array.make count full_mask in
    List.iter
      (fun e ->
        let mask = allowed_of_edge e in
        Hypergraph.iter_pins hg e (fun v ->
            allowed.(label.(v)) <- allowed.(label.(v)) land mask))
      e0;
    if Array.exists (fun mask -> mask = 0) allowed then None
    else begin
      let cap =
        Partition.capacity ~variant ~eps
          ~total_weight:(Hypergraph.total_node_weight hg)
          ~k ()
      in
      if not (packable ~k ~cap sizes allowed) then None
      else begin
        (* Rebuild one concrete packing for the witness. *)
        let rec search i loads acc =
          if i = Array.length sizes then Some (List.rev acc)
          else begin
            let rec try_color c =
              if c >= k then None
              else if
                allowed.(i) land (1 lsl c) <> 0 && loads.(c) + sizes.(i) <= cap
              then begin
                loads.(c) <- loads.(c) + sizes.(i);
                match search (i + 1) loads (c :: acc) with
                | Some _ as r -> r
                | None ->
                    loads.(c) <- loads.(c) - sizes.(i);
                    try_color (c + 1)
              end
              else try_color (c + 1)
            in
            try_color 0
          end
        in
        match search 0 (Array.make k 0) [] with
        | None -> None (* packable said yes; greedy witness search is complete *)
        | Some comp_colors ->
            let comp_colors = Array.of_list comp_colors in
            let part =
              Partition.create ~k
                (Array.init n (fun v -> comp_colors.(label.(v))))
            in
            Some part
      end
    end
  end

(* Main entry: is there an eps-balanced k-way partition of cost <= L? *)
let decision ?(metric = Partition.Connectivity) ?(variant = Partition.Strict)
    ?(eps = 0.0) hg ~k ~cost_limit =
  let m = Hypergraph.num_edges hg in
  let witness = ref None in
  let full_mask = (1 lsl k) - 1 in
  (* Masks with at least 2 colors; single-color masks are equivalent to the
     configuration without the edge (pessimistic cost would overcharge). *)
  let masks =
    List.filter
      (fun mask ->
        let rec pop m = if m = 0 then 0 else (m land 1) + pop (m lsr 1) in
        pop mask >= 2)
      (Support.Util.list_init full_mask (fun i -> i + 1))
  in
  (* Subsets of edges of size 0..min(L, m) (cost >= 1 per cut edge for both
     metrics with weights >= 1). *)
  let found = ref false in
  let max_cut = min cost_limit m in
  let size = ref 0 in
  while (not !found) && !size <= max_cut do
    Support.Util.iter_subsets ~n:m ~k:!size (fun subset ->
        if not !found then begin
          let e0 = Array.to_list subset in
          let mask_assignment = Array.make !size full_mask in
          let rec assign_masks i =
            if !found then ()
            else if i = !size then begin
              let allowed_of_edge e =
                let rec idx j =
                  if subset.(j) = e then j else idx (j + 1)
                in
                mask_assignment.(idx 0)
              in
              match
                check_configuration ~metric ~variant ~eps hg ~k ~cost_limit e0
                  allowed_of_edge
              with
              | Some part -> begin
                  found := true;
                  witness := Some part
                end
              | None -> ()
            end
            else
              List.iter
                (fun mask ->
                  if not !found then begin
                    mask_assignment.(i) <- mask;
                    assign_masks (i + 1)
                  end)
                masks
          in
          assign_masks 0
        end);
    incr size
  done;
  (match !witness with
  | Some part ->
      ignore
        (Audit_gate.checked ~eps ~variant
           ~bound:{ Analysis_core.Audit_partition.metric; cost = cost_limit }
           hg part)
  | None -> ());
  !witness

(* Multi-constraint variant (second half of Lemma 6.2, Appendix D.2): the
   packing DP tracks one load per (constraint, color) pair instead of one
   per color.  Components carry their intersection size with every
   constraint class. *)
let packable_multi ~k ~caps intersections allowed =
  let h = Array.length intersections in
  let c = Array.length caps in
  let module S = Set.Make (struct
    type t = int array

    let compare = Support.Order.int_array
  end) in
  let start = S.singleton (Array.make (c * k) 0) in
  let rec go i states =
    if S.is_empty states then false
    else if i = h then true
    else begin
      let next = ref S.empty in
      S.iter
        (fun loads ->
          for color = 0 to k - 1 do
            if allowed.(i) land (1 lsl color) <> 0 then begin
              let ok = ref true in
              for j = 0 to c - 1 do
                if
                  loads.((j * k) + color) + intersections.(i).(j) > caps.(j)
                then ok := false
              done;
              if !ok then begin
                let loads' = Array.copy loads in
                for j = 0 to c - 1 do
                  loads'.((j * k) + color) <-
                    loads'.((j * k) + color) + intersections.(i).(j)
                done;
                next := S.add loads' !next
              end
            end
          done)
        states;
      go (i + 1) !next
    end
  in
  go 0 start

(* Decision for the multi-constraint problem (Definition 6.1): cost <= L
   with every class V_j eps-balanced separately. *)
let decision_multi ?(metric = Partition.Connectivity)
    ?(variant = Partition.Strict) ?(eps = 0.0) hg ~k ~constraints ~cost_limit =
  let m = Hypergraph.num_edges hg in
  let n = Hypergraph.num_nodes hg in
  let subsets = Partition.Multi_constraint.subsets constraints in
  let c = Array.length subsets in
  let caps =
    Array.map
      (fun subset ->
        Partition.capacity ~variant ~eps ~total_weight:(Array.length subset)
          ~k ())
      subsets
  in
  let class_of = Array.make n (-1) in
  Array.iteri
    (fun j subset -> Array.iter (fun v -> class_of.(v) <- j) subset)
    subsets;
  let full_mask = (1 lsl k) - 1 in
  let masks =
    List.filter
      (fun mask ->
        let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
        pop mask >= 2)
      (Support.Util.list_init full_mask (fun i -> i + 1))
  in
  let found = ref None in
  let check_config subset mask_assignment =
    let e0 = Array.to_list subset in
    let config_cost =
      List.fold_left
        (fun acc e ->
          let w = Hypergraph.edge_weight hg e in
          match metric with
          | Partition.Cut_net -> acc + w
          | Partition.Connectivity ->
              let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
              let idx =
                let rec find j = if subset.(j) = e then j else find (j + 1) in
                find 0
              in
              acc + (w * (pop mask_assignment.(idx) - 1)))
        0 e0
    in
    if config_cost > cost_limit then ()
    else begin
      let label, count = component_structure hg e0 in
      let allowed = Array.make count full_mask in
      List.iter
        (fun e ->
          let idx =
            let rec find j = if subset.(j) = e then j else find (j + 1) in
            find 0
          in
          Hypergraph.iter_pins hg e (fun v ->
              allowed.(label.(v)) <-
                allowed.(label.(v)) land mask_assignment.(idx)))
        e0;
      if not (Array.exists (fun x -> x = 0) allowed) then begin
        let intersections = Array.make_matrix count c 0 in
        for v = 0 to n - 1 do
          if class_of.(v) >= 0 then
            intersections.(label.(v)).(class_of.(v)) <-
              intersections.(label.(v)).(class_of.(v)) + 1
        done;
        if packable_multi ~k ~caps intersections allowed then begin
          (* Rebuild a witness greedily. *)
          let loads = Array.make (c * k) 0 in
          let comp_color = Array.make count (-1) in
          let rec assign i =
            if i = count then true
            else begin
              let rec try_color color =
                if color >= k then false
                else if allowed.(i) land (1 lsl color) = 0 then
                  try_color (color + 1)
                else begin
                  let fits = ref true in
                  for j = 0 to c - 1 do
                    if
                      loads.((j * k) + color) + intersections.(i).(j)
                      > caps.(j)
                    then fits := false
                  done;
                  if !fits then begin
                    for j = 0 to c - 1 do
                      loads.((j * k) + color) <-
                        loads.((j * k) + color) + intersections.(i).(j)
                    done;
                    comp_color.(i) <- color;
                    if assign (i + 1) then true
                    else begin
                      for j = 0 to c - 1 do
                        loads.((j * k) + color) <-
                          loads.((j * k) + color) - intersections.(i).(j)
                      done;
                      comp_color.(i) <- -1;
                      try_color (color + 1)
                    end
                  end
                  else try_color (color + 1)
                end
              in
              try_color 0
            end
          in
          if assign 0 then
            found :=
              Some
                (Partition.create ~k
                   (Array.init n (fun v -> comp_color.(label.(v)))))
        end
      end
    end
  in
  let max_cut = min cost_limit m in
  let size = ref 0 in
  while !found = None && !size <= max_cut do
    Support.Util.iter_subsets ~n:m ~k:!size (fun subset ->
        if !found = None then begin
          let mask_assignment = Array.make !size full_mask in
          let rec assign_masks i =
            if !found <> None then ()
            else if i = !size then check_config subset mask_assignment
            else
              List.iter
                (fun mask ->
                  if !found = None then begin
                    mask_assignment.(i) <- mask;
                    assign_masks (i + 1)
                  end)
                masks
          in
          assign_masks 0
        end);
    incr size
  done;
  (match !found with
  | Some part ->
      ignore
        (Audit_gate.checked ~variant ~constraints ~constraints_eps:eps
           ~bound:{ Analysis_core.Audit_partition.metric; cost = cost_limit }
           hg part)
  | None -> ());
  !found

(* Optimize by increasing L; [limit] caps the search. *)
let optimum ?metric ?variant ?eps hg ~k ~limit =
  let rec go l =
    if l > limit then None
    else
      match decision ?metric ?variant ?eps hg ~k ~cost_limit:l with
      | Some part -> Some (l, part)
      | None -> go (l + 1)
  in
  go 0
