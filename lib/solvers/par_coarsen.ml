(* Parallel propose/commit coarsening (deterministic-mode mt-KaHyPar
   style, arXiv:2106.08696): the propose phase is embarrassingly
   parallel and writes only its own node's slot; the commit phase is a
   sequential sweep in node-id order, so the round's outcome is a pure
   function of the hypergraph — independent of the worker count and of
   the task schedule.

   This intentionally differs from the sequential {!Coarsen.cluster}
   (random visit order, merges visible to later ratings within the same
   pass): the parallel path trades that adaptivity for reproducibility,
   and recovers multi-node clusters across rounds instead (proposals
   form chains — v -> u -> w commits into one cluster when caps allow,
   and the hierarchy loop runs rounds until the shrink stalls). *)

(* Iterative leader lookup with path compression, as in Coarsen. *)
let find leader v =
  let root = ref v in
  while leader.(!root) <> !root do
    root := leader.(!root)
  done;
  let root = !root in
  let c = ref v in
  while leader.(!c) <> root do
    let next = leader.(!c) in
    leader.(!c) <- root;
    c := next
  done;
  root

(* Nodes per propose task: coarse enough to amortize the fork-join
   epoch, fine enough that dynamic claiming balances skewed degrees. *)
let chunk = 1024

(* Fill [propose] with each node's best-rated partner (or -1), in
   parallel over node chunks.  Writes are disjoint (task i owns chunk
   i's slots), reads are the frozen CSR views — race-free by
   construction.  The weight cap uses the nodes' own weights here; the
   commit sweep re-checks against live cluster weights. *)
let propose_round pool wss hg ~max_cluster_weight propose =
  let n = Hypergraph.num_nodes hg in
  let chunks = (n + chunk - 1) / chunk in
  ignore
    (Parallel.map pool ~n:chunks (fun ~worker c ->
         let ws = wss.(worker) in
         Workspace.ensure ws ~n ~k:1;
         let score = ws.Workspace.score in
         let seen = ws.Workspace.seen in
         let cand = ws.Workspace.cand in
         let lo = c * chunk and hi = min n ((c + 1) * chunk) - 1 in
         for v = lo to hi do
           let stamp = Workspace.next_stamp ws in
           Support.Int_vec.clear cand;
           Hypergraph.iter_incident hg v (fun e ->
               let size = Hypergraph.edge_size hg e in
               if size > 1 && size <= 64 then begin
                 let r =
                   float_of_int (Hypergraph.edge_weight hg e)
                   /. float_of_int (size - 1)
                 in
                 Hypergraph.iter_pins hg e (fun u ->
                     if u <> v then begin
                       if seen.(u) <> stamp then begin
                         seen.(u) <- stamp;
                         score.(u) <- 0.0;
                         Support.Int_vec.push cand u
                       end;
                       score.(u) <- score.(u) +. r
                     end)
               end);
           let wv = Hypergraph.node_weight hg v in
           let best = ref (-1) and best_r = ref 0.0 in
           Support.Int_vec.iter
             (fun u ->
               if Hypergraph.node_weight hg u + wv <= max_cluster_weight then
                 if
                   !best < 0
                   || score.(u) > !best_r
                   || (score.(u) = !best_r && u < !best)
                 then begin
                   best := u;
                   best_r := score.(u)
                 end)
             cand;
           propose.(v) <- !best
         done))

(* Sequential commit in node-id order: union v with its proposal when
   the live cluster weights still fit the cap, then compact leaders to
   consecutive labels exactly as the sequential clustering does. *)
let commit_round hg ~max_cluster_weight propose =
  let n = Hypergraph.num_nodes hg in
  let leader = Array.init n (fun v -> v) in
  let weight = Array.init n (fun v -> Hypergraph.node_weight hg v) in
  for v = 0 to n - 1 do
    let u = propose.(v) in
    if u >= 0 then begin
      let lv = find leader v and lu = find leader u in
      if lv <> lu && weight.(lv) + weight.(lu) <= max_cluster_weight then begin
        leader.(lv) <- lu;
        weight.(lu) <- weight.(lu) + weight.(lv)
      end
    end
  done;
  let label = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let r = find leader v in
    if label.(r) < 0 then begin
      label.(r) <- !next;
      incr next
    end
  done;
  for v = 0 to n - 1 do
    label.(v) <- label.(find leader v)
  done;
  (label, !next)

(* Interned to the same series the sequential coarsener feeds, so the
   parallel path shows up in the usual coarsen.* rollups. *)
let c_levels = Obs.Counter.make "coarsen.levels"
let h_shrink = Obs.Histogram.make "coarsen.shrink"

let one_level pool wss hg ~max_cluster_weight =
  Obs.Span.with_ "coarsen.level"
    ~attrs:[ ("nodes_in", Obs.Int (Hypergraph.num_nodes hg)) ]
    (fun () ->
      let n = Hypergraph.num_nodes hg in
      let propose = Array.make (max n 1) (-1) in
      propose_round pool wss hg ~max_cluster_weight propose;
      let label, count = commit_round hg ~max_cluster_weight propose in
      if count = n then None
      else begin
        let coarse = Hypergraph.contract hg label count in
        Obs.Counter.incr c_levels;
        Obs.Span.attr "nodes_out" (Obs.Int count);
        Obs.Histogram.observe h_shrink (float_of_int count /. float_of_int n);
        Some { Coarsen.coarse; label }
      end)

let hierarchy pool wss hg ~k ~stop_nodes =
  Obs.Span.with_ "coarsen"
    ~attrs:
      [
        ("n", Obs.Int (Hypergraph.num_nodes hg));
        ("m", Obs.Int (Hypergraph.num_edges hg));
        ("k", Obs.Int k);
        ("threads", Obs.Int (Parallel.threads pool));
      ]
    (fun () ->
      let total = Hypergraph.total_node_weight hg in
      let max_cluster_weight = max 1 (Support.Util.ceil_div total (4 * k)) in
      let rec go acc current =
        if Hypergraph.num_nodes current <= stop_nodes then
          (current, List.rev acc)
        else
          match one_level pool wss current ~max_cluster_weight with
          | None -> (current, List.rev acc)
          | Some level ->
              let shrink =
                float_of_int (Hypergraph.num_nodes level.Coarsen.coarse)
                /. float_of_int (Hypergraph.num_nodes current)
              in
              if shrink > 0.95 then (current, List.rev acc)
              else go (level :: acc) level.Coarsen.coarse
      in
      let coarsest, levels = go [] hg in
      Obs.Span.attr "levels" (Obs.Int (List.length levels));
      Obs.Span.attr "coarsest_nodes" (Obs.Int (Hypergraph.num_nodes coarsest));
      (coarsest, levels))
