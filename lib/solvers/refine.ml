(* FM-style k-way refinement with gain buckets, node locking and rollback
   to the best prefix of the move sequence.  Works for any k >= 2 and both
   cost metrics; for k = 2 it is classic Fiduccia-Mattheyses.

   The hot path is boundary-driven with an incrementally maintained gain
   cache (the design of production multilevel partitioners, see
   arXiv:2106.08696):

   - Only nodes incident to a cut edge (λ_e >= 2) are seeded into the
     bucket queue; interior nodes cannot improve the cost and join the
     queue lazily when a neighbouring move makes them boundary.
   - Each node carries a cached gain row.  Under the connectivity metric
     the row is the exact decomposition  delta(v -> q) = penalty(v, q) -
     benefit(v)  with  benefit(v) = Σ_{e ∋ v} w_e·[count(e, part v) = 1]
     and  penalty(v, q) = Σ_{e ∋ v} w_e·[count(e, q) = 0],  updated in
     place by the four Pin_counts transitions of every applied move
     (count(e, src) hitting 1/0, count(e, dst) leaving 0/1 — exactly the
     events that can flip one of the indicator terms).  Under cut-net the
     same row caches the raw delta vector and transitions invalidate it,
     so touched neighbours recompute once instead of at every pop.
   - Selecting the best move of a cached node is O(k); the per-move accept
     check is O(1) against an incrementally maintained overweight-part
     count; the per-pass max-node-weight / max-gain scans are hoisted
     into the workspace and run once per [refine] call.

   Queue priorities are deliberately lazy: a transition patches the gain
   rows but does not reposition live queue entries — a popped node whose
   recorded gain no longer matches its cached best is re-inserted with the
   fresh value, which now costs O(k) from the row instead of a full
   O(deg·k) recompute.  Between two applied moves every node is corrected
   at most once, so a pass terminates.  The one eager queue operation is
   activation: pins of an edge whose λ just left 1 (a Dst_first transition)
   are newly boundary and enter the queue at their cached best gain. *)

type config = {
  eps : float;
  variant : Partition.balance;
  metric : Partition.metric;
  max_passes : int;
  max_fruitless : int;
}

let default_config =
  { eps = 0.0; variant = Partition.Strict; metric = Partition.Connectivity;
    max_passes = 8; max_fruitless = 350 }

(* Hot-path instrumentation: pre-interned counters only — each update is a
   branch and an int store, and a no-op allocation-free branch when obs is
   disabled (the FM micro-benchmark budget is < 2% overhead). *)
let c_pops = Obs.Counter.make "fm.pops"
let c_stale = Obs.Counter.make "fm.stale_reinserts"
let c_applied = Obs.Counter.make "fm.moves_applied"
let c_accepted = Obs.Counter.make "fm.moves_accepted"
let c_rolled_back = Obs.Counter.make "fm.moves_rolled_back"
let c_rebalance = Obs.Counter.make "fm.rebalance_moves"
let c_cache_hits = Obs.Counter.make "fm.gain_cache.hits"
let c_cache_misses = Obs.Counter.make "fm.gain_cache.misses"
let c_delta_updates = Obs.Counter.make "fm.gain_cache.delta_updates"
let h_pass_gain = Obs.Histogram.make "fm.pass_gain"
let h_final_cost = Obs.Histogram.make "fm.final_cost"
let h_boundary = Obs.Histogram.make "fm.boundary_size"
let h_pass_alloc = Obs.Histogram.make "fm.pass_alloc_words"

(* Mutable refinement state for one [refine] call.  [cache_stamp] marks
   valid gain rows; it starts fresh per call (rows from a previous
   hypergraph / partition can never leak in) and is bumped again after a
   non-empty rollback, which bulk-invalidates every row in O(1) — cheaper
   than patching rows along the rolled-back suffix, since a pass moves
   essentially every boundary node and thereby invalidates its own row
   anyway.  [lock_stamp] is refreshed per pass, and the current move's
   endpoints live in [mv_*] so the Pin_counts hook is allocated once per
   call, not once per move. *)
type ctx = {
  cfg : config;
  hg : Hypergraph.t;
  counts : Pin_counts.t;
  part : int array;
  k : int;
  weights : int array;
  cap : int;
  ws : Workspace.t;
  (* Flat CSR / count views for closure-free hot loops. *)
  pins : int array;
  pin_offs : int array;
  inc : int array;
  inc_offs : int array;
  pcounts : int array;
  plambdas : int array;
  edge_w : int array; (* dense copies: an accessor call per read is *)
  node_w : int array; (* measurable at hook frequencies *)
  mutable cache_stamp : int;
  mutable lock_stamp : int;
  mutable overweight : int; (* #parts with weight > cap, kept incrementally *)
  mutable cap_limit : int; (* feasibility bound of the current phase *)
  mutable track_touch : bool; (* collect activation candidates? *)
  mutable mv_v : int;
  mutable mv_src : int;
  mutable mv_dst : int;
  (* Delta of the move [best_move] last computed, read by its callers.
     Lives in the ctx (one per solve) rather than at module level so
     concurrent solves cannot race on it. *)
  mutable best_delta : int;
  (* Hot-loop counter shadows, flushed to the Obs counters once per pass:
     an [Obs.Counter.incr] is cheap but not free, and the patch loops run
     millions of times per solve. *)
  mutable n_pops : int;
  mutable n_stale : int;
  mutable n_applied : int;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_patches : int;
  (* Off-main-domain calls capture their fm.* emissions here instead of
     the Obs registries (which are inert on worker domains); the
     parallel driver commits the batch at its join barrier. *)
  stats : Fm_stats.t option;
}

let flush_counters ctx =
  (match ctx.stats with
  | Some s ->
      s.Fm_stats.pops <- s.Fm_stats.pops + ctx.n_pops;
      s.Fm_stats.stale <- s.Fm_stats.stale + ctx.n_stale;
      s.Fm_stats.applied <- s.Fm_stats.applied + ctx.n_applied;
      s.Fm_stats.cache_hits <- s.Fm_stats.cache_hits + ctx.n_hits;
      s.Fm_stats.cache_misses <- s.Fm_stats.cache_misses + ctx.n_misses;
      s.Fm_stats.delta_updates <- s.Fm_stats.delta_updates + ctx.n_patches
  | None ->
      Obs.Counter.add c_pops ctx.n_pops;
      Obs.Counter.add c_stale ctx.n_stale;
      Obs.Counter.add c_applied ctx.n_applied;
      Obs.Counter.add c_cache_hits ctx.n_hits;
      Obs.Counter.add c_cache_misses ctx.n_misses;
      Obs.Counter.add c_delta_updates ctx.n_patches);
  ctx.n_pops <- 0;
  ctx.n_stale <- 0;
  ctx.n_applied <- 0;
  ctx.n_hits <- 0;
  ctx.n_misses <- 0;
  ctx.n_patches <- 0

let locked ctx v = ctx.ws.Workspace.locked.(v) = ctx.lock_stamp

(* Build node v's gain row if its stamp is stale.  Connectivity fills the
   benefit/penalty decomposition in one incident sweep; cut-net caches the
   raw delta vector (k move_delta evaluations).  Either way the row then
   answers best-move queries in O(k) until a transition invalidates it. *)
let ensure_row ctx v =
  let ws = ctx.ws in
  if ws.Workspace.cache_stamp.(v) = ctx.cache_stamp then
    ctx.n_hits <- ctx.n_hits + 1
  else begin
    ctx.n_misses <- ctx.n_misses + 1;
    let k = ctx.k in
    let base = v * k in
    let penalty = ws.Workspace.penalty in
    let src = ctx.part.(v) in
    (match ctx.cfg.metric with
    | Partition.Connectivity ->
        for q = 0 to k - 1 do
          penalty.(base + q) <- 0
        done;
        let benefit = ref 0 in
        for i = ctx.inc_offs.(v) to ctx.inc_offs.(v + 1) - 1 do
          let e = ctx.inc.(i) in
          let w = ctx.edge_w.(e) in
          let row = e * k in
          if ctx.pcounts.(row + src) = 1 then benefit := !benefit + w;
          for q = 0 to k - 1 do
            if q <> src && ctx.pcounts.(row + q) = 0 then
              penalty.(base + q) <- penalty.(base + q) + w
          done
        done;
        ws.Workspace.benefit.(v) <- !benefit
    | Partition.Cut_net ->
        for q = 0 to k - 1 do
          if q <> src then
            penalty.(base + q) <-
              Pin_counts.move_delta ~metric:Partition.Cut_net ctx.counts v
                ~src ~dst:q
        done;
        ws.Workspace.benefit.(v) <- 0);
    ws.Workspace.cache_stamp.(v) <- ctx.cache_stamp
  end

(* Best feasible move of node v from its cached row: the destination of
   minimal delta among parts with room under [ctx.cap_limit] (first such
   part wins ties, matching the pre-cache scan order).  Returns the packed
   destination or -1, with the delta in [ctx.best_delta]. *)
let best_move ctx v =
  ensure_row ctx v;
  let ws = ctx.ws in
  let src = ctx.part.(v) in
  let w = ctx.node_w.(v) in
  let base = v * ctx.k in
  let benefit = ws.Workspace.benefit.(v) in
  let best = ref (-1) and best_delta = ref max_int in
  for q = 0 to ctx.k - 1 do
    if q <> src && ctx.weights.(q) + w <= ctx.cap_limit then begin
      let delta = ws.Workspace.penalty.(base + q) - benefit in
      if delta < !best_delta then begin
        best := q;
        best_delta := delta
      end
    end
  done;
  ctx.best_delta <- !best_delta;
  !best

(* The Pin_counts transition hook: push exact delta-gain updates (or, for
   cut-net, invalidations) to the moved node's neighbours.  Runs after the
   edge's counts and λ are updated and after the partition places mv_v in
   mv_dst.  Pins of a Dst_first edge are additionally collected as
   activation candidates when [track_touch] is on: that edge's λ just left
   1, so every pin of it is now boundary. *)
let touch ctx u =
  let ws = ctx.ws in
  if ctx.track_touch && ws.Workspace.touch.(u) <> ws.Workspace.stamp
  then begin
    ws.Workspace.touch.(u) <- ws.Workspace.stamp;
    Support.Int_vec.push ws.Workspace.touched u
  end

let on_transition ctx e tr =
  let ws = ctx.ws in
  let v = ctx.mv_v in
  let stamp = ctx.cache_stamp in
  let cache_stamp = ws.Workspace.cache_stamp in
  let pins = ctx.pins in
  let lo = ctx.pin_offs.(e) and hi = ctx.pin_offs.(e + 1) - 1 in
  match ctx.cfg.metric with
  | Partition.Cut_net ->
      (* Any fired transition can change a pin's cached delta vector:
         invalidate, and recompute lazily at the next pop. *)
      for i = lo to hi do
        let u = pins.(i) in
        if u <> v then begin
          if cache_stamp.(u) = stamp then begin
            cache_stamp.(u) <- 0;
            ctx.n_patches <- ctx.n_patches + 1
          end;
          if tr = Pin_counts.Dst_first then touch ctx u
        end
      done
  | Partition.Connectivity -> (
      let w = ctx.edge_w.(e) in
      let k = ctx.k in
      let penalty = ws.Workspace.penalty in
      let benefit = ws.Workspace.benefit in
      match tr with
      | Pin_counts.Src_gone ->
          (* No pin of e remains in src: src stopped costing anyone. *)
          for i = lo to hi do
            let u = pins.(i) in
            if u <> v && cache_stamp.(u) = stamp then begin
              let j = (u * k) + ctx.mv_src in
              penalty.(j) <- penalty.(j) + w;
              ctx.n_patches <- ctx.n_patches + 1
            end
          done
      | Pin_counts.Src_lone ->
          (* Exactly one pin of e is left in src: e is now lone for it. *)
          for i = lo to hi do
            let u = pins.(i) in
            if u <> v && ctx.part.(u) = ctx.mv_src && cache_stamp.(u) = stamp
            then begin
              benefit.(u) <- benefit.(u) + w;
              ctx.n_patches <- ctx.n_patches + 1
            end
          done
      | Pin_counts.Dst_first ->
          (* e reached dst: moving there no longer costs its pins. *)
          for i = lo to hi do
            let u = pins.(i) in
            if u <> v then begin
              if cache_stamp.(u) = stamp then begin
                let j = (u * k) + ctx.mv_dst in
                penalty.(j) <- penalty.(j) - w;
                ctx.n_patches <- ctx.n_patches + 1
              end;
              touch ctx u
            end
          done
      | Pin_counts.Dst_paired ->
          (* The formerly lone dst pin of e got company. *)
          for i = lo to hi do
            let u = pins.(i) in
            if u <> v && ctx.part.(u) = ctx.mv_dst && cache_stamp.(u) = stamp
            then begin
              benefit.(u) <- benefit.(u) - w;
              ctx.n_patches <- ctx.n_patches + 1
            end
          done)

(* Re-color v to dst and maintain weights plus the O(1) overweight count
   (shared by applied moves and the hook-free rollback). *)
let shift_node ctx v ~src ~dst =
  ctx.part.(v) <- dst;
  let w = ctx.node_w.(v) in
  let was_over = ctx.weights.(src) > ctx.cap in
  ctx.weights.(src) <- ctx.weights.(src) - w;
  if was_over && ctx.weights.(src) <= ctx.cap then
    ctx.overweight <- ctx.overweight - 1;
  let was_over = ctx.weights.(dst) > ctx.cap in
  ctx.weights.(dst) <- ctx.weights.(dst) + w;
  if (not was_over) && ctx.weights.(dst) > ctx.cap then
    ctx.overweight <- ctx.overweight + 1

(* Apply the move v: src -> dst — partition first (the hook reads pin
   colors), then weights + the O(1) overweight count, then Pin_counts with
   the delta-update hook.  With [activate] the newly-boundary neighbours
   collected by the hook enter the queue at their cached best gain;
   rebalancing skips that (its eligible set only shrinks) but still routes
   through the hook so the gain cache stays exact. *)
let apply_move ctx queue hook v ~src ~dst ~activate =
  let ws = ctx.ws in
  shift_node ctx v ~src ~dst;
  ws.Workspace.cache_stamp.(v) <- 0;
  ctx.mv_v <- v;
  ctx.mv_src <- src;
  ctx.mv_dst <- dst;
  ctx.track_touch <- activate;
  if activate then begin
    ignore (Workspace.next_stamp ws) (* touch-dedup stamp for this move *);
    Support.Int_vec.clear ws.Workspace.touched
  end;
  Pin_counts.move ~on_transition:hook ctx.counts v ~src ~dst;
  if activate then
    Support.Int_vec.iter
      (fun u ->
        if (not (locked ctx u)) && not (Support.Bucket_queue.mem queue u)
        then begin
          let dst = best_move ctx u in
          if dst >= 0 then
            Support.Bucket_queue.insert queue u (-ctx.best_delta)
        end)
      ws.Workspace.touched

(* Seed the queue with the boundary: pins of edges with λ >= 2, each at
   its cached best gain.  One sweep over the edges, stamp-deduplicated. *)
let seed_boundary ctx queue =
  let ws = ctx.ws in
  let stamp = Workspace.next_stamp ws in
  let seen = ws.Workspace.seen in
  let boundary_size = ref 0 in
  for e = 0 to Hypergraph.num_edges ctx.hg - 1 do
    if ctx.plambdas.(e) >= 2 then
      for i = ctx.pin_offs.(e) to ctx.pin_offs.(e + 1) - 1 do
        let v = ctx.pins.(i) in
        if seen.(v) <> stamp then begin
          seen.(v) <- stamp;
          incr boundary_size;
          let dst = best_move ctx v in
          if dst >= 0 then
            Support.Bucket_queue.insert queue v (-ctx.best_delta)
        end
      done
  done;
  match ctx.stats with
  | Some s -> Fm_stats.observe_int s.Fm_stats.boundary !boundary_size
  | None -> Obs.Histogram.observe_int h_boundary !boundary_size

(* Full seeding: every node with a feasible move, as the pre-cache refiner
   did.  Used as a stall fallback — interior nodes only ever have
   non-negative deltas, but chains of such moves (classic FM hill
   climbing) sometimes reach strictly better valleys that boundary-only
   passes cannot, e.g. when whole clusters must migrate together. *)
let seed_all ctx queue =
  for v = 0 to Array.length ctx.node_w - 1 do
    let dst = best_move ctx v in
    if dst >= 0 then Support.Bucket_queue.insert queue v (-ctx.best_delta)
  done

(* One FM pass; returns the (non-negative) total gain realized.

   During the pass moves may overfill a part by one node (the classic FM
   slack that lets a perfectly balanced bisection trade nodes); the
   rollback then only accepts prefixes whose imbalance is no worse than the
   starting one, so a feasible partition never degrades. *)
let fm_pass ctx queue hook ~full =
  let ws = ctx.ws in
  ctx.lock_stamp <- Workspace.next_stamp ws;
  ctx.cap_limit <- ctx.cap + ws.Workspace.max_node_weight;
  Support.Bucket_queue.clear queue;
  if full then seed_all ctx queue else seed_boundary ctx queue;
  let start_overweight = ctx.overweight in
  let moves = ws.Workspace.moves in
  Support.Int_vec.clear moves;
  let cum = ref 0 and best_cum = ref 0 and best_len = ref 0 and len = ref 0 in
  let fruitless = ref 0 in
  let continue = ref true in
  while !continue do
    match Support.Bucket_queue.pop_max queue with
    | None -> continue := false
    | Some (v, prio) ->
        ctx.n_pops <- ctx.n_pops + 1;
        if not (locked ctx v) then begin
          let dst = best_move ctx v in
          if dst >= 0 then begin
            let delta = ctx.best_delta in
            if -delta <> prio then begin
              (* Stale priority: correct and retry later. *)
              ctx.n_stale <- ctx.n_stale + 1;
              Support.Bucket_queue.insert queue v (-delta)
            end
            else begin
              let src = ctx.part.(v) in
              ctx.n_applied <- ctx.n_applied + 1;
              apply_move ctx queue hook v ~src ~dst ~activate:true;
              ws.Workspace.locked.(v) <- ctx.lock_stamp;
              Support.Int_vec.push moves v;
              Support.Int_vec.push moves src;
              Support.Int_vec.push moves dst;
              incr len;
              cum := !cum + (-delta);
              if !cum > !best_cum && ctx.overweight <= start_overweight
              then begin
                best_cum := !cum;
                best_len := !len;
                fruitless := 0
              end
              else begin
                incr fruitless;
                (* Deep in a plateau or valley with no new best in sight:
                   cut the pass short, everything past [best_len] is rolled
                   back anyway. *)
                if !fruitless >= ctx.cfg.max_fruitless then continue := false
              end
            end
          end
        end
  done;
  (* Roll back the moves after the best (balance-acceptable) prefix with
     plain (hook-free) count updates, then bulk-invalidate the gain cache
     by bumping the call's stamp: a pass moves nearly every boundary node,
     and a node's own move already invalidates its row, so patching rows
     along the rolled-back suffix would mostly groom rows that are stale
     regardless.  An empty rollback keeps every row valid. *)
  if !len > !best_len then begin
    for i = !len - 1 downto !best_len do
      let v = Support.Int_vec.get moves (3 * i) in
      let src = Support.Int_vec.get moves ((3 * i) + 1) in
      let dst = Support.Int_vec.get moves ((3 * i) + 2) in
      shift_node ctx v ~src:dst ~dst:src;
      Pin_counts.move ctx.counts v ~src:dst ~dst:src
    done;
    ctx.cache_stamp <- Workspace.next_stamp ws
  end;
  (match ctx.stats with
  | Some s ->
      s.Fm_stats.accepted <- s.Fm_stats.accepted + !best_len;
      s.Fm_stats.rolled_back <- s.Fm_stats.rolled_back + (!len - !best_len)
  | None ->
      Obs.Counter.add c_accepted !best_len;
      Obs.Counter.add c_rolled_back (!len - !best_len));
  flush_counters ctx;
  !best_cum

(* Push overweight parts under capacity with cheapest-delta moves; used when
   coarse-level solutions project to an infeasible partition.  The bucket
   queue holds exactly the nodes of overweight parts; each applied move
   strictly shrinks the total excess, dst parts only grow (so a node whose
   destinations are full never becomes movable again and is dropped), and
   stale priorities are corrected at pop time as in the FM pass. *)
let rebalance ctx queue hook =
  if ctx.overweight > 0 then begin
    let ws = ctx.ws in
    ctx.lock_stamp <- Workspace.next_stamp ws (* nothing is locked *);
    ctx.cap_limit <- ctx.cap;
    Support.Bucket_queue.clear queue;
    let n = Hypergraph.num_nodes ctx.hg in
    for v = 0 to n - 1 do
      if ctx.weights.(ctx.part.(v)) > ctx.cap then begin
        let dst = best_move ctx v in
        if dst >= 0 then
          Support.Bucket_queue.insert queue v (-ctx.best_delta)
      end
    done;
    (* Local shadows, flushed once after the loop — the batched-flush
       contract (DOM04): no per-event Obs emission on the hot path. *)
    let stale = ref 0 and moved = ref 0 in
    let continue = ref true in
    while !continue do
      match Support.Bucket_queue.pop_max queue with
      | None -> continue := false
      | Some (v, prio) ->
          if ctx.weights.(ctx.part.(v)) > ctx.cap then begin
            let dst = best_move ctx v in
            if dst >= 0 then begin
              let delta = ctx.best_delta in
              if -delta <> prio then begin
                incr stale;
                Support.Bucket_queue.insert queue v (-delta)
              end
              else begin
                incr moved;
                apply_move ctx queue hook v ~src:(ctx.part.(v)) ~dst
                  ~activate:false
              end
            end
          end
    done;
    match ctx.stats with
    | Some s ->
        s.Fm_stats.stale <- s.Fm_stats.stale + !stale;
        s.Fm_stats.rebalance <- s.Fm_stats.rebalance + !moved
    | None ->
        Obs.Counter.add c_stale !stale;
        Obs.Counter.add c_rebalance !moved
  end

(* Refine [part] in place; returns the final cost.  An optional
   [workspace] lets callers (the multilevel driver) reuse scratch arrays,
   gain rows and the bucket queue across passes and levels; results are
   identical with or without one.  An optional [stats] accumulator
   captures the call's fm.* emissions instead of the Obs registries —
   how refinement running on a pool worker domain (where Obs is inert)
   keeps its counters; the caller commits the batch on the main domain. *)
let refine ?(config = default_config) ?workspace ?stats hg part =
  Obs.Span.with_ "refine"
    ~attrs:
      [
        ("n", Obs.Int (Hypergraph.num_nodes hg));
        ("k", Obs.Int (Partition.k part));
      ]
    (fun () ->
      let n = Hypergraph.num_nodes hg in
      let k = Partition.k part in
      let ws =
        match workspace with Some ws -> ws | None -> Workspace.create ()
      in
      Workspace.ensure ws ~n ~k;
      let counts = Pin_counts.create hg part in
      let weights = Partition.part_weights hg part in
      let cap =
        Partition.capacity ~variant:config.variant ~eps:config.eps
          ~total_weight:(Hypergraph.total_node_weight hg)
          ~k ()
      in
      (* Hoisted per-instance scans (formerly per pass). *)
      let max_node_weight = ref 0 and max_gain = ref 1 in
      for v = 0 to n - 1 do
        if Hypergraph.node_weight hg v > !max_node_weight then
          max_node_weight := Hypergraph.node_weight hg v;
        let s =
          Hypergraph.fold_incident hg v
            (fun acc e -> acc + Hypergraph.edge_weight hg e)
            0
        in
        if s > !max_gain then max_gain := s
      done;
      ws.Workspace.max_node_weight <- !max_node_weight;
      ws.Workspace.max_gain <- !max_gain;
      let queue = Workspace.queue ws ~n ~range:!max_gain in
      let ctx =
        {
          cfg = config;
          hg;
          counts;
          part = Partition.assignment part;
          k;
          weights;
          cap;
          ws;
          pins = Hypergraph.csr_pins hg;
          pin_offs = Hypergraph.csr_edge_offsets hg;
          inc = Hypergraph.csr_incidence hg;
          inc_offs = Hypergraph.csr_node_offsets hg;
          pcounts = Pin_counts.raw_counts counts;
          plambdas = Pin_counts.raw_lambdas counts;
          edge_w =
            Array.init (Hypergraph.num_edges hg) (Hypergraph.edge_weight hg);
          node_w = Array.init n (Hypergraph.node_weight hg);
          cache_stamp = Workspace.next_stamp ws;
          lock_stamp = Workspace.next_stamp ws;
          overweight = Support.Util.array_count (fun w -> w > cap) weights;
          cap_limit = cap;
          track_touch = false;
          mv_v = -1;
          mv_src = -1;
          mv_dst = -1;
          best_delta = 0;
          n_pops = 0;
          n_stale = 0;
          n_applied = 0;
          n_hits = 0;
          n_misses = 0;
          n_patches = 0;
          stats;
        }
      in
      let hook = on_transition ctx in
      rebalance ctx queue hook;
      (* Boundary-seeded passes until they stall, then one full-seeded
         fallback pass (interior hill-climb chains); stop when that stalls
         too.  A productive fallback hands control back to the cheap
         boundary passes. *)
      let passes = ref 0 and improving = ref true and full = ref false in
      while !improving && !passes < config.max_passes do
        incr passes;
        let was_full = !full in
        let gain =
          Obs.Span.with_ "refine.pass"
            ~attrs:
              [ ("pass", Obs.Int !passes); ("full", Obs.Bool was_full) ]
            (fun () ->
              (* Allocation bill per pass, only metered under
                 HYPARTITION_PROF: the hot path is supposed to run
                 allocation-free out of the workspace arenas, and this
                 histogram is how a regression shows up in `report`. *)
              let alloc0 =
                if Obs.Prof.enabled () then Obs.Prof.allocated_words ()
                else 0.0
              in
              let gain = fm_pass ctx queue hook ~full:was_full in
              if Obs.Prof.enabled () then begin
                let words =
                  int_of_float (Obs.Prof.allocated_words () -. alloc0)
                in
                match ctx.stats with
                | Some s -> Fm_stats.observe_int s.Fm_stats.pass_alloc words
                | None ->
                    (* hyplint: allow DOM04 — one observation per FM pass, profiling-gated, bounded by config.max_passes *)
                    Obs.Histogram.observe_int h_pass_alloc words
              end;
              (* Per-pass cost trajectory, only evaluated when observing. *)
              if Obs.enabled () then begin
                Obs.Span.attr "gain" (Obs.Int gain);
                Obs.Span.attr "cost"
                  (Obs.Int (Pin_counts.cost ~metric:config.metric counts))
              end;
              gain)
        in
        (match ctx.stats with
        | Some s -> Fm_stats.observe_int s.Fm_stats.pass_gain gain
        | None ->
            (* hyplint: allow DOM04 — one observation per FM pass, bounded by config.max_passes, not per-event; batching would lose the gain trajectory *)
            Obs.Histogram.observe_int h_pass_gain gain);
        if gain > 0 then full := false
        else if was_full then improving := false
        else full := true
      done;
      let cost = Pin_counts.cost ~metric:config.metric counts in
      Obs.Span.attr "passes" (Obs.Int !passes);
      Obs.Span.attr "cost" (Obs.Int cost);
      (match stats with
      | Some s -> Fm_stats.observe_int s.Fm_stats.final_cost cost
      | None -> Obs.Histogram.observe_int h_final_cost cost);
      Audit_gate.checked_cost ~metric:config.metric hg part cost)
