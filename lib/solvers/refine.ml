(* FM-style k-way refinement with gain buckets, node locking and rollback
   to the best prefix of the move sequence.  Works for any k >= 2 and both
   cost metrics; for k = 2 it is classic Fiduccia-Mattheyses.

   Stale bucket priorities are revalidated lazily at pop time instead of
   updating all neighbours after every move: a popped node whose recorded
   gain no longer matches its recomputed gain is re-inserted with the fresh
   value.  Between two applied moves every node is corrected at most once,
   so a pass terminates. *)

type config = {
  eps : float;
  variant : Partition.balance;
  metric : Partition.metric;
  max_passes : int;
}

let default_config =
  { eps = 0.0; variant = Partition.Strict; metric = Partition.Connectivity;
    max_passes = 8 }

(* Hot-path instrumentation: pre-interned counters only — each update is a
   branch and an int store, and a no-op allocation-free branch when obs is
   disabled (the FM micro-benchmark budget is < 2% overhead). *)
let c_pops = Obs.Counter.make "fm.pops"
let c_stale = Obs.Counter.make "fm.stale_reinserts"
let c_applied = Obs.Counter.make "fm.moves_applied"
let c_accepted = Obs.Counter.make "fm.moves_accepted"
let c_rolled_back = Obs.Counter.make "fm.moves_rolled_back"
let c_rebalance = Obs.Counter.make "fm.rebalance_moves"
let h_pass_gain = Obs.Histogram.make "fm.pass_gain"
let h_final_cost = Obs.Histogram.make "fm.final_cost"

(* Best move of node v: (dst, delta) minimizing cost delta among parts with
   capacity room, or None. *)
let best_move cfg hg counts part weights cap v =
  let src = Partition.color part v in
  let w = Hypergraph.node_weight hg v in
  let best = ref None in
  for dst = 0 to Partition.k part - 1 do
    if dst <> src && weights.(dst) + w <= cap then begin
      let delta = Pin_counts.move_delta ~metric:cfg.metric counts v ~src ~dst in
      match !best with
      | Some (_, d) when d <= delta -> ()
      | _ -> best := Some (dst, delta)
    end
  done;
  !best

let apply_move hg counts part weights v ~src ~dst =
  Pin_counts.move counts v ~src ~dst;
  (Partition.assignment part).(v) <- dst;
  let w = Hypergraph.node_weight hg v in
  weights.(src) <- weights.(src) - w;
  weights.(dst) <- weights.(dst) + w

(* One FM pass; returns the (non-negative) total gain realized.

   During the pass moves may overfill a part by one node (the classic FM
   slack that lets a perfectly balanced bisection trade nodes); the
   rollback then only accepts prefixes whose imbalance is no worse than the
   starting one, so a feasible partition never degrades. *)
let fm_pass cfg hg counts part weights cap =
  let n = Hypergraph.num_nodes hg in
  let max_node_weight = ref 0 in
  for v = 0 to n - 1 do
    if Hypergraph.node_weight hg v > !max_node_weight then
      max_node_weight := Hypergraph.node_weight hg v
  done;
  let cap_pass = cap + !max_node_weight in
  (* Maximum absolute gain: the largest total incident edge weight. *)
  let max_gain = ref 1 in
  for v = 0 to n - 1 do
    let s = Hypergraph.fold_incident hg v
        (fun acc e -> acc + Hypergraph.edge_weight hg e) 0
    in
    if s > !max_gain then max_gain := s
  done;
  let queue =
    Support.Bucket_queue.create ~min_priority:(- !max_gain)
      ~max_priority:!max_gain n
  in
  let locked = Array.make n false in
  for v = 0 to n - 1 do
    match best_move cfg hg counts part weights cap_pass v with
    | Some (_, delta) -> Support.Bucket_queue.insert queue v (-delta)
    | None -> ()
  done;
  let overweight () =
    Support.Util.array_count (fun w -> w > cap) weights
  in
  let start_overweight = overweight () in
  (* Move log for rollback. *)
  let moves = ref [] in
  let cum = ref 0 and best_cum = ref 0 and best_len = ref 0 and len = ref 0 in
  let continue = ref true in
  while !continue do
    match Support.Bucket_queue.pop_max queue with
    | None -> continue := false
    | Some (v, prio) ->
        Obs.Counter.incr c_pops;
        if not locked.(v) then begin
          match best_move cfg hg counts part weights cap_pass v with
          | None -> () (* no feasible move anymore: drop *)
          | Some (dst, delta) ->
              if -delta <> prio then begin
                (* Stale priority: correct and retry later. *)
                Obs.Counter.incr c_stale;
                Support.Bucket_queue.insert queue v (-delta)
              end
              else begin
                let src = Partition.color part v in
                Obs.Counter.incr c_applied;
                apply_move hg counts part weights v ~src ~dst;
                locked.(v) <- true;
                moves := (v, src, dst) :: !moves;
                incr len;
                cum := !cum + (-delta);
                if !cum > !best_cum && overweight () <= start_overweight
                then begin
                  best_cum := !cum;
                  best_len := !len
                end
              end
        end
  done;
  (* Roll back the moves after the best (balance-acceptable) prefix. *)
  let rec undo ms i =
    if i > !best_len then
      match ms with
      | (v, src, dst) :: rest ->
          apply_move hg counts part weights v ~src:dst ~dst:src;
          undo rest (i - 1)
      | [] -> assert false
  in
  undo !moves !len;
  Obs.Counter.add c_accepted !best_len;
  Obs.Counter.add c_rolled_back (!len - !best_len);
  !best_cum

(* Push overweight parts under capacity with cheapest-delta moves; used when
   coarse-level solutions project to an infeasible partition. *)
let rebalance cfg hg counts part weights cap =
  let n = Hypergraph.num_nodes hg in
  let progress = ref true in
  while
    !progress
    && Array.exists (fun w -> w > cap) weights
  do
    progress := false;
    (* Pick the cheapest move out of any overweight part. *)
    let best = ref None in
    for v = 0 to n - 1 do
      let src = Partition.color part v in
      if weights.(src) > cap then
        match best_move cfg hg counts part weights cap v with
        | Some (dst, delta) -> (
            match !best with
            | Some (_, _, _, d) when d <= delta -> ()
            | _ -> best := Some (v, src, dst, delta))
        | None -> ()
    done;
    match !best with
    | Some (v, src, dst, _) ->
        Obs.Counter.incr c_rebalance;
        apply_move hg counts part weights v ~src ~dst;
        progress := true
    | None -> ()
  done

(* Refine [part] in place; returns the final cost. *)
let refine ?(config = default_config) hg part =
  Obs.Span.with_ "refine"
    ~attrs:
      [
        ("n", Obs.Int (Hypergraph.num_nodes hg));
        ("k", Obs.Int (Partition.k part));
      ]
    (fun () ->
      let counts = Pin_counts.create hg part in
      let weights = Partition.part_weights hg part in
      let cap =
        Partition.capacity ~variant:config.variant ~eps:config.eps
          ~total_weight:(Hypergraph.total_node_weight hg)
          ~k:(Partition.k part) ()
      in
      rebalance config hg counts part weights cap;
      let passes = ref 0 and improving = ref true in
      while !improving && !passes < config.max_passes do
        incr passes;
        let gain =
          Obs.Span.with_ "refine.pass"
            ~attrs:[ ("pass", Obs.Int !passes) ]
            (fun () ->
              let gain = fm_pass config hg counts part weights cap in
              (* Per-pass cost trajectory, only evaluated when observing. *)
              if Obs.enabled () then begin
                Obs.Span.attr "gain" (Obs.Int gain);
                Obs.Span.attr "cost"
                  (Obs.Int (Pin_counts.cost ~metric:config.metric counts))
              end;
              gain)
        in
        Obs.Histogram.observe_int h_pass_gain gain;
        if gain <= 0 then improving := false
      done;
      let cost = Pin_counts.cost ~metric:config.metric counts in
      Obs.Span.attr "passes" (Obs.Int !passes);
      Obs.Span.attr "cost" (Obs.Int cost);
      Obs.Histogram.observe_int h_final_cost cost;
      Audit_gate.checked_cost ~metric:config.metric hg part cost)
