(** FM-style k-way refinement with gain buckets, locking and rollback
    (classic Fiduccia–Mattheyses for k = 2). *)

type config = {
  eps : float;
  variant : Partition.balance;
  metric : Partition.metric;
  max_passes : int;
  max_fruitless : int;
      (** A pass gives up after this many consecutive applied moves without
          a new best prefix (the classic FM cutoff bounding how far a pass
          hill-climbs into a plateau); [max_int] disables the cutoff. *)
}

val default_config : config
(** ε = 0, strict balance, connectivity metric, 8 passes, cutoff 350. *)

val refine :
  ?config:config ->
  ?workspace:Workspace.t ->
  ?stats:Fm_stats.t ->
  Hypergraph.t ->
  Partition.t ->
  int
(** Refines the partition in place (first rebalancing if some part exceeds
    capacity) and returns the final cost under the configured metric.

    With [?stats], every [fm.*] counter / histogram emission of the call
    is captured in the accumulator instead of the Obs registries — the
    contract for calls running on worker domains, where Obs is inert;
    the parallel driver commits accumulators in task-index order at its
    join barrier so totals are thread-count-independent.

    The pass is boundary-driven: only nodes incident to cut edges enter
    the gain queue, gains come from a per-node cache kept exact by
    {!Pin_counts} transition hooks, and the balance check is O(1) against
    an incrementally maintained overweight-part count.  A shared
    [workspace] (as threaded by {!Multilevel}) reuses scratch arrays and
    the bucket queue across calls; results are identical either way. *)
