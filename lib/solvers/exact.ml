(* Exact branch-and-bound partitioner, the ground truth for small instances
   (gadget-scale verification of every reduction, and the optimal baselines
   of the experiments).

   DFS over nodes in decreasing weighted-degree order with
   - incremental lower bound: for each edge, the colors already present can
     only grow, so sum_e w_e * (distinct_e - 1) (connectivity) or
     sum_e w_e * [distinct_e >= 2] (cut-net) is admissible;
   - balance pruning against the epsilon capacity;
   - optional color-symmetry breaking (a node may open at most one new
     color), sound whenever the extra feasibility predicate is
     color-symmetric. *)

type result = { cost : int; part : Partition.t }

let solve ?(metric = Partition.Connectivity) ?(variant = Partition.Strict)
    ?(eps = 0.0) ?upper_bound ?(symmetry = true) ?feasible ?constrained hg ~k
    =
 Obs.Span.with_ "exact.solve"
   ~attrs:[ ("n", Obs.Int (Hypergraph.num_nodes hg)); ("k", Obs.Int k) ]
 @@ fun () ->
  (* [constrained]: per-class color capacities (layer-wise / Definition 6.1
     instances), enforced during the search rather than only at leaves. *)
  let class_of, class_caps =
    match (constrained : Constrained.instance option) with
    | Some inst -> (inst.Constrained.classes, inst.Constrained.caps)
    | None -> ([||], [||])
  in
  let class_occ = Array.make (Array.length class_caps * k) 0 in
  let n = Hypergraph.num_nodes hg in
  let m = Hypergraph.num_edges hg in
  let cap =
    Partition.capacity ~variant ~eps
      ~total_weight:(Hypergraph.total_node_weight hg)
      ~k ()
  in
  if k * cap < Hypergraph.total_node_weight hg then None
  else begin
    (* Most-constrained-first node order. *)
    let order = Array.init n Fun.id in
    let weighted_degree v =
      Hypergraph.fold_incident hg v
        (fun acc e -> acc + Hypergraph.edge_weight hg e)
        0
    in
    Array.sort (fun a b -> Int.compare (weighted_degree b) (weighted_degree a)) order;
    let colors = Array.make n (-1) in
    let weights = Array.make k 0 in
    let counts = Array.make (m * k) 0 in
    let lambdas = Array.make m 0 in
    let lb = ref 0 in
    let best_cost = ref (match upper_bound with Some u -> u + 1 | None -> max_int) in
    let best = ref None in
    let assign v c =
      colors.(v) <- c;
      weights.(c) <- weights.(c) + Hypergraph.node_weight hg v;
      if Array.length class_of > 0 && class_of.(v) >= 0 then begin
        let idx = (class_of.(v) * k) + c in
        class_occ.(idx) <- class_occ.(idx) + 1
      end;
      Hypergraph.iter_incident hg v (fun e ->
          let idx = (e * k) + c in
          if counts.(idx) = 0 then begin
            lambdas.(e) <- lambdas.(e) + 1;
            if lambdas.(e) >= 2 then
              match metric with
              | Partition.Connectivity -> lb := !lb + Hypergraph.edge_weight hg e
              | Partition.Cut_net ->
                  if lambdas.(e) = 2 then lb := !lb + Hypergraph.edge_weight hg e
          end;
          counts.(idx) <- counts.(idx) + 1)
    in
    let unassign v c =
      colors.(v) <- -1;
      weights.(c) <- weights.(c) - Hypergraph.node_weight hg v;
      if Array.length class_of > 0 && class_of.(v) >= 0 then begin
        let idx = (class_of.(v) * k) + c in
        class_occ.(idx) <- class_occ.(idx) - 1
      end;
      Hypergraph.iter_incident hg v (fun e ->
          let idx = (e * k) + c in
          counts.(idx) <- counts.(idx) - 1;
          if counts.(idx) = 0 then begin
            if lambdas.(e) >= 2 then
              (match metric with
              | Partition.Connectivity -> lb := !lb - Hypergraph.edge_weight hg e
              | Partition.Cut_net ->
                  if lambdas.(e) = 2 then lb := !lb - Hypergraph.edge_weight hg e);
            lambdas.(e) <- lambdas.(e) - 1
          end)
    in
    let rec dfs i used =
      if !lb < !best_cost then begin
        if i = n then begin
          let part = Partition.create ~k (Array.copy colors) in
          let ok = match feasible with None -> true | Some f -> f part in
          if ok then begin
            best_cost := !lb;
            best := Some part
          end
        end
        else begin
          let v = order.(i) in
          let w = Hypergraph.node_weight hg v in
          let limit = if symmetry then min (k - 1) used else k - 1 in
          (* Order candidate colors by the immediate lb increase. *)
          let class_ok c =
            Array.length class_of = 0 || class_of.(v) < 0
            || class_occ.((class_of.(v) * k) + c) < class_caps.(class_of.(v))
          in
          let cands = ref [] in
          for c = limit downto 0 do
            if weights.(c) + w <= cap && class_ok c then begin
              let delta = ref 0 in
              Hypergraph.iter_incident hg v (fun e ->
                  if counts.((e * k) + c) = 0 then begin
                    let we = Hypergraph.edge_weight hg e in
                    match metric with
                    | Partition.Connectivity ->
                        if lambdas.(e) >= 1 then delta := !delta + we
                    | Partition.Cut_net ->
                        if lambdas.(e) = 1 then delta := !delta + we
                  end);
              cands := (!delta, c) :: !cands
            end
          done;
          let cands = List.sort Support.Order.int_pair !cands in
          List.iter
            (fun (_, c) ->
              assign v c;
              dfs (i + 1) (max used (c + 1));
              unassign v c)
            cands
        end
      end
    in
    dfs 0 0;
    match !best with
    | Some part ->
        ignore
          (Audit_gate.checked ~eps ~variant
             ~claimed:{ Analysis_core.Audit_partition.metric; cost = !best_cost }
             hg part);
        Some { cost = !best_cost; part }
    | None -> None
  end

let optimum ?metric ?variant ?eps ?feasible hg ~k =
  match solve ?metric ?variant ?eps ?feasible hg ~k with
  | Some { cost; _ } -> Some cost
  | None -> None

let decision ?metric ?variant ?eps ?feasible hg ~k ~cost_limit =
  match
    solve ?metric ?variant ?eps ?feasible ~upper_bound:cost_limit hg ~k
  with
  | Some { cost; _ } -> cost <= cost_limit
  | None -> false

(* Exhaustive enumeration of all k-colorings (no pruning): brute-force
   reference for the branch-and-bound itself, usable for n up to ~12. *)
let brute_force ?(metric = Partition.Connectivity) ?variant ?(eps = 0.0)
    ?feasible hg ~k =
  let n = Hypergraph.num_nodes hg in
  let best = ref None in
  Support.Util.iter_tuples ~base:k ~len:n (fun colors ->
      let part = Partition.create ~k (Array.copy colors) in
      if
        Partition.is_balanced ?variant ~eps hg part
        && (match feasible with None -> true | Some f -> f part)
      then begin
        let c = Partition.cost ~metric hg part in
        match !best with
        | Some { cost; _ } when cost <= c -> ()
        | _ -> best := Some { cost = c; part }
      end);
  (match !best with
  | Some { cost; part } ->
      ignore
        (Audit_gate.checked ?variant ~eps
           ~claimed:{ Analysis_core.Audit_partition.metric; cost }
           hg part)
  | None -> ());
  !best
