(** Per-domain accumulator for the [fm.*] observability series.

    The Obs registries are main-domain-only (worker domains see
    {!Obs.enabled} = [false]), so refinement running on a pool worker
    would silently drop its counters.  Instead {!Refine.refine} takes an
    optional [?stats] accumulator that captures every [fm.*] counter and
    histogram emission the call would otherwise make; the parallel
    driver gives each task its own accumulator, folds them in task-index
    order at the join barrier ({!absorb}) and commits the fold to the
    real registries on the main domain ({!commit}) — the same
    batch-then-absorb shape the engine uses for worker-process trace
    shards.  Totals are therefore independent of the thread count and
    free of double-counts: each emission lands in exactly one
    accumulator, and each accumulator is committed exactly once. *)

type acc = {
  mutable a_count : int;
  mutable a_sum : float;
  mutable a_min : float;
  mutable a_max : float;
  mutable a_last : float;
}
(** One histogram's batched observations (same stats Obs keeps). *)

type t = {
  mutable pops : int;
  mutable stale : int;
  mutable applied : int;
  mutable accepted : int;
  mutable rolled_back : int;
  mutable rebalance : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable delta_updates : int;
  pass_gain : acc;
  final_cost : acc;
  boundary : acc;
  pass_alloc : acc;
}

val create : unit -> t

val observe : acc -> float -> unit
val observe_int : acc -> int -> unit

val absorb : into:t -> t -> unit
(** Fold one accumulator into another (counters add, histogram stats
    merge).  Absorbing in task-index order keeps the merged [a_last]
    values deterministic. *)

val commit : t -> unit
(** Add the accumulated totals to the [fm.*] Obs registries.  Call once
    per accumulator, on the main domain; a no-op while collection is
    disabled, like every direct emission it stands in for. *)
