(** Multilevel k-way hypergraph partitioner (coarsen / initial portfolio /
    uncoarsen + FM), the main heuristic of the library. *)

type config = {
  eps : float;
  variant : Partition.balance;
  metric : Partition.metric;
  refine_passes : int;
  initial_tries : int;
  stop_nodes : int;
  threads : int;
      (** [0] (the default) runs the original sequential path untouched.
          [N >= 1] runs the parallel path — propose/commit coarsening
          ({!Par_coarsen}), a scattered initial portfolio, synchronized
          label-propagation refinement ({!Par_refine}) — on a pool of
          [N] workers created and shut down inside the solve.  The
          parallel path's output is a pure function of (hypergraph,
          rng, config): [threads = 1] and [threads = 8] produce
          identical partitions (it is a {e different} algorithm from
          the sequential path, whose results it does not reproduce). *)
  deterministic : bool;
      (** [true] (the default) reduces every cross-domain merge in task
          index order.  [false] relaxes the initial-portfolio reduction
          to completion order: marginally less synchronization
          structure, genuinely run-to-run-varying tie-breaks. *)
}

val default_config : config
(** ε = 0.03, strict balance, connectivity metric, sequential
    ([threads = 0]), deterministic. *)

val partition :
  ?config:config -> Support.Rng.t -> Hypergraph.t -> k:int -> Partition.t

val partition_with_cost :
  ?config:config -> Support.Rng.t -> Hypergraph.t -> k:int -> Partition.t * int

val vcycle :
  ?config:config ->
  ?cycles:int ->
  Support.Rng.t ->
  Hypergraph.t ->
  Partition.t ->
  int
(** Improve an existing partition in place by coarsening within its parts
    and refining on the way back up; returns the final cost. *)

val partition_best :
  ?config:config ->
  ?restarts:int ->
  Support.Rng.t ->
  Hypergraph.t ->
  k:int ->
  Partition.t
(** Best of several independent runs (default 4), preferring feasible
    partitions. *)
