(** Incremental per-edge color counts shared by the refinement passes. *)

type t

type transition =
  | Src_gone  (** count(e, src) reached 0: the edge left part src, λ fell. *)
  | Src_lone  (** count(e, src) reached 1: one pin of e remains in src. *)
  | Dst_first  (** count(e, dst) left 0: the edge entered part dst, λ rose. *)
  | Dst_paired  (** count(e, dst) left 1: the lone dst pin got company. *)
(** Pin-count boundary crossings of one incident edge during {!move} —
    exactly the events that can change another pin's gain under either
    metric, so a gain cache driven by them stays exact. *)

val create : Hypergraph.t -> Partition.t -> t
val count : t -> int -> int -> int
(** [count t e c]: pins of edge [e] in part [c]. *)

val lambda : t -> int -> int
(** Maintained λ_e. *)

val raw_counts : t -> int array
(** The live m×k count matrix (edge [e]'s row starts at [e * k]); a
    read-only view for allocation-free hot loops. *)

val raw_lambdas : t -> int array
(** The live λ array, same read-only contract as {!raw_counts}. *)

val move : ?on_transition:(int -> transition -> unit) -> t -> int -> src:int -> dst:int -> unit
(** Update counts for a node move (the partition itself is the caller's;
    hooks that inspect pin colors expect it updated {e before} the call).
    [on_transition e tr] fires after edge [e]'s counts and λ are fully
    updated — at most one src-side and one dst-side transition per edge. *)

val move_delta :
  ?metric:Partition.metric -> t -> int -> src:int -> dst:int -> int
(** Cost change of moving node [v] from [src] to [dst], without moving. *)

val cost : ?metric:Partition.metric -> t -> int
