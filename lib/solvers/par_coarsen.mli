(** Parallel coarsening for the multicore multilevel path: deterministic
    propose/commit clustering over the flat CSR views.

    Each round proposes, in parallel over node chunks, every node's
    best-rated partner (the same [w_e / (|e| - 1)] heavy-connectivity
    rating {!Coarsen} uses) against the {e frozen} fine hypergraph, then
    commits the proposals sequentially in node-id order under the live
    cluster-weight cap.  Proposals are pure functions of the hypergraph
    and ties break toward the lowest node id, so the resulting labels —
    and the whole hierarchy — are identical for every thread count. *)

val one_level :
  Parallel.t ->
  Workspace.t array ->
  Hypergraph.t ->
  max_cluster_weight:int ->
  Coarsen.level option
(** One propose/commit round plus contraction; [None] when no merge
    committed.  [wss] provides one scratch workspace per pool worker
    (index = worker id) for the rating accumulators. *)

val hierarchy :
  Parallel.t ->
  Workspace.t array ->
  Hypergraph.t ->
  k:int ->
  stop_nodes:int ->
  Hypergraph.t * Coarsen.level list
(** [(coarsest, levels)] with levels ordered fine → coarse; same
    stopping rules as {!Coarsen.hierarchy} (node floor, < 5% shrink). *)
