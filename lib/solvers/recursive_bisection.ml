(* k-way partitioning by recursive bisection (Section 7.1): split the node
   set into two groups carrying ceil(k/2) and floor(k/2) parts, then recurse
   on the induced sub-hypergraphs.

   Besides being a standard heuristic, this solver is the subject of
   Lemma 7.2, which exhibits instances where even *optimal* recursive steps
   end up a Theta(n) factor off the direct k-way optimum; experiment E7
   reproduces that separation with this module (using the exact bisector
   on the gadget sizes involved). *)

type bisector =
  Hypergraph.t -> eps:float -> parts_left:int -> parts_right:int -> Partition.t
(* A 2-way split where the left side must carry weight for [parts_left]
   parts and the right side for [parts_right]; balance: the left side gets
   at most (1+eps) * W * parts_left / (parts_left + parts_right). *)

(* Default bisector: multilevel 2-way with node weights scaled so that the
   target ratio is parts_left : parts_right.  We emulate the ratio by
   temporarily duplicating the capacity check through an epsilon shift:
   for unequal splits we fall back to a weighted greedy + FM refinement. *)
let multilevel_bisector ?(config = Multilevel.default_config) rng : bisector =
 fun hg ~eps ~parts_left ~parts_right ->
  if parts_left = parts_right then
    Multilevel.partition ~config:{ config with eps } rng hg ~k:2
  else begin
    (* Unequal split: treat as a 2-way problem with ratio r = left/(l+r).
       Greedy fill to the target then FM with a capacity that matches the
       larger side; the ratio constraint is enforced by construction. *)
    let total = Hypergraph.total_node_weight hg in
    let n = Hypergraph.num_nodes hg in
    let target_left =
      int_of_float
        (floor
           ((1.0 +. eps) *. float_of_int (total * parts_left)
            /. float_of_int (parts_left + parts_right)
           +. 1e-9))
    in
    let order = Support.Rng.permutation rng n in
    let colors = Array.make n 1 in
    let weight_left = ref 0 in
    Array.iter
      (fun v ->
        let w = Hypergraph.node_weight hg v in
        if !weight_left + w <= target_left then begin
          colors.(v) <- 0;
          weight_left := !weight_left + w
        end)
      order;
    let part = Partition.create ~k:2 colors in
    (* Local improvement under the asymmetric capacity: swap-based FM would
       need per-part capacities; a greedy positive-gain pass suffices here. *)
    let counts = Pin_counts.create hg part in
    let weights = Partition.part_weights hg part in
    let cap = Array.make 2 0 in
    cap.(0) <- target_left;
    cap.(1) <-
      int_of_float
        (floor
           ((1.0 +. eps) *. float_of_int (total * parts_right)
            /. float_of_int (parts_left + parts_right)
           +. 1e-9));
    let improved = ref true in
    while !improved do
      improved := false;
      for v = 0 to n - 1 do
        let src = Partition.color part v in
        let dst = 1 - src in
        let w = Hypergraph.node_weight hg v in
        if weights.(dst) + w <= cap.(dst) then begin
          let delta = Pin_counts.move_delta counts v ~src ~dst in
          if delta < 0 then begin
            Pin_counts.move counts v ~src ~dst;
            (Partition.assignment part).(v) <- dst;
            weights.(src) <- weights.(src) - w;
            weights.(dst) <- weights.(dst) + w;
            improved := true
          end
        end
      done
    done;
    part
  end

let partition ?(eps = 0.03) ~bisector hg ~k =
  if k < 1 then invalid_arg "Recursive_bisection.partition: k >= 1";
  Obs.Span.with_ "recursive_bisection"
    ~attrs:
      [ ("n", Obs.Int (Hypergraph.num_nodes hg)); ("k", Obs.Int k) ]
  @@ fun () ->
  let n = Hypergraph.num_nodes hg in
  let colors = Array.make n 0 in
  (* Recurse on (sub-hypergraph, node ids in original graph, color range). *)
  let rec go sub old_nodes ~first_color ~parts =
    if parts = 1 then
      Array.iter (fun v -> colors.(v) <- first_color) old_nodes
    else begin
      let parts_left = (parts + 1) / 2 in
      let parts_right = parts - parts_left in
      let split =
        Obs.Span.with_ "rb.bisect"
          ~attrs:
            [
              ("nodes", Obs.Int (Hypergraph.num_nodes sub));
              ("parts_left", Obs.Int parts_left);
              ("parts_right", Obs.Int parts_right);
            ]
          (fun () -> bisector sub ~eps ~parts_left ~parts_right)
      in
      let side s =
        let ids = ref [] in
        for v = Hypergraph.num_nodes sub - 1 downto 0 do
          if Partition.color split v = s then ids := v :: !ids
        done;
        Array.of_list !ids
      in
      let recurse s ~first_color ~parts =
        let local = side s in
        (* Build the sub-hypergraph induced by the side, keeping the edges
           that intersect it (restricted to the side), so lower levels still
           see their internal connectivity. *)
        let in_side = Array.make (Hypergraph.num_nodes sub) false in
        Array.iter (fun v -> in_side.(v) <- true) local;
        let new_id = Array.make (Hypergraph.num_nodes sub) (-1) in
        Array.iteri (fun i v -> new_id.(v) <- i) local;
        let edges = ref [] in
        for e = Hypergraph.num_edges sub - 1 downto 0 do
          let pins =
            Hypergraph.fold_pins sub e
              (fun acc v -> if in_side.(v) then new_id.(v) :: acc else acc)
              []
          in
          if List.length pins > 1 then
            edges := (Array.of_list pins, Hypergraph.edge_weight sub e) :: !edges
        done;
        let arr = Array.of_list !edges in
        let side_hg =
          Hypergraph.of_edges
            ~n:(Array.length local)
            ~node_weights:(Array.map (fun v -> Hypergraph.node_weight sub v) local)
            ~edge_weights:(Array.map snd arr) (Array.map fst arr)
        in
        go side_hg
          (Array.map (fun v -> old_nodes.(v)) local)
          ~first_color ~parts
      in
      recurse 0 ~first_color ~parts:parts_left;
      recurse 1 ~first_color:(first_color + parts_left) ~parts:parts_right
    end
  in
  go hg (Array.init n Fun.id) ~first_color:0 ~parts:k;
  Audit_gate.checked hg (Partition.create ~k colors)
