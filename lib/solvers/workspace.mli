(** Reusable scratch state for the refinement/coarsening hot path: gain
    cache rows, stamped mark arrays, move log, and the FM bucket queue,
    allocated once per multilevel solve and shared across passes and
    levels.

    A workspace is owned by exactly one solver call tree at a time (the
    solvers are single-threaded); arrays only grow, and per-use validity
    is stamp-based so nothing is cleared between passes.  Sharing one
    workspace across successive solves is safe and is what
    {!Multilevel.partition} does internally; results are identical to
    using a fresh workspace per call. *)

type t = {
  mutable benefit : int array;
  mutable penalty : int array;
  mutable cache_stamp : int array;
  mutable locked : int array;
  mutable touch : int array;
  mutable seen : int array;
  mutable score : float array;
  mutable stamp : int;
  touched : Support.Int_vec.t;
  moves : Support.Int_vec.t;
  cand : Support.Int_vec.t;
  mutable queue : Support.Bucket_queue.t option;
  mutable max_node_weight : int;
  mutable max_gain : int;
}

val create : unit -> t
(** An empty workspace; arrays grow on first {!ensure}. *)

val ensure : t -> n:int -> k:int -> unit
(** Grow every per-node (and the [n * k] gain-row) array to hold [n]
    nodes and [k] parts.  Existing contents are preserved or replaced by
    zeroes; stamp discipline makes stale contents harmless. *)

val next_stamp : t -> int
(** A fresh stamp, distinct from every value currently stored in the
    stamped arrays — an O(1) bulk invalidation. *)

val queue : t -> n:int -> range:int -> Support.Bucket_queue.t
(** A cleared bucket queue over items [0, n) with priorities in
    [-range, range], reusing the cached one when it is large enough. *)
