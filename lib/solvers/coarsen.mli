(** Coarsening by heavy-connectivity clustering for the multilevel solver. *)

type level = {
  coarse : Hypergraph.t;
  label : int array;  (** fine node → coarse node *)
}

val cluster :
  ?workspace:Workspace.t ->
  ?within:int array ->
  Support.Rng.t ->
  Hypergraph.t ->
  max_cluster_weight:int ->
  int array * int
(** One clustering pass; [(label, cluster_count)].  With [within], nodes
    merge only when they share the given label (used by v-cycles to keep
    clusters inside partition classes).  Ratings accumulate in the
    [workspace]'s flat score array with a touched-list reset; a private
    workspace is used when none is given. *)

val one_level :
  ?workspace:Workspace.t ->
  ?within:int array ->
  Support.Rng.t ->
  Hypergraph.t ->
  max_cluster_weight:int ->
  level option
(** [None] when clustering made no progress. *)

val hierarchy :
  ?workspace:Workspace.t ->
  Support.Rng.t ->
  Hypergraph.t ->
  k:int ->
  stop_nodes:int ->
  Hypergraph.t * level list
(** [(coarsest, levels)] with levels ordered fine → coarse. *)

val project : level -> Partition.t -> Partition.t
(** Pull a partition of [level.coarse] back to the finer hypergraph. *)
