(* Kernighan-Lin refinement: pairwise swaps of equal-weight boundary nodes
   between two parts, so the balance is preserved *exactly* — the natural
   refinement at eps = 0, where single FM moves are never feasible.

   A pass follows the classic KL discipline: repeatedly apply the best
   available swap *even when its gain is negative*, lock the swapped
   nodes, and finally roll back to the best prefix of the swap sequence.
   The tentative negative swaps are what lets KL escape states where no
   single swap helps (e.g. two perfectly interleaved blocks).

   Swap gains are evaluated exactly (apply the first move, evaluate the
   second, undo), so interactions through shared hyperedges are
   accounted for.  Cost per pass is O(#swaps * boundary^2 * degree):
   intended for small-to-medium instances and as a post-pass after FM. *)

type config = {
  metric : Partition.metric;
  max_passes : int;
  max_swaps_per_pass : int; (* 0 = no limit *)
}

let default_config =
  { metric = Partition.Connectivity; max_passes = 4; max_swaps_per_pass = 0 }

let c_swaps = Obs.Counter.make "kl.swaps"
let c_swap_evals = Obs.Counter.make "kl.swap_evals"

let boundary_nodes hg part =
  let n = Hypergraph.num_nodes hg in
  let mark = Array.make n false in
  for e = 0 to Hypergraph.num_edges hg - 1 do
    if Partition.is_cut hg part e then
      Hypergraph.iter_pins hg e (fun v -> mark.(v) <- true)
  done;
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if mark.(v) then acc := v :: !acc
  done;
  Array.of_list !acc

(* Exact cost change of swapping v and u (in different parts). *)
let swap_delta cfg hg counts assignment v u =
  let cv = assignment.(v) and cu = assignment.(u) in
  let d1 = Pin_counts.move_delta ~metric:cfg.metric counts v ~src:cv ~dst:cu in
  Pin_counts.move counts v ~src:cv ~dst:cu;
  assignment.(v) <- cu;
  let d2 = Pin_counts.move_delta ~metric:cfg.metric counts u ~src:cu ~dst:cv in
  Pin_counts.move counts v ~src:cu ~dst:cv;
  assignment.(v) <- cv;
  ignore hg;
  d1 + d2

let apply_swap counts assignment v u =
  let cv = assignment.(v) and cu = assignment.(u) in
  Pin_counts.move counts v ~src:cv ~dst:cu;
  assignment.(v) <- cu;
  Pin_counts.move counts u ~src:cu ~dst:cv;
  assignment.(u) <- cv

(* Hyperedges containing both nodes: the tie-breaker.  On a gain plateau,
   swapping two tightly coupled nodes is a structural no-op (e.g. two nodes
   of the same block), so among equal-gain swaps we prefer the loosest
   pair. *)
let shared_edges hg v u =
  Hypergraph.fold_incident hg v
    (fun acc e -> if Hypergraph.edge_mem hg e u then acc + 1 else acc)
    0

let kl_pass cfg hg counts part =
  let assignment = Partition.assignment part in
  let boundary = boundary_nodes hg part in
  let len = Array.length boundary in
  let locked = Array.make (Hypergraph.num_nodes hg) false in
  let swaps = ref [] and cum = ref 0 and best_cum = ref 0 in
  let nswaps = ref 0 and best_len = ref 0 in
  let limit =
    if cfg.max_swaps_per_pass > 0 then cfg.max_swaps_per_pass else len
  in
  (* Local counter shadows, flushed once per pass — the batched-flush
     contract (DOM04): no per-event Obs emission inside the O(len^2)
     evaluation loop. *)
  let evals = ref 0 in
  let continue = ref true in
  while !continue && !nswaps < limit do
    (* Best swap among unlocked equal-weight cross pairs; ties broken
       toward the pair sharing the fewest hyperedges. *)
    let best = ref None in
    for i = 0 to len - 1 do
      let v = boundary.(i) in
      if not locked.(v) then
        for j = i + 1 to len - 1 do
          let u = boundary.(j) in
          if
            (not locked.(u))
            && assignment.(v) <> assignment.(u)
            && Hypergraph.node_weight hg v = Hypergraph.node_weight hg u
          then begin
            incr evals;
            let d = swap_delta cfg hg counts assignment v u in
            let key = (d, shared_edges hg v u) in
            match !best with
            | Some (_, _, bkey) when bkey <= key -> ()
            | _ -> best := Some (v, u, key)
          end
        done
    done;
    match !best with
    | None -> continue := false
    | Some (v, u, (d, _)) ->
        apply_swap counts assignment v u;
        locked.(v) <- true;
        locked.(u) <- true;
        swaps := (v, u) :: !swaps;
        incr nswaps;
        cum := !cum + d;
        if !cum < !best_cum then begin
          best_cum := !cum;
          best_len := !nswaps
        end
  done;
  (* Roll back the swaps after the best prefix (swapping back = same op). *)
  let rec undo l i =
    if i > !best_len then
      match l with
      | (v, u) :: rest ->
          apply_swap counts assignment v u;
          undo rest (i - 1)
      | [] -> assert false
  in
  undo !swaps !nswaps;
  Obs.Counter.add c_swap_evals !evals;
  Obs.Counter.add c_swaps !nswaps;
  - !best_cum

(* Refine in place by repeated KL passes; returns the final cost.  Part
   weights are preserved exactly. *)
let refine ?(config = default_config) hg part =
 Obs.Span.with_ "kl"
   ~attrs:
     [
       ("n", Obs.Int (Hypergraph.num_nodes hg));
       ("k", Obs.Int (Partition.k part));
     ]
 @@ fun () ->
  let entry = Audit_gate.entry_weights hg part in
  let counts = Pin_counts.create hg part in
  let passes = ref 0 and improving = ref true in
  while !improving && !passes < config.max_passes do
    incr passes;
    let gain =
      Obs.Span.with_ "kl.pass"
        ~attrs:[ ("pass", Obs.Int !passes) ]
        (fun () ->
          let gain = kl_pass config hg counts part in
          Obs.Span.attr "gain" (Obs.Int gain);
          gain)
    in
    if gain <= 0 then improving := false
  done;
  let cost = Pin_counts.cost ~metric:config.metric counts in
  Obs.Span.attr "passes" (Obs.Int !passes);
  Obs.Span.attr "cost" (Obs.Int cost);
  ignore
    (Audit_gate.checked
       ~claimed:{ Analysis_core.Audit_partition.metric = config.metric; cost }
       ?preserved_weights:entry hg part);
  cost
