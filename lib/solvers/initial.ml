(* Initial partitioners: cheap constructions used at the coarsest level of
   the multilevel solver and as baselines in the experiments.  All respect
   the weighted epsilon-balance capacity when possible. *)

let capacity ?variant ~eps hg ~k =
  Partition.capacity ?variant ~eps
    ~total_weight:(Hypergraph.total_node_weight hg)
    ~k ()

(* Round-robin over a random node order into the lightest part that still
   has room; falls back to the lightest part if none has room (the result
   is then infeasible but as close as greedy gets). *)
let random_balanced ?variant ~eps rng hg ~k =
 Obs.Span.with_ "initial.random_balanced" @@ fun () ->
  let n = Hypergraph.num_nodes hg in
  let cap = capacity ?variant ~eps hg ~k in
  let order = Support.Rng.permutation rng n in
  let weights = Array.make k 0 in
  let colors = Array.make n 0 in
  Array.iter
    (fun v ->
      let w = Hypergraph.node_weight hg v in
      let best = ref (-1) in
      for c = 0 to k - 1 do
        if
          weights.(c) + w <= cap
          && (!best < 0 || weights.(c) < weights.(!best))
        then best := c
      done;
      let c =
        if !best >= 0 then !best
        else begin
          (* No part has room: lightest part overall. *)
          let lightest = ref 0 in
          for c = 1 to k - 1 do
            if weights.(c) < weights.(!lightest) then lightest := c
          done;
          !lightest
        end
      in
      colors.(v) <- c;
      weights.(c) <- weights.(c) + w)
    order;
  Audit_gate.checked hg (Partition.create ~k colors)

(* BFS growth: grow part after part from random seeds, following hyperedge
   adjacency, stopping each part near the ideal weight W/k.

   Stamp arrays keep the frontier duplicate-free: a node enters the queue
   at most once per part, so one part costs O(n + pins) instead of the
   O(pins^2) blowups dense instances used to hit when every placement
   re-enqueued whole pin lists.  The visit order is unchanged — duplicate
   entries were always dead on arrival (already colored, or blocked for
   this part), so popping only first occurrences is the same sequence. *)
let bfs_growth ?variant ~eps rng hg ~k =
 Obs.Span.with_ "initial.bfs_growth" @@ fun () ->
  let n = Hypergraph.num_nodes hg in
  let total = Hypergraph.total_node_weight hg in
  let cap = capacity ?variant ~eps hg ~k in
  let colors = Array.make n (-1) in
  let order = Support.Rng.permutation rng n in
  let queue = Queue.create () in
  let next_seed = ref 0 in
  (* Per-part stamps (the part index): [blocked] marks nodes that failed
     to fit in the current part, so an unplaceable seed is never re-picked
     (with weighted nodes it otherwise would be, forever); [queued] marks
     frontier membership. *)
  let blocked = Array.make n (-1) in
  let queued = Array.make n (-1) in
  let pick_seed c =
    while
      !next_seed < n
      && (colors.(order.(!next_seed)) >= 0 || blocked.(order.(!next_seed)) = c)
    do
      incr next_seed
    done;
    if !next_seed < n then Some order.(!next_seed) else None
  in
  let weights = Array.make k 0 in
  for c = 0 to k - 1 do
    (* Target: leave enough weight for the remaining parts. *)
    let target = min cap (Support.Util.ceil_div total k) in
    (match pick_seed c with
    | Some s ->
        queued.(s) <- c;
        Queue.add s queue
    | None -> ());
    let continue = ref true in
    while !continue do
      if Queue.is_empty queue then begin
        (* Disconnected remainder: re-seed if the part is still light. *)
        if weights.(c) < target then
          match pick_seed c with
          | Some s ->
              queued.(s) <- c;
              Queue.add s queue
          | None -> continue := false
        else continue := false
      end
      else begin
        let v = Queue.pop queue in
        if colors.(v) < 0 && blocked.(v) <> c then begin
          let w = Hypergraph.node_weight hg v in
          if weights.(c) + w <= cap && weights.(c) < target then begin
            colors.(v) <- c;
            weights.(c) <- weights.(c) + w;
            Hypergraph.iter_incident hg v (fun e ->
                Hypergraph.iter_pins hg e (fun u ->
                    if colors.(u) < 0 && queued.(u) <> c then begin
                      queued.(u) <- c;
                      Queue.add u queue
                    end))
          end
          else if weights.(c) >= target then continue := false
          else blocked.(v) <- c
        end
      end
    done;
    Queue.clear queue;
    (* The seed pointer only moved past nodes blocked for this part; reset
       it so later parts reconsider them. *)
    next_seed := 0
  done;
  (* Any stragglers: lightest part with room. *)
  for v = 0 to n - 1 do
    if colors.(v) < 0 then begin
      let w = Hypergraph.node_weight hg v in
      let best = ref 0 in
      for c = 1 to k - 1 do
        if weights.(c) < weights.(!best) then best := c
      done;
      (* Prefer a part with room. *)
      for c = 0 to k - 1 do
        if weights.(c) + w <= cap && weights.(c) < weights.(!best) then
          best := c
      done;
      colors.(v) <- !best;
      weights.(!best) <- weights.(!best) + w
    end
  done;
  Audit_gate.checked hg (Partition.create ~k colors)

(* Deterministic fallback: nodes in index order, round robin. *)
let round_robin hg ~k =
  Audit_gate.checked hg
    (Partition.of_predicate ~k ~n:(Hypergraph.num_nodes hg) (fun v -> v mod k))
