(* Coarsening by heavy-connectivity clustering (first-choice style, as in
   multilevel partitioners like hMETIS/KaHyPar): visit nodes in random
   order and merge each with the neighbour of highest rating

     rating(v, u) = sum over shared edges e of w_e / (|e| - 1),

   subject to a maximum cluster weight that protects balance feasibility at
   the coarse level. *)

type level = {
  coarse : Hypergraph.t;
  label : int array; (* fine node -> coarse node *)
}

(* Iterative leader lookup with full path compression: after a call every
   node on the chain points directly at the root, so adversarial merge
   orders cannot grow chains (the recursive find they replace both risked
   deep recursion and paid O(chain) per lookup). *)
let find leader v =
  let root = ref v in
  while leader.(!root) <> !root do
    root := leader.(!root)
  done;
  let root = !root in
  let c = ref v in
  while leader.(!c) <> root do
    let next = leader.(!c) in
    leader.(!c) <- root;
    c := next
  done;
  root

let cluster ?workspace ?within rng hg ~max_cluster_weight =
  let n = Hypergraph.num_nodes hg in
  let same_side u v =
    match within with None -> true | Some part -> part.(u) = part.(v)
  in
  let leader = Array.init n (fun v -> v) in
  (* cluster weight, indexed by current leader *)
  let weight = Array.init n (fun v -> Hypergraph.node_weight hg v) in
  let order = Support.Rng.permutation rng n in
  (* Candidate ratings live in a flat score array, reset through the
     touched-candidate list — no per-node hash table, no clearing of
     untouched entries. *)
  let ws = match workspace with Some ws -> ws | None -> Workspace.create () in
  Workspace.ensure ws ~n ~k:1;
  let score = ws.Workspace.score in
  let seen = ws.Workspace.seen in
  let cand = ws.Workspace.cand in
  Array.iter
    (fun v ->
      if leader.(v) = v then begin
        let stamp = Workspace.next_stamp ws in
        Support.Int_vec.clear cand;
        Hypergraph.iter_incident hg v (fun e ->
            let size = Hypergraph.edge_size hg e in
            if size > 1 && size <= 64 then begin
              let r =
                float_of_int (Hypergraph.edge_weight hg e)
                /. float_of_int (size - 1)
              in
              Hypergraph.iter_pins hg e (fun u ->
                  let lu = find leader u in
                  if lu <> v && same_side u v then begin
                    if seen.(lu) <> stamp then begin
                      seen.(lu) <- stamp;
                      score.(lu) <- 0.0;
                      Support.Int_vec.push cand lu
                    end;
                    score.(lu) <- score.(lu) +. r
                  end)
            end);
        let best = ref (-1) and best_r = ref 0.0 in
        Support.Int_vec.iter
          (fun u ->
            if
              weight.(u) + weight.(v) <= max_cluster_weight
              && (!best < 0 || score.(u) > !best_r)
            then begin
              best := u;
              best_r := score.(u)
            end)
          cand;
        if !best >= 0 then begin
          let u = !best in
          leader.(v) <- u;
          weight.(u) <- weight.(u) + weight.(v)
        end
      end)
    order;
  (* Compact leaders to consecutive labels. *)
  let label = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    let r = find leader v in
    if label.(r) < 0 then begin
      label.(r) <- !next;
      incr next
    end
  done;
  for v = 0 to n - 1 do
    label.(v) <- label.(find leader v)
  done;
  (label, !next)

let c_levels = Obs.Counter.make "coarsen.levels"
let h_shrink = Obs.Histogram.make "coarsen.shrink"

let one_level ?workspace ?within rng hg ~max_cluster_weight =
  Obs.Span.with_ "coarsen.level"
    ~attrs:[ ("nodes_in", Obs.Int (Hypergraph.num_nodes hg)) ]
    (fun () ->
      let label, count = cluster ?workspace ?within rng hg ~max_cluster_weight in
      if count = Hypergraph.num_nodes hg then None
      else begin
        let coarse = Hypergraph.contract hg label count in
        Obs.Counter.incr c_levels;
        Obs.Span.attr "nodes_out" (Obs.Int count);
        Obs.Histogram.observe h_shrink
          (float_of_int count /. float_of_int (Hypergraph.num_nodes hg));
        Some { coarse; label }
      end)

(* Full coarsening hierarchy down to [stop_nodes] nodes (or until clustering
   stalls).  The max cluster weight keeps every coarse node small enough for
   an eps-balanced k-way split to remain possible. *)
let hierarchy ?workspace rng hg ~k ~stop_nodes =
  Obs.Span.with_ "coarsen"
    ~attrs:
      [
        ("n", Obs.Int (Hypergraph.num_nodes hg));
        ("m", Obs.Int (Hypergraph.num_edges hg));
        ("k", Obs.Int k);
      ]
    (fun () ->
      let total = Hypergraph.total_node_weight hg in
      let max_cluster_weight = max 1 (Support.Util.ceil_div total (4 * k)) in
      let rec go acc current =
        if Hypergraph.num_nodes current <= stop_nodes then (current, List.rev acc)
        else
          match one_level ?workspace rng current ~max_cluster_weight with
          | None -> (current, List.rev acc)
          | Some level ->
              let shrink =
                float_of_int (Hypergraph.num_nodes level.coarse)
                /. float_of_int (Hypergraph.num_nodes current)
              in
              if shrink > 0.95 then (current, List.rev acc)
              else go (level :: acc) level.coarse
      in
      let coarsest, levels = go [] hg in
      Obs.Span.attr "levels" (Obs.Int (List.length levels));
      Obs.Span.attr "coarsest_nodes" (Obs.Int (Hypergraph.num_nodes coarsest));
      (coarsest, levels))

(* Project a coarse partition back through one level. *)
let project level coarse_part =
  Partition.create ~k:(Partition.k coarse_part)
    (Array.map
       (fun l -> Partition.color coarse_part l)
       level.label)
