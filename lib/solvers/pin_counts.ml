(* Per-edge color counts: counts.(e * k + c) is the number of pins of edge e
   currently in part c.  This is the shared incremental state of the FM and
   k-way refinement passes; moving one node updates it in O(degree).

   [move] can report the four pin-count boundary crossings of each incident
   edge to an [on_transition] hook.  These crossings are exactly the events
   that can change another pin's move gain under either metric — the
   predicates entering [move_delta] are [count = 0], [count = 1] and λ, and
   a count crossing 0 or 1 on the src side (or leaving 0 or 1 on the dst
   side) is the only way any of them flips — so a gain cache subscribed to
   the hook stays exact without rescanning neighbourhoods. *)

type t = {
  hg : Hypergraph.t;
  k : int;
  counts : int array; (* m * k *)
  lambdas : int array; (* m; number of non-empty colors per edge *)
}

(* Boundary crossings of one edge when a pin moves src -> dst:
   - [Src_gone]: count(e, src) reached 0 (the edge left part src; λ fell),
   - [Src_lone]: count(e, src) reached 1 (one pin of e remains in src),
   - [Dst_first]: count(e, dst) left 0 (the edge entered part dst; λ rose),
   - [Dst_paired]: count(e, dst) left 1 (the formerly lone dst pin got
     company).
   At most one src-side and one dst-side transition fire per edge; both are
   reported after the edge's counts and λ are fully updated. *)
type transition = Src_gone | Src_lone | Dst_first | Dst_paired

let create hg part =
  let k = Partition.k part in
  let m = Hypergraph.num_edges hg in
  let counts = Array.make (m * k) 0 in
  let lambdas = Array.make m 0 in
  for e = 0 to m - 1 do
    Hypergraph.iter_pins hg e (fun v ->
        let c = Partition.color part v in
        let idx = (e * k) + c in
        if counts.(idx) = 0 then lambdas.(e) <- lambdas.(e) + 1;
        counts.(idx) <- counts.(idx) + 1)
  done;
  { hg; k; counts; lambdas }

let count t e c = t.counts.((e * t.k) + c)
let lambda t e = t.lambdas.(e)
let raw_counts t = t.counts
let raw_lambdas t = t.lambdas

(* Record that node v moved from part [src] to part [dst]; the caller is
   responsible for updating the partition itself (hooks that inspect pin
   colors expect the partition to already place [v] in [dst]).  The loop
   walks the CSR incidence directly: this runs once per applied or rolled
   back move and must not allocate. *)
let move ?on_transition t v ~src ~dst =
  if src <> dst then begin
    let inc = Hypergraph.csr_incidence t.hg in
    let offs = Hypergraph.csr_node_offsets t.hg in
    for i = offs.(v) to offs.(v + 1) - 1 do
      let e = inc.(i) in
      let si = (e * t.k) + src and di = (e * t.k) + dst in
      t.counts.(si) <- t.counts.(si) - 1;
      if t.counts.(si) = 0 then t.lambdas.(e) <- t.lambdas.(e) - 1;
      if t.counts.(di) = 0 then t.lambdas.(e) <- t.lambdas.(e) + 1;
      t.counts.(di) <- t.counts.(di) + 1;
      match on_transition with
      | None -> ()
      | Some f ->
          if t.counts.(si) = 0 then f e Src_gone
          else if t.counts.(si) = 1 then f e Src_lone;
          if t.counts.(di) = 1 then f e Dst_first
          else if t.counts.(di) = 2 then f e Dst_paired
    done
  end

(* Cost change if node v moved from [src] to [dst] (not performing it). *)
let move_delta ?(metric = Partition.Connectivity) t v ~src ~dst =
  if src = dst then 0
  else begin
    let delta = ref 0 in
    Hypergraph.iter_incident t.hg v (fun e ->
        let w = Hypergraph.edge_weight t.hg e in
        let leaving_empties = count t e src = 1 in
        let entering_fresh = count t e dst = 0 in
        match metric with
        | Partition.Connectivity ->
            if leaving_empties then delta := !delta - w;
            if entering_fresh then delta := !delta + w
        | Partition.Cut_net ->
            let l = lambda t e in
            let l' =
              l
              - (if leaving_empties then 1 else 0)
              + if entering_fresh then 1 else 0
            in
            let cut b = if b then 1 else 0 in
            delta := !delta + (w * (cut (l' > 1) - cut (l > 1))))
    ;
    !delta
  end

(* Total cost from the maintained lambdas (cheap consistency source). *)
let cost ?(metric = Partition.Connectivity) t =
  let total = ref 0 in
  Array.iteri
    (fun e l ->
      let w = Hypergraph.edge_weight t.hg e in
      match metric with
      | Partition.Cut_net -> if l > 1 then total := !total + w
      | Partition.Connectivity -> total := !total + (w * (l - 1)))
    t.lambdas;
  !total
