(* Reusable scratch state for the refinement/coarsening hot path.  One
   workspace is allocated per multilevel solve and threaded through every
   FM pass, rebalance and clustering level, so the inner loops run on
   pre-sized flat arrays instead of reallocating (and re-zeroing) per pass.

   Ownership rules (see DESIGN.md "The hot path"):
   - a workspace belongs to exactly one solver call tree at a time; the
     solvers are single-threaded and never re-enter refinement, so a plain
     record with no locking suffices;
   - arrays only ever grow; [ensure] resizes to the high-water mark of the
     (n, k) pairs seen, which in a multilevel solve is the finest level;
   - all per-use validity is stamp-based: a fresh stamp from [next_stamp]
     invalidates every node in O(1), so nothing is cleared between passes.

   Stamp discipline: stamp arrays start at 0 and [stamp] at 1, so freshly
   grown regions are never accidentally valid; the counter only grows
   (63-bit, it cannot wrap in practice). *)

type t = {
  (* Gain cache (Refine): row v of [penalty] is k slots at [v * k]; under
     the connectivity metric benefit/penalty are maintained exactly via
     Pin_counts transitions, under cut-net the row caches the full delta
     vector and transitions invalidate it. *)
  mutable benefit : int array; (* n *)
  mutable penalty : int array; (* n * k *)
  mutable cache_stamp : int array; (* n; row valid iff = the refine stamp *)
  (* Stamped per-node marks (locks, touched-dedup, boundary-seen). *)
  mutable locked : int array; (* n *)
  mutable touch : int array; (* n *)
  mutable seen : int array; (* n *)
  (* Coarsening rating: flat score per candidate cluster leader. *)
  mutable score : float array; (* n *)
  mutable stamp : int;
  (* Shared vectors: FM touched-neighbour list, packed (v, src, dst) move
     log, coarsening candidate list. *)
  touched : Support.Int_vec.t;
  moves : Support.Int_vec.t;
  cand : Support.Int_vec.t;
  (* The FM bucket queue, recreated only when the node universe or the
     gain range outgrows the cached one. *)
  mutable queue : Support.Bucket_queue.t option;
  (* Per-refine hoisted instance stats (max node weight, max total
     incident edge weight), computed once per [Refine.refine] call
     instead of once per pass. *)
  mutable max_node_weight : int;
  mutable max_gain : int;
}

let create () =
  {
    benefit = [||];
    penalty = [||];
    cache_stamp = [||];
    locked = [||];
    touch = [||];
    seen = [||];
    score = [||];
    stamp = 1;
    touched = Support.Int_vec.create ();
    moves = Support.Int_vec.create ();
    cand = Support.Int_vec.create ();
    queue = None;
    max_node_weight = 0;
    max_gain = 1;
  }

let grow_int a n = if Array.length a >= n then a else Array.make n 0
let grow_float a n = if Array.length a >= n then a else Array.make n 0.0

let ensure t ~n ~k =
  if n < 0 || k < 1 then invalid_arg "Workspace.ensure: bad dimensions";
  t.benefit <- grow_int t.benefit n;
  t.penalty <- grow_int t.penalty (n * k);
  t.cache_stamp <- grow_int t.cache_stamp n;
  t.locked <- grow_int t.locked n;
  t.touch <- grow_int t.touch n;
  t.seen <- grow_int t.seen n;
  t.score <- grow_float t.score n

let next_stamp t =
  let s = t.stamp + 1 in
  t.stamp <- s;
  s

(* A cleared bucket queue holding items [0, n) with priorities in
   [-range, range]; reuses the cached queue when it is large enough. *)
let queue t ~n ~range =
  let fits q =
    Support.Bucket_queue.capacity q >= n
    &&
    let lo, hi = Support.Bucket_queue.priority_range q in
    lo <= -range && hi >= range
  in
  match t.queue with
  | Some q when fits q ->
      Support.Bucket_queue.clear q;
      q
  | _ ->
      let q =
        Support.Bucket_queue.create ~min_priority:(-range)
          ~max_priority:range n
      in
      t.queue <- Some q;
      q
